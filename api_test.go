package hotnoc

import (
	"math"
	"strings"
	"testing"
)

// Scaled-down configurations keep the full pipeline under test without
// paper-scale runtimes; the full-scale numbers are produced by the
// benchmarks and cmd tools.
const testScale = 8

func TestConfigsRoster(t *testing.T) {
	cfgs := Configs()
	if len(cfgs) != 5 {
		t.Fatalf("%d configs, want 5", len(cfgs))
	}
	if _, err := ConfigByName("C"); err != nil {
		t.Fatal(err)
	}
	if _, err := ConfigByName("Z"); err == nil {
		t.Fatal("unknown config accepted")
	}
}

func TestSchemesRoster(t *testing.T) {
	ss := Schemes()
	if len(ss) != 5 {
		t.Fatalf("%d schemes, want 5", len(ss))
	}
	want := []string{"Rot", "X Mirror", "X-Y Mirror", "Right Shift", "X-Y Shift"}
	for i, s := range ss {
		if s.Name != want[i] {
			t.Errorf("scheme %d is %q, want %q", i, s.Name, want[i])
		}
	}
	if _, err := SchemeByName("xyshift"); err != nil {
		t.Error(err)
	}
}

// TestFigure1Scaled reproduces the figure's structure and headline shape on
// reduced configurations: every scheme on A and E, X-Y shift positive on
// both, base temperatures calibrated to the paper.
func TestFigure1Scaled(t *testing.T) {
	res, err := RunFigure1(testScale, []string{"A", "E"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
	wantBase := map[string]float64{"A": 85.44, "E": 75.98}
	for _, row := range res.Rows {
		if math.Abs(row.BasePeakC-wantBase[row.Config]) > 0.05 {
			t.Errorf("%s base %.2f, want %.2f", row.Config, row.BasePeakC, wantBase[row.Config])
		}
		if len(row.Cells) != 5 {
			t.Fatalf("%s has %d cells", row.Config, len(row.Cells))
		}
		var xyshift Figure1Cell
		for _, c := range row.Cells {
			if c.Scheme == "X-Y Shift" {
				xyshift = c
			}
		}
		if xyshift.ReductionC <= 0 {
			t.Errorf("%s: X-Y shift reduction %.2f, want positive", row.Config, xyshift.ReductionC)
		}
	}
	if res.MeanReductionC["X-Y Shift"] <= res.MeanReductionC["X Mirror"] {
		t.Errorf("X-Y shift mean %.2f not above X mirror %.2f",
			res.MeanReductionC["X-Y Shift"], res.MeanReductionC["X Mirror"])
	}
	table := res.Table()
	for _, frag := range []string{"A (85.4", "E (75.9", "X-Y Shift", "mean"} {
		if !strings.Contains(table, frag) {
			t.Errorf("table missing %q:\n%s", frag, table)
		}
	}
}

// TestPeriodSweepScaled: the penalty falls roughly in proportion to the
// period while the peak rises only marginally.
func TestPeriodSweepScaled(t *testing.T) {
	pts, err := RunPeriodSweep("A", XYShift(), []int{1, 4, 8}, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points, want 3", len(pts))
	}
	if !(pts[0].ThroughputPenalty > pts[1].ThroughputPenalty &&
		pts[1].ThroughputPenalty > pts[2].ThroughputPenalty) {
		t.Fatalf("penalty not decreasing: %v", pts)
	}
	if pts[0].PeakRiseC != 0 {
		t.Fatalf("first point rise %.3f, want 0", pts[0].PeakRiseC)
	}
	// At this reduced scale migration overhead is proportionally larger
	// than at paper scale, and amortizing it over longer periods can
	// slightly outweigh the slower thermal averaging; allow a small
	// negative rise. The paper-scale behaviour (monotone, < 0.1 °C rise)
	// is checked by the full-scale benchmarks and EXPERIMENTS.md.
	if pts[2].PeakRiseC < -0.35 {
		t.Fatalf("8-block peak below 1-block by %.3f", -pts[2].PeakRiseC)
	}
	if pts[1].PeriodSec <= pts[0].PeriodSec {
		t.Fatal("period did not grow with block count")
	}
}

// TestMigrationEnergyScaled: every scheme's migration energy raises the
// average chip temperature, and rotation has the longest migrations.
func TestMigrationEnergyScaled(t *testing.T) {
	studies, err := RunMigrationEnergy("E", testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(studies) != 5 {
		t.Fatalf("%d studies, want 5", len(studies))
	}
	var rotCycles, maxOther int64
	for _, st := range studies {
		if st.DeltaMeanC < 0 {
			t.Errorf("%s: migration energy cooled the chip by %.3f °C", st.Scheme, -st.DeltaMeanC)
		}
		if st.MigrationEnergyJ <= 0 {
			t.Errorf("%s: no migration energy", st.Scheme)
		}
		if st.Scheme == "Rot" {
			rotCycles = st.MigrationCycles
		} else if st.MigrationCycles > maxOther {
			maxOther = st.MigrationCycles
		}
	}
	if rotCycles < maxOther {
		t.Errorf("rotation migration (%d cycles) not the longest (%d)", rotCycles, maxOther)
	}
}

func TestTable1Render(t *testing.T) {
	out := Table1(5)
	for _, frag := range []string{"N-1-Y", "N-1-X", "X + Offset", "Rot", "Right Shift"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table1 missing %q:\n%s", frag, out)
		}
	}
}

// TestBuildConfigAPI: façade construction works and is calibrated.
func TestBuildConfigAPI(t *testing.T) {
	b, err := BuildConfig("D", testScale)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.StaticPeakC-72.80) > 0.05 {
		t.Fatalf("D calibrated to %.2f, want 72.80", b.StaticPeakC)
	}
	if _, err := BuildConfig("nope", testScale); err == nil {
		t.Fatal("unknown config accepted")
	}
}
