package hotnoc

import (
	"context"
	"fmt"

	"hotnoc/internal/geom"
	"hotnoc/internal/report"
)

// Figure1Cell is one bar of the paper's Figure 1: one migration scheme on
// one circuit configuration.
type Figure1Cell struct {
	Scheme string
	// ReductionC is the peak-temperature reduction versus the static
	// thermally-aware placement (the figure's y-axis).
	ReductionC float64
	// MigratedPeakC and ThroughputPenalty add context beyond the figure.
	MigratedPeakC     float64
	ThroughputPenalty float64
}

// Figure1Row is one circuit configuration's group of bars.
type Figure1Row struct {
	Config string
	// BasePeakC is the configuration's base temperature (x-axis label).
	BasePeakC float64
	Cells     []Figure1Cell
}

// Figure1Result is the full reproduction of Figure 1 plus the §3 scheme
// averages.
type Figure1Result struct {
	Rows []Figure1Row
	// MeanReductionC maps scheme name to its average reduction across the
	// distinct requested configurations (paper: X-Y shift 4.62 °C,
	// rotation 4.15 °C). Duplicate configuration names count once, so a
	// repeated entry cannot skew the average.
	MeanReductionC map[string]float64
}

// RunFigure1 regenerates Figure 1: every migration scheme on every circuit
// configuration, at the base one-block migration period. scale divides the
// workload size (1 = paper scale); configs limits the set (nil = A-E).
//
// Deprecated: use Lab.Figure1, which shares the session's build and
// characterization caches across calls.
func RunFigure1(scale int, configs []string) (*Figure1Result, error) {
	return RunFigure1Ctx(context.Background(), scale, configs, 0)
}

// RunFigure1Ctx is RunFigure1 with context cancellation and an explicit
// worker count (0 = GOMAXPROCS).
//
// Deprecated: use Lab.Figure1, which shares the session's build and
// characterization caches across calls.
func RunFigure1Ctx(ctx context.Context, scale int, configs []string, workers int) (*Figure1Result, error) {
	return NewLab(WithScale(scale), WithWorkers(workers)).Figure1(ctx, configs)
}

// Table renders the figure as an aligned text table (configurations as
// rows, schemes as columns, reductions in °C).
func (f *Figure1Result) Table() string {
	headers := []string{"Config (base °C)"}
	for _, s := range Schemes() {
		headers = append(headers, s.Name)
	}
	tb := report.NewTable(headers...)
	for _, row := range f.Rows {
		vals := []any{fmt.Sprintf("%s (%.2f)", row.Config, row.BasePeakC)}
		for _, c := range row.Cells {
			vals = append(vals, c.ReductionC)
		}
		tb.AddRow(vals...)
	}
	means := []any{"mean"}
	for _, s := range Schemes() {
		means = append(means, f.MeanReductionC[s.Name])
	}
	tb.AddRow(means...)
	return tb.String()
}

// PeriodPoint is one entry of the paper's migration-period study (§3).
type PeriodPoint struct {
	// Blocks is the migration period in decoded LDPC blocks (the paper's
	// 109.3 / 437.2 / 874.4 µs correspond to 1 / 4 / 8 blocks).
	Blocks int
	// PeriodSec is the measured average period.
	PeriodSec float64
	// ThroughputPenalty is migration downtime over total time.
	ThroughputPenalty float64
	// PeakC is the quasi-steady peak temperature at this period.
	PeakC float64
	// PeakRiseC is the peak increase versus the shortest period studied.
	PeakRiseC float64
}

// RunPeriodSweep regenerates the migration-period trade-off on one
// configuration with one scheme.
//
// Deprecated: use Lab.PeriodSweep, which shares the session's build and
// characterization caches across calls.
func RunPeriodSweep(config string, scheme Scheme, blocks []int, scale int) ([]PeriodPoint, error) {
	return RunPeriodSweepCtx(context.Background(), config, scheme, blocks, scale, 0)
}

// RunPeriodSweepCtx is RunPeriodSweep with context cancellation and an
// explicit worker count (0 = GOMAXPROCS).
//
// Deprecated: use Lab.PeriodSweep, which shares the session's build and
// characterization caches across calls.
func RunPeriodSweepCtx(ctx context.Context, config string, scheme Scheme, blocks []int, scale, workers int) ([]PeriodPoint, error) {
	return NewLab(WithScale(scale), WithWorkers(workers)).PeriodSweep(ctx, config, scheme, blocks)
}

// EnergyStudy quantifies one scheme's reconfiguration energy penalty by
// comparing runs with and without migration energy (the ablation behind
// the paper's "+0.3 °C average chip temperature" rotation observation).
type EnergyStudy struct {
	Scheme string
	// MeanWithC / MeanWithoutC are average chip temperatures with and
	// without migration energy; DeltaMeanC is the penalty.
	MeanWithC, MeanWithoutC, DeltaMeanC float64
	// ReductionWithC / ReductionWithoutC are the corresponding peak
	// reductions.
	ReductionWithC, ReductionWithoutC float64
	// MigrationEnergyJ is the per-thermal-cycle migration energy.
	MigrationEnergyJ float64
	// MigrationCycles is the average migration duration in cycles.
	MigrationCycles int64
}

// RunMigrationEnergy regenerates the migration-energy ablation for every
// scheme on one configuration (the paper highlights rotation on E).
//
// Deprecated: use Lab.MigrationEnergy, which shares the session's build
// and characterization caches across calls.
func RunMigrationEnergy(config string, scale int) ([]EnergyStudy, error) {
	return RunMigrationEnergyCtx(context.Background(), config, scale, 0)
}

// RunMigrationEnergyCtx is RunMigrationEnergy with context cancellation
// and an explicit worker count (0 = GOMAXPROCS).
//
// Deprecated: use Lab.MigrationEnergy, which shares the session's build
// and characterization caches across calls.
func RunMigrationEnergyCtx(ctx context.Context, config string, scale, workers int) ([]EnergyStudy, error) {
	return NewLab(WithScale(scale), WithWorkers(workers)).MigrationEnergy(ctx, config)
}

// Table1 returns the paper's Table 1 as printable rows, alongside the live
// transform definitions for an n x n grid so readers can verify the code
// implements exactly the published functions.
func Table1(n int) string {
	tb := report.NewTable("Function", "New X Coordinate", "New Y Coordinate", "Implementation")
	tb.AddRow("Rotation", "N-1-Y", "X", geom.Rotation(n).String())
	tb.AddRow("X Mirroring", "N-1-X", "Y", geom.XMirror(n).String())
	tb.AddRow("X Translation", "X + Offset", "Y", geom.XTranslate(n, 1).String())
	return tb.String()
}
