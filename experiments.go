package hotnoc

import (
	"context"
	"fmt"
	"sync"

	"hotnoc/internal/geom"
	"hotnoc/internal/report"
)

// defaultLabs shares one Lab per (scale, workers, cache-dir) across the
// deprecated free functions, so legacy callers hitting the same
// parameters benefit from the session's build and characterization caches
// instead of paying for a fresh Lab on every call. Each shared Lab (and
// its caches) lives for the rest of the process; callers that vary these
// parameters across many values and care about memory should hold their
// own Lab instead — which is the migration the deprecation asks for.
var (
	defaultLabsMu sync.Mutex
	defaultLabs   = map[defaultLabKey]*Lab{}
)

type defaultLabKey struct {
	scale, workers int
	cacheDir       string
}

// defaultLab returns the shared Lab for (scale, workers, cacheDir),
// creating it on first use. Parameters are normalized the same way Lab
// options are, so scale 0 and scale 1 share one Lab.
func defaultLab(scale, workers int, cacheDir string) *Lab {
	if scale <= 0 {
		scale = 1
	}
	if workers <= 0 {
		workers = 0
	}
	key := defaultLabKey{scale: scale, workers: workers, cacheDir: cacheDir}
	defaultLabsMu.Lock()
	defer defaultLabsMu.Unlock()
	lab, ok := defaultLabs[key]
	if !ok {
		lab = NewLab(WithScale(scale), WithWorkers(workers), WithCacheDir(cacheDir))
		defaultLabs[key] = lab
	}
	return lab
}

// Figure1Cell is one bar of the paper's Figure 1: one migration scheme on
// one circuit configuration.
type Figure1Cell struct {
	Scheme string
	// ReductionC is the peak-temperature reduction versus the static
	// thermally-aware placement (the figure's y-axis).
	ReductionC float64
	// MigratedPeakC and ThroughputPenalty add context beyond the figure.
	MigratedPeakC     float64
	ThroughputPenalty float64
}

// Figure1Row is one circuit configuration's group of bars.
type Figure1Row struct {
	Config string
	// BasePeakC is the configuration's base temperature (x-axis label).
	BasePeakC float64
	Cells     []Figure1Cell
}

// Figure1Result is the full reproduction of Figure 1 plus the §3 scheme
// averages.
type Figure1Result struct {
	Rows []Figure1Row
	// MeanReductionC maps scheme name to its average reduction across the
	// distinct requested configurations (paper: X-Y shift 4.62 °C,
	// rotation 4.15 °C). Duplicate configuration names count once, so a
	// repeated entry cannot skew the average.
	MeanReductionC map[string]float64
}

// RunFigure1 regenerates Figure 1: every migration scheme on every circuit
// configuration, at the base one-block migration period. scale divides the
// workload size (1 = paper scale); configs limits the set (nil = A-E).
//
// Deprecated: use Lab.Figure1, which shares the session's build and
// characterization caches across calls.
func RunFigure1(scale int, configs []string) (*Figure1Result, error) {
	return RunFigure1Ctx(context.Background(), scale, configs, 0)
}

// RunFigure1Ctx is RunFigure1 with context cancellation and an explicit
// worker count (0 = GOMAXPROCS).
//
// Deprecated: use Lab.Figure1. RunFigure1Ctx routes through a shared
// default Lab per (scale, workers), so repeated legacy calls do reuse the
// build and characterization caches, but the Lab API also streams,
// persists caches to disk and reports progress.
func RunFigure1Ctx(ctx context.Context, scale int, configs []string, workers int) (*Figure1Result, error) {
	return defaultLab(scale, workers, "").Figure1(ctx, configs)
}

// Figure1FromOutcomes assembles a Figure1Result from the outcomes of the
// Figure 1 grid — SweepGrid(configs, Schemes(), nil) — in point order.
// It is the aggregation Lab.Figure1 applies locally and remote clients
// apply to outcomes streamed from a hotnocd daemon, so both produce
// identical results from identical outcomes.
//
// Outcomes arrive configuration-major, scheme-minor: one row of
// len(Schemes()) cells per requested configuration (repeats included).
// Duplicate configuration names contribute their own rows but are counted
// once in the per-scheme means, so the §3 averages cannot be skewed by a
// repeated entry.
func Figure1FromOutcomes(configs []string, outs []SweepOutcome) *Figure1Result {
	out := &Figure1Result{MeanReductionC: map[string]float64{}}
	nSchemes := len(Schemes())
	sums := map[string]float64{}
	seen := map[string]bool{}
	distinct := 0
	for ri, name := range configs {
		rowOuts := outs[ri*nSchemes : (ri+1)*nSchemes]
		row := Figure1Row{Config: name, BasePeakC: rowOuts[0].Built.StaticPeakC}
		for _, o := range rowOuts {
			row.Cells = append(row.Cells, Figure1Cell{
				Scheme:            o.Point.Scheme.Name,
				ReductionC:        o.Result.ReductionC,
				MigratedPeakC:     o.Result.MigratedPeakC,
				ThroughputPenalty: o.Result.ThroughputPenalty,
			})
			if !seen[name] {
				sums[o.Point.Scheme.Name] += o.Result.ReductionC
			}
		}
		if !seen[name] {
			seen[name] = true
			distinct++
		}
		out.Rows = append(out.Rows, row)
	}
	for scheme, sum := range sums {
		out.MeanReductionC[scheme] = sum / float64(distinct)
	}
	return out
}

// Table renders the figure as an aligned text table (configurations as
// rows, schemes as columns, reductions in °C).
func (f *Figure1Result) Table() string {
	headers := []string{"Config (base °C)"}
	for _, s := range Schemes() {
		headers = append(headers, s.Name)
	}
	tb := report.NewTable(headers...)
	for _, row := range f.Rows {
		vals := []any{fmt.Sprintf("%s (%.2f)", row.Config, row.BasePeakC)}
		for _, c := range row.Cells {
			vals = append(vals, c.ReductionC)
		}
		tb.AddRow(vals...)
	}
	means := []any{"mean"}
	for _, s := range Schemes() {
		means = append(means, f.MeanReductionC[s.Name])
	}
	tb.AddRow(means...)
	return tb.String()
}

// PeriodPoint is one entry of the paper's migration-period study (§3).
type PeriodPoint struct {
	// Blocks is the migration period in decoded LDPC blocks (the paper's
	// 109.3 / 437.2 / 874.4 µs correspond to 1 / 4 / 8 blocks).
	Blocks int
	// PeriodSec is the measured average period.
	PeriodSec float64
	// ThroughputPenalty is migration downtime over total time.
	ThroughputPenalty float64
	// PeakC is the quasi-steady peak temperature at this period.
	PeakC float64
	// PeakRiseC is the peak increase versus the shortest period studied.
	PeakRiseC float64
}

// RunPeriodSweep regenerates the migration-period trade-off on one
// configuration with one scheme.
//
// Deprecated: use Lab.PeriodSweep, which shares the session's build and
// characterization caches across calls.
func RunPeriodSweep(config string, scheme Scheme, blocks []int, scale int) ([]PeriodPoint, error) {
	return RunPeriodSweepCtx(context.Background(), config, scheme, blocks, scale, 0)
}

// RunPeriodSweepCtx is RunPeriodSweep with context cancellation and an
// explicit worker count (0 = GOMAXPROCS).
//
// Deprecated: use Lab.PeriodSweep. RunPeriodSweepCtx routes through a
// shared default Lab per (scale, workers), so repeated legacy calls do
// reuse the build and characterization caches.
func RunPeriodSweepCtx(ctx context.Context, config string, scheme Scheme, blocks []int, scale, workers int) ([]PeriodPoint, error) {
	return defaultLab(scale, workers, "").PeriodSweep(ctx, config, scheme, blocks)
}

// PeriodPointsFromOutcomes assembles the migration-period study from the
// outcomes of a single-configuration, single-scheme period grid in point
// order. It is the aggregation Lab.PeriodSweep applies locally and remote
// clients apply to streamed outcomes. PeakRiseC is measured against the
// first (shortest) period of the grid.
func PeriodPointsFromOutcomes(outs []SweepOutcome) []PeriodPoint {
	var out []PeriodPoint
	for _, o := range outs {
		out = append(out, PeriodPoint{
			Blocks:            o.Point.Blocks,
			PeriodSec:         o.Result.PeriodSec,
			ThroughputPenalty: o.Result.ThroughputPenalty,
			PeakC:             o.Result.MigratedPeakC,
		})
	}
	for i := range out {
		out[i].PeakRiseC = out[i].PeakC - out[0].PeakC
	}
	return out
}

// EnergyStudy quantifies one scheme's reconfiguration energy penalty by
// comparing runs with and without migration energy (the ablation behind
// the paper's "+0.3 °C average chip temperature" rotation observation).
type EnergyStudy struct {
	Scheme string
	// MeanWithC / MeanWithoutC are average chip temperatures with and
	// without migration energy; DeltaMeanC is the penalty.
	MeanWithC, MeanWithoutC, DeltaMeanC float64
	// ReductionWithC / ReductionWithoutC are the corresponding peak
	// reductions.
	ReductionWithC, ReductionWithoutC float64
	// MigrationEnergyJ is the per-thermal-cycle migration energy.
	MigrationEnergyJ float64
	// MigrationCycles is the average migration duration in cycles.
	MigrationCycles int64
}

// RunMigrationEnergy regenerates the migration-energy ablation for every
// scheme on one configuration (the paper highlights rotation on E).
//
// Deprecated: use Lab.MigrationEnergy, which shares the session's build
// and characterization caches across calls.
func RunMigrationEnergy(config string, scale int) ([]EnergyStudy, error) {
	return RunMigrationEnergyCtx(context.Background(), config, scale, 0)
}

// RunMigrationEnergyCtx is RunMigrationEnergy with context cancellation
// and an explicit worker count (0 = GOMAXPROCS).
//
// Deprecated: use Lab.MigrationEnergy. RunMigrationEnergyCtx routes
// through a shared default Lab per (scale, workers), so repeated legacy
// calls do reuse the build and characterization caches.
func RunMigrationEnergyCtx(ctx context.Context, config string, scale, workers int) ([]EnergyStudy, error) {
	return defaultLab(scale, workers, "").MigrationEnergy(ctx, config)
}

// MigrationEnergyGrid returns the migration-energy ablation grid for one
// configuration: every scheme as a with/without-migration-energy pair, in
// Figure 1 scheme order. Lab.MigrationEnergy and remote clients sweep
// exactly this grid and aggregate it with EnergyStudiesFromOutcomes.
func MigrationEnergyGrid(config string) []SweepPoint {
	var pts []SweepPoint
	for _, s := range Schemes() {
		pts = append(pts,
			SweepPoint{Config: config, Scheme: s},
			SweepPoint{Config: config, Scheme: s, ExcludeMigrationEnergy: true})
	}
	return pts
}

// EnergyStudiesFromOutcomes assembles the migration-energy ablation from
// the outcomes of MigrationEnergyGrid in point order. It is the
// aggregation Lab.MigrationEnergy applies locally and remote clients
// apply to streamed outcomes.
func EnergyStudiesFromOutcomes(outs []SweepOutcome) []EnergyStudy {
	var out []EnergyStudy
	for i := 0; i < len(outs); i += 2 {
		with, without := outs[i].Result, outs[i+1].Result
		var cycles int64
		for _, leg := range with.Legs {
			cycles += leg.Migration.Cycles
		}
		cycles /= int64(len(with.Legs))
		out = append(out, EnergyStudy{
			Scheme:            outs[i].Point.Scheme.Name,
			MeanWithC:         with.MigratedMeanC,
			MeanWithoutC:      without.MigratedMeanC,
			DeltaMeanC:        with.MigratedMeanC - without.MigratedMeanC,
			ReductionWithC:    with.ReductionC,
			ReductionWithoutC: without.ReductionC,
			MigrationEnergyJ:  with.MigrationEnergyJ,
			MigrationCycles:   cycles,
		})
	}
	return out
}

// SweepReactive evaluates threshold-triggered configurations on one chip
// configuration through any Session: validate the configs, sweep
// ReactiveGrid(config, cfgs), extract the results in input order. It is
// the shared implementation behind Lab.Reactive and the client SDK's
// Reactive, so the local and remote paths cannot drift. A scheme is
// acceptable with either a step function (evaluated in process) or a
// name (resolved by a daemon); a config with neither fails fast, naming
// its index.
func SweepReactive(ctx context.Context, s Session, config string, cfgs []ReactiveConfig) ([]ReactiveResult, error) {
	for i, cfg := range cfgs {
		if cfg.Scheme.StepFn == nil && cfg.Scheme.Name == "" {
			return nil, fmt.Errorf("hotnoc: reactive config %d has no migration scheme", i)
		}
	}
	if len(cfgs) == 0 {
		return nil, nil
	}
	outs, err := s.SweepAll(ctx, ReactiveGrid(config, cfgs))
	if err != nil {
		return nil, err
	}
	return ReactiveResultsFromOutcomes(outs)
}

// ReactiveResultsFromOutcomes extracts the reactive results from the
// outcomes of a reactive grid — ReactiveGrid(config, cfgs) — in point
// order. It is the aggregation Lab.Reactive applies locally and remote
// clients apply to outcomes streamed from a hotnocd daemon, so both
// produce identical results from identical outcomes. An outcome without a
// reactive result arm is an error: it means a periodic point slipped into
// the grid, or a version-skewed daemon ran the points as periodic.
func ReactiveResultsFromOutcomes(outs []SweepOutcome) ([]ReactiveResult, error) {
	res := make([]ReactiveResult, len(outs))
	for i, o := range outs {
		if o.Reactive == nil {
			return nil, fmt.Errorf("hotnoc: outcome %d carries no reactive result (point kind %q)",
				i, o.Point.Kind())
		}
		res[i] = *o.Reactive
	}
	return res, nil
}

// Table1 returns the paper's Table 1 as printable rows, alongside the live
// transform definitions for an n x n grid so readers can verify the code
// implements exactly the published functions.
func Table1(n int) string {
	tb := report.NewTable("Function", "New X Coordinate", "New Y Coordinate", "Implementation")
	tb.AddRow("Rotation", "N-1-Y", "X", geom.Rotation(n).String())
	tb.AddRow("X Mirroring", "N-1-X", "Y", geom.XMirror(n).String())
	tb.AddRow("X Translation", "X + Offset", "Y", geom.XTranslate(n, 1).String())
	return tb.String()
}
