package hotnoc

import (
	"context"
	"fmt"

	"hotnoc/internal/power"
	"hotnoc/internal/thermal"
)

// PlacementReport describes one configuration's thermally-aware static
// placement and its effect: the annealed objective, the
// logical-to-physical mapping, the per-block power map of the placed
// workload, and the steady-state temperatures it induces. The report is
// plain data — the placer CLI renders it, and the hotnocd daemon serves
// it as JSON on GET /v1/builds/{config} so a remote placer run shows the
// same numbers as a local one.
type PlacementReport struct {
	Config string `json:"config"`
	// Scale is the workload divisor the build used.
	Scale int `json:"scale"`
	// GridW and GridH are the mesh dimensions.
	GridW int `json:"grid_w"`
	GridH int `json:"grid_h"`
	// PeakC, CommHops, Cost and Accepted echo the simulated-annealing
	// outcome (place.Result).
	PeakC    float64 `json:"peak_c"`
	CommHops float64 `json:"comm_hops"`
	Cost     float64 `json:"cost"`
	Accepted int     `json:"accepted"`
	// Placement maps logical PE -> physical block index.
	Placement []int `json:"placement"`
	// PlacedPowerW is the per-block power map of one block decode at the
	// placed mapping; TotalPowerW is its sum.
	PlacedPowerW []float64 `json:"placed_power_w"`
	TotalPowerW  float64   `json:"total_power_w"`
	// SteadyTempsC is the steady-state temperature map of the placed
	// power profile.
	SteadyTempsC []float64 `json:"steady_temps_c"`
}

// Placement builds (or serves from the build cache) one configuration and
// reports its thermally-aware static placement: the annealed mapping, the
// placed per-block power map reconstructed by decoding one block, and the
// steady-state temperatures. The shared calibrated build is never
// mutated — the decode runs on a private System clone — so Placement is
// safe alongside concurrent sweeps on the same Lab.
func (l *Lab) Placement(ctx context.Context, config string) (*PlacementReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	built, err := l.runner.Built(config)
	if err != nil {
		return nil, err
	}
	sys, err := built.System.Clone()
	if err != nil {
		return nil, fmt.Errorf("hotnoc: config %s: clone: %w", config, err)
	}
	if err := sys.Engine.SetPlacement(sys.InitialPlace); err != nil {
		return nil, fmt.Errorf("hotnoc: config %s: %w", config, err)
	}
	sys.Engine.Net.ResetStats()
	blk, err := sys.Engine.Decode(sys.BlockSource(0))
	if err != nil {
		return nil, fmt.Errorf("hotnoc: config %s: decode: %w", config, err)
	}
	dur := float64(blk.Cycles) / sys.ClockHz
	placedPower := sys.Engine.Net.Act.PowerMap(sys.Energy, dur)

	ss, err := thermal.NewSteadySolver(sys.Therm)
	if err != nil {
		return nil, fmt.Errorf("hotnoc: config %s: %w", config, err)
	}

	g := sys.Grid
	return &PlacementReport{
		Config:       config,
		Scale:        l.runner.Scale(),
		GridW:        g.W,
		GridH:        g.H,
		PeakC:        built.PlaceResult.PeakC,
		CommHops:     built.PlaceResult.CommHops,
		Cost:         built.PlaceResult.Cost,
		Accepted:     built.PlaceResult.Accepted,
		Placement:    append([]int(nil), sys.InitialPlace...),
		PlacedPowerW: placedPower,
		TotalPowerW:  power.Total(placedPower),
		SteadyTempsC: ss.Solve(placedPower),
	}, nil
}
