// hotspotdemo shows the paper's central observation visually: a central
// hotspot (configuration E) that rotation cannot relieve — the centre PE
// is a fixed point of rotation and mirroring on odd-dimensioned arrays —
// while a diagonal translation disperses it.
//
//	go run ./examples/hotspotdemo
package main

import (
	"fmt"
	"log"

	"hotnoc"
	"hotnoc/internal/report"
)

func main() {
	built, err := hotnoc.BuildConfig("E", 8)
	if err != nil {
		log.Fatal(err)
	}
	g := built.System.Grid

	fmt.Println("configuration E: 5x5 chip with hotspots near the die centre")
	fmt.Println("(rotation and mirroring fix the centre PE on odd arrays)")

	for _, scheme := range []hotnoc.Scheme{hotnoc.Rot(), hotnoc.XYShift()} {
		res, err := built.System.Run(hotnoc.RunConfig{Scheme: scheme})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s: peak %.2f °C -> %.2f °C (Δ %.2f °C) ---\n",
			scheme.Name, res.BaselinePeakC, res.MigratedPeakC, res.ReductionC)
		fmt.Print(report.HeatMap(g.W, g.H, res.MigratedMaxTemps, "°C"))
	}

	fmt.Println("\nrotation leaves the central band essentially untouched;")
	fmt.Println("the X-Y shift walks it across the whole die and flattens the profile.")
}
