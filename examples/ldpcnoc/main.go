// ldpcnoc walks through the workload substrate on its own: it builds an
// LDPC code, partitions its Tanner graph across a 4x4 mesh, decodes noisy
// blocks cycle-accurately on the NoC, and verifies the distributed decoder
// against the reference software decoder — the correctness spine of the
// whole reproduction.
//
//	go run ./examples/ldpcnoc
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hotnoc/internal/appmap"
	"hotnoc/internal/geom"
	"hotnoc/internal/ldpc"
	"hotnoc/internal/noc"
)

func main() {
	// A (3,6)-regular LDPC code: 960 variables, 480 checks.
	code, err := ldpc.NewRegular(960, 480, 3, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("code: n=%d k=%d rate %.2f, %d Tanner edges\n",
		code.N, code.K(), code.Rate(), code.Edges())

	// Partition the graph over 16 PEs with a compute skew: 3 heavy PEs own
	// half the checks, mimicking the paper's irregular configurations.
	part, err := appmap.Skewed(code, 16, 3, 0.5, 11)
	if err != nil {
		log.Fatal(err)
	}
	ops := appmap.OpsPerPE(code, part)
	lo, hi := minMax(ops)
	fmt.Printf("per-PE ops/iteration: min %d max %d (skewed partition)\n", lo, hi)

	grid := geom.NewGrid(4, 4)
	net, err := noc.New(grid, noc.Config{BufDepth: 4})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := appmap.NewEngine(code, part, net)
	if err != nil {
		log.Fatal(err)
	}
	eng.MaxIter = 10

	ref := ldpc.NewDecoder(code)
	ref.MaxIter = 10

	ch, err := ldpc.NewChannel(2.5, code.Rate(), 13)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))

	for blk := 0; blk < 3; blk++ {
		info := make([]uint8, code.K())
		for i := range info {
			info[i] = uint8(rng.Intn(2))
		}
		cw, err := code.Encode(info)
		if err != nil {
			log.Fatal(err)
		}
		llr := ch.Transmit(cw)

		want, _, _ := ref.Decode(llr)
		got, err := eng.Decode(llr)
		if err != nil {
			log.Fatal(err)
		}

		bitExact := true
		errors := 0
		for i := range want {
			if got.Decisions[i] != want[i] {
				bitExact = false
			}
			if got.Decisions[i] != cw[i] {
				errors++
			}
		}
		fmt.Printf("block %d: %d cycles on the NoC (%.1f µs at 250 MHz), converged=%v, "+
			"bit-exact with reference=%v, residual bit errors=%d\n",
			blk, got.Cycles, float64(got.Cycles)/250e6*1e6, got.Converged, bitExact, errors)
	}

	s := net.Stats
	fmt.Printf("\nnetwork totals: %d packets, %d flits, avg latency %.1f cycles, throughput %.2f flits/cycle\n",
		s.PacketsDelivered, s.FlitsDelivered, s.AvgLatency(), s.Throughput())
}

func minMax(v []int64) (int64, int64) {
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
