// Quickstart: build one of the paper's test chips, run it with and without
// runtime reconfiguration, and print the headline comparison.
//
//	go run ./examples/quickstart
//
// Uses a reduced workload (scale 8) so it finishes in a couple of seconds;
// pass the real experiments through cmd/figure1 for paper-scale numbers.
package main

import (
	"fmt"
	"log"

	"hotnoc"
)

func main() {
	// Configuration A: the 4x4 LDPC test chip, calibrated so its static
	// thermally-aware placement peaks at the paper's 85.44 °C.
	built, err := hotnoc.BuildConfig("A", 8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chip: 4x4 NoC, %.1f µs per LDPC block, 40 °C ambient\n\n",
		float64(built.BlockCycles)/built.System.ClockHz*1e6)

	// Evaluate every migration scheme at the base one-block period.
	fmt.Printf("%-12s %10s %10s %9s\n", "scheme", "peak (°C)", "Δpeak (°C)", "penalty")
	for _, scheme := range hotnoc.Schemes() {
		res, err := built.System.Run(hotnoc.RunConfig{Scheme: scheme})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.2f %10.2f %8.2f%%\n",
			scheme.Name, res.MigratedPeakC, -res.ReductionC, res.ThroughputPenalty*100)
	}

	res, err := built.System.Run(hotnoc.RunConfig{Scheme: hotnoc.XYShift()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatic placement peaks at %.2f °C; migrating the workload plane\n", res.BaselinePeakC)
	fmt.Printf("diagonally every block cuts the peak by %.2f °C for a %.2f%% throughput cost.\n",
		res.ReductionC, res.ThroughputPenalty*100)
}
