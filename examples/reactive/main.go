// reactive demonstrates the library's extension of the paper's policy:
// instead of migrating on a fixed period, on-die thermal sensors trigger a
// migration only when the hottest block crosses a threshold. A well-placed
// threshold keeps the peak capped while migrating far less often than the
// periodic policy — recovering most of its throughput penalty.
//
// The sweep runs through a Lab, so all four trigger settings share ONE
// cycle-accurate NoC characterization of the scheme's orbit (the same one
// the periodic run uses); the lab's decode counter shows the saving.
//
//	go run ./examples/reactive
package main

import (
	"context"
	"fmt"
	"log"

	"hotnoc"
)

func main() {
	ctx := context.Background()
	lab := hotnoc.NewLab(hotnoc.WithScale(8))

	outs, err := lab.SweepAll(ctx, []hotnoc.SweepPoint{
		{Config: "A", Scheme: hotnoc.XYShift()},
	})
	if err != nil {
		log.Fatal(err)
	}
	periodic := outs[0].Result
	fmt.Printf("periodic X-Y shift: peak %.2f °C, penalty %.3f%% (migrates every block)\n",
		periodic.MigratedPeakC, periodic.ThroughputPenalty*100)
	fmt.Printf("NoC decodes so far: %d (one orbit characterization)\n\n", lab.Decodes())

	const blocks = 2048
	triggers := []float64{
		periodic.BaselinePeakC + 2, // never fires: static behaviour
		periodic.BaselinePeakC - 1,
		(periodic.BaselinePeakC + periodic.MigratedPeakC) / 2,
		periodic.MigratedPeakC + 0.5, // fires nearly always
	}
	cfgs := make([]hotnoc.ReactiveConfig, len(triggers))
	for i, trigger := range triggers {
		cfgs[i] = hotnoc.ReactiveConfig{
			Scheme: hotnoc.XYShift(), TriggerC: trigger,
			SimBlocks: blocks, WarmupBlocks: blocks / 2,
		}
	}
	results, err := lab.Reactive(ctx, "A", cfgs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%12s %10s %12s %12s\n", "trigger (°C)", "peak (°C)", "migrations", "penalty (%)")
	for i, res := range results {
		fmt.Printf("%12.2f %10.2f %7d/%d %12.3f\n",
			triggers[i], res.PeakC, res.Migrations, blocks/2, res.ThroughputPenalty*100)
	}

	fmt.Printf("\nNoC decodes after the whole reactive sweep: %d — the four triggers\n", lab.Decodes())
	fmt.Println("reused the periodic run's characterization instead of re-simulating.")
	fmt.Println("\nthe mid threshold caps the peak within ~1 °C of the periodic policy")
	fmt.Println("while triggering a fraction of its migrations.")
}
