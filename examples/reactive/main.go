// reactive demonstrates the library's extension of the paper's policy:
// instead of migrating on a fixed period, on-die thermal sensors trigger a
// migration only when the hottest block crosses a threshold. A well-placed
// threshold keeps the peak capped while migrating far less often than the
// periodic policy — recovering most of its throughput penalty.
//
//	go run ./examples/reactive
package main

import (
	"fmt"
	"log"

	"hotnoc"
)

func main() {
	built, err := hotnoc.BuildConfig("A", 8)
	if err != nil {
		log.Fatal(err)
	}
	sys := built.System

	periodic, err := sys.Run(hotnoc.RunConfig{Scheme: hotnoc.XYShift()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("periodic X-Y shift: peak %.2f °C, penalty %.3f%% (migrates every block)\n\n",
		periodic.MigratedPeakC, periodic.ThroughputPenalty*100)

	fmt.Printf("%12s %10s %12s %12s\n", "trigger (°C)", "peak (°C)", "migrations", "penalty (%)")
	const blocks = 2048
	for _, trigger := range []float64{
		periodic.BaselinePeakC + 2, // never fires: static behaviour
		periodic.BaselinePeakC - 1,
		(periodic.BaselinePeakC + periodic.MigratedPeakC) / 2,
		periodic.MigratedPeakC + 0.5, // fires nearly always
	} {
		res, err := sys.RunReactive(hotnoc.ReactiveConfig{
			Scheme: hotnoc.XYShift(), TriggerC: trigger, SimBlocks: blocks, WarmupBlocks: blocks / 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12.2f %10.2f %7d/%d %12.3f\n",
			trigger, res.PeakC, res.Migrations, blocks/2, res.ThroughputPenalty*100)
	}

	fmt.Println("\nthe mid threshold caps the peak within ~1 °C of the periodic policy")
	fmt.Println("while triggering a fraction of its migrations.")
}
