// periodtuning reproduces the operating-point search a system integrator
// would run: sweep the migration period (in LDPC blocks) and pick the
// longest period whose peak-temperature give-back stays under a budget —
// the paper's rationale for moving from 109.3 µs to 437.2 µs and 874.4 µs.
//
//	go run ./examples/periodtuning
package main

import (
	"fmt"
	"log"

	"hotnoc"
)

func main() {
	const (
		config   = "A"
		scale    = 8
		maxRiseC = 0.25 // thermal budget versus the fastest period
	)

	pts, err := hotnoc.RunPeriodSweep(config, hotnoc.XYShift(), []int{1, 2, 4, 8, 16}, scale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("configuration %s, X-Y shift — period tuning\n\n", config)
	fmt.Printf("%7s %12s %10s %10s %11s\n", "blocks", "period (µs)", "peak (°C)", "rise (°C)", "penalty (%)")
	best := pts[0]
	for _, p := range pts {
		marker := ""
		if p.PeakRiseC <= maxRiseC {
			best = p
			marker = "  <- within budget"
		}
		fmt.Printf("%7d %12.1f %10.2f %10.3f %11.3f%s\n",
			p.Blocks, p.PeriodSec*1e6, p.PeakC, p.PeakRiseC, p.ThroughputPenalty*100, marker)
	}

	fmt.Printf("\nchosen operating point: %d block(s) per migration (%.1f µs), "+
		"%.3f%% throughput penalty, %.3f °C hotter than the fastest setting.\n",
		best.Blocks, best.PeriodSec*1e6, best.ThroughputPenalty*100, best.PeakRiseC)
	fmt.Println("the paper makes the same trade: 437.2 µs costs <0.4% with <0.1 °C give-back.")
}
