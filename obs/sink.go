package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Sink receives periodic batches of samples. Implementations own their
// transport (a log file, a push gateway, a time-series database); the
// Batcher owns the cadence. Flush is never called concurrently by one
// Batcher, but a Sink shared across batchers must synchronize itself.
type Sink interface {
	// Flush writes one gathered batch. The slice is only valid for the
	// duration of the call.
	Flush(samples []Sample) error
	// Close releases transport resources after the final flush.
	Close() error
}

// LogSink writes each batch as one JSON line, timestamped, suitable for
// tailing or shipping with any log pipeline:
//
//	{"ts":"2026-08-08T12:00:00Z","samples":[{"name":...,"value":...},...]}
type LogSink struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// NewLogSink wraps w. The sink does not close w unless it is an
// io.Closer, in which case Close forwards to it.
func NewLogSink(w io.Writer) *LogSink {
	return &LogSink{w: w, enc: json.NewEncoder(w)}
}

type logBatch struct {
	TS      string   `json:"ts"`
	Samples []Sample `json:"samples"`
}

// Flush writes the batch as one line.
func (s *LogSink) Flush(samples []Sample) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(logBatch{TS: time.Now().UTC().Format(time.RFC3339), Samples: samples})
}

// Close closes the underlying writer when it supports closing.
func (s *LogSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Batcher periodically gathers a registry and flushes the batch to
// every sink. One goroutine drives all sinks; a slow sink delays the
// others rather than piling up goroutines.
type Batcher struct {
	reg      *Registry
	sinks    []Sink
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	once     sync.Once
}

// NewBatcher starts the flush loop. interval <= 0 defaults to 15s.
func NewBatcher(reg *Registry, interval time.Duration, sinks ...Sink) *Batcher {
	if interval <= 0 {
		interval = 15 * time.Second
	}
	b := &Batcher{
		reg:      reg,
		sinks:    sinks,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.loop()
	return b
}

func (b *Batcher) loop() {
	defer close(b.done)
	t := time.NewTicker(b.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			b.Flush()
		case <-b.stop:
			return
		}
	}
}

// Flush gathers and pushes one batch immediately. Errors from
// individual sinks are dropped after the first is captured; metrics
// export must never take the service down.
func (b *Batcher) Flush() error {
	samples := b.reg.Gather()
	var first error
	for _, s := range b.sinks {
		if err := s.Flush(samples); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close stops the loop, performs a final flush, and closes every sink.
// Safe to call more than once.
func (b *Batcher) Close() error {
	var err error
	b.once.Do(func() {
		close(b.stop)
		<-b.done
		err = b.Flush()
		for _, s := range b.sinks {
			if cerr := s.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}
