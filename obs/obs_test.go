package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the inclusive-upper-bound
// semantics: a value equal to a bound lands in that bucket, anything
// above the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2.5, 10})
	for _, v := range []float64{0.5, 1, 1.0000001, 2.5, 10, 11, math.Inf(1)} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 1, 2} // (..1], (1..2.5], (2.5..10], (10..+Inf)
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if !math.IsInf(s.Sum, 1) {
		t.Errorf("sum = %v, want +Inf (an Inf observation was recorded)", s.Sum)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":      {},
		"descending": {2, 1},
		"duplicate":  {1, 1},
		"inf":        {1, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds %v: expected panic", name, bounds)
				}
			}()
			newHistogram(bounds)
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestConcurrentRecording hammers one counter, gauge, and histogram
// from many goroutines; run under -race this is the data-race guard,
// and the final totals prove no increment was lost.
func TestConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "", nil)
	g := reg.Gauge("g", "", nil)
	h := reg.Histogram("h_seconds", "", nil, []float64{0.25, 0.5, 1})

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) * 0.25)
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %v, want %d", got, workers*per)
	}
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Errorf("histogram count = %d, want %d", s.Count, workers*per)
	}
	wantSum := float64(workers) * per / 4 * (0 + 0.25 + 0.5 + 0.75)
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", s.Sum, wantSum)
	}
}

// TestRegistryIdempotent proves the same (name, labels) returns the
// same instrument, so subsystems can register independently.
func TestRegistryIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "help", Labels{"scale": "8"})
	b := reg.Counter("x_total", "help", Labels{"scale": "8"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := reg.Counter("x_total", "help", Labels{"scale": "16"})
	if a == other {
		t.Fatal("different labels returned the same counter")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering one name with two types")
		}
	}()
	reg.Gauge("x_total", "", nil)
}

// TestPrometheusText is the golden test for the exposition format:
// HELP/TYPE grouping, sorted series, cumulative buckets, label
// escaping, integral-value rendering.
func TestPrometheusText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total", "Jobs by tenant.", Labels{"tenant": "b"}).Add(3)
	reg.Counter("jobs_total", "Jobs by tenant.", Labels{"tenant": `a"quote\slash`}).Add(1)
	reg.Gauge("depth", "Queue depth.", nil).Set(2.5)
	h := reg.Histogram("wait_seconds", "Queue wait.", nil, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)
	reg.Collect(func(emit func(Sample)) {
		emit(Sample{Name: "fleet_decodes_total", Type: TypeCounter, Help: "Fleet decodes.", Labels: Labels{"worker": "w1"}, Value: 7})
	})

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs_total Jobs by tenant.
# TYPE jobs_total counter
jobs_total{tenant="a\"quote\\slash"} 1
jobs_total{tenant="b"} 3
# HELP depth Queue depth.
# TYPE depth gauge
depth 2.5
# HELP wait_seconds Queue wait.
# TYPE wait_seconds histogram
wait_seconds_bucket{le="0.1"} 2
wait_seconds_bucket{le="1"} 3
wait_seconds_bucket{le="+Inf"} 4
wait_seconds_sum 30.6
wait_seconds_count 4
# HELP fleet_decodes_total Fleet decodes.
# TYPE fleet_decodes_total counter
fleet_decodes_total{worker="w1"} 7
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRecordingAllocationFree is the observability arm of the hot-loop
// allocation guard: recording into any instrument must not allocate,
// or per-point metrics would pollute the evaluate path the banded
// kernels keep allocation-free.
func TestRecordingAllocationFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "", nil)
	g := reg.Gauge("g", "", nil)
	h := reg.Histogram("h_seconds", "", nil, LatencyBuckets())

	for name, fn := range map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Gauge.Set":         func() { g.Set(3) },
		"Gauge.Add":         func() { g.Add(1) },
		"Histogram.Observe": func() { h.Observe(0.004) },
	} {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// TestBatcherFlushesToSinks covers the pluggable-sink loop: periodic
// flushes reach every sink, Close performs a final flush, and the
// LogSink line round-trips as JSON.
func TestBatcherFlushesToSinks(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("n_total", "", nil).Add(5)

	var buf safeBuffer
	log := NewLogSink(&buf)
	probe := &probeSink{}
	b := NewBatcher(reg, 5*time.Millisecond, log, probe)

	deadline := time.Now().Add(2 * time.Second)
	for probe.flushes() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if probe.flushes() == 0 {
		t.Fatal("batcher never flushed")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if !probe.closed() {
		t.Fatal("Close did not close sinks")
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	line, _, ok := strings.Cut(buf.String(), "\n")
	if !ok {
		t.Fatalf("no complete log line in %q", buf.String())
	}
	var batch struct {
		TS      string   `json:"ts"`
		Samples []Sample `json:"samples"`
	}
	if err := json.Unmarshal([]byte(line), &batch); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, line)
	}
	if batch.TS == "" || len(batch.Samples) == 0 {
		t.Fatalf("log batch incomplete: %+v", batch)
	}
	if batch.Samples[0].Name != "n_total" || batch.Samples[0].Value != 5 {
		t.Fatalf("unexpected sample: %+v", batch.Samples[0])
	}
}

type probeSink struct {
	mu      sync.Mutex
	nflush  int
	nclosed bool
}

func (p *probeSink) Flush(samples []Sample) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nflush++
	return nil
}

func (p *probeSink) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nclosed = true
	return nil
}

func (p *probeSink) flushes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nflush
}

func (p *probeSink) closed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nclosed
}

type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.004)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
