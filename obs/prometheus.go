package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family and collector sample in the
// Prometheus text exposition format (version 0.0.4): families grouped
// under one # HELP / # TYPE pair, histogram buckets cumulative with an
// "le" label, label values escaped. Families render in registration
// order; series within a family sort by canonical label key, so the
// output is deterministic and golden-testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	for _, name := range r.order {
		fam := r.families[name]
		if err := writeHeader(w, fam.name, fam.help, fam.mtype); err != nil {
			return err
		}
		for _, inst := range fam.series {
			if err := writeInstrument(w, fam, inst); err != nil {
				return err
			}
		}
	}

	// Collector samples arrive in emission order but may interleave
	// families; regroup them so each collector-only family still gets
	// a single HELP/TYPE header and sorted series.
	var collected []Sample
	for _, c := range r.collectors {
		c(func(s Sample) { collected = append(collected, s) })
	}
	return writeSamples(w, collected)
}

// writeSamples renders loose samples grouped by name. Within a name,
// series sort by their rendered label text.
func writeSamples(w io.Writer, samples []Sample) error {
	byName := make(map[string][]Sample)
	var order []string
	for _, s := range samples {
		if _, ok := byName[s.Name]; !ok {
			order = append(order, s.Name)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	sort.Strings(order)
	for _, name := range order {
		group := byName[name]
		if err := writeHeader(w, name, group[0].Help, group[0].Type); err != nil {
			return err
		}
		lines := make([]string, len(group))
		for i, s := range group {
			lines[i] = renderLabels(s.Labels) + " " + formatFloat(s.Value)
		}
		sort.Strings(lines)
		for _, l := range lines {
			if _, err := fmt.Fprintf(w, "%s%s\n", name, l); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help string, mtype MetricType) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, mtype)
	return err
}

func writeInstrument(w io.Writer, fam *family, inst *instrument) error {
	switch fam.mtype {
	case TypeCounter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, renderLabels(inst.labels), formatFloat(float64(inst.counter.Value())))
		return err
	case TypeGauge:
		v := 0.0
		if inst.gaugeFn != nil {
			v = inst.gaugeFn()
		} else if inst.gauge != nil {
			v = inst.gauge.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, renderLabels(inst.labels), formatFloat(v))
		return err
	case TypeHistogram:
		s := inst.hist.Snapshot()
		cum := uint64(0)
		for i, c := range s.Counts {
			cum += c
			le := "+Inf"
			if i < len(s.Bounds) {
				le = formatFloat(s.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, renderLabels(withLabel(inst.labels, "le", le)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, renderLabels(inst.labels), formatFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam.name, renderLabels(inst.labels), s.Count)
		return err
	}
	return nil
}

// renderLabels produces `{k="v",...}` with keys sorted, or "" for an
// empty set.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a value the way Prometheus clients expect:
// integral values without a decimal point, everything else in shortest
// round-trip form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
