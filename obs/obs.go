// Package obs is hotnoc's dependency-free metrics core: counters,
// gauges, and fixed-bucket histograms whose recording paths are single
// atomic operations (zero allocations, safe from any goroutine), plus a
// Registry that owns instrument identity and renders Prometheus text.
//
// Instruments are registered once by (name, label set) and looked up
// idempotently, so independent subsystems can share a registry without
// coordinating: asking for an existing series returns the existing
// instrument. Dynamic label sets that only exist at scrape time (one
// series per live tenant or fleet worker) are contributed by Collector
// callbacks instead of pre-registered instruments.
//
// The package deliberately has no dependencies beyond the standard
// library; the server, the simulation pipeline, and the CLIs all report
// into it without pulling HTTP or encoding concerns into the hot path.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is an immutable-by-convention label set attached to an
// instrument at registration time. Callers must not mutate a Labels map
// after passing it to a Registry.
type Labels map[string]string

// MetricType discriminates how a family is rendered and how sinks
// should interpret its samples.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Counter is a monotonically increasing value. The zero value is ready
// to use; all methods are safe for concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//hotnoc:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only go up; negative deltas are a programming
// error and there is no API for them.
//
//hotnoc:noalloc
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as float64 bits.
// The zero value is ready to use; all methods are safe for concurrent
// use and allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
//
//hotnoc:noalloc
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (which may be negative) with a CAS
// loop, so concurrent adjustments never lose updates.
//
//hotnoc:noalloc
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Buckets are defined
// by their inclusive upper bounds; an implicit +Inf bucket catches the
// rest. Observe is a short linear scan plus three atomics — no locks,
// no allocations — which keeps it safe on the per-point evaluate path.
type Histogram struct {
	bounds  []float64 // sorted, strictly increasing upper bounds
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// newHistogram validates and copies bounds. The +Inf bucket is implicit
// and must not be listed.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i, v := range b {
		if math.IsInf(v, +1) {
			panic("obs: +Inf bucket is implicit; do not list it")
		}
		if i > 0 && v <= b[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
//
//hotnoc:noalloc
func (h *Histogram) Observe(v float64) {
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough point-in-time read of a
// histogram: per-bucket counts are read individually, so a snapshot
// taken under concurrent recording may be mid-update, but every count
// it contains was true at some instant.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, +Inf implicit
	Counts []uint64  // len(Bounds)+1, non-cumulative
	Sum    float64
	Count  uint64
}

// Snapshot reads the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// ExpBuckets returns n upper bounds starting at start, each factor
// times the previous — the usual shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LatencyBuckets spans 100µs to ~5 minutes: wide enough for both the
// microsecond-scale evaluate stage and minute-scale annealing builds.
func LatencyBuckets() []float64 {
	return []float64{1e-4, 1e-3, 1e-2, 0.1, 0.25, 1, 5, 15, 60, 300}
}

// Sample is one scrape-time data point contributed by a Collector or
// exported to a Sink. Histogram instruments expand into one Sample per
// series (_bucket, _sum, _count) when gathered for sinks; Collectors
// emit plain counter/gauge samples.
type Sample struct {
	Name   string     `json:"name"`
	Type   MetricType `json:"type"`
	Help   string     `json:"help,omitempty"`
	Labels Labels     `json:"labels,omitempty"`
	Value  float64    `json:"value"`
}

// Collector contributes samples whose label sets are only known at
// scrape time (per-tenant queue depth, per-worker fleet counters).
// Collectors run under the registry lock; they must not call back into
// the registry.
type Collector func(emit func(Sample))

// instrument is one registered series.
type instrument struct {
	labels   Labels
	labelKey string
	counter  *Counter
	gauge    *Gauge
	gaugeFn  func() float64
	hist     *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	mtype  MetricType
	bounds []float64 // histogram families only
	series []*instrument
	byKey  map[string]*instrument
}

// Registry owns instrument identity and rendering. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	order      []string
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey canonicalizes a label set for identity comparison.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(',')
	}
	return b.String()
}

// lookup finds or creates the (family, series) slot for name+labels,
// enforcing that a name keeps one type and one help string.
func (r *Registry) lookup(name, help string, mtype MetricType, labels Labels) *instrument {
	if name == "" {
		panic("obs: empty metric name")
	}
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, mtype: mtype, byKey: make(map[string]*instrument)}
		r.families[name] = fam
		r.order = append(r.order, name)
	} else if fam.mtype != mtype {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, fam.mtype, mtype))
	}
	key := labelKey(labels)
	inst, ok := fam.byKey[key]
	if !ok {
		inst = &instrument{labels: labels, labelKey: key}
		fam.byKey[key] = inst
		fam.series = append(fam.series, inst)
		sort.Slice(fam.series, func(i, j int) bool { return fam.series[i].labelKey < fam.series[j].labelKey })
	}
	return inst
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst := r.lookup(name, help, TypeCounter, labels)
	if inst.counter == nil {
		inst.counter = &Counter{}
	}
	return inst.counter
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst := r.lookup(name, help, TypeGauge, labels)
	if inst.gauge == nil && inst.gaugeFn == nil {
		inst.gauge = &Gauge{}
	}
	return inst.gauge
}

// GaugeFunc registers a gauge series whose value is read from fn at
// scrape time. fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst := r.lookup(name, help, TypeGauge, labels)
	inst.gaugeFn = fn
}

// Histogram registers (or returns the existing) histogram series. Every
// series of one name shares the family's bucket bounds: the first
// registration fixes them and later calls may pass nil to reuse them.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst := r.lookup(name, help, TypeHistogram, labels)
	fam := r.families[name]
	if fam.bounds == nil {
		if bounds == nil {
			bounds = LatencyBuckets()
		}
		fam.bounds = bounds
	}
	if inst.hist == nil {
		inst.hist = newHistogram(fam.bounds)
	}
	return inst.hist
}

// Collect adds a scrape-time sample contributor.
func (r *Registry) Collect(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// Gather flattens every instrument and collector into sink samples.
// Histograms expand into per-bucket samples with an "le" label plus
// _sum and _count, mirroring the Prometheus exposition shape so a sink
// line can be joined against a scrape.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for _, name := range r.order {
		fam := r.families[name]
		for _, inst := range fam.series {
			switch fam.mtype {
			case TypeCounter:
				out = append(out, Sample{Name: name, Type: TypeCounter, Help: fam.help, Labels: inst.labels, Value: float64(inst.counter.Value())})
			case TypeGauge:
				v := 0.0
				if inst.gaugeFn != nil {
					v = inst.gaugeFn()
				} else if inst.gauge != nil {
					v = inst.gauge.Value()
				}
				out = append(out, Sample{Name: name, Type: TypeGauge, Help: fam.help, Labels: inst.labels, Value: v})
			case TypeHistogram:
				s := inst.hist.Snapshot()
				cum := uint64(0)
				for i, c := range s.Counts {
					cum += c
					le := "+Inf"
					if i < len(s.Bounds) {
						le = formatFloat(s.Bounds[i])
					}
					out = append(out, Sample{Name: name + "_bucket", Type: TypeHistogram, Help: fam.help, Labels: withLabel(inst.labels, "le", le), Value: float64(cum)})
				}
				out = append(out, Sample{Name: name + "_sum", Type: TypeHistogram, Help: fam.help, Labels: inst.labels, Value: s.Sum})
				out = append(out, Sample{Name: name + "_count", Type: TypeHistogram, Help: fam.help, Labels: inst.labels, Value: float64(s.Count)})
			}
		}
	}
	for _, c := range r.collectors {
		c(func(s Sample) { out = append(out, s) })
	}
	return out
}

// withLabel copies labels plus one extra pair.
func withLabel(labels Labels, k, v string) Labels {
	out := make(Labels, len(labels)+1)
	for lk, lv := range labels {
		out[lk] = lv
	}
	out[k] = v
	return out
}
