package hotnoc

import (
	"context"

	"hotnoc/internal/sim"
)

// Re-exported sweep types, so downstream users need only this package.
type (
	// SweepPoint is one cell of an experiment grid: a tagged union of a
	// periodic experiment (configuration, migration scheme, period in
	// blocks, energy ablation flag) and a reactive one (configuration,
	// scheme, threshold parameters). A literal without reactive parameters
	// is periodic, so pre-existing grids keep their meaning; use
	// PeriodicPoint and ReactivePoint to build the two arms explicitly.
	SweepPoint = sim.Point
	// PointKind discriminates a SweepPoint's experiment; see KindPeriodic
	// and KindReactive.
	PointKind = sim.Kind
	// SweepOutcome pairs a grid point with its calibrated build and the
	// result arm matching its kind: Result for periodic points, Reactive
	// for reactive ones.
	SweepOutcome = sim.Outcome
	// SweepOptions sets the workload scale, worker-pool size, cache
	// directory and progress callback.
	SweepOptions = sim.Options
	// SweepRunner executes grids with persistent build and
	// characterization caches.
	SweepRunner = sim.Runner
)

// The two experiment kinds a SweepPoint can run.
const (
	// KindPeriodic is the paper's fixed-period migration policy.
	KindPeriodic = sim.KindPeriodic
	// KindReactive is the threshold-triggered (sensor-driven) policy.
	KindReactive = sim.KindReactive
)

// PeriodicPoint returns a periodic grid point: config under scheme,
// migrating every blocks decoded blocks.
func PeriodicPoint(config string, scheme Scheme, blocks int) SweepPoint {
	return sim.Periodic(config, scheme, blocks)
}

// ReactivePoint returns a reactive grid point: config under cfg's
// threshold-triggered policy (the point's scheme is cfg.Scheme). Reactive
// points mix freely with periodic ones in a single Sweep, sharing NoC
// characterizations per (config, scheme).
func ReactivePoint(config string, cfg ReactiveConfig) SweepPoint {
	return sim.Reactive(config, cfg)
}

// ReactiveGrid returns one reactive point per threshold configuration on
// one chip configuration, in input order — the grid Lab.Reactive and
// remote clients sweep.
func ReactiveGrid(config string, cfgs []ReactiveConfig) []SweepPoint {
	return sim.ReactiveGrid(config, cfgs)
}

// ValidateSweep fails fast on a malformed grid, naming the first bad
// point — the same check sim.Runner applies at the head of every sweep
// and the hotnocd daemon applies at submission time.
func ValidateSweep(pts []SweepPoint) error { return sim.ValidatePoints(pts) }

// Sweep evaluates an arbitrary configuration × scheme × period grid
// concurrently and returns outcomes in point order.
//
// Deprecated: use Lab.Sweep (streaming) or Lab.SweepAll:
//
//	lab := hotnoc.NewLab(hotnoc.WithScale(8))
//	outs, err := lab.SweepAll(ctx, pts)
//
// Sweep routes through a shared default Lab per (scale, workers,
// cache-dir), so repeated legacy calls do reuse the build and
// characterization caches. Only a call with a Progress callback (which
// cannot be shared) pays for a private runner.
func Sweep(ctx context.Context, pts []SweepPoint, opts SweepOptions) ([]SweepOutcome, error) {
	if opts.Progress != nil || opts.CacheLimit != 0 {
		// Callbacks and eviction policy are per-caller concerns that a
		// shared Lab cannot honor; such calls keep a private runner.
		return sim.NewRunner(opts).Run(ctx, pts)
	}
	return defaultLab(opts.Scale, opts.Workers, opts.CacheDir).SweepAll(ctx, pts)
}

// SweepGrid builds the cross product configs × schemes × blocks in
// configuration-major order. Nil blocks means the one-block base period.
func SweepGrid(configs []string, schemes []Scheme, blocks []int) []SweepPoint {
	return sim.Grid(configs, schemes, blocks)
}

// NewSweepRunner returns a reusable runner whose caches persist across
// Run calls.
//
// Deprecated: use NewLab; a Lab wraps the same runner behind options,
// streaming sweeps and experiment methods.
func NewSweepRunner(opts SweepOptions) *SweepRunner { return sim.NewRunner(opts) }
