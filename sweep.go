package hotnoc

import (
	"context"

	"hotnoc/internal/sim"
)

// Re-exported sweep types, so downstream users need only this package.
type (
	// SweepPoint is one cell of an experiment grid: a configuration, a
	// migration scheme, a period in blocks, and the energy ablation flag.
	SweepPoint = sim.Point
	// SweepOutcome pairs a grid point with its calibrated build and run
	// result.
	SweepOutcome = sim.Outcome
	// SweepOptions sets the workload scale, worker-pool size, cache
	// directory and progress callback.
	SweepOptions = sim.Options
	// SweepRunner executes grids with persistent build and
	// characterization caches.
	SweepRunner = sim.Runner
)

// Sweep evaluates an arbitrary configuration × scheme × period grid
// concurrently and returns outcomes in point order.
//
// Deprecated: use Lab.Sweep (streaming) or Lab.SweepAll:
//
//	lab := hotnoc.NewLab(hotnoc.WithScale(8))
//	outs, err := lab.SweepAll(ctx, pts)
//
// Sweep routes through a shared default Lab per (scale, workers,
// cache-dir), so repeated legacy calls do reuse the build and
// characterization caches. Only a call with a Progress callback (which
// cannot be shared) pays for a private runner.
func Sweep(ctx context.Context, pts []SweepPoint, opts SweepOptions) ([]SweepOutcome, error) {
	if opts.Progress != nil || opts.CacheLimit != 0 {
		// Callbacks and eviction policy are per-caller concerns that a
		// shared Lab cannot honor; such calls keep a private runner.
		return sim.NewRunner(opts).Run(ctx, pts)
	}
	return defaultLab(opts.Scale, opts.Workers, opts.CacheDir).SweepAll(ctx, pts)
}

// SweepGrid builds the cross product configs × schemes × blocks in
// configuration-major order. Nil blocks means the one-block base period.
func SweepGrid(configs []string, schemes []Scheme, blocks []int) []SweepPoint {
	return sim.Grid(configs, schemes, blocks)
}

// NewSweepRunner returns a reusable runner whose caches persist across
// Run calls.
//
// Deprecated: use NewLab; a Lab wraps the same runner behind options,
// streaming sweeps and experiment methods.
func NewSweepRunner(opts SweepOptions) *SweepRunner { return sim.NewRunner(opts) }
