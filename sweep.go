package hotnoc

import (
	"context"

	"hotnoc/internal/sim"
)

// Re-exported sweep types, so downstream users need only this package.
type (
	// SweepPoint is one cell of an experiment grid: a configuration, a
	// migration scheme, a period in blocks, and the energy ablation flag.
	SweepPoint = sim.Point
	// SweepOutcome pairs a grid point with its calibrated build and run
	// result.
	SweepOutcome = sim.Outcome
	// SweepOptions sets the workload scale and worker-pool size.
	SweepOptions = sim.Options
	// SweepRunner executes grids with a persistent build cache.
	SweepRunner = sim.Runner
)

// Sweep evaluates an arbitrary configuration × scheme × period grid
// concurrently and returns outcomes in point order. Each configuration is
// built and calibrated once, each (configuration, scheme) orbit is
// characterized on the cycle-accurate NoC once, and every period/ablation
// variant reuses that characterization for a cheap thermal evaluation.
// Results are bitwise identical to a serial walk of the same grid. The
// context cancels in-flight work between cells.
//
//	pts := hotnoc.SweepGrid([]string{"A", "E"}, hotnoc.Schemes(), []int{1, 4, 8})
//	outs, err := hotnoc.Sweep(ctx, pts, hotnoc.SweepOptions{Scale: 8})
func Sweep(ctx context.Context, pts []SweepPoint, opts SweepOptions) ([]SweepOutcome, error) {
	return sim.NewRunner(opts).Run(ctx, pts)
}

// SweepGrid builds the cross product configs × schemes × blocks in
// configuration-major order. Nil blocks means the one-block base period.
func SweepGrid(configs []string, schemes []Scheme, blocks []int) []SweepPoint {
	return sim.Grid(configs, schemes, blocks)
}

// NewSweepRunner returns a reusable runner whose build cache persists
// across Run calls — useful for interactive tools that sweep repeatedly
// over the same configurations.
func NewSweepRunner(opts SweepOptions) *SweepRunner { return sim.NewRunner(opts) }
