#!/usr/bin/env sh
# check.sh mirrors CI locally: build, vet, tests, the full-tree race
# detector, the hotnoclint invariant analyzers, the hotnocd service
# smoke, staticcheck/govulncheck when installed, and a one-iteration
# bench smoke over the scaled-down packages so bench code cannot rot.
set -eu

cd "$(dirname "$0")/.."

echo "== go build" && go build ./...
echo "== go vet" && go vet ./...
echo "== go test" && go test ./...
echo "== thermal differential (banded vs dense reference, batched, singular)" \
    && go test -count=1 -run 'TestBanded|TestSteadySolveBatch|TestHotLoopsAllocationFree' ./internal/thermal
echo "== go test -race (full tree)" && go test -race ./...
echo "== hotnoclint (lockorder, noalloc, determinism, errcache)" \
    && go run ./cmd/hotnoclint ./...
echo "== service smoke (hotnocd + figure1/hotsim -server)" && sh scripts/service_smoke.sh

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck" && staticcheck ./...
else
    echo "== staticcheck not installed; skipping (CI runs it)"
fi

if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck" && govulncheck ./...
else
    echo "== govulncheck not installed; skipping (CI runs it)"
fi

echo "== bench smoke (internal packages + obs, 1 iteration)"
go test -run '^$' -bench=. -benchtime=1x ./internal/... ./obs

echo "== bench smoke (warm build reconstitution, 1 iteration)"
go test -run '^$' -bench 'BenchmarkBuildWarm' -benchtime=1x .

echo "== bench trajectory + alloc guard (scripts/bench.sh, thermal only)"
BENCHTIME=100x SKIP_PAPER=1 BENCH_OUT=/tmp/bench_smoke.json sh scripts/bench.sh

echo "ok"
