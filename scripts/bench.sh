#!/usr/bin/env sh
# bench.sh records the benchmark trajectory for a PR: it runs the pinned
# thermal-kernel benchmarks (with -benchmem) plus a one-iteration
# paper-scale pass, writes BENCH_<pr>.json at the repo root with ns/op,
# B/op and allocs/op per benchmark, and fails if any of the hot loops
# pinned at zero allocations (SteadySolve, TransientStep, CycleLoopStep,
# plus the obs recording paths HistogramObserve and CounterInc) reports
# a nonzero allocs/op.
#
# Usage: bench.sh [pr-number]        (default 9)
# Env:   BENCHTIME=100x|1s|...       thermal benchtime (default 1s)
#        SKIP_PAPER=1                skip the paper-scale benchmarks
#        BENCH_OUT=path              output path (default BENCH_<pr>.json)
set -eu

cd "$(dirname "$0")/.."

PR="${1:-9}"
OUT="${BENCH_OUT:-BENCH_${PR}.json}"
BENCHTIME="${BENCHTIME:-1s}"
SKIP_PAPER="${SKIP_PAPER:-0}"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "== thermal kernel benchmarks (benchtime $BENCHTIME)"
go test -run '^$' \
    -bench '^(BenchmarkFactor|BenchmarkFactorBanded|BenchmarkSteadySolve|BenchmarkSteadySolveDense|BenchmarkSteadySolveBatch|BenchmarkInfluenceBuild|BenchmarkTransientStep|BenchmarkCycleLoopStep|BenchmarkRunCycle|BenchmarkEvaluateCycle)$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/thermal | tee -a "$TMP"

echo "== obs recording benchmarks (benchtime $BENCHTIME)"
go test -run '^$' -bench '^(BenchmarkHistogramObserve|BenchmarkCounterInc)$' \
    -benchmem -benchtime "$BENCHTIME" ./obs | tee -a "$TMP"

if [ "$SKIP_PAPER" != 1 ]; then
    echo "== paper-scale trajectory (1 iteration)"
    go test -run '^$' -bench '^(BenchmarkPeriodSweepShared|BenchmarkBuildWarm)$' \
        -benchmem -benchtime=1x -timeout=30m . | tee -a "$TMP"
fi

awk -v pr="$PR" -v gover="$(go version | awk '{print $3}')" '
BEGIN { printf "{\n  \"pr\": %s,\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", pr, gover }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bop = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        else if ($i == "B/op") bop = $(i-1)
        else if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", \
        name, ns, (bop == "" ? "null" : bop), (allocs == "" ? "null" : allocs)
}
END { printf "\n  ]\n}\n" }
' "$TMP" > "$OUT"
echo "wrote $OUT"

echo "== alloc guard (hot loops pinned at 0 allocs/op)"
awk '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (name != "BenchmarkSteadySolve" && name != "BenchmarkTransientStep" && name != "BenchmarkCycleLoopStep" &&
        name != "BenchmarkHistogramObserve" && name != "BenchmarkCounterInc") next
    seen++
    for (i = 2; i <= NF; i++)
        if ($i == "allocs/op" && $(i-1) + 0 != 0) { print "FAIL: " name " reports " $(i-1) " allocs/op"; bad = 1 }
}
END {
    if (seen < 5) { print "FAIL: pinned benchmarks missing from bench output"; exit 1 }
    if (bad) exit 1
    print "ok: all pinned hot loops at 0 allocs/op"
}
' "$TMP"
