#!/usr/bin/env sh
# service_smoke.sh: end-to-end smoke of the hotnocd service path. Builds
# hotnocd, figure1 and hotsim, starts a daemon on a scratch port with a
# scratch cache dir, runs the figure remotely, and requires the JSON to
# be byte-identical to the in-process run — then runs it remotely again
# to prove the daemon's characterization cache serves the repeat.
# It then pushes a reactive (threshold-triggered) evaluation through
# the same daemon and requires hotsim's report to be byte-identical to
# the in-process run — the unified point model's remote surface, end to
# end. It then restarts the daemon on the same cache dir and requires
# the restarted daemon to warm-start: byte-identical output with zero
# builds (annealing/calibration) and zero NoC decodes, asserted through
# /v1/stats. Finally it restarts once more with a tenants file and
# exercises the multi-tenant surface: unauthenticated submissions are
# 401, an authenticated figure1 -server run stays byte-identical to the
# in-process run, an over-rate tenant gets 429 + Retry-After, and the
# rejection shows up in that tenant's /v1/stats accounting. On the same
# tenants daemon it exercises the observability surface: /metrics must
# expose the stage-latency histograms, per-tenant job counters and the
# throttled tenant's exact rejection count, and a background 5-point
# sweep polled through GET /v1/jobs/{id} must report points_done
# advancing through intermediate values to completion. Finally it
# rebuilds the service as a fleet — a coordinator with two joined
# workers on cold, separate cache dirs — and requires the sharded
# figure1 run to stay byte-identical to the in-process run while the
# aggregated /v1/stats show every characterization and build computed
# exactly once fleet-wide — and the coordinator's /metrics carries the
# same exactly-once counters as monotonic fleet series plus a non-empty
# queue-wait histogram. CI runs this as the service-smoke job;
# check.sh mirrors it locally.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
daemon_pid=""
worker_pids=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    for p in $worker_pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/hotnocd" ./cmd/hotnocd
go build -o "$workdir/figure1" ./cmd/figure1
go build -o "$workdir/hotsim" ./cmd/hotsim

port=$((20000 + $$ % 10000))
addr="127.0.0.1:$port"
"$workdir/hotnocd" -addr "$addr" -cache-dir "$workdir/cache" >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

echo "== figure1 in process"
"$workdir/figure1" -scale 8 -configs A,E -json >"$workdir/local.json"

echo "== figure1 -server http://$addr (cold daemon)"
ok=0
i=0
while [ "$i" -lt 50 ]; do
    if "$workdir/figure1" -server "http://$addr" -scale 8 -configs A,E -json \
        >"$workdir/remote.json" 2>"$workdir/remote.err"; then
        ok=1
        break
    fi
    i=$((i + 1))
    sleep 0.2
done
if [ "$ok" != 1 ]; then
    echo "service smoke: daemon never served figure1" >&2
    cat "$workdir/remote.err" "$workdir/daemon.log" >&2
    exit 1
fi

if ! cmp -s "$workdir/local.json" "$workdir/remote.json"; then
    echo "service smoke: remote JSON differs from in-process run" >&2
    diff "$workdir/local.json" "$workdir/remote.json" >&2 || true
    exit 1
fi

echo "== figure1 -server http://$addr (warm daemon cache)"
"$workdir/figure1" -server "http://$addr" -scale 8 -configs A,E -json >"$workdir/remote2.json"
if ! cmp -s "$workdir/local.json" "$workdir/remote2.json"; then
    echo "service smoke: warm remote JSON differs" >&2
    exit 1
fi

reactive_flags="-reactive -trigger 84 -sim-blocks 300 -warmup-blocks 150 -config A -scale 8"

echo "== hotsim $reactive_flags (in process)"
# shellcheck disable=SC2086
"$workdir/hotsim" $reactive_flags >"$workdir/reactive_local.txt"

echo "== hotsim $reactive_flags -server http://$addr"
# shellcheck disable=SC2086
"$workdir/hotsim" $reactive_flags -server "http://$addr" >"$workdir/reactive_remote.txt"
if ! cmp -s "$workdir/reactive_local.txt" "$workdir/reactive_remote.txt"; then
    echo "service smoke: remote reactive report differs from in-process run" >&2
    diff "$workdir/reactive_local.txt" "$workdir/reactive_remote.txt" >&2 || true
    exit 1
fi

echo "== restarting the daemon on the same cache dir"
kill "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
"$workdir/hotnocd" -addr "$addr" -cache-dir "$workdir/cache" >"$workdir/daemon2.log" 2>&1 &
daemon_pid=$!

echo "== figure1 -server http://$addr (restarted daemon, warm cache dir)"
ok=0
i=0
while [ "$i" -lt 50 ]; do
    if "$workdir/figure1" -server "http://$addr" -scale 8 -configs A,E -json \
        >"$workdir/remote3.json" 2>"$workdir/remote3.err"; then
        ok=1
        break
    fi
    i=$((i + 1))
    sleep 0.2
done
if [ "$ok" != 1 ]; then
    echo "service smoke: restarted daemon never served figure1" >&2
    cat "$workdir/remote3.err" "$workdir/daemon2.log" >&2
    exit 1
fi
if ! cmp -s "$workdir/local.json" "$workdir/remote3.json"; then
    echo "service smoke: restarted daemon's JSON differs from in-process run" >&2
    diff "$workdir/local.json" "$workdir/remote3.json" >&2 || true
    exit 1
fi

# The restarted daemon must have reconstituted every build from the
# persisted snapshots (zero cold builds) and served every orbit from the
# characterization cache (zero decodes).
fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}
stats=$(fetch "http://$addr/v1/stats")
echo "$stats" >"$workdir/stats.json"
case "$stats" in
*'"build_misses":0'*) ;;
*)
    echo "service smoke: restarted daemon performed cold builds: $stats" >&2
    exit 1
    ;;
esac
case "$stats" in
*'"decodes":0'*) ;;
*)
    echo "service smoke: restarted daemon re-simulated orbits: $stats" >&2
    exit 1
    ;;
esac
case "$stats" in
*'"build_hits":2'*) ;;
*)
    echo "service smoke: restarted daemon did not warm-start its builds: $stats" >&2
    exit 1
    ;;
esac

echo "== restarting the daemon with a tenants file"
kill "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true

hash_key() {
    if command -v sha256sum >/dev/null 2>&1; then
        printf '%s' "$1" | sha256sum | cut -d' ' -f1
    elif command -v shasum >/dev/null 2>&1; then
        printf '%s' "$1" | shasum -a 256 | cut -d' ' -f1
    else
        printf '%s' "$1" | openssl dgst -sha256 | awk '{print $NF}'
    fi
}

ci_key="smoke-ci-key-$$"
throttled_key="smoke-throttled-key-$$"
cat >"$workdir/tenants.json" <<EOF
{
  "tenants": [
    {"id": "ci", "key_sha256": "$(hash_key "$ci_key")", "weight": 2},
    {"id": "throttled", "key_sha256": "$(hash_key "$throttled_key")",
     "rate_per_sec": 0.001, "burst": 1}
  ]
}
EOF
# -workers 1 serializes the Lab pipeline so the progress poll below
# deterministically observes points completing one at a time; the
# figure1 run on this daemon is fully cache-warm, so it costs nothing.
"$workdir/hotnocd" -addr "$addr" -cache-dir "$workdir/cache" \
    -tenants "$workdir/tenants.json" -workers 1 >"$workdir/daemon3.log" 2>&1 &
daemon_pid=$!

i=0
while [ "$i" -lt 50 ]; do
    if fetch "http://$addr/healthz" >/dev/null 2>&1; then
        break
    fi
    i=$((i + 1))
    sleep 0.2
done

# post_sweep KEY: submit a one-point sweep (Bearer KEY when non-empty),
# print the HTTP status, leave the response headers in resp_hdrs.
post_sweep() {
    body='{"scale":8,"points":[{"config":"A","scheme":"Rot","blocks":1}]}'
    if command -v curl >/dev/null 2>&1; then
        if [ -n "$1" ]; then
            curl -s -o /dev/null -D "$workdir/resp_hdrs" -w '%{http_code}' \
                -H "Authorization: Bearer $1" -H 'Content-Type: application/json' \
                -d "$body" "http://$addr/v1/sweeps"
        else
            curl -s -o /dev/null -D "$workdir/resp_hdrs" -w '%{http_code}' \
                -H 'Content-Type: application/json' \
                -d "$body" "http://$addr/v1/sweeps"
        fi
    else
        if [ -n "$1" ]; then
            wget -O /dev/null --server-response \
                --header "Authorization: Bearer $1" --header 'Content-Type: application/json' \
                --post-data "$body" "http://$addr/v1/sweeps" 2>"$workdir/resp_hdrs" || true
        else
            wget -O /dev/null --server-response \
                --header 'Content-Type: application/json' \
                --post-data "$body" "http://$addr/v1/sweeps" 2>"$workdir/resp_hdrs" || true
        fi
        awk '/^  HTTP\//{code=$2} END{print code}' "$workdir/resp_hdrs"
    fi
}

echo "== unauthenticated submission is rejected"
status=$(post_sweep "")
if [ "$status" != "401" ]; then
    echo "service smoke: unauthenticated sweep answered $status, want 401" >&2
    cat "$workdir/daemon3.log" >&2
    exit 1
fi
status=$(post_sweep "wrong-key")
if [ "$status" != "401" ]; then
    echo "service smoke: wrong-key sweep answered $status, want 401" >&2
    exit 1
fi

echo "== figure1 -server http://$addr -api-key ... (authenticated tenant)"
"$workdir/figure1" -server "http://$addr" -api-key "$ci_key" \
    -scale 8 -configs A,E -json >"$workdir/remote4.json"
if ! cmp -s "$workdir/local.json" "$workdir/remote4.json"; then
    echo "service smoke: authenticated remote JSON differs from in-process run" >&2
    diff "$workdir/local.json" "$workdir/remote4.json" >&2 || true
    exit 1
fi

echo "== over-rate tenant gets 429 + Retry-After"
status=$(post_sweep "$throttled_key")
if [ "$status" != "201" ]; then
    echo "service smoke: throttled tenant's first sweep answered $status, want 201" >&2
    exit 1
fi
status=$(post_sweep "$throttled_key")
if [ "$status" != "429" ]; then
    echo "service smoke: over-rate sweep answered $status, want 429" >&2
    exit 1
fi
if ! grep -qi '^retry-after:' "$workdir/resp_hdrs" &&
    ! grep -qi 'Retry-After' "$workdir/resp_hdrs"; then
    echo "service smoke: over-rate 429 carries no Retry-After header" >&2
    cat "$workdir/resp_hdrs" >&2
    exit 1
fi

echo "== per-tenant accounting on /v1/stats"
if command -v curl >/dev/null 2>&1; then
    stats=$(curl -fsS -H "Authorization: Bearer $ci_key" "http://$addr/v1/stats")
else
    stats=$(wget -qO- --header "Authorization: Bearer $ci_key" "http://$addr/v1/stats")
fi
case "$stats" in
*'"auth_required":true'*) ;;
*)
    echo "service smoke: stats do not report auth_required: $stats" >&2
    exit 1
    ;;
esac
case "$stats" in
*'"id":"throttled"'*'"rejected":1'* | *'"rejected":1'*'"id":"throttled"'*) ;;
*)
    echo "service smoke: throttled tenant's rejection missing from stats: $stats" >&2
    exit 1
    ;;
esac

echo "== /metrics exposition on the tenants daemon"
# /metrics is unauthenticated like /healthz — a scraper needs no tenant
# key. The ci tenant ran figure1 (A,E x 5 schemes) and the throttled
# tenant holds exactly one accepted job and one 429.
metrics=$(fetch "http://$addr/metrics")
echo "$metrics" >"$workdir/metrics.txt"
for want in \
    '# TYPE hotnoc_stage_seconds histogram' \
    'hotnoc_stage_seconds_count{scale="8",stage="evaluate"}' \
    '# TYPE hotnocd_queue_wait_seconds histogram' \
    'hotnocd_jobs_total{state="done",tenant="ci"}' \
    'hotnocd_submissions_rejected_total{tenant="throttled"} 1'; do
    case "$metrics" in
    *"$want"*) ;;
    *)
        echo "service smoke: /metrics is missing '$want'" >&2
        exit 1
        ;;
    esac
done

echo "== live job introspection: points_done advances on a running sweep"
# Config B is absent from the warm cache, so its build and five
# characterizations give the poll loop real work to watch.
progress_body='{"scale":8,"points":[
  {"config":"B","scheme":"rot","blocks":1},
  {"config":"B","scheme":"x mirror","blocks":1},
  {"config":"B","scheme":"x-y mirror","blocks":1},
  {"config":"B","scheme":"right shift","blocks":1},
  {"config":"B","scheme":"x-y shift","blocks":1}]}'
if command -v curl >/dev/null 2>&1; then
    created=$(curl -fsS -H "Authorization: Bearer $ci_key" \
        -H 'Content-Type: application/json' -d "$progress_body" "http://$addr/v1/sweeps")
else
    created=$(wget -qO- --header "Authorization: Bearer $ci_key" \
        --header 'Content-Type: application/json' \
        --post-data "$progress_body" "http://$addr/v1/sweeps")
fi
job_id=$(printf '%s' "$created" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
if [ -z "$job_id" ]; then
    echo "service smoke: progress sweep submission returned no job id: $created" >&2
    exit 1
fi

fetch_job() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -H "Authorization: Bearer $ci_key" "http://$addr/v1/jobs/$job_id"
    else
        wget -qO- --header "Authorization: Bearer $ci_key" "http://$addr/v1/jobs/$job_id"
    fi
}
prev=-1
advances=0
final_done=0
i=0
while [ "$i" -lt 3000 ]; do
    info=$(fetch_job)
    done_n=$(printf '%s' "$info" | sed -n 's/.*"points_done":\([0-9]*\).*/\1/p')
    [ -z "$done_n" ] && done_n=0
    if [ "$done_n" -lt "$prev" ]; then
        echo "service smoke: points_done regressed $prev -> $done_n: $info" >&2
        exit 1
    fi
    if [ "$prev" -ge 0 ] && [ "$done_n" -gt "$prev" ]; then
        advances=$((advances + 1))
    fi
    prev=$done_n
    case "$info" in
    *'"state":"done"'*)
        final_done=$done_n
        break
        ;;
    *'"state":"failed"'* | *'"state":"canceled"'*)
        echo "service smoke: progress sweep ended badly: $info" >&2
        exit 1
        ;;
    esac
    i=$((i + 1))
    sleep 0.02
done
if [ "$final_done" != 5 ]; then
    echo "service smoke: progress sweep never finished with 5 points (last: $prev)" >&2
    exit 1
fi
# "Advancing" means the poll caught points_done strictly increasing more
# than once — an intermediate value between 0 and 5, not just the jump
# to the terminal snapshot.
if [ "$advances" -lt 2 ]; then
    echo "service smoke: points_done never advanced through intermediate values (advances=$advances)" >&2
    exit 1
fi

echo "== restarting as a fleet: coordinator + 2 workers"
kill "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true

fleet_secret="smoke-fleet-secret-$$"
"$workdir/hotnocd" -addr "$addr" -coordinator -fleet-secret "$fleet_secret" \
    >"$workdir/coord.log" 2>&1 &
daemon_pid=$!
i=0
while [ "$i" -lt 50 ]; do
    if fetch "http://$addr/healthz" >/dev/null 2>&1; then
        break
    fi
    i=$((i + 1))
    sleep 0.2
done

# Two workers with cold, separate cache dirs: any characterization or
# build either worker performs is its own, so the fleet-wide counters
# below prove the coordinator never computed an artifact twice.
w=1
while [ "$w" -le 2 ]; do
    waddr="127.0.0.1:$((port + w))"
    "$workdir/hotnocd" -addr "$waddr" -cache-dir "$workdir/wcache$w" \
        -join "http://$addr" -fleet-secret "$fleet_secret" \
        >"$workdir/worker$w.log" 2>&1 &
    worker_pids="$worker_pids $!"
    w=$((w + 1))
done

i=0
while [ "$i" -lt 50 ]; do
    n=$(fetch "http://$addr/v1/workers" 2>/dev/null | grep -o '"id":"w-' | wc -l)
    [ "$n" -ge 2 ] && break
    i=$((i + 1))
    sleep 0.2
done
if [ "$n" -lt 2 ]; then
    echo "service smoke: fleet never reached 2 registered workers" >&2
    cat "$workdir/coord.log" "$workdir/worker1.log" "$workdir/worker2.log" >&2
    exit 1
fi

echo "== figure1 -server http://$addr (sharded across the fleet)"
"$workdir/figure1" -server "http://$addr" -scale 8 -configs A,E -json >"$workdir/fleet.json"
if ! cmp -s "$workdir/local.json" "$workdir/fleet.json"; then
    echo "service smoke: fleet JSON differs from in-process run" >&2
    diff "$workdir/local.json" "$workdir/fleet.json" >&2 || true
    exit 1
fi

# Aggregated /v1/stats: A,E x 5 schemes = 10 characterizations and 2
# builds fleet-wide, each computed on exactly one worker — more would
# mean duplicated work, fewer a short-circuited sweep.
stats=$(fetch "http://$addr/v1/stats")
echo "$stats" >"$workdir/fleet_stats.json"
case "$stats" in
*'"cache_misses":10'*) ;;
*)
    echo "service smoke: fleet-wide characterizations not exactly-once: $stats" >&2
    exit 1
    ;;
esac
case "$stats" in
*'"build_misses":2'*) ;;
*)
    echo "service smoke: fleet-wide builds not exactly-once: $stats" >&2
    exit 1
    ;;
esac
n=$(printf '%s' "$stats" | grep -o '"id":"w-' | wc -l)
if [ "$n" -ne 2 ]; then
    echo "service smoke: coordinator stats list $n workers, want 2: $stats" >&2
    exit 1
fi

echo "== coordinator /metrics: monotonic fleet counters + queue-wait histogram"
# The scrape triggers the coordinator's worker-stats aggregation, so the
# fleet series must show the same exactly-once totals as /v1/stats.
fmetrics=$(fetch "http://$addr/metrics")
echo "$fmetrics" >"$workdir/fleet_metrics.txt"
for want in \
    'hotnocd_fleet_cache_misses_total 10' \
    'hotnocd_fleet_build_misses_total 2' \
    'hotnocd_fleet_workers 2' \
    'hotnocd_fleet_worker_cache_misses_total{worker="'; do
    case "$fmetrics" in
    *"$want"*) ;;
    *)
        echo "service smoke: coordinator /metrics is missing '$want'" >&2
        echo "$fmetrics" >&2
        exit 1
        ;;
    esac
done
qwait=$(printf '%s\n' "$fmetrics" |
    awk '/^hotnocd_queue_wait_seconds_count /{print $2}')
if [ -z "$qwait" ] || [ "$qwait" -lt 1 ]; then
    echo "service smoke: coordinator queue-wait histogram is empty (count='$qwait')" >&2
    exit 1
fi

echo "service smoke ok (byte-identical local/remote figure1 + reactive hotsim + warm daemon restart: 0 builds, 0 decodes + tenants: 401/429/per-tenant stats + observability: /metrics histograms, exact per-tenant counters, advancing points_done + fleet: byte-identical shard merge, exactly-once artifacts, monotonic fleet metrics)"
