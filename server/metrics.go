package server

import (
	"net/http"
	"time"

	"hotnoc/obs"
)

// serverMetrics is the daemon's own instrument set: scheduler depth
// gauges, queue-wait and job-lifecycle counters, all per-tenant where a
// tenant is accountable. Every method is nil-receiver safe so a daemon
// with metrics disabled pays a single pointer check per call site.
//
// Gauges are updated explicitly at the scheduler's mutation points
// (enqueue, dispatch, terminal) rather than through scrape-time
// collectors: a collector reading scheduler state would need s.mu,
// and s.mu is held around Lab creation, which registers instruments —
// taking the registry lock. Explicit updates keep the two locks
// strictly ordered (server → registry, never back).
type serverMetrics struct {
	reg *obs.Registry

	queueWait   *obs.Histogram
	jobsRunning *obs.Gauge
	jobsQueued  *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reg: reg,
		queueWait: reg.Histogram("hotnocd_queue_wait_seconds",
			"Time sweep jobs spent queued between admission and dispatch.", nil, nil),
		jobsRunning: reg.Gauge("hotnocd_jobs_running",
			"Sweep jobs currently running.", nil),
		jobsQueued: reg.Gauge("hotnocd_jobs_queued",
			"Sweep jobs currently waiting in tenant queues.", nil),
	}
}

// tenantQueueDepth is the per-tenant slice of the queued-jobs gauge.
func (m *serverMetrics) tenantQueueDepth(tenant string) *obs.Gauge {
	return m.reg.Gauge("hotnocd_tenant_jobs_queued",
		"Sweep jobs waiting in one tenant's queue.", obs.Labels{"tenant": tenant})
}

// jobQueued records a job entering its tenant's queue.
func (m *serverMetrics) jobQueued(tenant string) {
	if m == nil {
		return
	}
	m.jobsQueued.Add(1)
	m.tenantQueueDepth(tenant).Add(1)
}

// jobDispatched records a queued job winning a slot after wait.
func (m *serverMetrics) jobDispatched(tenant string, wait time.Duration) {
	if m == nil {
		return
	}
	m.jobsQueued.Add(-1)
	m.tenantQueueDepth(tenant).Add(-1)
	m.jobsRunning.Add(1)
	m.queueWait.Observe(wait.Seconds())
}

// jobFinished records a dispatched job reaching the terminal state.
func (m *serverMetrics) jobFinished(tenant, state string) {
	if m == nil {
		return
	}
	m.jobsRunning.Add(-1)
	m.jobsTotal(tenant, state).Inc()
}

// jobTerminatedQueued records a job canceled out of its queue without
// ever running.
func (m *serverMetrics) jobTerminatedQueued(tenant, state string) {
	if m == nil {
		return
	}
	m.jobsQueued.Add(-1)
	m.tenantQueueDepth(tenant).Add(-1)
	m.jobsTotal(tenant, state).Inc()
}

func (m *serverMetrics) jobsTotal(tenant, state string) *obs.Counter {
	return m.reg.Counter("hotnocd_jobs_total",
		"Sweep jobs finished, by tenant and terminal state.",
		obs.Labels{"tenant": tenant, "state": state})
}

// rejected records an admission 429 (submit rate or queue bound).
func (m *serverMetrics) rejected(tenant string) {
	if m == nil {
		return
	}
	m.reg.Counter("hotnocd_submissions_rejected_total",
		"Sweep submissions rejected with 429, by tenant.",
		obs.Labels{"tenant": tenant}).Inc()
}

// pointsCounter resolves one tenant's served-points counter. Resolved
// once per job, then Inc'd per outcome — the registry lookup stays off
// the streaming path.
func (m *serverMetrics) pointsCounter(tenant string) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.reg.Counter("hotnocd_points_total",
		"Grid points streamed to clients, by tenant.",
		obs.Labels{"tenant": tenant})
}

// handleMetrics serves GET /metrics in Prometheus text exposition
// format. The route lives outside /v1 and carries no tenant auth — like
// /healthz it is infrastructure surface, expected to be reachable by a
// scraper, not by tenants. On a coordinator the scrape first refreshes
// the fleet ledger, so fleet-wide counters are at most one scrape
// interval stale.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if fl := s.cfg.Fleet; fl != nil {
		fl.RefreshStats(r.Context())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}
