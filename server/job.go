package server

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"hotnoc/server/wire"
)

// message is one SSE frame of a job's event log: the event name plus its
// already-marshaled JSON payload. Marshaling once at append time means a
// job with many subscribers serializes each event exactly once.
type message struct {
	event string
	data  []byte
}

// job is one sweep accepted by the daemon. A job is admitted in the
// queued state and dispatched by the weighted-fair scheduler; from
// dispatch, the sweep runs in its own goroutine. Every event it
// produces is appended to an in-memory log, and each SSE subscriber
// replays the log from the start before following live appends — so a
// client that connects (or reconnects) late still sees every outcome,
// in point order. Lifecycle transitions (queued, running) are
// themselves log events, attributed to the job's tenant.
type job struct {
	id     string
	tenant string
	scale  int
	points int
	// seq is the daemon-wide admission order, the scheduler's FIFO and
	// queue-position key.
	seq       int
	createdAt time.Time
	// ctx carries the job's cancellation from admission through dispatch;
	// cancel fires it, whether the job is still queued or already running.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	msgs   []message
	notify chan struct{}
	state  string
	done   int
	// stage is the pipeline stage the job most recently entered (build,
	// characterize, evaluate) — live introspection for GET /v1/jobs/{id},
	// meaningful only while running.
	stage      string
	errMsg     string
	startedAt  time.Time
	finishedAt time.Time
}

func newJob(ctx context.Context, id, tenant string, scale, points, seq int, cancel context.CancelFunc) *job {
	j := &job{
		id:        id,
		tenant:    tenant,
		scale:     scale,
		points:    points,
		seq:       seq,
		createdAt: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		notify:    make(chan struct{}),
		state:     wire.JobQueued,
	}
	j.append(wire.EventState, wire.StateMsg{State: wire.JobQueued, Tenant: tenant})
	return j
}

// start marks the job dispatched: state becomes running and the
// transition joins the event log.
func (j *job) start() {
	data, _ := json.Marshal(wire.StateMsg{State: wire.JobRunning, Tenant: j.tenant})
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = wire.JobRunning
	j.startedAt = time.Now()
	j.appendLocked(wire.EventState, data)
}

// setStage records the pipeline stage the job just entered. Cheaper
// than an append — no event, no subscriber wakeup — because stage
// changes are polled via job introspection, not streamed.
func (j *job) setStage(stage string) {
	j.mu.Lock()
	j.stage = stage
	j.mu.Unlock()
}

// append marshals v and adds it to the event log, waking subscribers.
func (j *job) append(event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Wire payloads are plain data; a marshal failure is a
		// programming error, but dropping the event beats wedging the job.
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendLocked(event, data)
}

func (j *job) appendLocked(event string, data []byte) {
	j.msgs = append(j.msgs, message{event: event, data: data})
	if event == wire.EventOutcome {
		j.done++
	}
	close(j.notify)
	j.notify = make(chan struct{})
}

// finish marks the job done and appends the terminal done event. State
// and terminal event change under one lock acquisition, so a subscriber
// can never observe a terminal state with the terminal event still
// missing from the log (it would close its stream early).
func (j *job) finish() {
	data, _ := json.Marshal(struct{}{})
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = wire.JobDone
	j.finishedAt = time.Now()
	j.appendLocked(wire.EventDone, data)
}

// fail marks the job failed or canceled and appends the terminal error
// event, atomically like finish.
func (j *job) fail(state string, err error) {
	data, merr := json.Marshal(wire.ErrorMsg{Error: err.Error()})
	if merr != nil {
		data = []byte(`{"error":"internal error"}`)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.errMsg = err.Error()
	j.finishedAt = time.Now()
	j.appendLocked(wire.EventError, data)
}

// terminalState reports whether state is one a job never leaves.
func terminalState(state string) bool {
	return state != wire.JobQueued && state != wire.JobRunning
}

// terminal reports whether the job reached a terminal state.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return terminalState(j.state)
}

// stateNow returns the job's current state.
func (j *job) stateNow() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// doneNow returns how many outcomes the job has streamed.
func (j *job) doneNow() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// errNow returns the job's terminal error message, empty while live or
// on success.
func (j *job) errNow() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// terminalAt returns when the job reached a terminal state, and false
// while it is still queued or running. Retention measures a finished
// job's age from this instant, not from creation.
func (j *job) terminalAt() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finishedAt, terminalState(j.state)
}

// snapshot returns the job's wire description. Queue position and ETA
// are the server's knowledge, filled by Server.jobInfo.
func (j *job) snapshot() wire.JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := wire.JobInfo{
		ID:         j.id,
		State:      j.state,
		Tenant:     j.tenant,
		Scale:      j.scale,
		Points:     j.points,
		Done:       j.done,
		CreatedAt:  j.createdAt,
		StartedAt:  j.startedAt,
		FinishedAt: j.finishedAt,
		Error:      j.errMsg,
	}
	if j.state == wire.JobRunning {
		info.Stage = j.stage
	}
	return info
}

// next returns the log suffix starting at i, whether the log is complete
// (terminal state reached), and a channel closed on the next append.
func (j *job) next(i int) (batch []message, complete bool, more <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	batch = j.msgs[i:]
	complete = terminalState(j.state) && i+len(batch) == len(j.msgs)
	return batch, complete, j.notify
}
