package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"hotnoc"
	"hotnoc/client"
	"hotnoc/server/tenant"
	"hotnoc/server/wire"
)

// testRegistry builds a keyed registry where each tenant's API key is
// "key-<id>".
func testRegistry(t *testing.T, tenants []*tenant.Tenant, anon *tenant.Tenant) *tenant.Registry {
	t.Helper()
	reg, err := tenant.New(tenants, anon)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func keyed(id string, weight int, limits tenant.Limits) *tenant.Tenant {
	return tenant.NewTenant(id, "key-"+id, weight, limits)
}

// postSweep submits a one-point sweep over raw HTTP with the given
// Authorization header, returning the response for status/header
// asserts. The caller closes the body.
func postSweep(t *testing.T, url, authorization string) *http.Response {
	t.Helper()
	body, err := json.Marshal(wire.SweepRequest{Scale: testScale, Points: []wire.PointSpec{
		{Config: "A", Scheme: "Rot", Blocks: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/sweeps", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if authorization != "" {
		req.Header.Set("Authorization", authorization)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestAuthRequired: with a tenants registry and no anonymous tenant,
// every /v1 request must present a known key — missing and wrong keys
// are 401 with a WWW-Authenticate challenge, a disabled tenant's key is
// 403 — while /healthz stays open for liveness probes.
func TestAuthRequired(t *testing.T) {
	alice := keyed("alice", 1, tenant.Limits{})
	off := keyed("mallory", 1, tenant.Limits{})
	off.Disabled = true
	_, url := testServer(t, Config{Tenants: testRegistry(t, []*tenant.Tenant{alice, off}, nil)})

	cases := []struct {
		name, authorization string
		want                int
	}{
		{"missing key", "", http.StatusUnauthorized},
		{"wrong key", "Bearer nonsense", http.StatusUnauthorized},
		{"wrong scheme", "Basic a2V5LWFsaWNl", http.StatusUnauthorized},
		{"disabled tenant", "Bearer key-mallory", http.StatusForbidden},
		{"valid key", "Bearer key-alice", http.StatusCreated},
	}
	for _, tc := range cases {
		resp := postSweep(t, url, tc.authorization)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: POST /v1/sweeps answered %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		if tc.want == http.StatusUnauthorized || tc.want == http.StatusForbidden {
			if got := resp.Header.Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
				t.Fatalf("%s: rejection carries WWW-Authenticate %q, want a Bearer challenge", tc.name, got)
			}
		}
	}

	// GET routes are guarded identically.
	resp, err := http.Get(url + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated GET /v1/jobs answered %d, want 401", resp.StatusCode)
	}
	// Liveness needs no credentials.
	resp, err = http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz answered %d, want 200", resp.StatusCode)
	}
}

// TestAllowAnonymous: a registry with an anonymous tenant admits
// credential-less requests as "anonymous" but still rejects a wrong key
// — presenting a bad credential is worse than presenting none.
func TestAllowAnonymous(t *testing.T) {
	alice := keyed("alice", 1, tenant.Limits{})
	anon := &tenant.Tenant{ID: tenant.AnonymousID, Weight: 1}
	_, url := testServer(t, Config{Tenants: testRegistry(t, []*tenant.Tenant{alice}, anon)})

	resp := postSweep(t, url, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("anonymous submission answered %d, want 201", resp.StatusCode)
	}
	var created wire.SweepCreated
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	if created.Tenant != tenant.AnonymousID {
		t.Fatalf("anonymous submission attributed to %q, want %q", created.Tenant, tenant.AnonymousID)
	}

	resp = postSweep(t, url, "Bearer nonsense")
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong key on an anonymous-allowing daemon answered %d, want 401", resp.StatusCode)
	}
}

// TestSubmitRate429: a tenant over its submit-rate bucket is rejected
// with 429 and a Retry-After telling it when the next token accrues —
// and only that tenant: another tenant submits freely at the same
// instant.
func TestSubmitRate429(t *testing.T) {
	slow := keyed("slow", 1, tenant.Limits{RatePerSec: 0.25, Burst: 1})
	free := keyed("free", 1, tenant.Limits{})
	srv, url := testServer(t, Config{Tenants: testRegistry(t, []*tenant.Tenant{slow, free}, nil)})
	// Freeze the admission clock so the bucket cannot refill mid-test.
	frozen := time.Now()
	srv.now = func() time.Time { return frozen }

	resp := postSweep(t, url, "Bearer key-slow")
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submission answered %d, want 201", resp.StatusCode)
	}
	resp = postSweep(t, url, "Bearer key-slow")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submission answered %d, want 429", resp.StatusCode)
	}
	// At 0.25 jobs/sec a drained bucket needs 4 seconds for the next
	// token.
	if got := resp.Header.Get("Retry-After"); got != "4" {
		t.Fatalf("over-rate 429 carries Retry-After %q, want \"4\"", got)
	}
	// The other tenant is unaffected.
	resp = postSweep(t, url, "Bearer key-free")
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("unrelated tenant answered %d while another was throttled, want 201", resp.StatusCode)
	}

	// The rejection is accounted to the throttled tenant on /v1/stats.
	st, err := client.New(url, client.WithAPIKey("key-slow")).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Limits.AuthRequired {
		t.Fatal("stats report auth_required=false on a keyed daemon")
	}
	var found bool
	for _, ts := range st.Tenants {
		if ts.ID == "slow" {
			found = true
			if ts.Rejected != 1 {
				t.Fatalf("tenant slow counts %d rejections, want 1", ts.Rejected)
			}
		}
	}
	if !found {
		t.Fatal("throttled tenant missing from /v1/stats")
	}
}

// TestQueuedBound429: a tenant at its running quota queues further
// submissions until its queued-job bound, where submissions become 429
// + Retry-After. Other tenants' capacity is untouched.
func TestQueuedBound429(t *testing.T) {
	bounded := keyed("bounded", 1, tenant.Limits{MaxRunning: 1, MaxQueued: 1})
	other := keyed("other", 1, tenant.Limits{})
	_, url := testServer(t, Config{Tenants: testRegistry(t, []*tenant.Tenant{bounded, other}, nil)})
	c := client.New(url, client.WithScale(testScale), client.WithAPIKey("key-bounded"))
	ctx := context.Background()

	// A wide grid occupies the tenant's single running slot.
	wide := hotnoc.SweepGrid([]string{"A", "B", "C", "D", "E"}, hotnoc.Schemes(), []int{1, 2, 4, 8})
	blocker, err := c.StartSweep(ctx, wide)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, blocker, wire.JobRunning)

	// Second submission queues (the running quota is not a rejection)...
	resp := postSweep(t, url, "Bearer key-bounded")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("at the running quota, submission answered %d, want 201 (queued)", resp.StatusCode)
	}
	var queued wire.SweepCreated
	if err := json.NewDecoder(resp.Body).Decode(&queued); err != nil {
		t.Fatal(err)
	}
	if queued.State != wire.JobQueued {
		t.Fatalf("submission at the running quota admitted as %q, want queued", queued.State)
	}

	// ...the third hits MaxQueued and is rejected with a retry hint.
	resp = postSweep(t, url, "Bearer key-bounded")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue submission answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("over-queue 429 carries no Retry-After header")
	}

	// A different tenant still submits and runs.
	resp = postSweep(t, url, "Bearer key-other")
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("unrelated tenant answered %d while another was at its bound, want 201", resp.StatusCode)
	}

	if _, err := c.CancelJob(ctx, blocker); err != nil {
		t.Fatal(err)
	}
	// The queued job dispatches once the quota frees and runs to done.
	waitForState(t, c, queued.ID, wire.JobDone)
}

// TestTenantJobIsolation: one tenant's jobs are invisible to another —
// absent from its listing, 404 on GET and DELETE — so job ids leak no
// cross-tenant activity and cancellation cannot cross tenants.
func TestTenantJobIsolation(t *testing.T) {
	alice := keyed("alice", 1, tenant.Limits{})
	bob := keyed("bob", 1, tenant.Limits{})
	_, url := testServer(t, Config{Tenants: testRegistry(t, []*tenant.Tenant{alice, bob}, nil)})
	ctx := context.Background()
	ca := client.New(url, client.WithScale(testScale), client.WithAPIKey("key-alice"))
	cb := client.New(url, client.WithScale(testScale), client.WithAPIKey("key-bob"))

	id, err := ca.StartSweep(ctx, testGrid()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Job(ctx, id); err != nil {
		t.Fatalf("owner cannot read its own job: %v", err)
	}
	if _, err := cb.Job(ctx, id); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("alice's job visible to bob (err %v), want 404", err)
	}
	if _, err := cb.CancelJob(ctx, id); err == nil {
		t.Fatal("bob canceled alice's job")
	}
	jobs, err := cb.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("bob's listing contains %d jobs, want 0", len(jobs))
	}
	jobs, err = ca.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Tenant != "alice" {
		t.Fatalf("alice's listing is %v, want her one job", jobs)
	}
	// The event stream is guarded the same way.
	req, err := http.NewRequest(http.MethodGet, url+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer key-bob")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bob's subscription to alice's events answered %d, want 404", resp.StatusCode)
	}
}

// TestCancelQueuedJob: DELETE on a still-queued job terminates it
// immediately as canceled — it never dispatches, and its event stream
// replays queued → error(canceled) and closes.
func TestCancelQueuedJob(t *testing.T) {
	_, url := testServer(t, Config{MaxJobs: 1})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()

	wide := hotnoc.SweepGrid([]string{"A", "B", "C", "D", "E"}, hotnoc.Schemes(), []int{1, 2, 4, 8})
	blocker, err := c.StartSweep(ctx, wide)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.StartSweep(ctx, testGrid()[:1])
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.CancelJob(ctx, queued)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != wire.JobCanceled {
		t.Fatalf("canceled queued job reports %q immediately, want %q (no async unwind needed)",
			info.State, wire.JobCanceled)
	}
	if _, err := c.CancelJob(ctx, blocker); err != nil {
		t.Fatal(err)
	}
	waitForTerminal(t, c, blocker)
	// The canceled jobs are accounted to their tenant: the blocker's
	// bookkeeping runs just after its terminal state, so poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		canceled := -1
		for _, ts := range st.Tenants {
			if ts.ID == tenant.AnonymousID {
				canceled = ts.Canceled
			}
		}
		if canceled == 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("anonymous tenant counts %d cancellations, want 2", canceled)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWFQDispatchOrderIntegration drives the scheduler through the full
// HTTP surface: with one job slot held by a blocker, a seeded burst
// from a weight-2 and a weight-1 tenant dispatches in the exact stride
// order the scheduler unit tests pin down, observed via the server's
// dispatch hook.
func TestWFQDispatchOrderIntegration(t *testing.T) {
	alice := keyed("alice", 2, tenant.Limits{})
	bob := keyed("bob", 1, tenant.Limits{})
	zed := keyed("zed", 1, tenant.Limits{})
	srv, url := testServer(t, Config{
		MaxJobs: 1,
		Tenants: testRegistry(t, []*tenant.Tenant{alice, bob, zed}, nil),
	})
	var mu sync.Mutex
	var dispatchedTenants []string
	srv.dispatchHook = func(jobID, tenantID string) {
		mu.Lock()
		dispatchedTenants = append(dispatchedTenants, tenantID)
		mu.Unlock()
	}
	ctx := context.Background()
	cz := client.New(url, client.WithScale(testScale), client.WithAPIKey("key-zed"))
	ca := client.New(url, client.WithScale(testScale), client.WithAPIKey("key-alice"))
	cb := client.New(url, client.WithScale(testScale), client.WithAPIKey("key-bob"))

	// The blocker occupies the only slot while the burst queues.
	wide := hotnoc.SweepGrid([]string{"A", "B", "C", "D", "E"}, hotnoc.Schemes(), []int{1, 2, 4, 8})
	blocker, err := cz.StartSweep(ctx, wide)
	if err != nil {
		t.Fatal(err)
	}
	var aliceJobs, bobJobs []string
	for i := 0; i < 4; i++ {
		id, err := ca.StartSweep(ctx, testGrid()[:1])
		if err != nil {
			t.Fatal(err)
		}
		aliceJobs = append(aliceJobs, id)
		id, err = cb.StartSweep(ctx, testGrid()[:1])
		if err != nil {
			t.Fatal(err)
		}
		bobJobs = append(bobJobs, id)
	}
	st, err := cz.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs.Queued != 8 {
		t.Fatalf("%d jobs queued behind the blocker, want 8", st.Jobs.Queued)
	}

	// Freeing the slot drains the burst one dispatch at a time; every
	// completion triggers the next dispatch, so the recorded order is the
	// scheduler's total order regardless of job timing.
	if _, err := cz.CancelJob(ctx, blocker); err != nil {
		t.Fatal(err)
	}
	for _, id := range aliceJobs {
		waitForState(t, ca, id, wire.JobDone)
	}
	for _, id := range bobJobs {
		waitForState(t, cb, id, wire.JobDone)
	}

	mu.Lock()
	got := strings.Join(dispatchedTenants, " ")
	mu.Unlock()
	// zed's blocker dispatched first; then stride order at weights 2:1
	// with alice winning the equal-pass tie-breaks.
	want := "zed alice bob alice alice bob alice bob bob"
	if got != want {
		t.Fatalf("dispatch order\n got %s\nwant %s", got, want)
	}
}

// TestSweepBodyLimit: a request body over Config.MaxBody is rejected
// with 413 before any of it is parsed.
func TestSweepBodyLimit(t *testing.T) {
	_, url := testServer(t, Config{MaxBody: 512})
	points := make([]wire.PointSpec, 64)
	for i := range points {
		points[i] = wire.PointSpec{Config: "A", Scheme: "Rot", Blocks: 1}
	}
	body, err := json.Marshal(wire.SweepRequest{Scale: testScale, Points: points})
	if err != nil {
		t.Fatal(err)
	}
	if len(body) <= 512 {
		t.Fatalf("test request is only %d bytes, too small to trip the limit", len(body))
	}
	resp, err := http.Post(url+"/v1/sweeps", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized sweep answered %d, want 413", resp.StatusCode)
	}
}

// TestQueuedJobLifecycleEvents: a queued job's event stream replays the
// queued and running state transitions before its outcomes, so
// subscribers see the whole lifecycle.
func TestQueuedJobLifecycleEvents(t *testing.T) {
	_, url := testServer(t, Config{MaxJobs: 1})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()

	wide := hotnoc.SweepGrid([]string{"A", "B", "C", "D", "E"}, hotnoc.Schemes(), []int{1, 2, 4, 8})
	blocker, err := c.StartSweep(ctx, wide)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.StartSweep(ctx, testGrid()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CancelJob(ctx, blocker); err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, id, wire.JobDone)

	resp, err := http.Get(url + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var states []string
	var event string
	for _, line := range strings.Split(readAllString(t, resp), "\n") {
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:") && event == wire.EventState:
			var m wire.StateMsg
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data:")), &m); err != nil {
				t.Fatal(err)
			}
			states = append(states, m.State)
			if m.Tenant != tenant.AnonymousID {
				t.Fatalf("state event attributed to %q, want %q", m.Tenant, tenant.AnonymousID)
			}
		}
	}
	if strings.Join(states, " ") != wire.JobQueued+" "+wire.JobRunning {
		t.Fatalf("lifecycle events %v, want [queued running]", states)
	}
}

func readAllString(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
