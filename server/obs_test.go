package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"hotnoc"
	"hotnoc/client"
	"hotnoc/internal/chipcfg"
	"hotnoc/internal/core"
	"hotnoc/server/tenant"
	"hotnoc/server/wire"
)

// fakeSweep returns a sweepHook backend that emits exactly one outcome
// per receive on release, bracketed by progress events — a
// deterministic stand-in for the Lab that makes a job's progress
// observable step by step from the outside.
func fakeSweep(release <-chan struct{}) func(scale int) sweepFn {
	return func(int) sweepFn {
		return func(ctx context.Context, pts []hotnoc.SweepPoint, progress func(hotnoc.Event)) iter.Seq2[hotnoc.SweepOutcome, error] {
			return func(yield func(hotnoc.SweepOutcome, error) bool) {
				progress(hotnoc.Event{Stage: hotnoc.StageBuildStart, Point: -1})
				for i := range pts {
					select {
					case <-release:
					case <-ctx.Done():
						yield(hotnoc.SweepOutcome{}, ctx.Err())
						return
					}
					progress(hotnoc.Event{Stage: hotnoc.StageEvaluateDone, Point: i})
					out := hotnoc.SweepOutcome{
						Point: pts[i],
						Built: &chipcfg.Built{System: &core.System{}},
					}
					if !yield(out, nil) {
						return
					}
				}
			}
		}
	}
}

// scrapeMetrics fetches url/metrics and returns the exposition body.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue returns the value of the series whose line starts with
// prefix — pass the bare name for an unlabeled series, or name plus its
// full label set for a labeled one.
func metricValue(t *testing.T, body, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, prefix+" ") {
			continue
		}
		f := strings.Fields(line)
		v, err := strconv.ParseFloat(f[len(f)-1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %q not found in scrape", prefix)
	return 0
}

// TestMetricsEndpoint runs a real one-point sweep and asserts the
// daemon's /metrics exposition: valid Prometheus text carrying the Lab's
// stage-latency histograms and cache counters plus the scheduler's
// queue-wait histogram and per-tenant job counters.
func TestMetricsEndpoint(t *testing.T) {
	_, url := testServer(t, Config{})
	c := client.New(url, client.WithScale(testScale))
	pts := []hotnoc.SweepPoint{{Config: "A", Scheme: hotnoc.Rot(), Blocks: 1}}
	if _, err := c.SweepAll(context.Background(), pts); err != nil {
		t.Fatal(err)
	}

	body := scrapeMetrics(t, url)
	for _, want := range []string{
		"# TYPE hotnoc_stage_seconds histogram",
		`hotnoc_stage_seconds_count{scale="8",stage="evaluate"}`,
		`hotnoc_stage_seconds_count{scale="8",stage="build"}`,
		"# TYPE hotnoc_cache_requests_total counter",
		"# TYPE hotnocd_queue_wait_seconds histogram",
		"# TYPE hotnocd_jobs_total counter",
		`hotnocd_jobs_total{state="done",tenant="anonymous"} 1`,
		`hotnocd_points_total{tenant="anonymous"} 1`,
		"# TYPE hotnocd_jobs_running gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
	if n := metricValue(t, body, "hotnocd_queue_wait_seconds_count"); n < 1 {
		t.Errorf("hotnocd_queue_wait_seconds_count = %v, want >= 1", n)
	}
	if n := metricValue(t, body, `hotnoc_points_evaluated_total{scale="8"}`); n != 1 {
		t.Errorf("hotnoc_points_evaluated_total = %v, want 1", n)
	}
}

// TestMetricsDisabled: DisableMetrics leaves /metrics unrouted.
func TestMetricsDisabled(t *testing.T) {
	_, url := testServer(t, Config{DisableMetrics: true})
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics with metrics disabled: %s, want 404", resp.Status)
	}
}

// TestJobProgressIntrospection steps a fake sweep point by point and
// watches GET /v1/jobs/{id} report advancing points_done, the live
// pipeline stage, and a pace-derived ETA — through the typed
// client.JobProgress helper and on the raw wire.
func TestJobProgressIntrospection(t *testing.T) {
	release := make(chan struct{})
	srv, url := testServer(t, Config{})
	srv.sweepHook = fakeSweep(release)
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()

	pts := []hotnoc.SweepPoint{
		{Config: "A", Scheme: hotnoc.Rot(), Blocks: 1},
		{Config: "A", Scheme: hotnoc.Rot(), Blocks: 2},
		{Config: "A", Scheme: hotnoc.Rot(), Blocks: 4},
	}
	id, err := c.StartSweep(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}

	waitFor := func(desc string, ok func(client.JobProgress) bool) client.JobProgress {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			p, err := c.JobProgress(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if ok(p) {
				return p
			}
			if time.Now().After(deadline) {
				t.Fatalf("job never reached %s (state %s, stage %q, %d/%d done)",
					desc, p.State, p.Stage, p.Done, p.Total)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	p := waitFor("running in the build stage", func(p client.JobProgress) bool {
		return p.State == wire.JobRunning && p.Stage == "build"
	})
	if p.Done != 0 || p.Total != 3 {
		t.Fatalf("before first point: %d/%d done, want 0/3", p.Done, p.Total)
	}

	release <- struct{}{}
	p = waitFor("one point done", func(p client.JobProgress) bool { return p.Done == 1 })
	if p.Total != 3 || p.State != wire.JobRunning {
		t.Fatalf("after first point: state %s, %d/%d, want running 1/3", p.State, p.Done, p.Total)
	}
	if p.Stage != "evaluate" {
		t.Errorf("stage after an evaluated point = %q, want evaluate", p.Stage)
	}
	if p.EtaSec <= 0 {
		t.Errorf("running job with progress has EtaSec = %v, want > 0", p.EtaSec)
	}

	// The wire names are points_done / points_total; a rename would break
	// every deployed progress consumer silently, so pin them here.
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"points_done":1`, `"points_total":3`, `"stage":"evaluate"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("GET /v1/jobs/{id} missing %s in %s", want, raw)
		}
	}

	release <- struct{}{}
	release <- struct{}{}
	p = waitFor("completion", func(p client.JobProgress) bool { return p.State == wire.JobDone })
	if p.Done != 3 {
		t.Fatalf("finished job reports %d/3 done", p.Done)
	}
}

// readDiagEvents subscribes to the GET /v1/events SSE stream and
// collects events until stop returns true. The stream is live, so the
// caller must guarantee the stop event is (or will be) emitted.
func readDiagEvents(t *testing.T, url, authorization string, stop func(wire.DiagEvent) bool) []wire.DiagEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if authorization != "" {
		req.Header.Set("Authorization", authorization)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var evs []wire.DiagEvent
	var data string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "":
			if data == "" {
				continue
			}
			var ev wire.DiagEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad event payload %q: %v", data, err)
			}
			evs = append(evs, ev)
			data = ""
			if stop(ev) {
				return evs
			}
		}
	}
	t.Fatalf("stream ended after %d events without the awaited event (%v)", len(evs), sc.Err())
	return nil
}

// TestDiagEventsOrderingAndResume: one job's lifecycle appears on
// GET /v1/events in submission order with monotonic sequence numbers,
// and ?since= resumes the stream past an already-seen prefix.
func TestDiagEventsOrderingAndResume(t *testing.T) {
	release := make(chan struct{}, 1)
	release <- struct{}{}
	srv, url := testServer(t, Config{})
	srv.sweepHook = fakeSweep(release)
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()

	id, err := c.StartSweep(ctx, []hotnoc.SweepPoint{{Config: "A", Scheme: hotnoc.Rot(), Blocks: 1}})
	if err != nil {
		t.Fatal(err)
	}
	finished := func(ev wire.DiagEvent) bool {
		return ev.Type == wire.DiagJobFinished && ev.Job == id
	}
	evs := readDiagEvents(t, url+"/v1/events", "", finished)

	var types []string
	var seqs []int64
	for _, ev := range evs {
		if ev.Job == id {
			types = append(types, ev.Type)
		}
	}
	for _, ev := range evs {
		seqs = append(seqs, ev.Seq)
	}
	want := []string{wire.DiagJobSubmitted, wire.DiagJobQueued, wire.DiagJobDispatched, wire.DiagJobFinished}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("job lifecycle on the stream = %v, want %v", types, want)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("sequence numbers not strictly increasing: %v", seqs)
		}
	}
	if done := evs[len(evs)-1]; done.State != wire.JobDone || done.Points != 1 {
		t.Fatalf("job-finished event = %+v, want state done with 1 point", done)
	}

	// Resume past the first two events: the replay must start strictly
	// after the cursor and still include the terminal event.
	cursor := evs[1].Seq
	resumed := readDiagEvents(t, fmt.Sprintf("%s/v1/events?since=%d", url, cursor), "", finished)
	if len(resumed) == 0 || resumed[0].Seq <= cursor {
		t.Fatalf("resume from %d replayed %+v", cursor, resumed)
	}

	// A malformed cursor is a client error, not a silent full replay.
	resp, err := http.Get(url + "/v1/events?since=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /v1/events?since=bogus: %s, want 400", resp.Status)
	}
}

// TestDiagEventsTenantIsolation: on a keyed daemon the diagnostics
// stream is tenant-scoped — a tenant sees its own job lifecycle and
// nothing of any other tenant's — and unauthenticated subscriptions are
// refused like every other /v1 route.
func TestDiagEventsTenantIsolation(t *testing.T) {
	reg := testRegistry(t, []*tenant.Tenant{
		keyed("a", 1, tenant.Limits{}),
		keyed("b", 1, tenant.Limits{}),
	}, nil)
	release := make(chan struct{}, 8)
	for i := 0; i < 8; i++ {
		release <- struct{}{}
	}
	srv, url := testServer(t, Config{Tenants: reg})
	srv.sweepHook = fakeSweep(release)

	resp, err := http.Get(url + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated GET /v1/events: %s, want 401", resp.Status)
	}

	submit := func(key string) string {
		t.Helper()
		resp := postSweep(t, url, "Bearer "+key)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /v1/sweeps as %s: %s", key, resp.Status)
		}
		var created wire.SweepCreated
		if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
			t.Fatal(err)
		}
		return created.ID
	}
	idA := submit("key-a")
	idB := submit("key-b")

	// b's stream, read until b's job finishes: the replay covers the full
	// history, so any of a's events would already have been delivered.
	evsB := readDiagEvents(t, url+"/v1/events?since=0", "Bearer key-b", func(ev wire.DiagEvent) bool {
		return ev.Type == wire.DiagJobFinished && ev.Job == idB
	})
	for _, ev := range evsB {
		if ev.Tenant == "a" || ev.Job == idA {
			t.Errorf("tenant b received tenant a's event %+v", ev)
		}
	}

	evsA := readDiagEvents(t, url+"/v1/events?since=0", "Bearer key-a", func(ev wire.DiagEvent) bool {
		return ev.Type == wire.DiagJobFinished && ev.Job == idA
	})
	var own int
	for _, ev := range evsA {
		if ev.Tenant == "b" || ev.Job == idB {
			t.Errorf("tenant a received tenant b's event %+v", ev)
		}
		if ev.Job == idA {
			own++
		}
	}
	if own < 4 {
		t.Errorf("tenant a saw %d events for its own job, want the full lifecycle (4)", own)
	}
}

// TestFleetMetricsAggregation: a coordinator's /metrics carries
// per-worker-labeled counters whose sum matches the fleet-wide series,
// worker lifecycle shows up on its diagnostics stream, and killing a
// worker never makes the fleet totals regress — departed workers' work
// stays counted by the stats ledger.
func TestFleetMetricsAggregation(t *testing.T) {
	_, coordURL, workers := startFleet(t, 2)

	// Registration has already happened; both joins are in the replay.
	joins := 0
	readDiagEvents(t, coordURL+"/v1/events?since=0", "", func(ev wire.DiagEvent) bool {
		if ev.Type == wire.DiagWorkerJoined {
			joins++
		}
		return joins == 2
	})

	runToCompletion(t, coordURL, testGrid()[:2])

	body := scrapeMetrics(t, coordURL)
	if n := metricValue(t, body, "hotnocd_fleet_workers"); n != 2 {
		t.Errorf("hotnocd_fleet_workers = %v, want 2", n)
	}
	if n := metricValue(t, body, "hotnocd_queue_wait_seconds_count"); n < 1 {
		t.Errorf("coordinator queue-wait histogram empty (count %v)", n)
	}
	var sum float64
	for _, ws := range workers {
		series := fmt.Sprintf(`hotnocd_fleet_worker_decodes_total{worker=%q}`, ws.URL)
		sum += metricValue(t, body, series)
	}
	total := metricValue(t, body, "hotnocd_fleet_decodes_total")
	if total != sum || total <= 0 {
		t.Errorf("fleet decode total %v != per-worker sum %v (or no work recorded)", total, sum)
	}

	// Kill a worker and sweep again: the coordinator drops it on the
	// failed dispatch and reroutes, its counters stay banked, and the
	// departure is announced on the diagnostics stream.
	workers[0].Close()
	runToCompletion(t, coordURL, testGrid()[2:4])

	body2 := scrapeMetrics(t, coordURL)
	if after := metricValue(t, body2, "hotnocd_fleet_decodes_total"); after < total {
		t.Errorf("fleet decode total regressed after worker loss: %v -> %v", total, after)
	}
	series := fmt.Sprintf(`hotnocd_fleet_worker_decodes_total{worker=%q}`, workers[0].URL)
	if !strings.Contains(body2, series) {
		t.Errorf("dead worker's series %s vanished from the scrape", series)
	}
	readDiagEvents(t, coordURL+"/v1/events?since=0", "", func(ev wire.DiagEvent) bool {
		return ev.Type == wire.DiagWorkerLeft && ev.URL == workers[0].URL
	})
}
