package server

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"hotnoc/server/tenant"
)

// schedFixture wires a sched with the given tenant weights/limits and a
// helper to enqueue synthetic jobs.
type schedFixture struct {
	sc   *sched
	seq  int
	st   map[string]*tenantState
	next map[string]int
}

func newSchedFixture(tenants map[string]*tenant.Tenant) *schedFixture {
	f := &schedFixture{sc: newSched(), st: map[string]*tenantState{}, next: map[string]int{}}
	for id, t := range tenants {
		f.st[id] = f.sc.state(t)
	}
	return f
}

func (f *schedFixture) submit(tenantID string) {
	f.seq++
	f.next[tenantID]++
	id := fmt.Sprintf("%s-%d", tenantID, f.next[tenantID])
	f.sc.enqueue(f.st[tenantID], &queuedJob{j: &job{id: id, tenant: tenantID, seq: f.seq}})
}

// drain dispatches one job at a time through a single slot, completing
// each before the next — a saturated MaxJobs=1 daemon — and returns the
// dispatch order as job ids.
func (f *schedFixture) drain(maxDispatches int) []string {
	var order []string
	for len(order) < maxDispatches {
		ds := f.sc.dispatch(1)
		if len(ds) == 0 {
			break
		}
		d := ds[0]
		order = append(order, d.qj.j.id)
		d.ts.running-- // the job "finishes" immediately, freeing the slot
	}
	return order
}

// TestWFQDeterministicOrder pins the exact dispatch sequence of a
// seeded two-tenant burst at weights 2:1 through one job slot: the
// stride pattern a b a a b a a b…, per-tenant FIFO preserved, identical
// on every run.
func TestWFQDeterministicOrder(t *testing.T) {
	f := newSchedFixture(map[string]*tenant.Tenant{
		"a": {ID: "a", Weight: 2},
		"b": {ID: "b", Weight: 1},
	})
	for i := 0; i < 6; i++ {
		f.submit("a")
	}
	for i := 0; i < 3; i++ {
		f.submit("b")
	}
	got := f.drain(9)
	want := []string{"a-1", "b-1", "a-2", "a-3", "b-2", "a-4", "a-5", "b-3", "a-6"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("dispatch order\n got %v\nwant %v", got, want)
	}
	// Re-running the identical burst reproduces the identical order.
	f2 := newSchedFixture(map[string]*tenant.Tenant{
		"a": {ID: "a", Weight: 2},
		"b": {ID: "b", Weight: 1},
	})
	for i := 0; i < 6; i++ {
		f2.submit("a")
	}
	for i := 0; i < 3; i++ {
		f2.submit("b")
	}
	if got2 := f2.drain(9); strings.Join(got2, " ") != strings.Join(got, " ") {
		t.Fatalf("same burst dispatched differently:\nfirst  %v\nsecond %v", got, got2)
	}
}

// TestWFQConvergesToWeights: with both queues saturated, dispatched job
// counts converge to the 2:1 weight ratio in every prefix window.
func TestWFQConvergesToWeights(t *testing.T) {
	f := newSchedFixture(map[string]*tenant.Tenant{
		"a": {ID: "a", Weight: 2},
		"b": {ID: "b", Weight: 1},
	})
	const n = 300
	for i := 0; i < n; i++ {
		f.submit("a")
		f.submit("b")
	}
	order := f.drain(n)
	counts := map[string]int{}
	for i, id := range order {
		counts[id[:1]]++
		// After any settled prefix the share is within one stride of
		// the ideal 2/3 : 1/3 split.
		if i >= 8 {
			aShare := float64(counts["a"]) / float64(i+1)
			if aShare < 0.60 || aShare > 0.72 {
				t.Fatalf("after %d dispatches tenant a holds %.2f of the slots, want ~2/3", i+1, aShare)
			}
		}
	}
	if counts["a"] != 200 || counts["b"] != 100 {
		t.Fatalf("dispatched a=%d b=%d of %d, want 200/100", counts["a"], counts["b"], n)
	}
}

// TestWFQStarvationFreedom: a weight-1 tenant under a saturating
// weight-10 tenant is still dispatched at least once in every window of
// weight_total+1 dispatches.
func TestWFQStarvationFreedom(t *testing.T) {
	f := newSchedFixture(map[string]*tenant.Tenant{
		"big":   {ID: "big", Weight: 10},
		"small": {ID: "small", Weight: 1},
	})
	const n = 220
	for i := 0; i < n; i++ {
		f.submit("big")
	}
	for i := 0; i < n/11+2; i++ {
		f.submit("small")
	}
	order := f.drain(n)
	window := 0
	smalls := 0
	for _, id := range order {
		if strings.HasPrefix(id, "small") {
			smalls++
			window = 0
			continue
		}
		window++
		if window > 11 {
			t.Fatalf("weight-1 tenant starved for %d consecutive dispatches", window)
		}
	}
	if smalls == 0 {
		t.Fatal("weight-1 tenant never dispatched")
	}
}

// TestWFQIdleTenantDoesNotBankCredit: a tenant that sat idle while
// another consumed 50 slots re-joins at the current virtual time — it
// does not get a catch-up monopoly.
func TestWFQIdleTenantDoesNotBankCredit(t *testing.T) {
	f := newSchedFixture(map[string]*tenant.Tenant{
		"busy": {ID: "busy", Weight: 1},
	})
	for i := 0; i < 50; i++ {
		f.submit("busy")
	}
	if got := len(f.drain(50)); got != 50 {
		t.Fatalf("drained %d, want 50", got)
	}
	// "late" joins now, same weight; from here on they alternate
	// rather than late receiving 50 consecutive dispatches.
	f.st["late"] = f.sc.state(&tenant.Tenant{ID: "late", Weight: 1})
	for i := 0; i < 10; i++ {
		f.submit("busy")
		f.submit("late")
	}
	order := f.drain(20)
	for i := 1; i < len(order); i++ {
		if order[i][:4] == order[i-1][:4] {
			t.Fatalf("tenants did not alternate at equal weight: %v", order)
		}
	}
}

// TestWFQRespectsRunningQuota: a tenant at MaxRunning is skipped even
// with the lowest pass; its jobs dispatch as its own finish.
func TestWFQRespectsRunningQuota(t *testing.T) {
	f := newSchedFixture(map[string]*tenant.Tenant{
		"q": {ID: "q", Weight: 5, Limits: tenant.Limits{MaxRunning: 1}},
		"r": {ID: "r", Weight: 1},
	})
	f.submit("q")
	f.submit("q")
	f.submit("r")

	ds := f.sc.dispatch(-1)
	var got []string
	for _, d := range ds {
		got = append(got, d.qj.j.id)
	}
	// q-2 must wait: q's single running slot is taken by q-1.
	if strings.Join(got, " ") != "q-1 r-1" {
		t.Fatalf("dispatched %v, want [q-1 r-1]", got)
	}
	if f.st["q"].eligible() {
		t.Fatal("tenant at its running quota still reports eligible")
	}
	f.st["q"].running--
	ds = f.sc.dispatch(-1)
	if len(ds) != 1 || ds[0].qj.j.id != "q-2" {
		t.Fatalf("freed quota dispatched %v, want q-2", ds)
	}
}

// TestTakeToken: the submit-rate bucket admits Burst immediately, then
// refills at RatePerSec with a whole-second Retry-After when dry.
func TestTakeToken(t *testing.T) {
	ts := &tenantState{limits: tenant.Limits{RatePerSec: 2, Burst: 2}}
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := ts.takeToken(now); !ok {
			t.Fatalf("burst submission %d rejected", i)
		}
	}
	ok, retry := ts.takeToken(now)
	if ok {
		t.Fatal("dry bucket admitted a submission")
	}
	if retry < 1 {
		t.Fatalf("dry bucket advertised Retry-After %d, want >= 1", retry)
	}
	// Half a second refills one token at 2/s.
	if ok, _ := ts.takeToken(now.Add(500 * time.Millisecond)); !ok {
		t.Fatal("refilled bucket rejected a submission")
	}
	// Unlimited tenants never block.
	free := &tenantState{}
	for i := 0; i < 100; i++ {
		if ok, _ := free.takeToken(now); !ok {
			t.Fatal("unlimited tenant rate-limited")
		}
	}
}

// TestQueuedBefore: the queue-position estimate counts earlier-admitted
// jobs across all tenants.
func TestQueuedBefore(t *testing.T) {
	f := newSchedFixture(map[string]*tenant.Tenant{
		"a": {ID: "a"}, "b": {ID: "b"},
	})
	f.submit("a") // seq 1
	f.submit("b") // seq 2
	f.submit("a") // seq 3
	if got := f.sc.queuedBefore(3); got != 2 {
		t.Fatalf("queuedBefore(3) = %d, want 2", got)
	}
	if got := f.sc.queuedBefore(1); got != 0 {
		t.Fatalf("queuedBefore(1) = %d, want 0", got)
	}
}

// TestRemoveQueued: withdrawing a queued job preserves FIFO order of
// the rest and reports absence for dispatched jobs.
func TestRemoveQueued(t *testing.T) {
	f := newSchedFixture(map[string]*tenant.Tenant{"a": {ID: "a"}})
	f.submit("a")
	f.submit("a")
	f.submit("a")
	qj, ok := f.sc.removeQueued(f.st["a"], "a-2")
	if !ok || qj.j.id != "a-2" {
		t.Fatalf("removeQueued(a-2) = %v, %v", qj, ok)
	}
	order := f.drain(2)
	if strings.Join(order, " ") != "a-1 a-3" {
		t.Fatalf("queue after removal drained %v, want [a-1 a-3]", order)
	}
	if _, ok := f.sc.removeQueued(f.st["a"], "a-1"); ok {
		t.Fatal("removeQueued found an already-dispatched job")
	}
}
