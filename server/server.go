// Package server implements hotnocd's HTTP service: the hotnoc.Lab
// session API exposed over HTTP/JSON with server-sent-event streaming, so
// many clients share one long-lived Lab — one build cache, one cross-run
// characterization cache, one worker pool — instead of each paying for
// the cycle-accurate NoC stage themselves.
//
// Endpoints:
//
//	POST   /v1/sweeps             submit a grid; returns a job id
//	GET    /v1/sweeps/{id}/events SSE stream: progress + outcomes in point order
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          one job's state
//	DELETE /v1/jobs/{id}          cancel a running job / forget a finished one
//	GET    /v1/builds/{config}    placement report (query: scale)
//	GET    /v1/stats              decode counter, cache hits, worker utilization
//	POST   /v1/workers            (coordinator) worker registration + heartbeat
//	DELETE /v1/workers/{id}       (coordinator) worker deregistration
//	GET    /v1/workers            (coordinator) live fleet membership
//	GET    /healthz               liveness
//
// Grids may mix periodic and reactive points (wire.PointSpec's kind
// field); both kinds share NoC characterizations per (config, scheme)
// through the Lab, so the daemon serves the paper's entire experiment
// space from one cache. Malformed grids are rejected at submission with
// a 400 naming the offending point — the same fail-fast validation the
// in-process runner applies.
//
// The daemon is multi-tenant. Config.Tenants (a tenant.Registry) maps
// Authorization: Bearer keys to identities on every /v1 route: missing
// or wrong credentials are 401, disabled tenants 403, and an open
// registry (no tenants file) preserves the pre-tenancy trust-everyone
// behavior by attributing every request to the anonymous tenant. Each
// tenant carries admission limits — at its running-job quota new
// submissions queue; at its queued-job bound or over its submit rate
// they are rejected with 429 + Retry-After — and a scheduling weight:
// jobs wait in per-tenant FIFO queues and a stride/weighted-fair
// scheduler (see sched.go) dispatches them into the global
// Config.MaxJobs slots in proportion to tenant weights, so one greedy
// tenant can no longer starve the rest. Queued jobs surface their
// queue position and a rough ETA on GET /v1/jobs/{id}; per-tenant
// accounting (running/queued/terminal counts, rejected submissions,
// cumulative evaluated points) is on /v1/stats.
//
// The SSE stream replays the job's full event log on (re)connect
// before following live events, so subscribing is race-free — also
// while the job is still queued. The daemon keeps one Lab per scale:
// concurrent jobs over the same grid points share builds and
// characterizations through the Lab's singleflight caches, which is the
// whole point of running this as a service.
//
// Config.RetainJobs and Config.RetainFor bound how long finished jobs
// and their event logs stay addressable, so a long-lived daemon's
// memory does not grow with its history; Config.MaxBody bounds sweep
// request bodies (oversized grids are 413, not an allocation).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"iter"
	"net/http"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hotnoc"
	"hotnoc/obs"
	"hotnoc/server/fleet"
	"hotnoc/server/tenant"
	"hotnoc/server/wire"
)

// Config tunes a Server.
type Config struct {
	// CacheDir persists NoC characterizations and calibrated build
	// snapshots across restarts — a restarted daemon warm-starts with
	// zero annealing, calibration or cycle-accurate simulation; empty
	// keeps both caches memory-only.
	CacheDir string
	// CacheLimit bounds the file count of each cache artifact kind under
	// CacheDir with LRU eviction; zero means unbounded.
	CacheLimit int
	// Workers bounds each Lab's worker pool (0 = one per core). All jobs
	// at one scale multiplex onto the same pool.
	Workers int
	// MaxJobs bounds concurrently running sweep jobs across all scales.
	// At the bound, admitted submissions queue and the weighted-fair
	// scheduler dispatches them as slots free up; only a tenant's own
	// bounds (queued jobs, submit rate) produce 429s. Zero means
	// unbounded.
	MaxJobs int
	// Tenants is the identity layer: every /v1 request resolves to a
	// tenant through it (401/403 otherwise). Nil means an open daemon:
	// all requests are the anonymous tenant with unbounded limits —
	// the pre-tenancy behavior.
	Tenants *tenant.Registry
	// MaxBody caps the POST /v1/sweeps request body; oversized grids
	// are rejected with 413. Zero means the 8 MiB default.
	MaxBody int64
	// RetainJobs caps how many finished jobs (and their in-memory event
	// logs) the daemon keeps for late subscribers; beyond it the
	// oldest-finished jobs are forgotten, exactly as if a client had
	// DELETEd them. Zero means unbounded. Running jobs never count
	// against the cap.
	RetainJobs int
	// RetainFor is the finished-job TTL: a job whose terminal state is
	// older than this is forgotten on the next submission, completion or
	// listing. Zero keeps finished jobs until DELETEd (or evicted by
	// RetainJobs).
	RetainFor time.Duration
	// Fleet, when non-nil, runs the daemon as a fleet coordinator:
	// sweeps are not evaluated locally but sharded across the fleet's
	// registered workers and merged back into one byte-identical stream
	// (see hotnoc/server/fleet). The /v1/workers routes come alive,
	// GET /v1/builds proxies to the worker owning the build, and
	// /v1/stats aggregates counters across the whole fleet. Tenancy,
	// admission and weighted-fair scheduling stay coordinator-side.
	Fleet *fleet.Coordinator
	// Metrics, when non-nil, is the obs registry the daemon records into
	// and serves on GET /metrics — share one to co-host the daemon with
	// other instrumented subsystems in one process. Nil creates a
	// private registry.
	Metrics *obs.Registry
	// DisableMetrics turns the metrics subsystem off entirely: no
	// instruments are registered, the Labs record nothing, and GET
	// /metrics is not routed.
	DisableMetrics bool
	// EventBuffer is the retention depth of the GET /v1/events
	// diagnostics ring: how many lifecycle events a reconnecting
	// subscriber can replay. Zero means 512.
	EventBuffer int
	// KeepAlive is the SSE keep-alive interval: on every stream
	// (/v1/sweeps/{id}/events and /v1/events) an idle connection
	// receives an SSE comment line (": keep-alive") at this cadence, so
	// proxies and load balancers with idle timeouts shorter than a long
	// quiet job do not sever the stream. SSE clients ignore comment
	// lines by spec. Zero means 15s.
	KeepAlive time.Duration
}

// Server serves Lab sweeps over HTTP. Create one with New, mount it as an
// http.Handler, and call Shutdown to drain in-flight jobs before exit.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	tenants *tenant.Registry

	jobsWG sync.WaitGroup

	// mu is held around Lab creation, which registers instruments —
	// taking the obs registry lock. Scrape-time code (collectors,
	// GaugeFunc callbacks) must therefore never acquire it; the
	// lockorder analyzer enforces the ordering.
	mu       sync.Mutex //hotnoc:scrapelocked
	draining bool
	labs     map[int]*hotnoc.Lab
	jobs     map[string]*job
	order    []string
	nextID   int
	// nextSeq is the admission sequence: each accepted sweep takes the
	// next value, giving the scheduler its FIFO and queue-position key.
	nextSeq int
	// running counts dispatched, not-yet-terminal jobs — the occupancy
	// of the MaxJobs slots the scheduler fills.
	running int
	// sched holds the per-tenant queues, weights, rate buckets and
	// accounting; every access is under mu.
	sched *sched
	// totalDur/durCount average completed-job durations for the queued
	// ETA estimate.
	totalDur time.Duration
	durCount int

	// reg/met/diag are the observability subsystem: the metrics
	// registry served on GET /metrics, the daemon's own instruments
	// (nil when disabled), and the diagnostics ring behind GET
	// /v1/events.
	reg  *obs.Registry
	met  *serverMetrics
	diag *diagLog

	// now is the admission clock, swappable in tests to make
	// rate-limit behavior deterministic.
	now func() time.Time
	// dispatchHook, when set (tests), observes every dispatch in
	// order: the scheduler-determinism probe.
	dispatchHook func(jobID, tenantID string)
	// sweepHook, when set (tests), replaces the execution backend —
	// a deterministic fake sweep without Labs or workers.
	sweepHook func(scale int) sweepFn
}

// maxScale bounds the client-supplied workload divisor. The paper runs at
// scale 1 and the smoke tests at 8; anything past this is degenerate and
// would only serve to make the daemon instantiate unbounded Labs.
const maxScale = 256

// defaultMaxBody bounds POST /v1/sweeps bodies when Config.MaxBody is
// zero: generous for any real grid (a point spec is ~100 bytes), small
// enough that an oversized request is a 413, not an allocation.
const defaultMaxBody = 8 << 20

// New returns a server with no Labs instantiated yet; each scale's Lab is
// created on first use and lives for the server's lifetime.
func New(cfg Config) *Server {
	reg := cfg.Tenants
	if reg == nil {
		reg = tenant.Open(tenant.Limits{})
	}
	obsReg := cfg.Metrics
	if obsReg == nil {
		obsReg = obs.NewRegistry()
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		tenants: reg,
		labs:    map[int]*hotnoc.Lab{},
		jobs:    map[string]*job{},
		sched:   newSched(),
		reg:     obsReg,
		diag:    newDiagLog(cfg.EventBuffer),
		now:     time.Now,
	}
	if !cfg.DisableMetrics {
		s.met = newServerMetrics(obsReg)
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if fl := cfg.Fleet; fl != nil {
		// Fleet membership changes join the diagnostics stream, and the
		// coordinator's ledger contributes its per-worker aggregates to
		// every scrape. The hook runs under the coordinator's lock and
		// diag is a leaf, so the lock order stays acyclic.
		fl.SetEventHook(func(typ, workerID, url, reason string) {
			s.diag.emit(wire.DiagEvent{Type: typ, Worker: workerID, URL: url, Reason: reason})
		})
		if !cfg.DisableMetrics {
			obsReg.Collect(fl.MetricsCollector())
		}
	}
	s.mux.HandleFunc("POST /v1/sweeps", s.handleCreateSweep)
	s.mux.HandleFunc("GET /v1/events", s.handleDiagEvents)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/builds/{config}", s.handleBuild)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/workers", s.handleWorkerRegister)
	s.mux.HandleFunc("DELETE /v1/workers/{id}", s.handleWorkerDeregister)
	s.mux.HandleFunc("GET /v1/workers", s.handleWorkers)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// tenantKey carries the authenticated tenant through the request
// context.
type tenantKey struct{}

// ServeHTTP authenticates every /v1 request against the tenant
// registry before routing; /healthz stays open for liveness probes, and
// worker fleet-membership mutations carry the fleet secret instead of a
// tenant key (see workerAuthExempt).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/") && !workerAuthExempt(r) {
		tn, err := s.registry().Authenticate(r.Header.Get("Authorization"))
		if err != nil {
			status := http.StatusUnauthorized
			if errors.Is(err, tenant.ErrDisabled) {
				status = http.StatusForbidden
			}
			w.Header().Set("WWW-Authenticate", `Bearer realm="hotnocd"`)
			writeError(w, status, "%v", err)
			return
		}
		r = r.WithContext(context.WithValue(r.Context(), tenantKey{}, tn))
	}
	s.mux.ServeHTTP(w, r)
}

// requestTenant returns the tenant ServeHTTP authenticated.
func requestTenant(r *http.Request) *tenant.Tenant {
	tn, _ := r.Context().Value(tenantKey{}).(*tenant.Tenant)
	return tn
}

// workerAuthExempt reports whether r is a worker fleet-membership
// mutation (registration heartbeat or deregistration). Workers are
// infrastructure, not tenants: those requests authenticate with the
// coordinator's fleet secret inside the fleet handlers, so tenant auth
// skips them. Reads of /v1/workers stay tenant-authenticated like every
// other introspection route.
func workerAuthExempt(r *http.Request) bool {
	if r.Method == http.MethodGet {
		return false
	}
	return r.URL.Path == "/v1/workers" || strings.HasPrefix(r.URL.Path, "/v1/workers/")
}

// registry returns the current tenant registry — always through here,
// because SetTenants may swap it at runtime.
func (s *Server) registry() *tenant.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenants
}

// SetTenants swaps the tenant registry at runtime — the SIGHUP
// hot-reload path. New requests authenticate against reg immediately.
// Tenants the scheduler already tracks have their weight and limits
// updated in place, so queued and running jobs keep flowing under the
// new policy without a restart; tenants removed from reg simply stop
// authenticating (their historical accounting stays on /v1/stats). A
// nil reg reverts to an open daemon.
func (s *Server) SetTenants(reg *tenant.Registry) {
	if reg == nil {
		reg = tenant.Open(tenant.Limits{})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenants = reg
	byID := map[string]*tenant.Tenant{}
	for _, t := range reg.All() {
		byID[t.ID] = t
	}
	if anon := reg.Anonymous(); anon != nil {
		byID[anon.ID] = anon
	}
	for id, ts := range s.sched.tenants {
		t, ok := byID[id]
		if !ok {
			continue
		}
		ts.weight = max(1, t.Weight)
		ts.limits = t.Limits
	}
}

// Shutdown drains the server: new sweeps are rejected with 503 while
// in-flight jobs run to completion. If ctx expires first, the remaining
// jobs are canceled and Shutdown returns ctx.Err after they unwind.
// Event streams of finished jobs keep serving until the HTTP server
// itself closes them. Setting the draining flag and registering a job
// share one mutex, so no job can slip in after Shutdown starts waiting.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	// End the diagnostics stream first: /v1/events followers drain and
	// return, so they cannot hold the HTTP server's own shutdown open.
	s.diag.close()
	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			// Jobs still waiting in a tenant queue terminate directly
			// (nothing is running on their behalf); dispatched jobs
			// unwind through their sweep context.
			if !s.terminateQueuedLocked(j) {
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// labFor returns the shared Lab for one scale, creating it on first use.
func (s *Server) labFor(scale int) *hotnoc.Lab {
	s.mu.Lock()
	defer s.mu.Unlock()
	lab, ok := s.labs[scale]
	if !ok {
		opts := []hotnoc.LabOption{
			hotnoc.WithScale(scale),
			hotnoc.WithWorkers(s.cfg.Workers),
			hotnoc.WithCacheDir(s.cfg.CacheDir),
			hotnoc.WithCacheLimit(s.cfg.CacheLimit),
		}
		if s.met != nil {
			// Each scale's Lab registers its pipeline instruments
			// (stage latencies, cache requests, evaluated points) in
			// the daemon's registry, labeled by scale.
			opts = append(opts, hotnoc.WithMetrics(s.reg))
		}
		lab = hotnoc.NewLab(opts...)
		s.labs[scale] = lab
	}
	return lab
}

// sweepFor returns the execution backend jobs at one scale run on: the
// shared local Lab, or — on a coordinator — the fleet, which shards the
// grid across workers and merges the streams back byte-identically. A
// coordinator instantiates no local Labs; all simulation happens on
// workers.
func (s *Server) sweepFor(scale int) sweepFn {
	if s.sweepHook != nil {
		return s.sweepHook(scale)
	}
	if fl := s.cfg.Fleet; fl != nil {
		return func(ctx context.Context, pts []hotnoc.SweepPoint, progress func(hotnoc.Event)) iter.Seq2[hotnoc.SweepOutcome, error] {
			return fl.Sweep(ctx, scale, pts, progress)
		}
	}
	return s.labFor(scale).SweepWithProgress
}

func (s *Server) handleCreateSweep(w http.ResponseWriter, r *http.Request) {
	maxBody := s.cfg.MaxBody
	if maxBody <= 0 {
		maxBody = defaultMaxBody
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var req wire.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"sweep request exceeds the %d-byte body limit", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "sweep has no points")
		return
	}
	scale := req.Scale
	if scale <= 0 {
		scale = 1
	}
	if scale > maxScale {
		writeError(w, http.StatusBadRequest, "scale %d exceeds the maximum of %d", scale, maxScale)
		return
	}
	pts := make([]hotnoc.SweepPoint, len(req.Points))
	for i, ps := range req.Points {
		p, err := ps.Point()
		if err != nil {
			writeError(w, http.StatusBadRequest, "point %d: %v", i, err)
			return
		}
		pts[i] = p
	}
	// The same fail-fast grid validation the sweep runner applies, run at
	// submission so a malformed grid — of either kind — is a 400 naming
	// the offending point, not a job failing mid-stream.
	if err := hotnoc.ValidateSweep(pts); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	cur := requestTenant(r)
	sweep := s.sweepFor(scale)
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	ts := s.sched.state(cur)
	// Per-tenant admission: the submit-rate bucket and the queued-job
	// bound reject with 429 + Retry-After; hitting the running-job
	// quota or the global MaxJobs slots is not a rejection — the job
	// queues and the weighted-fair scheduler dispatches it later.
	if ok, retry := ts.takeToken(s.now()); !ok {
		ts.rejected++
		s.met.rejected(ts.id)
		s.mu.Unlock()
		cancel()
		s.diag.emit(wire.DiagEvent{Type: wire.DiagTenantThrottled, Tenant: cur.ID,
			Reason: "submit rate exceeded"})
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests,
			"tenant %q is over its %.3g jobs/sec submit rate", ts.id, ts.limits.RatePerSec)
		return
	}
	if ts.limits.MaxQueued > 0 && len(ts.queue) >= ts.limits.MaxQueued {
		ts.rejected++
		s.met.rejected(ts.id)
		s.mu.Unlock()
		cancel()
		s.diag.emit(wire.DiagEvent{Type: wire.DiagTenantThrottled, Tenant: cur.ID,
			Reason: "queued-job bound reached"})
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusTooManyRequests,
			"tenant %q already has its maximum of %d jobs queued", ts.id, ts.limits.MaxQueued)
		return
	}
	s.pruneLocked(time.Now())
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	s.nextSeq++
	j := newJob(ctx, id, cur.ID, scale, len(pts), s.nextSeq, cancel)
	s.jobs[id] = j
	s.order = append(s.order, id)
	// Registering with the WaitGroup under the same lock that Shutdown
	// takes to set draining guarantees Shutdown's Wait sees this job —
	// queued jobs included.
	s.jobsWG.Add(1)
	// Submitted before queued before dispatched: emitting under s.mu
	// (diag is a leaf lock) keeps the lifecycle order intact even
	// against a dispatch racing in from another job's completion.
	s.diag.emit(wire.DiagEvent{Type: wire.DiagJobSubmitted, Tenant: cur.ID,
		Job: id, Points: len(pts)})
	s.sched.enqueue(ts, &queuedJob{j: j, sweep: sweep, pts: pts})
	s.met.jobQueued(ts.id)
	s.diag.emit(wire.DiagEvent{Type: wire.DiagJobQueued, Tenant: cur.ID,
		Job: id, State: wire.JobQueued})
	s.dispatchLocked()
	created := wire.SweepCreated{ID: id, Points: len(pts), Tenant: cur.ID}
	created.State = j.stateNow()
	if created.State == wire.JobQueued {
		created.QueuePos = s.sched.queuedBefore(j.seq) + 1
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, created)
}

// dispatchLocked fills free MaxJobs slots from the tenant queues in
// weighted-fair order, starting each popped job's sweep goroutine.
// Callers hold s.mu.
func (s *Server) dispatchLocked() {
	slots := -1
	if s.cfg.MaxJobs > 0 {
		slots = s.cfg.MaxJobs - s.running
		if slots <= 0 {
			return
		}
	}
	for _, d := range s.sched.dispatch(slots) {
		s.running++
		d.qj.j.start()
		s.met.jobDispatched(d.ts.id, time.Since(d.qj.j.createdAt))
		s.diag.emit(wire.DiagEvent{Type: wire.DiagJobDispatched, Tenant: d.ts.id,
			Job: d.qj.j.id, State: wire.JobRunning})
		if s.dispatchHook != nil {
			s.dispatchHook(d.qj.j.id, d.ts.id)
		}
		go s.runJob(d.ts, d.qj)
	}
}

// terminateQueuedLocked completes a still-queued job as canceled
// without dispatching it: it leaves its tenant's queue, its admission
// is released, and its event stream terminates. Reports false when the
// job is not queued (already dispatched or terminal). Callers hold
// s.mu.
func (s *Server) terminateQueuedLocked(j *job) bool {
	ts, ok := s.sched.tenants[j.tenant]
	if !ok {
		return false
	}
	if _, ok := s.sched.removeQueued(ts, j.id); !ok {
		return false
	}
	j.cancel()
	j.fail(wire.JobCanceled, errors.New("canceled while queued"))
	ts.canceled++
	s.met.jobTerminatedQueued(ts.id, wire.JobCanceled)
	s.diag.emit(wire.DiagEvent{Type: wire.DiagJobFinished, Tenant: j.tenant,
		Job: j.id, State: wire.JobCanceled, Reason: "canceled while queued"})
	s.jobsWG.Done()
	return true
}

// runJob drives one dispatched sweep to completion, appending every
// progress event and outcome to the job's log and crediting evaluated
// points to the job's tenant. It owns the job's terminal state, and on
// reaching it releases the job's slot, records per-tenant accounting,
// applies the retention policy and dispatches whatever the freed slot
// admits next.
func (s *Server) runJob(ts *tenantState, qj *queuedJob) {
	j := qj.j
	started := time.Now()
	defer s.jobsWG.Done()
	defer func() {
		state := j.stateNow()
		s.mu.Lock()
		s.running--
		ts.running--
		switch state {
		case wire.JobDone:
			ts.done++
			s.totalDur += time.Since(started)
			s.durCount++
		case wire.JobFailed:
			ts.failed++
		case wire.JobCanceled:
			ts.canceled++
		}
		s.pruneLocked(time.Now())
		s.dispatchLocked()
		s.mu.Unlock()
		s.met.jobFinished(ts.id, state)
		s.diag.emit(wire.DiagEvent{Type: wire.DiagJobFinished, Tenant: j.tenant,
			Job: j.id, State: state, Points: j.doneNow(), Reason: j.errNow()})
	}()
	defer j.cancel()
	idx := 0
	progress := func(ev hotnoc.Event) {
		// The pipeline stage the job is in, for live introspection on
		// GET /v1/jobs/{id}. Evaluate-done events mean the job reached
		// the evaluation stage; start events mark the earlier stages.
		switch ev.Stage {
		case hotnoc.StageBuildStart:
			j.setStage("build")
		case hotnoc.StageCharacterizeStart:
			j.setStage("characterize")
		case hotnoc.StageEvaluateDone:
			j.setStage("evaluate")
		}
		j.append(wire.EventProgress, wire.FromEvent(ev))
	}
	// Resolve the tenant's served-points counter once; the per-outcome
	// cost is then a single atomic increment.
	ptsCounter := s.met.pointsCounter(ts.id)
	for out, err := range qj.sweep(j.ctx, qj.pts, progress) {
		if err != nil {
			state := wire.JobFailed
			if errors.Is(err, context.Canceled) {
				state = wire.JobCanceled
			}
			j.fail(state, err)
			return
		}
		j.append(wire.EventOutcome, wire.FromOutcome(idx, out))
		idx++
		if ptsCounter != nil {
			ptsCounter.Inc()
		}
		s.mu.Lock()
		ts.points++
		s.mu.Unlock()
	}
	j.finish()
}

// retryAfterSeconds is the Retry-After hint on queued-job-bound 429
// responses. Sweep jobs run for seconds to minutes, so a short constant
// backoff is honest without being aggressive.
const retryAfterSeconds = 5

// pruneLocked applies the retention policy to finished jobs: first the
// TTL (RetainFor), then the count cap (RetainJobs), forgetting
// oldest-finished first. Running jobs are never touched. Callers hold
// s.mu. Event streams already attached to a forgotten job keep serving
// from their own reference; the job just stops being addressable.
func (s *Server) pruneLocked(now time.Time) {
	if s.cfg.RetainFor <= 0 && s.cfg.RetainJobs <= 0 {
		return
	}
	type finished struct {
		id string
		at time.Time
	}
	var fin []finished
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		if at, done := j.terminalAt(); done {
			fin = append(fin, finished{id: id, at: at})
		}
	}
	sort.Slice(fin, func(i, k int) bool { return fin[i].at.Before(fin[k].at) })
	drop := map[string]bool{}
	if s.cfg.RetainFor > 0 {
		for _, f := range fin {
			if now.Sub(f.at) >= s.cfg.RetainFor {
				drop[f.id] = true
			}
		}
	}
	if s.cfg.RetainJobs > 0 {
		kept := 0
		for i := len(fin) - 1; i >= 0; i-- {
			if drop[fin[i].id] {
				continue
			}
			kept++
			if kept > s.cfg.RetainJobs {
				drop[fin[i].id] = true
			}
		}
	}
	if len(drop) == 0 {
		return
	}
	for id := range drop {
		delete(s.jobs, id)
	}
	s.order = slices.DeleteFunc(s.order, func(id string) bool { return drop[id] })
}

// jobByID returns the job with the given id if it belongs to tn. Other
// tenants' jobs are invisible — a 404 indistinguishable from absence,
// so job ids do not leak activity across tenants.
func (s *Server) jobByID(id string, tn *tenant.Tenant) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil || (tn != nil && j.tenant != tn.ID) {
		return nil
	}
	return j
}

// jobInfo returns j's wire description, extending queued jobs with
// their submission-order queue position and, once the daemon has
// completed enough jobs to know its pace, a rough ETA. Callers must not
// hold s.mu.
func (s *Server) jobInfo(j *job) wire.JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobInfoLocked(j)
}

func (s *Server) jobInfoLocked(j *job) wire.JobInfo {
	info := j.snapshot()
	if info.State == wire.JobRunning {
		// A running job's pace is its own best predictor: extrapolate
		// the mean per-point time over the remaining points. Before the
		// first outcome there is nothing to extrapolate from.
		if info.Done > 0 && info.Done < info.Points && !info.StartedAt.IsZero() {
			elapsed := time.Since(info.StartedAt).Seconds()
			info.EtaSec = elapsed / float64(info.Done) * float64(info.Points-info.Done)
		}
		return info
	}
	if info.State != wire.JobQueued {
		return info
	}
	info.QueuePos = s.sched.queuedBefore(j.seq) + 1
	if s.durCount > 0 {
		mean := (s.totalDur / time.Duration(s.durCount)).Seconds()
		slots := s.cfg.MaxJobs
		if slots <= 0 {
			// No global bound: the tenant's own running quota is the only
			// thing a queued job can be waiting on.
			if ts, ok := s.sched.tenants[j.tenant]; ok && ts.limits.MaxRunning > 0 {
				slots = ts.limits.MaxRunning
			} else {
				slots = 1
			}
		}
		info.EtaSec = float64(info.QueuePos) * mean / float64(slots)
	}
	return info
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"), requestTenant(r))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ka := time.NewTicker(s.keepAlive())
	defer ka.Stop()
	i := 0
	for {
		batch, complete, more := j.next(i)
		for _, m := range batch {
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", m.event, m.data); err != nil {
				return
			}
		}
		if len(batch) > 0 {
			flusher.Flush()
			i += len(batch)
		}
		if complete {
			return
		}
		select {
		case <-more:
		case <-ka.C:
			if !writeKeepAlive(w, flusher) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// keepAlive is the SSE keep-alive interval (Config.KeepAlive).
func (s *Server) keepAlive() time.Duration {
	if s.cfg.KeepAlive > 0 {
		return s.cfg.KeepAlive
	}
	return 15 * time.Second
}

// writeKeepAlive emits an SSE comment frame on an idle stream — clients
// ignore comment lines by spec, but intermediaries with idle timeouts
// see traffic. Reports whether the connection is still writable.
func writeKeepAlive(w http.ResponseWriter, flusher http.Flusher) bool {
	if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
		return false
	}
	flusher.Flush()
	return true
}

// handleJobs lists the requesting tenant's jobs — each tenant sees only
// its own.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	tn := requestTenant(r)
	s.mu.Lock()
	s.pruneLocked(time.Now())
	list := wire.JobList{Jobs: []wire.JobInfo{}}
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok || (tn != nil && j.tenant != tn.ID) {
			continue
		}
		list.Jobs = append(list.Jobs, s.jobInfoLocked(j))
	}
	s.mu.Unlock()
	writeJSON(w, list)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"), requestTenant(r))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, s.jobInfo(j))
}

// handleCancelJob cancels a job. A still-queued job terminates
// immediately (it leaves its tenant's queue and never runs); a running
// job's context is canceled and the sweep unwinds to the canceled state
// asynchronously (its event stream terminates with an error event).
// Deleting a finished job forgets it.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.jobByID(id, requestTenant(r))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	s.mu.Lock()
	switch {
	case s.terminateQueuedLocked(j):
		// Canceled before dispatch; nothing was running on its behalf.
	case j.terminal():
		delete(s.jobs, id)
		s.order = slices.DeleteFunc(s.order, func(o string) bool { return o == id })
	default:
		j.cancel()
	}
	info := s.jobInfoLocked(j)
	s.mu.Unlock()
	writeJSON(w, info)
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	config := r.PathValue("config")
	if _, err := hotnoc.ConfigByName(config); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	scale := 1
	if q := r.URL.Query().Get("scale"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 || n > maxScale {
			writeError(w, http.StatusBadRequest, "bad scale %q (want 1..%d)", q, maxScale)
			return
		}
		scale = n
	}
	if fl := s.cfg.Fleet; fl != nil {
		// A coordinator holds no builds itself: proxy to the worker
		// owning the configuration's build claim, so the report comes
		// from the caches that actually annealed it.
		rep, err := fl.Placement(r.Context(), config, scale)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, fleet.ErrNoWorkers) {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, "%v", err)
			return
		}
		writeJSON(w, rep)
		return
	}
	rep, err := s.labFor(scale).Placement(r.Context(), config)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, rep)
}

// fleet returns the coordinator behind this daemon, answering 404 on a
// plain daemon — the /v1/workers surface only exists in coordinator
// mode.
func (s *Server) fleet(w http.ResponseWriter) *fleet.Coordinator {
	if s.cfg.Fleet == nil {
		writeError(w, http.StatusNotFound, "this daemon is not a fleet coordinator")
		return nil
	}
	return s.cfg.Fleet
}

func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	if fl := s.fleet(w); fl != nil {
		fl.HandleRegister(w, r)
	}
}

func (s *Server) handleWorkerDeregister(w http.ResponseWriter, r *http.Request) {
	if fl := s.fleet(w); fl != nil {
		fl.HandleDeregister(w, r)
	}
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if fl := s.fleet(w); fl != nil {
		fl.HandleWorkers(w, r)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.pruneLocked(time.Now())
	scales := make([]int, 0, len(s.labs))
	for scale := range s.labs {
		scales = append(scales, scale)
	}
	sort.Ints(scales)
	labs := make([]hotnoc.LabStats, 0, len(scales))
	for _, scale := range scales {
		labs = append(labs, s.labs[scale].Stats())
	}
	var counts wire.JobCounts
	for _, j := range s.jobs {
		counts.Total++
		switch j.stateNow() {
		case wire.JobQueued:
			counts.Queued++
		case wire.JobRunning:
			counts.Running++
		case wire.JobDone:
			counts.Done++
		case wire.JobFailed:
			counts.Failed++
		case wire.JobCanceled:
			counts.Canceled++
		}
	}
	tenants := make([]wire.TenantStats, 0, len(s.sched.tenants))
	for _, ts := range s.sched.tenants {
		tenants = append(tenants, wire.TenantStats{
			ID:       ts.id,
			Weight:   ts.weight,
			Running:  ts.running,
			Queued:   len(ts.queue),
			Done:     ts.done,
			Failed:   ts.failed,
			Canceled: ts.canceled,
			Rejected: ts.rejected,
			Points:   ts.points,
		})
	}
	reg := s.tenants
	s.mu.Unlock()
	sort.Slice(tenants, func(i, k int) bool { return tenants[i].ID < tenants[k].ID })

	st := wire.Stats{Jobs: counts, Labs: labs, Tenants: tenants, Limits: wire.Limits{
		MaxJobs:      s.cfg.MaxJobs,
		RetainJobs:   s.cfg.RetainJobs,
		RetainForSec: s.cfg.RetainFor.Seconds(),
		AuthRequired: reg.AuthRequired(),
	}}
	if fl := s.cfg.Fleet; fl != nil {
		// A coordinator's own counters are job bookkeeping only; the
		// simulation counters live on the workers. Fold them in so one
		// stats call answers for the whole fleet.
		flabs, ftenants := fl.FleetStats(r.Context())
		st.Labs = mergeLabStats(st.Labs, flabs)
		st.Tenants = mergeTenantStats(st.Tenants, ftenants)
		st.Workers = fl.Workers()
	}
	writeJSON(w, st)
}

// mergeLabStats sums two per-scale counter sets, each already unique by
// scale, into one sorted by scale.
//
//hotnoc:deterministic
func mergeLabStats(a, b []hotnoc.LabStats) []hotnoc.LabStats {
	byScale := map[int]*hotnoc.LabStats{}
	var scales []int
	for _, src := range [][]hotnoc.LabStats{a, b} {
		for _, ls := range src {
			agg, ok := byScale[ls.Scale]
			if !ok {
				agg = &hotnoc.LabStats{Scale: ls.Scale}
				byScale[ls.Scale] = agg
				scales = append(scales, ls.Scale)
			}
			agg.Workers += ls.Workers
			agg.BusyWorkers += ls.BusyWorkers
			agg.Decodes += ls.Decodes
			agg.CacheHits += ls.CacheHits
			agg.CacheMisses += ls.CacheMisses
			agg.BuildHits += ls.BuildHits
			agg.BuildMisses += ls.BuildMisses
		}
	}
	sort.Ints(scales)
	out := make([]hotnoc.LabStats, 0, len(scales))
	for _, sc := range scales {
		out = append(out, *byScale[sc])
	}
	return out
}

// mergeTenantStats folds worker-side tenant counters into the
// coordinator's own table by id. Where both sides know a tenant the
// coordinator's weight is authoritative — workers see shard sub-jobs
// anonymously, so in practice only the anonymous row overlaps.
//
//hotnoc:deterministic
func mergeTenantStats(local, remote []wire.TenantStats) []wire.TenantStats {
	byID := map[string]*wire.TenantStats{}
	var ids []string
	for i := range local {
		ts := local[i]
		byID[ts.ID] = &ts
		ids = append(ids, ts.ID)
	}
	for _, ts := range remote {
		agg, ok := byID[ts.ID]
		if !ok {
			cp := ts
			byID[ts.ID] = &cp
			ids = append(ids, ts.ID)
			continue
		}
		agg.Running += ts.Running
		agg.Queued += ts.Queued
		agg.Done += ts.Done
		agg.Failed += ts.Failed
		agg.Canceled += ts.Canceled
		agg.Rejected += ts.Rejected
		agg.Points += ts.Points
	}
	sort.Strings(ids)
	out := make([]wire.TenantStats, 0, len(ids))
	for _, id := range ids {
		out = append(out, *byID[id])
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wire.ErrorMsg{Error: fmt.Sprintf(format, args...)})
}
