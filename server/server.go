// Package server implements hotnocd's HTTP service: the hotnoc.Lab
// session API exposed over HTTP/JSON with server-sent-event streaming, so
// many clients share one long-lived Lab — one build cache, one cross-run
// characterization cache, one worker pool — instead of each paying for
// the cycle-accurate NoC stage themselves.
//
// Endpoints:
//
//	POST   /v1/sweeps             submit a grid; returns a job id
//	GET    /v1/sweeps/{id}/events SSE stream: progress + outcomes in point order
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          one job's state
//	DELETE /v1/jobs/{id}          cancel a running job / forget a finished one
//	GET    /v1/builds/{config}    placement report (query: scale)
//	GET    /v1/stats              decode counter, cache hits, worker utilization
//	GET    /healthz               liveness
//
// Grids may mix periodic and reactive points (wire.PointSpec's kind
// field); both kinds share NoC characterizations per (config, scheme)
// through the Lab, so the daemon serves the paper's entire experiment
// space from one cache. Malformed grids are rejected at submission with
// a 400 naming the offending point — the same fail-fast validation the
// in-process runner applies.
//
// A job starts executing the moment it is accepted; the SSE stream
// replays the job's full event log on (re)connect before following live
// events, so subscribing is race-free. The daemon keeps one Lab per
// scale: concurrent jobs over the same grid points share builds and
// characterizations through the Lab's singleflight caches, which is the
// whole point of running this as a service.
//
// Config.MaxJobs bounds concurrently running jobs (saturated submissions
// get 429 + Retry-After); Config.RetainJobs and Config.RetainFor bound
// how long finished jobs and their event logs stay addressable, so a
// long-lived daemon's memory does not grow with its history.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"sort"
	"strconv"
	"sync"
	"time"

	"hotnoc"
	"hotnoc/server/wire"
)

// Config tunes a Server.
type Config struct {
	// CacheDir persists NoC characterizations and calibrated build
	// snapshots across restarts — a restarted daemon warm-starts with
	// zero annealing, calibration or cycle-accurate simulation; empty
	// keeps both caches memory-only.
	CacheDir string
	// CacheLimit bounds the file count of each cache artifact kind under
	// CacheDir with LRU eviction; zero means unbounded.
	CacheLimit int
	// Workers bounds each Lab's worker pool (0 = one per core). All jobs
	// at one scale multiplex onto the same pool.
	Workers int
	// MaxJobs bounds concurrently running sweep jobs across all scales.
	// At the bound, POST /v1/sweeps is rejected with 429 Too Many
	// Requests and a Retry-After header instead of queueing unbounded
	// work behind the worker pools. Zero means unbounded.
	MaxJobs int
	// RetainJobs caps how many finished jobs (and their in-memory event
	// logs) the daemon keeps for late subscribers; beyond it the
	// oldest-finished jobs are forgotten, exactly as if a client had
	// DELETEd them. Zero means unbounded. Running jobs never count
	// against the cap.
	RetainJobs int
	// RetainFor is the finished-job TTL: a job whose terminal state is
	// older than this is forgotten on the next submission, completion or
	// listing. Zero keeps finished jobs until DELETEd (or evicted by
	// RetainJobs).
	RetainFor time.Duration
}

// Server serves Lab sweeps over HTTP. Create one with New, mount it as an
// http.Handler, and call Shutdown to drain in-flight jobs before exit.
type Server struct {
	cfg Config
	mux *http.ServeMux

	jobsWG sync.WaitGroup

	mu       sync.Mutex
	draining bool
	labs     map[int]*hotnoc.Lab
	jobs     map[string]*job
	order    []string
	nextID   int
	// running counts jobs not yet in a terminal state, for the MaxJobs
	// admission bound.
	running int
}

// maxScale bounds the client-supplied workload divisor. The paper runs at
// scale 1 and the smoke tests at 8; anything past this is degenerate and
// would only serve to make the daemon instantiate unbounded Labs.
const maxScale = 256

// New returns a server with no Labs instantiated yet; each scale's Lab is
// created on first use and lives for the server's lifetime.
func New(cfg Config) *Server {
	s := &Server{
		cfg:  cfg,
		mux:  http.NewServeMux(),
		labs: map[int]*hotnoc.Lab{},
		jobs: map[string]*job{},
	}
	s.mux.HandleFunc("POST /v1/sweeps", s.handleCreateSweep)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/builds/{config}", s.handleBuild)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the server: new sweeps are rejected with 503 while
// in-flight jobs run to completion. If ctx expires first, the remaining
// jobs are canceled and Shutdown returns ctx.Err after they unwind.
// Event streams of finished jobs keep serving until the HTTP server
// itself closes them. Setting the draining flag and registering a job
// share one mutex, so no job can slip in after Shutdown starts waiting.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.cancel()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// labFor returns the shared Lab for one scale, creating it on first use.
func (s *Server) labFor(scale int) *hotnoc.Lab {
	s.mu.Lock()
	defer s.mu.Unlock()
	lab, ok := s.labs[scale]
	if !ok {
		lab = hotnoc.NewLab(
			hotnoc.WithScale(scale),
			hotnoc.WithWorkers(s.cfg.Workers),
			hotnoc.WithCacheDir(s.cfg.CacheDir),
			hotnoc.WithCacheLimit(s.cfg.CacheLimit),
		)
		s.labs[scale] = lab
	}
	return lab
}

func (s *Server) handleCreateSweep(w http.ResponseWriter, r *http.Request) {
	var req wire.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "sweep has no points")
		return
	}
	scale := req.Scale
	if scale <= 0 {
		scale = 1
	}
	if scale > maxScale {
		writeError(w, http.StatusBadRequest, "scale %d exceeds the maximum of %d", scale, maxScale)
		return
	}
	pts := make([]hotnoc.SweepPoint, len(req.Points))
	for i, ps := range req.Points {
		p, err := ps.Point()
		if err != nil {
			writeError(w, http.StatusBadRequest, "point %d: %v", i, err)
			return
		}
		pts[i] = p
	}
	// The same fail-fast grid validation the sweep runner applies, run at
	// submission so a malformed grid — of either kind — is a 400 naming
	// the offending point, not a job failing mid-stream.
	if err := hotnoc.ValidateSweep(pts); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	lab := s.labFor(scale)
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.cfg.MaxJobs > 0 && s.running >= s.cfg.MaxJobs {
		s.mu.Unlock()
		cancel()
		// The daemon is saturated, not broken: tell well-behaved clients
		// when to come back instead of letting them pile work onto the
		// worker pools.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusTooManyRequests,
			"server is running its maximum of %d concurrent jobs", s.cfg.MaxJobs)
		return
	}
	s.pruneLocked(time.Now())
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	j := newJob(id, scale, len(pts), cancel)
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.running++
	// Registering with the WaitGroup under the same lock that Shutdown
	// takes to set draining guarantees Shutdown's Wait sees this job.
	s.jobsWG.Add(1)
	s.mu.Unlock()

	go s.runJob(ctx, j, lab, pts)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, wire.SweepCreated{ID: id, Points: len(pts)})
}

// runJob drives one sweep to completion, appending every progress event
// and outcome to the job's log. It owns the job's terminal state, and on
// reaching it releases the job's admission slot and applies the
// retention policy.
func (s *Server) runJob(ctx context.Context, j *job, lab *hotnoc.Lab, pts []hotnoc.SweepPoint) {
	defer s.jobsWG.Done()
	defer func() {
		s.mu.Lock()
		s.running--
		s.pruneLocked(time.Now())
		s.mu.Unlock()
	}()
	defer j.cancel()
	idx := 0
	progress := func(ev hotnoc.Event) {
		j.append(wire.EventProgress, wire.FromEvent(ev))
	}
	for out, err := range lab.SweepWithProgress(ctx, pts, progress) {
		if err != nil {
			state := wire.JobFailed
			if errors.Is(err, context.Canceled) {
				state = wire.JobCanceled
			}
			j.fail(state, err)
			return
		}
		j.append(wire.EventOutcome, wire.FromOutcome(idx, out))
		idx++
	}
	j.finish()
}

// retryAfterSeconds is the Retry-After hint on 429 responses. Sweep jobs
// run for seconds to minutes, so a short constant backoff is honest
// without being aggressive.
const retryAfterSeconds = 5

// pruneLocked applies the retention policy to finished jobs: first the
// TTL (RetainFor), then the count cap (RetainJobs), forgetting
// oldest-finished first. Running jobs are never touched. Callers hold
// s.mu. Event streams already attached to a forgotten job keep serving
// from their own reference; the job just stops being addressable.
func (s *Server) pruneLocked(now time.Time) {
	if s.cfg.RetainFor <= 0 && s.cfg.RetainJobs <= 0 {
		return
	}
	type finished struct {
		id string
		at time.Time
	}
	var fin []finished
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		if at, done := j.terminalAt(); done {
			fin = append(fin, finished{id: id, at: at})
		}
	}
	sort.Slice(fin, func(i, k int) bool { return fin[i].at.Before(fin[k].at) })
	drop := map[string]bool{}
	if s.cfg.RetainFor > 0 {
		for _, f := range fin {
			if now.Sub(f.at) >= s.cfg.RetainFor {
				drop[f.id] = true
			}
		}
	}
	if s.cfg.RetainJobs > 0 {
		kept := 0
		for i := len(fin) - 1; i >= 0; i-- {
			if drop[fin[i].id] {
				continue
			}
			kept++
			if kept > s.cfg.RetainJobs {
				drop[fin[i].id] = true
			}
		}
	}
	if len(drop) == 0 {
		return
	}
	for id := range drop {
		delete(s.jobs, id)
	}
	s.order = slices.DeleteFunc(s.order, func(id string) bool { return drop[id] })
}

func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	i := 0
	for {
		batch, complete, more := j.next(i)
		for _, m := range batch {
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", m.event, m.data); err != nil {
				return
			}
		}
		if len(batch) > 0 {
			flusher.Flush()
			i += len(batch)
		}
		if complete {
			return
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.pruneLocked(time.Now())
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	list := wire.JobList{Jobs: make([]wire.JobInfo, len(jobs))}
	for i, j := range jobs {
		list.Jobs[i] = j.snapshot()
	}
	writeJSON(w, list)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, j.snapshot())
}

// handleCancelJob cancels a running job's context; the sweep unwinds and
// the job reaches the canceled state asynchronously (its event stream
// terminates with an error event). Deleting a finished job forgets it.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.jobByID(id)
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if j.finished() {
		s.mu.Lock()
		delete(s.jobs, id)
		s.order = slices.DeleteFunc(s.order, func(o string) bool { return o == id })
		s.mu.Unlock()
	} else {
		j.cancel()
	}
	writeJSON(w, j.snapshot())
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	config := r.PathValue("config")
	if _, err := hotnoc.ConfigByName(config); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	scale := 1
	if q := r.URL.Query().Get("scale"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 || n > maxScale {
			writeError(w, http.StatusBadRequest, "bad scale %q (want 1..%d)", q, maxScale)
			return
		}
		scale = n
	}
	rep, err := s.labFor(scale).Placement(r.Context(), config)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, rep)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.pruneLocked(time.Now())
	scales := make([]int, 0, len(s.labs))
	for scale := range s.labs {
		scales = append(scales, scale)
	}
	sort.Ints(scales)
	labs := make([]hotnoc.LabStats, 0, len(scales))
	for _, scale := range scales {
		labs = append(labs, s.labs[scale].Stats())
	}
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()

	var counts wire.JobCounts
	for _, j := range jobs {
		counts.Total++
		switch j.snapshot().State {
		case wire.JobRunning:
			counts.Running++
		case wire.JobDone:
			counts.Done++
		case wire.JobFailed:
			counts.Failed++
		case wire.JobCanceled:
			counts.Canceled++
		}
	}
	writeJSON(w, wire.Stats{Jobs: counts, Labs: labs, Limits: wire.Limits{
		MaxJobs:      s.cfg.MaxJobs,
		RetainJobs:   s.cfg.RetainJobs,
		RetainForSec: s.cfg.RetainFor.Seconds(),
	}})
}

func writeJSON(w http.ResponseWriter, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wire.ErrorMsg{Error: fmt.Sprintf(format, args...)})
}
