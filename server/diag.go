package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hotnoc/server/wire"
)

// defaultEventBuffer is the diagnostics ring capacity when
// Config.EventBuffer is zero: enough replay depth for a dashboard
// reconnecting after a brief outage without letting a chatty daemon's
// history grow unbounded.
const defaultEventBuffer = 512

// diagMsg is one buffered diagnostics event: its payload is marshaled
// once at emit time, so a stream with many subscribers serializes each
// event exactly once (the same economy as the job event log).
type diagMsg struct {
	seq    int64
	tenant string // owning tenant; "" marks an infra event visible to all
	typ    string
	data   []byte
}

// diagLog is the daemon-wide structured diagnostics stream backing
// GET /v1/events: a bounded ring of lifecycle events (job admission and
// completion, dispatches, tenant throttling, fleet membership) with
// monotonic sequence numbers. Subscribers replay the retained suffix —
// optionally from a client-remembered sequence number, enabling SSE
// Last-Event-ID resume — then follow live appends. The ring bounds
// memory: a subscriber slower than the event rate misses events rather
// than wedging the daemon, and can detect the gap from the sequence
// numbers.
type diagLog struct {
	mu     sync.Mutex
	cap    int
	seq    int64
	buf    []diagMsg
	notify chan struct{}
	closed bool
	now    func() time.Time
}

func newDiagLog(capacity int) *diagLog {
	if capacity <= 0 {
		capacity = defaultEventBuffer
	}
	return &diagLog{cap: capacity, notify: make(chan struct{}), now: time.Now}
}

// emit stamps ev with the next sequence number and the current time,
// marshals it once, and appends it to the ring, waking followers.
// Safe to call with any server lock held — diagLog is a leaf that never
// calls out.
func (d *diagLog) emit(ev wire.DiagEvent) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.seq++
	ev.Seq = d.seq
	ev.Time = d.now().UTC()
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	if len(d.buf) >= d.cap {
		// Slide the ring down one slot. O(cap) per emit, and cap is
		// small; lifecycle events are orders of magnitude rarer than
		// outcomes, which have their own per-job logs.
		copy(d.buf, d.buf[1:])
		d.buf = d.buf[:len(d.buf)-1]
	}
	d.buf = append(d.buf, diagMsg{seq: ev.Seq, tenant: ev.Tenant, typ: ev.Type, data: data})
	close(d.notify)
	d.notify = make(chan struct{})
}

// since returns the retained events with sequence numbers beyond seq,
// whether the log is closed, and a channel closed on the next emit.
func (d *diagLog) since(seq int64) (batch []diagMsg, closed bool, more <-chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	i := 0
	for i < len(d.buf) && d.buf[i].seq <= seq {
		i++
	}
	return d.buf[i:], d.closed, d.notify
}

// close ends the stream: followers drain what they have and return.
// Called at shutdown before the HTTP server closes connections, so
// /v1/events handlers unwind promptly instead of holding Shutdown open.
func (d *diagLog) close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	close(d.notify)
}

// handleDiagEvents serves GET /v1/events: the daemon-wide diagnostics
// stream as server-sent events. Each frame carries its sequence number
// as the SSE id, so a reconnecting client resumes with Last-Event-ID
// (or the ?since= query parameter) and receives only what it missed —
// within the ring's retention. Events are tenant-scoped: a tenant sees
// its own job lifecycle plus infrastructure events (fleet membership);
// other tenants' jobs are invisible, the same isolation as /v1/jobs.
func (s *Server) handleDiagEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	var cursor int64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		cursor, _ = strconv.ParseInt(v, 10, 64)
	}
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad since %q (want a sequence number)", v)
			return
		}
		cursor = n
	}
	tn := requestTenant(r)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ka := time.NewTicker(s.keepAlive())
	defer ka.Stop()
	for {
		batch, closed, more := s.diag.since(cursor)
		wrote := false
		for _, m := range batch {
			cursor = m.seq
			if m.tenant != "" && tn != nil && m.tenant != tn.ID {
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", m.seq, m.typ, m.data); err != nil {
				return
			}
			wrote = true
		}
		if wrote {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-more:
		case <-ka.C:
			if !writeKeepAlive(w, flusher) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
