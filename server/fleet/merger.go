//hotnoc:deterministic
package fleet

import (
	"sync"

	"hotnoc"
)

// collector tracks which global grid indices have already produced an
// outcome. It is the fleet's exactly-once gate: a re-dispatched shard is
// trimmed to the indices the collector has not seen (so surviving
// workers only evaluate what the lost worker still owed), and a late
// duplicate — a point whose outcome raced the worker's death — is
// dropped, so clients see each point exactly once.
type collector struct {
	mu  sync.Mutex
	got []bool
}

func newCollector(n int) *collector {
	return &collector{got: make([]bool, n)}
}

// add records an outcome for global index i, reporting whether it is the
// first one (false = duplicate, drop it).
func (c *collector) add(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.got[i] {
		return false
	}
	c.got[i] = true
	return true
}

// remaining returns the shard indices still missing an outcome.
func (c *collector) remaining(sh Shard) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rem []int
	for _, gi := range sh.Indices {
		if !c.got[gi] {
			rem = append(rem, gi)
		}
	}
	return rem
}

// orderer reassembles concurrently arriving per-shard outcomes into the
// submitted grid's point order: outcomes buffer until the next expected
// global index is present, then drain as a contiguous run. Together with
// the deterministic per-worker point order this is what makes a merged
// fleet stream byte-identical to a single-daemon stream.
type orderer struct {
	next    int
	total   int
	pending map[int]hotnoc.SweepOutcome
}

func newOrderer(total int) *orderer {
	return &orderer{total: total, pending: map[int]hotnoc.SweepOutcome{}}
}

// add buffers the outcome for global index i and returns the run of
// outcomes now emittable in point order (often empty).
func (o *orderer) add(i int, out hotnoc.SweepOutcome) []hotnoc.SweepOutcome {
	o.pending[i] = out
	var run []hotnoc.SweepOutcome
	for {
		next, ok := o.pending[o.next]
		if !ok {
			return run
		}
		delete(o.pending, o.next)
		o.next++
		run = append(run, next)
	}
}

// complete reports whether every outcome has been emitted.
func (o *orderer) complete() bool { return o.next == o.total }

// emitted reports how many outcomes have been emitted in order so far.
func (o *orderer) emitted() int { return o.next }
