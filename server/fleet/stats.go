package fleet

import (
	"context"
	"maps"
	"slices"
	"sync"

	"hotnoc"
	"hotnoc/obs"
	"hotnoc/server/wire"
)

// statsLedger makes the fleet's aggregated counters monotonic across
// worker restarts. A worker that loses its lease and re-registers (or
// crashes and comes back) reports counters that restarted from zero; a
// naive sum over live workers would make the fleet totals go *down*,
// which breaks anything rate()-ing them. The ledger keys on worker URL
// — the stable identity across re-registration, since coordinator ids
// change on every rejoin — and keeps, per URL, an accumulated base from
// previous incarnations plus the latest snapshot of the current one.
// When a snapshot's counters regress, the previous snapshot is folded
// into the base (the old incarnation's final contribution) and the new
// snapshot starts the next incarnation. Totals are Σ(base + last) over
// every URL ever observed, so a departed worker's work stays counted.
//
// Only counter-class fields live here. Gauges (pool sizes, busy
// workers, running/queued jobs) describe the present and must come from
// the workers currently reachable, not from history.
type statsLedger struct {
	mu    sync.Mutex
	byURL map[string]*urlLedger
	// tnWeight is the most recently observed weight per tenant, across
	// all workers — weight is configuration, not a counter, so the last
	// report wins regardless of which worker it came from.
	tnWeight map[string]int
}

// labCounters is the counter-class slice of hotnoc.LabStats.
type labCounters struct {
	decodes     uint64
	cacheHits   uint64
	cacheMisses uint64
	buildHits   uint64
	buildMisses uint64
}

func (a labCounters) add(b labCounters) labCounters {
	a.decodes += b.decodes
	a.cacheHits += b.cacheHits
	a.cacheMisses += b.cacheMisses
	a.buildHits += b.buildHits
	a.buildMisses += b.buildMisses
	return a
}

// regressed reports whether cur lost ground against prev — the restart
// signature (every field is monotonic within one worker process).
func (cur labCounters) regressed(prev labCounters) bool {
	return cur.decodes < prev.decodes ||
		cur.cacheHits < prev.cacheHits || cur.cacheMisses < prev.cacheMisses ||
		cur.buildHits < prev.buildHits || cur.buildMisses < prev.buildMisses
}

func labCountersOf(ls hotnoc.LabStats) labCounters {
	return labCounters{
		decodes:     ls.Decodes,
		cacheHits:   ls.CacheHits,
		cacheMisses: ls.CacheMisses,
		buildHits:   ls.BuildHits,
		buildMisses: ls.BuildMisses,
	}
}

// tenantCounters is the counter-class slice of wire.TenantStats.
type tenantCounters struct {
	done     int
	failed   int
	canceled int
	rejected int
	points   int64
}

func (a tenantCounters) add(b tenantCounters) tenantCounters {
	a.done += b.done
	a.failed += b.failed
	a.canceled += b.canceled
	a.rejected += b.rejected
	a.points += b.points
	return a
}

func (cur tenantCounters) regressed(prev tenantCounters) bool {
	return cur.done < prev.done || cur.failed < prev.failed ||
		cur.canceled < prev.canceled || cur.rejected < prev.rejected ||
		cur.points < prev.points
}

func tenantCountersOf(ts wire.TenantStats) tenantCounters {
	return tenantCounters{
		done:     ts.Done,
		failed:   ts.Failed,
		canceled: ts.Canceled,
		rejected: ts.Rejected,
		points:   ts.Points,
	}
}

// urlLedger is one worker URL's accumulation state.
type urlLedger struct {
	labBase map[int]labCounters // accumulated from dead incarnations, by scale
	labLast map[int]labCounters // latest snapshot of the live incarnation

	tnBase map[string]tenantCounters
	tnLast map[string]tenantCounters
}

func newStatsLedger() *statsLedger {
	return &statsLedger{byURL: map[string]*urlLedger{}, tnWeight: map[string]int{}}
}

// observe folds one successfully fetched worker stats snapshot into the
// ledger. Restart detection is per scale (and per tenant): a regression
// in any counter means the worker restarted since the previous
// snapshot, so the previous snapshot — the old incarnation's final
// observed state — is banked into the base.
func (l *statsLedger) observe(url string, st wire.Stats) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ul, ok := l.byURL[url]
	if !ok {
		ul = &urlLedger{
			labBase: map[int]labCounters{}, labLast: map[int]labCounters{},
			tnBase: map[string]tenantCounters{}, tnLast: map[string]tenantCounters{},
		}
		l.byURL[url] = ul
	}
	for _, ls := range st.Labs {
		cur := labCountersOf(ls)
		if prev, seen := ul.labLast[ls.Scale]; seen && cur.regressed(prev) {
			ul.labBase[ls.Scale] = ul.labBase[ls.Scale].add(prev)
		}
		ul.labLast[ls.Scale] = cur
	}
	for _, ts := range st.Tenants {
		cur := tenantCountersOf(ts)
		if prev, seen := ul.tnLast[ts.ID]; seen && cur.regressed(prev) {
			ul.tnBase[ts.ID] = ul.tnBase[ts.ID].add(prev)
		}
		ul.tnLast[ts.ID] = cur
		l.tnWeight[ts.ID] = ts.Weight
	}
}

// labTotals returns the fleet-wide monotonic counters per scale, summed
// over every URL ever observed.
//
//hotnoc:deterministic
func (l *statsLedger) labTotals() map[int]labCounters {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := map[int]labCounters{}
	for _, url := range slices.Sorted(maps.Keys(l.byURL)) {
		ul := l.byURL[url]
		for _, scale := range slices.Sorted(maps.Keys(ul.labLast)) {
			out[scale] = out[scale].add(ul.labBase[scale]).add(ul.labLast[scale])
		}
		for _, scale := range slices.Sorted(maps.Keys(ul.labBase)) {
			if _, ok := ul.labLast[scale]; !ok {
				out[scale] = out[scale].add(ul.labBase[scale])
			}
		}
	}
	return out
}

// tenantTotals returns the fleet-wide monotonic tenant counters and the
// most recently observed weight per tenant.
//
//hotnoc:deterministic
func (l *statsLedger) tenantTotals() (map[string]tenantCounters, map[string]int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := map[string]tenantCounters{}
	weights := map[string]int{}
	for _, url := range slices.Sorted(maps.Keys(l.byURL)) {
		ul := l.byURL[url]
		for _, id := range slices.Sorted(maps.Keys(ul.tnLast)) {
			out[id] = out[id].add(ul.tnBase[id]).add(ul.tnLast[id])
		}
		for _, id := range slices.Sorted(maps.Keys(ul.tnBase)) {
			if _, ok := ul.tnLast[id]; !ok {
				out[id] = out[id].add(ul.tnBase[id])
			}
		}
	}
	for _, id := range slices.Sorted(maps.Keys(l.tnWeight)) {
		weights[id] = l.tnWeight[id]
	}
	return out, weights
}

// perWorker returns each observed worker URL's monotonic counters,
// summed over scales, sorted by URL — the per-worker series on the
// coordinator's /metrics.
//
//hotnoc:deterministic
func (l *statsLedger) perWorker() (urls []string, counters []labCounters) {
	l.mu.Lock()
	defer l.mu.Unlock()
	urls = slices.Sorted(maps.Keys(l.byURL))
	counters = make([]labCounters, len(urls))
	for i, url := range urls {
		ul := l.byURL[url]
		var sum labCounters
		for _, scale := range slices.Sorted(maps.Keys(ul.labLast)) {
			sum = sum.add(ul.labBase[scale]).add(ul.labLast[scale])
		}
		for _, scale := range slices.Sorted(maps.Keys(ul.labBase)) {
			if _, ok := ul.labLast[scale]; !ok {
				sum = sum.add(ul.labBase[scale])
			}
		}
		counters[i] = sum
	}
	return urls, counters
}

// RefreshStats fetches and folds in every reachable worker's stats,
// updating the ledger the metrics collector reads. The coordinator's
// /metrics handler calls it per scrape, making the scrape the fleet's
// natural aggregation trigger.
func (c *Coordinator) RefreshStats(ctx context.Context) {
	c.FleetStats(ctx)
}

// MetricsCollector returns an obs.Collector contributing the fleet's
// aggregate view to a coordinator's registry at scrape time: monotonic
// per-worker-labeled counters (by worker URL — stable across lease
// expiry and re-registration), fleet-wide monotonic sums, and the live
// worker-count gauge.
func (c *Coordinator) MetricsCollector() obs.Collector {
	counter := func(name, help, worker string, v uint64) obs.Sample {
		s := obs.Sample{Name: name, Type: obs.TypeCounter, Help: help, Value: float64(v)}
		if worker != "" {
			s.Labels = obs.Labels{"worker": worker}
		}
		return s
	}
	return func(emit func(obs.Sample)) {
		urls, counters := c.ledger.perWorker()
		var total labCounters
		for i, url := range urls {
			ct := counters[i]
			total = total.add(ct)
			emit(counter("hotnocd_fleet_worker_decodes_total", "Engine decodes per fleet worker (monotonic across restarts).", url, ct.decodes))
			emit(counter("hotnocd_fleet_worker_cache_hits_total", "Characterization cache hits per fleet worker.", url, ct.cacheHits))
			emit(counter("hotnocd_fleet_worker_cache_misses_total", "Characterization cache misses per fleet worker.", url, ct.cacheMisses))
			emit(counter("hotnocd_fleet_worker_build_hits_total", "Build cache hits per fleet worker.", url, ct.buildHits))
			emit(counter("hotnocd_fleet_worker_build_misses_total", "Build cache misses per fleet worker.", url, ct.buildMisses))
		}
		emit(counter("hotnocd_fleet_decodes_total", "Fleet-wide engine decodes (monotonic across worker restarts).", "", total.decodes))
		emit(counter("hotnocd_fleet_cache_hits_total", "Fleet-wide characterization cache hits.", "", total.cacheHits))
		emit(counter("hotnocd_fleet_cache_misses_total", "Fleet-wide characterization cache misses.", "", total.cacheMisses))
		emit(counter("hotnocd_fleet_build_hits_total", "Fleet-wide build cache hits.", "", total.buildHits))
		emit(counter("hotnocd_fleet_build_misses_total", "Fleet-wide build cache misses.", "", total.buildMisses))
		// c.live, not c.WorkerCount(): the collector runs under the
		// registry lock and must not take c.mu (lockorder rule).
		emit(obs.Sample{Name: "hotnocd_fleet_workers", Type: obs.TypeGauge,
			Help: "Live fleet workers.", Value: float64(c.live.Load())})
	}
}
