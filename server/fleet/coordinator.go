// Package fleet turns a set of cooperating hotnocd daemons into one
// horizontally scaled service. A Coordinator owns a registry of workers
// (daemons that registered with POST /v1/workers and keep a heartbeat
// lease alive), partitions every submitted sweep into (config,
// scheme)-aligned shards, dispatches the shards to workers over the
// ordinary client SDK, and re-merges the per-shard outcome streams into
// one point-ordered stream that is byte-identical to the same sweep on a
// single daemon.
//
// Three properties make the fleet safe to hide behind a plain -server
// URL:
//
//   - Byte parity. Workers stream outcomes in deterministic point order
//     and JSON round-trips float64 bit for bit, so reassembling shard
//     outcomes by global grid index reproduces exactly the stream one
//     daemon would have produced.
//   - Exactly-once artifacts. Shards are bundled per configuration and
//     every bundle lands on one worker, so each calibrated build —
//     annealing plus calibration, keyed (config, scale) — and each NoC
//     characterization — keyed (config, scheme, scale) — is computed by
//     exactly one worker. The assignment is remembered as a
//     coordinator-granted claim, so later sweeps (and concurrent jobs)
//     over the same keys return to the worker whose caches already hold
//     them: the whole fleet anneals each configuration once.
//   - Loss tolerance. A worker that misses its heartbeat lease, or whose
//     stream breaks at the transport level, is expired: its claims are
//     released, in-flight streams from it unwind, and each of its
//     unfinished shards is re-dispatched — trimmed to the points not yet
//     received, with late duplicates dropped by index — to a surviving
//     worker. Clients still see every point exactly once, in order.
//
// The Coordinator plugs into hotnoc/server as Config.Fleet: tenant
// identity, admission and weighted-fair scheduling stay coordinator-side
// concerns, while shard sub-jobs reach workers anonymously — the fleet's
// interior is tenant-invisible.
package fleet

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"maps"
	"net"
	"net/http"
	"net/url"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hotnoc"
	"hotnoc/client"
	"hotnoc/server/wire"
)

// ErrNoWorkers rejects work submitted to a fleet with no live workers.
var ErrNoWorkers = errors.New("fleet has no live workers")

// Config tunes a Coordinator.
type Config struct {
	// Lease is how long a worker registration stays live without a
	// heartbeat (a re-POST of /v1/workers). Zero means 15s.
	Lease time.Duration
	// Secret, when non-empty, gates worker registration and
	// deregistration: those requests must present it as "Authorization:
	// Bearer <secret>". Keeps random clients from joining (or draining)
	// the fleet; tenant API keys are a separate, client-facing concern.
	Secret string
	// StatsTimeout bounds each worker's /v1/stats fetch during fleet
	// stats aggregation. Zero means 3s.
	StatsTimeout time.Duration
}

// Coordinator shards sweeps across registered workers; see the package
// comment. Create one with NewCoordinator and hand it to
// server.Config.Fleet.
type Coordinator struct {
	cfg Config

	// mu is held while the event hook runs and while scrape-adjacent
	// registration paths execute, so collectors and hooks must never
	// acquire it back (self-deadlock); lockorder enforces this.
	mu      sync.Mutex //hotnoc:scrapelocked
	workers map[string]*Worker
	// live mirrors len(workers) atomically so the metrics collector
	// can report the worker-count gauge without touching mu at scrape
	// time (the lockorder rule above).
	live atomic.Int64
	byURL   map[string]*Worker
	nextID  int
	// builds / chars are the coordinator-granted claims: which worker
	// owns each calibrated build and each NoC characterization. Claims
	// hold until the owner dies, keeping artifact keys sticky across
	// sweeps so the fleet computes each exactly once.
	builds map[buildKey]string
	chars  map[charKey]string

	// ledger accumulates worker counters monotonically across lease
	// expiry and re-registration; see statsLedger.
	ledger *statsLedger

	// onEvent observes fleet membership changes (worker joined / left)
	// for the server's diagnostics stream. Called with c.mu held — it
	// must be a leaf that never calls back into the coordinator.
	onEvent func(typ, workerID, url, reason string)

	// now and onExpire are test seams: the registry clock, and an
	// observer of worker expiry.
	now      func() time.Time
	onExpire func(id, reason string)
}

// SetEventHook installs an observer of fleet membership events: typ is
// wire.DiagWorkerJoined or wire.DiagWorkerLeft, reason is non-empty
// only on departures. The hook runs with coordinator state locked, so
// it must not call back into the Coordinator. Set it before serving.
func (c *Coordinator) SetEventHook(fn func(typ, workerID, url, reason string)) {
	c.onEvent = fn
}

// NewCoordinator returns an empty fleet; workers join via Register or
// the POST /v1/workers handler.
func NewCoordinator(cfg Config) *Coordinator {
	return &Coordinator{
		cfg:     cfg,
		workers: map[string]*Worker{},
		byURL:   map[string]*Worker{},
		builds:  map[buildKey]string{},
		chars:   map[charKey]string{},
		ledger:  newStatsLedger(),
		now:     time.Now,
	}
}

func (c *Coordinator) lease() time.Duration {
	if c.cfg.Lease > 0 {
		return c.cfg.Lease
	}
	return 15 * time.Second
}

func (c *Coordinator) statsTimeout() time.Duration {
	if c.cfg.StatsTimeout > 0 {
		return c.cfg.StatsTimeout
	}
	return 3 * time.Second
}

// Register adds a worker reachable at url (or refreshes its lease —
// registration doubles as the heartbeat) and returns its lease.
func (c *Coordinator) Register(url string, capacity int) wire.WorkerLease {
	c.mu.Lock()
	w := c.registerLocked(url, capacity)
	c.mu.Unlock()
	return wire.WorkerLease{ID: w.id, LeaseSec: c.lease().Seconds()}
}

// Deregister removes a worker gracefully (a drained worker saying
// goodbye). Unknown ids are a no-op.
func (c *Coordinator) Deregister(id string) {
	c.expireWorker(id, "deregistered")
}

// Sweep partitions pts into shards, dispatches them across the fleet and
// streams the merged outcomes in point order — the fleet-backed
// equivalent of Lab.SweepWithProgress, pluggable into the server's job
// machinery. Worker loss mid-shard re-dispatches the shard's unfinished
// points to a surviving worker; progress events are forwarded with
// point indices remapped to the submitted grid.
func (c *Coordinator) Sweep(parent context.Context, scale int, pts []hotnoc.SweepPoint, progress func(hotnoc.Event)) iter.Seq2[hotnoc.SweepOutcome, error] {
	return func(yield func(hotnoc.SweepOutcome, error) bool) {
		if len(pts) == 0 {
			return
		}
		if scale <= 0 {
			scale = 1
		}
		shards := Partition(pts)
		assigned := c.assign(shards, scale)
		if assigned == nil {
			yield(hotnoc.SweepOutcome{}, ErrNoWorkers)
			return
		}
		ctx, cancel := context.WithCancel(parent)
		defer cancel()

		col := newCollector(len(pts))
		type indexed struct {
			idx int
			out hotnoc.SweepOutcome
		}
		outc := make(chan indexed, 64)
		errc := make(chan error, len(shards))
		var pmu sync.Mutex
		emitProgress := func(ev hotnoc.Event) {
			if progress == nil {
				return
			}
			pmu.Lock()
			progress(ev)
			pmu.Unlock()
		}
		var wg sync.WaitGroup
		for _, sh := range shards {
			wg.Add(1)
			go func(sh Shard, hint string) {
				defer wg.Done()
				err := c.runShard(ctx, scale, sh, pts, hint, col, func(gi int, out hotnoc.SweepOutcome) {
					select {
					case outc <- indexed{idx: gi, out: out}:
					case <-ctx.Done():
					}
				}, emitProgress)
				if err != nil && ctx.Err() == nil {
					errc <- err
					cancel()
				}
			}(sh, assigned[sh.Key])
		}
		go func() {
			wg.Wait()
			close(outc)
		}()

		ord := newOrderer(len(pts))
		for io := range outc {
			for _, out := range ord.add(io.idx, io.out) {
				if !yield(out, nil) {
					// The consumer broke out; cancel and drain the shard
					// runners so no goroutine outlives the iteration.
					cancel()
					for range outc {
					}
					return
				}
			}
		}
		if ord.complete() {
			return
		}
		select {
		case err := <-errc:
			yield(hotnoc.SweepOutcome{}, err)
		default:
			if err := parent.Err(); err != nil {
				yield(hotnoc.SweepOutcome{}, err)
				return
			}
			yield(hotnoc.SweepOutcome{}, fmt.Errorf(
				"fleet: sweep ended after %d of %d outcomes", ord.emitted(), len(pts)))
		}
	}
}

// maxAttempts bounds how often one shard may be re-dispatched before the
// sweep fails: every live worker may be tried, with headroom for
// stragglers joining mid-sweep.
func (c *Coordinator) maxAttempts() int {
	return c.WorkerCount() + 2
}

// runShard drives one shard to completion, re-dispatching across worker
// loss. Each attempt streams only the points the collector has not yet
// seen, so a surviving worker picks up exactly where the lost one
// stopped.
func (c *Coordinator) runShard(ctx context.Context, scale int, sh Shard, pts []hotnoc.SweepPoint, hint string, col *collector, emit func(int, hotnoc.SweepOutcome), progress func(hotnoc.Event)) error {
	var last error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		rem := col.remaining(sh)
		if len(rem) == 0 {
			return nil
		}
		w := c.acquire(sh.Key, scale, hint)
		hint = "" // the planner's choice only binds the first attempt
		if w == nil {
			if last != nil {
				return fmt.Errorf("fleet: shard %s/%s: %w (last worker error: %v)",
					sh.Key.Config, sh.Key.Scheme, ErrNoWorkers, last)
			}
			return ErrNoWorkers
		}
		err := c.streamShard(ctx, w, scale, rem, pts, col, emit, progress)
		c.release(w)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		last = err
		if attempt >= c.maxAttempts() {
			return fmt.Errorf("fleet: shard %s/%s failed after %d attempts: %w",
				sh.Key.Config, sh.Key.Scheme, attempt+1, err)
		}
		var re *client.RetryableError
		switch {
		case errors.As(err, &re):
			// The worker is alive but saturated (429) or draining (503):
			// back off and re-acquire — claims will route elsewhere only
			// if the worker dies meanwhile.
			delay := re.RetryAfter
			if delay <= 0 {
				delay = min(100*time.Millisecond<<attempt, 5*time.Second)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
		case transportError(err):
			// The worker is gone (connection refused/reset, stream cut
			// mid-flight, lease expired): expire it so its claims release
			// and the next acquire lands on a survivor.
			c.expireWorker(w.id, fmt.Sprintf("dispatch failed: %v", err))
		default:
			// A real evaluation or validation failure would recur on any
			// worker; fail the sweep.
			return err
		}
	}
}

// streamShard dispatches the shard's remaining points to w as one
// sub-sweep and feeds outcomes (tagged with their global grid index) to
// emit. The stream aborts as soon as the worker's lease expires, not
// only when TCP notices.
func (c *Coordinator) streamShard(ctx context.Context, w *Worker, scale int, rem []int, pts []hotnoc.SweepPoint, col *collector, emit func(int, hotnoc.SweepOutcome), progress func(hotnoc.Event)) error {
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-w.gone:
			cancel()
		case <-wctx.Done():
		}
	}()
	sub := make([]hotnoc.SweepPoint, len(rem))
	for i, gi := range rem {
		sub[i] = pts[gi]
	}
	opts := []client.Option{client.WithScale(scale)}
	if progress != nil {
		opts = append(opts, client.WithProgress(func(ev hotnoc.Event) {
			// Worker events carry shard-local point indices; remap them
			// to the submitted grid so clients can't tell a fleet ran.
			if ev.Point >= 0 && ev.Point < len(rem) {
				ev.Point = rem[ev.Point]
			}
			progress(ev)
		}))
	}
	i := 0
	for out, err := range client.New(w.url, opts...).Sweep(wctx, sub) {
		if err != nil {
			if ctx.Err() == nil && wctx.Err() != nil {
				// The worker's lease expired mid-stream; surface it as a
				// transport-class loss so the shard re-dispatches.
				return fmt.Errorf("fleet: worker %s (%s) lost mid-shard: %w", w.id, w.url, client.ErrInterrupted)
			}
			return err
		}
		if i >= len(rem) {
			return fmt.Errorf("fleet: worker %s streamed more outcomes than dispatched", w.id)
		}
		gi := rem[i]
		i++
		if col.add(gi) {
			emit(gi, out)
		}
	}
	if i != len(rem) {
		return fmt.Errorf("fleet: worker %s streamed %d of %d shard outcomes: %w",
			w.id, i, len(rem), client.ErrInterrupted)
	}
	return nil
}

// transportError reports whether err smells like the worker (or the
// network to it) died — the class of failure that warrants expiry and
// re-dispatch rather than failing the sweep.
func transportError(err error) bool {
	var ue *url.Error
	if errors.As(err, &ue) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, client.ErrInterrupted) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// Placement proxies a placement-report request to the worker owning the
// configuration's build claim (falling back to the least-loaded worker),
// so GET /v1/builds/{config} works through a coordinator too.
func (c *Coordinator) Placement(ctx context.Context, config string, scale int) (*hotnoc.PlacementReport, error) {
	w := c.acquire(ShardKey{Config: config}, scale, "")
	if w == nil {
		return nil, ErrNoWorkers
	}
	defer c.release(w)
	return client.New(w.url, client.WithScale(scale)).Placement(ctx, config)
}

// FleetStats aggregates /v1/stats across the fleet. Counter-class
// fields (decodes, characterization and build cache hits/misses,
// finished/failed/rejected jobs, points served) come from the
// coordinator's monotonic ledger, so they never regress when a worker
// restarts, re-registers under a fresh id, or is temporarily
// unreachable — the departed incarnation's work stays counted. Gauge
// fields (pool size, busy workers, running/queued jobs) describe the
// present and are summed over the workers that answered this fetch;
// workers that miss the stats timeout contribute nothing to gauges but
// stay listed in Workers().
//
//hotnoc:deterministic
func (c *Coordinator) FleetStats(ctx context.Context) (labs []hotnoc.LabStats, tenants []wire.TenantStats) {
	c.mu.Lock()
	live := c.liveLocked()
	urls := make([]string, len(live))
	for i, w := range live {
		urls[i] = w.url
	}
	c.mu.Unlock()

	ctx, cancel := context.WithTimeout(ctx, c.statsTimeout())
	defer cancel()
	results := make([]wire.Stats, len(urls))
	oks := make([]bool, len(urls))
	var wg sync.WaitGroup
	for i, u := range urls {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			st, err := client.New(u).Stats(ctx)
			if err == nil {
				results[i], oks[i] = st, true
			}
		}(i, u)
	}
	wg.Wait()

	// Fold this round's successful fetches into the monotonic ledger,
	// then assemble: gauges from the round, counters from the ledger.
	byScale := map[int]*hotnoc.LabStats{}
	byTenant := map[string]*wire.TenantStats{}
	for i := range results {
		if !oks[i] {
			continue
		}
		c.ledger.observe(urls[i], results[i])
		for _, ls := range results[i].Labs {
			agg, ok := byScale[ls.Scale]
			if !ok {
				agg = &hotnoc.LabStats{Scale: ls.Scale}
				byScale[ls.Scale] = agg
			}
			agg.Workers += ls.Workers
			agg.BusyWorkers += ls.BusyWorkers
		}
		for _, ts := range results[i].Tenants {
			agg, ok := byTenant[ts.ID]
			if !ok {
				agg = &wire.TenantStats{ID: ts.ID, Weight: ts.Weight}
				byTenant[ts.ID] = agg
			}
			agg.Running += ts.Running
			agg.Queued += ts.Queued
		}
	}
	labTotals := c.ledger.labTotals()
	var scales []int
	for _, scale := range slices.Sorted(maps.Keys(labTotals)) {
		ct := labTotals[scale]
		agg, ok := byScale[scale]
		if !ok {
			agg = &hotnoc.LabStats{Scale: scale}
			byScale[scale] = agg
		}
		agg.Decodes = ct.decodes
		agg.CacheHits = ct.cacheHits
		agg.CacheMisses = ct.cacheMisses
		agg.BuildHits = ct.buildHits
		agg.BuildMisses = ct.buildMisses
	}
	for scale := range byScale {
		scales = append(scales, scale)
	}
	tnTotals, weights := c.ledger.tenantTotals()
	var tenantIDs []string
	for _, id := range slices.Sorted(maps.Keys(tnTotals)) {
		ct := tnTotals[id]
		agg, ok := byTenant[id]
		if !ok {
			agg = &wire.TenantStats{ID: id}
			byTenant[id] = agg
		}
		agg.Done = ct.done
		agg.Failed = ct.failed
		agg.Canceled = ct.canceled
		agg.Rejected = ct.rejected
		agg.Points = ct.points
		if w, ok := weights[id]; ok {
			agg.Weight = w
		}
	}
	for id := range byTenant {
		tenantIDs = append(tenantIDs, id)
	}
	sort.Ints(scales)
	for _, s := range scales {
		labs = append(labs, *byScale[s])
	}
	sort.Strings(tenantIDs)
	for _, id := range tenantIDs {
		tenants = append(tenants, *byTenant[id])
	}
	return labs, tenants
}

// authorized checks the fleet secret on worker registration requests.
func (c *Coordinator) authorized(r *http.Request) bool {
	if c.cfg.Secret == "" {
		return true
	}
	const scheme = "bearer "
	auth := r.Header.Get("Authorization")
	if len(auth) <= len(scheme) || !strings.EqualFold(auth[:len(scheme)], scheme) {
		return false
	}
	presented := strings.TrimSpace(auth[len(scheme):])
	return subtle.ConstantTimeCompare([]byte(presented), []byte(c.cfg.Secret)) == 1
}

// HandleRegister serves POST /v1/workers: a worker joining the fleet, or
// heartbeating its lease (the call is idempotent by URL).
func (c *Coordinator) HandleRegister(w http.ResponseWriter, r *http.Request) {
	if !c.authorized(r) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="hotnocd-fleet"`)
		fleetError(w, http.StatusUnauthorized, "worker registration requires the fleet secret")
		return
	}
	var reg wire.WorkerRegistration
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&reg); err != nil {
		fleetError(w, http.StatusBadRequest, "bad worker registration: %v", err)
		return
	}
	u, err := url.Parse(reg.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		fleetError(w, http.StatusBadRequest, "worker url %q is not an absolute URL", reg.URL)
		return
	}
	lease := c.Register(strings.TrimRight(reg.URL, "/"), reg.Capacity)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(lease)
}

// HandleDeregister serves DELETE /v1/workers/{id}: a worker leaving the
// fleet gracefully.
func (c *Coordinator) HandleDeregister(w http.ResponseWriter, r *http.Request) {
	if !c.authorized(r) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="hotnocd-fleet"`)
		fleetError(w, http.StatusUnauthorized, "worker deregistration requires the fleet secret")
		return
	}
	c.Deregister(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

// HandleWorkers serves GET /v1/workers: the live fleet membership.
func (c *Coordinator) HandleWorkers(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(wire.WorkerList{Workers: c.Workers()})
}

func fleetError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wire.ErrorMsg{Error: fmt.Sprintf(format, args...)})
}
