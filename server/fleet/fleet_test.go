package fleet

import (
	"reflect"
	"testing"
	"time"

	"hotnoc"
)

func pt(config, scheme string) hotnoc.SweepPoint {
	return hotnoc.SweepPoint{Config: config, Scheme: hotnoc.Scheme{Name: scheme}}
}

// TestPartition: shards group by (config, scheme) in first-appearance
// order, with ascending global indices.
func TestPartition(t *testing.T) {
	pts := []hotnoc.SweepPoint{
		pt("A", "x"), pt("A", "y"), pt("B", "x"), pt("A", "x"), pt("B", "x"),
	}
	shards := Partition(pts)
	want := []Shard{
		{Key: ShardKey{Config: "A", Scheme: "x"}, Indices: []int{0, 3}},
		{Key: ShardKey{Config: "A", Scheme: "y"}, Indices: []int{1}},
		{Key: ShardKey{Config: "B", Scheme: "x"}, Indices: []int{2, 4}},
	}
	if !reflect.DeepEqual(shards, want) {
		t.Fatalf("Partition = %+v, want %+v", shards, want)
	}
	sub := shards[2].Points(pts)
	if len(sub) != 2 || sub[0].Config != "B" || sub[1].Config != "B" {
		t.Fatalf("shard points = %+v, want the two B points", sub)
	}
}

// TestPlanBundlesConfigs: every shard of one configuration lands on the
// same worker (so each build is computed once), bundles place
// largest-first onto the least-loaded slot, and the plan is
// deterministic.
func TestPlanBundlesConfigs(t *testing.T) {
	pts := []hotnoc.SweepPoint{
		pt("A", "x"), pt("A", "x"), pt("A", "y"), // A: 3 points
		pt("B", "x"), pt("B", "y"), // B: 2 points
		pt("C", "x"), // C: 1 point
	}
	shards := Partition(pts)
	newSlots := func() []*slot {
		return []*slot{{id: "w-1", capacity: 1}, {id: "w-2", capacity: 1}}
	}
	got := plan(shards, newSlots(), nil)
	// LPT: A(3) -> w-1 (tie by id), B(2) -> w-2, C(1) -> w-2 (2 < 3).
	want := map[ShardKey]string{
		{Config: "A", Scheme: "x"}: "w-1",
		{Config: "A", Scheme: "y"}: "w-1",
		{Config: "B", Scheme: "x"}: "w-2",
		{Config: "B", Scheme: "y"}: "w-2",
		{Config: "C", Scheme: "x"}: "w-2",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("plan = %v, want %v", got, want)
	}
	if again := plan(shards, newSlots(), nil); !reflect.DeepEqual(again, got) {
		t.Fatalf("plan is not deterministic: %v vs %v", again, got)
	}
	if plan(shards, nil, nil) != nil {
		t.Fatal("plan with no slots must return nil")
	}
}

// TestPlanHonorsOwnerClaims: a configuration whose build another sweep
// already placed stays with its owner, overriding the greedy choice.
func TestPlanHonorsOwnerClaims(t *testing.T) {
	pts := []hotnoc.SweepPoint{
		pt("A", "x"), pt("A", "x"), pt("A", "x"),
		pt("B", "x"),
	}
	shards := Partition(pts)
	slots := []*slot{{id: "w-1", capacity: 1}, {id: "w-2", capacity: 1}}
	got := plan(shards, slots, func(config string) (string, bool) {
		if config == "A" {
			return "w-2", true
		}
		return "", false
	})
	if got[ShardKey{Config: "A", Scheme: "x"}] != "w-2" {
		t.Fatalf("claimed config A placed on %s, want its owner w-2", got[ShardKey{Config: "A", Scheme: "x"}])
	}
	if got[ShardKey{Config: "B", Scheme: "x"}] != "w-1" {
		t.Fatalf("config B placed on %s, want the idle w-1", got[ShardKey{Config: "B", Scheme: "x"}])
	}
}

// TestCollector: duplicate outcomes are dropped and remaining reports
// exactly the shard indices still missing.
func TestCollector(t *testing.T) {
	col := newCollector(5)
	if !col.add(2) {
		t.Fatal("first outcome for index 2 rejected")
	}
	if col.add(2) {
		t.Fatal("duplicate outcome for index 2 accepted")
	}
	sh := Shard{Indices: []int{0, 2, 4}}
	if rem := col.remaining(sh); !reflect.DeepEqual(rem, []int{0, 4}) {
		t.Fatalf("remaining = %v, want [0 4]", rem)
	}
}

// TestOrderer: outcomes arriving out of order buffer and drain as
// contiguous runs from the next expected index.
func TestOrderer(t *testing.T) {
	out := func(i int) hotnoc.SweepOutcome {
		return hotnoc.SweepOutcome{Point: hotnoc.SweepPoint{Blocks: i}}
	}
	ord := newOrderer(4)
	if run := ord.add(1, out(1)); len(run) != 0 {
		t.Fatalf("index 1 before 0 emitted %d outcomes", len(run))
	}
	run := ord.add(0, out(0))
	if len(run) != 2 || run[0].Point.Blocks != 0 || run[1].Point.Blocks != 1 {
		t.Fatalf("after index 0: run = %+v, want [0 1]", run)
	}
	if run := ord.add(3, out(3)); len(run) != 0 {
		t.Fatalf("index 3 before 2 emitted %d outcomes", len(run))
	}
	if ord.complete() {
		t.Fatal("orderer complete with outcomes pending")
	}
	run = ord.add(2, out(2))
	if len(run) != 2 || run[0].Point.Blocks != 2 || run[1].Point.Blocks != 3 {
		t.Fatalf("after index 2: run = %+v, want [2 3]", run)
	}
	if !ord.complete() || ord.emitted() != 4 {
		t.Fatalf("complete=%v emitted=%d, want true/4", ord.complete(), ord.emitted())
	}
}

// TestRegisterIdempotentByURL: re-registering the same URL keeps the
// worker's id and refreshes its capacity — the heartbeat path.
func TestRegisterIdempotentByURL(t *testing.T) {
	co := NewCoordinator(Config{Lease: time.Hour})
	l1 := co.Register("http://a", 2)
	l2 := co.Register("http://a", 4)
	if l1.ID != "w-1" || l2.ID != "w-1" {
		t.Fatalf("re-registration changed the id: %q then %q", l1.ID, l2.ID)
	}
	ws := co.Workers()
	if len(ws) != 1 || ws[0].Capacity != 4 {
		t.Fatalf("workers = %+v, want one worker with refreshed capacity 4", ws)
	}
	if co.Register("http://b", 1).ID != "w-2" {
		t.Fatal("a second URL did not get a fresh id")
	}
}

// TestAcquireStickyClaims: acquire balances fresh keys by load and
// routes keys with claims back to their owner, so artifacts are
// computed exactly once fleet-wide.
func TestAcquireStickyClaims(t *testing.T) {
	co := NewCoordinator(Config{Lease: time.Hour})
	co.Register("http://a", 1) // w-1
	co.Register("http://b", 1) // w-2

	w1 := co.acquire(ShardKey{Config: "A", Scheme: "x"}, 8, "")
	if w1.ID() != "w-1" {
		t.Fatalf("first acquire picked %s, want w-1 (id tie-break)", w1.ID())
	}
	// w-1 is busy, so a fresh key balances onto w-2.
	w2 := co.acquire(ShardKey{Config: "B", Scheme: "x"}, 8, "")
	if w2.ID() != "w-2" {
		t.Fatalf("fresh key acquired %s while w-1 busy, want w-2", w2.ID())
	}
	// The characterization claim makes A/x sticky to w-1 even though both
	// are equally loaded now.
	if w := co.acquire(ShardKey{Config: "A", Scheme: "x"}, 8, ""); w.ID() != "w-1" {
		t.Fatalf("claimed characterization acquired %s, want its owner w-1", w.ID())
	}
	// A new scheme on config A follows the build claim.
	if w := co.acquire(ShardKey{Config: "A", Scheme: "y"}, 8, ""); w.ID() != "w-1" {
		t.Fatalf("new scheme on claimed build acquired %s, want w-1", w.ID())
	}
	// A different scale is a different build: it balances freshly.
	if w := co.acquire(ShardKey{Config: "A", Scheme: "x"}, 16, ""); w.ID() != "w-2" {
		t.Fatalf("other-scale acquire picked %s, want the less-loaded w-2", w.ID())
	}
}

// TestLeaseExpiry: a worker that stops heartbeating is expired — its
// claims release and in-flight acquires cannot reach it — while
// heartbeats keep it alive indefinitely.
func TestLeaseExpiry(t *testing.T) {
	co := NewCoordinator(Config{Lease: 100 * time.Millisecond})
	expired := make(chan string, 1)
	co.onExpire = func(id, reason string) { expired <- id }

	co.Register("http://a", 1)
	w := co.acquire(ShardKey{Config: "A", Scheme: "x"}, 8, "")
	if w == nil {
		t.Fatal("acquire on a live worker returned nil")
	}
	co.release(w)

	// Two heartbeats at 60ms intervals outlive the 100ms lease.
	for i := 0; i < 2; i++ {
		time.Sleep(60 * time.Millisecond)
		co.Register("http://a", 1)
	}
	if co.WorkerCount() != 1 {
		t.Fatal("heartbeating worker expired")
	}

	select {
	case id := <-expired:
		if id != "w-1" {
			t.Fatalf("expired %s, want w-1", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lease never expired after heartbeats stopped")
	}
	if co.WorkerCount() != 0 {
		t.Fatalf("worker count = %d after expiry, want 0", co.WorkerCount())
	}
	if w := co.acquire(ShardKey{Config: "A", Scheme: "x"}, 8, ""); w != nil {
		t.Fatalf("acquire on an empty fleet returned %s", w.ID())
	}
	co.mu.Lock()
	builds, chars := len(co.builds), len(co.chars)
	co.mu.Unlock()
	if builds != 0 || chars != 0 {
		t.Fatalf("expiry left %d build and %d characterization claims", builds, chars)
	}
	select {
	case <-w.gone:
		// Expiry closed the worker's gone channel — the signal that
		// unwinds any stream still attached to it.
	default:
		t.Fatal("expiry did not close the worker's gone channel")
	}
}

// TestAssignGrantsClaims: the upfront plan records claims, so a repeat
// assignment over the same grid reproduces the same placement even with
// load skew in between.
func TestAssignGrantsClaims(t *testing.T) {
	co := NewCoordinator(Config{Lease: time.Hour})
	co.Register("http://a", 1)
	co.Register("http://b", 1)
	pts := []hotnoc.SweepPoint{
		pt("A", "x"), pt("A", "y"), pt("E", "x"), pt("E", "y"),
	}
	shards := Partition(pts)
	first := co.assign(shards, 8)
	if first == nil {
		t.Fatal("assign returned nil with live workers")
	}
	if first[ShardKey{Config: "A", Scheme: "x"}] != first[ShardKey{Config: "A", Scheme: "y"}] {
		t.Fatalf("config A split across workers: %v", first)
	}
	if first[ShardKey{Config: "A", Scheme: "x"}] == first[ShardKey{Config: "E", Scheme: "x"}] {
		t.Fatalf("equal-size bundles not spread across the fleet: %v", first)
	}
	// Skew the load; claims must still pin the repeat to the same plan.
	w := co.acquire(ShardKey{Config: "A", Scheme: "x"}, 8, "")
	defer co.release(w)
	if again := co.assign(shards, 8); !reflect.DeepEqual(again, first) {
		t.Fatalf("repeat assign moved claimed bundles: %v vs %v", again, first)
	}
}
