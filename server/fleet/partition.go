//hotnoc:deterministic
package fleet

import (
	"sort"

	"hotnoc"
)

// ShardKey identifies one shard of a sweep grid: all points sharing one
// (configuration, scheme) pair. The key deliberately matches the
// granularity of the expensive cached artifacts — a NoC characterization
// is keyed by (config, scheme, scale) and a calibrated build by (config,
// scale) — so a shard never needs an artifact that another shard's worker
// is also computing.
type ShardKey struct {
	Config string
	Scheme string
}

// Shard is one dispatchable unit of a sweep: the grid indices (ascending)
// of every point sharing the key. A worker evaluates a shard as an
// ordinary sub-sweep; because the indices are ascending and the worker
// streams outcomes in point order, the shard's outcome stream maps back
// to global grid indices by position.
type Shard struct {
	Key ShardKey
	// Indices are the shard's positions in the submitted grid, ascending.
	Indices []int
}

// Points returns the shard's grid points, in shard order, drawn from the
// full submitted grid.
func (sh Shard) Points(pts []hotnoc.SweepPoint) []hotnoc.SweepPoint {
	sub := make([]hotnoc.SweepPoint, len(sh.Indices))
	for i, gi := range sh.Indices {
		sub[i] = pts[gi]
	}
	return sub
}

// Partition splits a sweep grid into (config, scheme)-aligned shards, in
// first-appearance order. Periodic and reactive points of one (config,
// scheme) land in the same shard — they share the same characterization,
// exactly as they do inside a single Lab.
func Partition(pts []hotnoc.SweepPoint) []Shard {
	byKey := map[ShardKey]int{}
	var shards []Shard
	for i, p := range pts {
		key := ShardKey{Config: p.Config, Scheme: p.Scheme.Name}
		si, ok := byKey[key]
		if !ok {
			si = len(shards)
			byKey[key] = si
			shards = append(shards, Shard{Key: key})
		}
		shards[si].Indices = append(shards[si].Indices, i)
	}
	return shards
}

// slot is one live worker's assignment state during planning: its
// identity, its advertised capacity, and the load (in grid points,
// normalized by capacity) planning has placed on it so far.
type slot struct {
	id       string
	capacity int
	load     float64
}

func (s *slot) add(points int) {
	cap := s.capacity
	if cap < 1 {
		cap = 1
	}
	s.load += float64(points) / float64(cap)
}

// plan assigns every shard to a worker id. Shards are bundled by
// configuration and every bundle lands on a single worker, so each
// calibrated build — keyed by (config, scale) — is computed by exactly
// one worker, and with it every (config, scheme) characterization.
// Bundles are placed largest-first (longest-processing-time greedy, the
// per-shard point counts giving job sizes for free) onto the
// least-loaded capacity-normalized slot; owner-supplied claims from
// earlier sweeps override the greedy choice so a configuration a worker
// has already annealed stays with that worker. All ties break by name,
// so the plan is a pure function of its inputs.
func plan(shards []Shard, slots []*slot, owner func(config string) (string, bool)) map[ShardKey]string {
	type bundle struct {
		config string
		points int
	}
	index := map[string]*bundle{}
	var bundles []*bundle
	for _, sh := range shards {
		b, ok := index[sh.Key.Config]
		if !ok {
			b = &bundle{config: sh.Key.Config}
			index[sh.Key.Config] = b
			bundles = append(bundles, b)
		}
		b.points += len(sh.Indices)
	}
	sort.Slice(bundles, func(i, k int) bool {
		if bundles[i].points != bundles[k].points {
			return bundles[i].points > bundles[k].points
		}
		return bundles[i].config < bundles[k].config
	})
	byID := map[string]*slot{}
	for _, s := range slots {
		byID[s.id] = s
	}
	assigned := map[ShardKey]string{}
	for _, b := range bundles {
		var chosen *slot
		if owner != nil {
			if id, ok := owner(b.config); ok {
				chosen = byID[id]
			}
		}
		if chosen == nil {
			for _, s := range slots {
				if chosen == nil || s.load < chosen.load ||
					(s.load == chosen.load && s.id < chosen.id) {
					chosen = s
				}
			}
		}
		if chosen == nil {
			return nil
		}
		chosen.add(b.points)
		for _, sh := range shards {
			if sh.Key.Config == b.config {
				assigned[sh.Key] = chosen.id
			}
		}
	}
	return assigned
}
