package fleet

import (
	"testing"

	"hotnoc"
	"hotnoc/server/wire"
)

func labStats(scale int, decodes, cacheMisses uint64) wire.Stats {
	return wire.Stats{Labs: []hotnoc.LabStats{{
		Scale: scale, Decodes: decodes, CacheMisses: cacheMisses,
	}}}
}

// TestLedgerMonotonicAcrossRestart: a worker whose counters regress —
// the restart signature — keeps its previous incarnation's final
// snapshot banked, so the fleet totals only ever grow.
func TestLedgerMonotonicAcrossRestart(t *testing.T) {
	l := newStatsLedger()
	l.observe("http://w1", labStats(8, 100, 4))
	l.observe("http://w2", labStats(8, 50, 2))

	if tot := l.labTotals()[8]; tot.decodes != 150 || tot.cacheMisses != 6 {
		t.Fatalf("totals before restart = %+v, want 150 decodes / 6 misses", tot)
	}

	// w1 restarts: its counters start over from a smaller value. The 100
	// decodes of the dead incarnation must stay counted.
	l.observe("http://w1", labStats(8, 10, 1))
	if tot := l.labTotals()[8]; tot.decodes != 160 || tot.cacheMisses != 7 {
		t.Fatalf("totals after restart = %+v, want 160 decodes / 7 misses", tot)
	}

	// Progress within the new incarnation accumulates normally.
	l.observe("http://w1", labStats(8, 30, 1))
	if tot := l.labTotals()[8]; tot.decodes != 180 {
		t.Fatalf("totals after post-restart progress = %+v, want 180 decodes", tot)
	}

	// An unchanged snapshot (idempotent poll) adds nothing.
	l.observe("http://w1", labStats(8, 30, 1))
	if tot := l.labTotals()[8]; tot.decodes != 180 {
		t.Fatalf("totals after repeated snapshot = %+v, want 180 decodes", tot)
	}
}

// TestLedgerPerWorker: the per-worker view is sorted by URL, sums a
// worker's scales, and spans incarnations.
func TestLedgerPerWorker(t *testing.T) {
	l := newStatsLedger()
	l.observe("http://wb", labStats(8, 5, 0))
	l.observe("http://wa", wire.Stats{Labs: []hotnoc.LabStats{
		{Scale: 8, Decodes: 10},
		{Scale: 16, Decodes: 3},
	}})
	l.observe("http://wa", labStats(8, 2, 0)) // scale-8 restart; scale 16 unreported

	urls, counters := l.perWorker()
	if len(urls) != 2 || urls[0] != "http://wa" || urls[1] != "http://wb" {
		t.Fatalf("perWorker urls = %v, want sorted [wa wb]", urls)
	}
	// wa: banked 10 (scale 8, old incarnation) + 2 live + 3 (scale 16).
	if counters[0].decodes != 15 {
		t.Fatalf("wa decodes = %d, want 15", counters[0].decodes)
	}
	if counters[1].decodes != 5 {
		t.Fatalf("wb decodes = %d, want 5", counters[1].decodes)
	}
}

// TestLedgerTenantTotals: tenant counters are summed monotonically like
// lab counters, while the weight is the latest observation — it is
// configuration, not history.
func TestLedgerTenantTotals(t *testing.T) {
	l := newStatsLedger()
	l.observe("http://w1", wire.Stats{Tenants: []wire.TenantStats{
		{ID: "ci", Weight: 3, Done: 4, Rejected: 1, Points: 40},
	}})
	l.observe("http://w2", wire.Stats{Tenants: []wire.TenantStats{
		{ID: "ci", Weight: 3, Done: 2, Points: 20},
	}})
	// w1 restarts and the tenant's weight was reconfigured meanwhile.
	l.observe("http://w1", wire.Stats{Tenants: []wire.TenantStats{
		{ID: "ci", Weight: 5, Done: 1, Points: 10},
	}})

	totals, weights := l.tenantTotals()
	ci := totals["ci"]
	if ci.done != 7 || ci.rejected != 1 || ci.points != 70 {
		t.Fatalf("tenant totals = %+v, want 7 done / 1 rejected / 70 points", ci)
	}
	if weights["ci"] != 5 {
		t.Fatalf("tenant weight = %d, want the latest observation (5)", weights["ci"])
	}
}
