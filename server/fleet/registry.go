package fleet

import (
	"fmt"
	"sort"
	"time"

	"hotnoc/server/wire"
)

// Worker is one registered hotnocd daemon the coordinator may dispatch
// shards to. The identity fields are fixed at registration; the
// liveness and load fields mutate under the coordinator's mutex.
type Worker struct {
	id       string
	url      string
	capacity int

	lastSeen time.Time
	// active counts shard dispatches currently streaming from this
	// worker — the load signal the planner balances on.
	active int
	// dead marks a worker whose lease expired, that deregistered, or
	// that failed a dispatch; gone is closed at that moment so every
	// in-flight stream from it unwinds immediately instead of hanging
	// until TCP gives up.
	dead bool
	gone chan struct{}
	// timer fires lease expiry; every heartbeat resets it.
	timer *time.Timer
}

// ID returns the worker's coordinator-assigned id.
func (w *Worker) ID() string { return w.id }

// loadRatio is the worker's capacity-normalized load.
func (w *Worker) loadRatio() float64 {
	return float64(w.active) / float64(max(1, w.capacity))
}

// URL returns the worker's advertised base URL.
func (w *Worker) URL() string { return w.url }

// buildKey identifies a calibrated build — the annealing + calibration
// artifact a worker computes once per (config, scale).
type buildKey struct {
	config string
	scale  int
}

// charKey identifies a NoC characterization — computed once per
// (config, scheme, scale).
type charKey struct {
	config string
	scheme string
	scale  int
}

// register adds (or heartbeats) a worker. Registration is idempotent by
// URL: a re-POST from a live worker refreshes its lease and capacity and
// keeps its id, so the registration call doubles as the heartbeat.
// Callers hold c.mu.
func (c *Coordinator) registerLocked(url string, capacity int) *Worker {
	now := c.now()
	if w, ok := c.byURL[url]; ok && !w.dead {
		w.lastSeen = now
		if capacity > 0 {
			w.capacity = capacity
		}
		if w.timer != nil {
			w.timer.Reset(c.lease())
		}
		return w
	}
	if capacity < 1 {
		capacity = 1
	}
	c.nextID++
	w := &Worker{
		id:       fmt.Sprintf("w-%d", c.nextID),
		url:      url,
		capacity: capacity,
		lastSeen: now,
		gone:     make(chan struct{}),
	}
	id := w.id
	w.timer = time.AfterFunc(c.lease(), func() { c.expireWorker(id, "lease expired") })
	c.workers[w.id] = w
	c.byURL[url] = w
	c.live.Store(int64(len(c.workers)))
	if c.onEvent != nil {
		c.onEvent(wire.DiagWorkerJoined, w.id, w.url, "")
	}
	return w
}

// expireWorker removes a worker from the fleet: its lease lapsed, it
// deregistered, or a dispatch to it failed at the transport level. Its
// gone channel closes (unwinding in-flight streams), and every build and
// characterization claim it held is released so re-dispatched shards may
// be computed elsewhere. Idempotent.
func (c *Coordinator) expireWorker(id, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok || w.dead {
		return
	}
	w.dead = true
	w.timer.Stop()
	close(w.gone)
	delete(c.workers, id)
	c.live.Store(int64(len(c.workers)))
	if c.byURL[w.url] == w {
		delete(c.byURL, w.url)
	}
	for k, owner := range c.builds {
		if owner == id {
			delete(c.builds, k)
		}
	}
	for k, owner := range c.chars {
		if owner == id {
			delete(c.chars, k)
		}
	}
	if c.onEvent != nil {
		c.onEvent(wire.DiagWorkerLeft, id, w.url, reason)
	}
	if c.onExpire != nil {
		c.onExpire(id, reason)
	}
}

// liveLocked returns the live workers sorted by id. Callers hold c.mu.
func (c *Coordinator) liveLocked() []*Worker {
	ws := make([]*Worker, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, k int) bool { return ws[i].id < ws[k].id })
	return ws
}

// WorkerCount reports how many live workers the fleet has.
func (c *Coordinator) WorkerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Workers snapshots the live workers for introspection (GET /v1/workers
// and the coordinator's /v1/stats).
func (c *Coordinator) Workers() []wire.WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	infos := make([]wire.WorkerInfo, 0, len(c.workers))
	for _, w := range c.liveLocked() {
		claims := 0
		for _, owner := range c.chars {
			if owner == w.id {
				claims++
			}
		}
		infos = append(infos, wire.WorkerInfo{
			ID:           w.id,
			URL:          w.url,
			Capacity:     w.capacity,
			ActiveShards: w.active,
			Claims:       claims,
			LastSeenSec:  now.Sub(w.lastSeen).Seconds(),
		})
	}
	return infos
}

// acquire picks the worker a shard dispatch should stream from,
// incrementing its active count. hint names the planner's upfront
// choice, honored while that worker lives; otherwise claims make the
// choice sticky (the characterization's owner first, then the build's,
// so a re-dispatched or follow-up shard lands where the artifacts
// already are), and a fresh key goes to the least-loaded live worker.
// Whatever worker is chosen is granted the shard's build and
// characterization claims. Returns nil when the fleet has no live
// workers.
func (c *Coordinator) acquire(key ShardKey, scale int, hint string) *Worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	bk := buildKey{config: key.Config, scale: scale}
	ck := charKey{config: key.Config, scheme: key.Scheme, scale: scale}
	var w *Worker
	if hint != "" {
		w = c.workers[hint]
	}
	if w == nil {
		if owner, ok := c.chars[ck]; ok {
			w = c.workers[owner]
		}
	}
	if w == nil {
		if owner, ok := c.builds[bk]; ok {
			w = c.workers[owner]
		}
	}
	if w == nil {
		// liveLocked is sorted by id, so the first minimum wins ties
		// deterministically.
		for _, lw := range c.liveLocked() {
			if w == nil || lw.loadRatio() < w.loadRatio() {
				w = lw
			}
		}
		if w == nil {
			return nil
		}
	}
	c.builds[bk] = w.id
	c.chars[ck] = w.id
	w.active++
	return w
}

// release undoes acquire's load accounting once a shard dispatch ends.
func (c *Coordinator) release(w *Worker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.active > 0 {
		w.active--
	}
}

// assign plans the initial shard placement for one sweep and grants the
// corresponding claims, so concurrent sweeps over the same
// configurations converge on the same workers. Returns nil when the
// fleet has no live workers.
func (c *Coordinator) assign(shards []Shard, scale int) map[ShardKey]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := c.liveLocked()
	if len(live) == 0 {
		return nil
	}
	slots := make([]*slot, len(live))
	for i, w := range live {
		slots[i] = &slot{id: w.id, capacity: w.capacity, load: float64(w.active)}
	}
	assigned := plan(shards, slots, func(config string) (string, bool) {
		owner, ok := c.builds[buildKey{config: config, scale: scale}]
		return owner, ok
	})
	for _, sh := range shards {
		id := assigned[sh.Key]
		c.builds[buildKey{config: sh.Key.Config, scale: scale}] = id
		c.chars[charKey{config: sh.Key.Config, scheme: sh.Key.Scheme, scale: scale}] = id
	}
	return assigned
}
