package server

import (
	"container/heap"
	"context"
	"iter"
	"math"
	"slices"
	"time"

	"hotnoc"
	"hotnoc/server/tenant"
)

// sched is the daemon's weighted-fair job scheduler: stride scheduling
// over per-tenant FIFO queues, selected through a priority heap keyed
// by per-tenant virtual time.
//
// Every tenant owns a "pass" — its position on the shared virtual
// timeline. Dispatching one of its jobs advances the pass by 1/weight,
// so a weight-2 tenant's pass moves half as fast and it is selected
// twice as often as a weight-1 tenant when both queues are saturated;
// and because every dispatch advances the dispatching tenant's pass
// past the scheduler's virtual time, a backlogged weight-1 tenant is
// reached after at most ~weight_total/1 dispatches — no tenant starves.
// A tenant that goes idle and returns re-joins at the current virtual
// time instead of replaying its idle past, so idleness is not banked
// into a later monopoly. All tie-breaks (equal pass) resolve by tenant
// id, and per-tenant queues are strict FIFO, so dispatch order is a
// pure function of the submission sequence — the property the
// scheduler tests pin down.
//
// sched does no locking; the Server drives it under its own mutex.
type sched struct {
	tenants map[string]*tenantState
	// vtime is the scheduler's virtual time: the pass of the most
	// recently dispatched tenant at the moment it was selected (i.e.
	// the running minimum). Newly-active tenants join here.
	vtime float64
}

func newSched() *sched {
	return &sched{tenants: map[string]*tenantState{}}
}

// tenantState is one tenant's scheduling and accounting state. The
// identity fields are fixed at creation; everything else mutates under
// the server's mutex.
type tenantState struct {
	id     string
	weight int
	limits tenant.Limits

	pass  float64
	queue []*queuedJob

	// running counts this tenant's dispatched-but-not-terminal jobs,
	// bounded by limits.MaxRunning.
	running int

	// Submit-rate token bucket (limits.RatePerSec / limits.Burst).
	tokens   float64
	lastFill time.Time

	// Accounting surfaced per tenant on /v1/stats.
	done     int
	failed   int
	canceled int
	rejected int   // 429s: over-rate or over-queue submissions
	points   int64 // cumulative outcomes evaluated
}

// sweepFn is the execution backend a dispatched job runs its grid on:
// Lab.SweepWithProgress on a plain daemon, Coordinator.Sweep on a fleet
// coordinator. Both stream outcomes in point order, so the job
// machinery — event log, SSE replay, accounting — is identical either
// way.
type sweepFn func(ctx context.Context, pts []hotnoc.SweepPoint, progress func(hotnoc.Event)) iter.Seq2[hotnoc.SweepOutcome, error]

// queuedJob is one admitted job waiting for dispatch, carrying
// everything runJob needs the moment a slot frees.
type queuedJob struct {
	j     *job
	sweep sweepFn
	pts   []hotnoc.SweepPoint
}

// state returns t's scheduling state, creating it at the current
// virtual time on first contact.
func (sc *sched) state(t *tenant.Tenant) *tenantState {
	ts, ok := sc.tenants[t.ID]
	if !ok {
		ts = &tenantState{
			id:     t.ID,
			weight: max(1, t.Weight),
			limits: t.Limits,
			pass:   sc.vtime,
		}
		sc.tenants[t.ID] = ts
	}
	return ts
}

// enqueue appends qj to ts's FIFO. A tenant whose queue was empty
// re-joins the virtual timeline at the current virtual time.
func (sc *sched) enqueue(ts *tenantState, qj *queuedJob) {
	if len(ts.queue) == 0 {
		ts.pass = math.Max(ts.pass, sc.vtime)
	}
	ts.queue = append(ts.queue, qj)
}

// eligible reports whether ts has a queued job that its running-job
// quota permits dispatching.
func (ts *tenantState) eligible() bool {
	return len(ts.queue) > 0 && (ts.limits.MaxRunning <= 0 || ts.running < ts.limits.MaxRunning)
}

// dispatched pairs a popped job with the tenant it was charged to.
type dispatched struct {
	ts *tenantState
	qj *queuedJob
}

// dispatch pops up to slots jobs in weighted-fair order, marking each
// job's tenant as running one more. slots < 0 means no global bound —
// dispatch everything eligible.
func (sc *sched) dispatch(slots int) []dispatched {
	h := make(tenantHeap, 0, len(sc.tenants))
	for _, ts := range sc.tenants {
		if ts.eligible() {
			h = append(h, ts)
		}
	}
	heap.Init(&h)
	var out []dispatched
	for (slots < 0 || len(out) < slots) && h.Len() > 0 {
		ts := heap.Pop(&h).(*tenantState)
		qj := ts.queue[0]
		ts.queue[0] = nil
		ts.queue = ts.queue[1:]
		sc.vtime = ts.pass
		ts.pass += 1 / float64(ts.weight)
		ts.running++
		out = append(out, dispatched{ts: ts, qj: qj})
		if ts.eligible() {
			heap.Push(&h, ts)
		}
	}
	return out
}

// removeQueued withdraws the queued job with the given id from ts's
// FIFO (a cancellation before dispatch). ok=false means the job is not
// queued — already dispatched or never this tenant's.
func (sc *sched) removeQueued(ts *tenantState, id string) (*queuedJob, bool) {
	for i, qj := range ts.queue {
		if qj.j.id == id {
			ts.queue = slices.Delete(ts.queue, i, i+1)
			return qj, true
		}
	}
	return nil, false
}

// queuedBefore counts queued jobs across every tenant admitted before
// seq — the submission-order queue position surfaced on job info. The
// weighted-fair dispatcher may reorder across tenants, so this is a
// position estimate, not a contract.
func (sc *sched) queuedBefore(seq int) int {
	n := 0
	for _, ts := range sc.tenants {
		for _, qj := range ts.queue {
			if qj.j.seq < seq {
				n++
			}
		}
	}
	return n
}

// takeToken draws one submit token from ts's rate bucket, refilled at
// limits.RatePerSec up to limits.Burst. A dry bucket reports the whole
// seconds until the next token accrues — the 429's Retry-After.
func (ts *tenantState) takeToken(now time.Time) (ok bool, retryAfter int) {
	rate := ts.limits.RatePerSec
	if rate <= 0 {
		return true, 0
	}
	burst := float64(ts.limits.Burst)
	if burst < 1 {
		burst = 1
	}
	if ts.lastFill.IsZero() {
		ts.tokens = burst
	} else {
		ts.tokens = math.Min(burst, ts.tokens+now.Sub(ts.lastFill).Seconds()*rate)
	}
	ts.lastFill = now
	if ts.tokens >= 1 {
		ts.tokens--
		return true, 0
	}
	return false, int(math.Ceil((1 - ts.tokens) / rate))
}

// tenantHeap orders tenants by (pass, id): the least virtual time
// dispatches first, ties resolved by id so selection is a total order
// and therefore deterministic.
type tenantHeap []*tenantState

func (h tenantHeap) Len() int { return len(h) }
func (h tenantHeap) Less(i, k int) bool {
	if h[i].pass != h[k].pass {
		return h[i].pass < h[k].pass
	}
	return h[i].id < h[k].id
}
func (h tenantHeap) Swap(i, k int) { h[i], h[k] = h[k], h[i] }
func (h *tenantHeap) Push(x any)   { *h = append(*h, x.(*tenantState)) }
func (h *tenantHeap) Pop() any {
	old := *h
	n := len(old)
	ts := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ts
}
