package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hotnoc"
	"hotnoc/client"
	"hotnoc/server/fleet"
	"hotnoc/server/tenant"
	"hotnoc/server/wire"
)

// startFleet runs a coordinator daemon with n plain worker daemons
// registered. The hour-long lease keeps the timer out of the way;
// worker-loss tests exercise expiry through broken transports instead.
func startFleet(t *testing.T, n int) (*fleet.Coordinator, string, []*httptest.Server) {
	t.Helper()
	co := fleet.NewCoordinator(fleet.Config{Lease: time.Hour})
	_, coordURL := testServer(t, Config{Fleet: co})
	workers := make([]*httptest.Server, n)
	for i := range workers {
		ws := httptest.NewServer(New(Config{}))
		t.Cleanup(ws.Close)
		co.Register(ws.URL, 1)
		workers[i] = ws
	}
	return co, coordURL, workers
}

// runToCompletion submits pts to the daemon at url and waits for the
// job's terminal state, returning its id.
func runToCompletion(t *testing.T, url string, pts []hotnoc.SweepPoint) string {
	t.Helper()
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()
	id, err := c.StartSweep(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Minute)
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		switch info.State {
		case wire.JobDone:
			return id
		case wire.JobFailed, wire.JobCanceled:
			t.Fatalf("job %s ended %s: %s", id, info.State, info.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 3m", id, info.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// outcomeData replays a finished job's event stream and returns the raw
// data payload of every outcome event — the exact bytes clients decode,
// so comparing two jobs' slices asserts byte-identical streams.
func outcomeData(t *testing.T, base, id string) []string {
	t.Helper()
	resp, err := http.Get(base + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var data []string
	var event string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if event == wire.EventOutcome {
				data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:")))
			}
		case line == "":
			switch event {
			case wire.EventDone:
				return data
			case wire.EventError:
				t.Fatalf("job %s stream ended with an error event", id)
			}
		}
	}
	t.Fatalf("job %s: stream ended without a terminal event", id)
	return nil
}

// TestFleetByteParityAndExactlyOnce is the tentpole acceptance
// criterion: a mixed periodic+reactive grid submitted to a two-worker
// fleet streams an outcome sequence byte-identical to the same grid on
// a single plain daemon, and the fleet-wide counters show every
// characterization and build computed exactly once.
func TestFleetByteParityAndExactlyOnce(t *testing.T) {
	_, coordURL, _ := startFleet(t, 2)
	_, directURL := testServer(t, Config{})
	pts := append(testGrid(), mixedTestGrid()...)

	fleetJob := runToCompletion(t, coordURL, pts)
	directJob := runToCompletion(t, directURL, pts)

	fl := outcomeData(t, coordURL, fleetJob)
	dl := outcomeData(t, directURL, directJob)
	if len(fl) != len(pts) || len(dl) != len(pts) {
		t.Fatalf("fleet streamed %d and direct %d outcomes, want %d", len(fl), len(dl), len(pts))
	}
	for i := range fl {
		if fl[i] != dl[i] {
			t.Fatalf("outcome %d differs between fleet and single daemon:\nfleet  %s\ndirect %s", i, fl[i], dl[i])
		}
	}

	// Exactly-once artifacts, asserted through the aggregated stats: the
	// grid spans 2 configs x 2 schemes, so the whole fleet must record
	// exactly 4 characterization misses and 2 build misses — each
	// computed by one worker, never repeated on another.
	st, err := client.New(coordURL).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var charMisses, buildMisses uint64
	for _, ls := range st.Labs {
		charMisses += ls.CacheMisses
		buildMisses += ls.BuildMisses
	}
	if charMisses != 4 || buildMisses != 2 {
		t.Fatalf("fleet-wide misses: %d characterizations, %d builds (labs %+v); want exactly 4 and 2",
			charMisses, buildMisses, st.Labs)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("coordinator stats list %d workers, want 2", len(st.Workers))
	}
}

// TestFleetWorkerLossMidSweep kills a worker once the merged stream has
// produced its first outcome and asserts the sweep still completes:
// every point exactly once, in order, byte-identical to a single-daemon
// run — and a follow-up sweep survives the dead worker's stale claims.
func TestFleetWorkerLossMidSweep(t *testing.T) {
	co, coordURL, workers := startFleet(t, 2)
	_, directURL := testServer(t, Config{})
	// Config A is one cheap point; config E is a 5-point bundle with two
	// characterizations. The planner puts the big E bundle on w-1
	// (workers[0]) and A on w-2, so A's outcome arrives first — while E
	// is still mid-shard on the worker we are about to kill.
	pts := []hotnoc.SweepPoint{
		hotnoc.PeriodicPoint("A", hotnoc.XYShift(), 1),
		hotnoc.PeriodicPoint("E", hotnoc.XYShift(), 1),
		hotnoc.PeriodicPoint("E", hotnoc.XYShift(), 2),
		hotnoc.PeriodicPoint("E", hotnoc.XYShift(), 4),
		hotnoc.PeriodicPoint("E", hotnoc.Rot(), 1),
		hotnoc.PeriodicPoint("E", hotnoc.Rot(), 4),
	}

	ctx := context.Background()
	c := client.New(coordURL, client.WithScale(testScale))
	id, err := c.StartSweep(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(coordURL + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var data []string
	var event string
	killed, done := false, false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() && !done {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			switch event {
			case wire.EventOutcome:
				data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:")))
				if !killed {
					killed = true
					// Hard-kill the E-shard worker: its SSE streams cut
					// mid-flight, future dials are refused.
					workers[0].CloseClientConnections()
					workers[0].Close()
				}
			case wire.EventError:
				t.Fatalf("sweep failed after worker loss: %s", strings.TrimPrefix(line, "data:"))
			}
		case line == "":
			done = event == wire.EventDone
		}
	}
	if !done {
		t.Fatalf("stream ended without a done event (%d outcomes, scanner err %v)", len(data), sc.Err())
	}

	// Complete, in order, duplicate-free: indices must be exactly 0..n-1.
	if len(data) != len(pts) {
		t.Fatalf("merged stream carried %d outcomes, want %d", len(data), len(pts))
	}
	for i, d := range data {
		var m wire.OutcomeMsg
		if err := json.Unmarshal([]byte(d), &m); err != nil {
			t.Fatalf("outcome %d: %v", i, err)
		}
		if m.Index != i {
			t.Fatalf("outcome at stream position %d carries index %d", i, m.Index)
		}
	}

	// And byte-identical to a single-daemon run despite the re-dispatch.
	directJob := runToCompletion(t, directURL, pts)
	dl := outcomeData(t, directURL, directJob)
	for i := range data {
		if data[i] != dl[i] {
			t.Fatalf("outcome %d differs after worker loss:\nfleet  %s\ndirect %s", i, data[i], dl[i])
		}
	}

	// The dead worker may still hold claims if its shard finished before
	// the kill. A follow-up sweep must shake those out: the dispatch to
	// the closed worker fails, expires it, and lands on the survivor.
	runToCompletion(t, coordURL, pts)
	if n := co.WorkerCount(); n != 1 {
		t.Fatalf("fleet still counts %d workers after killing one, want 1", n)
	}
}

// TestFleetNoWorkers: a sweep submitted to a coordinator with no live
// workers fails cleanly instead of hanging.
func TestFleetNoWorkers(t *testing.T) {
	co := fleet.NewCoordinator(fleet.Config{Lease: time.Hour})
	_, coordURL := testServer(t, Config{Fleet: co})
	c := client.New(coordURL, client.WithScale(testScale))
	ctx := context.Background()
	id, err := c.StartSweep(ctx, testGrid()[:1])
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == wire.JobFailed {
			if !strings.Contains(info.Error, "no live workers") {
				t.Fatalf("job failed with %q, want the no-live-workers error", info.Error)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job on an empty fleet still %s", info.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFleetWorkerRoutesAndSecret covers the /v1/workers surface: the
// fleet secret gates registration and deregistration (while tenant auth
// is bypassed for those), GET stays a tenant route, and a plain daemon
// has no worker surface at all.
func TestFleetWorkerRoutesAndSecret(t *testing.T) {
	co := fleet.NewCoordinator(fleet.Config{Lease: time.Hour, Secret: "swordfish"})
	_, coordURL := testServer(t, Config{
		Fleet:   co,
		Tenants: testRegistry(t, []*tenant.Tenant{keyed("alice", 1, tenant.Limits{})}, nil),
	})
	ctx := context.Background()

	// No secret: 401 from the fleet gate, not the tenant layer.
	resp, err := http.Post(coordURL+"/v1/workers", "application/json", strings.NewReader(`{"url":"http://127.0.0.1:1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("registration without the fleet secret: %d, want 401", resp.StatusCode)
	}

	// The secret (not a tenant key) admits registration.
	wc := client.New(coordURL, client.WithAPIKey("swordfish"))
	lease, err := wc.RegisterWorker(ctx, wire.WorkerRegistration{URL: "http://127.0.0.1:1/", Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if lease.ID != "w-1" || lease.LeaseSec != 3600 {
		t.Fatalf("lease = %+v, want w-1 with a 3600s lease", lease)
	}
	if _, err := wc.RegisterWorker(ctx, wire.WorkerRegistration{URL: "not-a-url"}); err == nil {
		t.Fatal("relative worker URL accepted")
	}

	// GET /v1/workers is tenant-authenticated: anonymous is 401, a
	// tenant key lists the fleet (with the trailing slash normalized).
	if _, err := client.New(coordURL).Workers(ctx); err == nil {
		t.Fatal("unauthenticated GET /v1/workers succeeded against a keyed registry")
	}
	ws, err := client.New(coordURL, client.WithAPIKey("key-alice")).Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 || ws[0].URL != "http://127.0.0.1:1" || ws[0].Capacity != 2 {
		t.Fatalf("workers = %+v, want the registered worker with its URL trimmed", ws)
	}

	// Deregistration needs the secret too.
	if err := client.New(coordURL, client.WithAPIKey("bogus")).DeregisterWorker(ctx, lease.ID); err == nil {
		t.Fatal("deregistration with a wrong secret succeeded")
	}
	if err := wc.DeregisterWorker(ctx, lease.ID); err != nil {
		t.Fatal(err)
	}
	if co.WorkerCount() != 0 {
		t.Fatal("worker still registered after deregistration")
	}

	// A plain daemon has no fleet: the whole surface is 404.
	_, plainURL := testServer(t, Config{})
	if _, err := client.New(plainURL).Workers(ctx); err == nil || !strings.Contains(err.Error(), "not a fleet coordinator") {
		t.Fatalf("GET /v1/workers on a plain daemon: %v, want the not-a-coordinator 404", err)
	}
}

// TestSetTenantsHotReload: swapping the registry at runtime changes who
// authenticates immediately and carries new weights into live scheduler
// state — the SIGHUP path.
func TestSetTenantsHotReload(t *testing.T) {
	srv, url := testServer(t, Config{
		Tenants: testRegistry(t, []*tenant.Tenant{keyed("alice", 1, tenant.Limits{})}, nil),
	})
	ctx := context.Background()
	alice := client.New(url, client.WithScale(testScale), client.WithAPIKey("key-alice"))
	bob := client.New(url, client.WithScale(testScale), client.WithAPIKey("key-bob"))

	if _, err := alice.Jobs(ctx); err != nil {
		t.Fatalf("alice before reload: %v", err)
	}
	if _, err := bob.Jobs(ctx); err == nil {
		t.Fatal("bob authenticated before the reload that defines him")
	}
	// One sweep so the scheduler holds live state for alice at weight 1.
	if _, err := alice.SweepAll(ctx, []hotnoc.SweepPoint{hotnoc.PeriodicPoint("A", hotnoc.Rot(), 1)}); err != nil {
		t.Fatal(err)
	}

	srv.SetTenants(testRegistry(t, []*tenant.Tenant{
		keyed("alice", 3, tenant.Limits{MaxQueued: 7}),
		keyed("bob", 1, tenant.Limits{}),
	}, nil))

	if _, err := bob.Jobs(ctx); err != nil {
		t.Fatalf("bob after reload: %v", err)
	}
	st, err := alice.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ts := range st.Tenants {
		if ts.ID == "alice" {
			found = true
			if ts.Weight != 3 {
				t.Fatalf("alice's live scheduler weight = %d after reload, want 3", ts.Weight)
			}
		}
	}
	if !found {
		t.Fatal("alice missing from stats after reload")
	}

	// A registry that drops alice locks her out at once.
	srv.SetTenants(testRegistry(t, []*tenant.Tenant{keyed("bob", 1, tenant.Limits{})}, nil))
	if _, err := alice.Jobs(ctx); err == nil {
		t.Fatal("removed tenant still authenticates")
	}
}
