// Package wire defines the JSON/SSE protocol spoken between the hotnocd
// daemon (hotnoc/server) and its clients (hotnoc/client): request and
// response bodies for the REST endpoints and the event payloads of the
// sweep SSE stream.
//
// Numbers survive the wire bit for bit: encoding/json emits float64 in
// the shortest form that round-trips exactly, so outcomes streamed from a
// daemon are bitwise identical to outcomes computed in process — the
// property the figure1 CLI's -server mode relies on for byte-identical
// JSON output.
package wire

import (
	"fmt"
	"time"

	"hotnoc"
	"hotnoc/internal/chipcfg"
	"hotnoc/internal/core"
	"hotnoc/internal/sim"
)

// SSE event names on GET /v1/sweeps/{id}/events. A stream is a replayed
// prefix of the job's event log followed by live events: zero or more
// progress/outcome events, terminated by exactly one error or done event.
const (
	// EventProgress carries an EventMsg: a build/characterize/evaluate
	// pipeline notification attributed to this job.
	EventProgress = "progress"
	// EventOutcome carries an OutcomeMsg. Outcomes arrive in point order:
	// Index increments from 0 to the grid size minus one.
	EventOutcome = "outcome"
	// EventError carries an ErrorMsg and terminates the stream; the job
	// failed or was canceled.
	EventError = "error"
	// EventDone carries an empty object and terminates the stream; every
	// outcome was delivered.
	EventDone = "done"
	// EventState carries a StateMsg: a job lifecycle transition
	// (admitted to the queue, dispatched to run) attributed to the
	// job's tenant. Clients that only care about outcomes may ignore
	// these events.
	EventState = "state"
)

// Job states reported by JobInfo. A job is admitted in the queued
// state and dispatched to running by the weighted-fair scheduler as
// job slots free up.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// StateMsg is one job lifecycle transition, streamed as an EventState.
type StateMsg struct {
	State string `json:"state"`
	// Tenant is the tenant the job is charged to.
	Tenant string `json:"tenant,omitempty"`
}

// SweepRequest is the body of POST /v1/sweeps.
type SweepRequest struct {
	// Scale divides the workload size (0 means the server default of 1 =
	// paper scale). The daemon keeps one Lab per scale, so every job at
	// one scale shares one build cache and one characterization cache.
	Scale int `json:"scale,omitempty"`
	// Points is the experiment grid, evaluated and streamed in order.
	Points []PointSpec `json:"points"`
}

// SweepCreated is the response of POST /v1/sweeps.
type SweepCreated struct {
	// ID names the job for the events, jobs and delete endpoints.
	ID string `json:"id"`
	// Points echoes the grid size.
	Points int `json:"points"`
	// Tenant is the tenant the job was charged to.
	Tenant string `json:"tenant,omitempty"`
	// State is the job's admission state: "running" when a slot was
	// free, "queued" when it waits for the weighted-fair scheduler.
	State string `json:"state,omitempty"`
	// QueuePos is the job's submission-order position among queued
	// jobs (1 = next in line), when queued. The scheduler may reorder
	// across tenants, so this is an estimate.
	QueuePos int `json:"queue_pos,omitempty"`
}

// Point kinds on the wire; an absent kind means periodic, so grids from
// pre-unification clients keep their meaning.
const (
	KindPeriodic = string(sim.KindPeriodic)
	KindReactive = string(sim.KindReactive)
)

// PointSpec is one grid cell in wire form: schemes travel by name and are
// resolved server-side, so only the paper's named schemes (and any the
// server knows) can cross the wire. Kind discriminates the experiment —
// empty or "periodic" evaluates the fixed-period policy with Blocks and
// ExcludeMigrationEnergy; "reactive" evaluates the threshold policy with
// the Reactive parameters.
type PointSpec struct {
	Config                 string        `json:"config"`
	Scheme                 string        `json:"scheme"`
	Kind                   string        `json:"kind,omitempty"`
	Blocks                 int           `json:"blocks,omitempty"`
	ExcludeMigrationEnergy bool          `json:"exclude_migration_energy,omitempty"`
	Reactive               *ReactiveSpec `json:"reactive,omitempty"`
}

// ReactiveSpec carries a reactive point's threshold-policy parameters.
// The scheme is the enclosing PointSpec's; zero fields take the
// server-side defaults of core.ReactiveConfig, so defaults applied on the
// daemon match defaults applied in process.
type ReactiveSpec struct {
	TriggerC     float64 `json:"trigger_c"`
	SimBlocks    int     `json:"sim_blocks,omitempty"`
	WarmupBlocks int     `json:"warmup_blocks,omitempty"`
	SensorQuantC float64 `json:"sensor_quant_c,omitempty"`
	Dt           float64 `json:"dt,omitempty"`
	// PeaksEvery downsamples the BlockPeaks timeline in the outcome
	// (see core.ReactiveConfig.PeaksEvery): 0/absent records every block
	// boundary, k>1 every k-th, negative omits the timeline — the knob
	// that keeps high-horizon remote sweeps from shipping one float per
	// block over the wire.
	PeaksEvery int `json:"peaks_every,omitempty"`
}

// FromPoint converts a grid point to wire form.
func FromPoint(p sim.Point) PointSpec {
	ps := PointSpec{
		Config:                 p.Config,
		Scheme:                 p.Scheme.Name,
		Blocks:                 p.Blocks,
		ExcludeMigrationEnergy: p.ExcludeMigrationEnergy,
	}
	if p.Reactive != nil {
		ps.Kind = KindReactive
		ps.Reactive = &ReactiveSpec{
			TriggerC:     p.Reactive.TriggerC,
			SimBlocks:    p.Reactive.SimBlocks,
			WarmupBlocks: p.Reactive.WarmupBlocks,
			SensorQuantC: p.Reactive.SensorQuantC,
			Dt:           p.Reactive.Dt,
			PeaksEvery:   p.Reactive.PeaksEvery,
		}
	}
	return ps
}

// Point resolves the spec into a runnable grid point. It fails when the
// scheme name is not one of the paper's five — a remote daemon cannot run
// a custom scheme whose step function only exists in the client process —
// or when the kind is unknown or inconsistent with the reactive payload.
func (ps PointSpec) Point() (sim.Point, error) {
	scheme, err := core.SchemeByName(ps.Scheme)
	if err != nil {
		return sim.Point{}, err
	}
	p := sim.Point{
		Config:                 ps.Config,
		Scheme:                 scheme,
		Blocks:                 ps.Blocks,
		ExcludeMigrationEnergy: ps.ExcludeMigrationEnergy,
	}
	switch ps.Kind {
	case "", KindPeriodic:
		if ps.Reactive != nil {
			return sim.Point{}, fmt.Errorf("periodic point carries reactive parameters")
		}
	case KindReactive:
		if ps.Reactive == nil {
			return sim.Point{}, fmt.Errorf("reactive point carries no reactive parameters")
		}
		p.Reactive = &core.ReactiveConfig{
			Scheme:       scheme,
			TriggerC:     ps.Reactive.TriggerC,
			SimBlocks:    ps.Reactive.SimBlocks,
			WarmupBlocks: ps.Reactive.WarmupBlocks,
			SensorQuantC: ps.Reactive.SensorQuantC,
			Dt:           ps.Reactive.Dt,
			PeaksEvery:   ps.Reactive.PeaksEvery,
		}
	default:
		return sim.Point{}, fmt.Errorf("unknown point kind %q", ps.Kind)
	}
	return p, nil
}

// BuiltInfo is the metadata slice of a calibrated build that crosses the
// wire with each outcome: enough for every consumer of sweep results
// (figure tables, heat-map dimensions, period conversion) without
// shipping the multi-megabyte simulation state itself.
type BuiltInfo struct {
	Config      string  `json:"config"`
	GridW       int     `json:"grid_w"`
	GridH       int     `json:"grid_h"`
	EnergyScale float64 `json:"energy_scale"`
	StaticPeakC float64 `json:"static_peak_c"`
	BlockCycles int64   `json:"block_cycles"`
	ClockHz     float64 `json:"clock_hz"`
}

// FromBuilt extracts the wire metadata from a calibrated build.
func FromBuilt(config string, b *chipcfg.Built) BuiltInfo {
	return BuiltInfo{
		Config:      config,
		GridW:       b.System.Grid.W,
		GridH:       b.System.Grid.H,
		EnergyScale: b.EnergyScale,
		StaticPeakC: b.StaticPeakC,
		BlockCycles: b.BlockCycles,
		ClockHz:     b.System.ClockHz,
	}
}

// OutcomeMsg is one evaluated grid point, streamed as an EventOutcome.
// Exactly one result arm is populated, matching the point's kind: Result
// for periodic points (omitted — all-zero — on reactive ones), Reactive
// for reactive points. Both arms are plain float64 data, so an outcome
// round-trips the wire bit for bit.
type OutcomeMsg struct {
	// Index is the point's position in the requested grid; outcomes
	// stream with Index strictly incrementing from 0.
	Index    int                  `json:"index"`
	Point    PointSpec            `json:"point"`
	Built    BuiltInfo            `json:"built"`
	Result   core.RunResult       `json:"result,omitzero"`
	Reactive *core.ReactiveResult `json:"reactive,omitempty"`
}

// FromOutcome converts one sweep outcome to wire form.
func FromOutcome(index int, o sim.Outcome) OutcomeMsg {
	return OutcomeMsg{
		Index:    index,
		Point:    FromPoint(o.Point),
		Built:    FromBuilt(o.Point.Config, o.Built),
		Result:   o.Result,
		Reactive: o.Reactive,
	}
}

// EventMsg is one pipeline progress notification, streamed as an
// EventProgress. It mirrors sim.Event field for field.
type EventMsg struct {
	Stage    string `json:"stage"`
	Config   string `json:"config,omitempty"`
	Scale    int    `json:"scale,omitempty"`
	Scheme   string `json:"scheme,omitempty"`
	Point    int    `json:"point"`
	Blocks   int    `json:"blocks,omitempty"`
	Kind     string `json:"kind,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
}

// FromEvent converts a pipeline event to wire form.
func FromEvent(ev sim.Event) EventMsg {
	return EventMsg{
		Stage:    string(ev.Stage),
		Config:   ev.Config,
		Scale:    ev.Scale,
		Scheme:   ev.Scheme,
		Point:    ev.Point,
		Blocks:   ev.Blocks,
		Kind:     ev.Kind,
		CacheHit: ev.CacheHit,
	}
}

// Event converts the wire form back to a pipeline event.
func (m EventMsg) Event() sim.Event {
	return sim.Event{
		Stage:    sim.Stage(m.Stage),
		Config:   m.Config,
		Scale:    m.Scale,
		Scheme:   m.Scheme,
		Point:    m.Point,
		Blocks:   m.Blocks,
		Kind:     m.Kind,
		CacheHit: m.CacheHit,
	}
}

// JobInfo describes one sweep job, as returned by GET /v1/jobs and
// DELETE /v1/jobs/{id}.
type JobInfo struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Tenant is the tenant the job is charged to.
	Tenant string `json:"tenant,omitempty"`
	Scale  int    `json:"scale"`
	// Points is the grid size; Done counts outcomes delivered so far.
	// The wire names are points_total/points_done so a progress consumer
	// cannot mistake the pair for the submission's "points" grid field.
	Points int `json:"points_total"`
	Done   int `json:"points_done"`
	// Stage is the pipeline stage the job most recently advanced through
	// ("build", "characterize", "evaluate"); present only while running.
	Stage     string    `json:"stage,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	// StartedAt is when the scheduler dispatched the job; zero
	// (omitted) while it is still queued.
	StartedAt time.Time `json:"started_at,omitzero"`
	// FinishedAt is when the job reached a terminal state; zero (omitted)
	// while running. Retention (see Config.RetainFor) measures from it.
	FinishedAt time.Time `json:"finished_at,omitzero"`
	// QueuePos is the job's submission-order position among queued
	// jobs (1 = next in line), present only while queued. The
	// weighted-fair scheduler may reorder across tenants, so this is
	// an estimate.
	QueuePos int `json:"queue_pos,omitempty"`
	// EtaSec is a rough seconds-to-completion estimate. Queued jobs
	// derive it from the mean duration of completed jobs (omitted while
	// the daemon has no history); running jobs extrapolate from their
	// own pace, elapsed/done × remaining, once at least one point is
	// done.
	EtaSec float64 `json:"eta_sec,omitempty"`
	// Error holds the failure message for failed or canceled jobs.
	Error string `json:"error,omitempty"`
}

// JobList is the response of GET /v1/jobs, ordered by job creation.
type JobList struct {
	Jobs []JobInfo `json:"jobs"`
}

// JobCounts aggregates jobs by state.
type JobCounts struct {
	Total    int `json:"total"`
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
}

// TenantStats is one tenant's accounting on GET /v1/stats: live
// queue/slot occupancy, terminal-state counts since daemon start,
// admission rejections (429s) and cumulative evaluated points.
type TenantStats struct {
	ID       string `json:"id"`
	Weight   int    `json:"weight"`
	Running  int    `json:"running"`
	Queued   int    `json:"queued"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Canceled int    `json:"canceled"`
	// Rejected counts submissions refused with 429: over the tenant's
	// submit rate or its queued-job bound.
	Rejected int `json:"rejected"`
	// Points is the cumulative number of grid points evaluated for
	// this tenant.
	Points int64 `json:"points"`
}

// Limits echoes the daemon's admission and retention configuration, so
// clients can see why a sweep was rejected with 429 or where a finished
// job went. Zero fields mean "unbounded".
type Limits struct {
	// MaxJobs bounds concurrently running sweeps; at the bound, new
	// submissions queue and the weighted-fair scheduler dispatches
	// them as slots free up.
	MaxJobs int `json:"max_jobs,omitempty"`
	// AuthRequired reports that the daemon was started with a tenants
	// file and unauthenticated requests are rejected (unless it also
	// allows the anonymous tenant).
	AuthRequired bool `json:"auth_required,omitempty"`
	// RetainJobs caps how many finished jobs (and their event logs) the
	// daemon keeps; the oldest-finished are forgotten first.
	RetainJobs int `json:"retain_jobs,omitempty"`
	// RetainForSec is the finished-job TTL in seconds.
	RetainForSec float64 `json:"retain_for_sec,omitempty"`
}

// Stats is the response of GET /v1/stats: job counts plus one LabStats
// snapshot (decode counter, characterization cache hits/misses, worker
// utilization) per Lab the daemon has instantiated, ordered by scale,
// per-tenant accounting ordered by tenant id, plus the daemon's
// admission/retention limits.
// On a fleet coordinator, Labs holds the per-scale counters summed
// across every reachable worker, Tenants additionally folds in the
// workers' own tables (summed by tenant id), and Workers lists the live
// fleet membership.
type Stats struct {
	Jobs    JobCounts         `json:"jobs"`
	Labs    []hotnoc.LabStats `json:"labs"`
	Tenants []TenantStats     `json:"tenants,omitempty"`
	Workers []WorkerInfo      `json:"workers,omitempty"`
	Limits  Limits            `json:"limits,omitzero"`
}

// WorkerRegistration is the body of POST /v1/workers: a worker daemon
// joining a coordinator's fleet, or heartbeating its lease (the call is
// idempotent by URL, so workers simply re-POST it periodically).
type WorkerRegistration struct {
	// URL is the worker's advertised base URL — how the coordinator
	// dispatches shards to it. Must be absolute.
	URL string `json:"url"`
	// Capacity is the worker's sweep-pool size, the weight the
	// coordinator's placement balances load against. Zero means 1.
	Capacity int `json:"capacity,omitempty"`
}

// WorkerLease is the coordinator's answer to a registration: the
// worker's fleet id and how long the registration stays live without
// another heartbeat. Workers should re-register every LeaseSec/3.
type WorkerLease struct {
	ID       string  `json:"id"`
	LeaseSec float64 `json:"lease_sec"`
}

// WorkerInfo describes one live fleet worker, on GET /v1/workers and on
// the coordinator's /v1/stats.
type WorkerInfo struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Capacity int    `json:"capacity"`
	// ActiveShards counts shard dispatches currently streaming from the
	// worker.
	ActiveShards int `json:"active_shards"`
	// Claims counts the (config, scheme, scale) characterization claims
	// the worker holds — the artifact keys the coordinator will keep
	// routing to it.
	Claims int `json:"claims"`
	// LastSeenSec is how long ago the worker last heartbeat.
	LastSeenSec float64 `json:"last_seen_sec"`
}

// WorkerList is the response of GET /v1/workers.
type WorkerList struct {
	Workers []WorkerInfo `json:"workers"`
}

// Diagnostics event types on GET /v1/events, the daemon-wide lifecycle
// stream. Job events carry the owning tenant and are delivered only to
// that tenant's subscribers; infrastructure events (workers, leases)
// are delivered to every subscriber.
const (
	// DiagJobSubmitted: a sweep was accepted (it may start running
	// immediately or queue).
	DiagJobSubmitted = "job-submitted"
	// DiagJobQueued: admission found no free slot; the job waits for
	// the weighted-fair scheduler.
	DiagJobQueued = "job-queued"
	// DiagJobDispatched: the scheduler moved the job into a run slot.
	DiagJobDispatched = "job-dispatched"
	// DiagJobFinished: the job reached a terminal state (see State).
	DiagJobFinished = "job-finished"
	// DiagTenantThrottled: a submission was refused with 429 (rate or
	// queue bound).
	DiagTenantThrottled = "tenant-throttled"
	// DiagWorkerJoined / DiagWorkerLeft: fleet membership changes on a
	// coordinator. Reason distinguishes a deregistration from a lease
	// expiry or a dispatch failure.
	DiagWorkerJoined = "worker-joined"
	DiagWorkerLeft   = "worker-left"
)

// DiagEvent is one structured lifecycle event on the GET /v1/events SSE
// diagnostics stream. Seq increments per daemon and orders the stream;
// it doubles as the SSE event id, so a reconnecting consumer can resume
// with Last-Event-ID (or ?since=) and skip the replayed prefix.
type DiagEvent struct {
	Seq  int64     `json:"seq"`
	Time time.Time `json:"time"`
	Type string    `json:"type"`
	// Tenant scopes job events to their owner; empty on infrastructure
	// events, which every subscriber sees.
	Tenant string `json:"tenant,omitempty"`
	// Job fields, on job-* and tenant-throttled events.
	Job    string `json:"job,omitempty"`
	State  string `json:"state,omitempty"`
	Points int    `json:"points,omitempty"`
	// Worker fields, on worker-* events from a coordinator.
	Worker string `json:"worker,omitempty"`
	URL    string `json:"url,omitempty"`
	// Reason carries detail: why a tenant was throttled, why a worker
	// left, how a job ended.
	Reason string `json:"reason,omitempty"`
}

// ErrorMsg is the body of every non-2xx response and of EventError
// stream events.
type ErrorMsg struct {
	Error string `json:"error"`
}

func (e ErrorMsg) Err() error { return fmt.Errorf("hotnocd: %s", e.Error) }
