package wire

import (
	"encoding/json"
	"strings"
	"testing"

	"hotnoc/internal/core"
	"hotnoc/internal/sim"
)

// TestPointSpecRoundTrip: both point kinds survive wire form and JSON
// intact — kind, scheme name, and every policy parameter.
func TestPointSpecRoundTrip(t *testing.T) {
	pts := []sim.Point{
		sim.Periodic("A", core.XYShift(), 4),
		{Config: "E", Scheme: core.Rot(), Blocks: 1, ExcludeMigrationEnergy: true},
		sim.Reactive("B", core.ReactiveConfig{
			Scheme: core.Rot(), TriggerC: 83.5, SimBlocks: 300, WarmupBlocks: 150,
			SensorQuantC: 0.5, Dt: 1e-5, PeaksEvery: 16,
		}),
		// Negative PeaksEvery (timeline opt-out) is a meaningful non-zero
		// value and must survive omitempty.
		sim.Reactive("C", core.ReactiveConfig{
			Scheme: core.XYShift(), TriggerC: 80, PeaksEvery: -1,
		}),
	}
	for i, p := range pts {
		spec := FromPoint(p)
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var back PointSpec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		got, err := back.Point()
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		if got.Config != p.Config || got.Scheme.Name != p.Scheme.Name ||
			got.Blocks != p.Blocks || got.ExcludeMigrationEnergy != p.ExcludeMigrationEnergy ||
			got.Kind() != p.Kind() {
			t.Fatalf("point %d did not round-trip: got %+v, want %+v", i, got, p)
		}
		if p.Kind() == sim.KindReactive {
			w, g := *p.Reactive, *got.Reactive
			if g.TriggerC != w.TriggerC || g.SimBlocks != w.SimBlocks ||
				g.WarmupBlocks != w.WarmupBlocks || g.SensorQuantC != w.SensorQuantC ||
				g.Dt != w.Dt || g.PeaksEvery != w.PeaksEvery {
				t.Fatalf("point %d reactive parameters did not round-trip: got %+v, want %+v", i, g, w)
			}
			if g.Scheme.Name != p.Scheme.Name || g.Scheme.StepFn == nil {
				t.Fatalf("point %d reactive scheme not resolved server-side", i)
			}
		}
	}
}

// TestPointSpecRejectsMalformedKinds: inconsistent kind/payload pairs and
// unknown kinds fail to resolve instead of silently running the wrong
// experiment.
func TestPointSpecRejectsMalformedKinds(t *testing.T) {
	cases := []struct {
		name string
		spec PointSpec
		want string
	}{
		{"unknown kind", PointSpec{Config: "A", Scheme: "Rot", Kind: "quantum"}, "unknown point kind"},
		{"reactive without params", PointSpec{Config: "A", Scheme: "Rot", Kind: KindReactive}, "no reactive parameters"},
		{"periodic with params", PointSpec{Config: "A", Scheme: "Rot", Reactive: &ReactiveSpec{TriggerC: 80}}, "carries reactive parameters"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.Point(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("malformed spec accepted (err %v)", err)
			}
		})
	}
}

// TestOutcomeMsgArms: the wire outcome emits exactly the result arm
// matching the point's kind — a reactive outcome omits the all-zero
// periodic result, a periodic outcome carries no reactive field.
func TestOutcomeMsgArms(t *testing.T) {
	reactive := OutcomeMsg{
		Index:    0,
		Point:    PointSpec{Config: "A", Scheme: "Rot", Kind: KindReactive, Reactive: &ReactiveSpec{TriggerC: 80}},
		Reactive: &core.ReactiveResult{PeakC: 81.5, Migrations: 3},
	}
	data, err := json.Marshal(reactive)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"result"`) {
		t.Fatalf("reactive outcome carries a periodic result arm: %s", data)
	}
	periodic := OutcomeMsg{
		Index:  0,
		Point:  PointSpec{Config: "A", Scheme: "Rot"},
		Result: core.RunResult{BaselinePeakC: 85},
	}
	data, err = json.Marshal(periodic)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"result"`) || strings.Contains(string(data), `"reactive"`) {
		t.Fatalf("periodic outcome arms wrong: %s", data)
	}
}
