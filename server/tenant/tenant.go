// Package tenant is hotnocd's identity layer: who is calling the
// daemon, and what are they allowed to do.
//
// A Registry maps presented API keys to tenants. Keys live hashed
// (SHA-256) both in the registry and in the tenants file it loads from,
// so a leaked tenants file does not leak credentials, and lookups
// compare hashes in constant time so a network attacker cannot binary-
// search a key byte by byte. Each tenant carries a scheduling weight
// (its share of the daemon's job slots under weighted fair queueing)
// and admission Limits (running-job quota, queued-job bound, submit
// rate); the zero value of every limit means "unbounded", so a tenants
// file that only names ids and keys grants authenticated-but-unmetered
// access.
//
// Two registry modes keep existing deployments working:
//
//   - Open (no tenants file): every request — with or without a key —
//     maps to the anonymous tenant. This is the pre-tenancy daemon's
//     trust model, preserved byte for byte.
//   - Loaded with AllowAnonymous: requests with no credentials map to
//     the anonymous tenant, requests with a wrong key are still
//     rejected. This is the migration path: keyed tenants get their
//     weights and quotas while legacy unauthenticated clients keep
//     working behind the flag.
//
// The tenants file is JSON:
//
//	{
//	  "tenants": [
//	    {
//	      "id": "alice",
//	      "key_sha256": "9f86d08…(64 hex chars)",
//	      "weight": 2,
//	      "max_running": 4,
//	      "max_queued": 16,
//	      "rate_per_sec": 5,
//	      "burst": 10,
//	      "disabled": false
//	    }
//	  ]
//	}
//
// Omitted limit fields take the registry's defaults (hotnocd's
// -default-* flags); an explicit 0 means unbounded. "key" may be given
// in place of "key_sha256" for development — it is hashed on load and
// never retained — but production files should only ever hold hashes.
package tenant

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

// AnonymousID is the tenant id attributed to unauthenticated requests
// when the registry allows them. It is reserved: a tenants file may not
// define a tenant with this id.
const AnonymousID = "anonymous"

// Authentication failures, mapped by the server to 401 (missing or
// wrong credentials) and 403 (a known tenant that has been turned off).
var (
	ErrNoCredentials = errors.New("missing API key (Authorization: Bearer <key>)")
	ErrUnknownKey    = errors.New("unknown API key")
	ErrDisabled      = errors.New("tenant is disabled")
)

// Limits bounds one tenant's admission. Zero values mean unbounded.
type Limits struct {
	// MaxRunning caps the tenant's concurrently running jobs. At the
	// cap, new submissions queue (they are not rejected) until
	// MaxQueued binds.
	MaxRunning int
	// MaxQueued caps the tenant's queued (admitted but not yet
	// dispatched) jobs. At the cap, submissions are rejected with 429.
	MaxQueued int
	// RatePerSec is the tenant's sustained submit rate, enforced by a
	// token bucket of Burst capacity. Over-rate submissions are
	// rejected with 429 and a Retry-After telling the client when the
	// next token accrues.
	RatePerSec float64
	// Burst is the token-bucket depth for RatePerSec; values below 1
	// act as 1.
	Burst int
}

// Tenant is one identity the daemon serves.
type Tenant struct {
	// ID names the tenant in job info, stats and logs.
	ID string
	// Weight is the tenant's share under weighted fair queueing: with
	// every queue saturated, a weight-2 tenant is dispatched twice as
	// often as a weight-1 tenant. Minimum (and default) is 1.
	Weight int
	// Limits bounds the tenant's admission.
	Limits Limits
	// Disabled rejects the tenant's requests with 403 without removing
	// its entry — the off switch for key rotation or abuse.
	Disabled bool

	keyHash []byte // SHA-256 of the API key; nil only for anonymous
}

// NewTenant returns a tenant authenticating with key. The key is hashed
// immediately and not retained. Weight values below 1 act as 1.
func NewTenant(id, key string, weight int, limits Limits) *Tenant {
	sum := sha256.Sum256([]byte(key))
	return &Tenant{ID: id, Weight: weight, Limits: limits, keyHash: sum[:]}
}

// HashKey returns the hex SHA-256 of key — the value a tenants file's
// key_sha256 field holds. Generate keys with any high-entropy source
// (e.g. `openssl rand -hex 32`) and store only this hash.
func HashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Registry resolves API keys to tenants.
type Registry struct {
	list []*Tenant
	anon *Tenant // non-nil when unauthenticated requests are admitted
	open bool    // no keys configured at all: every request is anonymous
}

// Open returns the registry of a daemon running without a tenants file:
// every request, keyed or not, is the anonymous tenant with the given
// limits — the pre-tenancy trust model.
func Open(limits Limits) *Registry {
	return &Registry{anon: &Tenant{ID: AnonymousID, Weight: 1, Limits: limits}, open: true}
}

// New builds a registry from explicit tenants. A non-nil anon admits
// unauthenticated requests as that tenant. Tenant ids must be non-empty
// and unique, the anonymous id is reserved for anon, and every tenant
// must carry a key.
func New(tenants []*Tenant, anon *Tenant) (*Registry, error) {
	seen := map[string]bool{}
	for _, t := range tenants {
		switch {
		case t.ID == "":
			return nil, fmt.Errorf("tenant with an empty id")
		case t.ID == AnonymousID:
			return nil, fmt.Errorf("tenant id %q is reserved", AnonymousID)
		case seen[t.ID]:
			return nil, fmt.Errorf("duplicate tenant id %q", t.ID)
		case len(t.keyHash) == 0:
			return nil, fmt.Errorf("tenant %q has no API key", t.ID)
		}
		if t.Weight < 1 {
			t.Weight = 1
		}
		seen[t.ID] = true
	}
	return &Registry{list: tenants, anon: anon}, nil
}

// fileTenant is one tenants-file entry. Limit fields are pointers so an
// omitted field (take the default) is distinguishable from an explicit
// zero (unbounded).
type fileTenant struct {
	ID        string   `json:"id"`
	Key       string   `json:"key,omitempty"`
	KeySHA256 string   `json:"key_sha256,omitempty"`
	Weight    *int     `json:"weight,omitempty"`
	MaxRun    *int     `json:"max_running,omitempty"`
	MaxQueued *int     `json:"max_queued,omitempty"`
	Rate      *float64 `json:"rate_per_sec,omitempty"`
	Burst     *int     `json:"burst,omitempty"`
	Disabled  bool     `json:"disabled,omitempty"`
}

type tenantsFile struct {
	Tenants []fileTenant `json:"tenants"`
}

// Load reads a tenants file. Entries that omit a limit or the weight
// take the given defaults (weight 1); allowAnonymous additionally
// admits unauthenticated requests as the anonymous tenant under the
// same default limits.
func Load(path string, defaults Limits, allowAnonymous bool) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants file: %w", err)
	}
	var f tenantsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("tenants file %s: %w", path, err)
	}
	if len(f.Tenants) == 0 {
		return nil, fmt.Errorf("tenants file %s defines no tenants", path)
	}
	list := make([]*Tenant, len(f.Tenants))
	for i, ft := range f.Tenants {
		t := &Tenant{ID: ft.ID, Weight: 1, Limits: defaults, Disabled: ft.Disabled}
		switch {
		case ft.KeySHA256 != "" && ft.Key != "":
			return nil, fmt.Errorf("tenant %q: give key_sha256 or key, not both", ft.ID)
		case ft.KeySHA256 != "":
			h, err := hex.DecodeString(strings.ToLower(ft.KeySHA256))
			if err != nil || len(h) != sha256.Size {
				return nil, fmt.Errorf("tenant %q: key_sha256 is not a hex SHA-256", ft.ID)
			}
			t.keyHash = h
		case ft.Key != "":
			sum := sha256.Sum256([]byte(ft.Key))
			t.keyHash = sum[:]
		}
		if ft.Weight != nil {
			t.Weight = *ft.Weight
			if t.Weight < 1 {
				return nil, fmt.Errorf("tenant %q: weight %d (want >= 1)", ft.ID, t.Weight)
			}
		}
		if ft.MaxRun != nil {
			t.Limits.MaxRunning = *ft.MaxRun
		}
		if ft.MaxQueued != nil {
			t.Limits.MaxQueued = *ft.MaxQueued
		}
		if ft.Rate != nil {
			t.Limits.RatePerSec = *ft.Rate
		}
		if ft.Burst != nil {
			t.Limits.Burst = *ft.Burst
		}
		list[i] = t
	}
	var anon *Tenant
	if allowAnonymous {
		anon = &Tenant{ID: AnonymousID, Weight: 1, Limits: defaults}
	}
	return New(list, anon)
}

// Authenticate resolves an Authorization header value to a tenant. An
// empty or non-Bearer header is only admitted when the registry allows
// anonymous requests; a presented key must match a known tenant unless
// the registry is Open. Key comparison is constant-time per tenant, so
// response timing does not leak key bytes.
func (r *Registry) Authenticate(authorization string) (*Tenant, error) {
	key, ok := bearerKey(authorization)
	if !ok {
		if r.anon != nil {
			return r.anon, nil
		}
		return nil, ErrNoCredentials
	}
	sum := sha256.Sum256([]byte(key))
	for _, t := range r.list {
		if subtle.ConstantTimeCompare(sum[:], t.keyHash) == 1 {
			if t.Disabled {
				return nil, ErrDisabled
			}
			return t, nil
		}
	}
	if r.open {
		// No keys are configured at all; a stray Authorization header
		// (a client whose HOTNOC_API_KEY is set globally) is not a
		// reason to turn away a caller the open daemon would serve.
		return r.anon, nil
	}
	return nil, ErrUnknownKey
}

// Anonymous returns the tenant unauthenticated requests map to, or nil
// when the registry requires credentials.
func (r *Registry) Anonymous() *Tenant { return r.anon }

// AuthRequired reports whether the registry turns away unauthenticated
// requests — surfaced on /v1/stats so clients can tell how a daemon is
// deployed.
func (r *Registry) AuthRequired() bool { return r.anon == nil }

// Len reports how many keyed tenants the registry holds.
func (r *Registry) Len() int { return len(r.list) }

// All returns the registry's keyed tenants in definition order — the
// hot-reload path uses it to carry new weights and limits into live
// scheduler state. Callers must not mutate the returned tenants.
func (r *Registry) All() []*Tenant { return r.list }

// bearerKey extracts the key from "Bearer <key>" (scheme
// case-insensitive, per RFC 6750). A missing or differently-schemed
// header reports ok=false.
func bearerKey(authorization string) (key string, ok bool) {
	const scheme = "bearer "
	if len(authorization) <= len(scheme) ||
		!strings.EqualFold(authorization[:len(scheme)], scheme) {
		return "", false
	}
	key = strings.TrimSpace(authorization[len(scheme):])
	return key, key != ""
}
