package tenant

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadAndAuthenticate(t *testing.T) {
	path := writeFile(t, `{"tenants": [
		{"id": "alice", "key_sha256": "`+HashKey("alice-key")+`", "weight": 2,
		 "max_running": 4, "max_queued": 16, "rate_per_sec": 5, "burst": 10},
		{"id": "bob", "key": "bob-key"},
		{"id": "mallory", "key": "mallory-key", "disabled": true}
	]}`)
	reg, err := Load(path, Limits{MaxQueued: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 3 {
		t.Fatalf("loaded %d tenants, want 3", reg.Len())
	}

	alice, err := reg.Authenticate("Bearer alice-key")
	if err != nil {
		t.Fatal(err)
	}
	if alice.ID != "alice" || alice.Weight != 2 {
		t.Fatalf("alice resolved to %q weight %d", alice.ID, alice.Weight)
	}
	want := Limits{MaxRunning: 4, MaxQueued: 16, RatePerSec: 5, Burst: 10}
	if alice.Limits != want {
		t.Fatalf("alice limits %+v, want %+v", alice.Limits, want)
	}

	// bob's entry omits every limit and the weight: the defaults apply.
	bob, err := reg.Authenticate("bearer bob-key") // scheme is case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if bob.Weight != 1 || bob.Limits.MaxQueued != 8 || bob.Limits.MaxRunning != 0 {
		t.Fatalf("bob did not take the defaults: weight %d limits %+v", bob.Weight, bob.Limits)
	}

	if _, err := reg.Authenticate("Bearer mallory-key"); !errors.Is(err, ErrDisabled) {
		t.Fatalf("disabled tenant authenticated (err %v)", err)
	}
	if _, err := reg.Authenticate("Bearer wrong"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("wrong key accepted (err %v)", err)
	}
	if _, err := reg.Authenticate(""); !errors.Is(err, ErrNoCredentials) {
		t.Fatalf("missing credentials accepted (err %v)", err)
	}
	if _, err := reg.Authenticate("Basic abc"); !errors.Is(err, ErrNoCredentials) {
		t.Fatalf("non-Bearer scheme accepted (err %v)", err)
	}
	if reg.Anonymous() != nil {
		t.Fatal("registry without allowAnonymous still admits anonymous requests")
	}
}

func TestLoadAllowAnonymous(t *testing.T) {
	path := writeFile(t, `{"tenants": [{"id": "a", "key": "k"}]}`)
	reg, err := Load(path, Limits{MaxRunning: 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	anon, err := reg.Authenticate("")
	if err != nil {
		t.Fatal(err)
	}
	if anon.ID != AnonymousID || anon.Limits.MaxRunning != 2 {
		t.Fatalf("anonymous tenant %q limits %+v", anon.ID, anon.Limits)
	}
	// Anonymous mode admits missing credentials, not wrong ones.
	if _, err := reg.Authenticate("Bearer wrong"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("wrong key accepted in anonymous mode (err %v)", err)
	}
}

func TestOpenRegistry(t *testing.T) {
	reg := Open(Limits{})
	for _, header := range []string{"", "Bearer anything"} {
		tn, err := reg.Authenticate(header)
		if err != nil {
			t.Fatalf("open registry rejected %q: %v", header, err)
		}
		if tn.ID != AnonymousID {
			t.Fatalf("open registry resolved %q to %q", header, tn.ID)
		}
	}
}

func TestLoadRejectsBadFiles(t *testing.T) {
	for name, content := range map[string]string{
		"empty":         `{"tenants": []}`,
		"dup id":        `{"tenants": [{"id":"a","key":"x"},{"id":"a","key":"y"}]}`,
		"no id":         `{"tenants": [{"key":"x"}]}`,
		"no key":        `{"tenants": [{"id":"a"}]}`,
		"reserved id":   `{"tenants": [{"id":"anonymous","key":"x"}]}`,
		"both keys":     `{"tenants": [{"id":"a","key":"x","key_sha256":"` + HashKey("x") + `"}]}`,
		"bad hash":      `{"tenants": [{"id":"a","key_sha256":"zz"}]}`,
		"short hash":    `{"tenants": [{"id":"a","key_sha256":"abcd"}]}`,
		"zero weight":   `{"tenants": [{"id":"a","key":"x","weight":0}]}`,
		"not even json": `oops`,
	} {
		path := writeFile(t, content)
		if _, err := Load(path, Limits{}, false); err == nil {
			t.Errorf("%s: bad tenants file accepted", name)
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json"), Limits{}, false); err == nil {
		t.Error("missing tenants file accepted")
	}
}

func TestHashKeyMatchesFileFormat(t *testing.T) {
	// The documented generation path: store HashKey(key) in key_sha256
	// and the plaintext key authenticates.
	h := HashKey("s3cret")
	if len(h) != 64 || strings.ToLower(h) != h {
		t.Fatalf("HashKey emitted %q, want 64 lowercase hex chars", h)
	}
	path := writeFile(t, `{"tenants": [{"id":"a","key_sha256":"`+h+`"}]}`)
	reg, err := Load(path, Limits{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Authenticate("Bearer s3cret"); err != nil {
		t.Fatalf("hashed key did not authenticate: %v", err)
	}
}

func TestNewTenantValidation(t *testing.T) {
	if _, err := New([]*Tenant{NewTenant("", "k", 1, Limits{})}, nil); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := New([]*Tenant{{ID: "a"}}, nil); err == nil {
		t.Error("tenant without key accepted")
	}
	reg, err := New([]*Tenant{NewTenant("a", "k", 0, Limits{})}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := reg.Authenticate("Bearer k")
	if err != nil {
		t.Fatal(err)
	}
	if tn.Weight != 1 {
		t.Fatalf("weight 0 not clamped to 1 (got %d)", tn.Weight)
	}
}
