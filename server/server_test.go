package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hotnoc"
	"hotnoc/client"
	"hotnoc/server/wire"
)

// testScale matches the smoke scale the rest of the repo tests at.
const testScale = 8

func testServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts.URL
}

func testGrid() []hotnoc.SweepPoint {
	return hotnoc.SweepGrid([]string{"A", "E"}, []hotnoc.Scheme{hotnoc.XYShift(), hotnoc.Rot()}, []int{1, 4})
}

// TestConcurrentClientsShareCharacterization is the service half of the
// acceptance criterion: two concurrent remote sweeps over the same grid
// trigger exactly one NoC characterization per (config, scheme, scale) —
// the daemon's Lab singleflights them — and both clients receive
// outcomes identical to an in-process run.
func TestConcurrentClientsShareCharacterization(t *testing.T) {
	srv, url := testServer(t, Config{})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()
	pts := testGrid()

	const clients = 2
	outs := make([][]hotnoc.SweepOutcome, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = c.SweepAll(ctx, pts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	for i := 1; i < clients; i++ {
		if len(outs[i]) != len(pts) {
			t.Fatalf("client %d received %d outcomes, want %d", i, len(outs[i]), len(pts))
		}
		for j := range outs[0] {
			if !reflect.DeepEqual(outs[0][j].Result, outs[i][j].Result) {
				t.Fatalf("clients 0 and %d disagree on point %d", i, j)
			}
		}
	}

	// The same grid in process, swept once, sets the bar: the daemon's
	// decode counter must match it exactly — the concurrent second sweep
	// triggered zero extra NoC characterizations.
	local := hotnoc.NewLab(hotnoc.WithScale(testScale))
	localOuts, err := local.SweepAll(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	stats := srv.labFor(testScale).Stats()
	if stats.Decodes != local.Decodes() {
		t.Fatalf("daemon performed %d NoC decodes for %d concurrent sweeps, want %d (one characterization per config+scheme)",
			stats.Decodes, clients, local.Decodes())
	}
	// 2 configs x 2 schemes = 4 distinct characterizations, requested
	// once per client.
	if got := stats.CacheHits + stats.CacheMisses; got != clients*4 {
		t.Fatalf("%d characterization requests recorded, want %d", got, clients*4)
	}

	// And the remote outcomes match the in-process run bit for bit.
	for j := range localOuts {
		if !reflect.DeepEqual(localOuts[j].Result, outs[0][j].Result) {
			t.Fatalf("remote point %d differs from in-process run", j)
		}
	}
}

// TestSSEOrderingAndProgress: outcomes stream in point order with
// strictly incrementing indices, the metadata Built is shared per
// configuration, and progress events arrive alongside.
func TestSSEOrderingAndProgress(t *testing.T) {
	_, url := testServer(t, Config{})
	var mu sync.Mutex
	counts := map[hotnoc.SweepStage]int{}
	c := client.New(url,
		client.WithScale(testScale),
		client.WithProgress(func(ev hotnoc.Event) {
			mu.Lock()
			counts[ev.Stage]++
			mu.Unlock()
		}))

	pts := testGrid()
	i := 0
	builts := map[string]*hotnoc.Built{}
	for out, err := range c.Sweep(context.Background(), pts) {
		if err != nil {
			t.Fatal(err)
		}
		if out.Point.Config != pts[i].Config || out.Point.Scheme.Name != pts[i].Scheme.Name ||
			out.Point.Blocks != pts[i].Blocks {
			t.Fatalf("stream position %d carries %s/%s/b%d, want %s/%s/b%d", i,
				out.Point.Config, out.Point.Scheme.Name, out.Point.Blocks,
				pts[i].Config, pts[i].Scheme.Name, pts[i].Blocks)
		}
		if b, ok := builts[out.Point.Config]; ok && b != out.Built {
			t.Fatalf("outcomes of config %s do not share one Built", out.Point.Config)
		}
		builts[out.Point.Config] = out.Built
		if out.Built.StaticPeakC == 0 || out.Built.System.Grid.N() == 0 {
			t.Fatalf("outcome %d carries an empty Built summary: %+v", i, out.Built)
		}
		i++
	}
	if i != len(pts) {
		t.Fatalf("stream yielded %d outcomes, want %d", i, len(pts))
	}

	mu.Lock()
	defer mu.Unlock()
	if counts[hotnoc.StageEvaluateDone] != len(pts) {
		t.Fatalf("%d evaluate progress events, want %d", counts[hotnoc.StageEvaluateDone], len(pts))
	}
	if counts[hotnoc.StageCharacterizeDone] != 4 {
		t.Fatalf("%d characterize-done progress events, want 4", counts[hotnoc.StageCharacterizeDone])
	}
}

// TestLateSubscriberReplays: an events stream opened after the job
// finished still replays every outcome in order, terminated by a done
// event — reconnecting clients lose nothing.
func TestLateSubscriberReplays(t *testing.T) {
	_, url := testServer(t, Config{})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()
	pts := testGrid()[:2]

	id, err := c.StartSweep(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, id, wire.JobDone)

	resp, err := http.Get(url + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q, want text/event-stream", ct)
	}
	var outcomes, dones int
	lastIndex := -1
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:") && event == wire.EventOutcome:
			var m wire.OutcomeMsg
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data:")), &m); err != nil {
				t.Fatal(err)
			}
			if m.Index != lastIndex+1 {
				t.Fatalf("replayed outcome %d after %d", m.Index, lastIndex)
			}
			lastIndex = m.Index
			outcomes++
		case strings.HasPrefix(line, "data:") && event == wire.EventDone:
			dones++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if outcomes != len(pts) || dones != 1 {
		t.Fatalf("replay delivered %d outcomes and %d done events, want %d and 1",
			outcomes, dones, len(pts))
	}
}

// TestJobCancelMidSweep: DELETE on a running job cancels its context; the
// stream terminates with an error and the job lands in the canceled
// state without finishing its grid.
func TestJobCancelMidSweep(t *testing.T) {
	_, url := testServer(t, Config{})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()

	// A wide grid at a slower scale keeps the job running long enough to
	// cancel it deterministically.
	pts := hotnoc.SweepGrid([]string{"A", "B", "C", "D", "E"}, hotnoc.Schemes(), []int{1, 2, 4, 8})
	id, err := c.StartSweep(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CancelJob(ctx, id); err != nil {
		t.Fatal(err)
	}
	info := waitForTerminal(t, c, id)
	if info.State != wire.JobCanceled {
		t.Fatalf("job state %q after cancel, want %q", info.State, wire.JobCanceled)
	}
	if info.Done == len(pts) {
		t.Fatal("job delivered its whole grid despite cancellation")
	}
}

// TestGracefulShutdownDrains: Shutdown lets an in-flight job finish and
// rejects new sweeps while draining.
func TestGracefulShutdownDrains(t *testing.T) {
	srv, url := testServer(t, Config{})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()
	pts := testGrid()

	id, err := c.StartSweep(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(ctx, time.Minute)
		defer cancel()
		shutdownDone <- srv.Shutdown(sctx)
	}()

	// New sweeps must be rejected once draining has begun. Shutdown flips
	// the flag before waiting, but give the goroutine a moment to run.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.StartSweep(ctx, pts); err != nil {
			if !strings.Contains(err.Error(), "draining") {
				t.Fatalf("draining server rejected sweep with %v, want a draining error", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server kept accepting sweeps")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}
	info, err := c.Job(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != wire.JobDone || info.Done != len(pts) {
		t.Fatalf("drained job ended %q with %d/%d outcomes, want done with all",
			info.State, info.Done, len(pts))
	}
}

// TestFigure1RemoteParity: client.Figure1 marshals to byte-identical JSON
// as Lab.Figure1 at the same scale — the CLI acceptance criterion,
// without the process plumbing.
func TestFigure1RemoteParity(t *testing.T) {
	_, url := testServer(t, Config{})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()
	configs := []string{"A", "E"}

	remote, err := c.Figure1(ctx, configs)
	if err != nil {
		t.Fatal(err)
	}
	local, err := hotnoc.NewLab(hotnoc.WithScale(testScale)).Figure1(ctx, configs)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := json.Marshal(remote)
	if err != nil {
		t.Fatal(err)
	}
	lj, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}
	if string(rj) != string(lj) {
		t.Fatalf("remote Figure1 JSON differs from in-process run:\nremote %s\nlocal  %s", rj, lj)
	}
}

// TestPlacementRemoteParity: the daemon's placement report matches the
// Lab's bit for bit.
func TestPlacementRemoteParity(t *testing.T) {
	_, url := testServer(t, Config{})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()

	remote, err := c.Placement(ctx, "A")
	if err != nil {
		t.Fatal(err)
	}
	local, err := hotnoc.NewLab(hotnoc.WithScale(testScale)).Placement(ctx, "A")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remote, local) {
		t.Fatal("remote placement report differs from in-process run")
	}
}

// TestSweepValidation: malformed grids are rejected at submission, not as
// failed jobs.
func TestSweepValidation(t *testing.T) {
	_, url := testServer(t, Config{})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()

	if _, err := c.StartSweep(ctx, nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
	bad := []hotnoc.SweepPoint{{Config: "Z", Scheme: hotnoc.Rot()}}
	if _, err := c.StartSweep(ctx, bad); err == nil || !strings.Contains(err.Error(), "point 0") {
		t.Fatalf("unknown config accepted (err %v)", err)
	}
	custom := []hotnoc.SweepPoint{{Config: "A", Scheme: hotnoc.Scheme{Name: "bespoke"}}}
	if _, err := c.StartSweep(ctx, custom); err == nil || !strings.Contains(err.Error(), "bespoke") {
		t.Fatalf("custom scheme crossed the wire (err %v)", err)
	}
}

// TestEarlyBreakCancelsJob: a consumer breaking out of the sweep iterator
// cancels the server-side job instead of leaving it simulating for
// nobody.
func TestEarlyBreakCancelsJob(t *testing.T) {
	_, url := testServer(t, Config{})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()
	pts := hotnoc.SweepGrid([]string{"A", "B", "C", "D", "E"}, hotnoc.Schemes(), []int{1, 2, 4, 8})

	for range c.Sweep(ctx, pts) {
		break
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("%d jobs registered, want 1", len(jobs))
	}
	info := waitForTerminal(t, c, jobs[0].ID)
	if info.State == wire.JobRunning {
		t.Fatalf("job still running after consumer broke early")
	}
}

// mixedTestGrid interleaves periodic and reactive points over two
// (config, scheme) pairs.
func mixedTestGrid() []hotnoc.SweepPoint {
	return []hotnoc.SweepPoint{
		hotnoc.PeriodicPoint("A", hotnoc.XYShift(), 1),
		hotnoc.ReactivePoint("A", hotnoc.ReactiveConfig{
			Scheme: hotnoc.XYShift(), TriggerC: 84, SimBlocks: 200, WarmupBlocks: 100}),
		hotnoc.PeriodicPoint("A", hotnoc.Rot(), 4),
		hotnoc.ReactivePoint("A", hotnoc.ReactiveConfig{
			Scheme: hotnoc.Rot(), TriggerC: 83, SimBlocks: 200, WarmupBlocks: 100}),
		hotnoc.PeriodicPoint("A", hotnoc.XYShift(), 8),
	}
}

// TestMixedGridRemoteParity is the PR's acceptance criterion: a mixed
// periodic+reactive grid submitted through the client streams outcomes in
// point order, byte-identical (JSON) to the same grid run through an
// in-process Lab, and a repeat submission on the daemon's warm cache
// performs zero extra NoC decodes — asserted through /v1/stats.
func TestMixedGridRemoteParity(t *testing.T) {
	_, url := testServer(t, Config{})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()
	pts := mixedTestGrid()

	var remote []hotnoc.SweepOutcome
	i := 0
	for out, err := range c.Sweep(ctx, pts) {
		if err != nil {
			t.Fatal(err)
		}
		if out.Point.Kind() != pts[i].Kind() || out.Point.Scheme.Name != pts[i].Scheme.Name {
			t.Fatalf("stream position %d carries %s/%s, want %s/%s", i,
				out.Point.Kind(), out.Point.Scheme.Name, pts[i].Kind(), pts[i].Scheme.Name)
		}
		remote = append(remote, out)
		i++
	}
	if i != len(pts) {
		t.Fatalf("stream yielded %d outcomes, want %d", i, len(pts))
	}

	localLab := hotnoc.NewLab(hotnoc.WithScale(testScale))
	local, err := localLab.SweepAll(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	for j := range local {
		lr, err := json.Marshal(struct {
			Result   hotnoc.RunResult       `json:"result"`
			Reactive *hotnoc.ReactiveResult `json:"reactive"`
		}{local[j].Result, local[j].Reactive})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := json.Marshal(struct {
			Result   hotnoc.RunResult       `json:"result"`
			Reactive *hotnoc.ReactiveResult `json:"reactive"`
		}{remote[j].Result, remote[j].Reactive})
		if err != nil {
			t.Fatal(err)
		}
		if string(lr) != string(rr) {
			t.Fatalf("point %d: remote outcome differs from in-process run:\nremote %s\nlocal  %s", j, rr, lr)
		}
	}

	// Warm repeat: the daemon already characterized both orbits; the
	// decode counter on /v1/stats must not move.
	before, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SweepAll(ctx, pts); err != nil {
		t.Fatal(err)
	}
	after, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Labs) != 1 || len(after.Labs) != 1 {
		t.Fatalf("stats list %d/%d labs, want 1/1", len(before.Labs), len(after.Labs))
	}
	if after.Labs[0].Decodes != before.Labs[0].Decodes {
		t.Fatalf("warm mixed sweep performed %d extra NoC decodes, want 0",
			after.Labs[0].Decodes-before.Labs[0].Decodes)
	}
	// 2 distinct (config, scheme) pairs across 5 points of 2 kinds: the
	// daemon decoded exactly what the in-process Lab did.
	if before.Labs[0].Decodes != localLab.Decodes() {
		t.Fatalf("daemon performed %d decodes for the mixed grid, want %d (one characterization per config+scheme)",
			before.Labs[0].Decodes, localLab.Decodes())
	}
}

// TestDaemonRestartWarmStartsBuilds: a second daemon over the first
// daemon's cache directory performs zero annealing/calibration work —
// every build reconstitutes from its persisted snapshot, asserted
// through the build counters on /v1/stats — and serves outcomes
// identical to the cold daemon's.
func TestDaemonRestartWarmStartsBuilds(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	pts := testGrid()

	_, url1 := testServer(t, Config{CacheDir: dir})
	c1 := client.New(url1, client.WithScale(testScale))
	cold, err := c1.SweepAll(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server process state over the same directory.
	_, url2 := testServer(t, Config{CacheDir: dir})
	c2 := client.New(url2, client.WithScale(testScale))
	warm, err := c2.SweepAll(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Labs) != 1 {
		t.Fatalf("stats list %d labs, want 1", len(st.Labs))
	}
	lab := st.Labs[0]
	if lab.BuildMisses != 0 || lab.BuildHits != 2 {
		t.Fatalf("restarted daemon built cold: %d hits / %d misses, want 2 / 0",
			lab.BuildHits, lab.BuildMisses)
	}
	if lab.Decodes != 0 || lab.CacheMisses != 0 {
		t.Fatalf("restarted daemon re-simulated: %d decodes, %d characterization misses, want 0 / 0",
			lab.Decodes, lab.CacheMisses)
	}
	for j := range cold {
		if !reflect.DeepEqual(cold[j].Result, warm[j].Result) {
			t.Fatalf("point %d: restarted daemon's outcome differs", j)
		}
	}
}

// TestReactiveRemoteParity: client.Reactive through the daemon is bitwise
// identical to Lab.Reactive in process, and shares the daemon's
// characterization cache with periodic sweeps at the same scale.
func TestReactiveRemoteParity(t *testing.T) {
	srv, url := testServer(t, Config{})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()
	cfgs := []hotnoc.ReactiveConfig{
		{Scheme: hotnoc.XYShift(), TriggerC: 84, SimBlocks: 200, WarmupBlocks: 100},
		{Scheme: hotnoc.XYShift(), TriggerC: 82, SimBlocks: 200, WarmupBlocks: 100},
		{Scheme: hotnoc.Rot(), TriggerC: 85, SimBlocks: 200, WarmupBlocks: 100},
	}

	remote, err := c.Reactive(ctx, "A", cfgs)
	if err != nil {
		t.Fatal(err)
	}
	local, err := hotnoc.NewLab(hotnoc.WithScale(testScale)).Reactive(ctx, "A", cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remote, local) {
		t.Fatal("remote reactive results differ from in-process Lab.Reactive")
	}

	// A periodic sweep over the same schemes is served from the
	// characterizations the reactive job just paid for.
	decodes := srv.labFor(testScale).Stats().Decodes
	if _, err := c.SweepAll(ctx, hotnoc.SweepGrid([]string{"A"},
		[]hotnoc.Scheme{hotnoc.XYShift(), hotnoc.Rot()}, []int{1, 4})); err != nil {
		t.Fatal(err)
	}
	if got := srv.labFor(testScale).Stats().Decodes; got != decodes {
		t.Fatalf("periodic sweep re-simulated %d decodes after reactive job, want 0", got-decodes)
	}
}

// TestSweepValidationNamesReactivePoint: a malformed reactive point is a
// 400 naming its index at submission, not a job failing mid-stream.
func TestSweepValidationNamesReactivePoint(t *testing.T) {
	_, url := testServer(t, Config{})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()

	bad := hotnoc.ReactivePoint("A", hotnoc.ReactiveConfig{Scheme: hotnoc.Rot(), TriggerC: 80})
	bad.Blocks = 4 // periodic field on a reactive point
	pts := []hotnoc.SweepPoint{hotnoc.PeriodicPoint("A", hotnoc.Rot(), 1), bad}
	if _, err := c.StartSweep(ctx, pts); err == nil ||
		!strings.Contains(err.Error(), "point 1") {
		t.Fatalf("malformed reactive point not rejected with its index (err %v)", err)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("rejected submission still registered %d jobs", len(jobs))
	}
}

// TestMaxJobsQueuesAtSaturation: at the concurrent-job bound, POST
// /v1/sweeps admits the job in the queued state — reporting its queue
// position — instead of rejecting it, and the scheduler dispatches it
// once the running job frees the slot.
func TestMaxJobsQueuesAtSaturation(t *testing.T) {
	_, url := testServer(t, Config{MaxJobs: 1})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()

	// A wide grid keeps the only slot busy while we probe the bound.
	wide := hotnoc.SweepGrid([]string{"A", "B", "C", "D", "E"}, hotnoc.Schemes(), []int{1, 2, 4, 8})
	blocker, err := c.StartSweep(ctx, wide)
	if err != nil {
		t.Fatal(err)
	}

	body, err := json.Marshal(wire.SweepRequest{Scale: testScale, Points: []wire.PointSpec{
		{Config: "A", Scheme: "Rot", Blocks: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweeps", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("saturated daemon answered %d, want 201 (the job queues)", resp.StatusCode)
	}
	var created wire.SweepCreated
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	if created.State != wire.JobQueued || created.QueuePos != 1 {
		t.Fatalf("saturated submission admitted as %q at position %d, want queued at 1",
			created.State, created.QueuePos)
	}

	// The job info surfaces the same queue position; stats count it.
	info, err := c.Job(ctx, created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != wire.JobQueued || info.QueuePos != 1 {
		t.Fatalf("queued job reports %q at position %d, want queued at 1", info.State, info.QueuePos)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Limits.MaxJobs != 1 {
		t.Fatalf("stats echo max_jobs %d, want 1", st.Limits.MaxJobs)
	}
	if st.Jobs.Queued != 1 || st.Jobs.Running != 1 {
		t.Fatalf("stats count %d queued / %d running, want 1 / 1", st.Jobs.Queued, st.Jobs.Running)
	}

	// Freeing the slot dispatches the queued job without a resubmission.
	if _, err := c.CancelJob(ctx, blocker); err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, created.ID, wire.JobDone)
}

// TestRetentionCapsFinishedJobs: RetainJobs bounds how many finished jobs
// stay addressable — the oldest-finished are forgotten like a client
// DELETE — and RetainFor expires them by age.
func TestRetentionCapsFinishedJobs(t *testing.T) {
	_, url := testServer(t, Config{RetainJobs: 1})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()
	pts := testGrid()[:1]

	first, err := c.StartSweep(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, first, wire.JobDone)
	second, err := c.StartSweep(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, second, wire.JobDone)

	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != second {
		t.Fatalf("retention kept %d jobs (first %v), want only the newest %s", len(jobs), jobs, second)
	}
	if jobs[0].FinishedAt.IsZero() {
		t.Fatal("finished job reports no finished_at timestamp")
	}
	if _, err := c.Job(ctx, first); err == nil {
		t.Fatalf("evicted job %s still addressable", first)
	}
}

// TestRetentionTTLExpiresJobs: a finished job older than RetainFor is
// forgotten on the next listing.
func TestRetentionTTLExpiresJobs(t *testing.T) {
	_, url := testServer(t, Config{RetainFor: 50 * time.Millisecond})
	c := client.New(url, client.WithScale(testScale))
	ctx := context.Background()

	id, err := c.StartSweep(ctx, testGrid()[:1])
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, id, wire.JobDone)
	time.Sleep(100 * time.Millisecond)
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("expired job still listed: %v", jobs)
	}
}

// waitForState polls until the job reaches state or the test times out.
func waitForState(t *testing.T, c *client.Client, id, state string) wire.JobInfo {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		info, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == state {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q waiting for %q", id, info.State, state)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitForTerminal polls until the job reaches a terminal state.
func waitForTerminal(t *testing.T, c *client.Client, id string) wire.JobInfo {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		info, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != wire.JobRunning && info.State != wire.JobQueued {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never left the %s state", id, info.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
