package server

import (
	"bufio"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"hotnoc"
	"hotnoc/client"
	"hotnoc/server/wire"
)

// TestSSEKeepAliveJobStream: with a short Config.KeepAlive, an idle job
// event stream carries ": keep-alive" SSE comment frames, and the real
// events still arrive and terminate the stream around them.
func TestSSEKeepAliveJobStream(t *testing.T) {
	release := make(chan struct{})
	srv, url := testServer(t, Config{KeepAlive: 5 * time.Millisecond})
	srv.sweepHook = fakeSweep(release)
	c := client.New(url, client.WithScale(testScale))
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	id, err := c.StartSweep(ctx, []hotnoc.SweepPoint{{Config: "A", Scheme: hotnoc.Rot(), Blocks: 1}})
	if err != nil {
		t.Fatal(err)
	}

	// The job is blocked on release, so after the replayed prefix the
	// stream is idle and only the keep-alive ticker writes. Release the
	// sweep once two comments have been observed; the stream must then
	// deliver the outcome and done events and end.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events: %s", resp.Status)
	}
	comments := 0
	var sawOutcome, sawDone bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == ": keep-alive":
			comments++
			if comments == 2 {
				close(release)
			}
		case strings.HasPrefix(line, "event:"):
			switch strings.TrimSpace(strings.TrimPrefix(line, "event:")) {
			case wire.EventOutcome:
				sawOutcome = true
			case wire.EventDone:
				sawDone = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if comments < 2 {
		t.Fatalf("saw %d keep-alive comments on the idle stream, want >= 2", comments)
	}
	if !sawOutcome || !sawDone {
		t.Fatalf("stream ended without the real events (outcome=%v done=%v)", sawOutcome, sawDone)
	}
}

// TestSSEKeepAliveClientUnaffected: the client SDK streams a real sweep
// against a daemon ticking keep-alives every millisecond — the quiet
// build/characterize window spans many intervals, so comment frames
// land mid-stream. The SDK ignores them per the SSE spec and every
// outcome arrives intact.
func TestSSEKeepAliveClientUnaffected(t *testing.T) {
	_, url := testServer(t, Config{KeepAlive: time.Millisecond})
	c := client.New(url, client.WithScale(testScale))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	pts := []hotnoc.SweepPoint{{Config: "A", Scheme: hotnoc.Rot(), Blocks: 1}}
	outs, err := c.SweepAll(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(pts) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(pts))
	}
}

// TestSSEKeepAliveDiagStream: the daemon-wide /v1/events diagnostics
// stream also emits keep-alive comments while idle.
func TestSSEKeepAliveDiagStream(t *testing.T) {
	_, url := testServer(t, Config{KeepAlive: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/events: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if sc.Text() == ": keep-alive" {
			return
		}
	}
	t.Fatalf("diagnostics stream ended without a keep-alive comment (%v)", sc.Err())
}
