package hotnoc

import (
	"context"
	"fmt"
	"iter"

	"hotnoc/internal/sim"
)

// Event is one progress notification from a Lab's pipeline; see the
// Stage* constants for the stages it reports.
type Event = sim.Event

// SweepStage labels the pipeline stage an Event reports.
type SweepStage = sim.Stage

// The pipeline stages a WithProgress callback observes.
const (
	StageBuildStart        = sim.StageBuildStart
	StageBuildDone         = sim.StageBuildDone
	StageCharacterizeStart = sim.StageCharacterizeStart
	StageCharacterizeDone  = sim.StageCharacterizeDone
	StageEvaluateDone      = sim.StageEvaluateDone
)

// Lab is the package's session handle: a concurrency-safe, long-lived
// environment that owns the build cache and the cross-run
// characterization cache, and exposes every experiment as a method.
// Creating a Lab costs nothing; caches fill on demand and persist for the
// Lab's lifetime, so a second sweep over the same grid performs zero NoC
// characterizations. With WithCacheDir the characterization cache also
// persists to disk, and a fresh process pointed at the same directory
// warm-starts: it skips the cycle-accurate stage entirely and produces
// results bitwise identical to a cold run.
//
//	lab := hotnoc.NewLab(hotnoc.WithScale(8), hotnoc.WithCacheDir(".hotnoc-cache"))
//	for out, err := range lab.Sweep(ctx, pts) {
//		if err != nil {
//			return err
//		}
//		fmt.Println(out.Point.Config, out.Result.ReductionC)
//	}
type Lab struct {
	runner *sim.Runner
}

// LabOption configures a Lab at construction.
type LabOption func(*sim.Options)

// WithScale divides the workload size (1 = the full paper-scale
// configuration, the default; 8 is a good smoke-test size).
func WithScale(scale int) LabOption {
	return func(o *sim.Options) { o.Scale = scale }
}

// WithWorkers bounds the sweep worker pool (default GOMAXPROCS).
func WithWorkers(n int) LabOption {
	return func(o *sim.Options) { o.Workers = n }
}

// WithCacheDir persists NoC characterizations under dir for warm
// restarts. The directory is created on first write; corrupt or stale
// entries are ignored and recomputed, never fatal.
func WithCacheDir(dir string) LabOption {
	return func(o *sim.Options) { o.CacheDir = dir }
}

// WithProgress registers a callback for build/characterize/evaluate
// events. Delivery is serialized across the Lab's workers; the callback
// must not block for long.
func WithProgress(fn func(Event)) LabOption {
	return func(o *sim.Options) { o.Progress = fn }
}

// NewLab creates a session with the given options.
func NewLab(opts ...LabOption) *Lab {
	var o sim.Options
	for _, opt := range opts {
		opt(&o)
	}
	return &Lab{runner: sim.NewRunner(o)}
}

// Sweep evaluates an arbitrary configuration × scheme × period grid
// concurrently and streams outcomes in point order as they complete, as a
// Go 1.23 range-over-func sequence. Each configuration is built once,
// each (configuration, scheme) orbit is characterized on the
// cycle-accurate NoC once — or served from the Lab's cross-run cache —
// and every period/ablation variant reuses that characterization for a
// cheap thermal evaluation. Results are bitwise identical to a serial
// walk of the same grid. On error the sequence yields one final (zero
// outcome, error) pair and stops; breaking early cancels in-flight work.
func (l *Lab) Sweep(ctx context.Context, pts []SweepPoint) iter.Seq2[SweepOutcome, error] {
	return l.runner.Stream(ctx, pts)
}

// SweepAll is Sweep collected into a slice, for callers that want the
// whole grid at once.
func (l *Lab) SweepAll(ctx context.Context, pts []SweepPoint) ([]SweepOutcome, error) {
	return l.runner.Run(ctx, pts)
}

// Build returns the calibrated build for one configuration at the Lab's
// scale, constructing it on first use and serving the Lab's build cache
// afterwards.
func (l *Lab) Build(config string) (*Built, error) {
	return l.runner.Built(config)
}

// Decodes returns the number of engine block decodes the Lab has
// performed — the unit of expensive cycle-accurate NoC work. A sweep
// served entirely from the characterization cache leaves the counter
// unchanged, which is how tests assert the cache short-circuits the NoC
// stage.
func (l *Lab) Decodes() uint64 { return l.runner.Decodes() }

// Figure1 regenerates Figure 1 of the paper: every migration scheme on
// every requested circuit configuration (nil = A-E) at the base one-block
// period. Duplicate configuration names contribute their own rows but are
// counted once in the per-scheme means, so the §3 averages cannot be
// skewed by a repeated entry.
func (l *Lab) Figure1(ctx context.Context, configs []string) (*Figure1Result, error) {
	if configs == nil {
		configs = []string{"A", "B", "C", "D", "E"}
	}
	pts := SweepGrid(configs, Schemes(), nil)
	outs, err := l.SweepAll(ctx, pts)
	if err != nil {
		return nil, err
	}
	// Outcomes arrive in point order: configuration-major, scheme-minor,
	// one row of len(Schemes()) cells per requested configuration (repeats
	// included).
	out := &Figure1Result{MeanReductionC: map[string]float64{}}
	nSchemes := len(Schemes())
	sums := map[string]float64{}
	seen := map[string]bool{}
	distinct := 0
	for ri, name := range configs {
		rowOuts := outs[ri*nSchemes : (ri+1)*nSchemes]
		row := Figure1Row{Config: name, BasePeakC: rowOuts[0].Built.StaticPeakC}
		for _, o := range rowOuts {
			row.Cells = append(row.Cells, Figure1Cell{
				Scheme:            o.Point.Scheme.Name,
				ReductionC:        o.Result.ReductionC,
				MigratedPeakC:     o.Result.MigratedPeakC,
				ThroughputPenalty: o.Result.ThroughputPenalty,
			})
			if !seen[name] {
				sums[o.Point.Scheme.Name] += o.Result.ReductionC
			}
		}
		if !seen[name] {
			seen[name] = true
			distinct++
		}
		out.Rows = append(out.Rows, row)
	}
	for scheme, sum := range sums {
		out.MeanReductionC[scheme] = sum / float64(distinct)
	}
	return out, nil
}

// PeriodSweep regenerates the migration-period trade-off on one
// configuration with one scheme: longer periods cut the throughput
// penalty while the peak temperature rises only marginally. All periods
// share one NoC characterization (nil blocks = 1, 4, 8).
func (l *Lab) PeriodSweep(ctx context.Context, config string, scheme Scheme, blocks []int) ([]PeriodPoint, error) {
	if len(blocks) == 0 {
		blocks = []int{1, 4, 8}
	}
	pts := SweepGrid([]string{config}, []Scheme{scheme}, blocks)
	outs, err := l.SweepAll(ctx, pts)
	if err != nil {
		return nil, err
	}
	var out []PeriodPoint
	for _, o := range outs {
		out = append(out, PeriodPoint{
			Blocks:            o.Point.Blocks,
			PeriodSec:         o.Result.PeriodSec,
			ThroughputPenalty: o.Result.ThroughputPenalty,
			PeakC:             o.Result.MigratedPeakC,
		})
	}
	for i := range out {
		out[i].PeakRiseC = out[i].PeakC - out[0].PeakC
	}
	return out, nil
}

// MigrationEnergy regenerates the migration-energy ablation for every
// scheme on one configuration (the paper highlights rotation on E). The
// with/without pair of each scheme shares one NoC characterization.
func (l *Lab) MigrationEnergy(ctx context.Context, config string) ([]EnergyStudy, error) {
	var pts []SweepPoint
	for _, s := range Schemes() {
		pts = append(pts,
			SweepPoint{Config: config, Scheme: s},
			SweepPoint{Config: config, Scheme: s, ExcludeMigrationEnergy: true})
	}
	outs, err := l.SweepAll(ctx, pts)
	if err != nil {
		return nil, err
	}
	var out []EnergyStudy
	for i := 0; i < len(outs); i += 2 {
		with, without := outs[i].Result, outs[i+1].Result
		var cycles int64
		for _, leg := range with.Legs {
			cycles += leg.Migration.Cycles
		}
		cycles /= int64(len(with.Legs))
		out = append(out, EnergyStudy{
			Scheme:            outs[i].Point.Scheme.Name,
			MeanWithC:         with.MigratedMeanC,
			MeanWithoutC:      without.MigratedMeanC,
			DeltaMeanC:        with.MigratedMeanC - without.MigratedMeanC,
			ReductionWithC:    with.ReductionC,
			ReductionWithoutC: without.ReductionC,
			MigrationEnergyJ:  with.MigrationEnergyJ,
			MigrationCycles:   cycles,
		})
	}
	return out, nil
}

// Reactive evaluates threshold-triggered migration configurations on one
// chip configuration. All entries selecting the same scheme share one NoC
// characterization — served from the Lab's cross-run cache when available
// — so a reactive parameter sweep (trigger thresholds, sensor
// quantisations, horizons) pays for each orbit once, exactly as periodic
// period sweeps do. Results are bitwise identical to the fused
// System.RunReactive.
func (l *Lab) Reactive(ctx context.Context, config string, cfgs []ReactiveConfig) ([]ReactiveResult, error) {
	out := make([]ReactiveResult, len(cfgs))
	// One evaluation system per scheme: EvaluateReactive reuses its cached
	// thermal factorisations across the scheme's configs.
	systems := map[string]*System{}
	chars := map[string]*Characterization{}
	for i, cfg := range cfgs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cfg.Scheme.StepFn == nil {
			return nil, fmt.Errorf("hotnoc: reactive config %d has no migration scheme", i)
		}
		name := cfg.Scheme.Name
		if chars[name] == nil {
			ch, built, err := l.runner.Characterization(config, cfg.Scheme)
			if err != nil {
				return nil, err
			}
			sys, err := built.System.Clone()
			if err != nil {
				return nil, fmt.Errorf("hotnoc: config %s: clone: %w", config, err)
			}
			chars[name], systems[name] = ch, sys
		}
		res, err := systems[name].EvaluateReactive(chars[name], cfg)
		if err != nil {
			return nil, fmt.Errorf("hotnoc: reactive config %d (%s): %w", i, name, err)
		}
		out[i] = res
	}
	return out, nil
}
