package hotnoc

import (
	"context"
	"iter"

	"hotnoc/internal/sim"
	"hotnoc/obs"
)

// Event is one progress notification from a Lab's pipeline; see the
// Stage* constants for the stages it reports.
type Event = sim.Event

// SweepStage labels the pipeline stage an Event reports.
type SweepStage = sim.Stage

// The pipeline stages a WithProgress callback observes.
const (
	StageBuildStart        = sim.StageBuildStart
	StageBuildDone         = sim.StageBuildDone
	StageCharacterizeStart = sim.StageCharacterizeStart
	StageCharacterizeDone  = sim.StageCharacterizeDone
	StageEvaluateDone      = sim.StageEvaluateDone
)

// Lab is the package's session handle: a concurrency-safe, long-lived
// environment that owns the build cache and the cross-run
// characterization cache, and exposes every experiment as a method.
// Creating a Lab costs nothing; caches fill on demand and persist for the
// Lab's lifetime, so a second sweep over the same grid performs zero NoC
// characterizations. With WithCacheDir both caches also persist to disk —
// NoC characterizations and calibrated build snapshots — and a fresh
// process pointed at the same directory warm-starts: it skips the
// cycle-accurate NoC stage, the simulated-annealing placement and the
// energy calibration entirely, and produces results bitwise identical to
// a cold run.
//
//	lab := hotnoc.NewLab(hotnoc.WithScale(8), hotnoc.WithCacheDir(".hotnoc-cache"))
//	for out, err := range lab.Sweep(ctx, pts) {
//		if err != nil {
//			return err
//		}
//		fmt.Println(out.Point.Config, out.Result.ReductionC)
//	}
type Lab struct {
	runner *sim.Runner
}

// LabOption configures a Lab at construction.
type LabOption func(*sim.Options)

// WithScale divides the workload size (1 = the full paper-scale
// configuration, the default; 8 is a good smoke-test size).
func WithScale(scale int) LabOption {
	return func(o *sim.Options) { o.Scale = scale }
}

// WithWorkers bounds the sweep worker pool (default GOMAXPROCS).
func WithWorkers(n int) LabOption {
	return func(o *sim.Options) { o.Workers = n }
}

// WithCacheDir persists NoC characterizations and calibrated build
// snapshots (annealed placement + energy calibration) under dir for warm
// restarts. The directory is created on first write; corrupt or stale
// entries of either kind are ignored and recomputed, never fatal.
func WithCacheDir(dir string) LabOption {
	return func(o *sim.Options) { o.CacheDir = dir }
}

// WithProgress registers a callback for build/characterize/evaluate
// events. Delivery is serialized across the Lab's workers; the callback
// must not block for long.
func WithProgress(fn func(Event)) LabOption {
	return func(o *sim.Options) { o.Progress = fn }
}

// WithMetrics registers the Lab's pipeline instruments on reg — stage
// latency histograms (build/characterize/evaluate), cache hit/miss
// counters, decode and evaluated-point counters, all labeled with the
// Lab's scale — and records into them as sweeps run. Recording is
// allocation-free on the per-point evaluate path. Several Labs (one per
// scale) may share one registry; the hotnocd daemon serves such a
// registry on GET /metrics.
func WithMetrics(reg *obs.Registry) LabOption {
	return func(o *sim.Options) { o.Metrics = reg }
}

// WithCacheLimit bounds the number of files of each cache artifact kind
// (characterizations and build snapshots, bounded independently) the
// cache directory may hold; once exceeded, the least-recently-used
// entries of that kind are evicted. Serving an entry counts as use. Zero
// (the default) keeps the directory unbounded. The limit only matters
// with WithCacheDir — a long-lived service sweeping many scales and
// schemes otherwise accretes files without bound.
func WithCacheLimit(n int) LabOption {
	return func(o *sim.Options) { o.CacheLimit = n }
}

// NewLab creates a session with the given options.
func NewLab(opts ...LabOption) *Lab {
	var o sim.Options
	for _, opt := range opts {
		opt(&o)
	}
	return &Lab{runner: sim.NewRunner(o)}
}

// Sweep evaluates an arbitrary configuration × scheme × period grid
// concurrently and streams outcomes in point order as they complete, as a
// Go 1.23 range-over-func sequence. Each configuration is built once,
// each (configuration, scheme) orbit is characterized on the
// cycle-accurate NoC once — or served from the Lab's cross-run cache —
// and every period/ablation variant reuses that characterization for a
// cheap thermal evaluation. Results are bitwise identical to a serial
// walk of the same grid. On error the sequence yields one final (zero
// outcome, error) pair and stops; breaking early cancels in-flight work.
func (l *Lab) Sweep(ctx context.Context, pts []SweepPoint) iter.Seq2[SweepOutcome, error] {
	return l.runner.Stream(ctx, pts)
}

// SweepWithProgress is Sweep with a per-call progress callback: progress
// receives exactly the events this sweep generates, alongside (not
// instead of) any WithProgress callback. A service multiplexing
// concurrent jobs onto one Lab uses it to attribute pipeline events to
// the job whose sweep triggered them.
func (l *Lab) SweepWithProgress(ctx context.Context, pts []SweepPoint, progress func(Event)) iter.Seq2[SweepOutcome, error] {
	return l.runner.StreamWith(ctx, pts, progress)
}

// SweepAll is Sweep collected into a slice, for callers that want the
// whole grid at once.
func (l *Lab) SweepAll(ctx context.Context, pts []SweepPoint) ([]SweepOutcome, error) {
	return l.runner.Run(ctx, pts)
}

// Build returns the calibrated build for one configuration at the Lab's
// scale, constructing it on first use and serving the Lab's build cache
// afterwards.
func (l *Lab) Build(config string) (*Built, error) {
	return l.runner.Built(config)
}

// Decodes returns the number of engine block decodes the Lab has
// performed — the unit of expensive cycle-accurate NoC work. A sweep
// served entirely from the characterization cache leaves the counter
// unchanged, which is how tests assert the cache short-circuits the NoC
// stage.
func (l *Lab) Decodes() uint64 { return l.runner.Decodes() }

// LabStats is a point-in-time snapshot of a Lab's counters, exported for
// monitoring (the hotnocd daemon serves it on /v1/stats).
type LabStats struct {
	// Scale and Workers echo the Lab's configuration.
	Scale   int `json:"scale"`
	Workers int `json:"workers"`
	// BusyWorkers gauges workers currently executing sweep tasks — a
	// utilization signal for services multiplexing jobs onto one Lab.
	BusyWorkers int `json:"busy_workers"`
	// Decodes counts engine block decodes — the unit of expensive
	// cycle-accurate NoC work (see Lab.Decodes).
	Decodes uint64 `json:"decodes"`
	// CacheHits / CacheMisses count characterization requests served from
	// the cross-run cache versus simulated on the NoC.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// BuildHits / BuildMisses count configuration builds served from the
	// cross-run build cache (memory, or reconstituted from a persisted
	// snapshot) versus constructed cold with annealing and calibration. A
	// Lab warm-started from a populated cache directory reports zero
	// misses.
	BuildHits   uint64 `json:"build_hits"`
	BuildMisses uint64 `json:"build_misses"`
}

// Stats returns a snapshot of the Lab's decode counter, characterization
// and build cache hit/miss counters, and worker-pool utilization.
func (l *Lab) Stats() LabStats {
	hits, misses := l.runner.CacheStats()
	bHits, bMisses := l.runner.BuildStats()
	return LabStats{
		Scale:       l.runner.Scale(),
		Workers:     l.runner.Workers(),
		BusyWorkers: l.runner.Busy(),
		Decodes:     l.runner.Decodes(),
		CacheHits:   hits,
		CacheMisses: misses,
		BuildHits:   bHits,
		BuildMisses: bMisses,
	}
}

// Figure1 regenerates Figure 1 of the paper: every migration scheme on
// every requested circuit configuration (nil = A-E) at the base one-block
// period. Duplicate configuration names contribute their own rows but are
// counted once in the per-scheme means, so the §3 averages cannot be
// skewed by a repeated entry.
func (l *Lab) Figure1(ctx context.Context, configs []string) (*Figure1Result, error) {
	if configs == nil {
		configs = []string{"A", "B", "C", "D", "E"}
	}
	pts := SweepGrid(configs, Schemes(), nil)
	outs, err := l.SweepAll(ctx, pts)
	if err != nil {
		return nil, err
	}
	return Figure1FromOutcomes(configs, outs), nil
}

// PeriodSweep regenerates the migration-period trade-off on one
// configuration with one scheme: longer periods cut the throughput
// penalty while the peak temperature rises only marginally. All periods
// share one NoC characterization (nil blocks = 1, 4, 8).
func (l *Lab) PeriodSweep(ctx context.Context, config string, scheme Scheme, blocks []int) ([]PeriodPoint, error) {
	if len(blocks) == 0 {
		blocks = []int{1, 4, 8}
	}
	pts := SweepGrid([]string{config}, []Scheme{scheme}, blocks)
	outs, err := l.SweepAll(ctx, pts)
	if err != nil {
		return nil, err
	}
	return PeriodPointsFromOutcomes(outs), nil
}

// MigrationEnergy regenerates the migration-energy ablation for every
// scheme on one configuration (the paper highlights rotation on E). The
// with/without pair of each scheme shares one NoC characterization.
func (l *Lab) MigrationEnergy(ctx context.Context, config string) ([]EnergyStudy, error) {
	outs, err := l.SweepAll(ctx, MigrationEnergyGrid(config))
	if err != nil {
		return nil, err
	}
	return EnergyStudiesFromOutcomes(outs), nil
}

// Reactive evaluates threshold-triggered migration configurations on one
// chip configuration. It is sugar for sweeping ReactiveGrid(config, cfgs)
// — the configurations become reactive grid points and run on the same
// worker-pool pipeline as every other sweep, so entries selecting the
// same scheme share one NoC characterization (served from the Lab's
// cross-run cache when available), exactly as periodic period sweeps do,
// and the transient thermal evaluations run concurrently on independent
// System clones. Results are returned in input order and are bitwise
// identical to the fused System.RunReactive.
func (l *Lab) Reactive(ctx context.Context, config string, cfgs []ReactiveConfig) ([]ReactiveResult, error) {
	return SweepReactive(ctx, l, config, cfgs)
}
