module hotnoc

go 1.24
