package hotnoc

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"hotnoc/internal/place"
)

func labGrid() []SweepPoint {
	return SweepGrid([]string{"A", "E"}, []Scheme{XYShift(), Rot()}, []int{1, 4})
}

// TestLabSecondSweepSkipsCharacterization is the in-process half of the
// acceptance criterion: a second Lab.Sweep over the same grid performs
// zero NoC characterizations — the engine decode counter does not move —
// and returns bitwise identical outcomes.
func TestLabSecondSweepSkipsCharacterization(t *testing.T) {
	ctx := context.Background()
	lab := NewLab(WithScale(testScale))
	pts := labGrid()

	cold, err := lab.SweepAll(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	decodes := lab.Decodes()
	if decodes == 0 {
		t.Fatal("cold sweep performed no decodes")
	}

	warm, err := lab.SweepAll(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := lab.Decodes(); got != decodes {
		t.Fatalf("second sweep performed %d NoC decodes, want 0", got-decodes)
	}
	for i := range cold {
		if !reflect.DeepEqual(cold[i].Result, warm[i].Result) {
			t.Fatalf("point %d: cached result differs from cold run", i)
		}
	}
}

// TestLabWarmRestartFromDisk is the cross-process half of the acceptance
// criterion: a fresh Lab (standing in for a fresh process) pointed at the
// previous run's cache directory performs zero NoC characterizations,
// zero annealing searches and zero calibrations — every build is
// reconstituted from its persisted snapshot — and reproduces the cold
// results bit for bit.
func TestLabWarmRestartFromDisk(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	pts := labGrid()

	cold, err := NewLab(WithScale(testScale), WithCacheDir(dir)).SweepAll(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}

	var hits, misses, buildHitEvents, buildMissEvents int
	anneals := place.AnnealCount()
	lab2 := NewLab(WithScale(testScale), WithCacheDir(dir), WithProgress(func(ev Event) {
		switch ev.Stage {
		case StageCharacterizeDone:
			if ev.CacheHit {
				hits++
			} else {
				misses++
			}
		case StageBuildDone:
			if ev.CacheHit {
				buildHitEvents++
			} else {
				buildMissEvents++
			}
		}
	}))
	warm, err := lab2.SweepAll(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := lab2.Decodes(); got != 0 {
		t.Fatalf("warm restart performed %d NoC decodes, want 0", got)
	}
	if got := place.AnnealCount() - anneals; got != 0 {
		t.Fatalf("warm restart ran %d annealing searches, want 0", got)
	}
	if misses != 0 || hits == 0 {
		t.Fatalf("warm restart saw %d cache hits, %d misses; want all hits", hits, misses)
	}
	if buildMissEvents != 0 || buildHitEvents != 2 {
		t.Fatalf("warm restart build events: %d hits, %d misses; want 2 hits (A, E)",
			buildHitEvents, buildMissEvents)
	}
	if st := lab2.Stats(); st.BuildMisses != 0 || st.BuildHits != 2 {
		t.Fatalf("warm restart build stats: %d hits, %d misses; want 2 / 0",
			st.BuildHits, st.BuildMisses)
	}
	for i := range cold {
		if !reflect.DeepEqual(cold[i].Result, warm[i].Result) {
			t.Fatalf("point %d: warm-restart result differs from cold run", i)
		}
	}
}

// TestLabCorruptCacheIgnored: trashing every persisted entry must not
// fail the sweep — the lab recomputes, reproduces the cold results, and
// leaves valid entries behind.
func TestLabCorruptCacheIgnored(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	pts := labGrid()[:4] // one configuration is enough here

	cold, err := NewLab(WithScale(testScale), WithCacheDir(dir)).SweepAll(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.gob"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries persisted (err %v)", err)
	}
	for _, f := range entries {
		if err := os.WriteFile(f, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	lab2 := NewLab(WithScale(testScale), WithCacheDir(dir))
	redo, err := lab2.SweepAll(ctx, pts)
	if err != nil {
		t.Fatalf("corrupt cache entries became fatal: %v", err)
	}
	if lab2.Decodes() == 0 {
		t.Fatal("corrupt entries served as cache hits")
	}
	for i := range cold {
		if !reflect.DeepEqual(cold[i].Result, redo[i].Result) {
			t.Fatalf("point %d: result after cache corruption differs", i)
		}
	}

	lab3 := NewLab(WithScale(testScale), WithCacheDir(dir))
	if _, err := lab3.SweepAll(ctx, pts); err != nil {
		t.Fatal(err)
	}
	if got := lab3.Decodes(); got != 0 {
		t.Fatalf("repaired cache still missed (%d decodes)", got)
	}
}

// TestLabSweepStreamsInOrder: the range-over-func sweep yields outcomes
// in point order and supports early exit.
func TestLabSweepStreamsInOrder(t *testing.T) {
	lab := NewLab(WithScale(testScale), WithWorkers(4))
	pts := labGrid()
	i := 0
	for out, err := range lab.Sweep(context.Background(), pts) {
		if err != nil {
			t.Fatal(err)
		}
		if out.Point.Config != pts[i].Config || out.Point.Scheme.Name != pts[i].Scheme.Name ||
			out.Point.Blocks != pts[i].Blocks {
			t.Fatalf("stream position %d carries %s/%s/b%d, want %s/%s/b%d", i,
				out.Point.Config, out.Point.Scheme.Name, out.Point.Blocks,
				pts[i].Config, pts[i].Scheme.Name, pts[i].Blocks)
		}
		i++
	}
	if i != len(pts) {
		t.Fatalf("stream yielded %d outcomes, want %d", i, len(pts))
	}
	for range lab.Sweep(context.Background(), pts) {
		break // an abandoned stream must not wedge the lab
	}
	if _, err := lab.SweepAll(context.Background(), pts[:1]); err != nil {
		t.Fatal(err)
	}
}

// TestLabProgressEvents: a sweep reports build, characterization and
// evaluation events, and a repeat sweep reports cache hits.
func TestLabProgressEvents(t *testing.T) {
	var mu sync.Mutex
	counts := map[SweepStage]int{}
	hits := 0
	lab := NewLab(WithScale(testScale), WithProgress(func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		counts[ev.Stage]++
		if ev.Stage == StageCharacterizeDone && ev.CacheHit {
			hits++
		}
	}))
	pts := SweepGrid([]string{"D"}, []Scheme{XYShift(), Rot()}, []int{1, 4})
	if _, err := lab.SweepAll(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if counts[StageBuildStart] != 1 || counts[StageBuildDone] != 1 {
		t.Fatalf("build events %d/%d, want 1/1", counts[StageBuildStart], counts[StageBuildDone])
	}
	if counts[StageCharacterizeStart] != 2 || counts[StageCharacterizeDone] != 2 {
		t.Fatalf("characterize events %d/%d, want 2/2",
			counts[StageCharacterizeStart], counts[StageCharacterizeDone])
	}
	if counts[StageEvaluateDone] != len(pts) {
		t.Fatalf("%d evaluate events, want %d", counts[StageEvaluateDone], len(pts))
	}
	if hits != 0 {
		t.Fatalf("%d cache hits on a cold sweep", hits)
	}
	mu.Unlock()

	if _, err := lab.SweepAll(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if counts[StageCharacterizeStart] != 2 {
		t.Fatalf("repeat sweep re-characterized (%d start events)", counts[StageCharacterizeStart])
	}
	if hits != 2 {
		t.Fatalf("repeat sweep reported %d cache hits, want 2", hits)
	}
	if counts[StageBuildStart] != 1 {
		t.Fatalf("repeat sweep rebuilt (%d build-start events)", counts[StageBuildStart])
	}
}

// TestLabReactiveSharesOrbit: a reactive parameter sweep through the lab
// matches the fused System.RunReactive bit for bit while characterizing
// the orbit exactly once — including reusing a characterization left by a
// periodic sweep.
func TestLabReactiveSharesOrbit(t *testing.T) {
	ctx := context.Background()
	lab := NewLab(WithScale(testScale))

	// Periodic sweep first: its characterization should serve the
	// reactive runs below.
	if _, err := lab.SweepAll(ctx, []SweepPoint{{Config: "A", Scheme: XYShift()}}); err != nil {
		t.Fatal(err)
	}
	decodes := lab.Decodes()

	cfgs := []ReactiveConfig{
		{Scheme: XYShift(), TriggerC: 84, SimBlocks: 300, WarmupBlocks: 150},
		{Scheme: XYShift(), TriggerC: 82, SimBlocks: 300, WarmupBlocks: 150},
	}
	got, err := lab.Reactive(ctx, "A", cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if n := lab.Decodes(); n != decodes {
		t.Fatalf("reactive sweep performed %d extra NoC decodes, want 0", n-decodes)
	}

	built, err := BuildConfig("A", testScale)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := built.System.RunReactive(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("reactive config %d differs from fused RunReactive", i)
		}
	}
}

// TestLabReactiveParallelMatchesSerial: reactive evaluations run on the
// worker pool, mixing schemes, and still reproduce the fused
// System.RunReactive bit for bit in input order — determinism survives
// the parallelism.
func TestLabReactiveParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	lab := NewLab(WithScale(testScale), WithWorkers(4))

	cfgs := []ReactiveConfig{
		{Scheme: XYShift(), TriggerC: 84, SimBlocks: 200, WarmupBlocks: 100},
		{Scheme: Rot(), TriggerC: 83, SimBlocks: 200, WarmupBlocks: 100},
		{Scheme: XYShift(), TriggerC: 82, SimBlocks: 200, WarmupBlocks: 100},
		{Scheme: Rot(), TriggerC: 85, SimBlocks: 200, WarmupBlocks: 100},
		{Scheme: XYShift(), TriggerC: 86, SimBlocks: 200, WarmupBlocks: 100},
	}
	got, err := lab.Reactive(ctx, "A", cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cfgs) {
		t.Fatalf("%d results for %d configs", len(got), len(cfgs))
	}

	built, err := BuildConfig("A", testScale)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := built.System.RunReactive(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("reactive config %d differs from fused RunReactive", i)
		}
	}
}

// TestLabReactiveValidation: a config without a scheme fails fast, naming
// its index, before any work starts.
func TestLabReactiveValidation(t *testing.T) {
	lab := NewLab(WithScale(testScale))
	_, err := lab.Reactive(context.Background(), "A", []ReactiveConfig{
		{Scheme: XYShift(), TriggerC: 84, SimBlocks: 100, WarmupBlocks: 50},
		{},
	})
	if err == nil || !strings.Contains(err.Error(), "config 1") {
		t.Fatalf("missing scheme not rejected (err %v)", err)
	}
	if lab.Decodes() != 0 {
		t.Fatal("validation failure still performed NoC work")
	}
}

// TestLabMixedSweep: periodic and reactive points mix freely in one
// Lab.Sweep, stream in point order with the result arm matching each
// kind, and share one NoC characterization per (config, scheme) across
// kinds — the decode counter moves once per orbit, not per kind.
func TestLabMixedSweep(t *testing.T) {
	ctx := context.Background()
	lab := NewLab(WithScale(testScale), WithWorkers(4))
	rcfg := ReactiveConfig{Scheme: XYShift(), TriggerC: 84, SimBlocks: 200, WarmupBlocks: 100}
	pts := []SweepPoint{
		PeriodicPoint("A", XYShift(), 1),
		ReactivePoint("A", rcfg),
		PeriodicPoint("A", XYShift(), 4),
	}
	if err := ValidateSweep(pts); err != nil {
		t.Fatal(err)
	}
	i := 0
	for out, err := range lab.Sweep(ctx, pts) {
		if err != nil {
			t.Fatal(err)
		}
		if out.Point.Kind() != pts[i].Kind() {
			t.Fatalf("stream position %d has kind %q, want %q", i, out.Point.Kind(), pts[i].Kind())
		}
		if (out.Point.Kind() == KindReactive) != (out.Reactive != nil) {
			t.Fatalf("stream position %d: result arm does not match kind %q", i, out.Point.Kind())
		}
		i++
	}
	if i != len(pts) {
		t.Fatalf("stream yielded %d outcomes, want %d", i, len(pts))
	}

	// One (config, scheme) pair across three points of two kinds: the
	// decode counter must match a single-orbit reference exactly.
	ref := NewLab(WithScale(testScale))
	if _, err := ref.SweepAll(ctx, pts[:1]); err != nil {
		t.Fatal(err)
	}
	if lab.Decodes() != ref.Decodes() {
		t.Fatalf("mixed sweep performed %d decodes, want the one-orbit reference's %d",
			lab.Decodes(), ref.Decodes())
	}

	// The reactive arm is bitwise identical to the fused RunReactive.
	outs, err := lab.SweepAll(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	built, err := BuildConfig("A", testScale)
	if err != nil {
		t.Fatal(err)
	}
	want, err := built.System.RunReactive(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*outs[1].Reactive, want) {
		t.Fatal("mixed-sweep reactive result differs from fused RunReactive")
	}
}

// TestDeprecatedWrappersShareDefaultLab: the deprecated free functions
// route repeated calls through one shared Lab per (scale, workers), so
// the second call performs zero NoC decodes.
func TestDeprecatedWrappersShareDefaultLab(t *testing.T) {
	if defaultLab(testScale, 0, "") != defaultLab(testScale, 0, "") {
		t.Fatal("defaultLab does not share instances")
	}
	shared := defaultLab(testScale, 0, "")
	if _, err := RunPeriodSweep("E", XMirror(), []int{1, 2}, testScale); err != nil {
		t.Fatal(err)
	}
	decodes := shared.Decodes()
	if decodes == 0 {
		t.Fatal("wrapper did not route through the shared default Lab")
	}
	if _, err := RunPeriodSweep("E", XMirror(), []int{1, 2, 4}, testScale); err != nil {
		t.Fatal(err)
	}
	if got := shared.Decodes(); got != decodes {
		t.Fatalf("second wrapper call performed %d extra decodes, want 0", got-decodes)
	}
	// The deprecated Sweep free function shares the same Lab.
	if _, err := Sweep(context.Background(),
		[]SweepPoint{{Config: "E", Scheme: XMirror(), Blocks: 8}},
		SweepOptions{Scale: testScale}); err != nil {
		t.Fatal(err)
	}
	if got := shared.Decodes(); got != decodes {
		t.Fatalf("deprecated Sweep performed %d extra decodes, want 0", got-decodes)
	}
}

// TestLabStats: the stats snapshot exposes decode and cache counters
// consistent with a sweep's actual work.
func TestLabStats(t *testing.T) {
	lab := NewLab(WithScale(testScale))
	pts := SweepGrid([]string{"B"}, []Scheme{XYShift(), Rot()}, []int{1, 4})
	if _, err := lab.SweepAll(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	st := lab.Stats()
	if st.Scale != testScale {
		t.Fatalf("stats scale %d, want %d", st.Scale, testScale)
	}
	if st.Workers < 1 {
		t.Fatalf("stats workers %d, want >= 1", st.Workers)
	}
	if st.Decodes != lab.Decodes() || st.Decodes == 0 {
		t.Fatalf("stats decodes %d, lab decodes %d", st.Decodes, lab.Decodes())
	}
	if st.CacheMisses != 2 || st.CacheHits != 0 {
		t.Fatalf("cold sweep counted %d misses / %d hits, want 2 / 0", st.CacheMisses, st.CacheHits)
	}
	if st.BuildMisses != 1 || st.BuildHits != 0 {
		t.Fatalf("cold sweep counted %d build misses / %d hits, want 1 / 0",
			st.BuildMisses, st.BuildHits)
	}
	if _, err := lab.SweepAll(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	if st := lab.Stats(); st.CacheHits != 2 {
		t.Fatalf("warm sweep counted %d hits, want 2", st.CacheHits)
	}
}

// TestLabFigure1DuplicateConfigsMean: duplicate configuration names get
// their own rows but cannot skew the per-scheme means (the §3 averages).
func TestLabFigure1DuplicateConfigsMean(t *testing.T) {
	ctx := context.Background()
	lab := NewLab(WithScale(testScale))
	dup, err := lab.Figure1(ctx, []string{"A", "A", "E"})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := lab.Figure1(ctx, []string{"A", "E"})
	if err != nil {
		t.Fatal(err)
	}
	if len(dup.Rows) != 3 || len(clean.Rows) != 2 {
		t.Fatalf("row counts %d/%d, want 3/2", len(dup.Rows), len(clean.Rows))
	}
	if !reflect.DeepEqual(dup.MeanReductionC, clean.MeanReductionC) {
		t.Fatalf("duplicate configs skewed the scheme means:\n dup   %v\n clean %v",
			dup.MeanReductionC, clean.MeanReductionC)
	}
}

// TestLabBuildCache: Lab.Build shares the session build cache with
// sweeps.
func TestLabBuildCache(t *testing.T) {
	lab := NewLab(WithScale(testScale))
	b1, err := lab.Build("D")
	if err != nil {
		t.Fatal(err)
	}
	outs, err := lab.SweepAll(context.Background(),
		[]SweepPoint{{Config: "D", Scheme: XYShift()}})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Built != b1 {
		t.Fatal("sweep did not reuse Lab.Build's calibrated build")
	}
}
