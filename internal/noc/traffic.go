package noc

import (
	"fmt"
	"math/rand"

	"hotnoc/internal/geom"
)

// Pattern selects a destination for a packet injected at src, or reports
// none (ok=false) when the node should stay silent under this pattern.
type Pattern func(r *rand.Rand, g geom.Grid, src geom.Coord) (dst geom.Coord, ok bool)

// UniformRandom sends to any node but the source with equal probability.
func UniformRandom(r *rand.Rand, g geom.Grid, src geom.Coord) (geom.Coord, bool) {
	if g.N() < 2 {
		return geom.Coord{}, false
	}
	for {
		d := g.Coord(r.Intn(g.N()))
		if d != src {
			return d, true
		}
	}
}

// Transpose sends (x,y) -> (y,x); diagonal nodes stay silent. On a square
// mesh this is the classic adversarial pattern for XY routing.
func Transpose(_ *rand.Rand, g geom.Grid, src geom.Coord) (geom.Coord, bool) {
	if !g.Square() || src.X == src.Y {
		return geom.Coord{}, false
	}
	return geom.Coord{X: src.Y, Y: src.X}, true
}

// HotspotPattern concentrates a fraction of traffic on one node and
// scatters the rest uniformly — the canonical stimulus for creating the
// localized heating this paper is about.
func HotspotPattern(hot geom.Coord, frac float64) Pattern {
	return func(r *rand.Rand, g geom.Grid, src geom.Coord) (geom.Coord, bool) {
		if r.Float64() < frac && src != hot {
			return hot, true
		}
		return UniformRandom(r, g, src)
	}
}

// Generator drives Bernoulli packet injection at every node each cycle.
type Generator struct {
	net     *Network
	pattern Pattern
	rng     *rand.Rand
	// Rate is the per-node injection probability per cycle.
	Rate float64
	// NFlits is the worm length of generated packets.
	NFlits int
	// Dropped counts injections refused by a full bounded queue.
	Dropped int64
}

// NewGenerator builds a generator with a deterministic seed.
func NewGenerator(net *Network, pattern Pattern, rate float64, nflits int, seed int64) (*Generator, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("noc: injection rate %g outside [0,1]", rate)
	}
	if nflits < 1 {
		return nil, fmt.Errorf("noc: worm length %d < 1", nflits)
	}
	return &Generator{
		net:     net,
		pattern: pattern,
		rng:     rand.New(rand.NewSource(seed)),
		Rate:    rate,
		NFlits:  nflits,
	}, nil
}

// Tick performs one cycle's worth of injections; call it once per
// Network.Step.
func (gen *Generator) Tick() {
	g := gen.net.Grid
	for _, src := range g.Coords() {
		if gen.rng.Float64() >= gen.Rate {
			continue
		}
		dst, ok := gen.pattern(gen.rng, g, src)
		if !ok {
			continue
		}
		pkt := &Packet{ID: gen.net.NextID(), Src: src, Dst: dst, NFlits: gen.NFlits}
		if err := gen.net.Send(pkt); err != nil {
			gen.Dropped++
		}
	}
}
