package noc

import (
	"testing"

	"hotnoc/internal/geom"
)

// BenchmarkStepIdle measures the cycle kernel with an empty network — the
// floor cost every simulated cycle pays.
func BenchmarkStepIdle(b *testing.B) {
	n, err := New(geom.NewGrid(5, 5), Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

// BenchmarkStepLoaded measures the kernel under sustained uniform-random
// load at 30 % injection, the decoder's operating region.
func BenchmarkStepLoaded(b *testing.B) {
	n, err := New(geom.NewGrid(5, 5), Config{})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := NewGenerator(n, UniformRandom, 0.3, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the network into steady load.
	for c := 0; c < 500; c++ {
		gen.Tick()
		n.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Tick()
		n.Step()
	}
}

// BenchmarkSingleWormTraversal measures end-to-end delivery of one
// corner-to-corner worm on an otherwise idle mesh.
func BenchmarkSingleWormTraversal(b *testing.B) {
	n, err := New(geom.NewGrid(5, 5), Config{})
	if err != nil {
		b.Fatal(err)
	}
	src := geom.Coord{X: 0, Y: 0}
	dst := geom.Coord{X: 4, Y: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := &Packet{ID: n.NextID(), Src: src, Dst: dst, NFlits: 8}
		if err := n.Send(pkt); err != nil {
			b.Fatal(err)
		}
		if _, err := n.Drain(10000); err != nil {
			b.Fatal(err)
		}
	}
}
