// Package noc is a cycle-accurate simulator of the paper's test-chip
// interconnect: a 2-D mesh of input-buffered wormhole routers with
// dimension-ordered (XY) routing, one router plus network interface per
// processing element. It stands in for the "modified cycle-accurate NoC
// simulator" the paper ran to obtain switching rates: every buffer access,
// crossbar traversal, arbitration and link traversal is counted per block
// and feeds the power model.
//
// Microarchitecture. Each router has five ports (Local, North, East,
// South, West) with one flit-FIFO per input port. A packet is a worm of
// flits; the head flit computes its route (XY), wins switch allocation
// (round-robin per output port), and the connection then persists until the
// tail flit passes, as in classic wormhole switching. Flits move one
// pipeline stage per cycle — switch traversal into an output latch, then
// link traversal into the downstream input buffer — and advance only when
// the downstream buffer has a free slot, which is the buffer-backpressure
// formulation of credit-based flow control. XY routing makes the channel
// dependency graph acyclic, so the network is deadlock-free; ejection is
// always accepted, preventing protocol deadlock at the NIs.
package noc

import (
	"fmt"

	"hotnoc/internal/geom"
)

// Dir enumerates router ports.
type Dir int

// Port order is fixed and gives deterministic arbitration.
const (
	Local Dir = iota
	North
	East
	South
	West
	numDirs
)

var dirNames = [numDirs]string{"Local", "North", "East", "South", "West"}

func (d Dir) String() string {
	if d < 0 || d >= numDirs {
		return fmt.Sprintf("Dir(%d)", int(d))
	}
	return dirNames[d]
}

// Opposite returns the port on the neighbouring router that faces d.
func (d Dir) Opposite() Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		return Local
	}
}

// offset returns the coordinate delta of one hop in direction d.
func (d Dir) offset() geom.Coord {
	switch d {
	case North:
		return geom.Coord{X: 0, Y: 1}
	case South:
		return geom.Coord{X: 0, Y: -1}
	case East:
		return geom.Coord{X: 1, Y: 0}
	case West:
		return geom.Coord{X: -1, Y: 0}
	default:
		return geom.Coord{}
	}
}

// Packet is one message on the network. Its flits are generated at
// injection; Payload carries application data (e.g. a batch of LDPC
// messages) untouched by the network.
type Packet struct {
	ID       uint64
	Src, Dst geom.Coord
	// NFlits is the worm length including head and tail (minimum 1).
	NFlits  int
	Payload any

	// InjectCycle is stamped by Send, EjectCycle on tail delivery.
	InjectCycle int64
	EjectCycle  int64
}

// Latency returns the packet's in-network latency in cycles (including
// source queueing), valid after delivery.
func (p *Packet) Latency() int64 { return p.EjectCycle - p.InjectCycle }

// Flit is one link-width slice of a packet.
type Flit struct {
	Pkt *Packet
	// Seq is the flit index: 0 is the head, NFlits-1 the tail.
	Seq int
}

// IsHead and IsTail identify worm boundaries. A single-flit packet is both.
func (f Flit) IsHead() bool { return f.Seq == 0 }
func (f Flit) IsTail() bool { return f.Seq == f.Pkt.NFlits-1 }

// Config sets the router microarchitecture parameters.
type Config struct {
	// BufDepth is the input FIFO capacity in flits (default 4).
	BufDepth int
	// InjectCap bounds each NI's injection queue in flits; 0 means
	// unbounded (the LDPC PEs generate bounded bursts by construction).
	InjectCap int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.BufDepth == 0 {
		c.BufDepth = 4
	}
	return c
}

// Validate reports nonsensical parameters.
func (c Config) Validate() error {
	if c.BufDepth < 1 {
		return fmt.Errorf("noc: buffer depth %d < 1", c.BufDepth)
	}
	if c.InjectCap < 0 {
		return fmt.Errorf("noc: negative injection queue cap %d", c.InjectCap)
	}
	return nil
}

// routeXY returns the next-hop port from cur towards dst under
// dimension-ordered routing: correct X first, then Y, then eject.
func routeXY(cur, dst geom.Coord) Dir {
	switch {
	case dst.X > cur.X:
		return East
	case dst.X < cur.X:
		return West
	case dst.Y > cur.Y:
		return North
	case dst.Y < cur.Y:
		return South
	default:
		return Local
	}
}
