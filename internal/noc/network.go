package noc

import (
	"fmt"

	"hotnoc/internal/geom"
	"hotnoc/internal/power"
)

// Stats aggregates network-level performance counters for one run window.
type Stats struct {
	PacketsSent      int64
	PacketsDelivered int64
	FlitsInjected    int64
	FlitsDelivered   int64
	LatencySum       int64
	LatencyMax       int64
	Cycles           int64
}

// AvgLatency returns the mean packet latency in cycles.
func (s Stats) AvgLatency() float64 {
	if s.PacketsDelivered == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.PacketsDelivered)
}

// Throughput returns delivered flits per cycle.
func (s Stats) Throughput() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.FlitsDelivered) / float64(s.Cycles)
}

// ni is the network interface of one PE: an injection queue of flits and
// the reassembly state of the worm currently being ejected.
type ni struct {
	queue      []Flit
	reassembly *Packet
}

// Network is the cycle-accurate mesh simulator.
type Network struct {
	Grid geom.Grid
	Cfg  Config

	routers []router
	nis     []ni

	// Cycle is the current simulation cycle.
	Cycle int64
	// Act counts switching events per block for the power model.
	Act *power.Activity
	// Stats holds the performance counters.
	Stats Stats

	// Deliver, when non-nil, receives each packet as its tail flit leaves
	// the destination NI.
	Deliver func(pkt *Packet)

	inflight int64
	nextID   uint64
}

// New builds a network over grid g.
func New(g geom.Grid, cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		Grid:    g,
		Cfg:     cfg,
		routers: make([]router, g.N()),
		nis:     make([]ni, g.N()),
		Act:     power.NewActivity(g.N()),
	}
	for i := range n.routers {
		r := &n.routers[i]
		r.pos = i
		c := g.Coord(i)
		r.coord.x, r.coord.y = c.X, c.Y
		for d := Dir(0); d < numDirs; d++ {
			r.in[d].buf = newFifo(cfg.BufDepth)
		}
	}
	return n, nil
}

// NextID allocates a fresh packet ID.
func (n *Network) NextID() uint64 {
	n.nextID++
	return n.nextID
}

// Send enqueues a packet for injection at its source NI. The packet is
// stamped with the current cycle; flits enter the router as buffer space
// allows. Send fails if the source or destination is off-grid, the worm
// length is invalid, or a bounded injection queue is full.
func (n *Network) Send(pkt *Packet) error {
	if !n.Grid.Contains(pkt.Src) || !n.Grid.Contains(pkt.Dst) {
		return fmt.Errorf("noc: packet %d endpoints %v->%v outside %dx%d grid",
			pkt.ID, pkt.Src, pkt.Dst, n.Grid.W, n.Grid.H)
	}
	if pkt.NFlits < 1 {
		return fmt.Errorf("noc: packet %d has %d flits", pkt.ID, pkt.NFlits)
	}
	q := &n.nis[n.Grid.Index(pkt.Src)]
	if n.Cfg.InjectCap > 0 && len(q.queue)+pkt.NFlits > n.Cfg.InjectCap {
		return fmt.Errorf("noc: injection queue full at %v", pkt.Src)
	}
	pkt.InjectCycle = n.Cycle
	for s := 0; s < pkt.NFlits; s++ {
		q.queue = append(q.queue, Flit{Pkt: pkt, Seq: s})
	}
	n.Stats.PacketsSent++
	n.Stats.FlitsInjected += int64(pkt.NFlits)
	n.inflight += int64(pkt.NFlits)
	return nil
}

// Busy reports whether any flit is still queued, buffered or latched.
func (n *Network) Busy() bool { return n.inflight > 0 }

// Step advances the network by one clock cycle. Phases run in a fixed
// order — ejection, link traversal, switch allocation/traversal,
// injection — over routers in row-major order, so runs are deterministic.
func (n *Network) Step() {
	n.eject()
	n.linkTraversal()
	n.switchAllocTraversal()
	n.inject()
	n.Cycle++
	n.Stats.Cycles++
}

// Run steps the network for the given number of cycles.
func (n *Network) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// Drain runs until the network is empty, up to maxCycles. It returns the
// number of cycles stepped, or an error if traffic remains — which, with
// deadlock-free XY routing, indicates an application-level sink failure.
func (n *Network) Drain(maxCycles int64) (int64, error) {
	start := n.Cycle
	for n.Busy() {
		if n.Cycle-start >= maxCycles {
			return n.Cycle - start, fmt.Errorf("noc: %d flits still in flight after %d cycles",
				n.inflight, maxCycles)
		}
		n.Step()
	}
	return n.Cycle - start, nil
}

// eject delivers flits sitting in Local output latches to their NIs.
// Ejection is always accepted: the NI is an infinite sink, which rules out
// protocol deadlock.
func (n *Network) eject() {
	for i := range n.routers {
		r := &n.routers[i]
		op := &r.out[Local]
		if !op.valid {
			continue
		}
		f := op.flit
		op.valid = false
		n.inflight--
		sink := &n.nis[i]
		if f.IsHead() {
			if sink.reassembly != nil {
				panic("noc: interleaved worms at ejection (wormhole ownership broken)")
			}
			sink.reassembly = f.Pkt
		} else if sink.reassembly != f.Pkt {
			panic("noc: body flit of a foreign worm at ejection")
		}
		if f.IsTail() {
			pkt := f.Pkt
			sink.reassembly = nil
			pkt.EjectCycle = n.Cycle
			n.Stats.PacketsDelivered++
			n.Stats.FlitsDelivered += int64(pkt.NFlits)
			if lat := pkt.Latency(); lat > n.Stats.LatencyMax {
				n.Stats.LatencyMax = lat
			}
			n.Stats.LatencySum += pkt.Latency()
			if n.Deliver != nil {
				n.Deliver(pkt)
			}
		}
	}
}

// linkTraversal moves flits from output latches into the downstream input
// buffers, subject to buffer space (credit backpressure).
func (n *Network) linkTraversal() {
	for i := range n.routers {
		r := &n.routers[i]
		for d := North; d < numDirs; d++ {
			op := &r.out[d]
			if !op.valid {
				continue
			}
			nbCoord := n.Grid.Coord(i).Add(d.offset())
			nb := &n.routers[n.Grid.Index(nbCoord)]
			in := &nb.in[d.Opposite()]
			if in.buf.full() {
				continue // stall; retry next cycle
			}
			in.buf.push(op.flit)
			op.valid = false
			n.Act.Link[i]++
			n.Act.BufWrites[nb.pos]++
		}
	}
}

// switchAllocTraversal arbitrates each free output port among requesting
// inputs and moves the winners' front flits across the crossbar.
func (n *Network) switchAllocTraversal() {
	for i := range n.routers {
		r := &n.routers[i]
		cur := n.Grid.Coord(i)
		for o := Dir(0); o < numDirs; o++ {
			op := &r.out[o]
			if op.valid {
				continue // latch occupied; downstream stalled
			}
			req := func(in Dir) bool {
				ip := &r.in[in]
				if ip.buf.empty() {
					return false
				}
				f := ip.buf.front()
				if ip.holding {
					return ip.route == o
				}
				if !f.IsHead() {
					// A body flit with no route state means the head was
					// mis-sequenced; impossible by construction.
					panic("noc: body flit at port head without route state")
				}
				return routeXY(cur, f.Pkt.Dst) == o
			}
			winner, ok := r.arbitrate(o, req)
			if !ok {
				continue
			}
			n.Act.Arb[i]++
			ip := &r.in[winner]
			f := ip.buf.pop()
			n.Act.BufReads[i]++
			n.Act.Xbar[i]++
			op.flit = f
			op.valid = true
			if f.IsHead() {
				op.owner = winner
				op.owned = true
				ip.route = o
				ip.holding = true
			}
			if f.IsTail() {
				op.owned = false
				ip.holding = false
			}
		}
	}
}

// inject moves flits from NI queues into the Local input buffers.
func (n *Network) inject() {
	for i := range n.routers {
		q := &n.nis[i]
		if len(q.queue) == 0 {
			q.queue = nil
			continue
		}
		buf := &n.routers[i].in[Local].buf
		// One flit per cycle across the NI-router interface.
		if !buf.full() {
			buf.push(q.queue[0])
			n.Act.BufWrites[i]++
			q.queue = q.queue[1:]
		}
	}
}

// ResetStats clears the performance counters and activity counters while
// leaving in-flight traffic untouched; the runtime manager calls this at
// migration-period boundaries to window the power measurement.
func (n *Network) ResetStats() {
	n.Stats = Stats{}
	n.Act.Reset()
}

// QueuedFlits returns the number of flits waiting in NI injection queues,
// a congestion diagnostic for the migration planner tests.
func (n *Network) QueuedFlits() int {
	total := 0
	for i := range n.nis {
		total += len(n.nis[i].queue)
	}
	return total
}
