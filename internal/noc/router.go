package noc

// fifo is a fixed-capacity flit FIFO implemented as a ring buffer; input
// buffers are the only queues inside a router.
type fifo struct {
	slots []Flit
	head  int
	n     int
}

func newFifo(capacity int) fifo {
	return fifo{slots: make([]Flit, capacity)}
}

func (q *fifo) len() int    { return q.n }
func (q *fifo) full() bool  { return q.n == len(q.slots) }
func (q *fifo) empty() bool { return q.n == 0 }
func (q *fifo) front() Flit { return q.slots[q.head] }
func (q *fifo) space() int  { return len(q.slots) - q.n }

func (q *fifo) push(f Flit) {
	if q.full() {
		panic("noc: push to full fifo (flow control broken)")
	}
	q.slots[(q.head+q.n)%len(q.slots)] = f
	q.n++
}

func (q *fifo) pop() Flit {
	if q.empty() {
		panic("noc: pop from empty fifo")
	}
	f := q.slots[q.head]
	q.slots[q.head] = Flit{}
	q.head = (q.head + 1) % len(q.slots)
	q.n--
	return f
}

// inPort is one input port: a FIFO plus the wormhole route state of the
// packet currently flowing through it.
type inPort struct {
	buf fifo
	// route is the output port allocated to the in-flight worm.
	route Dir
	// holding is true while a worm's flits still follow route.
	holding bool
}

// outPort is a one-deep output latch feeding the link to the neighbour
// (or the ejection path for Local).
type outPort struct {
	flit  Flit
	valid bool
	// owner is the input port whose worm currently owns this output;
	// ownership starts at head grant and ends when the tail traverses.
	owner Dir
	owned bool
	// rr is the round-robin arbitration pointer over input ports.
	rr Dir
}

// router is one mesh node. All state transitions happen inside
// Network.Step in a fixed phase order, so routers need no goroutines and
// the simulation is bit-reproducible.
type router struct {
	pos   int // row-major block index
	coord struct{ x, y int }
	in    [numDirs]inPort
	out   [numDirs]outPort
}

// arbitrate runs one round of switch allocation for output port o,
// returning the winning input port and whether anyone won. Round-robin
// starts after the previous winner, giving each input fair access — the
// same policy for every router keeps migration timing deterministic.
func (r *router) arbitrate(o Dir, request func(in Dir) bool) (Dir, bool) {
	op := &r.out[o]
	if op.owned {
		// Wormhole continuity: only the owner may use the port.
		if request(op.owner) {
			return op.owner, true
		}
		return 0, false
	}
	for k := 1; k <= int(numDirs); k++ {
		cand := Dir((int(op.rr) + k) % int(numDirs))
		if request(cand) {
			op.rr = cand
			return cand, true
		}
	}
	return 0, false
}
