package noc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hotnoc/internal/geom"
)

func newNet(t testing.TB, w, h int) *Network {
	t.Helper()
	n, err := New(geom.NewGrid(w, h), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestSingleHopDelivery: a packet to an adjacent node arrives intact and
// in bounded time.
func TestSingleHopDelivery(t *testing.T) {
	n := newNet(t, 4, 4)
	var got *Packet
	n.Deliver = func(p *Packet) { got = p }
	pkt := &Packet{ID: 1, Src: geom.Coord{X: 0, Y: 0}, Dst: geom.Coord{X: 1, Y: 0},
		NFlits: 4, Payload: "hello"}
	if err := n.Send(pkt); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Drain(1000); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.Payload != "hello" || got.ID != 1 {
		t.Fatalf("delivered wrong packet: %+v", got)
	}
	if n.Stats.PacketsDelivered != 1 || n.Stats.FlitsDelivered != 4 {
		t.Fatalf("stats: %+v", n.Stats)
	}
}

// TestSelfDelivery: a packet to the source PE loops through the local port
// only.
func TestSelfDelivery(t *testing.T) {
	n := newNet(t, 2, 2)
	delivered := 0
	n.Deliver = func(p *Packet) { delivered++ }
	src := geom.Coord{X: 1, Y: 1}
	if err := n.Send(&Packet{ID: 1, Src: src, Dst: src, NFlits: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Drain(100); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d packets, want 1", delivered)
	}
}

// TestLatencyLowerBound: an uncontended packet's latency is at least its
// hop count plus serialization (NFlits-1) and not absurdly more.
func TestLatencyLowerBound(t *testing.T) {
	n := newNet(t, 5, 5)
	src := geom.Coord{X: 0, Y: 0}
	dst := geom.Coord{X: 4, Y: 4}
	pkt := &Packet{ID: 1, Src: src, Dst: dst, NFlits: 6}
	if err := n.Send(pkt); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Drain(1000); err != nil {
		t.Fatal(err)
	}
	hops := int64(src.Manhattan(dst))
	minLat := hops + int64(pkt.NFlits-1)
	if pkt.Latency() < minLat {
		t.Fatalf("latency %d below physical bound %d", pkt.Latency(), minLat)
	}
	if pkt.Latency() > minLat+16 {
		t.Fatalf("uncontended latency %d way above bound %d", pkt.Latency(), minLat)
	}
}

// TestXYRouteShape: under XY routing a packet's flits are only ever seen by
// routers on the dimension-ordered rectangle path. We verify via activity:
// only routers on the XY path have crossbar traversals.
func TestXYRouteShape(t *testing.T) {
	n := newNet(t, 5, 5)
	src := geom.Coord{X: 0, Y: 1}
	dst := geom.Coord{X: 3, Y: 4}
	if err := n.Send(&Packet{ID: 1, Src: src, Dst: dst, NFlits: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Drain(1000); err != nil {
		t.Fatal(err)
	}
	onPath := map[int]bool{}
	for x := src.X; x <= dst.X; x++ {
		onPath[n.Grid.Index(geom.Coord{X: x, Y: src.Y})] = true
	}
	for y := src.Y; y <= dst.Y; y++ {
		onPath[n.Grid.Index(geom.Coord{X: dst.X, Y: y})] = true
	}
	for i := 0; i < n.Grid.N(); i++ {
		if n.Act.Xbar[i] > 0 && !onPath[i] {
			t.Fatalf("router %v off the XY path saw traffic", n.Grid.Coord(i))
		}
		if onPath[i] && n.Act.Xbar[i] == 0 {
			t.Fatalf("router %v on the XY path saw no traffic", n.Grid.Coord(i))
		}
	}
}

// TestConservationUnderRandomTraffic property: every injected packet is
// delivered exactly once, whatever the load.
func TestConservationUnderRandomTraffic(t *testing.T) {
	f := func(seed int64, rateRaw uint8) bool {
		n, err := New(geom.NewGrid(4, 4), Config{BufDepth: 2})
		if err != nil {
			return false
		}
		delivered := map[uint64]int{}
		n.Deliver = func(p *Packet) { delivered[p.ID]++ }
		rate := float64(rateRaw%60) / 100.0
		gen, err := NewGenerator(n, UniformRandom, rate, 3, seed)
		if err != nil {
			return false
		}
		for c := 0; c < 2000; c++ {
			gen.Tick()
			n.Step()
		}
		if _, err := n.Drain(200000); err != nil {
			return false
		}
		if n.Stats.PacketsDelivered != n.Stats.PacketsSent {
			return false
		}
		for _, count := range delivered {
			if count != 1 {
				return false
			}
		}
		return int64(len(delivered)) == n.Stats.PacketsSent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestNoDeadlockUnderTranspose: the adversarial transpose pattern at high
// load must still drain (XY routing is deadlock-free).
func TestNoDeadlockUnderTranspose(t *testing.T) {
	n := newNet(t, 5, 5)
	gen, err := NewGenerator(n, Transpose, 0.9, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3000; c++ {
		gen.Tick()
		n.Step()
	}
	if _, err := n.Drain(500000); err != nil {
		t.Fatalf("network failed to drain: %v", err)
	}
	if n.Stats.PacketsDelivered != n.Stats.PacketsSent {
		t.Fatalf("delivered %d of %d", n.Stats.PacketsDelivered, n.Stats.PacketsSent)
	}
}

// TestWormIntegrity: with many concurrent worms, flits of different packets
// never interleave at ejection (checked by the panic guards) and payloads
// arrive on the right destinations.
func TestWormIntegrity(t *testing.T) {
	n := newNet(t, 4, 4)
	type key struct {
		id  uint64
		dst geom.Coord
	}
	want := map[key]bool{}
	n.Deliver = func(p *Packet) {
		k := key{p.ID, p.Dst}
		if !want[k] {
			t.Errorf("unexpected delivery %v", k)
		}
		delete(want, k)
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		src := n.Grid.Coord(r.Intn(n.Grid.N()))
		dst := n.Grid.Coord(r.Intn(n.Grid.N()))
		id := n.NextID()
		pkt := &Packet{ID: id, Src: src, Dst: dst, NFlits: 1 + r.Intn(8)}
		if err := n.Send(pkt); err != nil {
			t.Fatal(err)
		}
		want[key{id, dst}] = true
		n.Step()
	}
	if _, err := n.Drain(100000); err != nil {
		t.Fatal(err)
	}
	if len(want) != 0 {
		t.Fatalf("%d packets never arrived", len(want))
	}
}

// TestBackpressure: a bounded injection queue rejects overload instead of
// corrupting state.
func TestBackpressure(t *testing.T) {
	n, err := New(geom.NewGrid(2, 2), Config{BufDepth: 1, InjectCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	src := geom.Coord{X: 0, Y: 0}
	dst := geom.Coord{X: 1, Y: 1}
	if err := n.Send(&Packet{ID: 1, Src: src, Dst: dst, NFlits: 4}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(&Packet{ID: 2, Src: src, Dst: dst, NFlits: 4}); err == nil {
		t.Fatal("second packet should exceed the injection cap")
	}
	if _, err := n.Drain(1000); err != nil {
		t.Fatal(err)
	}
}

// TestSendValidation covers the error paths.
func TestSendValidation(t *testing.T) {
	n := newNet(t, 2, 2)
	bad := []Packet{
		{Src: geom.Coord{X: -1, Y: 0}, Dst: geom.Coord{}, NFlits: 1},
		{Src: geom.Coord{}, Dst: geom.Coord{X: 2, Y: 0}, NFlits: 1},
		{Src: geom.Coord{}, Dst: geom.Coord{X: 1, Y: 1}, NFlits: 0},
	}
	for i := range bad {
		if err := n.Send(&bad[i]); err == nil {
			t.Errorf("Send accepted invalid packet %d", i)
		}
	}
}

// TestActivityConsistency: flit-conservation at the activity level — every
// crossbar traversal pairs with exactly one buffer read, and link
// traversals equal buffer writes minus injections (every non-injection
// write came over a link).
func TestActivityConsistency(t *testing.T) {
	n := newNet(t, 4, 4)
	gen, err := NewGenerator(n, UniformRandom, 0.2, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 1000; c++ {
		gen.Tick()
		n.Step()
	}
	if _, err := n.Drain(100000); err != nil {
		t.Fatal(err)
	}
	var reads, xbars, writes, links uint64
	for i := 0; i < n.Grid.N(); i++ {
		reads += n.Act.BufReads[i]
		xbars += n.Act.Xbar[i]
		writes += n.Act.BufWrites[i]
		links += n.Act.Link[i]
	}
	if reads != xbars {
		t.Fatalf("buffer reads %d != crossbar traversals %d", reads, xbars)
	}
	if writes != links+uint64(n.Stats.FlitsInjected) {
		t.Fatalf("buffer writes %d != links %d + injected %d",
			writes, links, n.Stats.FlitsInjected)
	}
}

// TestDeterminism: identical seeds give bit-identical stats and activity.
func TestDeterminism(t *testing.T) {
	run := func() (Stats, []uint64) {
		n := newNet(t, 4, 4)
		gen, err := NewGenerator(n, UniformRandom, 0.3, 4, 99)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 800; c++ {
			gen.Tick()
			n.Step()
		}
		if _, err := n.Drain(100000); err != nil {
			t.Fatal(err)
		}
		return n.Stats, append([]uint64(nil), n.Act.Xbar...)
	}
	s1, a1 := run()
	s2, a2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("activity differs at block %d", i)
		}
	}
}

// TestHigherLoadHigherLatency: average latency grows with injection rate.
func TestHigherLoadHigherLatency(t *testing.T) {
	avg := func(rate float64) float64 {
		n := newNet(t, 4, 4)
		gen, err := NewGenerator(n, UniformRandom, rate, 4, 5)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 3000; c++ {
			gen.Tick()
			n.Step()
		}
		if _, err := n.Drain(500000); err != nil {
			t.Fatal(err)
		}
		return n.Stats.AvgLatency()
	}
	low, high := avg(0.02), avg(0.30)
	if high <= low {
		t.Fatalf("latency did not grow with load: %.2f @2%% vs %.2f @30%%", low, high)
	}
}

// TestDirOpposite covers the port geometry helpers.
func TestDirOpposite(t *testing.T) {
	pairs := map[Dir]Dir{North: South, South: North, East: West, West: East, Local: Local}
	for d, want := range pairs {
		if d.Opposite() != want {
			t.Errorf("%v.Opposite() = %v, want %v", d, d.Opposite(), want)
		}
	}
}

// TestRouteXYProperty: the route from any cur to dst, followed greedily,
// reaches dst in exactly the Manhattan distance.
func TestRouteXYProperty(t *testing.T) {
	f := func(sx, sy, dx, dy uint8) bool {
		g := geom.NewGrid(8, 8)
		cur := geom.Coord{X: int(sx % 8), Y: int(sy % 8)}
		dst := geom.Coord{X: int(dx % 8), Y: int(dy % 8)}
		steps := 0
		for cur != dst {
			d := routeXY(cur, dst)
			if d == Local {
				return false
			}
			cur = cur.Add(d.offset())
			if !g.Contains(cur) {
				return false
			}
			steps++
			if steps > 64 {
				return false
			}
		}
		orig := geom.Coord{X: int(sx % 8), Y: int(sy % 8)}
		return steps == orig.Manhattan(dst) && routeXY(dst, dst) == Local
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
