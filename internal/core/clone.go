package core

import (
	"hotnoc/internal/appmap"
	"hotnoc/internal/noc"
)

// Clone returns an independent, ready-to-run copy of the system in its
// initial (pre-migration) state. The clone gets its own network, engine,
// migrator and I/O translator — everything a run mutates — while sharing
// the read-only calibration products: the thermal network, energy and
// leakage tables, code, partition, placement and block source. Cloning is
// how a concurrent sweep turns one calibrated Built into per-worker
// systems without repeating placement annealing or energy calibration;
// a clone's runs are bitwise identical to the original's.
func (s *System) Clone() (*System, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	net, err := noc.New(s.Grid, s.Engine.Net.Cfg)
	if err != nil {
		return nil, err
	}
	eng, err := appmap.NewEngine(s.Engine.Code, s.Engine.Part, net)
	if err != nil {
		return nil, err
	}
	eng.MaxIter = s.Engine.MaxIter
	eng.NormNum, eng.NormDen = s.Engine.NormNum, s.Engine.NormDen
	eng.MsgsPerFlit = s.Engine.MsgsPerFlit
	eng.CyclesPerOp = s.Engine.CyclesPerOp
	eng.PhaseOverhead = s.Engine.PhaseOverhead

	mig := NewMigrator(net)
	mig.StateFlits = s.Migrator.StateFlits
	mig.PhaseSyncCycles = s.Migrator.PhaseSyncCycles
	mig.DrainTimeout = s.Migrator.DrainTimeout

	return &System{
		Grid:         s.Grid,
		Therm:        s.Therm,
		Energy:       s.Energy,
		Leak:         s.Leak,
		ClockHz:      s.ClockHz,
		Engine:       eng,
		Migrator:     mig,
		InitialPlace: append([]int(nil), s.InitialPlace...),
		BlockSource:  s.BlockSource,
		IO:           NewIOTranslator(s.Grid),
		IdleFrac:     s.IdleFrac,
	}, nil
}
