package core

import "hotnoc/internal/geom"

// IOTranslator is the migration unit at the chip's I/O interface (§2.3):
// it transforms the destination address of every packet entering the chip
// and the source address of every packet leaving it, so that the external
// world keeps addressing PEs by their original (logical) coordinates no
// matter how many migrations have occurred. The unit maintains only the
// cumulative transform and its inverse; both update in O(1) per migration
// by transform composition.
type IOTranslator struct {
	grid geom.Grid
	// cum maps logical (external) coordinates to current physical ones.
	cum geom.Transform
	// inv maps physical coordinates back to logical ones.
	inv geom.Transform
	// migrations counts Advance calls, for reporting.
	migrations int
}

// NewIOTranslator returns a translator in the pre-migration state
// (identity mapping).
func NewIOTranslator(g geom.Grid) *IOTranslator {
	return &IOTranslator{grid: g, cum: geom.Identity(), inv: geom.Identity()}
}

// Advance composes one migration step into the cumulative transform.
// Call it exactly once per executed migration, with the same transform the
// migration applied to the plane.
func (t *IOTranslator) Advance(step geom.Transform) {
	t.cum = t.cum.Compose(step)
	t.inv = t.cum.Inverse(t.grid)
	t.migrations++
}

// InboundDst rewrites the destination of a packet entering the chip: the
// outside world addressed the logical PE at external; the workload now
// lives at the returned physical coordinate.
func (t *IOTranslator) InboundDst(external geom.Coord) geom.Coord {
	return t.cum.Apply(t.grid, external)
}

// OutboundSrc rewrites the source of a packet leaving the chip: the
// workload physically at internal appears to the outside world under its
// original logical coordinate.
func (t *IOTranslator) OutboundSrc(internal geom.Coord) geom.Coord {
	return t.inv.Apply(t.grid, internal)
}

// Migrations returns the number of migrations translated so far.
func (t *IOTranslator) Migrations() int { return t.migrations }

// Cumulative returns the current logical-to-physical transform.
func (t *IOTranslator) Cumulative() geom.Transform { return t.cum }
