package core

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// TestCharDataGobRoundTripEvaluatesIdentically: a characterization
// serialized through gob and reconstructed with FromData yields
// evaluations — periodic and reactive — bitwise identical to the
// original's. This is the property the sweep layer's disk cache rests on.
func TestCharDataGobRoundTripEvaluatesIdentically(t *testing.T) {
	sys := buildSystem(t, 4)
	ch, err := sys.Characterize(XYShift())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ch.Data()); err != nil {
		t.Fatal(err)
	}
	var restored CharData
	if err := gob.NewDecoder(&buf).Decode(&restored); err != nil {
		t.Fatal(err)
	}
	if err := restored.Validate(sys.Grid.N()); err != nil {
		t.Fatal(err)
	}
	ch2, err := FromData(XYShift(), &restored)
	if err != nil {
		t.Fatal(err)
	}

	for _, cfg := range []EvalConfig{
		{BlocksPerPeriod: 1},
		{BlocksPerPeriod: 8, ExcludeMigrationEnergy: true},
	} {
		a, err := sys.Evaluate(ch, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sys.Evaluate(ch2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("blocks %d: evaluation of restored characterization differs", cfg.BlocksPerPeriod)
		}
	}

	ra, err := sys.EvaluateReactive(ch, ReactiveConfig{
		Scheme: XYShift(), TriggerC: 55, SimBlocks: 200, WarmupBlocks: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sys.EvaluateReactive(ch2, ReactiveConfig{
		Scheme: XYShift(), TriggerC: 55, SimBlocks: 200, WarmupBlocks: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("reactive evaluation of restored characterization differs")
	}
}

// TestFromDataRejectsMismatch: reconstruction under the wrong scheme or
// with malformed data fails loudly.
func TestFromDataRejectsMismatch(t *testing.T) {
	sys := buildSystem(t, 4)
	ch, err := sys.Characterize(Rot())
	if err != nil {
		t.Fatal(err)
	}
	d := ch.Data()
	if _, err := FromData(XYShift(), d); err == nil {
		t.Fatal("scheme mismatch accepted")
	}
	if _, err := FromData(Scheme{Name: d.SchemeName}, d); err == nil {
		t.Fatal("scheme without step function accepted")
	}
	if _, err := FromData(Rot(), nil); err == nil {
		t.Fatal("nil data accepted")
	}
	if err := (&CharData{}).Validate(sys.Grid.N()); err == nil {
		t.Fatal("empty data validated")
	}
}

// TestEvaluateReactiveMatchesFused: splitting reactive evaluation off a
// shared characterization is bitwise identical to the fused RunReactive,
// and an EvaluateReactive under a mismatched scheme errors.
func TestEvaluateReactiveMatchesFused(t *testing.T) {
	cfg := ReactiveConfig{Scheme: XYShift(), TriggerC: 55, SimBlocks: 300, WarmupBlocks: 150}

	fused, err := buildSystem(t, 4).RunReactive(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sys := buildSystem(t, 4)
	ch, err := sys.Characterize(XYShift())
	if err != nil {
		t.Fatal(err)
	}
	split, err := sys.EvaluateReactive(ch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fused, split) {
		t.Fatalf("split reactive differs from fused: %+v vs %+v",
			split.PeakC, fused.PeakC)
	}
	// A second evaluation against the same characterization must not be
	// perturbed by the first.
	again, err := sys.EvaluateReactive(ch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(split, again) {
		t.Fatal("repeated reactive evaluation drifted")
	}

	if _, err := sys.EvaluateReactive(ch, ReactiveConfig{
		Scheme: Rot(), TriggerC: 55, SimBlocks: 100,
	}); err == nil {
		t.Fatal("scheme/characterization mismatch accepted")
	}
}
