package core

import (
	"fmt"

	"hotnoc/internal/geom"
	"hotnoc/internal/noc"
)

// stateBlob is the payload of a state-transfer packet: the converted
// configuration and state of one PE (opaque to the network).
type stateBlob struct {
	SrcBlock int
}

// Migrator executes migrations on the cycle-accurate network: it drains
// in-flight workload traffic, then moves every PE's configuration and
// state to its destination in congestion-free phases, charging conversion
// energy at the sources and normal network energy along the routes.
type Migrator struct {
	Net *noc.Network
	// StateFlits is the worm length of one PE's configuration + state
	// (default 512 flits ≈ 4 KB at 64-bit flits: decoder configuration,
	// channel LLRs and in-flight messages).
	StateFlits int
	// PhaseSyncCycles models the barrier between phases (halt/commit
	// handshake; default 32 cycles).
	PhaseSyncCycles int
	// DrainTimeout bounds the pre-migration drain (default 1e6 cycles).
	DrainTimeout int64
}

// NewMigrator returns a migrator with default parameters.
func NewMigrator(net *noc.Network) *Migrator {
	return &Migrator{Net: net, StateFlits: 512, PhaseSyncCycles: 32, DrainTimeout: 1_000_000}
}

// MigrationStats reports one executed migration.
type MigrationStats struct {
	// Cycles is the total wall-clock cost in clock cycles, from halt to
	// resume: drain + per-phase transfers + inter-phase synchronization.
	Cycles int64
	// Phases is the number of congestion-free phases used.
	Phases int
	// Transfers is the number of PEs that moved (fixed points excluded).
	Transfers int
	// StateFlitsMoved is the total state traffic in flits.
	StateFlitsMoved int64
}

// Execute performs the migration described by perm. The caller updates the
// application placement and I/O translator afterwards; Execute only moves
// state and accounts for time and energy.
func (m *Migrator) Execute(perm geom.Perm) (MigrationStats, error) {
	if m.StateFlits < 1 {
		return MigrationStats{}, fmt.Errorf("core: StateFlits %d < 1", m.StateFlits)
	}
	start := m.Net.Cycle

	// Halt and drain: workload packets still in the network complete
	// before state moves, guaranteeing the state transfer sees an idle
	// fabric (the precondition for the congestion-free phase plan).
	if _, err := m.Net.Drain(m.DrainTimeout); err != nil {
		return MigrationStats{}, fmt.Errorf("core: pre-migration drain: %w", err)
	}

	phases := PlanPhases(m.Net.Grid, perm)
	stats := MigrationStats{Phases: len(phases)}

	prevDeliver := m.Net.Deliver
	defer func() { m.Net.Deliver = prevDeliver }()
	pending := 0
	m.Net.Deliver = func(pkt *noc.Packet) {
		if _, ok := pkt.Payload.(stateBlob); ok {
			pending--
			return
		}
		if prevDeliver != nil {
			prevDeliver(pkt)
		}
	}

	for pi, ph := range phases {
		pending = 0
		for _, tr := range ph {
			src := m.Net.Grid.Coord(tr.Src)
			dst := m.Net.Grid.Coord(tr.Dst)
			pkt := &noc.Packet{
				ID:      m.Net.NextID(),
				Src:     src,
				Dst:     dst,
				NFlits:  m.StateFlits,
				Payload: stateBlob{SrcBlock: tr.Src},
			}
			if err := m.Net.Send(pkt); err != nil {
				return stats, fmt.Errorf("core: phase %d transfer %d->%d: %w", pi, tr.Src, tr.Dst, err)
			}
			// The conversion unit rewrites every state word as it leaves
			// the source PE (§2.1).
			m.Net.Act.ConvWords[tr.Src] += uint64(m.StateFlits)
			pending++
			stats.Transfers++
			stats.StateFlitsMoved += int64(m.StateFlits)
		}
		guard := m.Net.Cycle + m.DrainTimeout
		for pending > 0 {
			m.Net.Step()
			if m.Net.Cycle > guard {
				return stats, fmt.Errorf("core: phase %d stalled", pi)
			}
		}
		// Inter-phase barrier: commit handshake before the next group.
		m.Net.Run(int64(m.PhaseSyncCycles))
	}

	stats.Cycles = m.Net.Cycle - start
	return stats, nil
}
