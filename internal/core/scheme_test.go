package core

import (
	"testing"

	"hotnoc/internal/geom"
)

// TestOrbitLengths pins the thermal cycle length of every scheme on the
// paper's grids.
func TestOrbitLengths(t *testing.T) {
	want := map[string]map[int]int{
		"Rot":         {4: 4, 5: 4},
		"X Mirror":    {4: 2, 5: 2},
		"X-Y Mirror":  {4: 4, 5: 4},
		"Right Shift": {4: 4, 5: 5},
		"X-Y Shift":   {4: 4, 5: 5},
	}
	for _, s := range AllSchemes() {
		for _, n := range []int{4, 5} {
			g := geom.NewGrid(n, n)
			if got := s.OrbitLen(g); got != want[s.Name][n] {
				t.Errorf("%s on %dx%d: orbit %d, want %d", s.Name, n, n, got, want[s.Name][n])
			}
		}
	}
}

// TestPlacementsDistinct: within one orbit no placement repeats, and the
// first is the identity.
func TestPlacementsDistinct(t *testing.T) {
	for _, s := range AllSchemes() {
		for _, n := range []int{4, 5} {
			g := geom.NewGrid(n, n)
			ps := s.Placements(g)
			if !ps[0].EqualOn(g, geom.Identity()) {
				t.Errorf("%s on %dx%d: first placement not identity", s.Name, n, n)
			}
			for i := 0; i < len(ps); i++ {
				for j := i + 1; j < len(ps); j++ {
					if ps[i].EqualOn(g, ps[j]) {
						t.Errorf("%s on %dx%d: placements %d and %d coincide", s.Name, n, n, i, j)
					}
				}
			}
		}
	}
}

// TestXYMirrorAlternates: the X-Y mirror scheme must alternate axes; two
// successive steps compose to the point reflection.
func TestXYMirrorAlternates(t *testing.T) {
	s := XYMirrorScheme()
	g := geom.NewGrid(5, 5)
	step0 := s.Step(0, g)
	step1 := s.Step(1, g)
	if step0.EqualOn(g, step1) {
		t.Fatal("X-Y mirror repeats the same axis")
	}
	if !step0.Compose(step1).EqualOn(g, geom.XYMirror(5, 5)) {
		t.Fatal("two X-Y mirror steps do not compose to the point reflection")
	}
}

// TestXYMirrorMovesLessStateThanRotation: the alternating-mirror
// implementation moves less state per migration than rotation on both
// grids — the basis for rotation having the largest reconfiguration
// energy.
func TestXYMirrorMovesLessStateThanRotation(t *testing.T) {
	for _, n := range []int{4, 5} {
		g := geom.NewGrid(n, n)
		rot := geom.FromTransform(g, Rot().Step(0, g)).TotalDistance()
		for k := 0; k < 2; k++ {
			mir := geom.FromTransform(g, XYMirrorScheme().Step(k, g)).TotalDistance()
			if mir >= rot {
				t.Errorf("%dx%d step %d: mirror distance %d >= rotation %d", n, n, k, mir, rot)
			}
		}
	}
}

// TestSchemeByName covers the CLI lookups.
func TestSchemeByName(t *testing.T) {
	for _, name := range []string{"rot", "Rot", "x mirror", "X-Mirror", "xymirror",
		"right shift", "RIGHT-SHIFT", "x-y shift", "xy_shift"} {
		if _, err := SchemeByName(name); err != nil {
			t.Errorf("SchemeByName(%q): %v", name, err)
		}
	}
	if _, err := SchemeByName("teleport"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestCentralPEFixedOnOddGrids re-verifies the paper's central-PE argument
// at scheme level: across the whole orbit of rotation and both mirrors the
// centre never moves, while shifts move it every period.
func TestCentralPEFixedOnOddGrids(t *testing.T) {
	g := geom.NewGrid(5, 5)
	center, _ := g.Center()
	for _, s := range []Scheme{Rot(), XMirrorScheme(), XYMirrorScheme()} {
		for _, tr := range s.Placements(g) {
			if tr.Apply(g, center) != center {
				t.Errorf("%s moved the centre under %s", s.Name, tr.Name)
			}
		}
	}
	for _, s := range []Scheme{RightShift(), XYShift()} {
		for k, tr := range s.Placements(g) {
			if k == 0 {
				continue
			}
			if tr.Apply(g, center) == center {
				t.Errorf("%s left the centre fixed at orbit step %d", s.Name, k)
			}
		}
	}
}
