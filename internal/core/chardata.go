package core

import (
	"fmt"

	"hotnoc/internal/thermal"
)

// CharData is the serializable payload of a Characterization: everything
// the NoC stage measured, and nothing tied to a live System. It exists so
// characterizations can cross process boundaries — the sweep layer keys
// them by (configuration, scheme, scale) and persists them under a cache
// directory, letting a warm restart skip the cycle-accurate NoC stage
// entirely. All fields are plain data (gob- and JSON-encodable); float64
// values survive a gob round trip bit-exactly, so evaluations of a
// restored characterization are bitwise identical to evaluations of the
// original.
type CharData struct {
	// SchemeName records which scheme produced the orbit, so a restore
	// under the wrong scheme fails loudly instead of silently evaluating
	// the wrong legs.
	SchemeName string
	// BaselineCycles and BaselineBlockJ describe one block decoded at the
	// static thermally-aware placement.
	BaselineCycles int64
	BaselineBlockJ []float64
	// Legs covers the scheme's full orbit in order.
	Legs []LegActivity
}

// Data snapshots the characterization as plain data. The snapshot shares
// the characterization's slices; both sides treat them as immutable.
func (ch *Characterization) Data() *CharData {
	return &CharData{
		SchemeName:     ch.Scheme.Name,
		BaselineCycles: ch.BaselineCycles,
		BaselineBlockJ: ch.BaselineBlockJ,
		Legs:           ch.Legs,
	}
}

// Validate checks the snapshot's internal consistency for an n-block chip.
// It is the gate a deserialized (possibly corrupt or stale) cache entry
// must pass before the sweep layer will evaluate it.
func (d *CharData) Validate(n int) error {
	if d.SchemeName == "" {
		return fmt.Errorf("core: characterization data has no scheme name")
	}
	if len(d.Legs) == 0 {
		return fmt.Errorf("core: characterization data has no legs")
	}
	if d.BaselineCycles <= 0 {
		return fmt.Errorf("core: non-positive baseline cycles %d", d.BaselineCycles)
	}
	if len(d.BaselineBlockJ) != n {
		return fmt.Errorf("core: baseline energies cover %d blocks, want %d",
			len(d.BaselineBlockJ), n)
	}
	for i, la := range d.Legs {
		if la.DecodeCycles <= 0 || la.Migration.Cycles <= 0 {
			return fmt.Errorf("core: leg %d has non-positive cycle counts", i)
		}
		if len(la.DecodeBlockJ) != n || len(la.MigBlockJ) != n {
			return fmt.Errorf("core: leg %d energies cover %d/%d blocks, want %d",
				i, len(la.DecodeBlockJ), len(la.MigBlockJ), n)
		}
	}
	return nil
}

// FromData reconstructs an evaluable Characterization from a snapshot.
// The scheme must match the one that produced the data (step functions
// cannot be serialized, so the caller supplies the live scheme). The
// reconstruction gets a fresh baseline cache: like any Characterization
// it must not be evaluated from multiple goroutines, but many goroutines
// may each reconstruct their own view of one shared snapshot.
func FromData(scheme Scheme, d *CharData) (*Characterization, error) {
	if d == nil {
		return nil, fmt.Errorf("core: nil characterization data")
	}
	if scheme.StepFn == nil {
		return nil, fmt.Errorf("core: no migration scheme configured")
	}
	if scheme.Name != d.SchemeName {
		return nil, fmt.Errorf("core: characterization data is for scheme %q, not %q",
			d.SchemeName, scheme.Name)
	}
	return &Characterization{
		Scheme:         scheme,
		BaselineCycles: d.BaselineCycles,
		BaselineBlockJ: d.BaselineBlockJ,
		Legs:           d.Legs,
		baseCache:      map[baselineKey]thermal.CycleResult{},
	}, nil
}
