package core

import (
	"math"
	"testing"

	"hotnoc/internal/appmap"
	"hotnoc/internal/floorplan"
	"hotnoc/internal/geom"
	"hotnoc/internal/ldpc"
	"hotnoc/internal/noc"
	"hotnoc/internal/place"
	"hotnoc/internal/power"
	"hotnoc/internal/thermal"
)

// buildSystem assembles a small but complete test chip: a skewed LDPC
// partition (hot PEs), thermally-aware placement, calibrated-ish energy.
func buildSystem(t testing.TB, n int) *System {
	t.Helper()
	g := geom.NewGrid(n, n)
	code, err := ldpc.NewRegular(40*g.N(), 20*g.N(), 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	part, err := appmap.Skewed(code, g.N(), 3, 0.55, 7)
	if err != nil {
		t.Fatal(err)
	}
	net, err := noc.New(g, noc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := appmap.NewEngine(code, part, net)
	if err != nil {
		t.Fatal(err)
	}
	eng.MaxIter = 6

	fp := floorplan.NewMesh(g)
	tn, err := thermal.NewNetwork(fp, thermal.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	inf, err := thermal.NewInfluence(tn)
	if err != nil {
		t.Fatal(err)
	}

	// Scale the energy table so the small test workload produces chip
	// temperatures in the paper's range (the real calibration lives in
	// chipcfg; here any thermally meaningful scale works).
	energy := power.Default160nm().Scale(10)

	ops := appmap.OpsPerPE(code, part)
	pePower := make([]float64, g.N())
	for i, o := range ops {
		pePower[i] = float64(o) * energy.PEOpJ / 40e-6
	}
	pl, err := place.Anneal(&place.Problem{
		Grid: g, Inf: inf, PEPower: pePower,
		Traffic: appmap.TrafficMatrix(code, part), CommWeight: 1e-4,
	}, place.Options{Seed: 3, Iters: 4000})
	if err != nil {
		t.Fatal(err)
	}

	ch, err := ldpc.NewChannel(2.5, code.Rate(), 11)
	if err != nil {
		t.Fatal(err)
	}
	info := make([]uint8, code.K())
	cw, err := code.Encode(info)
	if err != nil {
		t.Fatal(err)
	}
	llr := ch.Transmit(cw)

	mig := NewMigrator(net)
	mig.StateFlits = 32

	return &System{
		Grid:         g,
		Therm:        tn,
		Energy:       energy,
		Leak:         power.DefaultLeakage(),
		ClockHz:      250e6,
		Engine:       eng,
		Migrator:     mig,
		InitialPlace: pl.Place,
		BlockSource:  func(leg int) []ldpc.LLR { return llr },
		IO:           NewIOTranslator(g),
	}
}

// TestRunXYShiftReducesPeak: the headline effect — migrating with X-Y
// shift lowers the peak temperature below the thermally-aware static
// placement.
func TestRunXYShiftReducesPeak(t *testing.T) {
	sys := buildSystem(t, 4)
	res, err := sys.Run(RunConfig{Scheme: XYShift()})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReductionC <= 0 {
		t.Fatalf("X-Y shift reduction %.3f °C, want > 0 (baseline %.2f, migrated %.2f)",
			res.ReductionC, res.BaselinePeakC, res.MigratedPeakC)
	}
	if res.BaselinePeakC < 45 {
		t.Fatalf("baseline peak %.2f °C too cold to be meaningful", res.BaselinePeakC)
	}
	if res.ThroughputPenalty <= 0 || res.ThroughputPenalty > 0.25 {
		t.Fatalf("throughput penalty %.4f outside plausible range", res.ThroughputPenalty)
	}
	if len(res.Legs) != XYShift().OrbitLen(sys.Grid) {
		t.Fatalf("%d legs, want %d", len(res.Legs), XYShift().OrbitLen(sys.Grid))
	}
}

// TestRunPeriodTradeoff reproduces the paper's period study shape: longer
// periods cut the throughput penalty roughly in proportion while the peak
// temperature rises only slightly.
func TestRunPeriodTradeoff(t *testing.T) {
	sys := buildSystem(t, 4)
	var peaks, penalties []float64
	for _, blocks := range []int{1, 4, 8} {
		res, err := sys.Run(RunConfig{Scheme: XYShift(), BlocksPerPeriod: blocks})
		if err != nil {
			t.Fatal(err)
		}
		peaks = append(peaks, res.MigratedPeakC)
		penalties = append(penalties, res.ThroughputPenalty)
	}
	if !(penalties[0] > penalties[1] && penalties[1] > penalties[2]) {
		t.Fatalf("penalty not decreasing with period: %v", penalties)
	}
	// Quadrupling the period must cut the penalty by at least 3x.
	if penalties[0]/penalties[1] < 3 {
		t.Fatalf("1->4 block penalty ratio %.2f, want >= 3", penalties[0]/penalties[1])
	}
	if peaks[1] < peaks[0]-0.05 || peaks[2] < peaks[1]-0.05 {
		t.Fatalf("peaks not (weakly) increasing with period: %v", peaks)
	}
	// Paper: 1 -> 4 blocks raises peak by less than a tenth of a degree.
	if peaks[1]-peaks[0] > 0.25 {
		t.Fatalf("4-block period raised peak %.3f °C over 1-block", peaks[1]-peaks[0])
	}
}

// TestMigrationEnergyRaisesMeanTemp: including state-transfer energy must
// raise the average chip temperature relative to the free-migration
// ablation — the mechanism of the paper's rotation penalty.
func TestMigrationEnergyRaisesMeanTemp(t *testing.T) {
	sys := buildSystem(t, 4)
	with, err := sys.Run(RunConfig{Scheme: Rot()})
	if err != nil {
		t.Fatal(err)
	}
	without, err := sys.Run(RunConfig{Scheme: Rot(), ExcludeMigrationEnergy: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.MigratedMeanC <= without.MigratedMeanC {
		t.Fatalf("migration energy did not raise mean temp: %.4f vs %.4f",
			with.MigratedMeanC, without.MigratedMeanC)
	}
	if with.MigrationEnergyJ <= 0 {
		t.Fatal("no migration energy recorded")
	}
}

// TestRunDeterminism: identical systems and configs give identical results.
func TestRunDeterminism(t *testing.T) {
	a, err := buildSystem(t, 4).Run(RunConfig{Scheme: XMirrorScheme()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildSystem(t, 4).Run(RunConfig{Scheme: XMirrorScheme()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.MigratedPeakC-b.MigratedPeakC) > 1e-9 ||
		a.ThroughputPenalty != b.ThroughputPenalty {
		t.Fatalf("runs differ: %.6f/%.6f vs %.6f/%.6f",
			a.MigratedPeakC, a.ThroughputPenalty, b.MigratedPeakC, b.ThroughputPenalty)
	}
}

// TestRunIOTransparencyMaintained: after a full run the I/O translator has
// advanced once per migration and returned to identity (full orbits).
func TestRunIOTransparencyMaintained(t *testing.T) {
	sys := buildSystem(t, 4)
	res, err := sys.Run(RunConfig{Scheme: Rot()})
	if err != nil {
		t.Fatal(err)
	}
	if sys.IO.Migrations() != len(res.Legs) {
		t.Fatalf("I/O translator saw %d migrations, want %d", sys.IO.Migrations(), len(res.Legs))
	}
	for _, c := range sys.Grid.Coords() {
		if sys.IO.InboundDst(c) != c {
			t.Fatalf("after a full orbit the I/O map is not identity at %v", c)
		}
	}
}

// TestRunValidation covers the error paths.
func TestRunValidation(t *testing.T) {
	sys := buildSystem(t, 4)
	if _, err := sys.Run(RunConfig{}); err == nil {
		t.Fatal("nil scheme accepted")
	}
	if _, err := sys.Run(RunConfig{Scheme: Rot(), BlocksPerPeriod: -1}); err == nil {
		t.Fatal("negative period accepted")
	}
	bad := *sys
	bad.ClockHz = 0
	if _, err := bad.Run(RunConfig{Scheme: Rot()}); err == nil {
		t.Fatal("zero clock accepted")
	}
	bad = *sys
	bad.BlockSource = nil
	if _, err := bad.Run(RunConfig{Scheme: Rot()}); err == nil {
		t.Fatal("nil block source accepted")
	}
}
