package core

import (
	"fmt"

	"hotnoc/internal/geom"
	"hotnoc/internal/power"
	"hotnoc/internal/thermal"
)

// LegActivity is the cycle-accurate outcome of one orbit leg: one block
// decoded at the leg's placement, followed by the migration that ends the
// leg. All quantities are for a single decoded block; the evaluation stage
// scales them to the configured migration period, which is exact because
// traffic timing and event counts in the engine are data-independent
// (fixed iterations, partition-determined batching).
type LegActivity struct {
	// Step is the transform the migration at the end of this leg applies.
	Step geom.Transform
	// DecodeCycles is the duration of one block decode at this placement.
	DecodeCycles int64
	// DecodeBlockJ is the per-block dynamic energy of one decode and
	// DecodeJ its chip-wide sum.
	DecodeBlockJ []float64
	DecodeJ      float64
	// Migration describes the state transfer that ends the leg.
	Migration MigrationStats
	// MigBlockJ is the per-block dynamic energy of the migration (state
	// transfer plus conversion) and MigJ its chip-wide sum.
	MigBlockJ []float64
	MigJ      float64
}

// Characterization is the deterministic outcome of simulating one scheme's
// full orbit on the cycle-accurate NoC: per-leg decode and migration
// activity, cycles and energies, plus the static-placement baseline. It is
// independent of the migration period and of the migration-energy
// ablation, so one characterization serves every period and ablation
// variant of the same (system, scheme) — the expensive NoC simulation runs
// once and the cheap thermal evaluation runs per variant.
type Characterization struct {
	// Scheme is the migration scheme that was characterized.
	Scheme Scheme
	// BaselineCycles and BaselineBlockJ describe one block decoded at the
	// static thermally-aware placement.
	BaselineCycles int64
	BaselineBlockJ []float64
	// Legs covers the scheme's full orbit in order.
	Legs []LegActivity

	// baseCache memoizes the period-independent static-baseline thermal
	// cycle per integrator option set, so repeated Evaluate calls pay for
	// it once. Like the System it came from, a Characterization must not
	// be evaluated from multiple goroutines.
	baseCache map[baselineKey]thermal.CycleResult
}

// baselineKey identifies a baseline evaluation by the scalar integrator
// options; custom leakage hooks are never cached (their identity cannot
// be compared).
type baselineKey struct {
	dt, tol float64
	maxReps int
}

// Characterize runs the expensive stage of an evaluation: it decodes one
// block at the static placement and at every placement of the scheme's
// orbit, executes each migration on the cycle-accurate network, and
// records the activity-derived energies. The result feeds any number of
// Evaluate calls.
func (s *System) Characterize(scheme Scheme) (*Characterization, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if scheme.StepFn == nil {
		return nil, fmt.Errorf("core: no migration scheme configured")
	}
	g := s.Grid
	net := s.Engine.Net
	ch := &Characterization{
		Scheme:    scheme,
		baseCache: map[baselineKey]thermal.CycleResult{},
	}

	// Static baseline decode.
	if err := s.Engine.SetPlacement(s.InitialPlace); err != nil {
		return nil, err
	}
	net.ResetStats()
	blk, err := s.Engine.Decode(s.BlockSource(0))
	if err != nil {
		return nil, fmt.Errorf("core: baseline decode: %w", err)
	}
	ch.BaselineCycles = blk.Cycles
	ch.BaselineBlockJ = blockEnergies(net.Act, s.Energy, g.N())

	// One decode plus one migration per orbit position.
	orbit := scheme.OrbitLen(g)
	place := append([]int(nil), s.InitialPlace...)
	for leg := 0; leg < orbit; leg++ {
		if err := s.Engine.SetPlacement(place); err != nil {
			return nil, err
		}
		net.ResetStats()
		blk, err := s.Engine.Decode(s.BlockSource(leg))
		if err != nil {
			return nil, fmt.Errorf("core: leg %d decode: %w", leg, err)
		}
		la := LegActivity{
			DecodeCycles: blk.Cycles,
			DecodeBlockJ: blockEnergies(net.Act, s.Energy, g.N()),
		}
		la.DecodeJ = sum(la.DecodeBlockJ)

		la.Step = scheme.Step(leg, g)
		perm := geom.FromTransform(g, la.Step)
		net.ResetStats()
		la.Migration, err = s.Migrator.Execute(perm)
		if err != nil {
			return nil, fmt.Errorf("core: leg %d migration: %w", leg, err)
		}
		la.MigBlockJ = blockEnergies(net.Act, s.Energy, g.N())
		la.MigJ = sum(la.MigBlockJ)

		// Workload follows the plane: the PE at block p moves to perm(p).
		next := make([]int, len(place))
		for l, blkIdx := range place {
			next[l] = perm.Dst(blkIdx)
		}
		place = next
		s.IO.Advance(la.Step)

		ch.Legs = append(ch.Legs, la)
	}
	return ch, nil
}

// EvalConfig selects the migration period and ablations for one thermal
// evaluation of a characterization.
type EvalConfig struct {
	// BlocksPerPeriod sets the migration period in decoded blocks
	// (default 1).
	BlocksPerPeriod int
	// ExcludeMigrationEnergy drops state-transfer and conversion energy
	// from the thermal schedule. Migration time is always modelled.
	ExcludeMigrationEnergy bool
	// CycleOpts overrides the thermal integrator options; zero values get
	// defaults.
	CycleOpts thermal.CycleOptions
}

// Evaluate runs the cheap stage: it folds the characterization's energies
// into per-leg power maps for the configured period and drives the thermal
// model to its quasi-steady cycle, reusing the system's cached thermal
// factorisations. Many Evaluate calls — different periods, the
// migration-energy ablation — amortise one Characterize.
func (s *System) Evaluate(ch *Characterization, cfg EvalConfig) (RunResult, error) {
	if ch == nil || len(ch.Legs) == 0 {
		return RunResult{}, fmt.Errorf("core: empty characterization")
	}
	if cfg.BlocksPerPeriod == 0 {
		cfg.BlocksPerPeriod = 1
	}
	if cfg.BlocksPerPeriod < 1 {
		return RunResult{}, fmt.Errorf("core: BlocksPerPeriod %d < 1", cfg.BlocksPerPeriod)
	}
	g := s.Grid
	b := float64(cfg.BlocksPerPeriod)
	opts := withLeak(cfg.CycleOpts, s.Leak)
	ev, err := s.thermalEvaluator()
	if err != nil {
		return RunResult{}, err
	}

	var res RunResult

	// Static baseline steady cycle: independent of the period and the
	// energy ablation, so it is computed once per characterization and
	// option set, and replayed for every further variant.
	key := baselineKey{dt: cfg.CycleOpts.Dt, tol: cfg.CycleOpts.TolC, maxReps: cfg.CycleOpts.MaxReps}
	cacheable := cfg.CycleOpts.Leak == nil && ch.baseCache != nil
	baseRes, cached := ch.baseCache[key]
	if !cacheable || !cached {
		baseDur := float64(ch.BaselineCycles) / s.ClockHz
		basePower := make([]float64, g.N())
		for i, e := range ch.BaselineBlockJ {
			basePower[i] = e / baseDur
		}
		baseRes, err = ev.RunCycle([]thermal.ScheduleEntry{{
			Power: basePower, Duration: baseDur, Label: "static",
		}}, opts)
		if err != nil {
			return RunResult{}, fmt.Errorf("core: baseline thermal: %w", err)
		}
		if cacheable {
			ch.baseCache[key] = baseRes
		}
	}
	// Copy the per-block maxima so callers mutating the result cannot
	// corrupt the cache (or each other).
	baseRes.MaxPerBlock = append([]float64(nil), baseRes.MaxPerBlock...)
	res.BaselinePeakC, res.BaselinePeakAt = baseRes.PeakC, baseRes.PeakBlock
	res.BaselineMeanC = baseRes.MeanC
	res.BaselineMaxTemps = baseRes.MaxPerBlock

	// One thermal entry per leg: B blocks of decode plus the migration
	// window, energy-folded into the leg's average power map. The migration
	// window (hundreds of cycles) is far below the die thermal time
	// constants, so folding loses nothing the RC model could resolve.
	entries := make([]thermal.ScheduleEntry, 0, len(ch.Legs))
	var totalDecode, totalMig int64
	for leg, la := range ch.Legs {
		legDur := (b*float64(la.DecodeCycles) + float64(la.Migration.Cycles)) / s.ClockHz
		legPower := make([]float64, g.N())
		for i := range legPower {
			e := b * la.DecodeBlockJ[i]
			if !cfg.ExcludeMigrationEnergy {
				// State transfer plus the idle-clock power the halted PEs
				// keep burning for the whole migration window.
				e += la.MigBlockJ[i] +
					s.IdleFrac*la.DecodeBlockJ[i]/float64(la.DecodeCycles)*float64(la.Migration.Cycles)
			}
			legPower[i] = e / legDur
		}
		entries = append(entries, thermal.ScheduleEntry{
			Power: legPower, Duration: legDur,
			Label: fmt.Sprintf("leg %d (%s)", leg, la.Step.Name),
		})

		migTotalEnergy := la.MigJ +
			s.IdleFrac*la.DecodeJ/float64(la.DecodeCycles)*float64(la.Migration.Cycles)
		totalDecode += int64(b) * la.DecodeCycles
		totalMig += la.Migration.Cycles
		res.Legs = append(res.Legs, LegReport{
			DecodeCycles:     la.DecodeCycles,
			Migration:        la.Migration,
			DecodeEnergyJ:    b * la.DecodeJ,
			MigrationEnergyJ: migTotalEnergy,
		})
		res.MigrationEnergyJ += migTotalEnergy
	}

	migRes, err := ev.RunCycle(entries, opts)
	if err != nil {
		return RunResult{}, fmt.Errorf("core: migrated thermal: %w", err)
	}
	res.MigratedPeakC, res.MigratedPeakAt = migRes.PeakC, migRes.PeakBlock
	res.MigratedMeanC = migRes.MeanC
	res.MigratedMaxTemps = migRes.MaxPerBlock
	res.ReductionC = res.BaselinePeakC - res.MigratedPeakC
	res.ThroughputPenalty = float64(totalMig) / float64(totalDecode+totalMig)
	res.PeriodSec = float64(totalDecode+totalMig) / float64(len(ch.Legs)) / s.ClockHz
	return res, nil
}

// blockEnergies snapshots the per-block dynamic energy of the current
// activity window.
func blockEnergies(act *power.Activity, e power.Energy, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = act.BlockEnergyJ(e, i)
	}
	return out
}

// sum adds a slice in index order (the same order Activity.TotalEnergyJ
// uses, keeping evaluation bitwise identical to the fused path).
func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}
