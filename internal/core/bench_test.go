package core

import (
	"testing"

	"hotnoc/internal/geom"
	"hotnoc/internal/noc"
)

// BenchmarkPlanPhasesAllSchemes measures migration planning for every
// scheme on the 5x5 chip — the work the runtime manager performs at each
// reconfiguration decision.
func BenchmarkPlanPhasesAllSchemes(b *testing.B) {
	g := geom.NewGrid(5, 5)
	perms := make([]geom.Perm, 0, 5)
	for _, s := range AllSchemes() {
		perms = append(perms, geom.FromTransform(g, s.Step(0, g)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range perms {
			PlanPhases(g, p)
		}
	}
}

// BenchmarkMigrationExecution measures one full cycle-accurate rotation
// migration on the 5x5 mesh (drain, phased 128-flit state transfers,
// barriers).
func BenchmarkMigrationExecution(b *testing.B) {
	g := geom.NewGrid(5, 5)
	perm := geom.FromTransform(g, geom.Rotation(5))
	net, err := noc.New(g, noc.Config{})
	if err != nil {
		b.Fatal(err)
	}
	m := NewMigrator(net)
	m.StateFlits = 128
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Execute(perm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIOTranslation measures the per-packet address translation of
// the chip-boundary migration unit.
func BenchmarkIOTranslation(b *testing.B) {
	g := geom.NewGrid(5, 5)
	io := NewIOTranslator(g)
	io.Advance(geom.Rotation(5))
	io.Advance(geom.XYTranslate(5, 5, 1, 1))
	c := geom.Coord{X: 3, Y: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = io.OutboundSrc(io.InboundDst(c))
	}
}
