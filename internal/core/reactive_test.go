package core

import (
	"math"
	"testing"
)

// TestReactiveHighTriggerNeverMigrates: with an unreachable threshold the
// chip never reconfigures, pays no penalty, and sits at the static peak.
func TestReactiveHighTriggerNeverMigrates(t *testing.T) {
	sys := buildSystem(t, 4)
	res, err := sys.RunReactive(ReactiveConfig{
		Scheme: XYShift(), TriggerC: 500, SimBlocks: 400, WarmupBlocks: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Fatalf("%d migrations with an unreachable trigger", res.Migrations)
	}
	if res.ThroughputPenalty != 0 {
		t.Fatalf("penalty %.4f without migrations", res.ThroughputPenalty)
	}
	base, err := sys.Run(RunConfig{Scheme: XYShift()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PeakC-base.BaselinePeakC) > 0.5 {
		t.Fatalf("static reactive peak %.2f far from baseline %.2f", res.PeakC, base.BaselinePeakC)
	}
}

// TestReactiveLowTriggerMigratesEveryBlock: a trigger at ambient fires at
// every block boundary — the reactive policy degenerates into the paper's
// periodic one.
func TestReactiveLowTriggerMigratesEveryBlock(t *testing.T) {
	sys := buildSystem(t, 4)
	const blocks, warmup = 1600, 1200
	res, err := sys.RunReactive(ReactiveConfig{
		Scheme: XYShift(), TriggerC: 41, SimBlocks: blocks, WarmupBlocks: warmup,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != blocks-warmup {
		t.Fatalf("%d migrations, want %d (every post-warmup block)", res.Migrations, blocks-warmup)
	}
	periodic, err := sys.Run(RunConfig{Scheme: XYShift()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PeakC-periodic.MigratedPeakC) > 1.0 {
		t.Fatalf("always-migrate reactive peak %.2f far from periodic %.2f",
			res.PeakC, periodic.MigratedPeakC)
	}
}

// TestReactiveTriggerMonotonicity: lowering the trigger can only increase
// migrations and can only lower (or hold) the peak.
func TestReactiveTriggerMonotonicity(t *testing.T) {
	sys := buildSystem(t, 4)
	base, err := sys.Run(RunConfig{Scheme: XYShift()})
	if err != nil {
		t.Fatal(err)
	}
	triggers := []float64{
		base.BaselinePeakC + 5,
		base.BaselinePeakC - 1,
		base.MigratedPeakC - 1,
	}
	var prevMig = -1
	var prevPeak = -math.MaxFloat64
	for i := len(triggers) - 1; i >= 0; i-- { // ascending trigger order
		res, err := sys.RunReactive(ReactiveConfig{
			Scheme: XYShift(), TriggerC: triggers[i], SimBlocks: 1200, WarmupBlocks: 800,
		})
		if err != nil {
			t.Fatal(err)
		}
		if prevMig >= 0 && res.Migrations > prevMig {
			t.Fatalf("higher trigger %.1f gave more migrations (%d > %d)",
				triggers[i], res.Migrations, prevMig)
		}
		if res.PeakC < prevPeak-0.2 {
			t.Fatalf("higher trigger %.1f gave lower peak (%.2f < %.2f)",
				triggers[i], res.PeakC, prevPeak)
		}
		prevMig, prevPeak = res.Migrations, res.PeakC
	}
}

// TestReactiveCapsTemperature: for any trigger between the migrated and
// static peaks, the controller keeps the post-warmup peak within one
// block's heating (plus sensor LSB) of the trigger, at no more than the
// periodic policy's throughput cost. The firing rate itself is emergent —
// bang-bang control may even park at a rigidly-moved placement that
// happens to sit below the trigger and stop migrating entirely.
func TestReactiveCapsTemperature(t *testing.T) {
	sys := buildSystem(t, 4)
	periodic, err := sys.Run(RunConfig{Scheme: XYShift()})
	if err != nil {
		t.Fatal(err)
	}
	const blocks, warmup = 1600, 1200
	lo, hi := periodic.MigratedPeakC, periodic.BaselinePeakC
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		trigger := lo + frac*(hi-lo)
		res, err := sys.RunReactive(ReactiveConfig{
			Scheme: XYShift(), TriggerC: trigger, SimBlocks: blocks, WarmupBlocks: warmup,
			SensorQuantC: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.PeakC > trigger+1.5 {
			t.Errorf("trigger %.2f: post-warmup peak %.2f overshoots the cap", trigger, res.PeakC)
		}
		if res.ThroughputPenalty > periodic.ThroughputPenalty+1e-9 {
			t.Errorf("trigger %.2f: penalty %.4f exceeds periodic %.4f",
				trigger, res.ThroughputPenalty, periodic.ThroughputPenalty)
		}
		if len(res.BlockPeaks) != blocks {
			t.Fatalf("%d block peaks recorded, want %d", len(res.BlockPeaks), blocks)
		}
	}
}

// TestReactiveDeterminism: identical configs give identical traces.
func TestReactiveDeterminism(t *testing.T) {
	run := func() ReactiveResult {
		sys := buildSystem(t, 4)
		res, err := sys.RunReactive(ReactiveConfig{
			Scheme: Rot(), TriggerC: 55, SimBlocks: 400, WarmupBlocks: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Migrations != b.Migrations || a.PeakC != b.PeakC {
		t.Fatalf("reactive runs differ: %d/%.4f vs %d/%.4f",
			a.Migrations, a.PeakC, b.Migrations, b.PeakC)
	}
	for i := range a.BlockPeaks {
		if a.BlockPeaks[i] != b.BlockPeaks[i] {
			t.Fatalf("block peak %d differs", i)
		}
	}
}

// TestReactivePeaksEvery: the timeline knob only thins what is reported —
// scalar statistics and the migration trace are bitwise unchanged, the
// downsampled timeline is the every-block timeline's every-k-th entry,
// and a negative knob omits the timeline entirely.
func TestReactivePeaksEvery(t *testing.T) {
	sys := buildSystem(t, 4)
	ch, err := sys.Characterize(Rot())
	if err != nil {
		t.Fatal(err)
	}
	base := ReactiveConfig{Scheme: Rot(), TriggerC: 55, SimBlocks: 400, WarmupBlocks: 200}
	full, err := sys.EvaluateReactive(ch, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.BlockPeaks) != base.SimBlocks {
		t.Fatalf("default recorded %d peaks, want %d", len(full.BlockPeaks), base.SimBlocks)
	}

	down := base
	down.PeaksEvery = 7
	got, err := sys.EvaluateReactive(ch, down)
	if err != nil {
		t.Fatal(err)
	}
	if got.PeakC != full.PeakC || got.MeanC != full.MeanC || got.Migrations != full.Migrations {
		t.Fatal("downsampling changed the scalar statistics")
	}
	want := (base.SimBlocks + 6) / 7
	if len(got.BlockPeaks) != want {
		t.Fatalf("PeaksEvery=7 recorded %d peaks, want %d", len(got.BlockPeaks), want)
	}
	for i, p := range got.BlockPeaks {
		if p != full.BlockPeaks[7*i] {
			t.Fatalf("downsampled peak %d = %g, want full[%d] = %g", i, p, 7*i, full.BlockPeaks[7*i])
		}
	}

	off := base
	off.PeaksEvery = -1
	none, err := sys.EvaluateReactive(ch, off)
	if err != nil {
		t.Fatal(err)
	}
	if none.BlockPeaks != nil {
		t.Fatalf("PeaksEvery=-1 still recorded %d peaks", len(none.BlockPeaks))
	}
	if none.PeakC != full.PeakC || none.Migrations != full.Migrations {
		t.Fatal("omitting the timeline changed the scalar statistics")
	}
}

// TestReactiveValidation covers the error paths.
func TestReactiveValidation(t *testing.T) {
	sys := buildSystem(t, 4)
	if _, err := sys.RunReactive(ReactiveConfig{TriggerC: 60}); err == nil {
		t.Fatal("nil scheme accepted")
	}
	bad := *sys
	bad.ClockHz = 0
	if _, err := bad.RunReactive(ReactiveConfig{Scheme: Rot(), TriggerC: 60}); err == nil {
		t.Fatal("invalid system accepted")
	}
}
