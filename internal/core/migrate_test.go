package core

import (
	"testing"

	"hotnoc/internal/geom"
	"hotnoc/internal/noc"
)

func newTestNet(t testing.TB, n int) *noc.Network {
	t.Helper()
	net, err := noc.New(geom.NewGrid(n, n), noc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestMigrationExecutes: every scheme's first migration completes on both
// grids and moves exactly the expected state volume.
func TestMigrationExecutes(t *testing.T) {
	for _, n := range []int{4, 5} {
		g := geom.NewGrid(n, n)
		for _, s := range AllSchemes() {
			net := newTestNet(t, n)
			m := NewMigrator(net)
			m.StateFlits = 16
			perm := geom.FromTransform(g, s.Step(0, g))
			stats, err := m.Execute(perm)
			if err != nil {
				t.Fatalf("%s on %dx%d: %v", s.Name, n, n, err)
			}
			moved := perm.Len() - len(perm.FixedPoints())
			if stats.Transfers != moved {
				t.Fatalf("%s on %dx%d: %d transfers, want %d", s.Name, n, n, stats.Transfers, moved)
			}
			if stats.StateFlitsMoved != int64(moved*16) {
				t.Fatalf("%s: moved %d flits, want %d", s.Name, stats.StateFlitsMoved, moved*16)
			}
			if net.Busy() {
				t.Fatalf("%s: network not empty after migration", s.Name)
			}
			if stats.Phases != len(PlanPhases(g, perm)) {
				t.Fatalf("%s: executed %d phases, planned %d", s.Name, stats.Phases,
					len(PlanPhases(g, perm)))
			}
		}
	}
}

// TestMigrationDeterministicDuration: the same migration costs exactly the
// same cycles every time — the paper's real-time property, enabled by
// congestion-free phasing.
func TestMigrationDeterministicDuration(t *testing.T) {
	g := geom.NewGrid(5, 5)
	perm := geom.FromTransform(g, geom.Rotation(5))
	var want int64
	for run := 0; run < 3; run++ {
		net := newTestNet(t, 5)
		m := NewMigrator(net)
		stats, err := m.Execute(perm)
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			want = stats.Cycles
			continue
		}
		if stats.Cycles != want {
			t.Fatalf("run %d took %d cycles, run 0 took %d", run, stats.Cycles, want)
		}
	}
}

// TestMigrationChargesConversionAtSources: every moved PE pays conversion
// energy for its state words; fixed points pay nothing.
func TestMigrationChargesConversionAtSources(t *testing.T) {
	g := geom.NewGrid(5, 5)
	net := newTestNet(t, 5)
	m := NewMigrator(net)
	m.StateFlits = 8
	perm := geom.FromTransform(g, geom.Rotation(5))
	if _, err := m.Execute(perm); err != nil {
		t.Fatal(err)
	}
	center, _ := g.Center()
	for i := 0; i < g.N(); i++ {
		want := uint64(8)
		if i == g.Index(center) {
			want = 0 // rotation fixes the centre
		}
		if net.Act.ConvWords[i] != want {
			t.Fatalf("block %d: %d conversion words, want %d", i, net.Act.ConvWords[i], want)
		}
	}
}

// TestMigrationDrainsWorkloadFirst: pre-existing traffic is delivered
// before state moves, and its deliveries still reach the original handler.
func TestMigrationDrainsWorkloadFirst(t *testing.T) {
	net := newTestNet(t, 4)
	workloadDelivered := 0
	net.Deliver = func(p *noc.Packet) { workloadDelivered++ }
	for i := 0; i < 5; i++ {
		pkt := &noc.Packet{
			ID:  net.NextID(),
			Src: geom.Coord{X: 0, Y: 0}, Dst: geom.Coord{X: 3, Y: 3},
			NFlits: 4,
		}
		if err := net.Send(pkt); err != nil {
			t.Fatal(err)
		}
	}
	g := geom.NewGrid(4, 4)
	m := NewMigrator(net)
	if _, err := m.Execute(geom.FromTransform(g, geom.XMirror(4))); err != nil {
		t.Fatal(err)
	}
	if workloadDelivered != 5 {
		t.Fatalf("%d workload packets delivered, want 5", workloadDelivered)
	}
}

// TestMigrationTimeOrdering: rotation (most phases, longest routes) takes
// at least as long as the translation schemes on the 5x5 chip.
func TestMigrationTimeOrdering(t *testing.T) {
	g := geom.NewGrid(5, 5)
	dur := map[string]int64{}
	for _, s := range AllSchemes() {
		net := newTestNet(t, 5)
		m := NewMigrator(net)
		stats, err := m.Execute(geom.FromTransform(g, s.Step(0, g)))
		if err != nil {
			t.Fatal(err)
		}
		dur[s.Name] = stats.Cycles
	}
	if dur["Rot"] < dur["Right Shift"] || dur["Rot"] < dur["X-Y Shift"] {
		t.Fatalf("rotation migration (%d cycles) not slowest vs shifts (%d, %d)",
			dur["Rot"], dur["Right Shift"], dur["X-Y Shift"])
	}
}

// TestMigratorRejectsBadState: invalid configuration errors out cleanly.
func TestMigratorRejectsBadState(t *testing.T) {
	net := newTestNet(t, 4)
	m := NewMigrator(net)
	m.StateFlits = 0
	g := geom.NewGrid(4, 4)
	if _, err := m.Execute(geom.FromTransform(g, geom.XMirror(4))); err == nil {
		t.Fatal("zero StateFlits accepted")
	}
}
