package core

import (
	"fmt"

	"hotnoc/internal/appmap"
	"hotnoc/internal/geom"
	"hotnoc/internal/ldpc"
	"hotnoc/internal/power"
	"hotnoc/internal/thermal"
)

// System bundles one test chip: workload engine, network (inside the
// engine), thermal model, energy tables and the migration machinery.
type System struct {
	Grid geom.Grid
	// Therm is the chip's RC thermal model.
	Therm *thermal.Network
	// Energy is the (calibrated) per-event energy table.
	Energy power.Energy
	// Leak is the temperature-dependent leakage model.
	Leak power.Leakage
	// ClockHz converts cycles to seconds (default 250 MHz, a 160 nm-
	// plausible NoC clock).
	ClockHz float64
	// Engine executes the LDPC workload on the cycle-accurate NoC.
	Engine *appmap.Engine
	// Migrator executes state transfers.
	Migrator *Migrator
	// InitialPlace is the thermally-aware static placement (logical PE ->
	// physical block).
	InitialPlace []int
	// BlockSource supplies the channel LLRs for the block decoded at each
	// migration leg; it must be deterministic for reproducibility.
	BlockSource func(leg int) []ldpc.LLR
	// IO is the chip-boundary migration unit, advanced at each migration.
	IO *IOTranslator
	// IdleFrac is the fraction of a block's active power it keeps burning
	// while halted during a migration (clock trees and always-on logic;
	// ~35% of dynamic power at 160 nm). Longer migrations therefore cost
	// proportionally more energy — the reason rotation, with the most
	// transfer phases, has the largest reconfiguration energy penalty.
	IdleFrac float64

	// thermEval caches the thermal LU factorisations across evaluations.
	thermEval *thermal.Evaluator
}

// thermalEvaluator lazily creates the cached thermal evaluator.
func (s *System) thermalEvaluator() (*thermal.Evaluator, error) {
	if s.thermEval == nil {
		ev, err := thermal.NewEvaluator(s.Therm)
		if err != nil {
			return nil, err
		}
		s.thermEval = ev
	}
	return s.thermEval, nil
}

// Validate reports wiring mistakes.
func (s *System) Validate() error {
	if s.Therm == nil || s.Engine == nil || s.Migrator == nil {
		return fmt.Errorf("core: system missing thermal model, engine or migrator")
	}
	if s.Therm.NDie != s.Grid.N() {
		return fmt.Errorf("core: thermal model has %d blocks for %d PEs", s.Therm.NDie, s.Grid.N())
	}
	if s.ClockHz <= 0 {
		return fmt.Errorf("core: non-positive clock %g", s.ClockHz)
	}
	if len(s.InitialPlace) != s.Grid.N() {
		return fmt.Errorf("core: initial placement has %d entries for %d PEs",
			len(s.InitialPlace), s.Grid.N())
	}
	if s.BlockSource == nil {
		return fmt.Errorf("core: nil block source")
	}
	if s.IO == nil {
		return fmt.Errorf("core: nil I/O translator")
	}
	if s.IdleFrac < 0 || s.IdleFrac > 1 {
		return fmt.Errorf("core: IdleFrac %g outside [0,1]", s.IdleFrac)
	}
	return nil
}

// RunConfig selects a migration policy for one evaluation.
type RunConfig struct {
	// Scheme is the migration scheme under test.
	Scheme Scheme
	// BlocksPerPeriod sets the migration period in decoded blocks
	// (default 1 — the paper's 109 µs-class base period; 4 and 8
	// correspond to its 437.2 µs and 874.4 µs studies).
	BlocksPerPeriod int
	// ExcludeMigrationEnergy drops state-transfer and conversion energy
	// from the thermal schedule (ablation for the paper's rotation-energy
	// observation). Migration time is always modelled.
	ExcludeMigrationEnergy bool
	// CycleOpts overrides the thermal integrator options; zero values get
	// defaults.
	CycleOpts thermal.CycleOptions
}

// LegReport describes one leg (one placement dwell plus the following
// migration) of the quasi-steady thermal cycle.
type LegReport struct {
	// DecodeCycles is the duration of one block decode at this placement.
	DecodeCycles int64
	// Migration describes the state transfer that ends the leg.
	Migration MigrationStats
	// DecodeEnergyJ and MigrationEnergyJ split the leg's dissipation.
	DecodeEnergyJ    float64
	MigrationEnergyJ float64
}

// RunResult compares a migration scheme against the static baseline on the
// same chip, placement and workload.
type RunResult struct {
	// Baseline is the static thermally-aware placement's steady state.
	BaselinePeakC  float64
	BaselinePeakAt int
	BaselineMeanC  float64

	// Migrated is the quasi-steady thermal cycle under the scheme.
	MigratedPeakC  float64
	MigratedPeakAt int
	MigratedMeanC  float64

	// ReductionC = BaselinePeakC - MigratedPeakC (positive is good).
	ReductionC float64

	// ThroughputPenalty is migration downtime over total time.
	ThroughputPenalty float64
	// PeriodSec is the average migration period in seconds.
	PeriodSec float64
	// MigrationEnergyJ is the state-transfer energy per thermal cycle.
	MigrationEnergyJ float64

	// Legs details each placement dwell in orbit order.
	Legs []LegReport

	// BaselineMaxTemps and MigratedMaxTemps hold each block's maximum
	// temperature over the respective thermal cycle, for heat-map
	// rendering.
	BaselineMaxTemps []float64
	MigratedMaxTemps []float64
}

// Run evaluates one scheme. The workload decodes BlocksPerPeriod blocks at
// each placement of the scheme's orbit, then migrates; the per-leg power
// maps (decode energy plus, unless excluded, migration energy) drive the
// thermal model to its quasi-steady cycle, which is compared against the
// static placement's steady state.
//
// Run is Characterize followed by Evaluate. Sweeps that vary only the
// period or the energy ablation should call the stages directly and reuse
// one characterization — the NoC simulation dominates and is identical
// across those variants.
func (s *System) Run(cfg RunConfig) (RunResult, error) {
	// Fail fast on a bad period before paying for characterization; the
	// stages own the rest of the validation.
	if cfg.BlocksPerPeriod < 0 {
		return RunResult{}, fmt.Errorf("core: BlocksPerPeriod %d < 1", cfg.BlocksPerPeriod)
	}
	ch, err := s.Characterize(cfg.Scheme)
	if err != nil {
		return RunResult{}, err
	}
	return s.Evaluate(ch, EvalConfig{
		BlocksPerPeriod:        cfg.BlocksPerPeriod,
		ExcludeMigrationEnergy: cfg.ExcludeMigrationEnergy,
		CycleOpts:              cfg.CycleOpts,
	})
}

func withLeak(opts thermal.CycleOptions, leak power.Leakage) thermal.CycleOptions {
	if opts.Leak == nil {
		opts.Leak = leak.Into
	}
	return opts
}
