package core

import (
	"fmt"

	"hotnoc/internal/appmap"
	"hotnoc/internal/geom"
	"hotnoc/internal/ldpc"
	"hotnoc/internal/power"
	"hotnoc/internal/thermal"
)

// System bundles one test chip: workload engine, network (inside the
// engine), thermal model, energy tables and the migration machinery.
type System struct {
	Grid geom.Grid
	// Therm is the chip's RC thermal model.
	Therm *thermal.Network
	// Energy is the (calibrated) per-event energy table.
	Energy power.Energy
	// Leak is the temperature-dependent leakage model.
	Leak power.Leakage
	// ClockHz converts cycles to seconds (default 250 MHz, a 160 nm-
	// plausible NoC clock).
	ClockHz float64
	// Engine executes the LDPC workload on the cycle-accurate NoC.
	Engine *appmap.Engine
	// Migrator executes state transfers.
	Migrator *Migrator
	// InitialPlace is the thermally-aware static placement (logical PE ->
	// physical block).
	InitialPlace []int
	// BlockSource supplies the channel LLRs for the block decoded at each
	// migration leg; it must be deterministic for reproducibility.
	BlockSource func(leg int) []ldpc.LLR
	// IO is the chip-boundary migration unit, advanced at each migration.
	IO *IOTranslator
	// IdleFrac is the fraction of a block's active power it keeps burning
	// while halted during a migration (clock trees and always-on logic;
	// ~35% of dynamic power at 160 nm). Longer migrations therefore cost
	// proportionally more energy — the reason rotation, with the most
	// transfer phases, has the largest reconfiguration energy penalty.
	IdleFrac float64
}

// Validate reports wiring mistakes.
func (s *System) Validate() error {
	if s.Therm == nil || s.Engine == nil || s.Migrator == nil {
		return fmt.Errorf("core: system missing thermal model, engine or migrator")
	}
	if s.Therm.NDie != s.Grid.N() {
		return fmt.Errorf("core: thermal model has %d blocks for %d PEs", s.Therm.NDie, s.Grid.N())
	}
	if s.ClockHz <= 0 {
		return fmt.Errorf("core: non-positive clock %g", s.ClockHz)
	}
	if len(s.InitialPlace) != s.Grid.N() {
		return fmt.Errorf("core: initial placement has %d entries for %d PEs",
			len(s.InitialPlace), s.Grid.N())
	}
	if s.BlockSource == nil {
		return fmt.Errorf("core: nil block source")
	}
	if s.IO == nil {
		return fmt.Errorf("core: nil I/O translator")
	}
	if s.IdleFrac < 0 || s.IdleFrac > 1 {
		return fmt.Errorf("core: IdleFrac %g outside [0,1]", s.IdleFrac)
	}
	return nil
}

// RunConfig selects a migration policy for one evaluation.
type RunConfig struct {
	// Scheme is the migration scheme under test.
	Scheme Scheme
	// BlocksPerPeriod sets the migration period in decoded blocks
	// (default 1 — the paper's 109 µs-class base period; 4 and 8
	// correspond to its 437.2 µs and 874.4 µs studies).
	BlocksPerPeriod int
	// ExcludeMigrationEnergy drops state-transfer and conversion energy
	// from the thermal schedule (ablation for the paper's rotation-energy
	// observation). Migration time is always modelled.
	ExcludeMigrationEnergy bool
	// CycleOpts overrides the thermal integrator options; zero values get
	// defaults.
	CycleOpts thermal.CycleOptions
}

// LegReport describes one leg (one placement dwell plus the following
// migration) of the quasi-steady thermal cycle.
type LegReport struct {
	// DecodeCycles is the duration of one block decode at this placement.
	DecodeCycles int64
	// Migration describes the state transfer that ends the leg.
	Migration MigrationStats
	// DecodeEnergyJ and MigrationEnergyJ split the leg's dissipation.
	DecodeEnergyJ    float64
	MigrationEnergyJ float64
}

// RunResult compares a migration scheme against the static baseline on the
// same chip, placement and workload.
type RunResult struct {
	// Baseline is the static thermally-aware placement's steady state.
	BaselinePeakC  float64
	BaselinePeakAt int
	BaselineMeanC  float64

	// Migrated is the quasi-steady thermal cycle under the scheme.
	MigratedPeakC  float64
	MigratedPeakAt int
	MigratedMeanC  float64

	// ReductionC = BaselinePeakC - MigratedPeakC (positive is good).
	ReductionC float64

	// ThroughputPenalty is migration downtime over total time.
	ThroughputPenalty float64
	// PeriodSec is the average migration period in seconds.
	PeriodSec float64
	// MigrationEnergyJ is the state-transfer energy per thermal cycle.
	MigrationEnergyJ float64

	// Legs details each placement dwell in orbit order.
	Legs []LegReport

	// BaselineMaxTemps and MigratedMaxTemps hold each block's maximum
	// temperature over the respective thermal cycle, for heat-map
	// rendering.
	BaselineMaxTemps []float64
	MigratedMaxTemps []float64
}

// Run evaluates one scheme. The workload decodes BlocksPerPeriod blocks at
// each placement of the scheme's orbit, then migrates; the per-leg power
// maps (decode energy plus, unless excluded, migration energy) drive the
// thermal model to its quasi-steady cycle, which is compared against the
// static placement's steady state.
//
// Traffic timing and event counts in the engine are data-independent
// (fixed iterations, partition-determined batching), so one decoded block
// per leg is measured and scaled to BlocksPerPeriod exactly.
func (s *System) Run(cfg RunConfig) (RunResult, error) {
	if err := s.Validate(); err != nil {
		return RunResult{}, err
	}
	if cfg.BlocksPerPeriod == 0 {
		cfg.BlocksPerPeriod = 1
	}
	if cfg.BlocksPerPeriod < 1 {
		return RunResult{}, fmt.Errorf("core: BlocksPerPeriod %d < 1", cfg.BlocksPerPeriod)
	}
	if cfg.Scheme.StepFn == nil {
		return RunResult{}, fmt.Errorf("core: no migration scheme configured")
	}
	g := s.Grid
	net := s.Engine.Net
	b := float64(cfg.BlocksPerPeriod)

	var res RunResult

	// ---- Static baseline -------------------------------------------------
	if err := s.Engine.SetPlacement(s.InitialPlace); err != nil {
		return RunResult{}, err
	}
	net.ResetStats()
	blk, err := s.Engine.Decode(s.BlockSource(0))
	if err != nil {
		return RunResult{}, fmt.Errorf("core: baseline decode: %w", err)
	}
	baseDur := float64(blk.Cycles) / s.ClockHz
	basePower := net.Act.PowerMap(s.Energy, baseDur)
	baseRes, err := thermal.RunCycle(s.Therm, []thermal.ScheduleEntry{{
		Power: basePower, Duration: baseDur, Label: "static",
	}}, withLeak(cfg.CycleOpts, s.Leak))
	if err != nil {
		return RunResult{}, fmt.Errorf("core: baseline thermal: %w", err)
	}
	res.BaselinePeakC, res.BaselinePeakAt = baseRes.PeakC, baseRes.PeakBlock
	res.BaselineMeanC = baseRes.MeanC
	res.BaselineMaxTemps = baseRes.MaxPerBlock

	// ---- Migration legs --------------------------------------------------
	orbit := cfg.Scheme.OrbitLen(g)
	place := append([]int(nil), s.InitialPlace...)
	entries := make([]thermal.ScheduleEntry, 0, orbit)
	var totalDecode, totalMig int64

	for leg := 0; leg < orbit; leg++ {
		if err := s.Engine.SetPlacement(place); err != nil {
			return RunResult{}, err
		}
		net.ResetStats()
		blk, err := s.Engine.Decode(s.BlockSource(leg))
		if err != nil {
			return RunResult{}, fmt.Errorf("core: leg %d decode: %w", leg, err)
		}
		decodeAct := net.Act.Clone()
		decodeEnergy := decodeAct.TotalEnergyJ(s.Energy)

		step := cfg.Scheme.Step(leg, g)
		perm := geom.FromTransform(g, step)
		net.ResetStats()
		mig, err := s.Migrator.Execute(perm)
		if err != nil {
			return RunResult{}, fmt.Errorf("core: leg %d migration: %w", leg, err)
		}
		migAct := net.Act.Clone()
		migEnergy := migAct.TotalEnergyJ(s.Energy)

		// Workload follows the plane: the PE at block p moves to perm(p).
		next := make([]int, len(place))
		for l, blkIdx := range place {
			next[l] = perm.Dst(blkIdx)
		}
		place = next
		s.IO.Advance(step)

		// One thermal entry per leg: B blocks of decode plus the migration
		// window, energy-folded into the leg's average power map. The
		// migration window (hundreds of cycles) is far below the die
		// thermal time constants, so folding loses nothing the RC model
		// could resolve.
		legDur := (b*float64(blk.Cycles) + float64(mig.Cycles)) / s.ClockHz
		legPower := make([]float64, g.N())
		for i := range legPower {
			e := b * decodeAct.BlockEnergyJ(s.Energy, i)
			if !cfg.ExcludeMigrationEnergy {
				// State transfer plus the idle-clock power the halted PEs
				// keep burning for the whole migration window.
				e += migAct.BlockEnergyJ(s.Energy, i) +
					s.IdleFrac*decodeAct.BlockEnergyJ(s.Energy, i)/float64(blk.Cycles)*float64(mig.Cycles)
			}
			legPower[i] = e / legDur
		}
		entries = append(entries, thermal.ScheduleEntry{
			Power: legPower, Duration: legDur,
			Label: fmt.Sprintf("leg %d (%s)", leg, step.Name),
		})

		migTotalEnergy := migEnergy +
			s.IdleFrac*decodeEnergy/float64(blk.Cycles)*float64(mig.Cycles)
		totalDecode += int64(b) * blk.Cycles
		totalMig += mig.Cycles
		res.Legs = append(res.Legs, LegReport{
			DecodeCycles:     blk.Cycles,
			Migration:        mig,
			DecodeEnergyJ:    b * decodeEnergy,
			MigrationEnergyJ: migTotalEnergy,
		})
		res.MigrationEnergyJ += migTotalEnergy
	}

	migRes, err := thermal.RunCycle(s.Therm, entries, withLeak(cfg.CycleOpts, s.Leak))
	if err != nil {
		return RunResult{}, fmt.Errorf("core: migrated thermal: %w", err)
	}
	res.MigratedPeakC, res.MigratedPeakAt = migRes.PeakC, migRes.PeakBlock
	res.MigratedMeanC = migRes.MeanC
	res.MigratedMaxTemps = migRes.MaxPerBlock
	res.ReductionC = res.BaselinePeakC - res.MigratedPeakC
	res.ThroughputPenalty = float64(totalMig) / float64(totalDecode+totalMig)
	res.PeriodSec = float64(totalDecode+totalMig) / float64(orbit) / s.ClockHz
	return res, nil
}

func withLeak(opts thermal.CycleOptions, leak power.Leakage) thermal.CycleOptions {
	if opts.Leak == nil {
		opts.Leak = leak.Func()
	}
	return opts
}
