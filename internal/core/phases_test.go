package core

import (
	"math/rand"
	"testing"

	"hotnoc/internal/geom"
)

// schemeSteps returns each scheme's first-step transform on an n x n grid.
func schemeSteps(n int) []geom.Transform {
	g := geom.NewGrid(n, n)
	var out []geom.Transform
	for _, s := range AllSchemes() {
		out = append(out, s.Step(0, g))
	}
	return out
}

// TestPhasesCoverAllTransfers: every moved PE appears in exactly one phase.
func TestPhasesCoverAllTransfers(t *testing.T) {
	for _, n := range []int{4, 5} {
		g := geom.NewGrid(n, n)
		for _, tr := range schemeSteps(n) {
			perm := geom.FromTransform(g, tr)
			phases := PlanPhases(g, perm)
			seen := map[int]int{}
			total := 0
			for _, ph := range phases {
				for _, xfer := range ph {
					if perm.Dst(xfer.Src) != xfer.Dst {
						t.Fatalf("%s: transfer %d->%d not in permutation", tr.Name, xfer.Src, xfer.Dst)
					}
					seen[xfer.Src]++
					total++
				}
			}
			moved := perm.Len() - len(perm.FixedPoints())
			if total != moved {
				t.Fatalf("%s on %dx%d: %d transfers planned, want %d", tr.Name, n, n, total, moved)
			}
			for src, count := range seen {
				if count != 1 {
					t.Fatalf("%s: source %d appears %d times", tr.Name, src, count)
				}
			}
		}
	}
}

// TestPhasesConflictFree property: within any phase, no directed link is
// used by two transfers — the congestion-freedom guarantee.
func TestPhasesConflictFree(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	check := func(g geom.Grid, perm geom.Perm) {
		t.Helper()
		for pi, ph := range PlanPhases(g, perm) {
			used := map[link]struct{}{}
			for _, xfer := range ph {
				for _, l := range xyRouteLinks(g, g.Coord(xfer.Src), g.Coord(xfer.Dst)) {
					if _, clash := used[l]; clash {
						t.Fatalf("phase %d reuses link %v", pi, l)
					}
					used[l] = struct{}{}
				}
			}
		}
	}
	// The paper's schemes on both grids.
	for _, n := range []int{4, 5} {
		g := geom.NewGrid(n, n)
		for _, tr := range schemeSteps(n) {
			check(g, geom.FromTransform(g, tr))
		}
	}
	// Random permutations for the general property.
	for iter := 0; iter < 50; iter++ {
		n := 2 + r.Intn(5)
		g := geom.NewGrid(n, n)
		perm, err := geom.NewPerm(g, r.Perm(g.N()))
		if err != nil {
			t.Fatal(err)
		}
		check(g, perm)
	}
}

// TestPhasesDeterministic: the plan is identical across calls — migration
// time is a pure function of the permutation, the paper's real-time
// requirement.
func TestPhasesDeterministic(t *testing.T) {
	g := geom.NewGrid(5, 5)
	perm := geom.FromTransform(g, geom.Rotation(5))
	a := PlanPhases(g, perm)
	b := PlanPhases(g, perm)
	if len(a) != len(b) {
		t.Fatalf("phase counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("phase %d sizes differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("phase %d transfer %d differs", i, j)
			}
		}
	}
}

// TestIdentityNeedsNoPhases: nothing to move, nothing to plan.
func TestIdentityNeedsNoPhases(t *testing.T) {
	g := geom.NewGrid(4, 4)
	if phases := PlanPhases(g, geom.IdentityPerm(g)); len(phases) != 0 {
		t.Fatalf("identity produced %d phases", len(phases))
	}
}

// TestRotationNeedsMostPhases: rotation's long, heavily-overlapping routes
// need at least as many phases as any other scheme on both grids — the
// structural reason it has the largest migration time overhead.
func TestRotationNeedsMostPhases(t *testing.T) {
	for _, n := range []int{4, 5} {
		g := geom.NewGrid(n, n)
		rot := PhaseCount(g, geom.Rotation(n))
		for _, s := range AllSchemes() {
			if s.Name == "Rot" {
				continue
			}
			if c := PhaseCount(g, s.Step(0, g)); c > rot {
				t.Errorf("%dx%d: %s needs %d phases > rotation's %d", n, n, s.Name, c, rot)
			}
		}
	}
}

// TestShiftPhasesSmall: the uniform-translation schemes pack into very few
// phases (their routes barely overlap), which keeps their migrations
// short.
func TestShiftPhasesSmall(t *testing.T) {
	for _, n := range []int{4, 5} {
		g := geom.NewGrid(n, n)
		if c := PhaseCount(g, geom.XTranslate(n, 1)); c > 2 {
			t.Errorf("right shift on %dx%d needs %d phases, want <= 2", n, n, c)
		}
		if c := PhaseCount(g, geom.XYTranslate(n, n, 1, 1)); c > 3 {
			t.Errorf("X-Y shift on %dx%d needs %d phases, want <= 3", n, n, c)
		}
	}
}

// TestXYRouteLinksLength: route link count equals the Manhattan distance.
func TestXYRouteLinksLength(t *testing.T) {
	g := geom.NewGrid(6, 6)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a := g.Coord(r.Intn(g.N()))
		b := g.Coord(r.Intn(g.N()))
		if got := len(xyRouteLinks(g, a, b)); got != a.Manhattan(b) {
			t.Fatalf("route %v->%v has %d links, want %d", a, b, got, a.Manhattan(b))
		}
	}
}
