package core_test

import (
	"fmt"

	"hotnoc/internal/core"
	"hotnoc/internal/geom"
)

// The migration unit at the chip boundary keeps reconfiguration invisible:
// external senders keep using original logical addresses forever.
func ExampleIOTranslator() {
	g := geom.NewGrid(4, 4)
	io := core.NewIOTranslator(g)
	io.Advance(geom.Rotation(4))
	io.Advance(geom.Rotation(4))

	logical := geom.Coord{X: 1, Y: 0}
	phys := io.InboundDst(logical)
	fmt.Println("deliver to", phys)
	fmt.Println("replies appear from", io.OutboundSrc(phys))
	// Output:
	// deliver to {2,3}
	// replies appear from {1,0}
}

// A migration decomposes into congestion-free phases: transfers within a
// phase share no directed link, so migration time is deterministic.
func ExamplePlanPhases() {
	g := geom.NewGrid(4, 4)
	perm := geom.FromTransform(g, geom.XYTranslate(4, 4, 1, 1))
	phases := core.PlanPhases(g, perm)
	fmt.Println("phases:", len(phases))
	total := 0
	for _, ph := range phases {
		total += len(ph)
	}
	fmt.Println("transfers:", total)
	// Output:
	// phases: 1
	// transfers: 16
}

// The bit-accurate hardware unit realises every Table 1 function with
// W-bit operands; an 8x8 (64-PE) array needs exactly the paper's 3 bits.
func ExampleHWMigrationUnit() {
	u, _ := core.NewHWMigrationUnit(8)
	fmt.Println("operand bits:", u.W)
	_ = u.Select(core.HWRotate, 0, 0)
	x, y, _ := u.Translate(1, 0)
	fmt.Printf("rotate (1,0) -> (%d,%d)\n", x, y)
	// Output:
	// operand bits: 3
	// rotate (1,0) -> (7,1)
}
