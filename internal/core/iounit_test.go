package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hotnoc/internal/geom"
)

// TestIOTranslatorTransparency is the paper's §2.3 property: after any
// sequence of migrations, an external sender addressing logical PE L
// reaches exactly the physical PE currently hosting L's workload, and a
// reply from that physical PE is labelled L on the way out.
func TestIOTranslatorTransparency(t *testing.T) {
	f := func(seed int64, nRaw, steps uint8) bool {
		n := 4 + int(nRaw%2) // 4x4 or 5x5
		g := geom.NewGrid(n, n)
		r := rand.New(rand.NewSource(seed))
		io := NewIOTranslator(g)
		schemes := AllSchemes()

		// Track ground truth: where each logical PE's workload lives.
		host := make([]geom.Coord, g.N()) // logical index -> physical coord
		for i := range host {
			host[i] = g.Coord(i)
		}
		k := 0
		for s := 0; s < int(steps%12); s++ {
			scheme := schemes[r.Intn(len(schemes))]
			step := scheme.Step(k, g)
			k++
			for i := range host {
				host[i] = step.Apply(g, host[i])
			}
			io.Advance(step)
		}
		for l := 0; l < g.N(); l++ {
			logical := g.Coord(l)
			phys := io.InboundDst(logical)
			if phys != host[l] {
				return false
			}
			if io.OutboundSrc(phys) != logical {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestIOTranslatorIdentityBeforeMigration: a fresh translator is a no-op.
func TestIOTranslatorIdentityBeforeMigration(t *testing.T) {
	g := geom.NewGrid(4, 4)
	io := NewIOTranslator(g)
	for _, c := range g.Coords() {
		if io.InboundDst(c) != c || io.OutboundSrc(c) != c {
			t.Fatalf("fresh translator moved %v", c)
		}
	}
	if io.Migrations() != 0 {
		t.Fatalf("fresh translator reports %d migrations", io.Migrations())
	}
}

// TestIOTranslatorFullOrbitReturnsToIdentity: advancing through a scheme's
// whole orbit restores the identity mapping.
func TestIOTranslatorFullOrbitReturnsToIdentity(t *testing.T) {
	for _, n := range []int{4, 5} {
		g := geom.NewGrid(n, n)
		for _, s := range AllSchemes() {
			io := NewIOTranslator(g)
			orbit := s.OrbitLen(g)
			for k := 0; k < orbit; k++ {
				io.Advance(s.Step(k, g))
			}
			for _, c := range g.Coords() {
				if io.InboundDst(c) != c {
					t.Errorf("%s on %dx%d: orbit did not return to identity at %v",
						s.Name, n, n, c)
				}
			}
			if io.Migrations() != orbit {
				t.Errorf("%s on %dx%d: %d migrations recorded, want %d",
					s.Name, n, n, io.Migrations(), orbit)
			}
		}
	}
}

// TestInboundOutboundInverse property: OutboundSrc is always the exact
// inverse of InboundDst.
func TestInboundOutboundInverse(t *testing.T) {
	g := geom.NewGrid(5, 5)
	io := NewIOTranslator(g)
	for k := 0; k < 7; k++ {
		io.Advance(XYShift().Step(k, g))
		for _, c := range g.Coords() {
			if io.OutboundSrc(io.InboundDst(c)) != c {
				t.Fatalf("after %d migrations: round trip broke at %v", k+1, c)
			}
		}
	}
}
