package core

import (
	"reflect"
	"testing"
)

// TestSplitMatchesRunAllSchemes: Characterize followed by Evaluate
// reproduces the fused Run result bitwise for every scheme on a scaled
// configuration.
func TestSplitMatchesRunAllSchemes(t *testing.T) {
	fusedSys := buildSystem(t, 4)
	splitSys := buildSystem(t, 4)
	for _, s := range AllSchemes() {
		fused, err := fusedSys.Run(RunConfig{Scheme: s})
		if err != nil {
			t.Fatalf("%s: fused run: %v", s.Name, err)
		}
		ch, err := splitSys.Characterize(s)
		if err != nil {
			t.Fatalf("%s: characterize: %v", s.Name, err)
		}
		split, err := splitSys.Evaluate(ch, EvalConfig{})
		if err != nil {
			t.Fatalf("%s: evaluate: %v", s.Name, err)
		}
		if !reflect.DeepEqual(fused, split) {
			t.Errorf("%s: split result differs from fused Run\nfused: %+v\nsplit: %+v",
				s.Name, fused, split)
		}
	}
}

// TestEvaluateSharesCharacterization: a three-period sweep on the split
// pipeline matches three fused Runs bitwise while decoding a third of the
// blocks — the NoC characterization is period-independent and runs once.
func TestEvaluateSharesCharacterization(t *testing.T) {
	fusedSys := buildSystem(t, 4)
	splitSys := buildSystem(t, 4)
	blocks := []int{1, 4, 8}

	ch, err := splitSys.Characterize(XYShift())
	if err != nil {
		t.Fatal(err)
	}
	splitDecodes := splitSys.Engine.Decodes
	fusedStart := fusedSys.Engine.Decodes
	for _, b := range blocks {
		fused, err := fusedSys.Run(RunConfig{Scheme: XYShift(), BlocksPerPeriod: b})
		if err != nil {
			t.Fatal(err)
		}
		split, err := splitSys.Evaluate(ch, EvalConfig{BlocksPerPeriod: b})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fused, split) {
			t.Errorf("blocks=%d: shared-characterization result differs from fused Run", b)
		}
	}
	if splitSys.Engine.Decodes != splitDecodes {
		t.Errorf("Evaluate decoded %d blocks; the thermal stage must not touch the NoC",
			splitSys.Engine.Decodes-splitDecodes)
	}
	fusedDecodes := fusedSys.Engine.Decodes - fusedStart
	if fusedDecodes < 2*splitDecodes {
		t.Errorf("split pipeline decoded %d blocks vs %d fused; want >= 2x fewer",
			splitDecodes, fusedDecodes)
	}
}

// TestEvaluateValidation covers the evaluation-stage error paths.
func TestEvaluateValidation(t *testing.T) {
	sys := buildSystem(t, 4)
	if _, err := sys.Evaluate(nil, EvalConfig{}); err == nil {
		t.Error("nil characterization accepted")
	}
	ch, err := sys.Characterize(Rot())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Evaluate(ch, EvalConfig{BlocksPerPeriod: -2}); err == nil {
		t.Error("negative period accepted")
	}
	if _, err := sys.Characterize(Scheme{}); err == nil {
		t.Error("nil scheme accepted")
	}
}

// TestCloneRunsIdentically: a clone — even one taken from a system that
// has already run — reproduces the original's results bitwise and leaves
// the original untouched.
func TestCloneRunsIdentically(t *testing.T) {
	sys := buildSystem(t, 4)
	orig, err := sys.Run(RunConfig{Scheme: Rot()})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := sys.Clone()
	if err != nil {
		t.Fatal(err)
	}
	cloned, err := cl.Run(RunConfig{Scheme: Rot()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, cloned) {
		t.Error("clone's run differs from the original's")
	}
	if cl.Engine == sys.Engine || cl.Migrator == sys.Migrator || cl.IO == sys.IO ||
		cl.Engine.Net == sys.Engine.Net {
		t.Error("clone shares mutable machinery with the original")
	}
	if cl.Therm != sys.Therm {
		t.Error("clone does not share the read-only thermal network")
	}
	again, err := sys.Run(RunConfig{Scheme: Rot()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, again) {
		t.Error("running the clone perturbed the original system")
	}
}
