package core

import (
	"fmt"
	"math/bits"

	"hotnoc/internal/geom"
)

// HWFunc selects the migration unit's datapath operation. The paper (§2.3)
// notes that one unit performs all migration functions "with only minor
// changes to the mathematical operations", so the function select is a
// runtime register, not a synthesis parameter.
type HWFunc uint8

// Datapath operations of the hardware migration unit.
const (
	HWIdentity HWFunc = iota
	HWRotate          // x' = N-1-y, y' = x  (Table 1: Rotation)
	HWMirrorX         // x' = N-1-x          (Table 1: X Mirroring)
	HWMirrorY         // y' = N-1-y
	HWShift           // x' = x+offX mod N, y' = y+offY mod N (Table 1: X Translation, generalised)
)

func (f HWFunc) String() string {
	switch f {
	case HWIdentity:
		return "identity"
	case HWRotate:
		return "rotate"
	case HWMirrorX:
		return "mirror-x"
	case HWMirrorY:
		return "mirror-y"
	case HWShift:
		return "shift"
	default:
		return fmt.Sprintf("HWFunc(%d)", uint8(f))
	}
}

// HWMigrationUnit is a register-transfer-level model of the paper's
// migration unit: two W-bit operand registers, one adder/subtractor, a
// complement stage (N-1 - v), a swap multiplexer and a conditional modulo
// subtractor. W = ceil(log2 N) bits per operand — 3 bits address up to 64
// PEs (§2.3) — and every intermediate value is masked to the datapath
// width, so the model fails loudly if a function would overflow the
// hardware registers.
//
// OpCounts accumulates datapath activity for energy estimation; the unit
// is combinational in a real implementation, so its latency is a single
// cycle regardless of function.
type HWMigrationUnit struct {
	// N is the array dimension (N x N PEs).
	N uint8
	// W is the operand width in bits.
	W uint8
	// Func is the currently selected operation.
	Func HWFunc
	// OffX, OffY are the translation offsets for HWShift.
	OffX, OffY uint8

	// OpCounts tracks datapath events since the last reset.
	OpCounts struct {
		Adds        uint64 // adder/subtractor activations
		Complements uint64 // N-1-v stages
		Swaps       uint64 // operand swap mux activations
		Mods        uint64 // conditional modulo subtractions
		Lookups     uint64 // total coordinate translations
	}
}

// NewHWMigrationUnit sizes the datapath for an n x n array.
// It returns an error if n needs more than 6 operand bits (64 PEs per
// axis would exceed the paper's stated 3-bit-per-axis, 64-PE envelope...
// the unit scales, but 8 bits is the model's register width ceiling).
func NewHWMigrationUnit(n int) (*HWMigrationUnit, error) {
	if n < 2 || n > 64 {
		return nil, fmt.Errorf("core: migration unit supports 2..64 PEs per axis, got %d", n)
	}
	w := uint8(bits.Len8(uint8(n - 1)))
	return &HWMigrationUnit{N: uint8(n), W: w}, nil
}

// Select reconfigures the unit's function at runtime (§2.3: "dynamic
// alteration of the migration function at runtime").
func (u *HWMigrationUnit) Select(f HWFunc, offX, offY uint8) error {
	if f > HWShift {
		return fmt.Errorf("core: unknown migration function %d", f)
	}
	if offX >= u.N || offY >= u.N {
		return fmt.Errorf("core: shift offsets (%d,%d) exceed array size %d", offX, offY, u.N)
	}
	u.Func = f
	u.OffX, u.OffY = offX, offY
	return nil
}

// mask keeps a value within the W-bit datapath, panicking on overflow —
// the model's stand-in for a register-width assertion in RTL.
func (u *HWMigrationUnit) mask(v uint16) uint8 {
	if v>>(u.W+1) != 0 {
		panic(fmt.Sprintf("core: migration unit datapath overflow: %d does not fit %d+1 bits", v, u.W))
	}
	return uint8(v)
}

// complement computes N-1-v on the complement stage.
func (u *HWMigrationUnit) complement(v uint8) uint8 {
	u.OpCounts.Complements++
	return u.mask(uint16(u.N-1) - uint16(v))
}

// addMod computes (a+b) mod N with one adder and a conditional subtractor.
func (u *HWMigrationUnit) addMod(a, b uint8) uint8 {
	u.OpCounts.Adds++
	s := uint16(a) + uint16(b)
	if s >= uint16(u.N) {
		u.OpCounts.Mods++
		s -= uint16(u.N)
	}
	return u.mask(s)
}

// Translate maps a PE coordinate through the selected function. Inputs and
// outputs are W-bit operands; out-of-range inputs are rejected as they
// would be by the unit's address decoder.
func (u *HWMigrationUnit) Translate(x, y uint8) (uint8, uint8, error) {
	if x >= u.N || y >= u.N {
		return 0, 0, fmt.Errorf("core: coordinate (%d,%d) outside %dx%d array", x, y, u.N, u.N)
	}
	u.OpCounts.Lookups++
	switch u.Func {
	case HWIdentity:
		return x, y, nil
	case HWRotate:
		// x' = N-1-y, y' = x: one complement plus the swap mux.
		u.OpCounts.Swaps++
		return u.complement(y), x, nil
	case HWMirrorX:
		return u.complement(x), y, nil
	case HWMirrorY:
		return x, u.complement(y), nil
	case HWShift:
		return u.addMod(x, u.OffX), u.addMod(y, u.OffY), nil
	default:
		return 0, 0, fmt.Errorf("core: unknown migration function %d", u.Func)
	}
}

// SelectForTransform configures the unit to implement a scheme step
// expressed as a geometry transform, returning an error for transforms the
// hardware cannot realise (the paper's unit covers exactly the Table 1
// family and compositions thereof via repeated application).
func (u *HWMigrationUnit) SelectForTransform(g geom.Grid, tr geom.Transform) error {
	if g.W != int(u.N) || g.H != int(u.N) {
		return fmt.Errorf("core: unit sized for %dx%d, transform grid is %dx%d", u.N, u.N, g.W, g.H)
	}
	cands := []struct {
		f          HWFunc
		offX, offY uint8
		ref        geom.Transform
	}{
		{HWIdentity, 0, 0, geom.Identity()},
		{HWRotate, 0, 0, geom.Rotation(g.W)},
		{HWMirrorX, 0, 0, geom.XMirror(g.W)},
		{HWMirrorY, 0, 0, geom.YMirror(g.H)},
	}
	for dx := 0; dx < g.W; dx++ {
		for dy := 0; dy < g.H; dy++ {
			if dx == 0 && dy == 0 {
				continue
			}
			cands = append(cands, struct {
				f          HWFunc
				offX, offY uint8
				ref        geom.Transform
			}{HWShift, uint8(dx), uint8(dy), geom.XYTranslate(g.W, g.H, dx, dy)})
		}
	}
	for _, c := range cands {
		if tr.EqualOn(g, c.ref) {
			return u.Select(c.f, c.offX, c.offY)
		}
	}
	return fmt.Errorf("core: transform %q is not realisable by the migration unit", tr.Name)
}

// ResetCounts zeroes the activity counters.
func (u *HWMigrationUnit) ResetCounts() {
	u.OpCounts = struct {
		Adds        uint64
		Complements uint64
		Swaps       uint64
		Mods        uint64
		Lookups     uint64
	}{}
}
