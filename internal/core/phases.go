package core

import (
	"hotnoc/internal/geom"
)

// Transfer is one PE's state movement during a migration: the full
// configuration and state of the workload at Src is converted and sent to
// Dst (block indices, row-major).
type Transfer struct {
	Src, Dst int
}

// Phase is a set of transfers whose XY routes share no directed link, so
// they proceed concurrently without congesting one another. Executing a
// migration as a sequence of such phases gives the deterministic migration
// times the paper needs for real-time guarantees (§2.2).
type Phase []Transfer

// PlanPhases decomposes the permutation induced by a migration into
// congestion-free phases with a deterministic greedy algorithm: transfers
// are considered in ascending source-block order and each is placed into
// the earliest phase where its XY route conflicts with no already-placed
// route. Fixed points generate no transfer.
func PlanPhases(g geom.Grid, perm geom.Perm) []Phase {
	type linkSet map[link]struct{}
	var phases []Phase
	var used []linkSet

	for src := 0; src < perm.Len(); src++ {
		dst := perm.Dst(src)
		if dst == src {
			continue
		}
		route := xyRouteLinks(g, g.Coord(src), g.Coord(dst))
		placed := false
		for p := range phases {
			if !conflicts(used[p], route) {
				phases[p] = append(phases[p], Transfer{Src: src, Dst: dst})
				addLinks(used[p], route)
				placed = true
				break
			}
		}
		if !placed {
			ls := linkSet{}
			addLinks(ls, route)
			phases = append(phases, Phase{{Src: src, Dst: dst}})
			used = append(used, ls)
		}
	}
	return phases
}

// link is a directed mesh link between adjacent blocks.
type link struct {
	from, to int
}

// xyRouteLinks returns the directed links of the XY route from src to dst.
func xyRouteLinks(g geom.Grid, src, dst geom.Coord) []link {
	var links []link
	cur := src
	for cur.X != dst.X {
		next := cur
		if dst.X > cur.X {
			next.X++
		} else {
			next.X--
		}
		links = append(links, link{g.Index(cur), g.Index(next)})
		cur = next
	}
	for cur.Y != dst.Y {
		next := cur
		if dst.Y > cur.Y {
			next.Y++
		} else {
			next.Y--
		}
		links = append(links, link{g.Index(cur), g.Index(next)})
		cur = next
	}
	return links
}

func conflicts(used map[link]struct{}, route []link) bool {
	for _, l := range route {
		if _, ok := used[l]; ok {
			return true
		}
	}
	return false
}

func addLinks(used map[link]struct{}, route []link) {
	for _, l := range route {
		used[l] = struct{}{}
	}
}

// PhaseCount is a convenience wrapper returning just the number of phases
// a scheme's k-th migration needs on grid g — the quantity behind the
// differing migration durations (and per-phase synchronization energy) of
// the schemes.
func PhaseCount(g geom.Grid, tr geom.Transform) int {
	return len(PlanPhases(g, geom.FromTransform(g, tr)))
}
