package core

import (
	"testing"
	"testing/quick"

	"hotnoc/internal/geom"
)

// TestHWUnitMatchesGeomTransforms: the bit-accurate datapath model agrees
// with the algebraic transforms on every coordinate of every array size
// the unit supports, for every function.
func TestHWUnitMatchesGeomTransforms(t *testing.T) {
	for n := 2; n <= 16; n++ {
		g := geom.NewGrid(n, n)
		u, err := NewHWMigrationUnit(n)
		if err != nil {
			t.Fatal(err)
		}
		refs := []struct {
			f   HWFunc
			ox  uint8
			oy  uint8
			ref geom.Transform
		}{
			{HWIdentity, 0, 0, geom.Identity()},
			{HWRotate, 0, 0, geom.Rotation(n)},
			{HWMirrorX, 0, 0, geom.XMirror(n)},
			{HWMirrorY, 0, 0, geom.YMirror(n)},
			{HWShift, 1, 0, geom.XTranslate(n, 1)},
			{HWShift, 1, 1, geom.XYTranslate(n, n, 1, 1)},
			{HWShift, uint8(n - 1), uint8(n / 2), geom.XYTranslate(n, n, n-1, n/2)},
		}
		for _, r := range refs {
			if err := u.Select(r.f, r.ox, r.oy); err != nil {
				t.Fatal(err)
			}
			for _, c := range g.Coords() {
				gx, gy, err := u.Translate(uint8(c.X), uint8(c.Y))
				if err != nil {
					t.Fatal(err)
				}
				want := r.ref.Apply(g, c)
				if int(gx) != want.X || int(gy) != want.Y {
					t.Fatalf("n=%d %s(%v) = (%d,%d), want %v", n, r.f, c, gx, gy, want)
				}
			}
		}
	}
}

// TestHWUnitOperandWidth verifies the paper's §2.3 claim: 3-bit operands
// suffice to address up to 64 PEs (an 8x8 array).
func TestHWUnitOperandWidth(t *testing.T) {
	cases := []struct {
		n int
		w uint8
	}{
		{2, 1}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {64, 6},
	}
	for _, c := range cases {
		u, err := NewHWMigrationUnit(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if u.W != c.w {
			t.Errorf("n=%d: width %d bits, want %d", c.n, u.W, c.w)
		}
	}
	// The paper's envelope: an 8x8 (64-PE) array needs exactly 3 bits.
	u, _ := NewHWMigrationUnit(8)
	if u.W != 3 {
		t.Fatalf("8x8 array needs %d-bit operands, paper says 3", u.W)
	}
}

// TestHWUnitSelectForTransform: the unit realises every scheme step the
// runtime manager can issue, and refuses transforms outside the family.
func TestHWUnitSelectForTransform(t *testing.T) {
	for _, n := range []int{4, 5} {
		g := geom.NewGrid(n, n)
		u, err := NewHWMigrationUnit(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range AllSchemes() {
			for k := 0; k < s.OrbitLen(g); k++ {
				step := s.Step(k, g)
				if err := u.SelectForTransform(g, step); err != nil {
					t.Fatalf("%s step %d on %dx%d: %v", s.Name, k, n, n, err)
				}
				for _, c := range g.Coords() {
					gx, gy, err := u.Translate(uint8(c.X), uint8(c.Y))
					if err != nil {
						t.Fatal(err)
					}
					want := step.Apply(g, c)
					if int(gx) != want.X || int(gy) != want.Y {
						t.Fatalf("%s step %d: hw (%d,%d) != %v", s.Name, k, gx, gy, want)
					}
				}
			}
		}
	}
}

// TestHWUnitRejectsBadInputs covers the address decoder and config checks.
func TestHWUnitRejectsBadInputs(t *testing.T) {
	if _, err := NewHWMigrationUnit(1); err == nil {
		t.Error("1x1 array accepted")
	}
	if _, err := NewHWMigrationUnit(65); err == nil {
		t.Error("65-wide array accepted")
	}
	u, _ := NewHWMigrationUnit(5)
	if err := u.Select(HWShift, 5, 0); err == nil {
		t.Error("offset >= N accepted")
	}
	if err := u.Select(HWFunc(9), 0, 0); err == nil {
		t.Error("unknown function accepted")
	}
	if _, _, err := u.Translate(5, 0); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
}

// TestHWUnitOpCounts: datapath activity matches the function's structure —
// rotation uses one complement and one swap per lookup, shifts two adders.
func TestHWUnitOpCounts(t *testing.T) {
	u, _ := NewHWMigrationUnit(5)
	if err := u.Select(HWRotate, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, _, err := u.Translate(uint8(i%5), uint8(i/5)); err != nil {
			t.Fatal(err)
		}
	}
	if u.OpCounts.Lookups != 25 || u.OpCounts.Complements != 25 || u.OpCounts.Swaps != 25 {
		t.Fatalf("rotation counts wrong: %+v", u.OpCounts)
	}
	if u.OpCounts.Adds != 0 {
		t.Fatalf("rotation used the adder: %+v", u.OpCounts)
	}
	u.ResetCounts()
	if err := u.Select(HWShift, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Translate(4, 4); err != nil {
		t.Fatal(err)
	}
	if u.OpCounts.Adds != 2 || u.OpCounts.Mods != 2 {
		t.Fatalf("wrapping shift counts wrong: %+v", u.OpCounts)
	}
}

// TestHWUnitBijective property: for random sizes and functions, the unit's
// map is a bijection of the array (no two PEs collide).
func TestHWUnitBijective(t *testing.T) {
	f := func(nRaw, fRaw, oxRaw, oyRaw uint8) bool {
		n := 2 + int(nRaw%15)
		u, err := NewHWMigrationUnit(n)
		if err != nil {
			return false
		}
		fn := HWFunc(fRaw % 5)
		if err := u.Select(fn, oxRaw%uint8(n), oyRaw%uint8(n)); err != nil {
			return false
		}
		seen := map[[2]uint8]bool{}
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				gx, gy, err := u.Translate(uint8(x), uint8(y))
				if err != nil {
					return false
				}
				k := [2]uint8{gx, gy}
				if seen[k] {
					return false
				}
				seen[k] = true
			}
		}
		return len(seen) == n*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
