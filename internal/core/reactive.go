package core

import (
	"fmt"
	"math"

	"hotnoc/internal/geom"
	"hotnoc/internal/thermal"
)

// ReactiveConfig configures threshold-triggered migration, the natural
// extension of the paper's fixed-period policy: on-die thermal sensors are
// sampled at every block boundary and the plane migrates only when the
// hottest sensor exceeds TriggerC. Between triggers the chip runs at full
// throughput, so a well-chosen threshold buys back most of the periodic
// policy's penalty while still capping the peak.
type ReactiveConfig struct {
	// Scheme supplies the transform applied at each triggered migration.
	Scheme Scheme
	// TriggerC is the sensor threshold in °C.
	TriggerC float64
	// SimBlocks is the simulation horizon in decoded blocks (default
	// 2048). The horizon must span several die thermal time constants
	// (~10 ms) for the controller to reach its operating regime.
	SimBlocks int
	// WarmupBlocks excludes the initial heat-up/settling transient from
	// the reported statistics (default SimBlocks/2); the full sensor
	// timeline is still returned in BlockPeaks.
	WarmupBlocks int
	// SensorQuantC is the sensor resolution; readings are floored to this
	// LSB as a real thermal diode's output would be (default 0.25 °C).
	SensorQuantC float64
	// Dt is the thermal integrator step (default 5 µs).
	Dt float64
}

func (c *ReactiveConfig) setDefaults() {
	if c.SimBlocks <= 0 {
		c.SimBlocks = 2048
	}
	if c.WarmupBlocks <= 0 {
		c.WarmupBlocks = c.SimBlocks / 2
	}
	if c.WarmupBlocks >= c.SimBlocks {
		c.WarmupBlocks = c.SimBlocks - 1
	}
	if c.SensorQuantC <= 0 {
		c.SensorQuantC = 0.25
	}
	if c.Dt <= 0 {
		c.Dt = 5e-6
	}
}

// ReactiveResult summarises a reactive run. Scalar statistics cover the
// post-warmup window, i.e. the controller's operating regime rather than
// the initial heat-up transient.
type ReactiveResult struct {
	// PeakC is the hottest die temperature after warmup.
	PeakC float64
	// MeanC is the time-averaged die temperature after warmup.
	MeanC float64
	// Migrations counts triggered reconfigurations after warmup.
	Migrations int
	// ThroughputPenalty is post-warmup migration downtime over total time.
	ThroughputPenalty float64
	// BlockPeaks records the sensor peak at every block boundary of the
	// whole horizon (including warmup), a timeline of the control
	// behaviour.
	BlockPeaks []float64
}

// legMeasurement caches the cycle-accurate measurement of one orbit
// position, so the reactive loop re-simulates neither decoding nor
// migration for placements it has already profiled.
type legMeasurement struct {
	decodeCycles int64
	decodePower  []float64
	migCycles    int64
	migPower     []float64
}

// RunReactive evaluates the threshold policy. The thermal state is
// integrated transiently from the static placement's warm steady state;
// at every block boundary the quantized sensor peak decides whether the
// next scheme step executes.
func (s *System) RunReactive(cfg ReactiveConfig) (ReactiveResult, error) {
	if err := s.Validate(); err != nil {
		return ReactiveResult{}, err
	}
	if cfg.Scheme.StepFn == nil {
		return ReactiveResult{}, fmt.Errorf("core: no migration scheme configured")
	}
	cfg.setDefaults()
	g := s.Grid
	net := s.Engine.Net
	orbit := cfg.Scheme.OrbitLen(g)
	leak := s.Leak.Func()

	// Profile orbit position k lazily: decode one block and execute the
	// k-th migration on the cycle-accurate network, converting activity
	// into power maps (including idle-clock power during the migration).
	cache := make(map[int]*legMeasurement)
	place := append([]int(nil), s.InitialPlace...)
	placeAt := map[int][]int{0: append([]int(nil), place...)}
	measure := func(k int) (*legMeasurement, error) {
		if m, ok := cache[k]; ok {
			return m, nil
		}
		pl, ok := placeAt[k]
		if !ok {
			return nil, fmt.Errorf("core: internal error: placement for leg %d not derived", k)
		}
		if err := s.Engine.SetPlacement(pl); err != nil {
			return nil, err
		}
		net.ResetStats()
		blk, err := s.Engine.Decode(s.BlockSource(k))
		if err != nil {
			return nil, err
		}
		decodeDur := float64(blk.Cycles) / s.ClockHz
		decodePower := net.Act.PowerMap(s.Energy, decodeDur)

		step := cfg.Scheme.Step(k, g)
		perm := geom.FromTransform(g, step)
		net.ResetStats()
		mig, err := s.Migrator.Execute(perm)
		if err != nil {
			return nil, err
		}
		migDur := float64(mig.Cycles) / s.ClockHz
		migPower := net.Act.PowerMap(s.Energy, migDur)
		for i := range migPower {
			migPower[i] += s.IdleFrac * decodePower[i]
		}

		next := make([]int, len(pl))
		for l, b := range pl {
			next[l] = perm.Dst(b)
		}
		placeAt[(k+1)%orbit] = next

		m := &legMeasurement{
			decodeCycles: blk.Cycles,
			decodePower:  decodePower,
			migCycles:    mig.Cycles,
			migPower:     migPower,
		}
		cache[k] = m
		return m, nil
	}

	// Warm-start the thermal state from the static placement's
	// leakage-closed steady state.
	first, err := measure(0)
	if err != nil {
		return ReactiveResult{}, err
	}
	ev, err := s.thermalEvaluator()
	if err != nil {
		return ReactiveResult{}, err
	}
	ss := ev.Steady()
	state := ss.SolveFull(first.decodePower)
	for it := 0; it < 50; it++ {
		die := s.Therm.DieTemps(state)
		pm := append([]float64(nil), first.decodePower...)
		for i, l := range leak(die) {
			pm[i] += l
		}
		next := ss.SolveFull(pm)
		if maxAbsDiff(next, state) < 1e-4 {
			state = next
			break
		}
		state = next
	}

	tr, err := ev.Transient(cfg.Dt)
	if err != nil {
		return ReactiveResult{}, err
	}
	tr.SetState(state, 0)

	res := ReactiveResult{PeakC: -math.MaxFloat64}
	pmBuf := make([]float64, g.N())
	var meanAcc float64
	var meanN int
	recording := false
	integrate := func(basePower []float64, durSec float64) {
		steps := int(math.Round(durSec / cfg.Dt))
		if steps < 1 {
			steps = 1
		}
		for i := 0; i < steps; i++ {
			die := tr.Die()
			copy(pmBuf, basePower)
			for j, l := range leak(die) {
				pmBuf[j] += l
			}
			tr.Step(pmBuf)
			if !recording {
				continue
			}
			die = tr.Die()
			p, _ := thermal.Peak(die)
			if p > res.PeakC {
				res.PeakC = p
			}
			meanAcc += thermal.Mean(die)
			meanN++
		}
	}

	k := 0
	var decodeCycles, migCycles int64
	for blk := 0; blk < cfg.SimBlocks; blk++ {
		recording = blk >= cfg.WarmupBlocks
		m, err := measure(k)
		if err != nil {
			return ReactiveResult{}, err
		}
		integrate(m.decodePower, float64(m.decodeCycles)/s.ClockHz)
		if recording {
			decodeCycles += m.decodeCycles
		}

		sensorPeak := quantize(maxOf(tr.Die()), cfg.SensorQuantC)
		res.BlockPeaks = append(res.BlockPeaks, sensorPeak)
		if sensorPeak > cfg.TriggerC {
			integrate(m.migPower, float64(m.migCycles)/s.ClockHz)
			if recording {
				migCycles += m.migCycles
				res.Migrations++
			}
			k = (k + 1) % orbit
		}
	}

	res.MeanC = meanAcc / float64(meanN)
	res.ThroughputPenalty = float64(migCycles) / float64(decodeCycles+migCycles)
	return res, nil
}

func quantize(v, lsb float64) float64 { return math.Floor(v/lsb) * lsb }

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
