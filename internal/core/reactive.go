package core

import (
	"fmt"
	"math"

	"hotnoc/internal/thermal"
)

// ReactiveConfig configures threshold-triggered migration, the natural
// extension of the paper's fixed-period policy: on-die thermal sensors are
// sampled at every block boundary and the plane migrates only when the
// hottest sensor exceeds TriggerC. Between triggers the chip runs at full
// throughput, so a well-chosen threshold buys back most of the periodic
// policy's penalty while still capping the peak.
type ReactiveConfig struct {
	// Scheme supplies the transform applied at each triggered migration.
	Scheme Scheme
	// TriggerC is the sensor threshold in °C.
	TriggerC float64
	// SimBlocks is the simulation horizon in decoded blocks (default
	// 2048). The horizon must span several die thermal time constants
	// (~10 ms) for the controller to reach its operating regime.
	SimBlocks int
	// WarmupBlocks excludes the initial heat-up/settling transient from
	// the reported statistics (default SimBlocks/2); the full sensor
	// timeline is still returned in BlockPeaks.
	WarmupBlocks int
	// SensorQuantC is the sensor resolution; readings are floored to this
	// LSB as a real thermal diode's output would be (default 0.25 °C).
	SensorQuantC float64
	// Dt is the thermal integrator step (default 5 µs).
	Dt float64
	// PeaksEvery downsamples the BlockPeaks timeline: the sensor reading
	// is recorded at every PeaksEvery-th block boundary (blocks 0, k, 2k,
	// ...). 0 or 1 records every boundary (the default); a negative value
	// omits the timeline entirely. High-horizon remote sweeps use it to
	// stop shipping one float per block over the wire. Only the reported
	// timeline thins — the trigger decision still samples every boundary,
	// so the policy outcome is unchanged.
	PeaksEvery int
}

// Normalized returns the config with defaults applied and the warmup
// clamped — the exact values EvaluateReactive runs with. Reporting
// layers use it so displayed horizons and warmups match what actually
// ran instead of re-deriving the defaulting rules.
func (c ReactiveConfig) Normalized() ReactiveConfig {
	c.setDefaults()
	return c
}

func (c *ReactiveConfig) setDefaults() {
	if c.SimBlocks <= 0 {
		c.SimBlocks = 2048
	}
	if c.WarmupBlocks <= 0 {
		c.WarmupBlocks = c.SimBlocks / 2
	}
	if c.WarmupBlocks >= c.SimBlocks {
		c.WarmupBlocks = c.SimBlocks - 1
	}
	if c.SensorQuantC <= 0 {
		c.SensorQuantC = 0.25
	}
	if c.Dt <= 0 {
		c.Dt = 5e-6
	}
	if c.PeaksEvery == 0 {
		c.PeaksEvery = 1
	}
}

// ReactiveResult summarises a reactive run. Scalar statistics cover the
// post-warmup window, i.e. the controller's operating regime rather than
// the initial heat-up transient.
type ReactiveResult struct {
	// PeakC is the hottest die temperature after warmup.
	PeakC float64
	// MeanC is the time-averaged die temperature after warmup.
	MeanC float64
	// Migrations counts triggered reconfigurations after warmup.
	Migrations int
	// ThroughputPenalty is post-warmup migration downtime over total time.
	ThroughputPenalty float64
	// BlockPeaks records the sensor peak at block boundaries of the whole
	// horizon (including warmup), a timeline of the control behaviour.
	// By default every boundary is recorded; ReactiveConfig.PeaksEvery
	// downsamples or omits the timeline.
	BlockPeaks []float64
}

// legMeasurement is one orbit position's power-map view of a
// characterization leg, the unit the reactive controller schedules.
type legMeasurement struct {
	decodeCycles int64
	decodePower  []float64
	migCycles    int64
	migPower     []float64
}

// RunReactive evaluates the threshold policy. It is Characterize followed
// by EvaluateReactive: reactive parameter sweeps (trigger thresholds,
// sensor quantisation, horizons) should call the stages directly and
// reuse one characterization, exactly as periodic period/ablation sweeps
// do.
func (s *System) RunReactive(cfg ReactiveConfig) (ReactiveResult, error) {
	if err := s.Validate(); err != nil {
		return ReactiveResult{}, err
	}
	if cfg.Scheme.StepFn == nil {
		return ReactiveResult{}, fmt.Errorf("core: no migration scheme configured")
	}
	ch, err := s.Characterize(cfg.Scheme)
	if err != nil {
		return ReactiveResult{}, err
	}
	return s.EvaluateReactive(ch, cfg)
}

// EvaluateReactive runs the threshold policy against an existing
// characterization: the thermal state is integrated transiently from the
// static placement's warm steady state, and at every block boundary the
// quantized sensor peak decides whether the next orbit step executes. No
// NoC simulation happens here — the orbit's per-leg activity comes from
// ch, so many reactive evaluations (different triggers, quantisations,
// horizons) amortise one Characterize. Results are bitwise identical to
// the fused RunReactive.
func (s *System) EvaluateReactive(ch *Characterization, cfg ReactiveConfig) (ReactiveResult, error) {
	if err := s.Validate(); err != nil {
		return ReactiveResult{}, err
	}
	if ch == nil || len(ch.Legs) == 0 {
		return ReactiveResult{}, fmt.Errorf("core: empty characterization")
	}
	if cfg.Scheme.StepFn == nil {
		return ReactiveResult{}, fmt.Errorf("core: no migration scheme configured")
	}
	if cfg.Scheme.Name != ch.Scheme.Name {
		return ReactiveResult{}, fmt.Errorf("core: reactive config selects scheme %q but characterization is for %q",
			cfg.Scheme.Name, ch.Scheme.Name)
	}
	cfg.setDefaults()
	g := s.Grid
	orbit := len(ch.Legs)

	// Convert each characterized leg into the controller's power-map view:
	// average decode power over the decode window, and migration power over
	// the migration window plus the idle-clock power the halted PEs keep
	// burning. The arithmetic mirrors Activity.PowerMap so the result is
	// bit-identical to measuring the leg live.
	legs := make([]*legMeasurement, orbit)
	measure := func(k int) (*legMeasurement, error) {
		if m := legs[k]; m != nil {
			return m, nil
		}
		la := ch.Legs[k]
		decodeDur := float64(la.DecodeCycles) / s.ClockHz
		decodePower := make([]float64, g.N())
		for i, e := range la.DecodeBlockJ {
			decodePower[i] = e / decodeDur
		}
		migDur := float64(la.Migration.Cycles) / s.ClockHz
		migPower := make([]float64, g.N())
		for i, e := range la.MigBlockJ {
			migPower[i] = e / migDur
		}
		for i := range migPower {
			migPower[i] += s.IdleFrac * decodePower[i]
		}
		m := &legMeasurement{
			decodeCycles: la.DecodeCycles,
			decodePower:  decodePower,
			migCycles:    la.Migration.Cycles,
			migPower:     migPower,
		}
		legs[k] = m
		return m, nil
	}

	// Warm-start the thermal state from the static placement's
	// leakage-closed steady state.
	first, err := measure(0)
	if err != nil {
		return ReactiveResult{}, err
	}
	ev, err := s.thermalEvaluator()
	if err != nil {
		return ReactiveResult{}, err
	}
	// Scratch for the integration hot loop: die temperatures, leakage map
	// and per-step power map are reused across every step of the horizon.
	dieBuf := make([]float64, g.N())
	leakBuf := make([]float64, g.N())
	pmBuf := make([]float64, g.N())

	ss := ev.Steady()
	state := make([]float64, s.Therm.NNodes)
	next := make([]float64, s.Therm.NNodes)
	ss.SolveFullInto(state, first.decodePower)
	for it := 0; it < 50; it++ {
		s.Therm.DieTempsInto(dieBuf, state)
		s.Leak.Into(leakBuf, dieBuf)
		copy(pmBuf, first.decodePower)
		for i, l := range leakBuf {
			pmBuf[i] += l
		}
		ss.SolveFullInto(next, pmBuf)
		done := maxAbsDiff(next, state) < 1e-4
		state, next = next, state
		if done {
			break
		}
	}

	tr, err := ev.Transient(cfg.Dt)
	if err != nil {
		return ReactiveResult{}, err
	}
	tr.SetState(state, 0)

	res := ReactiveResult{PeakC: -math.MaxFloat64}
	var meanAcc float64
	var meanN int
	recording := false
	integrate := func(basePower []float64, durSec float64) {
		steps := int(math.Round(durSec / cfg.Dt))
		if steps < 1 {
			steps = 1
		}
		for i := 0; i < steps; i++ {
			tr.DieInto(dieBuf)
			s.Leak.Into(leakBuf, dieBuf)
			copy(pmBuf, basePower)
			for j, l := range leakBuf {
				pmBuf[j] += l
			}
			tr.Step(pmBuf)
			if !recording {
				continue
			}
			tr.DieInto(dieBuf)
			p, _ := thermal.Peak(dieBuf)
			if p > res.PeakC {
				res.PeakC = p
			}
			meanAcc += thermal.Mean(dieBuf)
			meanN++
		}
	}

	k := 0
	var decodeCycles, migCycles int64
	for blk := 0; blk < cfg.SimBlocks; blk++ {
		recording = blk >= cfg.WarmupBlocks
		m, err := measure(k)
		if err != nil {
			return ReactiveResult{}, err
		}
		integrate(m.decodePower, float64(m.decodeCycles)/s.ClockHz)
		if recording {
			decodeCycles += m.decodeCycles
		}

		tr.DieInto(dieBuf)
		sensorPeak := quantize(maxOf(dieBuf), cfg.SensorQuantC)
		if cfg.PeaksEvery > 0 && blk%cfg.PeaksEvery == 0 {
			res.BlockPeaks = append(res.BlockPeaks, sensorPeak)
		}
		if sensorPeak > cfg.TriggerC {
			integrate(m.migPower, float64(m.migCycles)/s.ClockHz)
			if recording {
				migCycles += m.migCycles
				res.Migrations++
			}
			k = (k + 1) % orbit
		}
	}

	res.MeanC = meanAcc / float64(meanN)
	res.ThroughputPenalty = float64(migCycles) / float64(decodeCycles+migCycles)
	return res, nil
}

func quantize(v, lsb float64) float64 { return math.Floor(v/lsb) * lsb }

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
