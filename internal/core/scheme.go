// Package core implements the paper's contribution: hotspot prevention by
// periodic runtime reconfiguration of a NoC. Every migration period the
// logical workload plane is moved by one of the algebraic transformations
// of Table 1 (rotation, mirroring, translation); the migration itself is
// executed as congestion-free phased state transfers over the network, the
// chip's I/O interface re-targets external addresses through a cumulative
// transform so the reconfiguration is transparent to the outside world, and
// a runtime manager co-simulates workload, migration and the thermal RC
// model to evaluate peak-temperature reduction, throughput penalty and
// migration energy.
package core

import (
	"fmt"
	"strings"

	"hotnoc/internal/geom"
)

// Scheme is one of the paper's migration policies. A scheme supplies the
// transform applied at the k-th migration; most schemes repeat a single
// transform, while X-Y mirroring alternates the mirror axis so that the
// plane visits four distinct placements (the same orbit richness as
// rotation) at half the per-migration state movement.
type Scheme struct {
	// Name matches the paper's Figure 1 series labels.
	Name string
	// StepFn returns the transform for migration k (0-based) on grid g.
	StepFn func(k int, g geom.Grid) geom.Transform
}

// Step returns the k-th migration transform for grid g.
func (s Scheme) Step(k int, g geom.Grid) geom.Transform { return s.StepFn(k, g) }

// OrbitLen returns the number of migrations after which the cumulative
// transform returns to the identity — the length of the thermal cycle the
// chip settles into under this scheme.
func (s Scheme) OrbitLen(g geom.Grid) int {
	id := geom.Identity()
	cum := geom.Identity()
	for k := 0; k < 4*g.N(); k++ {
		cum = cum.Compose(s.Step(k, g))
		if cum.EqualOn(g, id) {
			return k + 1
		}
	}
	panic(fmt.Sprintf("core: scheme %q does not cycle within %d migrations on %dx%d",
		s.Name, 4*g.N(), g.W, g.H))
}

// Placements returns the cumulative placements the workload visits,
// starting from (and excluding a return to) the initial one: entry k is
// the cumulative transform after k migrations, k = 0..OrbitLen-1.
func (s Scheme) Placements(g geom.Grid) []geom.Transform {
	n := s.OrbitLen(g)
	out := make([]geom.Transform, n)
	cum := geom.Identity()
	out[0] = cum
	for k := 1; k < n; k++ {
		cum = cum.Compose(s.Step(k-1, g))
		out[k] = cum
	}
	return out
}

// The paper's five schemes.

// Rot rotates the plane 90° every period.
func Rot() Scheme {
	return Scheme{
		Name:   "Rot",
		StepFn: func(_ int, g geom.Grid) geom.Transform { return geom.Rotation(g.W) },
	}
}

// XMirrorScheme reflects across the vertical centre line every period
// (an involution: the plane alternates between two placements).
func XMirrorScheme() Scheme {
	return Scheme{
		Name:   "X Mirror",
		StepFn: func(_ int, g geom.Grid) geom.Transform { return geom.XMirror(g.W) },
	}
}

// XYMirrorScheme alternates X and Y mirroring on successive periods, so
// the cumulative transform walks I -> Mx -> MxMy -> My -> I and the
// workload visits four placements.
func XYMirrorScheme() Scheme {
	return Scheme{
		Name: "X-Y Mirror",
		StepFn: func(k int, g geom.Grid) geom.Transform {
			if k%2 == 0 {
				return geom.XMirror(g.W)
			}
			return geom.YMirror(g.H)
		},
	}
}

// RightShift translates the plane one column east (with wraparound) every
// period.
func RightShift() Scheme {
	return Scheme{
		Name:   "Right Shift",
		StepFn: func(_ int, g geom.Grid) geom.Transform { return geom.XTranslate(g.W, 1) },
	}
}

// XYShift translates the plane diagonally by (1,1) every period — the
// paper's best scheme on average.
func XYShift() Scheme {
	return Scheme{
		Name:   "X-Y Shift",
		StepFn: func(_ int, g geom.Grid) geom.Transform { return geom.XYTranslate(g.W, g.H, 1, 1) },
	}
}

// AllSchemes returns the paper's five schemes in Figure 1 order.
func AllSchemes() []Scheme {
	return []Scheme{Rot(), XMirrorScheme(), XYMirrorScheme(), RightShift(), XYShift()}
}

// SchemeByName resolves a scheme from a CLI-style name (case-insensitive,
// ignoring spaces and hyphens): "rot", "xmirror", "xymirror",
// "rightshift", "xyshift".
func SchemeByName(name string) (Scheme, error) {
	norm := strings.ToLower(strings.NewReplacer(" ", "", "-", "", "_", "").Replace(name))
	for _, s := range AllSchemes() {
		cand := strings.ToLower(strings.NewReplacer(" ", "", "-", "", "_", "").Replace(s.Name))
		if cand == norm {
			return s, nil
		}
	}
	return Scheme{}, fmt.Errorf("core: unknown migration scheme %q", name)
}
