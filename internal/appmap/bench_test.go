package appmap

import (
	"testing"

	"hotnoc/internal/geom"
	"hotnoc/internal/ldpc"
	"hotnoc/internal/noc"
)

// BenchmarkDecodeOnNoC measures one distributed block decode at paper
// scale (n=2560 over a 4x4 mesh, 16 iterations) — the dominant cost of
// every experiment leg.
func BenchmarkDecodeOnNoC(b *testing.B) {
	code, err := ldpc.NewRegular(2560, 1280, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	part, err := Skewed(code, 16, 4, 0.5, 2)
	if err != nil {
		b.Fatal(err)
	}
	net, err := noc.New(geom.NewGrid(4, 4), noc.Config{})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewEngine(code, part, net)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := ldpc.NewChannel(2.5, code.Rate(), 3)
	if err != nil {
		b.Fatal(err)
	}
	cw, err := code.Encode(make([]uint8, code.K()))
	if err != nil {
		b.Fatal(err)
	}
	llr := ch.Transmit(cw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Decode(llr); err != nil {
			b.Fatal(err)
		}
	}
}
