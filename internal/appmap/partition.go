// Package appmap maps the LDPC decoder onto the NoC: it partitions the
// Tanner graph across processing elements and executes message-passing
// decoding cycle-accurately on the mesh, producing the switching activity,
// per-block timing and traffic irregularity that drive the thermal
// evaluation. Partitions are expressed over *logical* PEs; a placement
// vector maps logical PEs to physical blocks, which is exactly the level at
// which the paper's runtime reconfiguration operates (the logical plane
// moves, the partition does not).
package appmap

import (
	"fmt"
	"math/rand"

	"hotnoc/internal/ldpc"
)

// Partition assigns every variable and check node to a logical PE.
type Partition struct {
	NPE     int
	VarPE   []int
	CheckPE []int
}

// Validate checks index ranges and that every PE owns at least one node.
func (p *Partition) Validate(code *ldpc.Code) error {
	if len(p.VarPE) != code.N || len(p.CheckPE) != code.M {
		return fmt.Errorf("appmap: partition covers %d vars, %d checks; code has %d, %d",
			len(p.VarPE), len(p.CheckPE), code.N, code.M)
	}
	used := make([]bool, p.NPE)
	for v, pe := range p.VarPE {
		if pe < 0 || pe >= p.NPE {
			return fmt.Errorf("appmap: variable %d on PE %d of %d", v, pe, p.NPE)
		}
		used[pe] = true
	}
	for c, pe := range p.CheckPE {
		if pe < 0 || pe >= p.NPE {
			return fmt.Errorf("appmap: check %d on PE %d of %d", c, pe, p.NPE)
		}
		used[pe] = true
	}
	for pe, u := range used {
		if !u {
			return fmt.Errorf("appmap: PE %d owns no nodes", pe)
		}
	}
	return nil
}

// Contiguous stripes variables and checks across PEs in index order —
// the balanced baseline partition.
func Contiguous(code *ldpc.Code, npe int) *Partition {
	p := &Partition{NPE: npe, VarPE: make([]int, code.N), CheckPE: make([]int, code.M)}
	for v := range p.VarPE {
		p.VarPE[v] = v * npe / code.N
	}
	for c := range p.CheckPE {
		p.CheckPE[c] = c * npe / code.M
	}
	return p
}

// Interleaved deals nodes round-robin, maximising traffic spread (an
// all-to-all communication pattern).
func Interleaved(code *ldpc.Code, npe int) *Partition {
	p := &Partition{NPE: npe, VarPE: make([]int, code.N), CheckPE: make([]int, code.M)}
	for v := range p.VarPE {
		p.VarPE[v] = v % npe
	}
	for c := range p.CheckPE {
		p.CheckPE[c] = c % npe
	}
	return p
}

// Skewed concentrates check processing: a fraction `heavyShare` of all
// checks lands on the first `heavyPEs` PEs (variables stay striped). This
// reproduces the paper's observation that configurations differ in "the
// amount of computation mapped to a single PE" — check nodes dominate
// decoder energy, so these PEs become the hotspot candidates.
func Skewed(code *ldpc.Code, npe, heavyPEs int, heavyShare float64, seed int64) (*Partition, error) {
	if heavyPEs < 1 || heavyPEs >= npe {
		return nil, fmt.Errorf("appmap: heavyPEs %d outside [1,%d)", heavyPEs, npe)
	}
	if heavyShare <= 0 || heavyShare >= 1 {
		return nil, fmt.Errorf("appmap: heavyShare %g outside (0,1)", heavyShare)
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Partition{NPE: npe, VarPE: make([]int, code.N), CheckPE: make([]int, code.M)}
	for v := range p.VarPE {
		p.VarPE[v] = v * npe / code.N
	}
	for c := range p.CheckPE {
		if rng.Float64() < heavyShare {
			p.CheckPE[c] = rng.Intn(heavyPEs)
		} else {
			p.CheckPE[c] = heavyPEs + rng.Intn(npe-heavyPEs)
		}
	}
	return p, nil
}

// SkewedBoth concentrates both check and variable processing on the heavy
// PEs: heavyShare of the checks and varShare of the variables land on the
// first heavyPEs PEs. Because variable-heavy PEs also carry the chip's
// LLR/decision I/O traffic, this is the partition shape that produces the
// paper's warm bands near the I/O interface.
func SkewedBoth(code *ldpc.Code, npe, heavyPEs int, heavyShare, varShare float64, seed int64) (*Partition, error) {
	p, err := Skewed(code, npe, heavyPEs, heavyShare, seed)
	if err != nil {
		return nil, err
	}
	if varShare <= 0 || varShare >= 1 {
		return nil, fmt.Errorf("appmap: varShare %g outside (0,1)", varShare)
	}
	rng := rand.New(rand.NewSource(seed + 0x5eed))
	for v := range p.VarPE {
		if rng.Float64() < varShare {
			p.VarPE[v] = rng.Intn(heavyPEs)
		} else {
			p.VarPE[v] = heavyPEs + rng.Intn(npe-heavyPEs)
		}
	}
	return p, nil
}

// OpsPerPE returns each logical PE's message computations per decoding
// iteration (check-phase plus variable-phase edge updates) — the compute
// load that, multiplied by per-op energy, sets the PE's dynamic power.
func OpsPerPE(code *ldpc.Code, p *Partition) []int64 {
	ops := make([]int64, p.NPE)
	for c, nbrs := range code.CheckNbrs {
		ops[p.CheckPE[c]] += int64(len(nbrs))
	}
	for v, nbrs := range code.VarNbrs {
		ops[p.VarPE[v]] += int64(len(nbrs))
	}
	return ops
}

// TrafficMatrix returns the number of inter-PE messages per decoding
// iteration between each ordered logical PE pair (messages between nodes
// on the same PE never enter the network). Both decoder phases contribute:
// edge (c,v) sends PE(c)->PE(v) in the check phase and PE(v)->PE(c) in the
// variable phase.
func TrafficMatrix(code *ldpc.Code, p *Partition) [][]int64 {
	m := make([][]int64, p.NPE)
	for i := range m {
		m[i] = make([]int64, p.NPE)
	}
	for c, nbrs := range code.CheckNbrs {
		cp := p.CheckPE[c]
		for _, v := range nbrs {
			vp := p.VarPE[v]
			if cp != vp {
				m[cp][vp]++
				m[vp][cp]++
			}
		}
	}
	return m
}
