package appmap

import (
	"fmt"
	"sort"

	"hotnoc/internal/noc"
)

// SyntheticWorkload describes a generic bulk-synchronous workload without
// reference to any particular application: in every round each logical PE
// computes Ops[i] operations and then exchanges Traffic[i][j] messages
// with its peers. This lets downstream users evaluate runtime
// reconfiguration for workloads other than the paper's LDPC decoder —
// DSP pipelines, stencil kernels, packet processing — by profiling just
// two vectors.
type SyntheticWorkload struct {
	// Ops[i] is logical PE i's computation per round.
	Ops []int64
	// Traffic[i][j] is the number of messages PE i sends PE j per round.
	Traffic [][]int64
	// MsgsPerFlit batches messages into flits (default 8).
	MsgsPerFlit int
	// CyclesPerOp is the PE cost of one operation (default 1).
	CyclesPerOp int
	// RoundOverhead is the fixed per-round pipeline ramp (default 8).
	RoundOverhead int
}

func (w *SyntheticWorkload) setDefaults() {
	if w.MsgsPerFlit == 0 {
		w.MsgsPerFlit = 8
	}
	if w.CyclesPerOp == 0 {
		w.CyclesPerOp = 1
	}
	if w.RoundOverhead == 0 {
		w.RoundOverhead = 8
	}
}

// Validate reports structural problems.
func (w *SyntheticWorkload) Validate() error {
	n := len(w.Ops)
	if n == 0 {
		return fmt.Errorf("appmap: synthetic workload has no PEs")
	}
	if len(w.Traffic) != n {
		return fmt.Errorf("appmap: traffic matrix is %dx? for %d PEs", len(w.Traffic), n)
	}
	for i, row := range w.Traffic {
		if len(row) != n {
			return fmt.Errorf("appmap: traffic row %d has %d entries for %d PEs", i, len(row), n)
		}
		if row[i] != 0 {
			return fmt.Errorf("appmap: PE %d has self traffic", i)
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("appmap: negative traffic %d at (%d,%d)", v, i, j)
			}
		}
	}
	for i, o := range w.Ops {
		if o < 0 {
			return fmt.Errorf("appmap: negative ops %d at PE %d", o, i)
		}
	}
	if w.MsgsPerFlit < 1 || w.CyclesPerOp < 1 || w.RoundOverhead < 0 {
		return fmt.Errorf("appmap: invalid synthetic workload parameters")
	}
	return nil
}

// syntheticBatch is the payload of one synthetic inter-PE packet.
type syntheticBatch struct {
	SrcPE, DstPE int
	Msgs         int64
}

// SyntheticEngine runs a SyntheticWorkload on the cycle-accurate NoC with
// the same bulk-synchronous semantics as the LDPC engine: PEs compute,
// ship their batches, and the round ends when every expected batch has
// arrived.
type SyntheticEngine struct {
	W   *SyntheticWorkload
	Net *noc.Network

	place   []int
	expect  int // batches delivered per round (static)
	pending int
}

// NewSyntheticEngine wires a workload to a mesh; the workload's PE count
// must match the mesh size. The initial placement is the identity.
func NewSyntheticEngine(w *SyntheticWorkload, net *noc.Network) (*SyntheticEngine, error) {
	w.setDefaults()
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if len(w.Ops) != net.Grid.N() {
		return nil, fmt.Errorf("appmap: workload has %d PEs for a %d-node mesh",
			len(w.Ops), net.Grid.N())
	}
	e := &SyntheticEngine{W: w, Net: net, place: make([]int, len(w.Ops))}
	for i := range e.place {
		e.place[i] = i
	}
	for i, row := range w.Traffic {
		for j, v := range row {
			if v > 0 && i != j {
				e.expect++
			}
		}
	}
	return e, nil
}

// SetPlacement installs a new logical-to-physical mapping.
func (e *SyntheticEngine) SetPlacement(place []int) error {
	if len(place) != len(e.place) {
		return fmt.Errorf("appmap: placement has %d entries for %d PEs", len(place), len(e.place))
	}
	seen := make([]bool, len(place))
	for _, b := range place {
		if b < 0 || b >= len(place) || seen[b] {
			return fmt.Errorf("appmap: placement is not a bijection")
		}
		seen[b] = true
	}
	copy(e.place, place)
	return nil
}

// Placement returns a copy of the current mapping.
func (e *SyntheticEngine) Placement() []int { return append([]int(nil), e.place...) }

// RunRound executes one bulk-synchronous round cycle-accurately and
// returns its duration in cycles. Activity (PE ops plus all network
// events) accumulates in the network's counters exactly as for the LDPC
// engine, so the same power and thermal pipeline applies.
func (e *SyntheticEngine) RunRound() (int64, error) {
	w := e.W
	net := e.Net
	start := net.Cycle

	prevDeliver := net.Deliver
	defer func() { net.Deliver = prevDeliver }()
	e.pending = e.expect
	net.Deliver = func(pkt *noc.Packet) {
		if _, ok := pkt.Payload.(*syntheticBatch); ok {
			e.pending--
			return
		}
		if prevDeliver != nil {
			prevDeliver(pkt)
		}
	}

	type send struct {
		at  int64
		pkt *noc.Packet
	}
	var sends []send
	maxReady := start
	for p := range w.Ops {
		net.Act.PEOps[e.place[p]] += uint64(w.Ops[p])
		ready := start + int64(w.Ops[p])*int64(w.CyclesPerOp) + int64(w.RoundOverhead)
		if ready > maxReady {
			maxReady = ready
		}
		dsts := make([]int, 0, len(w.Ops))
		for d, v := range w.Traffic[p] {
			if v > 0 && d != p {
				dsts = append(dsts, d)
			}
		}
		sort.Ints(dsts)
		for _, d := range dsts {
			msgs := w.Traffic[p][d]
			nflits := 1 + int((msgs+int64(w.MsgsPerFlit)-1)/int64(w.MsgsPerFlit))
			pkt := &noc.Packet{
				ID:      net.NextID(),
				Src:     net.Grid.Coord(e.place[p]),
				Dst:     net.Grid.Coord(e.place[d]),
				NFlits:  nflits,
				Payload: &syntheticBatch{SrcPE: p, DstPE: d, Msgs: msgs},
			}
			sends = append(sends, send{at: ready, pkt: pkt})
		}
	}
	sort.Slice(sends, func(i, j int) bool { return sends[i].at < sends[j].at })

	idx := 0
	guard := start + 10_000_000
	for e.pending > 0 || idx < len(sends) || net.Cycle < maxReady {
		for idx < len(sends) && sends[idx].at <= net.Cycle {
			if err := net.Send(sends[idx].pkt); err != nil {
				return 0, fmt.Errorf("appmap: synthetic round injection: %w", err)
			}
			idx++
		}
		net.Step()
		if net.Cycle > guard {
			return 0, fmt.Errorf("appmap: synthetic round did not complete within guard window")
		}
	}
	return net.Cycle - start, nil
}
