package appmap

import (
	"fmt"
	"sort"

	"hotnoc/internal/ldpc"
	"hotnoc/internal/noc"
)

// MsgBatch is the payload of one inter-PE packet: a batch of edge messages
// produced by one PE for one destination PE in one decoder phase.
type MsgBatch struct {
	// Phase is 0 for check-to-variable messages, 1 for variable-to-check.
	Phase uint8
	Vals  []EdgeVal
}

// EdgeVal is one message: the Tanner-graph edge (check-major index) and
// the fixed-point value.
type EdgeVal struct {
	Edge int32
	Val  ldpc.LLR
}

// Engine executes distributed min-sum decoding on the cycle-accurate NoC.
// Each logical PE owns the variables and checks its partition assigns; in
// every half-iteration a PE computes its outgoing edge messages (charging
// compute cycles and PE-op energy), then ships messages for remote PEs as
// wormhole packets batched per destination. A half-iteration ends when
// every PE has received all messages it is due — the barrier that makes the
// distributed decode bit-exact with the reference flooding decoder.
type Engine struct {
	Code *ldpc.Code
	Part *Partition
	Net  *noc.Network

	// MaxIter is the fixed iteration count per block (default 16); fixed
	// iterations give the deterministic block time the paper's migration
	// periods are synchronized to.
	MaxIter int
	// NormNum/NormDen is the min-sum normalization (default 3/4).
	NormNum, NormDen int
	// MsgsPerFlit packs fixed-point messages into 64-bit flits (default 8:
	// 8-bit message plus 16-bit edge tag each... 8 messages with tag
	// compression; the flit count only shapes network load).
	MsgsPerFlit int
	// CyclesPerOp is the PE cost of one edge-message computation
	// (default 1).
	CyclesPerOp int
	// PhaseOverhead is the fixed PE pipeline ramp per half-iteration
	// (default 8 cycles).
	PhaseOverhead int

	// Decodes counts completed Decode calls — the unit of expensive NoC
	// characterization work, which sweep tests and benchmarks use to
	// verify that period and ablation variants reuse one characterization
	// instead of re-simulating.
	Decodes uint64

	place []int // logical PE -> physical block index

	// Static per-PE node ownership.
	checksOwned [][]int
	varsOwned   [][]int
	// checkEdge[c] is the first check-major edge index of check c.
	checkEdge []int
	varEdges  [][]int
	// expectCheck[p] / expectVar[p] count the remote messages PE p receives
	// in the check / variable phase of every iteration.
	expectCheck []int
	expectVar   []int

	// Dynamic edge state (single block).
	v2c, c2v []ldpc.LLR
	totals   []int32

	pendingRemote int
}

// NewEngine wires a code, partition and network together. The partition's
// logical PE count must equal the mesh size; the initial placement is the
// identity.
func NewEngine(code *ldpc.Code, part *Partition, net *noc.Network) (*Engine, error) {
	if err := part.Validate(code); err != nil {
		return nil, err
	}
	if part.NPE != net.Grid.N() {
		return nil, fmt.Errorf("appmap: partition has %d PEs for a %d-node mesh",
			part.NPE, net.Grid.N())
	}
	e := &Engine{
		Code:          code,
		Part:          part,
		Net:           net,
		MaxIter:       16,
		NormNum:       3,
		NormDen:       4,
		MsgsPerFlit:   8,
		CyclesPerOp:   1,
		PhaseOverhead: 8,
	}
	e.place = make([]int, part.NPE)
	for i := range e.place {
		e.place[i] = i
	}
	e.checksOwned = make([][]int, part.NPE)
	e.varsOwned = make([][]int, part.NPE)
	for c, pe := range part.CheckPE {
		e.checksOwned[pe] = append(e.checksOwned[pe], c)
	}
	for v, pe := range part.VarPE {
		e.varsOwned[pe] = append(e.varsOwned[pe], v)
	}
	e.checkEdge = make([]int, code.M+1)
	for c := 0; c < code.M; c++ {
		e.checkEdge[c+1] = e.checkEdge[c] + len(code.CheckNbrs[c])
	}
	e.varEdges = make([][]int, code.N)
	for c := 0; c < code.M; c++ {
		for i, v := range code.CheckNbrs[c] {
			e.varEdges[v] = append(e.varEdges[v], e.checkEdge[c]+i)
		}
	}
	e.expectCheck = make([]int, part.NPE)
	e.expectVar = make([]int, part.NPE)
	for c := 0; c < code.M; c++ {
		cp := part.CheckPE[c]
		for _, v := range code.CheckNbrs[c] {
			vp := part.VarPE[v]
			if cp != vp {
				e.expectCheck[vp]++ // check phase delivers c->v messages
				e.expectVar[cp]++   // variable phase delivers v->c messages
			}
		}
	}
	edges := code.Edges()
	e.v2c = make([]ldpc.LLR, edges)
	e.c2v = make([]ldpc.LLR, edges)
	e.totals = make([]int32, code.N)
	return e, nil
}

// SetPlacement installs a new logical-to-physical mapping (a migration).
// It returns an error unless place is a bijection onto the mesh.
func (e *Engine) SetPlacement(place []int) error {
	if len(place) != e.Part.NPE {
		return fmt.Errorf("appmap: placement has %d entries for %d PEs", len(place), e.Part.NPE)
	}
	seen := make([]bool, len(place))
	for _, b := range place {
		if b < 0 || b >= len(place) || seen[b] {
			return fmt.Errorf("appmap: placement is not a bijection")
		}
		seen[b] = true
	}
	copy(e.place, place)
	return nil
}

// Placement returns a copy of the current logical-to-physical mapping.
func (e *Engine) Placement() []int { return append([]int(nil), e.place...) }

// BlockResult summarises one decoded block.
type BlockResult struct {
	Decisions []uint8
	// Cycles is the block decode duration in clock cycles (deterministic
	// for a fixed placement).
	Cycles int64
	// Converged reports whether the syndrome is satisfied.
	Converged bool
	// Iterations actually executed (== MaxIter unless early stop is added).
	Iterations int
}

// pendingPkt is a packet waiting for its PE to finish computing.
type pendingPkt struct {
	at  int64
	pkt *noc.Packet
}

// Decode runs one block through the distributed decoder, driving the
// network cycle-by-cycle. Channel LLRs are assumed pre-loaded into the PEs
// (codeword I/O is modelled as PE-local work; chip-boundary address
// translation is exercised by the core package's I/O translator).
func (e *Engine) Decode(chLLR []ldpc.LLR) (BlockResult, error) {
	code := e.Code
	if len(chLLR) != code.N {
		return BlockResult{}, fmt.Errorf("appmap: block has %d LLRs, code N=%d", len(chLLR), code.N)
	}
	start := e.Net.Cycle

	prevDeliver := e.Net.Deliver
	defer func() { e.Net.Deliver = prevDeliver }()
	e.Net.Deliver = e.onDeliver

	// Load phase: PEs latch channel LLRs into their variable-node units.
	for v := 0; v < code.N; v++ {
		for _, id := range e.varEdges[v] {
			e.v2c[id] = chLLR[v]
		}
	}
	loadMax := int64(0)
	for p := 0; p < e.Part.NPE; p++ {
		ops := int64(len(e.varsOwned[p]))
		e.Net.Act.PEOps[e.place[p]] += uint64(ops)
		if t := ops * int64(e.CyclesPerOp); t > loadMax {
			loadMax = t
		}
	}
	e.Net.Run(loadMax)

	for it := 0; it < e.MaxIter; it++ {
		if err := e.runPhase(0, chLLR); err != nil {
			return BlockResult{}, err
		}
		if err := e.runPhase(1, chLLR); err != nil {
			return BlockResult{}, err
		}
	}

	decisions := make([]uint8, code.N)
	for v, tot := range e.totals {
		if tot < 0 {
			decisions[v] = 1
		}
	}
	e.Decodes++
	return BlockResult{
		Decisions:  decisions,
		Cycles:     e.Net.Cycle - start,
		Converged:  code.CheckSyndrome(decisions),
		Iterations: e.MaxIter,
	}, nil
}

// runPhase executes one half-iteration: phase 0 updates check nodes, phase
// 1 variable nodes.
func (e *Engine) runPhase(phase uint8, chLLR []ldpc.LLR) error {
	phaseStart := e.Net.Cycle
	var sends []pendingPkt
	expected := 0
	maxReady := phaseStart

	for p := 0; p < e.Part.NPE; p++ {
		batches := map[int]*MsgBatch{} // dst logical PE -> batch
		ops := 0
		if phase == 0 {
			for _, c := range e.checksOwned[p] {
				lo, hi := e.checkEdge[c], e.checkEdge[c+1]
				in := e.v2c[lo:hi]
				out := make([]ldpc.LLR, hi-lo)
				ldpc.CheckNodeUpdate(in, out, e.NormNum, e.NormDen)
				ops += hi - lo
				for i, v := range e.Code.CheckNbrs[c] {
					dst := e.Part.VarPE[v]
					if dst == p {
						e.c2v[lo+i] = out[i]
						continue
					}
					b := batches[dst]
					if b == nil {
						b = &MsgBatch{Phase: phase}
						batches[dst] = b
					}
					b.Vals = append(b.Vals, EdgeVal{Edge: int32(lo + i), Val: out[i]})
				}
			}
		} else {
			for _, v := range e.varsOwned[p] {
				ids := e.varEdges[v]
				in := make([]ldpc.LLR, len(ids))
				out := make([]ldpc.LLR, len(ids))
				for i, id := range ids {
					in[i] = e.c2v[id]
				}
				e.totals[v] = ldpc.VarNodeUpdate(chLLR[v], in, out)
				ops += len(ids)
				for i, id := range ids {
					c := e.Part.CheckPE[checkOfEdge(e.checkEdge, id)]
					if c == p {
						e.v2c[id] = out[i]
						continue
					}
					b := batches[c]
					if b == nil {
						b = &MsgBatch{Phase: phase}
						batches[c] = b
					}
					b.Vals = append(b.Vals, EdgeVal{Edge: int32(id), Val: out[i]})
				}
			}
		}

		e.Net.Act.PEOps[e.place[p]] += uint64(ops)
		ready := phaseStart + int64(ops*e.CyclesPerOp+e.PhaseOverhead)
		if ready > maxReady {
			maxReady = ready
		}

		// Deterministic send order by destination PE.
		dsts := make([]int, 0, len(batches))
		for d := range batches {
			dsts = append(dsts, d)
		}
		sort.Ints(dsts)
		for _, d := range dsts {
			b := batches[d]
			nflits := 1 + (len(b.Vals)+e.MsgsPerFlit-1)/e.MsgsPerFlit
			pkt := &noc.Packet{
				ID:      e.Net.NextID(),
				Src:     e.Net.Grid.Coord(e.place[p]),
				Dst:     e.Net.Grid.Coord(e.place[d]),
				NFlits:  nflits,
				Payload: b,
			}
			sends = append(sends, pendingPkt{at: ready, pkt: pkt})
			expected++
		}
	}

	sort.Slice(sends, func(i, j int) bool { return sends[i].at < sends[j].at })
	e.pendingRemote = expected

	// Event loop: inject packets as their PEs finish computing; run until
	// every remote batch has been delivered and all compute time has
	// elapsed.
	idx := 0
	guard := phaseStart + 10_000_000
	for e.pendingRemote > 0 || idx < len(sends) || e.Net.Cycle < maxReady {
		for idx < len(sends) && sends[idx].at <= e.Net.Cycle {
			if err := e.Net.Send(sends[idx].pkt); err != nil {
				return fmt.Errorf("appmap: phase %d injection failed: %w", phase, err)
			}
			idx++
		}
		e.Net.Step()
		if e.Net.Cycle > guard {
			return fmt.Errorf("appmap: phase %d did not complete within guard window", phase)
		}
	}
	return nil
}

// onDeliver applies a received message batch to the edge state.
func (e *Engine) onDeliver(pkt *noc.Packet) {
	b, ok := pkt.Payload.(*MsgBatch)
	if !ok {
		return // foreign packet (e.g. migration traffic); not ours
	}
	for _, ev := range b.Vals {
		if b.Phase == 0 {
			e.c2v[ev.Edge] = ev.Val
		} else {
			e.v2c[ev.Edge] = ev.Val
		}
	}
	e.pendingRemote--
}

// checkOfEdge locates the check owning a check-major edge index by binary
// search over the prefix array.
func checkOfEdge(checkEdge []int, id int) int {
	lo, hi := 0, len(checkEdge)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if checkEdge[mid+1] <= id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
