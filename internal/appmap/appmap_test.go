package appmap

import (
	"math/rand"
	"testing"

	"hotnoc/internal/geom"
	"hotnoc/internal/ldpc"
	"hotnoc/internal/noc"
)

func mustCode(t testing.TB, n, m, w int, seed int64) *ldpc.Code {
	t.Helper()
	c, err := ldpc.NewRegular(n, m, w, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newEngine(t testing.TB, code *ldpc.Code, part *Partition, gridN int) *Engine {
	t.Helper()
	net, err := noc.New(geom.NewGrid(gridN, gridN), noc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(code, part, net)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func randomLLRs(code *ldpc.Code, snr float64, seed int64) ([]uint8, []ldpc.LLR) {
	ch, err := ldpc.NewChannel(snr, code.Rate(), seed)
	if err != nil {
		panic(err)
	}
	r := rand.New(rand.NewSource(seed + 1))
	info := make([]uint8, code.K())
	for i := range info {
		info[i] = uint8(r.Intn(2))
	}
	cw, err := code.Encode(info)
	if err != nil {
		panic(err)
	}
	return cw, ch.Transmit(cw)
}

func TestPartitionValidate(t *testing.T) {
	code := mustCode(t, 64, 32, 3, 1)
	good := Contiguous(code, 16)
	if err := good.Validate(code); err != nil {
		t.Fatalf("contiguous partition invalid: %v", err)
	}
	bad := Contiguous(code, 16)
	bad.VarPE[0] = 16
	if err := bad.Validate(code); err == nil {
		t.Fatal("out-of-range PE accepted")
	}
	short := &Partition{NPE: 4, VarPE: make([]int, 10), CheckPE: make([]int, code.M)}
	if err := short.Validate(code); err == nil {
		t.Fatal("wrong-size partition accepted")
	}
}

func TestPartitionShapes(t *testing.T) {
	code := mustCode(t, 160, 80, 3, 2)
	for name, p := range map[string]*Partition{
		"contiguous":  Contiguous(code, 16),
		"interleaved": Interleaved(code, 16),
	} {
		if err := p.Validate(code); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
	}
	sk, err := Skewed(code, 16, 3, 0.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Validate(code); err != nil {
		t.Fatalf("skewed invalid: %v", err)
	}
	ops := OpsPerPE(code, sk)
	var heavy, light int64
	for pe, o := range ops {
		if pe < 3 {
			heavy += o
		} else {
			light += o
		}
	}
	heavyAvg := float64(heavy) / 3
	lightAvg := float64(light) / 13
	if heavyAvg < 2*lightAvg {
		t.Fatalf("skewed partition not skewed: heavy avg %g vs light avg %g", heavyAvg, lightAvg)
	}
}

func TestSkewedRejectsBadParams(t *testing.T) {
	code := mustCode(t, 64, 32, 3, 3)
	if _, err := Skewed(code, 16, 0, 0.5, 1); err == nil {
		t.Fatal("heavyPEs=0 accepted")
	}
	if _, err := Skewed(code, 16, 16, 0.5, 1); err == nil {
		t.Fatal("heavyPEs=NPE accepted")
	}
	if _, err := Skewed(code, 16, 2, 0, 1); err == nil {
		t.Fatal("heavyShare=0 accepted")
	}
}

// TestOpsAndTrafficConservation: total ops equal 2x edges (each edge is
// computed once per phase) and the traffic matrix is symmetric with zero
// diagonal.
func TestOpsAndTrafficConservation(t *testing.T) {
	code := mustCode(t, 120, 60, 3, 4)
	for _, p := range []*Partition{Contiguous(code, 25), Interleaved(code, 25)} {
		var total int64
		for _, o := range OpsPerPE(code, p) {
			total += o
		}
		if total != 2*int64(code.Edges()) {
			t.Fatalf("ops total %d, want %d", total, 2*code.Edges())
		}
		m := TrafficMatrix(code, p)
		for i := range m {
			if m[i][i] != 0 {
				t.Fatalf("self traffic at PE %d", i)
			}
			for j := range m {
				if m[i][j] != m[j][i] {
					t.Fatalf("traffic matrix asymmetric at (%d,%d)", i, j)
				}
			}
		}
	}
}

// TestDistributedMatchesReference is the keystone integration test: the
// on-NoC distributed decoder must produce bit-identical decisions to the
// reference flooding decoder, for several partitions and codes.
func TestDistributedMatchesReference(t *testing.T) {
	code := mustCode(t, 160, 80, 3, 6)
	ref := ldpc.NewDecoder(code)
	ref.MaxIter = 8
	parts := map[string]*Partition{
		"contiguous":  Contiguous(code, 16),
		"interleaved": Interleaved(code, 16),
	}
	if sk, err := Skewed(code, 16, 3, 0.5, 7); err == nil {
		parts["skewed"] = sk
	}
	for name, part := range parts {
		eng := newEngine(t, code, part, 4)
		eng.MaxIter = 8
		for blk := int64(0); blk < 3; blk++ {
			_, llr := randomLLRs(code, 2.0, 100+blk)
			wantBits, _, _ := ref.Decode(llr)
			got, err := eng.Decode(llr)
			if err != nil {
				t.Fatalf("%s block %d: %v", name, blk, err)
			}
			for i := range wantBits {
				if got.Decisions[i] != wantBits[i] {
					t.Fatalf("%s block %d: decision %d differs from reference", name, blk, i)
				}
			}
		}
	}
}

// TestPlacementInvariance: migrating the logical plane must not change the
// decoded bits — only timing and traffic location. This is the paper's
// correctness requirement for transparent reconfiguration.
func TestPlacementInvariance(t *testing.T) {
	code := mustCode(t, 160, 80, 3, 8)
	part := Contiguous(code, 16)
	_, llr := randomLLRs(code, 2.0, 9)

	eng := newEngine(t, code, part, 4)
	eng.MaxIter = 6
	base, err := eng.Decode(llr)
	if err != nil {
		t.Fatal(err)
	}

	g := geom.NewGrid(4, 4)
	for _, tr := range []geom.Transform{
		geom.Rotation(4), geom.XYMirror(4, 4), geom.XYTranslate(4, 4, 1, 1),
	} {
		perm := geom.FromTransform(g, tr)
		place := make([]int, 16)
		for i := range place {
			place[i] = perm.Dst(i)
		}
		eng2 := newEngine(t, code, part, 4)
		eng2.MaxIter = 6
		if err := eng2.SetPlacement(place); err != nil {
			t.Fatal(err)
		}
		got, err := eng2.Decode(llr)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Decisions {
			if got.Decisions[i] != base.Decisions[i] {
				t.Fatalf("%s placement changed decisions at bit %d", tr.Name, i)
			}
		}
	}
}

// TestDeterministicBlockTime: for a fixed placement, block decode duration
// is cycle-identical across blocks and runs — the property the paper's
// real-time migration scheduling depends on.
func TestDeterministicBlockTime(t *testing.T) {
	code := mustCode(t, 160, 80, 3, 10)
	part := Interleaved(code, 16)
	eng := newEngine(t, code, part, 4)
	eng.MaxIter = 4
	var want int64
	for blk := int64(0); blk < 3; blk++ {
		_, llr := randomLLRs(code, 2.0, 200+blk)
		res, err := eng.Decode(llr)
		if err != nil {
			t.Fatal(err)
		}
		if blk == 0 {
			want = res.Cycles
			continue
		}
		if res.Cycles != want {
			t.Fatalf("block %d took %d cycles, block 0 took %d", blk, res.Cycles, want)
		}
	}
}

// TestPlacementChangesActivityLocation: after migration, the physical
// blocks hosting the heavy PEs must change accordingly.
func TestPlacementChangesActivityLocation(t *testing.T) {
	code := mustCode(t, 160, 80, 3, 11)
	sk, err := Skewed(code, 16, 1, 0.7, 12)
	if err != nil {
		t.Fatal(err)
	}
	_, llr := randomLLRs(code, 2.0, 13)

	eng := newEngine(t, code, sk, 4)
	eng.MaxIter = 4
	if _, err := eng.Decode(llr); err != nil {
		t.Fatal(err)
	}
	opsIdentity := append([]uint64(nil), eng.Net.Act.PEOps...)

	// Move logical PE 0 (the heavy one) from block 0 to block 15.
	place := make([]int, 16)
	for i := range place {
		place[i] = i
	}
	place[0], place[15] = 15, 0
	eng2 := newEngine(t, code, sk, 4)
	eng2.MaxIter = 4
	if err := eng2.SetPlacement(place); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Decode(llr); err != nil {
		t.Fatal(err)
	}
	opsMoved := eng2.Net.Act.PEOps

	if opsMoved[15] != opsIdentity[0] || opsMoved[0] != opsIdentity[15] {
		t.Fatalf("PE ops did not follow the migration: identity block0=%d block15=%d, moved block0=%d block15=%d",
			opsIdentity[0], opsIdentity[15], opsMoved[0], opsMoved[15])
	}
	if opsIdentity[0] <= opsIdentity[15] {
		t.Fatal("test premise broken: logical PE 0 should be the heavy one")
	}
}

// TestSetPlacementValidation covers the bijection checks.
func TestSetPlacementValidation(t *testing.T) {
	code := mustCode(t, 64, 32, 3, 14)
	eng := newEngine(t, code, Contiguous(code, 16), 4)
	if err := eng.SetPlacement(make([]int, 15)); err == nil {
		t.Fatal("short placement accepted")
	}
	dup := make([]int, 16)
	if err := eng.SetPlacement(dup); err == nil {
		t.Fatal("non-bijective placement accepted")
	}
}

// TestEngineRejectsMismatchedMesh: partition PE count must match the grid.
func TestEngineRejectsMismatchedMesh(t *testing.T) {
	code := mustCode(t, 64, 32, 3, 15)
	net, err := noc.New(geom.NewGrid(4, 4), noc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(code, Contiguous(code, 9), net); err == nil {
		t.Fatal("PE-count mismatch accepted")
	}
}

// TestCheckOfEdge property: binary search agrees with a linear scan.
func TestCheckOfEdge(t *testing.T) {
	code := mustCode(t, 120, 60, 3, 16)
	prefix := make([]int, code.M+1)
	for c := 0; c < code.M; c++ {
		prefix[c+1] = prefix[c] + len(code.CheckNbrs[c])
	}
	for id := 0; id < code.Edges(); id++ {
		want := 0
		for prefix[want+1] <= id {
			want++
		}
		if got := checkOfEdge(prefix, id); got != want {
			t.Fatalf("checkOfEdge(%d) = %d, want %d", id, got, want)
		}
	}
}
