package appmap

import (
	"math/rand"
	"testing"

	"hotnoc/internal/geom"
	"hotnoc/internal/noc"
)

func synthWorkload(n int, seed int64) *SyntheticWorkload {
	r := rand.New(rand.NewSource(seed))
	w := &SyntheticWorkload{
		Ops:     make([]int64, n),
		Traffic: make([][]int64, n),
	}
	for i := range w.Ops {
		w.Ops[i] = int64(50 + r.Intn(200))
		w.Traffic[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && r.Float64() < 0.3 {
				w.Traffic[i][j] = int64(1 + r.Intn(40))
			}
		}
	}
	return w
}

func synthEngine(t testing.TB, n int, seed int64) *SyntheticEngine {
	t.Helper()
	net, err := noc.New(geom.NewGrid(n, n), noc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewSyntheticEngine(synthWorkload(n*n, seed), net)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSyntheticRoundCompletes: every batch arrives and the network drains.
func TestSyntheticRoundCompletes(t *testing.T) {
	e := synthEngine(t, 4, 1)
	cycles, err := e.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Fatalf("round took %d cycles", cycles)
	}
	if e.Net.Busy() {
		t.Fatal("network not empty after round")
	}
	// Every nonzero traffic entry produced exactly one delivered packet.
	want := int64(0)
	for _, row := range e.W.Traffic {
		for _, v := range row {
			if v > 0 {
				want++
			}
		}
	}
	if e.Net.Stats.PacketsDelivered != want {
		t.Fatalf("%d packets delivered, want %d", e.Net.Stats.PacketsDelivered, want)
	}
}

// TestSyntheticDeterministicRounds: round duration is cycle-identical
// across repetitions at a fixed placement.
func TestSyntheticDeterministicRounds(t *testing.T) {
	e := synthEngine(t, 4, 2)
	first, err := e.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c, err := e.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		if c != first {
			t.Fatalf("round %d took %d cycles, first took %d", i+1, c, first)
		}
	}
}

// TestSyntheticPlacementMovesActivity: PE ops follow the placement, the
// property runtime reconfiguration depends on.
func TestSyntheticPlacementMovesActivity(t *testing.T) {
	e := synthEngine(t, 4, 3)
	if _, err := e.RunRound(); err != nil {
		t.Fatal(err)
	}
	identityOps := append([]uint64(nil), e.Net.Act.PEOps...)

	e2 := synthEngine(t, 4, 3)
	place := make([]int, 16)
	for i := range place {
		place[i] = 15 - i // point reflection
	}
	if err := e2.SetPlacement(place); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.RunRound(); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 16; l++ {
		if e2.Net.Act.PEOps[15-l] != identityOps[l] {
			t.Fatalf("ops of logical PE %d did not follow placement", l)
		}
	}
}

// TestSyntheticHeavierWorkloadSlower: more compute per PE lengthens the
// round.
func TestSyntheticHeavierWorkloadSlower(t *testing.T) {
	base := synthEngine(t, 4, 4)
	baseCycles, err := base.RunRound()
	if err != nil {
		t.Fatal(err)
	}

	heavyW := synthWorkload(16, 4)
	for i := range heavyW.Ops {
		heavyW.Ops[i] *= 4
	}
	net, err := noc.New(geom.NewGrid(4, 4), noc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := NewSyntheticEngine(heavyW, net)
	if err != nil {
		t.Fatal(err)
	}
	heavyCycles, err := heavy.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if heavyCycles <= baseCycles {
		t.Fatalf("4x compute did not lengthen the round: %d vs %d", heavyCycles, baseCycles)
	}
}

// TestSyntheticValidation covers the workload and engine error paths.
func TestSyntheticValidation(t *testing.T) {
	net, err := noc.New(geom.NewGrid(2, 2), noc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := []*SyntheticWorkload{
		{},
		{Ops: make([]int64, 4), Traffic: make([][]int64, 2)},
		{Ops: []int64{1, 1, 1, -1}, Traffic: zeros(4)},
		{Ops: make([]int64, 4), Traffic: selfTraffic(4)},
		{Ops: make([]int64, 4), Traffic: negTraffic(4)},
	}
	for i, w := range bad {
		if _, err := NewSyntheticEngine(w, net); err == nil {
			t.Errorf("bad workload %d accepted", i)
		}
	}
	// PE count mismatch.
	if _, err := NewSyntheticEngine(&SyntheticWorkload{
		Ops: make([]int64, 9), Traffic: zeros(9),
	}, net); err == nil {
		t.Error("PE-count mismatch accepted")
	}
	// Bad placements.
	good, err := NewSyntheticEngine(&SyntheticWorkload{Ops: make([]int64, 4), Traffic: zeros(4)}, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.SetPlacement([]int{0, 0, 1, 2}); err == nil {
		t.Error("non-bijective placement accepted")
	}
	if err := good.SetPlacement([]int{0, 1}); err == nil {
		t.Error("short placement accepted")
	}
}

func zeros(n int) [][]int64 {
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
	}
	return m
}

func selfTraffic(n int) [][]int64 {
	m := zeros(n)
	m[1][1] = 3
	return m
}

func negTraffic(n int) [][]int64 {
	m := zeros(n)
	m[0][1] = -2
	return m
}
