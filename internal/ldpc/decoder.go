package ldpc

import "fmt"

// CheckNodeUpdate computes the min-sum check-to-variable messages for one
// check node: out[i] gets the normalized product-of-signs times
// minimum-magnitude over all inputs except i. in and out must have equal
// length >= 2. The same routine backs both the reference decoder and the
// distributed on-NoC PEs, making the two bit-exact by construction.
func CheckNodeUpdate(in []LLR, out []LLR, normNum, normDen int) {
	if len(in) != len(out) || len(in) < 2 {
		panic(fmt.Sprintf("ldpc: check update with %d in, %d out", len(in), len(out)))
	}
	// Track the two smallest magnitudes and the overall sign product so
	// the exclusion of each output's own input is O(1).
	min1, min2 := 1<<30, 1<<30 // smallest and second smallest |in|
	min1Idx := -1
	signProd := 1
	for i, m := range in {
		v := int(m)
		if v < 0 {
			signProd = -signProd
			v = -v
		}
		if v < min1 {
			min2 = min1
			min1, min1Idx = v, i
		} else if v < min2 {
			min2 = v
		}
	}
	for i, m := range in {
		mag := min1
		if i == min1Idx {
			mag = min2
		}
		mag = mag * normNum / normDen
		if mag > MaxLLR {
			mag = MaxLLR
		}
		s := signProd
		if m < 0 {
			s = -s
		}
		out[i] = LLR(s * mag)
	}
}

// VarNodeUpdate computes the variable-to-check messages for one variable
// node from its channel LLR and incoming check messages, returning the
// total (a-posteriori) LLR used for the hard decision. Outgoing messages
// saturate into the fixed-point datapath.
func VarNodeUpdate(ch LLR, in []LLR, out []LLR) int32 {
	if len(in) != len(out) {
		panic(fmt.Sprintf("ldpc: var update with %d in, %d out", len(in), len(out)))
	}
	total := int32(ch)
	for _, m := range in {
		total += int32(m)
	}
	for i, m := range in {
		out[i] = saturate(total - int32(m))
	}
	return total
}

func saturate(v int32) LLR {
	if v > MaxLLR {
		return MaxLLR
	}
	if v < -MaxLLR {
		return -MaxLLR
	}
	return LLR(v)
}

// Decoder is a fixed-point normalized min-sum decoder with a flooding
// schedule.
type Decoder struct {
	Code *Code
	// MaxIter bounds decoding iterations (default 16). Hardware decoders
	// run a fixed iteration count per block, which is what makes block
	// decode time — and hence the paper's migration period — deterministic.
	MaxIter int
	// NormNum/NormDen is the min-sum normalization factor (default 3/4).
	NormNum, NormDen int
	// EarlyStop, when set, terminates once the syndrome is satisfied.
	EarlyStop bool

	// Edge state in check-major order.
	v2c []LLR
	c2v []LLR
	// varEdges[v] lists the check-major edge indices of variable v.
	varEdges   [][]int
	scratchIn  []LLR
	scratchOut []LLR
}

// NewDecoder builds a decoder with default parameters.
func NewDecoder(code *Code) *Decoder {
	d := &Decoder{Code: code, MaxIter: 16, NormNum: 3, NormDen: 4}
	edges := code.Edges()
	d.v2c = make([]LLR, edges)
	d.c2v = make([]LLR, edges)
	d.varEdges = make([][]int, code.N)
	e := 0
	maxDeg := 2
	for ch := 0; ch < code.M; ch++ {
		if l := len(code.CheckNbrs[ch]); l > maxDeg {
			maxDeg = l
		}
		for _, v := range code.CheckNbrs[ch] {
			d.varEdges[v] = append(d.varEdges[v], e)
			e++
		}
	}
	for v := 0; v < code.N; v++ {
		if l := len(d.varEdges[v]); l > maxDeg {
			maxDeg = l
		}
	}
	d.scratchIn = make([]LLR, maxDeg)
	d.scratchOut = make([]LLR, maxDeg)
	return d
}

// Decode runs min-sum decoding on channel LLRs, returning the hard
// decisions, the number of iterations executed, and whether the result
// satisfies all parity checks.
func (d *Decoder) Decode(chLLR []LLR) ([]uint8, int, bool) {
	code := d.Code
	if len(chLLR) != code.N {
		panic(fmt.Sprintf("ldpc: decoding %d LLRs with N=%d", len(chLLR), code.N))
	}
	// Init: variable-to-check messages start as the channel values.
	for v := 0; v < code.N; v++ {
		for _, e := range d.varEdges[v] {
			d.v2c[e] = chLLR[v]
		}
	}
	decisions := make([]uint8, code.N)
	iters := 0
	for it := 0; it < d.MaxIter; it++ {
		iters++
		// Check phase (flooding: uses only last iteration's v2c).
		e := 0
		for ch := 0; ch < code.M; ch++ {
			deg := len(code.CheckNbrs[ch])
			in := d.v2c[e : e+deg]
			out := d.c2v[e : e+deg]
			CheckNodeUpdate(in, out, d.NormNum, d.NormDen)
			e += deg
		}
		// Variable phase.
		for v := 0; v < code.N; v++ {
			ids := d.varEdges[v]
			in := d.scratchIn[:len(ids)]
			out := d.scratchOut[:len(ids)]
			for i, id := range ids {
				in[i] = d.c2v[id]
			}
			total := VarNodeUpdate(chLLR[v], in, out)
			for i, id := range ids {
				d.v2c[id] = out[i]
			}
			if total < 0 {
				decisions[v] = 1
			} else {
				decisions[v] = 0
			}
		}
		if d.EarlyStop && code.CheckSyndrome(decisions) {
			return decisions, iters, true
		}
	}
	return decisions, iters, code.CheckSyndrome(decisions)
}
