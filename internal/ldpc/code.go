// Package ldpc implements the workload of the paper's test chips: Low
// Density Parity Check encoding and decoding (Theocharides et al., "Implementing
// LDPC Decoder on Network-on-Chip", ISVLSI 2005 — the paper's reference
// [3]). The decoder is a fixed-point normalized min-sum message-passing
// decoder with a flooding schedule, chosen because flooding makes the
// distributed (on-NoC) evaluation bit-exact with the reference software
// decoder regardless of how variable and check nodes are partitioned across
// PEs.
package ldpc

import (
	"fmt"
	"math/rand"
	"sort"
)

// Code is a binary LDPC code defined by its parity-check matrix H
// (M checks × N variables), stored sparsely as adjacency lists, together
// with a derived systematic encoder.
type Code struct {
	// N is the codeword length (number of variable nodes).
	N int
	// M is the number of parity checks (check nodes).
	M int

	// CheckNbrs[c] lists the variable nodes participating in check c.
	CheckNbrs [][]int
	// VarNbrs[v] lists the checks in which variable v participates.
	VarNbrs [][]int

	// k is the information length after encoder derivation (N - rank(H)).
	k int
	// parityOf maps each of the k information positions into the codeword,
	// infoCols[i] being the codeword column carrying information bit i;
	// parityCols[j] carries parity bit j.
	infoCols   []int
	parityCols []int
	// parityEq[j] lists the information-bit indices XORed to produce
	// parity bit j (dense row of the systematic A matrix, kept sparse).
	parityEq [][]int
}

// K returns the information length of the code.
func (c *Code) K() int { return c.k }

// Rate returns the code rate K/N.
func (c *Code) Rate() float64 { return float64(c.k) / float64(c.N) }

// Edges returns the total number of Tanner-graph edges, the unit of both
// decoder computation and inter-PE communication.
func (c *Code) Edges() int {
	e := 0
	for _, nb := range c.CheckNbrs {
		e += len(nb)
	}
	return e
}

// NewRegular constructs a (colWeight, rowWeight)-regular-ish LDPC code with
// n variables and m checks via constrained random edge placement: each
// variable connects to colWeight distinct checks, always choosing among the
// checks with the lowest current degree (random tie-break), which keeps row
// weights within one of each other and avoids duplicate edges. The
// construction is deterministic for a given seed.
func NewRegular(n, m, colWeight int, seed int64) (*Code, error) {
	if n <= 0 || m <= 0 || m >= n {
		return nil, fmt.Errorf("ldpc: invalid code size n=%d m=%d", n, m)
	}
	if colWeight < 2 || colWeight > m {
		return nil, fmt.Errorf("ldpc: invalid column weight %d", colWeight)
	}
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; attempt < 32; attempt++ {
		c, err := buildRegular(n, m, colWeight, rng)
		if err == nil {
			return c, nil
		}
	}
	return nil, fmt.Errorf("ldpc: could not derive a systematic encoder for n=%d m=%d w=%d", n, m, colWeight)
}

func buildRegular(n, m, colWeight int, rng *rand.Rand) (*Code, error) {
	c := &Code{
		N:         n,
		M:         m,
		CheckNbrs: make([][]int, m),
		VarNbrs:   make([][]int, n),
	}
	deg := make([]int, m)
	for v := 0; v < n; v++ {
		// Select colWeight distinct checks of minimal degree.
		order := rng.Perm(m)
		sort.SliceStable(order, func(i, j int) bool { return deg[order[i]] < deg[order[j]] })
		for _, ch := range order[:colWeight] {
			c.CheckNbrs[ch] = append(c.CheckNbrs[ch], v)
			c.VarNbrs[v] = append(c.VarNbrs[v], ch)
			deg[ch]++
		}
	}
	if err := c.deriveEncoder(); err != nil {
		return nil, err
	}
	return c, nil
}

// deriveEncoder Gaussian-eliminates H over GF(2) into [A | I] form (with
// column pivoting) and extracts the sparse parity equations. Codewords are
// laid out in natural column order; infoCols and parityCols record which
// codeword positions hold information and parity.
func (c *Code) deriveEncoder() error {
	m, n := c.M, c.N
	// Dense bit matrix, one row per check, packed into uint64 words.
	words := (n + 63) / 64
	h := make([][]uint64, m)
	for ch := 0; ch < m; ch++ {
		h[ch] = make([]uint64, words)
		for _, v := range c.CheckNbrs[ch] {
			h[ch][v/64] |= 1 << (uint(v) % 64)
		}
	}
	get := func(row []uint64, col int) bool { return row[col/64]>>(uint(col)%64)&1 == 1 }

	pivotCol := make([]int, 0, m) // pivot column of each eliminated row
	usedCol := make([]bool, n)
	row := 0
	for col := 0; col < n && row < m; col++ {
		// Find a row at or below 'row' with a 1 in this column.
		sel := -1
		for r := row; r < m; r++ {
			if get(h[r], col) {
				sel = r
				break
			}
		}
		if sel < 0 {
			continue
		}
		h[row], h[sel] = h[sel], h[row]
		for r := 0; r < m; r++ {
			if r != row && get(h[r], col) {
				for w := 0; w < words; w++ {
					h[r][w] ^= h[row][w]
				}
			}
		}
		pivotCol = append(pivotCol, col)
		usedCol[col] = true
		row++
	}
	rank := row
	if rank < m {
		// Redundant checks exist; the paper's codes are full rank, and a
		// rank-deficient draw just triggers a reconstruction with fresh
		// randomness.
		return fmt.Errorf("ldpc: H has rank %d < %d", rank, m)
	}

	// Pivot columns carry parity bits; the remaining columns carry
	// information bits.
	c.k = n - rank
	c.parityCols = append([]int(nil), pivotCol...)
	c.infoCols = c.infoCols[:0]
	infoIdx := make([]int, n)
	for col := 0; col < n; col++ {
		if !usedCol[col] {
			infoIdx[col] = len(c.infoCols)
			c.infoCols = append(c.infoCols, col)
		}
	}
	// After full reduction, row r reads: parity(pivotCol[r]) = XOR of the
	// information columns set in row r.
	c.parityEq = make([][]int, rank)
	for r := 0; r < rank; r++ {
		var eq []int
		for col := 0; col < n; col++ {
			if !usedCol[col] && get(h[r], col) {
				eq = append(eq, infoIdx[col])
			}
		}
		c.parityEq[r] = eq
	}
	return nil
}

// Encode maps k information bits to an n-bit codeword satisfying every
// parity check.
func (c *Code) Encode(info []uint8) ([]uint8, error) {
	if len(info) != c.k {
		return nil, fmt.Errorf("ldpc: encoding %d bits with k=%d", len(info), c.k)
	}
	cw := make([]uint8, c.N)
	for i, col := range c.infoCols {
		cw[col] = info[i] & 1
	}
	for j, col := range c.parityCols {
		p := uint8(0)
		for _, i := range c.parityEq[j] {
			p ^= info[i] & 1
		}
		cw[col] = p
	}
	return cw, nil
}

// CheckSyndrome reports whether every parity check is satisfied.
func (c *Code) CheckSyndrome(bits []uint8) bool {
	if len(bits) != c.N {
		return false
	}
	for _, nbrs := range c.CheckNbrs {
		s := uint8(0)
		for _, v := range nbrs {
			s ^= bits[v] & 1
		}
		if s != 0 {
			return false
		}
	}
	return true
}
