package ldpc

import (
	"fmt"
	"math"
	"math/rand"
)

// LLR is a fixed-point log-likelihood ratio as carried on the chip:
// positive means "bit is 0". Messages saturate at ±MaxLLR, emulating the
// narrow datapaths of the paper's hardware decoder.
type LLR = int8

// MaxLLR is the saturation magnitude of the fixed-point datapath.
const MaxLLR = 31

// Channel models BPSK transmission over AWGN followed by LLR computation
// and uniform quantization, producing the "encoded message" stimulus the
// paper feeds its simulator.
type Channel struct {
	// SNRdB is Eb/N0 in decibels.
	SNRdB float64
	// Rate is the code rate, needed to convert Eb/N0 to Es/N0.
	Rate float64
	rng  *rand.Rand
}

// NewChannel returns a deterministic channel for the given SNR and seed.
func NewChannel(snrDB, rate float64, seed int64) (*Channel, error) {
	if rate <= 0 || rate >= 1 {
		return nil, fmt.Errorf("ldpc: channel rate %g outside (0,1)", rate)
	}
	return &Channel{SNRdB: snrDB, Rate: rate, rng: rand.New(rand.NewSource(seed))}, nil
}

// Transmit maps codeword bits through BPSK (+1 for 0, -1 for 1), adds
// Gaussian noise at the configured SNR, and returns quantized channel LLRs.
func (ch *Channel) Transmit(bits []uint8) []LLR {
	ebn0 := math.Pow(10, ch.SNRdB/10)
	esn0 := ebn0 * ch.Rate
	sigma := math.Sqrt(1 / (2 * esn0))
	out := make([]LLR, len(bits))
	for i, b := range bits {
		x := 1.0
		if b&1 == 1 {
			x = -1.0
		}
		y := x + sigma*ch.rng.NormFloat64()
		// Exact channel LLR for BPSK/AWGN: 2y/sigma^2, quantized with a
		// 4x gain into the int8 datapath.
		llr := 2 * y / (sigma * sigma)
		out[i] = Quantize(llr)
	}
	return out
}

// Quantize saturates a floating LLR into the fixed-point datapath with a
// quarter-LLR resolution (gain 4 before rounding would overflow typical
// operating points, so the gain here is 1 with saturation; the decoder is
// insensitive to the absolute scale).
func Quantize(llr float64) LLR {
	v := math.Round(llr)
	if v > MaxLLR {
		v = MaxLLR
	}
	if v < -MaxLLR {
		v = -MaxLLR
	}
	return LLR(v)
}
