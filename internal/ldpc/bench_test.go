package ldpc

import "testing"

// BenchmarkDecodeBlock measures one 16-iteration min-sum decode of a
// paper-scale block (n=2560), the reference against which the on-NoC
// engine is verified.
func BenchmarkDecodeBlock(b *testing.B) {
	code, err := NewRegular(2560, 1280, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	dec := NewDecoder(code)
	ch, err := NewChannel(2.5, code.Rate(), 2)
	if err != nil {
		b.Fatal(err)
	}
	cw, err := code.Encode(make([]uint8, code.K()))
	if err != nil {
		b.Fatal(err)
	}
	llr := ch.Transmit(cw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(llr)
	}
}

// BenchmarkCheckNodeUpdate measures the min-sum check-node kernel at the
// code's degree-6 operating point.
func BenchmarkCheckNodeUpdate(b *testing.B) {
	in := []LLR{5, -3, 7, -2, 9, 1}
	out := make([]LLR, len(in))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CheckNodeUpdate(in, out, 3, 4)
	}
}

// BenchmarkEncode measures systematic encoding of a paper-scale block.
func BenchmarkEncode(b *testing.B) {
	code, err := NewRegular(2560, 1280, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	info := make([]uint8, code.K())
	for i := range info {
		info[i] = uint8(i & 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Encode(info); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConstruction measures code construction plus encoder derivation
// (Gaussian elimination over GF(2)).
func BenchmarkConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewRegular(1280, 640, 3, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}
