package ldpc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCode(t testing.TB, n, m, w int, seed int64) *Code {
	t.Helper()
	c, err := NewRegular(n, m, w, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCodeConstruction(t *testing.T) {
	c := mustCode(t, 120, 60, 3, 1)
	if c.N != 120 || c.M != 60 {
		t.Fatalf("code is %dx%d", c.M, c.N)
	}
	if c.K() != 60 {
		t.Fatalf("K = %d, want 60 (full-rank H)", c.K())
	}
	if c.Edges() != 360 {
		t.Fatalf("edges = %d, want 360", c.Edges())
	}
	// Column weights exactly 3; row weights within ±1 of average.
	for v, nbrs := range c.VarNbrs {
		if len(nbrs) != 3 {
			t.Fatalf("variable %d has degree %d", v, len(nbrs))
		}
		seen := map[int]bool{}
		for _, ch := range nbrs {
			if seen[ch] {
				t.Fatalf("variable %d connects twice to check %d", v, ch)
			}
			seen[ch] = true
		}
	}
	for ch, nbrs := range c.CheckNbrs {
		if len(nbrs) < 5 || len(nbrs) > 7 {
			t.Fatalf("check %d has degree %d, want 6±1", ch, len(nbrs))
		}
	}
}

func TestCodeConstructionRejectsBadParams(t *testing.T) {
	cases := []struct{ n, m, w int }{
		{0, 10, 3}, {10, 0, 3}, {10, 10, 3}, {10, 20, 3}, {20, 10, 1}, {20, 10, 11},
	}
	for _, c := range cases {
		if _, err := NewRegular(c.n, c.m, c.w, 1); err == nil {
			t.Errorf("NewRegular(%d,%d,%d) accepted", c.n, c.m, c.w)
		}
	}
}

// TestEncodeSatisfiesChecks property: every encoded word has zero syndrome.
func TestEncodeSatisfiesChecks(t *testing.T) {
	c := mustCode(t, 96, 48, 3, 2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		info := make([]uint8, c.K())
		for i := range info {
			info[i] = uint8(r.Intn(2))
		}
		cw, err := c.Encode(info)
		if err != nil {
			return false
		}
		return c.CheckSyndrome(cw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestEncodeLinear property: encoding is linear over GF(2).
func TestEncodeLinear(t *testing.T) {
	c := mustCode(t, 64, 32, 3, 3)
	r := rand.New(rand.NewSource(4))
	for iter := 0; iter < 50; iter++ {
		a := make([]uint8, c.K())
		b := make([]uint8, c.K())
		ab := make([]uint8, c.K())
		for i := range a {
			a[i] = uint8(r.Intn(2))
			b[i] = uint8(r.Intn(2))
			ab[i] = a[i] ^ b[i]
		}
		ca, _ := c.Encode(a)
		cb, _ := c.Encode(b)
		cab, _ := c.Encode(ab)
		for i := range cab {
			if cab[i] != ca[i]^cb[i] {
				t.Fatalf("encoding not linear at bit %d", i)
			}
		}
	}
}

func TestEncodeWrongLength(t *testing.T) {
	c := mustCode(t, 64, 32, 3, 5)
	if _, err := c.Encode(make([]uint8, c.K()+1)); err == nil {
		t.Fatal("Encode accepted wrong-length input")
	}
}

func TestZeroCodeword(t *testing.T) {
	c := mustCode(t, 64, 32, 3, 6)
	cw, err := c.Encode(make([]uint8, c.K()))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range cw {
		if b != 0 {
			t.Fatalf("zero message produced nonzero bit at %d", i)
		}
	}
}

// TestNoiselessDecode: at effectively infinite SNR the decoder must return
// the transmitted codeword immediately.
func TestNoiselessDecode(t *testing.T) {
	c := mustCode(t, 120, 60, 3, 7)
	dec := NewDecoder(c)
	dec.EarlyStop = true
	r := rand.New(rand.NewSource(8))
	info := make([]uint8, c.K())
	for i := range info {
		info[i] = uint8(r.Intn(2))
	}
	cw, _ := c.Encode(info)
	llr := make([]LLR, c.N)
	for i, b := range cw {
		if b == 1 {
			llr[i] = -MaxLLR
		} else {
			llr[i] = MaxLLR
		}
	}
	got, iters, ok := dec.Decode(llr)
	if !ok {
		t.Fatal("noiseless decode failed")
	}
	if iters != 1 {
		t.Fatalf("noiseless decode took %d iterations", iters)
	}
	for i := range got {
		if got[i] != cw[i] {
			t.Fatalf("bit %d wrong", i)
		}
	}
}

// TestDecodeCorrectsNoise: at a healthy SNR the decoder fixes channel
// errors that hard decisions alone would get wrong.
func TestDecodeCorrectsNoise(t *testing.T) {
	c := mustCode(t, 240, 120, 3, 9)
	dec := NewDecoder(c)
	dec.EarlyStop = true
	dec.MaxIter = 30
	ch, err := NewChannel(3.5, c.Rate(), 10)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	okBlocks, hardErrBlocks := 0, 0
	for blk := 0; blk < 20; blk++ {
		info := make([]uint8, c.K())
		for i := range info {
			info[i] = uint8(r.Intn(2))
		}
		cw, _ := c.Encode(info)
		llr := ch.Transmit(cw)
		hardWrong := false
		for i := range llr {
			hard := uint8(0)
			if llr[i] < 0 {
				hard = 1
			}
			if hard != cw[i] {
				hardWrong = true
				break
			}
		}
		if hardWrong {
			hardErrBlocks++
		}
		got, _, ok := dec.Decode(llr)
		match := ok
		for i := range got {
			if got[i] != cw[i] {
				match = false
				break
			}
		}
		if match {
			okBlocks++
		}
	}
	if hardErrBlocks == 0 {
		t.Fatal("test SNR too high to exercise correction")
	}
	if okBlocks < 18 {
		t.Fatalf("decoder corrected only %d/20 blocks", okBlocks)
	}
}

// TestCheckNodeUpdateBruteForce property: the two-minimum implementation
// matches a brute-force exclusion loop.
func TestCheckNodeUpdateBruteForce(t *testing.T) {
	f := func(seed int64, degRaw uint8) bool {
		deg := 2 + int(degRaw%8)
		r := rand.New(rand.NewSource(seed))
		in := make([]LLR, deg)
		for i := range in {
			in[i] = LLR(r.Intn(2*MaxLLR+1) - MaxLLR)
		}
		out := make([]LLR, deg)
		CheckNodeUpdate(in, out, 3, 4)
		for i := range in {
			sign, min := 1, 1<<30
			for j, m := range in {
				if j == i {
					continue
				}
				v := int(m)
				if v < 0 {
					sign = -sign
					v = -v
				}
				if v < min {
					min = v
				}
			}
			mag := min * 3 / 4
			if mag > MaxLLR {
				mag = MaxLLR
			}
			if int(out[i]) != sign*mag {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestVarNodeUpdateBruteForce property: extrinsic sums match brute force
// with saturation.
func TestVarNodeUpdateBruteForce(t *testing.T) {
	f := func(seed int64, degRaw uint8, chRaw int8) bool {
		deg := 1 + int(degRaw%6)
		r := rand.New(rand.NewSource(seed))
		ch := LLR(int(chRaw) % (MaxLLR + 1))
		in := make([]LLR, deg)
		for i := range in {
			in[i] = LLR(r.Intn(2*MaxLLR+1) - MaxLLR)
		}
		out := make([]LLR, deg)
		total := VarNodeUpdate(ch, in, out)
		wantTotal := int32(ch)
		for _, m := range in {
			wantTotal += int32(m)
		}
		if total != wantTotal {
			return false
		}
		for i := range in {
			want := wantTotal - int32(in[i])
			if want > MaxLLR {
				want = MaxLLR
			}
			if want < -MaxLLR {
				want = -MaxLLR
			}
			if int32(out[i]) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeSaturation(t *testing.T) {
	cases := []struct {
		in   float64
		want LLR
	}{
		{0, 0}, {1.4, 1}, {-1.4, -1}, {100, MaxLLR}, {-100, -MaxLLR},
		{31.4, MaxLLR}, {-31.6, -MaxLLR}, {2.5, 3},
	}
	for _, c := range cases {
		if got := Quantize(c.in); got != c.want {
			t.Errorf("Quantize(%g) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestChannelDeterministic(t *testing.T) {
	c := mustCode(t, 64, 32, 3, 12)
	cw, _ := c.Encode(make([]uint8, c.K()))
	ch1, _ := NewChannel(2, c.Rate(), 99)
	ch2, _ := NewChannel(2, c.Rate(), 99)
	a, b := ch1.Transmit(cw), ch2.Transmit(cw)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("channel not deterministic for equal seeds")
		}
	}
}

func TestNewChannelRejectsBadRate(t *testing.T) {
	for _, rate := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewChannel(2, rate, 1); err == nil {
			t.Errorf("NewChannel accepted rate %g", rate)
		}
	}
}

// TestFixedIterationDeterministicDuration: without early stop, Decode
// always runs exactly MaxIter iterations — the property that makes block
// decode time (and the migration period) deterministic.
func TestFixedIterationDeterministicDuration(t *testing.T) {
	c := mustCode(t, 96, 48, 3, 13)
	dec := NewDecoder(c)
	dec.MaxIter = 12
	ch, _ := NewChannel(1.0, c.Rate(), 14)
	for blk := 0; blk < 5; blk++ {
		cw, _ := c.Encode(make([]uint8, c.K()))
		_, iters, _ := dec.Decode(ch.Transmit(cw))
		if iters != 12 {
			t.Fatalf("block %d ran %d iterations, want exactly 12", blk, iters)
		}
	}
}
