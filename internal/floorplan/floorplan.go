// Package floorplan models the physical layout of the NoC test chips. The
// paper's chips were placed and routed with a 160 nm standard-cell library,
// each functional unit (PE plus its router) occupying 4.36 mm²; we reproduce
// that geometry as a regular mesh of square blocks. The floorplan is the
// geometric input to the thermal RC network: block areas set vertical
// resistance and capacitance, shared edge lengths set lateral resistances.
package floorplan

import (
	"fmt"
	"math"

	"hotnoc/internal/geom"
)

// UnitAreaM2 is the paper's per-functional-unit area (4.36 mm²) in m².
const UnitAreaM2 = 4.36e-6

// UnitSideM is the side length of a square block with UnitAreaM2.
var UnitSideM = math.Sqrt(UnitAreaM2)

// Block is a rectangular region of the die hosting one functional unit
// (a PE with its router). Positions and sizes are in metres with the
// origin at the die's south-west corner.
type Block struct {
	// Name identifies the block in reports, e.g. "pe_2_3".
	Name string
	// Cell is the block's grid coordinate.
	Cell geom.Coord
	// X, Y locate the block's south-west corner on the die.
	X, Y float64
	// W, H are the block dimensions.
	W, H float64
}

// Area returns the block area in m².
func (b Block) Area() float64 { return b.W * b.H }

// CenterX and CenterY return the block centroid, used for distance-based
// diagnostics and report rendering.
func (b Block) CenterX() float64 { return b.X + b.W/2 }
func (b Block) CenterY() float64 { return b.Y + b.H/2 }

// Floorplan is a complete die layout: a grid of blocks in row-major order.
type Floorplan struct {
	Grid   geom.Grid
	Blocks []Block
}

// NewMesh builds the regular mesh floorplan of a g-sized chip with square
// blocks of the paper's unit area.
func NewMesh(g geom.Grid) *Floorplan {
	return NewMeshSized(g, UnitSideM, UnitSideM)
}

// NewMeshSized builds a mesh floorplan with explicit block dimensions,
// allowing sensitivity studies on the unit aspect ratio.
// It panics on non-positive dimensions.
func NewMeshSized(g geom.Grid, blockW, blockH float64) *Floorplan {
	if blockW <= 0 || blockH <= 0 {
		panic(fmt.Sprintf("floorplan: invalid block size %g x %g", blockW, blockH))
	}
	fp := &Floorplan{Grid: g, Blocks: make([]Block, 0, g.N())}
	for _, c := range g.Coords() {
		fp.Blocks = append(fp.Blocks, Block{
			Name: fmt.Sprintf("pe_%d_%d", c.X, c.Y),
			Cell: c,
			X:    float64(c.X) * blockW,
			Y:    float64(c.Y) * blockH,
			W:    blockW,
			H:    blockH,
		})
	}
	return fp
}

// N returns the number of blocks.
func (f *Floorplan) N() int { return len(f.Blocks) }

// DieW and DieH return the die dimensions in metres.
func (f *Floorplan) DieW() float64 { return float64(f.Grid.W) * f.Blocks[0].W }
func (f *Floorplan) DieH() float64 { return float64(f.Grid.H) * f.Blocks[0].H }

// DieArea returns the total die area in m².
func (f *Floorplan) DieArea() float64 {
	a := 0.0
	for _, b := range f.Blocks {
		a += b.Area()
	}
	return a
}

// Block returns the block at grid coordinate c.
func (f *Floorplan) Block(c geom.Coord) Block {
	return f.Blocks[f.Grid.Index(c)]
}

// Adjacency describes one shared edge between two blocks; SharedLen is the
// length of the common boundary through which lateral heat flows.
type Adjacency struct {
	A, B      int // row-major block indices, A < B
	SharedLen float64
	// Horizontal is true when the boundary is vertical (heat flows in X).
	Horizontal bool
}

// Adjacencies returns every pair of edge-sharing blocks, each pair once,
// ordered by (A, B). The thermal network places one lateral resistance per
// adjacency.
func (f *Floorplan) Adjacencies() []Adjacency {
	var out []Adjacency
	for _, c := range f.Grid.Coords() {
		i := f.Grid.Index(c)
		// Only east and north neighbours: ensures each pair appears once.
		if e := (geom.Coord{X: c.X + 1, Y: c.Y}); f.Grid.Contains(e) {
			out = append(out, Adjacency{
				A: i, B: f.Grid.Index(e),
				SharedLen:  f.Blocks[i].H,
				Horizontal: true,
			})
		}
		if n := (geom.Coord{X: c.X, Y: c.Y + 1}); f.Grid.Contains(n) {
			out = append(out, Adjacency{
				A: i, B: f.Grid.Index(n),
				SharedLen:  f.Blocks[i].W,
				Horizontal: false,
			})
		}
	}
	return out
}

// Validate checks geometric consistency: positive sizes, blocks on their
// grid positions, no overlaps, and full tiling of the die.
func (f *Floorplan) Validate() error {
	if f.N() != f.Grid.N() {
		return fmt.Errorf("floorplan: %d blocks for %d grid cells", f.N(), f.Grid.N())
	}
	for i, b := range f.Blocks {
		if b.W <= 0 || b.H <= 0 {
			return fmt.Errorf("floorplan: block %s has non-positive size", b.Name)
		}
		if f.Grid.Index(b.Cell) != i {
			return fmt.Errorf("floorplan: block %s stored at index %d, want %d",
				b.Name, i, f.Grid.Index(b.Cell))
		}
	}
	for i := 0; i < f.N(); i++ {
		for j := i + 1; j < f.N(); j++ {
			if overlaps(f.Blocks[i], f.Blocks[j]) {
				return fmt.Errorf("floorplan: blocks %s and %s overlap",
					f.Blocks[i].Name, f.Blocks[j].Name)
			}
		}
	}
	if got, want := f.DieArea(), f.DieW()*f.DieH(); math.Abs(got-want) > 1e-12 {
		return fmt.Errorf("floorplan: blocks cover %g m² of a %g m² die", got, want)
	}
	return nil
}

func overlaps(a, b Block) bool {
	const eps = 1e-15
	return a.X+a.W > b.X+eps && b.X+b.W > a.X+eps &&
		a.Y+a.H > b.Y+eps && b.Y+b.H > a.Y+eps
}
