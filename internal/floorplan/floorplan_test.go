package floorplan

import (
	"math"
	"testing"
	"testing/quick"

	"hotnoc/internal/geom"
)

func TestUnitArea(t *testing.T) {
	// The paper: each functional unit has an area of 4.36 mm².
	if got := UnitSideM * UnitSideM; math.Abs(got-4.36e-6) > 1e-12 {
		t.Fatalf("unit block area = %g m², want 4.36e-6", got)
	}
}

func TestMeshGeometry(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5, 8} {
		g := geom.NewGrid(n, n)
		fp := NewMesh(g)
		if err := fp.Validate(); err != nil {
			t.Fatalf("%dx%d mesh invalid: %v", n, n, err)
		}
		if fp.N() != n*n {
			t.Fatalf("%dx%d mesh has %d blocks", n, n, fp.N())
		}
		wantArea := float64(n*n) * UnitAreaM2
		if math.Abs(fp.DieArea()-wantArea) > 1e-12 {
			t.Fatalf("%dx%d die area %g, want %g", n, n, fp.DieArea(), wantArea)
		}
	}
}

func TestBlockLookup(t *testing.T) {
	g := geom.NewGrid(5, 5)
	fp := NewMesh(g)
	for _, c := range g.Coords() {
		b := fp.Block(c)
		if b.Cell != c {
			t.Fatalf("Block(%v) has cell %v", c, b.Cell)
		}
		if math.Abs(b.X-float64(c.X)*UnitSideM) > 1e-15 ||
			math.Abs(b.Y-float64(c.Y)*UnitSideM) > 1e-15 {
			t.Fatalf("Block(%v) at (%g,%g)", c, b.X, b.Y)
		}
	}
}

// TestAdjacencyCount verifies the mesh adjacency count 2·N·(N-1) for an
// NxN grid and that each adjacency shares a full block edge.
func TestAdjacencyCount(t *testing.T) {
	for _, n := range []int{2, 4, 5} {
		fp := NewMesh(geom.NewGrid(n, n))
		adj := fp.Adjacencies()
		want := 2 * n * (n - 1)
		if len(adj) != want {
			t.Fatalf("%dx%d: %d adjacencies, want %d", n, n, len(adj), want)
		}
		for _, a := range adj {
			if a.A >= a.B {
				t.Fatalf("adjacency (%d,%d) not ordered", a.A, a.B)
			}
			if math.Abs(a.SharedLen-UnitSideM) > 1e-15 {
				t.Fatalf("adjacency (%d,%d) shares %g m, want %g", a.A, a.B, a.SharedLen, UnitSideM)
			}
		}
	}
}

// TestAdjacencyUnique property-checks that no block pair appears twice.
func TestAdjacencyUnique(t *testing.T) {
	f := func(wRaw, hRaw uint8) bool {
		g := geom.NewGrid(1+int(wRaw%7), 1+int(hRaw%7))
		seen := map[[2]int]bool{}
		for _, a := range NewMesh(g).Adjacencies() {
			k := [2]int{a.A, a.B}
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAdjacencyMatchesGridNeighbors cross-checks adjacency extraction
// against the grid's 4-neighbourhood.
func TestAdjacencyMatchesGridNeighbors(t *testing.T) {
	g := geom.NewGrid(4, 5)
	fp := NewMeshSized(g, 1e-3, 2e-3)
	adjSet := map[[2]int]bool{}
	for _, a := range fp.Adjacencies() {
		adjSet[[2]int{a.A, a.B}] = true
	}
	for _, c := range g.Coords() {
		for _, nb := range g.Neighbors(c) {
			i, j := g.Index(c), g.Index(nb)
			if i > j {
				i, j = j, i
			}
			if !adjSet[[2]int{i, j}] {
				t.Fatalf("missing adjacency between %v and %v", c, nb)
			}
		}
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	fp := NewMesh(geom.NewGrid(2, 2))
	fp.Blocks[1].X = 0 // collide with block 0
	if err := fp.Validate(); err == nil {
		t.Fatal("Validate accepted overlapping blocks")
	}
}

func TestValidateCatchesBadCell(t *testing.T) {
	fp := NewMesh(geom.NewGrid(2, 2))
	fp.Blocks[0].Cell = geom.Coord{X: 1, Y: 1}
	if err := fp.Validate(); err == nil {
		t.Fatal("Validate accepted a mis-indexed block")
	}
}

func TestNewMeshSizedPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive block size")
		}
	}()
	NewMeshSized(geom.NewGrid(2, 2), 0, 1)
}

func TestRectangularMesh(t *testing.T) {
	g := geom.NewGrid(3, 7)
	fp := NewMeshSized(g, 2e-3, 1e-3)
	if err := fp.Validate(); err != nil {
		t.Fatalf("rectangular mesh invalid: %v", err)
	}
	if math.Abs(fp.DieW()-6e-3) > 1e-15 || math.Abs(fp.DieH()-7e-3) > 1e-15 {
		t.Fatalf("die %g x %g, want 6e-3 x 7e-3", fp.DieW(), fp.DieH())
	}
	// Horizontal adjacency shares the block height, vertical the width.
	for _, a := range fp.Adjacencies() {
		want := 2e-3
		if a.Horizontal {
			want = 1e-3
		}
		if math.Abs(a.SharedLen-want) > 1e-15 {
			t.Fatalf("adjacency (%d,%d) horizontal=%v shares %g, want %g",
				a.A, a.B, a.Horizontal, a.SharedLen, want)
		}
	}
}
