package sim

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"hotnoc/internal/chipcfg"
	"hotnoc/internal/core"
)

// mixedGrid interleaves periodic and reactive points over two schemes so
// every (config, scheme) task carries both kinds.
func mixedGrid() []Point {
	return []Point{
		Periodic("A", core.XYShift(), 1),
		Reactive("A", core.ReactiveConfig{Scheme: core.XYShift(), TriggerC: 84, SimBlocks: 200, WarmupBlocks: 100}),
		Periodic("A", core.Rot(), 4),
		Reactive("A", core.ReactiveConfig{Scheme: core.Rot(), TriggerC: 83, SimBlocks: 200, WarmupBlocks: 100}),
		Reactive("A", core.ReactiveConfig{Scheme: core.XYShift(), TriggerC: 82, SimBlocks: 200, WarmupBlocks: 100}),
		Periodic("A", core.XYShift(), 8),
	}
}

// TestMixedGridMatchesSerial: a grid mixing periodic and reactive points
// streams outcomes in point order with the result arm matching each
// point's kind, each arm bitwise identical to the fused serial evaluation
// on an independently built system.
func TestMixedGridMatchesSerial(t *testing.T) {
	pts := mixedGrid()
	outs, err := NewRunner(Options{Scale: testScale, Workers: 4}).
		Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(pts) {
		t.Fatalf("%d outcomes for %d points", len(outs), len(pts))
	}

	spec, err := chipcfg.ByName("A")
	if err != nil {
		t.Fatal(err)
	}
	built, err := spec.Scaled(testScale).Build()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		o := outs[i]
		if o.Point.Kind() != p.Kind() || o.Point.Scheme.Name != p.Scheme.Name {
			t.Fatalf("outcome %d is %s/%s, want %s/%s", i,
				o.Point.Kind(), o.Point.Scheme.Name, p.Kind(), p.Scheme.Name)
		}
		switch p.Kind() {
		case KindReactive:
			if o.Reactive == nil {
				t.Fatalf("reactive outcome %d carries no reactive result", i)
			}
			want, err := built.System.RunReactive(*p.Reactive)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*o.Reactive, want) {
				t.Errorf("point %d: reactive result differs from fused RunReactive", i)
			}
		default:
			if o.Reactive != nil {
				t.Fatalf("periodic outcome %d carries a reactive result", i)
			}
			want, err := built.System.Run(core.RunConfig{Scheme: p.Scheme, BlocksPerPeriod: p.Blocks})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(o.Result, want) {
				t.Errorf("point %d: periodic result differs from serial run", i)
			}
		}
	}
}

// TestMixedGridSharesCharacterizations: a mixed grid pays for each
// (config, scheme) orbit exactly once — reactive points reuse the
// characterization of periodic points with the same scheme and vice
// versa — and a repeat sweep performs zero NoC decodes. The decode
// counter is the deterministic witness: hit/miss counts can vary when
// concurrent tasks race on one key, decodes cannot.
func TestMixedGridSharesCharacterizations(t *testing.T) {
	r := NewRunner(Options{Scale: testScale, Workers: 4})
	pts := mixedGrid() // 6 points, 2 distinct (config, scheme) pairs
	if _, err := r.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	decodes := r.Decodes()
	if decodes == 0 {
		t.Fatal("cold mixed sweep performed no decodes")
	}
	// A reference runner characterizing just the two orbits (periodic
	// points only) sets the bar: the mixed grid must not decode more.
	ref := NewRunner(Options{Scale: testScale})
	if _, err := ref.Run(context.Background(), []Point{
		Periodic("A", core.XYShift(), 1), Periodic("A", core.Rot(), 1),
	}); err != nil {
		t.Fatal(err)
	}
	if decodes != ref.Decodes() {
		t.Fatalf("mixed grid performed %d decodes, want the two-orbit reference's %d",
			decodes, ref.Decodes())
	}
	if _, err := r.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	if got := r.Decodes(); got != decodes {
		t.Fatalf("repeat mixed sweep performed %d extra NoC decodes, want 0", got-decodes)
	}
}

// TestMixedGridDeterministicAcrossWorkerCounts: kind mixing does not
// break the runner's determinism guarantee.
func TestMixedGridDeterministicAcrossWorkerCounts(t *testing.T) {
	pts := mixedGrid()
	one, err := NewRunner(Options{Scale: testScale, Workers: 1}).Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	many, err := NewRunner(Options{Scale: testScale, Workers: 8}).Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range one {
		if !reflect.DeepEqual(one[i].Result, many[i].Result) ||
			!reflect.DeepEqual(one[i].Reactive, many[i].Reactive) {
			t.Fatalf("point %d: outcome depends on worker count", i)
		}
	}
}

// TestReactivePointValidation: malformed reactive points fail fast,
// naming the offending index, before any build or NoC work starts.
func TestReactivePointValidation(t *testing.T) {
	cases := []struct {
		name string
		pt   Point
		want string
	}{
		{"no scheme", Point{Config: "A", Reactive: &core.ReactiveConfig{TriggerC: 80}}, "no step function"},
		{"blocks on reactive", func() Point {
			p := Reactive("A", core.ReactiveConfig{Scheme: core.Rot(), TriggerC: 80})
			p.Blocks = 4
			return p
		}(), "migration period"},
		{"ablation on reactive", func() Point {
			p := Reactive("A", core.ReactiveConfig{Scheme: core.Rot(), TriggerC: 80})
			p.ExcludeMigrationEnergy = true
			return p
		}(), "migration-energy ablation"},
		{"scheme mismatch", func() Point {
			p := Reactive("A", core.ReactiveConfig{Scheme: core.Rot(), TriggerC: 80})
			p.Scheme = core.XYShift()
			return p
		}(), "reactive config selects scheme"},
		{"negative horizon", Reactive("A", core.ReactiveConfig{Scheme: core.Rot(), SimBlocks: -1}), "negative reactive horizon"},
		{"negative warmup", Reactive("A", core.ReactiveConfig{Scheme: core.Rot(), WarmupBlocks: -1}), "negative reactive warmup"},
		{"unknown config", Reactive("Z", core.ReactiveConfig{Scheme: core.Rot(), TriggerC: 80}), "Z"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRunner(Options{Scale: testScale})
			pts := []Point{Periodic("A", core.Rot(), 1), tc.pt}
			_, err := r.Run(context.Background(), pts)
			if err == nil || !strings.Contains(err.Error(), "point 1") ||
				!strings.Contains(err.Error(), tc.want) {
				t.Fatalf("bad point not rejected with index and cause %q (err %v)", tc.want, err)
			}
			if r.Decodes() != 0 {
				t.Fatal("validation failure still performed NoC work")
			}
		})
	}
}

// TestGroupPointsSplitsReactiveCells: reactive cells of one (config,
// scheme) spread across up to workers chunk tasks — a single-scheme
// trigger sweep must not serialize on one worker — while periodic cells
// keep one shared task, and every cell lands in exactly one task.
func TestGroupPointsSplitsReactiveCells(t *testing.T) {
	cfg := core.ReactiveConfig{Scheme: core.XYShift(), TriggerC: 80}
	pts := []Point{
		Periodic("A", core.XYShift(), 1),
		Reactive("A", cfg), Reactive("A", cfg), Reactive("A", cfg), Reactive("A", cfg),
		Periodic("A", core.XYShift(), 4),
	}
	tasks := groupPoints(pts, 4)
	var periodicTasks, reactiveTasks int
	seen := map[int]bool{}
	for _, tk := range tasks {
		if pts[tk.cells[0]].Kind() == KindReactive {
			reactiveTasks++
		} else {
			periodicTasks++
		}
		for _, c := range tk.cells {
			if seen[c] {
				t.Fatalf("cell %d scheduled twice", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != len(pts) {
		t.Fatalf("%d cells scheduled, want %d", len(seen), len(pts))
	}
	if periodicTasks != 1 {
		t.Fatalf("%d periodic tasks, want 1 shared task", periodicTasks)
	}
	if reactiveTasks != 4 {
		t.Fatalf("4 reactive cells over 4 workers scheduled as %d tasks, want 4", reactiveTasks)
	}
	// A single worker keeps one task per group — no pointless clones.
	if got := len(groupPoints(pts, 1)); got != 2 {
		t.Fatalf("workers=1 produced %d tasks, want 2", got)
	}
}

// TestChunkedReactiveSweepAccountsOncePerKey: however many chunk tasks a
// reactive sweep splits into, each (config, scheme) key produces exactly
// one StageCharacterizeDone event and one hit-or-miss count per sweep —
// the counters measure orbits, not scheduling artifacts.
func TestChunkedReactiveSweepAccountsOncePerKey(t *testing.T) {
	cfg := core.ReactiveConfig{Scheme: core.XYShift(), TriggerC: 84, SimBlocks: 100, WarmupBlocks: 50}
	pts := []Point{Reactive("A", cfg), Reactive("A", cfg), Reactive("A", cfg), Reactive("A", cfg)}

	var mu sync.Mutex
	done := 0
	r := NewRunner(Options{Scale: testScale, Workers: 4, Progress: func(ev Event) {
		if ev.Stage == StageCharacterizeDone {
			mu.Lock()
			done++
			mu.Unlock()
		}
	}})
	if _, err := r.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	if done != 1 {
		t.Fatalf("chunked reactive sweep emitted %d characterize-done events, want 1", done)
	}
	hits, misses := r.CacheStats()
	if hits+misses != 1 {
		t.Fatalf("chunked reactive sweep recorded %d characterization requests, want 1", hits+misses)
	}
	// A second sweep over the same grid accounts once more, as a hit.
	if _, err := r.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	hits, misses = r.CacheStats()
	if hits+misses != 2 || hits == 0 {
		t.Fatalf("repeat sweep recorded %d hits / %d misses, want one more request, a hit", hits, misses)
	}
}

// TestPointKind: the zero reactive field means periodic, preserving the
// meaning of pre-unification literals.
func TestPointKind(t *testing.T) {
	if k := (Point{Config: "A", Scheme: core.Rot()}).Kind(); k != KindPeriodic {
		t.Fatalf("bare literal has kind %q, want %q", k, KindPeriodic)
	}
	if k := Reactive("A", core.ReactiveConfig{Scheme: core.Rot()}).Kind(); k != KindReactive {
		t.Fatalf("Reactive constructor built kind %q, want %q", k, KindReactive)
	}
	if k := Periodic("A", core.Rot(), 4).Kind(); k != KindPeriodic {
		t.Fatalf("Periodic constructor built kind %q, want %q", k, KindPeriodic)
	}
}
