package sim

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"hotnoc/internal/chipcfg"
	"hotnoc/internal/core"
)

// testScale keeps full-pipeline builds fast while preserving every code
// path (same convention as the façade tests).
const testScale = 8

// TestRunMatchesSerialWalk: the concurrent runner's outcomes are bitwise
// identical to a serial walk of the same grid on an independently built
// system, and arrive in point order.
func TestRunMatchesSerialWalk(t *testing.T) {
	pts := Grid([]string{"A"}, []core.Scheme{core.XYShift(), core.Rot()}, []int{1, 4})
	pts = append(pts, Point{
		Config: "A", Scheme: core.Rot(), Blocks: 1, ExcludeMigrationEnergy: true,
	})
	outs, err := NewRunner(Options{Scale: testScale, Workers: 4}).
		Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(pts) {
		t.Fatalf("%d outcomes for %d points", len(outs), len(pts))
	}

	spec, err := chipcfg.ByName("A")
	if err != nil {
		t.Fatal(err)
	}
	built, err := spec.Scaled(testScale).Build()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		got := outs[i].Point
		if got.Config != p.Config || got.Scheme.Name != p.Scheme.Name ||
			got.Blocks != p.Blocks || got.ExcludeMigrationEnergy != p.ExcludeMigrationEnergy {
			t.Fatalf("outcome %d is for point %+v, want %+v", i, got, p)
		}
		serial, err := built.System.Run(core.RunConfig{
			Scheme:                 p.Scheme,
			BlocksPerPeriod:        p.Blocks,
			ExcludeMigrationEnergy: p.ExcludeMigrationEnergy,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, outs[i].Result) {
			t.Errorf("point %d (%s/%s/b%d): parallel result differs from serial walk",
				i, p.Config, p.Scheme.Name, p.Blocks)
		}
	}
}

// TestRunDeterministicAcrossWorkerCounts: the same grid gives identical
// outcomes no matter how it is scheduled.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	pts := Grid([]string{"B"}, []core.Scheme{core.XMirrorScheme(), core.RightShift()}, []int{1, 2})
	one, err := NewRunner(Options{Scale: testScale, Workers: 1}).
		Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	many, err := NewRunner(Options{Scale: testScale, Workers: 8}).
		Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if !reflect.DeepEqual(one[i].Result, many[i].Result) {
			t.Errorf("point %d differs between 1-worker and 8-worker runs", i)
		}
	}
}

// TestRunSharesBuilds: outcomes of the same configuration share one
// calibrated build.
func TestRunSharesBuilds(t *testing.T) {
	pts := Grid([]string{"C"}, []core.Scheme{core.XYShift(), core.XMirrorScheme()}, nil)
	outs, err := NewRunner(Options{Scale: testScale}).Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Built == nil || outs[0].Built != outs[1].Built {
		t.Error("outcomes of one configuration do not share a build")
	}
}

// TestRunUnknownConfig: build errors surface with the offending cell.
func TestRunUnknownConfig(t *testing.T) {
	_, err := NewRunner(Options{Scale: testScale}).Run(context.Background(),
		[]Point{{Config: "Z", Scheme: core.Rot()}})
	if err == nil {
		t.Fatal("unknown configuration accepted")
	}
}

// TestRunFailsFastOnBadPoints: malformed grids are rejected before any
// build or characterization starts, and the error names the offending
// point index.
func TestRunFailsFastOnBadPoints(t *testing.T) {
	r := NewRunner(Options{Scale: testScale, Progress: func(ev Event) {
		t.Errorf("pipeline event %v fired for an invalid grid", ev)
	}})
	cases := []struct {
		name string
		pts  []Point
		frag string
	}{
		{
			"unknown config",
			[]Point{{Config: "A", Scheme: core.Rot()}, {Config: "Z", Scheme: core.Rot()}},
			"point 1",
		},
		{
			"negative blocks",
			[]Point{{Config: "A", Scheme: core.Rot()}, {Config: "A", Scheme: core.XYShift(), Blocks: -3}},
			"point 1: negative migration period",
		},
		{
			"nil scheme",
			[]Point{{Config: "A", Scheme: core.Scheme{Name: "custom"}}},
			"point 0",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := r.Run(context.Background(), tc.pts)
			if err == nil {
				t.Fatal("bad grid accepted")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not name the bad point (%q)", err, tc.frag)
			}
		})
	}
	if n := r.Decodes(); n != 0 {
		t.Fatalf("%d decodes performed for invalid grids, want 0", n)
	}
}

// TestStreamYieldsInPointOrder: the streaming sequence delivers every
// outcome, in grid order, while work completes concurrently.
func TestStreamYieldsInPointOrder(t *testing.T) {
	pts := Grid([]string{"A"}, []core.Scheme{core.XYShift(), core.Rot()}, []int{1, 4})
	r := NewRunner(Options{Scale: testScale, Workers: 4})
	i := 0
	for out, err := range r.Stream(context.Background(), pts) {
		if err != nil {
			t.Fatal(err)
		}
		p := pts[i]
		if out.Point.Config != p.Config || out.Point.Scheme.Name != p.Scheme.Name ||
			out.Point.Blocks != p.Blocks {
			t.Fatalf("stream position %d carries %s/%s/b%d, want %s/%s/b%d", i,
				out.Point.Config, out.Point.Scheme.Name, out.Point.Blocks,
				p.Config, p.Scheme.Name, p.Blocks)
		}
		i++
	}
	if i != len(pts) {
		t.Fatalf("stream yielded %d outcomes, want %d", i, len(pts))
	}
}

// TestStreamEarlyBreak: breaking out of the sequence cancels outstanding
// work and returns without deadlocking.
func TestStreamEarlyBreak(t *testing.T) {
	pts := Grid([]string{"A"}, core.AllSchemes(), []int{1, 4})
	r := NewRunner(Options{Scale: testScale, Workers: 2})
	n := 0
	for _, err := range r.Stream(context.Background(), pts) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("consumed %d outcomes before break, want 2", n)
	}
	// The runner stays usable after an abandoned stream.
	if _, err := r.Run(context.Background(), pts[:2]); err != nil {
		t.Fatal(err)
	}
}

// TestStreamCancelledContext: the stream surfaces context cancellation as
// its final yielded error.
func TestStreamCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var last error
	n := 0
	for _, err := range NewRunner(Options{Scale: testScale}).
		Stream(ctx, Grid([]string{"A"}, core.AllSchemes(), nil)) {
		last = err
		n++
	}
	if n != 1 || !errors.Is(last, context.Canceled) {
		t.Fatalf("stream yielded %d times with final err %v, want one context.Canceled", n, last)
	}
}

// TestRunCancelledContext: a cancelled context stops the sweep without
// doing the work.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewRunner(Options{Scale: testScale}).Run(ctx,
		Grid([]string{"A"}, core.AllSchemes(), nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunEmptyGrid: no points, no work, no error.
func TestRunEmptyGrid(t *testing.T) {
	outs, err := NewRunner(Options{}).Run(context.Background(), nil)
	if err != nil || outs != nil {
		t.Fatalf("empty grid gave (%v, %v)", outs, err)
	}
}

// TestGridOrder: the cross product is configuration-major with schemes
// then periods minor.
func TestGridOrder(t *testing.T) {
	pts := Grid([]string{"A", "B"}, []core.Scheme{core.Rot(), core.XYShift()}, []int{1, 4})
	want := []struct {
		cfg    string
		scheme string
		blocks int
	}{
		{"A", "Rot", 1}, {"A", "Rot", 4}, {"A", "X-Y Shift", 1}, {"A", "X-Y Shift", 4},
		{"B", "Rot", 1}, {"B", "Rot", 4}, {"B", "X-Y Shift", 1}, {"B", "X-Y Shift", 4},
	}
	if len(pts) != len(want) {
		t.Fatalf("%d points, want %d", len(pts), len(want))
	}
	for i, w := range want {
		if pts[i].Config != w.cfg || pts[i].Scheme.Name != w.scheme || pts[i].Blocks != w.blocks {
			t.Errorf("point %d is %s/%s/b%d, want %s/%s/b%d", i,
				pts[i].Config, pts[i].Scheme.Name, pts[i].Blocks, w.cfg, w.scheme, w.blocks)
		}
	}
}
