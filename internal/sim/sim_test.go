package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"hotnoc/internal/chipcfg"
	"hotnoc/internal/core"
)

// testScale keeps full-pipeline builds fast while preserving every code
// path (same convention as the façade tests).
const testScale = 8

// TestRunMatchesSerialWalk: the concurrent runner's outcomes are bitwise
// identical to a serial walk of the same grid on an independently built
// system, and arrive in point order.
func TestRunMatchesSerialWalk(t *testing.T) {
	pts := Grid([]string{"A"}, []core.Scheme{core.XYShift(), core.Rot()}, []int{1, 4})
	pts = append(pts, Point{
		Config: "A", Scheme: core.Rot(), Blocks: 1, ExcludeMigrationEnergy: true,
	})
	outs, err := NewRunner(Options{Scale: testScale, Workers: 4}).
		Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(pts) {
		t.Fatalf("%d outcomes for %d points", len(outs), len(pts))
	}

	spec, err := chipcfg.ByName("A")
	if err != nil {
		t.Fatal(err)
	}
	built, err := spec.Scaled(testScale).Build()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		got := outs[i].Point
		if got.Config != p.Config || got.Scheme.Name != p.Scheme.Name ||
			got.Blocks != p.Blocks || got.ExcludeMigrationEnergy != p.ExcludeMigrationEnergy {
			t.Fatalf("outcome %d is for point %+v, want %+v", i, got, p)
		}
		serial, err := built.System.Run(core.RunConfig{
			Scheme:                 p.Scheme,
			BlocksPerPeriod:        p.Blocks,
			ExcludeMigrationEnergy: p.ExcludeMigrationEnergy,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, outs[i].Result) {
			t.Errorf("point %d (%s/%s/b%d): parallel result differs from serial walk",
				i, p.Config, p.Scheme.Name, p.Blocks)
		}
	}
}

// TestRunDeterministicAcrossWorkerCounts: the same grid gives identical
// outcomes no matter how it is scheduled.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	pts := Grid([]string{"B"}, []core.Scheme{core.XMirrorScheme(), core.RightShift()}, []int{1, 2})
	one, err := NewRunner(Options{Scale: testScale, Workers: 1}).
		Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	many, err := NewRunner(Options{Scale: testScale, Workers: 8}).
		Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if !reflect.DeepEqual(one[i].Result, many[i].Result) {
			t.Errorf("point %d differs between 1-worker and 8-worker runs", i)
		}
	}
}

// TestRunSharesBuilds: outcomes of the same configuration share one
// calibrated build.
func TestRunSharesBuilds(t *testing.T) {
	pts := Grid([]string{"C"}, []core.Scheme{core.XYShift(), core.XMirrorScheme()}, nil)
	outs, err := NewRunner(Options{Scale: testScale}).Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Built == nil || outs[0].Built != outs[1].Built {
		t.Error("outcomes of one configuration do not share a build")
	}
}

// TestRunUnknownConfig: build errors surface with the offending cell.
func TestRunUnknownConfig(t *testing.T) {
	_, err := NewRunner(Options{Scale: testScale}).Run(context.Background(),
		[]Point{{Config: "Z", Scheme: core.Rot()}})
	if err == nil {
		t.Fatal("unknown configuration accepted")
	}
}

// TestRunCancelledContext: a cancelled context stops the sweep without
// doing the work.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewRunner(Options{Scale: testScale}).Run(ctx,
		Grid([]string{"A"}, core.AllSchemes(), nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunEmptyGrid: no points, no work, no error.
func TestRunEmptyGrid(t *testing.T) {
	outs, err := NewRunner(Options{}).Run(context.Background(), nil)
	if err != nil || outs != nil {
		t.Fatalf("empty grid gave (%v, %v)", outs, err)
	}
}

// TestGridOrder: the cross product is configuration-major with schemes
// then periods minor.
func TestGridOrder(t *testing.T) {
	pts := Grid([]string{"A", "B"}, []core.Scheme{core.Rot(), core.XYShift()}, []int{1, 4})
	want := []struct {
		cfg    string
		scheme string
		blocks int
	}{
		{"A", "Rot", 1}, {"A", "Rot", 4}, {"A", "X-Y Shift", 1}, {"A", "X-Y Shift", 4},
		{"B", "Rot", 1}, {"B", "Rot", 4}, {"B", "X-Y Shift", 1}, {"B", "X-Y Shift", 4},
	}
	if len(pts) != len(want) {
		t.Fatalf("%d points, want %d", len(pts), len(want))
	}
	for i, w := range want {
		if pts[i].Config != w.cfg || pts[i].Scheme.Name != w.scheme || pts[i].Blocks != w.blocks {
			t.Errorf("point %d is %s/%s/b%d, want %s/%s/b%d", i,
				pts[i].Config, pts[i].Scheme.Name, pts[i].Blocks, w.cfg, w.scheme, w.blocks)
		}
	}
}
