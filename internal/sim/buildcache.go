package sim

import (
	"fmt"
	"path/filepath"
	"sync/atomic"

	"hotnoc/internal/chipcfg"
)

// buildFormatVersion gates disk entries: bump it whenever assembly,
// placement or calibration changes in a way that invalidates persisted
// build snapshots. Entries with any other version are rebuilt.
const buildFormatVersion = 1

// BuildKey identifies one persisted build: a (configuration, scale)
// pair. Placement annealing and energy calibration are pure functions of
// this key, which is what makes persisting their outcome sound.
type BuildKey struct {
	Config string
	Scale  int
}

// diskBuild is the on-disk envelope of one persisted build. The key is
// stored alongside the payload so a renamed or copied file cannot serve
// the wrong build, and GridN guards the payload's dimensions before the
// spec-level revalidation in chipcfg.FromData.
type diskBuild struct {
	Version int
	Key     BuildKey
	GridN   int
	Data    chipcfg.BuildData
}

// BuildCache builds each (configuration, scale) once and shares the
// result across all workers and runs. Concurrent requests for the same
// key block on a single build; different keys build in parallel. With a
// directory configured, the expensive products of each build — the
// annealed placement and the energy calibration — persist as gob
// snapshots (chipcfg.BuildData), so a fresh process pointed at the same
// directory reconstitutes its builds by deterministic assembly alone:
// zero annealing, zero calibration, bitwise-identical evaluations.
// Corrupt, stale or mismatched snapshots are ignored (and overwritten
// after a fresh build), never fatal.
//
// A failed build is never cached: the failing request reports the error
// and the key is forgotten, so the next request retries rather than
// replaying the failure for the cache's lifetime.
//
// A positive limit bounds the number of build snapshot files in the
// directory with least-recently-used eviction, independently of the
// characterization files sharing it (each artifact kind has its own
// prefix and its own bound).
type BuildCache struct {
	disk   diskCache
	flight singleflight[BuildKey, *chipcfg.Built]

	// build constructs a cold build; tests inject failures here. The
	// default resolves the spec and runs the full anneal + calibrate
	// pipeline.
	build func(config string, scale int) (*chipcfg.Built, error)
}

// NewBuildCache returns a cache persisting build snapshots under dir; an
// empty dir keeps the cache memory-only (every process pays its own
// annealing and calibration once per key). A positive limit bounds the
// snapshot file count under dir with least-recently-used eviction; zero
// means unbounded.
func NewBuildCache(dir string, limit int) *BuildCache {
	return &BuildCache{
		disk: diskCache{dir: dir, limit: limit, prefix: "build"},
		build: func(config string, scale int) (*chipcfg.Built, error) {
			spec, err := chipcfg.ByName(config)
			if err != nil {
				return nil, err
			}
			return spec.Scaled(scale).Build()
		},
	}
}

// Get returns the calibrated build for (config, scale), reconstituting it
// from a persisted snapshot when one validates, and constructing it —
// annealing and calibrating — otherwise. The returned flag reports a
// cache hit: true when the expensive stages were skipped (entry already
// in memory or restored from disk), false when a cold build ran. A build
// error is returned to this caller and any goroutine that was blocked on
// the same key, but is not cached; the next request for the key retries.
func (c *BuildCache) Get(config string, scale int) (*chipcfg.Built, bool, error) {
	key := BuildKey{Config: config, Scale: scale}
	return c.flight.do(key,
		func() (*chipcfg.Built, bool) {
			b := c.load(key)
			return b, b != nil
		},
		func() (*chipcfg.Built, error) {
			// Cold path: serialize with other processes sharing the cache
			// directory via an advisory per-key lock file, so two
			// coordinator-less daemons anneal a configuration once. After
			// acquiring (i.e. after any concurrent holder finished),
			// re-check the disk — the holder's snapshot usually makes the
			// build unnecessary. Lock acquisition failure (no directory,
			// wait budget exhausted, stale break) degrades to building
			// here, never to an error.
			if release := c.disk.waitLock(c.path(key)); release != nil {
				defer release()
				if b := c.load(key); b != nil {
					return b, nil
				}
			}
			b, err := c.build(config, scale)
			if err != nil {
				return nil, err
			}
			c.save(key, b)
			return b, nil
		},
		func(last *atomic.Int64) {
			// Keep hot in-memory builds visible to the on-disk LRU,
			// debounced to at most one syscall per entry per interval.
			c.disk.touchDebounced(c.path(key), last)
		})
}

// path maps a key to its snapshot file under the cache directory.
func (c *BuildCache) path(key BuildKey) string {
	return filepath.Join(c.disk.dir, fmt.Sprintf("build_%s_s%d_%s.gob",
		slug(key.Config), key.Scale, nameHash(key.Config)))
}

// load reconstitutes a persisted build, returning nil on any problem — a
// missing, corrupt, stale-format, mismatched or spec-invalid snapshot
// means "build it again", never an error. A restored snapshot passes
// both the envelope checks here and chipcfg.FromData's revalidation
// against the (scaled) spec before it is trusted.
func (c *BuildCache) load(key BuildKey) *chipcfg.Built {
	var db diskBuild
	if !c.disk.load(c.path(key), &db) {
		return nil
	}
	if db.Version != buildFormatVersion || db.Key != key {
		return nil
	}
	spec, err := chipcfg.ByName(key.Config)
	if err != nil || db.GridN != spec.GridN {
		return nil
	}
	built, err := spec.Scaled(key.Scale).FromData(&db.Data)
	if err != nil {
		return nil
	}
	// Touch the file so LRU eviction sees a served snapshot as recently
	// used, not as old as its original write.
	c.disk.touch(c.path(key))
	return built
}

// save persists a build's snapshot best-effort; see diskCache.save.
func (c *BuildCache) save(key BuildKey, built *chipcfg.Built) {
	if built == nil {
		return
	}
	c.disk.save(c.path(key), diskBuild{
		Version: buildFormatVersion,
		Key:     key,
		GridN:   built.Spec.GridN,
		Data:    *built.Data(),
	})
}
