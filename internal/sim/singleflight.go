package sim

import (
	"sync"
	"sync/atomic"
	"time"
)

// singleflight is the in-memory half shared by the sweep layer's caches:
// a per-key resolve-once map. The first goroutine in for a key resolves
// it — from a disk snapshot when one validates, by computing otherwise —
// while concurrent requests for the same key block on that one
// resolution and different keys proceed in parallel.
//
// A failed resolution is delivered to the resolver and to every
// goroutine that was blocked on it, but is never cached: the key is
// cleared before the error propagates, so the next request starts a
// fresh resolution instead of replaying the failure for the cache's
// lifetime. (The entry the waiters still hold keeps the error; no
// goroutine left waiting can resolve an orphaned entry or duplicate the
// retry.)
type singleflight[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*sfEntry[V]
}

// sfEntry is one key's resolution slot. Its mutex serializes
// resolution; done/err record the outcome. resolved flips once the
// entry is populated; together with fromDisk it lets each request
// report whether *its* call skipped the expensive stage — a caller that
// merely waited on another goroutine's in-flight compute is not a hit.
// lastTouch debounces the on-disk LRU touch on memory hits.
//
// The errcache analyzer enforces the no-poisoning rule here: val must
// never be stored alongside (or before checking) a non-nil err.
//
//hotnoc:errcache
type sfEntry[V any] struct {
	mu       sync.Mutex
	done     bool
	err      error
	val      V
	fromDisk bool

	resolved  atomic.Bool
	lastTouch atomic.Int64
}

// do returns the value for key and whether it was a cache hit. load
// tries the persisted snapshot (second return reports success); compute
// runs when it misses; touched, when non-nil, fires on memory hits with
// the entry's debounce state so hot entries stay visible to the on-disk
// LRU.
func (s *singleflight[K, V]) do(
	key K,
	load func() (V, bool),
	compute func() (V, error),
	touched func(last *atomic.Int64),
) (V, bool, error) {
	s.mu.Lock()
	if s.entries == nil {
		s.entries = map[K]*sfEntry[V]{}
	}
	e, ok := s.entries[key]
	if !ok {
		e = &sfEntry[V]{}
		s.entries[key] = e
	}
	s.mu.Unlock()

	alreadyResolved := e.resolved.Load()
	e.mu.Lock()
	if e.done {
		val, fromDisk := e.val, e.fromDisk
		e.mu.Unlock()
		if alreadyResolved && touched != nil {
			touched(&e.lastTouch)
		}
		return val, alreadyResolved || fromDisk, nil
	}
	if e.err != nil {
		// The resolution this caller was blocked on failed. Share the
		// error; the key itself was already cleared, so requests
		// arriving after the failure retry on a fresh entry.
		err := e.err
		e.mu.Unlock()
		var zero V
		return zero, false, err
	}
	// This goroutine resolves the entry; e.mu stays held so concurrent
	// requests for the same key block on one resolution.
	if val, ok := load(); ok {
		e.val, e.fromDisk, e.done = val, true, true
		e.resolved.Store(true)
		e.lastTouch.Store(time.Now().UnixNano())
		e.mu.Unlock()
		return val, true, nil
	}
	val, err := compute()
	if err != nil {
		// Do not poison the key: forget the entry (future requests get a
		// fresh one) and record the error for the waiters blocked on
		// this one.
		s.mu.Lock()
		if s.entries[key] == e {
			delete(s.entries, key)
		}
		s.mu.Unlock()
		e.err = err
		e.mu.Unlock()
		var zero V
		return zero, false, err
	}
	e.val, e.done = val, true
	e.resolved.Store(true)
	e.mu.Unlock()
	return val, false, nil
}
