package sim

import "fmt"

// Stage labels one pipeline event of a sweep: configuration build,
// (configuration, scheme) NoC characterization, or per-point thermal
// evaluation.
type Stage string

const (
	// StageBuildStart / StageBuildDone bracket one configuration's
	// construction. They fire once per (configuration, scale) over a
	// runner's lifetime — a build served from the runner's own memory
	// afterwards emits nothing. The done event's CacheHit reports whether
	// the build was reconstituted from a persisted snapshot (true) or
	// annealed and calibrated cold (false). A failed build leaves its
	// start event unpaired and releases the once-per-key claim, so a
	// successful retry brackets normally.
	StageBuildStart Stage = "build-start"
	StageBuildDone  Stage = "build-done"
	// StageCharacterizeStart fires when a (configuration, scheme) orbit
	// starts simulating on the cycle-accurate NoC. It does not fire for
	// characterizations served from the cross-run cache.
	StageCharacterizeStart Stage = "characterize-start"
	// StageCharacterizeDone fires when a characterization becomes
	// available, whether computed (CacheHit false) or served from the
	// in-memory/disk cache (CacheHit true).
	StageCharacterizeDone Stage = "characterize-done"
	// StageEvaluateDone fires after each grid point's thermal evaluation,
	// with Point set to the point's index in the sweep grid.
	StageEvaluateDone Stage = "evaluate-done"
)

// Event is one progress notification from a running sweep. Events are
// delivered in pipeline order for any single grid point, but points
// progress concurrently, so a consumer sees stages of different points
// interleaved. The runner serializes delivery: the callback is never
// invoked concurrently and needs no locking of its own.
type Event struct {
	Stage Stage
	// Config and Scale identify the build; Scheme is empty for build
	// events.
	Config string
	Scale  int
	Scheme string
	// Point is the grid-point index for StageEvaluateDone, -1 otherwise.
	Point int
	// Blocks is the point's migration period for StageEvaluateDone on a
	// periodic point; zero for reactive points.
	Blocks int
	// Kind is the point's experiment kind ("periodic" or "reactive") for
	// StageEvaluateDone; empty otherwise.
	Kind string
	// CacheHit reports, on StageCharacterizeDone, that the orbit was
	// served from the cross-run characterization cache (memory or disk)
	// and the NoC stage was skipped — and, on StageBuildDone, that the
	// build was reconstituted from a persisted snapshot and the annealing
	// and calibration stages were skipped.
	CacheHit bool
}

// String renders the event as a one-line log entry.
func (e Event) String() string {
	switch e.Stage {
	case StageBuildStart:
		return fmt.Sprintf("%s config %s scale %d", e.Stage, e.Config, e.Scale)
	case StageBuildDone:
		how := "built"
		if e.CacheHit {
			how = "cache hit"
		}
		return fmt.Sprintf("%s config %s scale %d (%s)", e.Stage, e.Config, e.Scale, how)
	case StageCharacterizeStart:
		return fmt.Sprintf("%s config %s scheme %s", e.Stage, e.Config, e.Scheme)
	case StageCharacterizeDone:
		hit := "computed"
		if e.CacheHit {
			hit = "cache hit"
		}
		return fmt.Sprintf("%s config %s scheme %s (%s)", e.Stage, e.Config, e.Scheme, hit)
	case StageEvaluateDone:
		return fmt.Sprintf("%s point %d config %s scheme %s blocks %d",
			e.Stage, e.Point, e.Config, e.Scheme, e.Blocks)
	}
	return string(e.Stage)
}
