package sim

import (
	"encoding/gob"
	"errors"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hotnoc/internal/core"
	"hotnoc/internal/geom"
)

// fakeChar builds a small, fully populated characterization payload.
func fakeChar(n int) *core.CharData {
	blockJ := func(seed float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = seed + float64(i)*0.125
		}
		return out
	}
	return &core.CharData{
		SchemeName:     "Rot",
		BaselineCycles: 1000,
		BaselineBlockJ: blockJ(1.5),
		Legs: []core.LegActivity{
			{
				Step:         geom.Rotation(3),
				DecodeCycles: 990,
				DecodeBlockJ: blockJ(2.25),
				DecodeJ:      7.5,
				Migration:    core.MigrationStats{Cycles: 120, Phases: 3, Transfers: 8, StateFlitsMoved: 64},
				MigBlockJ:    blockJ(0.5),
				MigJ:         1.25,
			},
		},
	}
}

// TestCharCacheRoundTrip: an entry written to disk is restored bit for bit
// by a fresh cache over the same directory, without invoking compute.
func TestCharCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := CharKey{Config: "A", Scheme: "Rot", Scale: 8}
	const n = 9
	want := fakeChar(n)

	c1 := NewCharCache(dir, 0)
	got, hit, err := c1.Get(key, n, func() (*core.CharData, error) { return want, nil })
	if err != nil || hit {
		t.Fatalf("first Get = (hit %v, err %v), want computed", hit, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("first Get returned different data")
	}

	c2 := NewCharCache(dir, 0)
	got2, hit2, err := c2.Get(key, n, func() (*core.CharData, error) {
		t.Fatal("fresh cache recomputed a persisted entry")
		return nil, nil
	})
	if err != nil || !hit2 {
		t.Fatalf("restored Get = (hit %v, err %v), want disk hit", hit2, err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("disk round trip altered the characterization")
	}
}

// TestCharCacheMemoryHit: the second in-process Get for a key is a hit and
// does not recompute.
func TestCharCacheMemoryHit(t *testing.T) {
	c := NewCharCache("", 0) // memory-only
	key := CharKey{Config: "B", Scheme: "X-Y Shift", Scale: 1}
	computes := 0
	get := func() (*core.CharData, bool, error) {
		return c.Get(key, 4, func() (*core.CharData, error) {
			computes++
			return fakeChar(4), nil
		})
	}
	if _, hit, err := get(); hit || err != nil {
		t.Fatalf("cold Get = (hit %v, err %v)", hit, err)
	}
	if _, hit, err := get(); !hit || err != nil {
		t.Fatalf("warm Get = (hit %v, err %v)", hit, err)
	}
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
}

// TestCharCacheIgnoresCorruptEntry: garbage bytes on disk mean "recompute
// and overwrite", never an error.
func TestCharCacheIgnoresCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	key := CharKey{Config: "C", Scheme: "Rot", Scale: 8}
	const n = 4
	c := NewCharCache(dir, 0)
	if err := os.WriteFile(c.path(key), []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	want := fakeChar(n)
	got, hit, err := c.Get(key, n, func() (*core.CharData, error) { return want, nil })
	if err != nil {
		t.Fatalf("corrupt entry became fatal: %v", err)
	}
	if hit {
		t.Fatal("corrupt entry served as a cache hit")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("corrupt entry corrupted the recomputed result")
	}
	// The overwrite must leave a valid entry behind.
	if _, hit, err := NewCharCache(dir, 0).Get(key, n, func() (*core.CharData, error) {
		t.Fatal("overwritten entry not readable")
		return nil, nil
	}); err != nil || !hit {
		t.Fatalf("after overwrite: (hit %v, err %v)", hit, err)
	}
}

// TestCharCacheRetriesAfterError: a failed computation must not poison
// its key — the error reaches the failing request, the entry is
// forgotten, and the next request retries (and can then be served from
// memory like any other). The regression this pins: sync.Once-based
// entries cached the first error forever, so one transient failure
// failed every later job touching the key for the life of the service.
func TestCharCacheRetriesAfterError(t *testing.T) {
	c := NewCharCache("", 0)
	key := CharKey{Config: "A", Scheme: "Rot", Scale: 8}
	const n = 4
	transient := errors.New("transient characterize failure")
	calls := 0
	get := func() (*core.CharData, bool, error) {
		return c.Get(key, n, func() (*core.CharData, error) {
			calls++
			if calls == 1 {
				return nil, transient
			}
			return fakeChar(n), nil
		})
	}
	if _, _, err := get(); !errors.Is(err, transient) {
		t.Fatalf("first Get returned %v, want the compute error", err)
	}
	data, hit, err := get()
	if err != nil || hit || data == nil {
		t.Fatalf("retry after failure = (hit %v, err %v), want a fresh compute", hit, err)
	}
	if _, hit, err := get(); !hit || err != nil {
		t.Fatalf("post-retry Get = (hit %v, err %v), want memory hit", hit, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (fail, then retry)", calls)
	}
}

// TestCharCacheFailureSharedWithWaiters: requests blocked on a
// resolution that fails all receive that error — none of them re-runs
// the compute or resolves an orphaned entry — while the key itself is
// cleared, so the next request after the failure retries fresh.
//
// Whether a waiter actually blocked on the in-flight resolution before
// it failed is a scheduling race this test cannot force, so an attempt
// where any waiter arrived late (and correctly retried on a fresh
// entry) is retried rather than failed. The pre-fix bug — waiters
// re-resolving the orphaned entry — fails every attempt, so it still
// cannot slip through.
func TestCharCacheFailureSharedWithWaiters(t *testing.T) {
	key := CharKey{Config: "A", Scheme: "Rot", Scale: 8}
	const n, waiters, attempts = 4, 3, 5
	transient := errors.New("transient characterize failure")

	attempt := func() (sharedErrs int, waiterComputes int32, resolverErr error) {
		c := NewCharCache("", 0)
		started := make(chan struct{})
		release := make(chan struct{})
		resErr := make(chan error, 1)
		go func() {
			_, _, err := c.Get(key, n, func() (*core.CharData, error) {
				close(started)
				<-release
				return nil, transient
			})
			resErr <- err
		}()
		<-started

		// Waiters pile onto the in-flight resolution. Their computes
		// succeed, so where a compute's result lands tells the healthy
		// case from the bug below.
		var computes atomic.Int32
		errs := make(chan error, waiters)
		var wg sync.WaitGroup
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _, err := c.Get(key, n, func() (*core.CharData, error) {
					computes.Add(1)
					return fakeChar(n), nil
				})
				errs <- err
			}()
		}
		time.Sleep(25 * time.Millisecond)
		close(release)
		wg.Wait()
		for i := 0; i < waiters; i++ {
			if err := <-errs; errors.Is(err, transient) {
				sharedErrs++
			} else if err != nil {
				t.Fatalf("waiter got unexpected error %v", err)
			}
		}
		// Whatever the waiters did, a subsequent request must see a live
		// entry or compute anew — never fail. If a waiter computed, its
		// result must be visible here (a memory hit): a compute whose
		// result vanished resolved the orphaned entry — the bug.
		probed := false
		data, hit, err := c.Get(key, n, func() (*core.CharData, error) {
			probed = true
			return fakeChar(n), nil
		})
		if err != nil || data == nil {
			t.Fatalf("request after failure errored: %v", err)
		}
		if computes.Load() > 0 && probed {
			t.Fatalf("a waiter's compute result vanished (hit %v): it resolved an orphaned entry", hit)
		}
		if computes.Load() == 0 && !probed {
			t.Fatal("no compute ran yet the probe was served: stale entry survived the failure")
		}
		return sharedErrs, computes.Load(), <-resErr
	}

	for i := 0; i < attempts; i++ {
		shared, waiterComputes, resolverErr := attempt()
		if !errors.Is(resolverErr, transient) {
			t.Fatalf("resolver got %v, want its own compute error", resolverErr)
		}
		if shared == waiters && waiterComputes == 0 {
			return // every waiter blocked in time and got the shared error
		}
		// Some waiter legitimately arrived after the failure and retried
		// on a fresh entry; run the scenario again.
	}
	t.Skip("scheduler never blocked all waiters on the in-flight resolution; sharing path untestable here")
}

// TestCharCacheDebouncedTouch: memory hits refresh the on-disk LRU
// timestamp at most once per touchInterval — a hot key served thousands
// of times per sweep must not issue a Chtimes syscall per request.
func TestCharCacheDebouncedTouch(t *testing.T) {
	defer func(prev time.Duration) { touchInterval = prev }(touchInterval)
	touchInterval = time.Hour

	dir := t.TempDir()
	key := CharKey{Config: "A", Scheme: "Rot", Scale: 8}
	const n = 4
	c := NewCharCache(dir, 0)
	if _, _, err := c.Get(key, n, func() (*core.CharData, error) { return fakeChar(n), nil }); err != nil {
		t.Fatal(err)
	}
	warm := func() {
		if _, hit, err := c.Get(key, n, func() (*core.CharData, error) {
			t.Fatal("memory entry recomputed")
			return nil, nil
		}); !hit || err != nil {
			t.Fatalf("memory hit = (hit %v, err %v)", hit, err)
		}
	}
	warm() // first memory hit claims the interval's one touch

	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(c.path(key), old, old); err != nil {
		t.Fatal(err)
	}
	warm() // debounced: within the interval, no Chtimes
	fi, err := os.Stat(c.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if fi.ModTime().After(old.Add(time.Minute)) {
		t.Fatalf("debounced memory hit still touched the file (mtime %v)", fi.ModTime())
	}

	touchInterval = 0 // interval elapsed: the next hit may touch again
	warm()
	fi, err = os.Stat(c.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if !fi.ModTime().After(old.Add(time.Minute)) {
		t.Fatal("memory hit past the interval never refreshed the LRU timestamp")
	}
}

// TestCharCacheLRUEviction: with a file limit configured, writing past the
// bound evicts the least-recently-used entries — and serving an entry from
// disk refreshes its recency, protecting it from the next eviction pass.
func TestCharCacheLRUEviction(t *testing.T) {
	dir := t.TempDir()
	const n, limit = 4, 2
	k1 := CharKey{Config: "A", Scheme: "Rot", Scale: 8}
	k2 := CharKey{Config: "B", Scheme: "Rot", Scale: 8}
	k3 := CharKey{Config: "C", Scheme: "Rot", Scale: 8}

	seed := NewCharCache(dir, limit)
	for _, k := range []CharKey{k1, k2} {
		if _, _, err := seed.Get(k, n, func() (*core.CharData, error) { return fakeChar(n), nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Backdate both entries so recency is unambiguous regardless of
	// filesystem timestamp granularity: k1 older than k2.
	for i, k := range []CharKey{k1, k2} {
		old := time.Now().Add(-time.Hour * time.Duration(2-i))
		if err := os.Chtimes(seed.path(k), old, old); err != nil {
			t.Fatal(err)
		}
	}

	// Serving k1 from disk (fresh cache, so it is a disk load, not a
	// memory hit) must refresh its mtime past k2's.
	warm := NewCharCache(dir, limit)
	if _, hit, err := warm.Get(k1, n, func() (*core.CharData, error) {
		t.Fatal("persisted entry recomputed")
		return nil, nil
	}); err != nil || !hit {
		t.Fatalf("disk load = (hit %v, err %v)", hit, err)
	}

	// Writing k3 exceeds the limit; the LRU entry is now k2, not k1.
	if _, _, err := warm.Get(k3, n, func() (*core.CharData, error) { return fakeChar(n), nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(warm.path(k2)); !os.IsNotExist(err) {
		t.Fatalf("LRU entry k2 survived eviction (err %v)", err)
	}
	for _, k := range []CharKey{k1, k3} {
		if _, err := os.Stat(warm.path(k)); err != nil {
			t.Fatalf("recently-used entry %v evicted: %v", k, err)
		}
	}

	// An evicted key recomputes; the survivors still serve from disk.
	final := NewCharCache(dir, limit)
	computed := false
	if _, hit, err := final.Get(k2, n, func() (*core.CharData, error) {
		computed = true
		return fakeChar(n), nil
	}); err != nil || hit || !computed {
		t.Fatalf("evicted entry: (hit %v, computed %v, err %v), want recompute", hit, computed, err)
	}
}

// TestCharCacheUnlimitedKeepsAll: the default limit of zero never evicts.
func TestCharCacheUnlimitedKeepsAll(t *testing.T) {
	dir := t.TempDir()
	const n = 4
	c := NewCharCache(dir, 0)
	keys := []CharKey{
		{Config: "A", Scheme: "Rot", Scale: 8},
		{Config: "B", Scheme: "Rot", Scale: 8},
		{Config: "C", Scheme: "Rot", Scale: 8},
	}
	for _, k := range keys {
		if _, _, err := c.Get(k, n, func() (*core.CharData, error) { return fakeChar(n), nil }); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if _, err := os.Stat(c.path(k)); err != nil {
			t.Fatalf("unbounded cache evicted %v: %v", k, err)
		}
	}
}

// TestCharCacheIgnoresStaleEntries: entries with the wrong format version,
// key or grid size are treated as absent.
func TestCharCacheIgnoresStaleEntries(t *testing.T) {
	const n = 4
	key := CharKey{Config: "D", Scheme: "Rot", Scale: 8}
	cases := []struct {
		name string
		env  diskChar
	}{
		{"version", diskChar{Version: charFormatVersion + 1, Key: key, GridN: n, Data: *fakeChar(n)}},
		{"key", diskChar{Version: charFormatVersion, Key: CharKey{Config: "E", Scheme: "Rot", Scale: 8}, GridN: n, Data: *fakeChar(n)}},
		{"gridn", diskChar{Version: charFormatVersion, Key: key, GridN: n + 1, Data: *fakeChar(n)}},
		{"payload", diskChar{Version: charFormatVersion, Key: key, GridN: n, Data: core.CharData{SchemeName: "Rot"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCharCache(t.TempDir(), 0)
			f, err := os.Create(c.path(key))
			if err != nil {
				t.Fatal(err)
			}
			if err := gob.NewEncoder(f).Encode(tc.env); err != nil {
				t.Fatal(err)
			}
			f.Close()
			computed := false
			_, hit, err := c.Get(key, n, func() (*core.CharData, error) {
				computed = true
				return fakeChar(n), nil
			})
			if err != nil || hit || !computed {
				t.Fatalf("stale %s entry: (hit %v, computed %v, err %v), want recompute",
					tc.name, hit, computed, err)
			}
		})
	}
}
