package sim

import (
	"strconv"
	"time"

	"hotnoc/obs"
)

// metrics holds the runner's pre-registered instruments. All fields are
// resolved once at construction so the recording paths are pure atomic
// operations: a *metrics is nil when no registry was configured, and
// every method is nil-receiver safe, which keeps call sites free of
// conditionals.
type metrics struct {
	buildSeconds *obs.Histogram
	charSeconds  *obs.Histogram
	evalSeconds  *obs.Histogram

	charHits    *obs.Counter
	charMisses  *obs.Counter
	buildHits   *obs.Counter
	buildMisses *obs.Counter

	decodes *obs.Counter
	points  *obs.Counter
}

// newMetrics registers the pipeline instruments on reg, labeled with
// the runner's scale so several Labs can share one registry. A nil
// registry returns nil, which disables recording.
func newMetrics(reg *obs.Registry, scale int) *metrics {
	if reg == nil {
		return nil
	}
	s := strconv.Itoa(scale)
	stage := func(name string) *obs.Histogram {
		return reg.Histogram("hotnoc_stage_seconds",
			"Pipeline stage latency in seconds; build and characterize observe cold computes only.",
			obs.Labels{"scale": s, "stage": name}, obs.LatencyBuckets())
	}
	cache := func(kind, result string) *obs.Counter {
		return reg.Counter("hotnoc_cache_requests_total",
			"Cross-run cache requests by artifact kind and result.",
			obs.Labels{"scale": s, "kind": kind, "result": result})
	}
	return &metrics{
		buildSeconds: stage("build"),
		charSeconds:  stage("characterize"),
		evalSeconds:  stage("evaluate"),
		charHits:     cache("characterization", "hit"),
		charMisses:   cache("characterization", "miss"),
		buildHits:    cache("build", "hit"),
		buildMisses:  cache("build", "miss"),
		decodes: reg.Counter("hotnoc_decodes_total",
			"Engine block decodes performed for NoC characterizations.",
			obs.Labels{"scale": s}),
		points: reg.Counter("hotnoc_points_evaluated_total",
			"Grid points evaluated by the thermal stage.",
			obs.Labels{"scale": s}),
	}
}

// buildDone records one classified build resolution. Only cold builds
// observe latency: a hit's disk-or-memory load says nothing about the
// annealing cost the histogram tracks.
func (m *metrics) buildDone(hit bool, d time.Duration) {
	if m == nil {
		return
	}
	if hit {
		m.buildHits.Inc()
	} else {
		m.buildMisses.Inc()
		m.buildSeconds.Observe(d.Seconds())
	}
}

// charDone records one classified characterization resolution; cold
// orbits observe latency.
func (m *metrics) charDone(hit bool, d time.Duration) {
	if m == nil {
		return
	}
	if hit {
		m.charHits.Inc()
	} else {
		m.charMisses.Inc()
		m.charSeconds.Observe(d.Seconds())
	}
}

// evaluateDone records one thermal evaluation. This runs once per grid
// point on the hot path; it is allocation-free.
//
//hotnoc:noalloc
func (m *metrics) evaluateDone(d time.Duration) {
	if m == nil {
		return
	}
	m.points.Inc()
	m.evalSeconds.Observe(d.Seconds())
}

// addDecodes accumulates engine decodes from one characterization.
//
//hotnoc:noalloc
func (m *metrics) addDecodes(n uint64) {
	if m == nil {
		return
	}
	m.decodes.Add(n)
}
