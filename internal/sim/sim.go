// Package sim is the sweep/orchestration layer over the raw simulator: it
// executes an arbitrary configuration × scheme × period experiment grid
// concurrently on a worker pool, building each chip configuration once,
// characterizing each (configuration, scheme) orbit once — with
// cross-run build and characterization caches that can persist to disk,
// so a warm restart performs neither placement annealing, energy
// calibration nor cycle-accurate simulation — and evaluating every
// period/ablation variant against that shared characterization.
//
// The paper's studies — Figure 1, the migration-period sweep, the
// migration-energy ablation — are all instances of such grids, and the
// hotnoc.Lab façade drives them through this runner. Results are
// bitwise identical to a serial walk of the same grid: every stage of the
// pipeline is deterministic, workers operate on independent System clones,
// and outcomes stream in point order regardless of completion order.
//
//hotnoc:deterministic
package sim

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hotnoc/internal/chipcfg"
	"hotnoc/internal/core"
	"hotnoc/obs"
)

// Kind discriminates the experiment a grid point runs: the paper's
// periodic migration policy or the library's threshold-triggered reactive
// extension. New experiment kinds are a Kind value plus an evaluation arm
// in runTask — a data change, not an API change.
type Kind string

const (
	// KindPeriodic evaluates the fixed-period policy (System.Evaluate).
	KindPeriodic Kind = "periodic"
	// KindReactive evaluates the threshold-triggered policy
	// (System.EvaluateReactive).
	KindReactive Kind = "reactive"
)

// Point is one cell of an experiment grid: a tagged union of a periodic
// experiment (Config, Scheme, Blocks, ExcludeMigrationEnergy) and a
// reactive one (Config, Scheme, Reactive). The zero Reactive field means
// periodic, so pre-existing literals keep their meaning; the Periodic and
// Reactive constructors build the two arms explicitly. Both kinds key
// their NoC characterization on (Config, Scheme, scale), so mixed grids
// pay for each orbit exactly once regardless of kind.
type Point struct {
	// Config is the chip configuration letter (A-E).
	Config string
	// Scheme is the migration scheme, for either kind. Schemes are
	// identified by name when grouping work and caching characterizations,
	// so custom schemes must have unique names.
	Scheme core.Scheme
	// Blocks is the periodic migration period in decoded blocks (0 = 1;
	// negative periods are rejected before any work starts). It must be
	// zero on reactive points.
	Blocks int
	// ExcludeMigrationEnergy drops migration energy from the thermal
	// schedule (the paper's §3 ablation). Periodic points only.
	ExcludeMigrationEnergy bool
	// Reactive, when non-nil, makes this a reactive point: the
	// threshold-triggered policy evaluated with these parameters. Its
	// Scheme field, when set, must agree with the point's Scheme.
	Reactive *core.ReactiveConfig
}

// Periodic returns a periodic grid point: config under scheme, migrating
// every blocks decoded blocks.
func Periodic(config string, scheme core.Scheme, blocks int) Point {
	return Point{Config: config, Scheme: scheme, Blocks: blocks}
}

// Reactive returns a reactive grid point: config under cfg's
// threshold-triggered policy. The point's scheme is cfg.Scheme.
func Reactive(config string, cfg core.ReactiveConfig) Point {
	return Point{Config: config, Scheme: cfg.Scheme, Reactive: &cfg}
}

// Kind reports the experiment this point runs.
func (p Point) Kind() Kind {
	if p.Reactive != nil {
		return KindReactive
	}
	return KindPeriodic
}

// Validate rejects a malformed point: unknown configuration, scheme
// without a step function, negative period, or periodic-only fields set
// on a reactive point. It is the per-point half of the runner's fail-fast
// grid validation, shared with the hotnocd daemon so a bad submission is
// rejected with the same diagnosis it would fail with mid-sweep.
func (p Point) Validate() error {
	if _, err := chipcfg.ByName(p.Config); err != nil {
		return err
	}
	if p.Scheme.StepFn == nil {
		return fmt.Errorf("scheme %q has no step function", p.Scheme.Name)
	}
	if p.Reactive == nil {
		if p.Blocks < 0 {
			return fmt.Errorf("negative migration period %d blocks", p.Blocks)
		}
		return nil
	}
	if p.Blocks != 0 {
		return fmt.Errorf("reactive point sets a migration period (%d blocks)", p.Blocks)
	}
	if p.ExcludeMigrationEnergy {
		return fmt.Errorf("reactive point sets the migration-energy ablation")
	}
	if name := p.Reactive.Scheme.Name; name != "" && name != p.Scheme.Name {
		return fmt.Errorf("reactive config selects scheme %q but the point is for %q",
			name, p.Scheme.Name)
	}
	if p.Reactive.SimBlocks < 0 {
		return fmt.Errorf("negative reactive horizon %d blocks", p.Reactive.SimBlocks)
	}
	if p.Reactive.WarmupBlocks < 0 {
		return fmt.Errorf("negative reactive warmup %d blocks", p.Reactive.WarmupBlocks)
	}
	return nil
}

// Outcome pairs a grid point with its evaluation. Outcomes of the same
// configuration share one *chipcfg.Built. Exactly one result arm is
// populated, matching the point's kind: Result for periodic points,
// Reactive for reactive ones.
type Outcome struct {
	Point Point
	Built *chipcfg.Built
	// Result is the periodic baseline-versus-migrated comparison; zero for
	// reactive points.
	Result core.RunResult
	// Reactive is the threshold-policy summary; nil for periodic points.
	Reactive *core.ReactiveResult
}

// Options tunes a Runner.
type Options struct {
	// Scale divides the workload size (default 1 = paper scale).
	Scale int
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// CacheDir persists the two expensive artifact kinds as gob files:
	// NoC characterizations (keyed by configuration, scheme and scale)
	// and calibrated build snapshots (keyed by configuration and scale).
	// A fresh process pointed at the same directory skips both the
	// cycle-accurate NoC stage and the annealing + calibration stage.
	// Empty keeps both caches memory-only.
	CacheDir string
	// CacheLimit bounds the number of files of each artifact kind kept
	// under CacheDir (characterizations and build snapshots are bounded
	// independently); least-recently-used entries are evicted once a
	// kind's count exceeds it. Zero keeps the directory unbounded.
	CacheLimit int
	// Progress, when set, receives build/characterize/evaluate events as
	// the sweep pipeline advances. Delivery is serialized; the callback
	// must not block for long and must not call back into the runner.
	Progress func(Event)
	// Metrics, when set, registers the runner's pipeline instruments on
	// this registry — stage-latency histograms, cache hit/miss counters,
	// decode and point counters, all labeled by scale — and records into
	// them as sweeps run. Recording is allocation-free; several runners
	// (one per scale) may share one registry.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Runner executes experiment grids. A Runner is safe for concurrent use
// and may be reused across Run calls; its build cache and characterization
// cache persist, so repeated sweeps over the same grid skip construction
// and the cycle-accurate NoC stage entirely.
type Runner struct {
	opts   Options
	builds *BuildCache
	chars  *CharCache
	met    *metrics

	// decodes counts engine block decodes performed on behalf of this
	// runner — the unit of expensive NoC work. A fully cache-served sweep
	// leaves it untouched.
	decodes atomic.Uint64

	// charHits / charMisses count characterization requests served from
	// the cross-run cache versus simulated on the NoC.
	charHits   atomic.Uint64
	charMisses atomic.Uint64

	// buildHits / buildMisses count builds served from the cross-run
	// cache (memory or reconstituted from a disk snapshot) versus
	// constructed cold (annealed + calibrated). One count per
	// (configuration, scale) over the runner's lifetime.
	buildHits   atomic.Uint64
	buildMisses atomic.Uint64

	// busy gauges workers currently executing a task, for utilization
	// reporting.
	busy atomic.Int64

	// progressMu serializes Progress callbacks. buildAccountMu guards the
	// per-key build accounting: emittedBuilds claims the one build-start
	// event (released on failure so a retry brackets again), and
	// countedBuilds dedups the done event and the hit-or-miss count — the
	// first request to resolve the key classifies it, exactly once,
	// however failures and retries interleave.
	progressMu     sync.Mutex
	buildAccountMu sync.Mutex
	emittedBuilds  map[BuildKey]bool
	countedBuilds  map[BuildKey]bool
}

// NewRunner returns a runner with the given options.
func NewRunner(opts Options) *Runner {
	opts = opts.withDefaults()
	return &Runner{
		opts:          opts,
		builds:        NewBuildCache(opts.CacheDir, opts.CacheLimit),
		chars:         NewCharCache(opts.CacheDir, opts.CacheLimit),
		met:           newMetrics(opts.Metrics, opts.Scale),
		emittedBuilds: map[BuildKey]bool{},
		countedBuilds: map[BuildKey]bool{},
	}
}

// Decodes returns the number of engine block decodes this runner has
// performed — the cost of the NoC characterizations it could not serve
// from cache. Sweeps repeated over the same grid (or warm-restarted from
// a cache directory) leave the counter unchanged.
func (r *Runner) Decodes() uint64 { return r.decodes.Load() }

// CacheStats returns how many characterization requests were served from
// the cross-run cache (memory or disk) versus simulated on the
// cycle-accurate NoC.
func (r *Runner) CacheStats() (hits, misses uint64) {
	return r.charHits.Load(), r.charMisses.Load()
}

// BuildStats returns how many configuration builds were served from the
// cross-run build cache (memory or reconstituted from a persisted
// snapshot) versus constructed cold with annealing and calibration. A
// process warm-started from a populated cache directory reports zero
// misses.
func (r *Runner) BuildStats() (hits, misses uint64) {
	return r.buildHits.Load(), r.buildMisses.Load()
}

// Workers returns the size of the runner's worker pool.
func (r *Runner) Workers() int { return r.opts.Workers }

// Scale returns the workload divisor the runner was configured with.
func (r *Runner) Scale() int { return r.opts.Scale }

// Busy returns how many workers are currently executing a task — a
// utilization gauge for services multiplexing jobs onto one runner.
func (r *Runner) Busy() int { return int(r.busy.Load()) }

// emitter merges the runner-wide Progress callback with one call's own
// progress function into a single serialized sink. Both see every event;
// delivery order is the same for both.
func (r *Runner) emitter(progress func(Event)) func(Event) {
	if r.opts.Progress == nil && progress == nil {
		return nil
	}
	return func(ev Event) {
		r.progressMu.Lock()
		defer r.progressMu.Unlock()
		if r.opts.Progress != nil {
			r.opts.Progress(ev)
		}
		if progress != nil {
			progress(ev)
		}
	}
}

func emit(fn func(Event), ev Event) {
	if fn != nil {
		fn(ev)
	}
}

// builtFor resolves one configuration's calibrated build through the
// cache, emitting one build event pair — and taking one hit-or-miss
// count — the first time the key resolves on this runner. The done
// event's CacheHit reports whether the expensive stages were skipped
// (snapshot restored from disk).
//
// The start event and the done-plus-count are claimed independently:
// the first requester emits build-start before resolving, but the done
// event and the hit-or-miss classification belong to whichever request
// actually resolves the key first — concurrent requesters of one
// resolution all observe the same hit flag, so the count is
// well-defined however they race. On failure the start claim is
// released for a later retry, unless a concurrent request resolved the
// key in the meantime (its done event pairs with the start already
// emitted).
func (r *Runner) builtFor(config string, prog func(Event)) (*chipcfg.Built, error) {
	key := BuildKey{Config: config, Scale: r.opts.Scale}
	r.buildAccountMu.Lock()
	first := !r.emittedBuilds[key]
	r.emittedBuilds[key] = true
	r.buildAccountMu.Unlock()
	if first {
		emit(prog, Event{Stage: StageBuildStart, Config: config, Scale: r.opts.Scale, Point: -1})
	}
	//hotnoc:allow determinism wall-clock metric timing only
	start := time.Now()
	built, hit, err := r.builds.Get(config, r.opts.Scale)
	if err != nil {
		r.buildAccountMu.Lock()
		if first && !r.countedBuilds[key] {
			delete(r.emittedBuilds, key)
		}
		r.buildAccountMu.Unlock()
		return nil, fmt.Errorf("sim: config %s: %w", config, err)
	}
	r.buildAccountMu.Lock()
	count := !r.countedBuilds[key]
	r.countedBuilds[key] = true
	r.buildAccountMu.Unlock()
	if count {
		if hit {
			r.buildHits.Add(1)
		} else {
			r.buildMisses.Add(1)
		}
		//hotnoc:allow determinism wall-clock metric timing only
		r.met.buildDone(hit, time.Since(start))
		emit(prog, Event{Stage: StageBuildDone, Config: config, Scale: r.opts.Scale, Point: -1,
			CacheHit: hit})
	}
	return built, nil
}

// charSeen tracks which characterization keys one sweep has already
// accounted for. Reactive cells of one (configuration, scheme) may run
// as several chunk tasks, each resolving the same key; without the
// dedup, one orbit would count several cache hits and emit a
// worker-count-dependent number of StageCharacterizeDone events.
type charSeen struct {
	mu   sync.Mutex
	keys map[CharKey]bool
}

// first reports whether key has not been accounted for yet, marking it.
// A nil receiver (callers outside a sweep) always reports true.
func (s *charSeen) first(key CharKey) bool {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.keys[key] {
		return false
	}
	s.keys[key] = true
	return true
}

// charFor resolves one (configuration, scheme) characterization through
// the cross-run cache, simulating the orbit on the cycle-accurate NoC
// only on a miss. The hit/miss counters and the StageCharacterizeDone
// event fire once per key per sweep (seen dedups them; nil means no
// dedup), regardless of how many tasks the sweep split the key's cells
// into. The accounting claim is taken before the cache lookup, so the
// sweep's first requester — the one that observed whether the key was
// already resolved — is the one that classifies it; a later chunk task
// served from the freshly resolved entry cannot relabel the sweep's
// compute as a hit.
func (r *Runner) charFor(config string, scheme core.Scheme, prog func(Event), seen *charSeen) (*core.CharData, *chipcfg.Built, error) {
	built, err := r.builtFor(config, prog)
	if err != nil {
		return nil, nil, err
	}
	key := CharKey{Config: config, Scheme: scheme.Name, Scale: r.opts.Scale}
	account := seen.first(key)
	//hotnoc:allow determinism wall-clock metric timing only
	start := time.Now()
	data, hit, err := r.chars.Get(key, built.System.Grid.N(), func() (*core.CharData, error) {
		emit(prog, Event{Stage: StageCharacterizeStart, Config: config, Scale: r.opts.Scale,
			Scheme: scheme.Name, Point: -1})
		// The characterizing system is a private clone: one System holds
		// mutable engine, network and I/O state.
		sys, err := built.System.Clone()
		if err != nil {
			return nil, fmt.Errorf("clone: %w", err)
		}
		ch, err := sys.Characterize(scheme)
		r.decodes.Add(sys.Engine.Decodes)
		r.met.addDecodes(sys.Engine.Decodes)
		if err != nil {
			return nil, err
		}
		return ch.Data(), nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("sim: config %s scheme %s: %w", config, scheme.Name, err)
	}
	if account {
		if hit {
			r.charHits.Add(1)
		} else {
			r.charMisses.Add(1)
		}
		//hotnoc:allow determinism wall-clock metric timing only
		r.met.charDone(hit, time.Since(start))
		emit(prog, Event{Stage: StageCharacterizeDone, Config: config, Scale: r.opts.Scale,
			Scheme: scheme.Name, Point: -1, CacheHit: hit})
	}
	return data, built, nil
}

// Built returns the calibrated build for one configuration at the
// runner's scale, constructing it on first use.
func (r *Runner) Built(config string) (*chipcfg.Built, error) {
	return r.builtFor(config, r.emitter(nil))
}

// Characterization returns the (configuration, scheme) orbit
// characterization and its calibrated build, serving from the cross-run
// cache when possible. Callers evaluate the result on their own System
// clone; a Characterization must not be shared across goroutines, but
// each call returns an independent view of the shared immutable data.
func (r *Runner) Characterization(config string, scheme core.Scheme) (*core.Characterization, *chipcfg.Built, error) {
	if scheme.StepFn == nil {
		return nil, nil, fmt.Errorf("sim: scheme %q has no step function", scheme.Name)
	}
	data, built, err := r.charFor(config, scheme, r.emitter(nil), nil)
	if err != nil {
		return nil, nil, err
	}
	ch, err := core.FromData(scheme, data)
	if err != nil {
		return nil, nil, err
	}
	return ch, built, nil
}

// ValidatePoints fails fast on malformed grids — unknown configuration
// names, schemes without step functions, negative periods, malformed
// reactive parameters — before any build or worker starts, naming the
// offending point. The runner applies it at the head of every sweep; the
// hotnocd daemon applies the same check at submission so a bad grid is a
// 400 naming the point, not a job failing mid-stream.
func ValidatePoints(pts []Point) error {
	for i, p := range pts {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("sim: point %d: %w", i, err)
		}
	}
	return nil
}

// task is the unit of worker scheduling: all grid points sharing one
// (configuration, scheme), which therefore share one characterization.
type task struct {
	config string
	scheme core.Scheme
	// cells are the indices into the original point slice, in order.
	cells []int
}

// Run evaluates every point of the grid and returns outcomes in point
// order. Run is Stream collected into a slice; it stops at the first
// error or context cancellation.
func (r *Runner) Run(ctx context.Context, pts []Point) ([]Outcome, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	out := make([]Outcome, 0, len(pts))
	for o, err := range r.Stream(ctx, pts) {
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// Stream evaluates the grid concurrently and yields outcomes in point
// order as they complete, so a consumer renders early cells of a long
// sweep while later ones are still simulating. Points sharing a
// configuration share one calibrated build; points sharing
// (configuration, scheme) share one NoC characterization, served from the
// cross-run cache when available. On error or context cancellation the
// sequence yields one final (zero Outcome, error) pair and stops. An
// early break cancels outstanding work before returning.
func (r *Runner) Stream(ctx context.Context, pts []Point) iter.Seq2[Outcome, error] {
	return r.StreamWith(ctx, pts, nil)
}

// StreamWith is Stream with a per-call progress callback: progress
// receives exactly the events this sweep generates, alongside (not
// instead of) the runner-wide Options.Progress callback. Services
// multiplexing concurrent jobs onto one runner use it to attribute
// pipeline events to the job whose sweep triggered them. Delivery is
// serialized with all other progress callbacks on the runner.
func (r *Runner) StreamWith(ctx context.Context, pts []Point, progress func(Event)) iter.Seq2[Outcome, error] {
	prog := r.emitter(progress)
	return func(yield func(Outcome, error) bool) {
		if len(pts) == 0 {
			return
		}
		if err := ValidatePoints(pts); err != nil {
			yield(Outcome{}, err)
			return
		}
		tasks := groupPoints(pts, r.opts.Workers)
		seen := &charSeen{keys: map[CharKey]bool{}}

		ctx, cancel := context.WithCancel(ctx)
		defer cancel()

		out := make([]Outcome, len(pts))
		ready := make([]chan struct{}, len(pts))
		for i := range ready {
			ready[i] = make(chan struct{})
		}

		var failErr error
		var failOnce sync.Once
		failed := make(chan struct{})
		fail := func(err error) {
			failOnce.Do(func() {
				failErr = err
				close(failed)
				cancel()
			})
		}

		taskCh := make(chan task)
		workers := min(r.opts.Workers, len(tasks))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range taskCh {
					if ctx.Err() != nil {
						return
					}
					r.busy.Add(1)
					err := r.runTask(ctx, t, pts, out, ready, prog, seen)
					r.busy.Add(-1)
					if err != nil {
						fail(err)
						return
					}
				}
			}()
		}
		go func() {
			defer close(taskCh)
			for _, t := range tasks {
				//hotnoc:allow determinism task feed vs. cancel; which tasks run affects timing, never the per-point outcome
				select {
				case taskCh <- t:
				case <-ctx.Done():
					return
				}
			}
		}()
		defer wg.Wait()

		for i := range pts {
			select {
			case <-ready[i]:
			default:
				//hotnoc:allow determinism failure/cancel unwind only; out[i] is fixed before ready[i] closes, so the yielded stream is order-independent
				select {
				case <-ready[i]:
				case <-failed:
					wg.Wait()
					yield(Outcome{}, failErr)
					return
				case <-ctx.Done():
					wg.Wait()
					select {
					case <-failed:
						yield(Outcome{}, failErr)
					default:
						yield(Outcome{}, ctx.Err())
					}
					return
				}
			}
			if !yield(out[i], nil) {
				cancel()
				return
			}
		}
	}
}

// runTask resolves one (configuration, scheme) characterization — cache
// or cycle-accurate NoC — and evaluates every variant of the group,
// periodic and reactive alike, on a private System clone, marking each
// point ready as its outcome lands. Mixed grids therefore share one orbit
// characterization across kinds: a reactive point never re-simulates an
// orbit a periodic point (or a cached run) already paid for.
func (r *Runner) runTask(ctx context.Context, t task, pts []Point, out []Outcome, ready []chan struct{}, prog func(Event), seen *charSeen) error {
	data, built, err := r.charFor(t.config, t.scheme, prog, seen)
	if err != nil {
		return err
	}
	sys, err := built.System.Clone()
	if err != nil {
		return fmt.Errorf("sim: config %s: clone: %w", t.config, err)
	}
	ch, err := core.FromData(t.scheme, data)
	if err != nil {
		return fmt.Errorf("sim: config %s scheme %s: %w", t.config, t.scheme.Name, err)
	}
	for _, idx := range t.cells {
		if err := ctx.Err(); err != nil {
			return err
		}
		p := pts[idx]
		o := Outcome{Point: p, Built: built}
		//hotnoc:allow determinism wall-clock metric timing only; does not influence the outcome
		evalStart := time.Now()
		switch p.Kind() {
		case KindReactive:
			cfg := *p.Reactive
			// The point's Scheme is authoritative (it keyed the shared
			// characterization); a spec that carried only parameters gets
			// the step function filled in here.
			cfg.Scheme = t.scheme
			res, err := sys.EvaluateReactive(ch, cfg)
			if err != nil {
				return fmt.Errorf("sim: config %s scheme %s reactive trigger %g: %w",
					p.Config, p.Scheme.Name, cfg.TriggerC, err)
			}
			o.Reactive = &res
		default:
			res, err := sys.Evaluate(ch, core.EvalConfig{
				BlocksPerPeriod:        p.Blocks,
				ExcludeMigrationEnergy: p.ExcludeMigrationEnergy,
			})
			if err != nil {
				return fmt.Errorf("sim: config %s scheme %s blocks %d: %w",
					p.Config, p.Scheme.Name, p.Blocks, err)
			}
			o.Result = res
		}
		//hotnoc:allow determinism wall-clock metric timing only; the outcome itself is already computed
		r.met.evaluateDone(time.Since(evalStart))
		out[idx] = o
		close(ready[idx])
		emit(prog, Event{Stage: StageEvaluateDone, Config: p.Config, Scale: r.opts.Scale,
			Scheme: p.Scheme.Name, Point: idx, Blocks: p.Blocks, Kind: string(p.Kind())})
	}
	return nil
}

// groupPoints partitions the grid into tasks, ordered by their first
// appearance so scheduling is deterministic. Periodic cells of one
// (configuration, scheme) form a single task: their thermal evaluations
// are cheap and share one System clone. Reactive cells of one
// (configuration, scheme) are split into up to workers contiguous chunk
// tasks: each cell is a full transient integration — the dominant cost
// of a reactive sweep once the orbit is characterized — so a
// single-scheme trigger sweep must be able to spread across the pool.
// Chunk tasks request the same characterization key; the cache's
// per-key singleflight still simulates the orbit at most once, and
// results do not depend on the chunking (every clone evaluates
// identically), so outcomes stay bitwise identical across worker counts.
func groupPoints(pts []Point, workers int) []task {
	type gkey struct {
		config, scheme string
		kind           Kind
	}
	order := map[gkey]int{}
	var groups []task
	for i, p := range pts {
		k := gkey{config: p.Config, scheme: p.Scheme.Name, kind: p.Kind()}
		ti, ok := order[k]
		if !ok {
			ti = len(groups)
			order[k] = ti
			groups = append(groups, task{config: p.Config, scheme: p.Scheme})
		}
		groups[ti].cells = append(groups[ti].cells, i)
	}
	var tasks []task
	for _, g := range groups {
		if n := min(workers, len(g.cells)); n > 1 && pts[g.cells[0]].Kind() == KindReactive {
			for c := 0; c < n; c++ {
				lo, hi := c*len(g.cells)/n, (c+1)*len(g.cells)/n
				tasks = append(tasks, task{config: g.config, scheme: g.scheme, cells: g.cells[lo:hi]})
			}
			continue
		}
		tasks = append(tasks, g)
	}
	// Largest groups first: with more tasks than workers this packs the
	// pool better without affecting result order.
	sort.SliceStable(tasks, func(i, j int) bool {
		return len(tasks[i].cells) > len(tasks[j].cells)
	})
	return tasks
}

// Grid returns the cross product configs × schemes × blocks in
// configuration-major, scheme-then-period-minor order — the natural
// ordering of the paper's figures. A nil or empty blocks slice means the
// one-block base period.
func Grid(configs []string, schemes []core.Scheme, blocks []int) []Point {
	if len(blocks) == 0 {
		blocks = []int{1}
	}
	pts := make([]Point, 0, len(configs)*len(schemes)*len(blocks))
	for _, c := range configs {
		for _, s := range schemes {
			for _, b := range blocks {
				pts = append(pts, Point{Config: c, Scheme: s, Blocks: b})
			}
		}
	}
	return pts
}

// ReactiveGrid returns one reactive point per threshold configuration on
// one chip configuration, in input order. Configurations selecting the
// same scheme share one NoC characterization when swept, exactly as the
// periods of a periodic period sweep do.
func ReactiveGrid(config string, cfgs []core.ReactiveConfig) []Point {
	pts := make([]Point, len(cfgs))
	for i, cfg := range cfgs {
		pts[i] = Reactive(config, cfg)
	}
	return pts
}
