// Package sim is the sweep/orchestration layer over the raw simulator: it
// executes an arbitrary configuration × scheme × period experiment grid
// concurrently on a worker pool, building each chip configuration once,
// characterizing each (configuration, scheme) orbit once — with a
// cross-run characterization cache that can persist to disk — and
// evaluating every period/ablation variant against that shared
// characterization.
//
// The paper's studies — Figure 1, the migration-period sweep, the
// migration-energy ablation — are all instances of such grids, and the
// hotnoc.Lab façade drives them through this runner. Results are
// bitwise identical to a serial walk of the same grid: every stage of the
// pipeline is deterministic, workers operate on independent System clones,
// and outcomes stream in point order regardless of completion order.
package sim

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"hotnoc/internal/chipcfg"
	"hotnoc/internal/core"
)

// Point is one cell of an experiment grid.
type Point struct {
	// Config is the chip configuration letter (A-E).
	Config string
	// Scheme is the migration scheme. Schemes are identified by name when
	// grouping work and caching characterizations, so custom schemes must
	// have unique names.
	Scheme core.Scheme
	// Blocks is the migration period in decoded blocks (0 = 1; negative
	// periods are rejected before any work starts).
	Blocks int
	// ExcludeMigrationEnergy drops migration energy from the thermal
	// schedule (the paper's §3 ablation).
	ExcludeMigrationEnergy bool
}

// Outcome pairs a grid point with its evaluation. Outcomes of the same
// configuration share one *chipcfg.Built.
type Outcome struct {
	Point  Point
	Built  *chipcfg.Built
	Result core.RunResult
}

// Options tunes a Runner.
type Options struct {
	// Scale divides the workload size (default 1 = paper scale).
	Scale int
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// CacheDir persists NoC characterizations (gob files keyed by
	// configuration, scheme and scale) so a fresh process pointed at the
	// same directory skips the cycle-accurate stage. Empty keeps the
	// characterization cache memory-only.
	CacheDir string
	// CacheLimit bounds the number of characterization files kept under
	// CacheDir; least-recently-used entries are evicted once the count
	// exceeds it. Zero keeps the directory unbounded.
	CacheLimit int
	// Progress, when set, receives build/characterize/evaluate events as
	// the sweep pipeline advances. Delivery is serialized; the callback
	// must not block for long and must not call back into the runner.
	Progress func(Event)
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// BuildCache builds each (configuration, scale) once and shares the result
// across all workers and runs. Concurrent requests for the same key block
// on a single build; different keys build in parallel.
type BuildCache struct {
	mu      sync.Mutex
	entries map[buildKey]*buildEntry
}

type buildKey struct {
	config string
	scale  int
}

type buildEntry struct {
	once  sync.Once
	built *chipcfg.Built
	err   error
}

// NewBuildCache returns an empty cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{entries: map[buildKey]*buildEntry{}}
}

// Get returns the calibrated build for (config, scale), constructing it on
// first use.
func (c *BuildCache) Get(config string, scale int) (*chipcfg.Built, error) {
	key := buildKey{config: config, scale: scale}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &buildEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		spec, err := chipcfg.ByName(config)
		if err != nil {
			e.err = err
			return
		}
		e.built, e.err = spec.Scaled(scale).Build()
	})
	return e.built, e.err
}

// Runner executes experiment grids. A Runner is safe for concurrent use
// and may be reused across Run calls; its build cache and characterization
// cache persist, so repeated sweeps over the same grid skip construction
// and the cycle-accurate NoC stage entirely.
type Runner struct {
	opts   Options
	builds *BuildCache
	chars  *CharCache

	// decodes counts engine block decodes performed on behalf of this
	// runner — the unit of expensive NoC work. A fully cache-served sweep
	// leaves it untouched.
	decodes atomic.Uint64

	// charHits / charMisses count characterization requests served from
	// the cross-run cache versus simulated on the NoC.
	charHits   atomic.Uint64
	charMisses atomic.Uint64

	// busy gauges workers currently executing a task, for utilization
	// reporting.
	busy atomic.Int64

	// progressMu serializes Progress callbacks; emittedBuilds ensures one
	// start/done event pair per actual build.
	progressMu    sync.Mutex
	buildEventsMu sync.Mutex
	emittedBuilds map[buildKey]bool
}

// NewRunner returns a runner with the given options.
func NewRunner(opts Options) *Runner {
	opts = opts.withDefaults()
	return &Runner{
		opts:          opts,
		builds:        NewBuildCache(),
		chars:         NewCharCache(opts.CacheDir, opts.CacheLimit),
		emittedBuilds: map[buildKey]bool{},
	}
}

// Decodes returns the number of engine block decodes this runner has
// performed — the cost of the NoC characterizations it could not serve
// from cache. Sweeps repeated over the same grid (or warm-restarted from
// a cache directory) leave the counter unchanged.
func (r *Runner) Decodes() uint64 { return r.decodes.Load() }

// CacheStats returns how many characterization requests were served from
// the cross-run cache (memory or disk) versus simulated on the
// cycle-accurate NoC.
func (r *Runner) CacheStats() (hits, misses uint64) {
	return r.charHits.Load(), r.charMisses.Load()
}

// Workers returns the size of the runner's worker pool.
func (r *Runner) Workers() int { return r.opts.Workers }

// Scale returns the workload divisor the runner was configured with.
func (r *Runner) Scale() int { return r.opts.Scale }

// Busy returns how many workers are currently executing a task — a
// utilization gauge for services multiplexing jobs onto one runner.
func (r *Runner) Busy() int { return int(r.busy.Load()) }

// emitter merges the runner-wide Progress callback with one call's own
// progress function into a single serialized sink. Both see every event;
// delivery order is the same for both.
func (r *Runner) emitter(progress func(Event)) func(Event) {
	if r.opts.Progress == nil && progress == nil {
		return nil
	}
	return func(ev Event) {
		r.progressMu.Lock()
		defer r.progressMu.Unlock()
		if r.opts.Progress != nil {
			r.opts.Progress(ev)
		}
		if progress != nil {
			progress(ev)
		}
	}
}

func emit(fn func(Event), ev Event) {
	if fn != nil {
		fn(ev)
	}
}

// builtFor resolves one configuration's calibrated build through the
// cache, emitting one build event pair the first time the build actually
// runs.
func (r *Runner) builtFor(config string, prog func(Event)) (*chipcfg.Built, error) {
	key := buildKey{config: config, scale: r.opts.Scale}
	first := false
	r.buildEventsMu.Lock()
	if !r.emittedBuilds[key] {
		r.emittedBuilds[key] = true
		first = true
	}
	r.buildEventsMu.Unlock()
	if first {
		emit(prog, Event{Stage: StageBuildStart, Config: config, Scale: r.opts.Scale, Point: -1})
	}
	built, err := r.builds.Get(config, r.opts.Scale)
	if err != nil {
		return nil, fmt.Errorf("sim: config %s: %w", config, err)
	}
	if first {
		emit(prog, Event{Stage: StageBuildDone, Config: config, Scale: r.opts.Scale, Point: -1})
	}
	return built, nil
}

// charFor resolves one (configuration, scheme) characterization through
// the cross-run cache, simulating the orbit on the cycle-accurate NoC
// only on a miss.
func (r *Runner) charFor(config string, scheme core.Scheme, prog func(Event)) (*core.CharData, *chipcfg.Built, error) {
	built, err := r.builtFor(config, prog)
	if err != nil {
		return nil, nil, err
	}
	key := CharKey{Config: config, Scheme: scheme.Name, Scale: r.opts.Scale}
	data, hit, err := r.chars.Get(key, built.System.Grid.N(), func() (*core.CharData, error) {
		emit(prog, Event{Stage: StageCharacterizeStart, Config: config, Scale: r.opts.Scale,
			Scheme: scheme.Name, Point: -1})
		// The characterizing system is a private clone: one System holds
		// mutable engine, network and I/O state.
		sys, err := built.System.Clone()
		if err != nil {
			return nil, fmt.Errorf("clone: %w", err)
		}
		ch, err := sys.Characterize(scheme)
		r.decodes.Add(sys.Engine.Decodes)
		if err != nil {
			return nil, err
		}
		return ch.Data(), nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("sim: config %s scheme %s: %w", config, scheme.Name, err)
	}
	if hit {
		r.charHits.Add(1)
	} else {
		r.charMisses.Add(1)
	}
	emit(prog, Event{Stage: StageCharacterizeDone, Config: config, Scale: r.opts.Scale,
		Scheme: scheme.Name, Point: -1, CacheHit: hit})
	return data, built, nil
}

// Built returns the calibrated build for one configuration at the
// runner's scale, constructing it on first use.
func (r *Runner) Built(config string) (*chipcfg.Built, error) {
	return r.builtFor(config, r.emitter(nil))
}

// Characterization returns the (configuration, scheme) orbit
// characterization and its calibrated build, serving from the cross-run
// cache when possible. Callers evaluate the result on their own System
// clone; a Characterization must not be shared across goroutines, but
// each call returns an independent view of the shared immutable data.
func (r *Runner) Characterization(config string, scheme core.Scheme) (*core.Characterization, *chipcfg.Built, error) {
	if scheme.StepFn == nil {
		return nil, nil, fmt.Errorf("sim: scheme %q has no step function", scheme.Name)
	}
	data, built, err := r.charFor(config, scheme, r.emitter(nil))
	if err != nil {
		return nil, nil, err
	}
	ch, err := core.FromData(scheme, data)
	if err != nil {
		return nil, nil, err
	}
	return ch, built, nil
}

// validatePoints fails fast on malformed grids — unknown configuration
// names, schemes without step functions, negative periods — before any
// build or worker starts, naming the offending point.
func validatePoints(pts []Point) error {
	for i, p := range pts {
		if _, err := chipcfg.ByName(p.Config); err != nil {
			return fmt.Errorf("sim: point %d: %w", i, err)
		}
		if p.Scheme.StepFn == nil {
			return fmt.Errorf("sim: point %d: scheme %q has no step function", i, p.Scheme.Name)
		}
		if p.Blocks < 0 {
			return fmt.Errorf("sim: point %d: negative migration period %d blocks", i, p.Blocks)
		}
	}
	return nil
}

// task is the unit of worker scheduling: all grid points sharing one
// (configuration, scheme), which therefore share one characterization.
type task struct {
	config string
	scheme core.Scheme
	// cells are the indices into the original point slice, in order.
	cells []int
}

// Run evaluates every point of the grid and returns outcomes in point
// order. Run is Stream collected into a slice; it stops at the first
// error or context cancellation.
func (r *Runner) Run(ctx context.Context, pts []Point) ([]Outcome, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	out := make([]Outcome, 0, len(pts))
	for o, err := range r.Stream(ctx, pts) {
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// Stream evaluates the grid concurrently and yields outcomes in point
// order as they complete, so a consumer renders early cells of a long
// sweep while later ones are still simulating. Points sharing a
// configuration share one calibrated build; points sharing
// (configuration, scheme) share one NoC characterization, served from the
// cross-run cache when available. On error or context cancellation the
// sequence yields one final (zero Outcome, error) pair and stops. An
// early break cancels outstanding work before returning.
func (r *Runner) Stream(ctx context.Context, pts []Point) iter.Seq2[Outcome, error] {
	return r.StreamWith(ctx, pts, nil)
}

// StreamWith is Stream with a per-call progress callback: progress
// receives exactly the events this sweep generates, alongside (not
// instead of) the runner-wide Options.Progress callback. Services
// multiplexing concurrent jobs onto one runner use it to attribute
// pipeline events to the job whose sweep triggered them. Delivery is
// serialized with all other progress callbacks on the runner.
func (r *Runner) StreamWith(ctx context.Context, pts []Point, progress func(Event)) iter.Seq2[Outcome, error] {
	prog := r.emitter(progress)
	return func(yield func(Outcome, error) bool) {
		if len(pts) == 0 {
			return
		}
		if err := validatePoints(pts); err != nil {
			yield(Outcome{}, err)
			return
		}
		tasks := groupPoints(pts)

		ctx, cancel := context.WithCancel(ctx)
		defer cancel()

		out := make([]Outcome, len(pts))
		ready := make([]chan struct{}, len(pts))
		for i := range ready {
			ready[i] = make(chan struct{})
		}

		var failErr error
		var failOnce sync.Once
		failed := make(chan struct{})
		fail := func(err error) {
			failOnce.Do(func() {
				failErr = err
				close(failed)
				cancel()
			})
		}

		taskCh := make(chan task)
		workers := min(r.opts.Workers, len(tasks))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range taskCh {
					if ctx.Err() != nil {
						return
					}
					r.busy.Add(1)
					err := r.runTask(ctx, t, pts, out, ready, prog)
					r.busy.Add(-1)
					if err != nil {
						fail(err)
						return
					}
				}
			}()
		}
		go func() {
			defer close(taskCh)
			for _, t := range tasks {
				select {
				case taskCh <- t:
				case <-ctx.Done():
					return
				}
			}
		}()
		defer wg.Wait()

		for i := range pts {
			select {
			case <-ready[i]:
			default:
				select {
				case <-ready[i]:
				case <-failed:
					wg.Wait()
					yield(Outcome{}, failErr)
					return
				case <-ctx.Done():
					wg.Wait()
					select {
					case <-failed:
						yield(Outcome{}, failErr)
					default:
						yield(Outcome{}, ctx.Err())
					}
					return
				}
			}
			if !yield(out[i], nil) {
				cancel()
				return
			}
		}
	}
}

// runTask resolves one (configuration, scheme) characterization — cache
// or cycle-accurate NoC — and evaluates every period/ablation variant of
// the group on a private System clone, marking each point ready as its
// outcome lands.
func (r *Runner) runTask(ctx context.Context, t task, pts []Point, out []Outcome, ready []chan struct{}, prog func(Event)) error {
	data, built, err := r.charFor(t.config, t.scheme, prog)
	if err != nil {
		return err
	}
	sys, err := built.System.Clone()
	if err != nil {
		return fmt.Errorf("sim: config %s: clone: %w", t.config, err)
	}
	ch, err := core.FromData(t.scheme, data)
	if err != nil {
		return fmt.Errorf("sim: config %s scheme %s: %w", t.config, t.scheme.Name, err)
	}
	for _, idx := range t.cells {
		if err := ctx.Err(); err != nil {
			return err
		}
		p := pts[idx]
		res, err := sys.Evaluate(ch, core.EvalConfig{
			BlocksPerPeriod:        p.Blocks,
			ExcludeMigrationEnergy: p.ExcludeMigrationEnergy,
		})
		if err != nil {
			return fmt.Errorf("sim: config %s scheme %s blocks %d: %w",
				p.Config, p.Scheme.Name, p.Blocks, err)
		}
		out[idx] = Outcome{Point: p, Built: built, Result: res}
		close(ready[idx])
		emit(prog, Event{Stage: StageEvaluateDone, Config: p.Config, Scale: r.opts.Scale,
			Scheme: p.Scheme.Name, Point: idx, Blocks: p.Blocks})
	}
	return nil
}

// groupPoints partitions the grid into (configuration, scheme) tasks,
// ordered by their first appearance so scheduling is deterministic.
func groupPoints(pts []Point) []task {
	type gkey struct {
		config, scheme string
	}
	order := map[gkey]int{}
	var tasks []task
	for i, p := range pts {
		k := gkey{config: p.Config, scheme: p.Scheme.Name}
		ti, ok := order[k]
		if !ok {
			ti = len(tasks)
			order[k] = ti
			tasks = append(tasks, task{config: p.Config, scheme: p.Scheme})
		}
		tasks[ti].cells = append(tasks[ti].cells, i)
	}
	// Largest groups first: with more tasks than workers this packs the
	// pool better without affecting result order.
	sort.SliceStable(tasks, func(i, j int) bool {
		return len(tasks[i].cells) > len(tasks[j].cells)
	})
	return tasks
}

// Grid returns the cross product configs × schemes × blocks in
// configuration-major, scheme-then-period-minor order — the natural
// ordering of the paper's figures. A nil or empty blocks slice means the
// one-block base period.
func Grid(configs []string, schemes []core.Scheme, blocks []int) []Point {
	if len(blocks) == 0 {
		blocks = []int{1}
	}
	pts := make([]Point, 0, len(configs)*len(schemes)*len(blocks))
	for _, c := range configs {
		for _, s := range schemes {
			for _, b := range blocks {
				pts = append(pts, Point{Config: c, Scheme: s, Blocks: b})
			}
		}
	}
	return pts
}
