// Package sim is the sweep/orchestration layer over the raw simulator: it
// executes an arbitrary configuration × scheme × period experiment grid
// concurrently on a worker pool, building each chip configuration once,
// characterizing each (configuration, scheme) orbit once, and evaluating
// every period/ablation variant against that shared characterization.
//
// The paper's studies — Figure 1, the migration-period sweep, the
// migration-energy ablation — are all instances of such grids, and the
// experiments façade drives them through this runner. Results are
// bitwise identical to a serial walk of the same grid: every stage of the
// pipeline is deterministic, workers operate on independent System clones,
// and outcomes are returned in point order regardless of completion order.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"hotnoc/internal/chipcfg"
	"hotnoc/internal/core"
)

// Point is one cell of an experiment grid.
type Point struct {
	// Config is the chip configuration letter (A-E).
	Config string
	// Scheme is the migration scheme. Schemes are identified by name when
	// grouping work, so custom schemes must have unique names.
	Scheme core.Scheme
	// Blocks is the migration period in decoded blocks (0 = 1).
	Blocks int
	// ExcludeMigrationEnergy drops migration energy from the thermal
	// schedule (the paper's §3 ablation).
	ExcludeMigrationEnergy bool
}

// Outcome pairs a grid point with its evaluation. Outcomes of the same
// configuration share one *chipcfg.Built.
type Outcome struct {
	Point  Point
	Built  *chipcfg.Built
	Result core.RunResult
}

// Options tunes a Runner.
type Options struct {
	// Scale divides the workload size (default 1 = paper scale).
	Scale int
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// BuildCache builds each (configuration, scale) once and shares the result
// across all workers and runs. Concurrent requests for the same key block
// on a single build; different keys build in parallel.
type BuildCache struct {
	mu      sync.Mutex
	entries map[buildKey]*buildEntry
}

type buildKey struct {
	config string
	scale  int
}

type buildEntry struct {
	once  sync.Once
	built *chipcfg.Built
	err   error
}

// NewBuildCache returns an empty cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{entries: map[buildKey]*buildEntry{}}
}

// Get returns the calibrated build for (config, scale), constructing it on
// first use.
func (c *BuildCache) Get(config string, scale int) (*chipcfg.Built, error) {
	key := buildKey{config: config, scale: scale}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &buildEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		spec, err := chipcfg.ByName(config)
		if err != nil {
			e.err = err
			return
		}
		e.built, e.err = spec.Scaled(scale).Build()
	})
	return e.built, e.err
}

// Runner executes experiment grids. A Runner may be reused across Run
// calls; its build cache persists, so repeated sweeps over the same
// configurations skip construction entirely.
type Runner struct {
	opts   Options
	builds *BuildCache
}

// NewRunner returns a runner with the given options.
func NewRunner(opts Options) *Runner {
	return &Runner{opts: opts.withDefaults(), builds: NewBuildCache()}
}

// task is the unit of worker scheduling: all grid points sharing one
// (configuration, scheme), which therefore share one characterization.
type task struct {
	config string
	scheme core.Scheme
	// cells are the indices into the original point slice, in order.
	cells []int
}

// Run evaluates every point of the grid and returns outcomes in point
// order. Points sharing a configuration share one calibrated build; points
// sharing (configuration, scheme) additionally share one NoC
// characterization, so period and ablation variants cost only a thermal
// evaluation each. Run stops at the first error or context cancellation.
func (r *Runner) Run(ctx context.Context, pts []Point) ([]Outcome, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	tasks := groupPoints(pts)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]Outcome, len(pts))
	taskCh := make(chan task)
	errCh := make(chan error, 1)
	fail := func(err error) {
		select {
		case errCh <- err:
			cancel()
		default:
		}
	}

	workers := r.opts.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range taskCh {
				if ctx.Err() != nil {
					return
				}
				if err := r.runTask(ctx, t, pts, out); err != nil {
					fail(err)
					return
				}
			}
		}()
	}

feed:
	for _, t := range tasks {
		select {
		case taskCh <- t:
		case <-ctx.Done():
			break feed
		}
	}
	close(taskCh)
	wg.Wait()

	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// runTask characterizes one (configuration, scheme) on a private System
// clone and evaluates every period/ablation variant of the group.
func (r *Runner) runTask(ctx context.Context, t task, pts []Point, out []Outcome) error {
	built, err := r.builds.Get(t.config, r.opts.Scale)
	if err != nil {
		return fmt.Errorf("sim: config %s: %w", t.config, err)
	}
	// One System holds mutable engine, network and I/O state, so each task
	// works on its own clone of the shared calibrated system.
	sys, err := built.System.Clone()
	if err != nil {
		return fmt.Errorf("sim: config %s: clone: %w", t.config, err)
	}
	ch, err := sys.Characterize(t.scheme)
	if err != nil {
		return fmt.Errorf("sim: config %s scheme %s: %w", t.config, t.scheme.Name, err)
	}
	for _, idx := range t.cells {
		if err := ctx.Err(); err != nil {
			return err
		}
		p := pts[idx]
		res, err := sys.Evaluate(ch, core.EvalConfig{
			BlocksPerPeriod:        p.Blocks,
			ExcludeMigrationEnergy: p.ExcludeMigrationEnergy,
		})
		if err != nil {
			return fmt.Errorf("sim: config %s scheme %s blocks %d: %w",
				p.Config, p.Scheme.Name, p.Blocks, err)
		}
		out[idx] = Outcome{Point: p, Built: built, Result: res}
	}
	return nil
}

// groupPoints partitions the grid into (configuration, scheme) tasks,
// ordered by their first appearance so scheduling is deterministic.
func groupPoints(pts []Point) []task {
	type gkey struct {
		config, scheme string
	}
	order := map[gkey]int{}
	var tasks []task
	for i, p := range pts {
		k := gkey{config: p.Config, scheme: p.Scheme.Name}
		ti, ok := order[k]
		if !ok {
			ti = len(tasks)
			order[k] = ti
			tasks = append(tasks, task{config: p.Config, scheme: p.Scheme})
		}
		tasks[ti].cells = append(tasks[ti].cells, i)
	}
	// Largest groups first: with more tasks than workers this packs the
	// pool better without affecting result order.
	sort.SliceStable(tasks, func(i, j int) bool {
		return len(tasks[i].cells) > len(tasks[j].cells)
	})
	return tasks
}

// Grid returns the cross product configs × schemes × blocks in
// configuration-major, scheme-then-period-minor order — the natural
// ordering of the paper's figures. A nil or empty blocks slice means the
// one-block base period.
func Grid(configs []string, schemes []core.Scheme, blocks []int) []Point {
	if len(blocks) == 0 {
		blocks = []int{1}
	}
	pts := make([]Point, 0, len(configs)*len(schemes)*len(blocks))
	for _, c := range configs {
		for _, s := range schemes {
			for _, b := range blocks {
				pts = append(pts, Point{Config: c, Scheme: s, Blocks: b})
			}
		}
	}
	return pts
}
