package sim

import (
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hotnoc/internal/chipcfg"
	"hotnoc/internal/core"
	"hotnoc/internal/place"
)

// bcScale keeps real builds in these tests cheap: minimum code size and
// annealing effort, every code path still exercised.
const bcScale = 64

var (
	bcOnce sync.Once
	bcVal  *chipcfg.Built
	bcErr  error
)

// bcBuilt runs one real scaled build of configuration A, shared by every
// test that needs genuine build data.
func bcBuilt(t *testing.T) *chipcfg.Built {
	t.Helper()
	bcOnce.Do(func() {
		spec, err := chipcfg.ByName("A")
		if err != nil {
			bcErr = err
			return
		}
		bcVal, bcErr = spec.Scaled(bcScale).Build()
	})
	if bcErr != nil {
		t.Fatal(bcErr)
	}
	return bcVal
}

// countingCache returns a memory-or-disk cache whose cold builds serve the
// shared real build while counting invocations.
func countingCache(t *testing.T, dir string, builds *int) *BuildCache {
	t.Helper()
	real := bcBuilt(t)
	c := NewBuildCache(dir, 0)
	c.build = func(config string, scale int) (*chipcfg.Built, error) {
		*builds++
		return real, nil
	}
	return c
}

// TestBuildCacheRoundTrip: a build persisted by one cache is
// reconstituted by a fresh cache over the same directory with zero
// annealing and identical calibration products and placement.
func TestBuildCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1 := NewBuildCache(dir, 0)
	cold, hit, err := c1.Get("A", bcScale)
	if err != nil || hit {
		t.Fatalf("cold Get = (hit %v, err %v), want a cold build", hit, err)
	}

	anneals := place.AnnealCount()
	c2 := NewBuildCache(dir, 0)
	warm, hit, err := c2.Get("A", bcScale)
	if err != nil || !hit {
		t.Fatalf("restored Get = (hit %v, err %v), want disk hit", hit, err)
	}
	if got := place.AnnealCount() - anneals; got != 0 {
		t.Fatalf("warm restore ran %d annealing searches, want 0", got)
	}
	if warm.EnergyScale != cold.EnergyScale || warm.StaticPeakC != cold.StaticPeakC ||
		warm.BlockCycles != cold.BlockCycles {
		t.Fatal("restored calibration products differ from the cold build")
	}
	for i := range cold.System.InitialPlace {
		if warm.System.InitialPlace[i] != cold.System.InitialPlace[i] {
			t.Fatalf("restored placement differs at %d", i)
		}
	}
}

// TestBuildCacheMemoryHit: the second in-process Get for a key is a hit
// and does not rebuild.
func TestBuildCacheMemoryHit(t *testing.T) {
	builds := 0
	c := countingCache(t, "", &builds) // memory-only
	if _, hit, err := c.Get("A", bcScale); hit || err != nil {
		t.Fatalf("cold Get = (hit %v, err %v)", hit, err)
	}
	if _, hit, err := c.Get("A", bcScale); !hit || err != nil {
		t.Fatalf("warm Get = (hit %v, err %v)", hit, err)
	}
	if builds != 1 {
		t.Fatalf("built %d times, want 1", builds)
	}
}

// TestBuildCacheRetriesAfterError: one transient build failure must not
// poison the key — the regression twin of TestCharCacheRetriesAfterError.
func TestBuildCacheRetriesAfterError(t *testing.T) {
	real := bcBuilt(t)
	transient := errors.New("transient build failure")
	calls := 0
	c := NewBuildCache("", 0)
	c.build = func(config string, scale int) (*chipcfg.Built, error) {
		calls++
		if calls == 1 {
			return nil, transient
		}
		return real, nil
	}
	if _, _, err := c.Get("A", bcScale); !errors.Is(err, transient) {
		t.Fatalf("first Get returned %v, want the build error", err)
	}
	built, hit, err := c.Get("A", bcScale)
	if err != nil || hit || built == nil {
		t.Fatalf("retry after failure = (hit %v, err %v), want a fresh build", hit, err)
	}
	if _, hit, err := c.Get("A", bcScale); !hit || err != nil {
		t.Fatalf("post-retry Get = (hit %v, err %v), want memory hit", hit, err)
	}
	if calls != 2 {
		t.Fatalf("build ran %d times, want 2 (fail, then retry)", calls)
	}
}

// TestRunnerBuildRetryAccounting: a failed build releases the runner's
// build-start claim so the retry brackets again, and the retry's cold
// build is classified as a miss — a fail-then-retry sequence must never
// surface as build_hits with zero misses, because that is exactly the
// signal the warm-start acceptance checks trust.
func TestRunnerBuildRetryAccounting(t *testing.T) {
	real := bcBuilt(t)
	r := NewRunner(Options{Scale: bcScale, Workers: 1})
	fail := true
	r.builds.build = func(config string, scale int) (*chipcfg.Built, error) {
		if fail {
			fail = false
			return nil, errors.New("transient build failure")
		}
		return real, nil
	}
	var events []Event
	prog := func(ev Event) { events = append(events, ev) }

	if _, err := r.builtFor("A", prog); err == nil {
		t.Fatal("first build did not fail")
	}
	if _, err := r.builtFor("A", prog); err != nil {
		t.Fatal(err)
	}
	if hits, misses := r.BuildStats(); hits != 0 || misses != 1 {
		t.Fatalf("fail-then-retry counted %d hits / %d misses, want 0 / 1", hits, misses)
	}
	var stages []Stage
	for _, ev := range events {
		stages = append(stages, ev.Stage)
		if ev.Stage == StageBuildDone && ev.CacheHit {
			t.Fatal("retry's cold build reported CacheHit")
		}
	}
	want := []Stage{StageBuildStart, StageBuildStart, StageBuildDone}
	if len(stages) != len(want) {
		t.Fatalf("events %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("events %v, want %v", stages, want)
		}
	}

	// A further request is a plain memory hit and accounts nothing more.
	if _, err := r.builtFor("A", prog); err != nil {
		t.Fatal(err)
	}
	if hits, misses := r.BuildStats(); hits != 0 || misses != 1 {
		t.Fatalf("memory hit re-counted: %d hits / %d misses, want 0 / 1", hits, misses)
	}
	if len(events) != len(want) {
		t.Fatalf("memory hit emitted extra events: %v", events)
	}
}

// TestBuildCacheIgnoresCorruptEntry: garbage bytes on disk mean "rebuild
// and overwrite", never a failed sweep.
func TestBuildCacheIgnoresCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	builds := 0
	c := countingCache(t, dir, &builds)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(BuildKey{Config: "A", Scale: bcScale}), []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := c.Get("A", bcScale); err != nil || hit || builds != 1 {
		t.Fatalf("corrupt entry: (hit %v, builds %d, err %v), want silent rebuild", hit, builds, err)
	}
	// The overwrite must leave a valid snapshot behind.
	if _, hit, err := NewBuildCache(dir, 0).Get("A", bcScale); err != nil || !hit {
		t.Fatalf("after overwrite: (hit %v, err %v), want disk hit", hit, err)
	}
}

// TestBuildCacheIgnoresStaleEntries: snapshots with the wrong format
// version, key, grid or a payload failing spec revalidation are treated
// as absent — the sweep silently falls back to a fresh build.
func TestBuildCacheIgnoresStaleEntries(t *testing.T) {
	key := BuildKey{Config: "A", Scale: bcScale}
	good := *bcBuilt(t).Data()
	badPayload := good
	badPayload.EnergyScale = 0
	cases := []struct {
		name string
		env  diskBuild
	}{
		{"version", diskBuild{Version: buildFormatVersion + 1, Key: key, GridN: 4, Data: good}},
		{"key", diskBuild{Version: buildFormatVersion, Key: BuildKey{Config: "B", Scale: bcScale}, GridN: 4, Data: good}},
		{"gridn", diskBuild{Version: buildFormatVersion, Key: key, GridN: 5, Data: good}},
		{"payload", diskBuild{Version: buildFormatVersion, Key: key, GridN: 4, Data: badPayload}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			builds := 0
			c := countingCache(t, t.TempDir(), &builds)
			f, err := os.Create(c.path(key))
			if err != nil {
				t.Fatal(err)
			}
			if err := gob.NewEncoder(f).Encode(tc.env); err != nil {
				t.Fatal(err)
			}
			f.Close()
			if _, hit, err := c.Get("A", bcScale); err != nil || hit || builds != 1 {
				t.Fatalf("stale %s entry: (hit %v, builds %d, err %v), want rebuild",
					tc.name, hit, builds, err)
			}
		})
	}
}

// TestBuildCacheUnwritableDir: when the cache path cannot be written (or
// read) at all, Get still serves fresh builds — persistence is best
// effort, never a sweep failure.
func TestBuildCacheUnwritableDir(t *testing.T) {
	// A regular file where the directory should be defeats both MkdirAll
	// and Open regardless of process privileges (tests may run as root,
	// where permission bits alone stop nothing).
	base := t.TempDir()
	notADir := filepath.Join(base, "cache")
	if err := os.WriteFile(notADir, []byte("occupied"), 0o644); err != nil {
		t.Fatal(err)
	}
	builds := 0
	c := countingCache(t, filepath.Join(notADir, "sub"), &builds)
	if _, hit, err := c.Get("A", bcScale); err != nil || hit || builds != 1 {
		t.Fatalf("unwritable dir: (hit %v, builds %d, err %v), want fresh build", hit, builds, err)
	}
	// And the in-memory entry still serves.
	if _, hit, err := c.Get("A", bcScale); err != nil || !hit {
		t.Fatalf("memory entry after failed persist: (hit %v, err %v)", hit, err)
	}
}

// TestBuildCacheLRUEvictionIndependentOfCharFiles: build snapshots are
// bounded per kind — writing builds past the limit evicts the oldest
// build files and leaves characterization files alone.
func TestBuildCacheLRUEvictionIndependentOfCharFiles(t *testing.T) {
	dir := t.TempDir()
	const n = 4

	// Two characterization files that must survive build eviction.
	cc := NewCharCache(dir, 0)
	for _, k := range []CharKey{
		{Config: "A", Scheme: "Rot", Scale: 8},
		{Config: "B", Scheme: "Rot", Scale: 8},
	} {
		if _, _, err := cc.Get(k, n, func() (*core.CharData, error) { return fakeChar(n), nil }); err != nil {
			t.Fatal(err)
		}
	}

	real := bcBuilt(t)
	bc := NewBuildCache(dir, 2)
	bc.build = func(config string, scale int) (*chipcfg.Built, error) { return real, nil }
	for _, cfg := range []string{"A", "B", "C"} {
		if _, _, err := bc.Get(cfg, bcScale); err != nil {
			t.Fatal(err)
		}
	}
	buildFiles, err := filepath.Glob(filepath.Join(dir, "build_*.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if len(buildFiles) != 2 {
		t.Fatalf("%d build snapshots after eviction, want 2", len(buildFiles))
	}
	charFiles, err := filepath.Glob(filepath.Join(dir, "char_*.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if len(charFiles) != 2 {
		t.Fatalf("build eviction removed characterization files (%d left, want 2)", len(charFiles))
	}
}
