package sim

import (
	"os"
	"sync/atomic"
	"testing"
	"time"

	"hotnoc/internal/chipcfg"
)

// pinLockTiming speeds the advisory-lock poll loop up for tests and
// restores the production cadence afterwards.
func pinLockTiming(t *testing.T, poll, stale, wait time.Duration) {
	t.Helper()
	prevPoll, prevStale, prevWait := lockPollEvery, lockStaleAfter, lockWaitMax
	lockPollEvery, lockStaleAfter, lockWaitMax = poll, stale, wait
	t.Cleanup(func() { lockPollEvery, lockStaleAfter, lockWaitMax = prevPoll, prevStale, prevWait })
}

// TestBuildLockDedupsAcrossCaches is the coordinator-less shared
// cache-dir scenario: two independent BuildCaches (standing in for two
// daemon processes — each has its own in-memory singleflight, so only
// the advisory lock file can coordinate them) resolve the same cold key
// concurrently. The advisory lock must serialize them so exactly one
// anneal runs and the loser reconstitutes the winner's snapshot.
func TestBuildLockDedupsAcrossCaches(t *testing.T) {
	pinLockTiming(t, 2*time.Millisecond, time.Hour, time.Minute)
	real := bcBuilt(t)
	dir := t.TempDir()

	var builds atomic.Int64
	gate := make(chan struct{})
	entered := make(chan struct{}, 2)
	mkCache := func() *BuildCache {
		c := NewBuildCache(dir, 0)
		c.build = func(config string, scale int) (*chipcfg.Built, error) {
			builds.Add(1)
			entered <- struct{}{}
			<-gate
			return real, nil
		}
		return c
	}
	a, b := mkCache(), mkCache()

	type res struct {
		built *chipcfg.Built
		err   error
	}
	results := make(chan res, 2)
	get := func(c *BuildCache) {
		built, _, err := c.Get("A", bcScale)
		results <- res{built, err}
	}
	go get(a)
	// Wait for the first daemon to hold the lock and sit inside its
	// build before the second one starts, so the contender path is the
	// one exercised.
	<-entered
	go get(b)

	// While the holder is mid-anneal, the contender must wait on the
	// lock file rather than start a second build.
	select {
	case <-entered:
		t.Fatal("second cache started a build while the first held the lock")
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)

	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("Get: %v", r.err)
		}
		if r.built == nil {
			t.Fatal("Get returned nil build")
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("expected exactly one cold build across both caches, got %d", n)
	}
	// The winner's release must not leave the lock file behind.
	if _, err := os.Stat(a.path(BuildKey{Config: "A", Scale: bcScale}) + ".lock"); !os.IsNotExist(err) {
		t.Fatalf("lock file still present after both Gets: %v", err)
	}
}

// TestBuildLockBreaksStaleLock: a lock file left by a crashed holder
// must not wedge the key — a contender older than the staleness bound
// breaks it and builds.
func TestBuildLockBreaksStaleLock(t *testing.T) {
	pinLockTiming(t, 2*time.Millisecond, 50*time.Millisecond, time.Minute)
	dir := t.TempDir()
	var builds int
	c := countingCache(t, dir, &builds)

	lock := c.path(BuildKey{Config: "A", Scale: bcScale}) + ".lock"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lock, []byte("0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, _, err := c.Get("A", bcScale)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Get wedged behind a stale lock")
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
}

// TestBuildLockMemoryOnly: without a cache directory there is nothing
// to lock; the cold path must not touch the filesystem or stall.
func TestBuildLockMemoryOnly(t *testing.T) {
	var builds int
	c := countingCache(t, "", &builds)
	if _, _, err := c.Get("A", bcScale); err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
}
