package sim

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// diskCache is the on-disk half shared by the sweep layer's caches: gob
// envelopes written atomically (temp file + rename), best-effort reads
// where any problem means "recompute", per-kind LRU eviction over the
// file count, and a debounced modification-time touch so hot in-memory
// entries stay visible to eviction without a syscall per request. The
// characterization cache and the build cache each own one, differing only
// in prefix (artifact kind) and envelope type.
type diskCache struct {
	dir    string
	limit  int
	prefix string // artifact kind; files are named <prefix>_*.gob
}

// enabled reports whether persistence is configured at all.
func (c *diskCache) enabled() bool { return c.dir != "" }

// load restores one gob envelope into v, returning false on any problem —
// a missing, unreadable or corrupt file means "compute it again", never
// an error. Semantic validation (version, key, payload) is the caller's.
func (c *diskCache) load(path string, v any) bool {
	if !c.enabled() {
		return false
	}
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	return gob.NewDecoder(f).Decode(v) == nil
}

// save persists one envelope best-effort: a sweep never fails because its
// cache directory is read-only or full. The write goes through a temp
// file and rename so concurrent processes see either the old entry or the
// complete new one, never a torn file. A successful write triggers an
// eviction pass.
func (c *diskCache) save(path string, v any) {
	if !c.enabled() {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(v); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	if os.Rename(tmp.Name(), path) == nil {
		c.evict()
	}
}

// touch refreshes a persisted entry's modification time so eviction sees
// it as recently used. Best effort, like all disk operations here.
func (c *diskCache) touch(path string) {
	if !c.enabled() {
		return
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now)
}

// touchInterval debounces LRU touches on memory hits: one entry issues at
// most one Chtimes syscall per interval, however hot it runs. Eviction
// granularity only needs to distinguish entries idle for days from
// entries served this minute. A variable so tests can pin it.
var touchInterval = time.Minute

// touchDebounced is touch rate-limited through last, which records the
// entry's previous touch as unix nanoseconds. Chunked sweeps hitting one
// key once per worker — and long-lived services serving one hot key for
// months — stay syscall-free between intervals.
func (c *diskCache) touchDebounced(path string, last *atomic.Int64) {
	if !c.enabled() {
		return
	}
	now := time.Now().UnixNano()
	prev := last.Load()
	if now-prev < int64(touchInterval) {
		return
	}
	if !last.CompareAndSwap(prev, now) {
		return // another goroutine claimed this interval's touch
	}
	c.touch(path)
}

// evict enforces the file-count bound for this cache's artifact kind:
// when more than limit files carry its prefix, the oldest-touched ones
// are removed until the count fits. Best effort — an unreadable directory
// or a losing race with a concurrent process is ignored. The file just
// written is by construction the newest, so it survives its own pass.
func (c *diskCache) evict() {
	if c.limit <= 0 {
		return
	}
	matches, err := filepath.Glob(filepath.Join(c.dir, c.prefix+"_*.gob"))
	if err != nil || len(matches) <= c.limit {
		return
	}
	type aged struct {
		path string
		mod  time.Time
	}
	files := make([]aged, 0, len(matches))
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			continue
		}
		files = append(files, aged{path: m, mod: fi.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	for i := 0; i < len(files)-c.limit; i++ {
		_ = os.Remove(files[i].path)
	}
}

// Advisory cross-process locking. Two coordinator-less daemons pointed
// at one cache directory race to build the same cold key; an advisory
// lock file per entry serializes them so the expensive compute (an
// annealing build) runs once and the loser reloads the winner's
// snapshot. The lock is O_CREATE|O_EXCL — portable to every platform Go
// supports, unlike flock — with mtime-based staleness so a crashed
// holder cannot wedge the key forever. Locking is best-effort like
// every disk operation here: an unwritable directory or an exhausted
// wait budget degrades to duplicate work, never to a failed sweep.
var (
	// lockStaleAfter is how old a lock file must be before a contender
	// breaks it: comfortably above the longest paper-scale anneal.
	lockStaleAfter = 10 * time.Minute
	// lockPollEvery is the contender's polling cadence.
	lockPollEvery = 100 * time.Millisecond
	// lockWaitMax bounds how long a contender waits before giving up
	// and computing anyway — duplicate work beats a deadlocked sweep.
	lockWaitMax = 15 * time.Minute
)

// waitLock blocks until it holds the advisory lock for path, returning
// the release function — or nil when locking is unavailable (no cache
// directory, unwritable directory) or the wait budget ran out, in which
// case the caller proceeds unlocked.
func (c *diskCache) waitLock(path string) (release func()) {
	if !c.enabled() {
		return nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return nil
	}
	lockPath := path + ".lock"
	deadline := time.Now().Add(lockWaitMax)
	for {
		f, err := os.OpenFile(lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			// The pid is diagnostic only; identity is the file itself.
			fmt.Fprintf(f, "%d\n", os.Getpid())
			f.Close()
			return func() { _ = os.Remove(lockPath) }
		}
		if !os.IsExist(err) {
			return nil
		}
		if fi, serr := os.Stat(lockPath); serr == nil && time.Since(fi.ModTime()) > lockStaleAfter {
			// A crashed holder left the lock behind; break it and retry.
			// Losing the remove race to another contender is fine — the
			// next OpenFile settles who holds the fresh lock.
			_ = os.Remove(lockPath)
			continue
		}
		if time.Now().After(deadline) {
			return nil
		}
		time.Sleep(lockPollEvery)
	}
}

// slug folds a name into a filesystem-safe token.
func slug(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// nameHash distinguishes raw names whose slugs collide (e.g. custom
// scheme names differing only in punctuation), so such keys cannot evict
// each other's entries.
func nameHash(parts ...string) string {
	h := fnv.New32a()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{0})
		}
		h.Write([]byte(p))
	}
	return fmt.Sprintf("%08x", h.Sum32())
}
