package sim

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hotnoc/internal/core"
)

// charFormatVersion gates disk entries: bump it whenever the simulation
// pipeline changes in a way that invalidates stored characterizations.
// Entries with any other version are treated as stale and recomputed.
const charFormatVersion = 1

// CharKey identifies one cross-run characterization: a (configuration,
// scheme, scale) triple. Everything the NoC stage measures is a pure
// function of this key, which is what makes the cache sound.
type CharKey struct {
	Config string
	Scheme string
	Scale  int
}

// diskChar is the on-disk envelope of one cache entry. The key is stored
// alongside the payload so a renamed or copied file cannot serve the
// wrong characterization, and GridN lets the payload be validated before
// use.
type diskChar struct {
	Version int
	Key     CharKey
	GridN   int
	Data    core.CharData
}

// CharCache shares NoC characterizations across runs. In memory it is a
// per-key singleflight: concurrent requests for one key block on a single
// computation while different keys proceed in parallel. With a directory
// configured, entries additionally persist as gob files, so a fresh
// process pointed at the same directory skips the cycle-accurate NoC
// stage entirely — and because gob round-trips float64 bit-exactly,
// results from a warm restart are bitwise identical to a cold run.
// Corrupt, stale or mismatched disk entries are ignored (and overwritten
// after recomputation), never fatal.
//
// A positive limit bounds the number of files kept in the directory:
// serving an entry refreshes its modification time, and writing one past
// the bound evicts the least-recently-used files, so a long-lived service
// sweeping many scales and schemes cannot grow the directory without
// bound. The in-memory map is not bounded — live entries are shared and
// small in number compared with the files a service accretes over months.
type CharCache struct {
	dir   string
	limit int

	mu      sync.Mutex
	entries map[CharKey]*charEntry
}

type charEntry struct {
	once sync.Once
	data *core.CharData
	err  error
	// resolved flips once the entry is populated; fromDisk records that
	// it came from a persisted file. Together they let each Get report
	// whether *its* call skipped the NoC stage — a caller that merely
	// waited on another goroutine's in-flight compute is not a hit.
	resolved atomic.Bool
	fromDisk bool
}

// NewCharCache returns a cache persisting under dir; an empty dir keeps
// the cache memory-only. A positive limit bounds the file count under
// dir with least-recently-used eviction; zero means unbounded.
func NewCharCache(dir string, limit int) *CharCache {
	return &CharCache{dir: dir, limit: limit, entries: map[CharKey]*charEntry{}}
}

// Get returns the characterization for key, running compute on first use
// unless a valid disk entry exists. gridN is the chip's block count,
// used to validate deserialized entries. The returned flag reports a
// cache hit: true when the NoC stage was skipped (entry already in
// memory or restored from disk), false when compute ran.
func (c *CharCache) Get(key CharKey, gridN int, compute func() (*core.CharData, error)) (*core.CharData, bool, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &charEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	alreadyResolved := e.resolved.Load()
	e.once.Do(func() {
		defer e.resolved.Store(true)
		if d := c.load(key, gridN); d != nil {
			e.data = d
			e.fromDisk = true
			return
		}
		e.data, e.err = compute()
		if e.err == nil {
			c.save(key, gridN, e.data)
		}
	})
	hit := (alreadyResolved || e.fromDisk) && e.err == nil
	if hit && alreadyResolved {
		// Memory hits must count as use for the on-disk LRU too —
		// load() touched the file once, but a long-lived service serves
		// hot entries from memory for months afterwards, and those
		// entries must not look idle to eviction.
		c.touch(key)
	}
	return e.data, hit, e.err
}

// touch refreshes a persisted entry's modification time so eviction sees
// it as recently used. Best effort, like all disk operations here.
func (c *CharCache) touch(key CharKey) {
	if c.dir == "" {
		return
	}
	now := time.Now()
	_ = os.Chtimes(c.path(key), now, now)
}

// path maps a key to its file under the cache directory. The slugs keep
// filenames readable; the hash of the raw names keeps distinct keys that
// slug identically (e.g. custom scheme names differing only in
// punctuation) from evicting each other's entries.
func (c *CharCache) path(key CharKey) string {
	h := fnv.New32a()
	h.Write([]byte(key.Config))
	h.Write([]byte{0})
	h.Write([]byte(key.Scheme))
	return filepath.Join(c.dir, fmt.Sprintf("char_%s_%s_s%d_%08x.gob",
		slug(key.Config), slug(key.Scheme), key.Scale, h.Sum32()))
}

// slug folds a name into a filesystem-safe token.
func slug(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// load restores a disk entry, returning nil on any problem — a missing,
// unreadable, corrupt, stale-format or mismatched file means "compute it
// again", never an error.
func (c *CharCache) load(key CharKey, gridN int) *core.CharData {
	if c.dir == "" {
		return nil
	}
	f, err := os.Open(c.path(key))
	if err != nil {
		return nil
	}
	defer f.Close()
	var dc diskChar
	if err := gob.NewDecoder(f).Decode(&dc); err != nil {
		return nil
	}
	if dc.Version != charFormatVersion || dc.Key != key || dc.GridN != gridN {
		return nil
	}
	if err := dc.Data.Validate(gridN); err != nil {
		return nil
	}
	// Touch the file so LRU eviction sees a served entry as recently
	// used, not as old as its original write.
	c.touch(key)
	return &dc.Data
}

// save persists an entry best-effort: a sweep never fails because its
// cache directory is read-only or full. The write goes through a temp
// file and rename so concurrent processes see either the old entry or
// the complete new one, never a torn file.
func (c *CharCache) save(key CharKey, gridN int, data *core.CharData) {
	if c.dir == "" || data == nil {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	path := c.path(key)
	tmp, err := os.CreateTemp(c.dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	enc := gob.NewEncoder(tmp)
	if err := enc.Encode(diskChar{
		Version: charFormatVersion,
		Key:     key,
		GridN:   gridN,
		Data:    *data,
	}); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	if os.Rename(tmp.Name(), path) == nil {
		c.evict()
	}
}

// evict enforces the file-count bound: when more than limit
// characterization files live under the directory, the oldest-touched
// ones are removed until the count fits. Like save, eviction is best
// effort — an unreadable directory or a losing race with a concurrent
// process is ignored. The file just written is by construction the
// newest, so it survives its own eviction pass.
func (c *CharCache) evict() {
	if c.limit <= 0 {
		return
	}
	matches, err := filepath.Glob(filepath.Join(c.dir, "char_*.gob"))
	if err != nil || len(matches) <= c.limit {
		return
	}
	type aged struct {
		path string
		mod  time.Time
	}
	files := make([]aged, 0, len(matches))
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			continue
		}
		files = append(files, aged{path: m, mod: fi.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	for i := 0; i < len(files)-c.limit; i++ {
		_ = os.Remove(files[i].path)
	}
}
