package sim

import (
	"fmt"
	"path/filepath"
	"sync/atomic"

	"hotnoc/internal/core"
)

// charFormatVersion gates disk entries: bump it whenever the simulation
// pipeline changes in a way that invalidates stored characterizations.
// Entries with any other version are treated as stale and recomputed.
const charFormatVersion = 1

// CharKey identifies one cross-run characterization: a (configuration,
// scheme, scale) triple. Everything the NoC stage measures is a pure
// function of this key, which is what makes the cache sound.
type CharKey struct {
	Config string
	Scheme string
	Scale  int
}

// diskChar is the on-disk envelope of one cache entry. The key is stored
// alongside the payload so a renamed or copied file cannot serve the
// wrong characterization, and GridN lets the payload be validated before
// use.
type diskChar struct {
	Version int
	Key     CharKey
	GridN   int
	Data    core.CharData
}

// CharCache shares NoC characterizations across runs. In memory it is a
// per-key singleflight: concurrent requests for one key block on a single
// computation while different keys proceed in parallel. With a directory
// configured, entries additionally persist as gob files, so a fresh
// process pointed at the same directory skips the cycle-accurate NoC
// stage entirely — and because gob round-trips float64 bit-exactly,
// results from a warm restart are bitwise identical to a cold run.
// Corrupt, stale or mismatched disk entries are ignored (and overwritten
// after recomputation), never fatal.
//
// A failed computation is never cached: the error reaches the failing
// request and every request that was blocked on it, and the key is
// forgotten, so the next request retries. A transient failure (exhausted
// memory, a canceled context) therefore cannot poison a key for the life
// of a long-lived service.
//
// A positive limit bounds the number of characterization files kept in
// the directory: serving an entry refreshes its modification time (at
// most once per entry per touchInterval, so hot keys cost no syscalls),
// and writing one past the bound evicts the least-recently-used files, so
// a long-lived service sweeping many scales and schemes cannot grow the
// directory without bound. The in-memory map is not bounded — live
// entries are shared and small in number compared with the files a
// service accretes over months.
type CharCache struct {
	disk   diskCache
	flight singleflight[CharKey, *core.CharData]
}

// NewCharCache returns a cache persisting under dir; an empty dir keeps
// the cache memory-only. A positive limit bounds the characterization
// file count under dir with least-recently-used eviction; zero means
// unbounded.
func NewCharCache(dir string, limit int) *CharCache {
	return &CharCache{disk: diskCache{dir: dir, limit: limit, prefix: "char"}}
}

// Get returns the characterization for key, running compute on first use
// unless a valid disk entry exists. gridN is the chip's block count,
// used to validate deserialized entries. The returned flag reports a
// cache hit: true when the NoC stage was skipped (entry already in
// memory or restored from disk), false when compute ran — a caller that
// merely waited on another goroutine's in-flight compute is not a hit,
// because the sweep did pay for the NoC stage. A compute error is
// returned to this caller and any goroutine that was blocked on the same
// key, but is not cached: the key is cleared so the next request
// retries.
func (c *CharCache) Get(key CharKey, gridN int, compute func() (*core.CharData, error)) (*core.CharData, bool, error) {
	return c.flight.do(key,
		func() (*core.CharData, bool) {
			d := c.load(key, gridN)
			return d, d != nil
		},
		func() (*core.CharData, error) {
			d, err := compute()
			if err != nil {
				return nil, err
			}
			c.save(key, gridN, d)
			return d, nil
		},
		func(last *atomic.Int64) {
			// Memory hits must count as use for the on-disk LRU too —
			// load() touched the file once, but a long-lived service
			// serves hot entries from memory for months afterwards, and
			// those entries must not look idle to eviction. Debounced:
			// chunked sweeps hit one key up to Workers times.
			c.disk.touchDebounced(c.path(key), last)
		})
}

// path maps a key to its file under the cache directory. The slugs keep
// filenames readable; the hash of the raw names keeps distinct keys that
// slug identically from evicting each other's entries.
func (c *CharCache) path(key CharKey) string {
	return filepath.Join(c.disk.dir, fmt.Sprintf("char_%s_%s_s%d_%s.gob",
		slug(key.Config), slug(key.Scheme), key.Scale, nameHash(key.Config, key.Scheme)))
}

// load restores a disk entry, returning nil on any problem — a missing,
// unreadable, corrupt, stale-format or mismatched file means "compute it
// again", never an error.
func (c *CharCache) load(key CharKey, gridN int) *core.CharData {
	var dc diskChar
	if !c.disk.load(c.path(key), &dc) {
		return nil
	}
	if dc.Version != charFormatVersion || dc.Key != key || dc.GridN != gridN {
		return nil
	}
	if err := dc.Data.Validate(gridN); err != nil {
		return nil
	}
	// Touch the file so LRU eviction sees a served entry as recently
	// used, not as old as its original write.
	c.disk.touch(c.path(key))
	return &dc.Data
}

// save persists an entry best-effort; see diskCache.save.
func (c *CharCache) save(key CharKey, gridN int, data *core.CharData) {
	if data == nil {
		return
	}
	c.disk.save(c.path(key), diskChar{
		Version: charFormatVersion,
		Key:     key,
		GridN:   gridN,
		Data:    *data,
	})
}
