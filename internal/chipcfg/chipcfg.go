// Package chipcfg defines the paper's five test-chip configurations. The
// 4x4 chip is evaluated in two configurations (A, B) and the 5x5 chip in
// three (C, D, E); per the paper, the configurations differ in "the
// irregularity of the communication patterns and the amount of computation
// mapped to a single PE". Here each configuration is an LDPC code plus a
// Tanner-graph partition with its own compute skew and communication
// weighting; every configuration is placed with the thermally-aware
// annealer and its energy table is calibrated so the static placement's
// peak temperature matches the paper's reported base temperature
// (Figure 1: A 85.44 °C, B 84.05 °C, C 75.17 °C, D 72.80 °C, E 75.98 °C)
// at the 40 °C HotSpot ambient.
package chipcfg

import (
	"fmt"
	"math"

	"hotnoc/internal/appmap"
	"hotnoc/internal/core"
	"hotnoc/internal/floorplan"
	"hotnoc/internal/geom"
	"hotnoc/internal/ldpc"
	"hotnoc/internal/noc"
	"hotnoc/internal/place"
	"hotnoc/internal/power"
	"hotnoc/internal/thermal"
)

// Spec declares one test-chip configuration.
type Spec struct {
	// Name is the paper's configuration letter.
	Name string
	// GridN is the mesh dimension (4 or 5).
	GridN int
	// BasePeakC is the paper's static-placement peak temperature the
	// energy calibration targets.
	BasePeakC float64

	// Code geometry.
	CodeN, CodeM, ColWeight int
	CodeSeed                int64

	// Partition skew: HeavyPEs logical PEs receive HeavyShare of the
	// check nodes and VarShare of the variable nodes ("amount of
	// computation mapped to a single PE").
	HeavyPEs   int
	HeavyShare float64
	VarShare   float64
	PartSeed   int64

	// CommWeight is the placement's communication-versus-temperature
	// trade-off; a high weight pulls heavily-communicating PEs toward the
	// die centre (configuration E's central hotspots).
	CommWeight float64
	// IOWeight anchors variable-heavy PEs near the chip's I/O interface
	// (LLR streaming); a high weight produces the banded, off-centre hot
	// structures of the 4x4 configurations.
	IOWeight float64
	// IOAtCorner places the I/O interface at the south-west corner pad
	// ring instead of the south edge centre.
	IOAtCorner bool
	PlaceSeed  int64
	PlaceIters int
	// PlaceRestarts runs that many independently-seeded annealing searches
	// and keeps the deterministic best (see place.Options.Restarts). Zero
	// or one keeps the single-seed search the paper configurations use,
	// preserving their placements bit for bit.
	PlaceRestarts int

	// Decoder and workload.
	MaxIter  int
	SNRdB    float64
	ChanSeed int64

	// StateFlits is the per-PE configuration+state transferred at each
	// migration (block-boundary migrations keep it small, §3).
	StateFlits int
}

// Specs returns the five paper configurations, scaled so one block decode
// lands near the paper's 109.3 µs base migration period at the 250 MHz
// NoC clock.
func Specs() []Spec {
	return []Spec{
		{
			Name: "A", GridN: 4, BasePeakC: 85.44,
			CodeN: 2560, CodeM: 1280, ColWeight: 3, CodeSeed: 1001,
			HeavyPEs: 4, HeavyShare: 0.55, VarShare: 0.50, PartSeed: 2001,
			CommWeight: 1.2e-3, IOWeight: 3.0e-3, IOAtCorner: true, PlaceSeed: 3001, PlaceIters: 20000,
			MaxIter: 16, SNRdB: 2.5, ChanSeed: 4001,
			StateFlits: 128,
		},
		{
			Name: "B", GridN: 4, BasePeakC: 84.05,
			CodeN: 2560, CodeM: 1280, ColWeight: 3, CodeSeed: 1002,
			HeavyPEs: 3, HeavyShare: 0.45, VarShare: 0.40, PartSeed: 2002,
			CommWeight: 0.8e-3, IOWeight: 2.5e-3, IOAtCorner: true, PlaceSeed: 3002, PlaceIters: 20000,
			MaxIter: 16, SNRdB: 2.5, ChanSeed: 4002,
			StateFlits: 128,
		},
		{
			Name: "C", GridN: 5, BasePeakC: 75.17,
			CodeN: 4000, CodeM: 2000, ColWeight: 3, CodeSeed: 1003,
			HeavyPEs: 5, HeavyShare: 0.40, VarShare: 0.35, PartSeed: 2003,
			CommWeight: 0.8e-3, IOWeight: 3.0e-3, PlaceSeed: 3003, PlaceIters: 25000,
			MaxIter: 16, SNRdB: 2.5, ChanSeed: 4003,
			StateFlits: 128,
		},
		{
			Name: "D", GridN: 5, BasePeakC: 72.80,
			CodeN: 4000, CodeM: 2000, ColWeight: 3, CodeSeed: 1004,
			HeavyPEs: 6, HeavyShare: 0.45, VarShare: 0.35, PartSeed: 2004,
			CommWeight: 0.8e-3, IOWeight: 2.5e-3, PlaceSeed: 3004, PlaceIters: 25000,
			MaxIter: 16, SNRdB: 2.5, ChanSeed: 4004,
			StateFlits: 128,
		},
		{
			Name: "E", GridN: 5, BasePeakC: 75.98,
			CodeN: 4000, CodeM: 2000, ColWeight: 3, CodeSeed: 1005,
			HeavyPEs: 4, HeavyShare: 0.50, VarShare: 0.40, PartSeed: 2005,
			CommWeight: 8e-3, IOWeight: 0, PlaceSeed: 3005, PlaceIters: 25000,
			MaxIter: 16, SNRdB: 2.5, ChanSeed: 4005,
			StateFlits: 128,
		},
	}
}

// ByName returns the configuration with the given letter.
func ByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("chipcfg: unknown configuration %q (want A..E)", name)
}

// Scaled returns a copy with the code size and annealing effort divided by
// f (minimum sizes preserved) — used by tests to keep full-pipeline runs
// fast while preserving every code path.
func (s Spec) Scaled(f int) Spec {
	if f <= 1 {
		return s
	}
	out := s
	out.CodeN = max(s.GridN*s.GridN*10, s.CodeN/f)
	out.CodeM = max(s.GridN*s.GridN*5, s.CodeM/f)
	out.MaxIter = max(4, s.MaxIter/f)
	out.PlaceIters = max(2000, s.PlaceIters/f)
	// Blocks shrink with the code, so the migrated state must shrink too
	// or migration overhead would dwarf the reduced workload.
	out.StateFlits = max(8, s.StateFlits/f)
	return out
}

// ioCoord returns the mesh position adjacent to the chip's I/O pads.
func (s Spec) ioCoord(g geom.Grid) geom.Coord {
	if s.IOAtCorner {
		return geom.Coord{X: 0, Y: 0}
	}
	return geom.Coord{X: g.W / 2, Y: 0}
}

// Built is a fully assembled, calibrated system plus its metadata.
type Built struct {
	Spec   Spec
	System *core.System
	// EnergyScale is the calibration factor applied to the 160 nm table.
	EnergyScale float64
	// StaticPeakC is the calibrated static peak (should match BasePeakC).
	StaticPeakC float64
	// BlockCycles is the baseline block decode duration.
	BlockCycles int64
	// PlaceResult is the thermally-aware placement outcome.
	PlaceResult place.Result
}

// BuildData is the serializable product of Build's two expensive stages —
// the simulated-annealing placement and the energy calibration — plus the
// baseline block duration their shared calibration decode measured. Both
// stages are pure functions of the (already scaled) spec, which is what
// makes persisting the snapshot sound: FromData re-runs the cheap
// deterministic assembly and splices these numbers back in, reproducing
// Build's result bit for bit without annealing or calibrating. All fields
// are plain data (gob- and JSON-encodable).
type BuildData struct {
	// Config and GridN identify the spec the snapshot belongs to, so a
	// restore against the wrong configuration fails loudly.
	Config string
	GridN  int
	// Placement maps logical PE -> physical block; PeakC, CommHops, Cost
	// and Accepted echo the annealer's Result so a reconstituted build
	// serves identical placement reports.
	Placement []int
	PeakC     float64
	CommHops  float64
	Cost      float64
	Accepted  int
	// EnergyScale and StaticPeakC are the calibration outcome.
	EnergyScale float64
	StaticPeakC float64
	// BlockCycles is the baseline block decode duration.
	BlockCycles int64
}

// Data snapshots the build's expensive products as plain data. The
// placement is copied; the snapshot has no tie to the live system.
func (b *Built) Data() *BuildData {
	return &BuildData{
		Config:      b.Spec.Name,
		GridN:       b.Spec.GridN,
		Placement:   append([]int(nil), b.PlaceResult.Place...),
		PeakC:       b.PlaceResult.PeakC,
		CommHops:    b.PlaceResult.CommHops,
		Cost:        b.PlaceResult.Cost,
		Accepted:    b.PlaceResult.Accepted,
		EnergyScale: b.EnergyScale,
		StaticPeakC: b.StaticPeakC,
		BlockCycles: b.BlockCycles,
	}
}

// Validate checks a (possibly deserialized, possibly stale) snapshot
// against the spec it claims to reconstitute: right configuration and
// grid, a true placement bijection, a physical calibration result. It is
// the gate a disk cache entry must pass before FromData will trust it.
func (d *BuildData) Validate(s Spec) error {
	if d.Config != s.Name {
		return fmt.Errorf("chipcfg: build data is for configuration %q, not %q", d.Config, s.Name)
	}
	if d.GridN != s.GridN {
		return fmt.Errorf("chipcfg %s: build data is for a %dx%d grid, want %dx%d",
			s.Name, d.GridN, d.GridN, s.GridN, s.GridN)
	}
	n := s.GridN * s.GridN
	if len(d.Placement) != n {
		return fmt.Errorf("chipcfg %s: placement has %d entries for %d PEs",
			s.Name, len(d.Placement), n)
	}
	seen := make([]bool, n)
	for _, b := range d.Placement {
		if b < 0 || b >= n || seen[b] {
			return fmt.Errorf("chipcfg %s: placement is not a bijection", s.Name)
		}
		seen[b] = true
	}
	if !(d.EnergyScale > 0) || math.IsInf(d.EnergyScale, 0) {
		return fmt.Errorf("chipcfg %s: invalid energy scale %g", s.Name, d.EnergyScale)
	}
	// calibrateScale guarantees the static peak lands within 0.05 °C of
	// the spec's target; anything else is a snapshot of a different
	// calibration (or a different thermal model) and must be rebuilt.
	if math.Abs(d.StaticPeakC-s.BasePeakC) > 0.05 {
		return fmt.Errorf("chipcfg %s: calibrated peak %.3f °C does not match target %.3f",
			s.Name, d.StaticPeakC, s.BasePeakC)
	}
	if d.BlockCycles <= 0 {
		return fmt.Errorf("chipcfg %s: non-positive block duration %d cycles", s.Name, d.BlockCycles)
	}
	return nil
}

// Build assembles and calibrates the configuration: deterministic
// assembly, then the simulated-annealing placement and the energy
// calibration — the dominant cold-start cost. Built.Data snapshots the
// expensive products; FromData reconstitutes the build from a snapshot
// without repeating them.
func (s Spec) Build() (*Built, error) {
	return s.build(nil)
}

// FromData reconstitutes a calibrated build from a snapshot: the
// deterministic assembly re-runs, the annealed placement and calibration
// numbers are spliced in, and no annealing, calibration decode or
// bisection happens. The snapshot is revalidated against the spec first,
// so a stale or foreign snapshot is an error, never a miscalibrated
// system. The result is indistinguishable from the Build that produced
// the snapshot: evaluations of either are bitwise identical.
func (s Spec) FromData(d *BuildData) (*Built, error) {
	if d == nil {
		return nil, fmt.Errorf("chipcfg %s: nil build data", s.Name)
	}
	if err := d.Validate(s); err != nil {
		return nil, err
	}
	return s.build(d)
}

// build is the shared assembly path: with a nil snapshot it anneals and
// calibrates (the cold path); with a snapshot it restores those products.
func (s Spec) build(data *BuildData) (*Built, error) {
	g := geom.NewGrid(s.GridN, s.GridN)

	code, err := ldpc.NewRegular(s.CodeN, s.CodeM, s.ColWeight, s.CodeSeed)
	if err != nil {
		return nil, fmt.Errorf("chipcfg %s: code: %w", s.Name, err)
	}
	part, err := appmap.SkewedBoth(code, g.N(), s.HeavyPEs, s.HeavyShare, s.VarShare, s.PartSeed)
	if err != nil {
		return nil, fmt.Errorf("chipcfg %s: partition: %w", s.Name, err)
	}
	net, err := noc.New(g, noc.Config{})
	if err != nil {
		return nil, fmt.Errorf("chipcfg %s: network: %w", s.Name, err)
	}
	eng, err := appmap.NewEngine(code, part, net)
	if err != nil {
		return nil, fmt.Errorf("chipcfg %s: engine: %w", s.Name, err)
	}
	eng.MaxIter = s.MaxIter

	fp := floorplan.NewMesh(g)
	tn, err := thermal.NewNetwork(fp, thermal.DefaultParams())
	if err != nil {
		return nil, fmt.Errorf("chipcfg %s: thermal: %w", s.Name, err)
	}

	baseEnergy := power.Default160nm()
	leak := power.DefaultLeakage()

	var pl place.Result
	if data == nil {
		inf, err := thermal.NewInfluence(tn)
		if err != nil {
			return nil, fmt.Errorf("chipcfg %s: influence: %w", s.Name, err)
		}
		// Thermally-aware placement on the unit-scale compute power
		// profile (the scale cancels out of the argmax).
		ops := appmap.OpsPerPE(code, part)
		pePower := make([]float64, g.N())
		for i, o := range ops {
			pePower[i] = float64(o) * baseEnergy.PEOpJ
		}
		ioTraffic := make([]int64, g.N())
		for v := 0; v < code.N; v++ {
			ioTraffic[part.VarPE[v]]++ // one LLR in and one decision out per variable
		}
		pl, err = place.Anneal(&place.Problem{
			Grid: g, Inf: inf, PEPower: pePower,
			Traffic: appmap.TrafficMatrix(code, part), CommWeight: s.CommWeight,
			IOTraffic: ioTraffic, IOCoord: s.ioCoord(g), IOWeight: s.IOWeight,
		}, place.Options{Seed: s.PlaceSeed, Iters: s.PlaceIters, Restarts: s.PlaceRestarts})
		if err != nil {
			return nil, fmt.Errorf("chipcfg %s: placement: %w", s.Name, err)
		}
	} else {
		pl = place.Result{
			Place:    append([]int(nil), data.Placement...),
			PeakC:    data.PeakC,
			CommHops: data.CommHops,
			Cost:     data.Cost,
			Accepted: data.Accepted,
		}
	}

	// Workload block (deterministic).
	ch, err := ldpc.NewChannel(s.SNRdB, code.Rate(), s.ChanSeed)
	if err != nil {
		return nil, fmt.Errorf("chipcfg %s: channel: %w", s.Name, err)
	}
	cw, err := code.Encode(make([]uint8, code.K()))
	if err != nil {
		return nil, fmt.Errorf("chipcfg %s: encode: %w", s.Name, err)
	}
	llr := ch.Transmit(cw)

	if err := eng.SetPlacement(pl.Place); err != nil {
		return nil, fmt.Errorf("chipcfg %s: placement apply: %w", s.Name, err)
	}
	const clockHz = 250e6
	var scale, staticPeak float64
	var blockCycles int64
	if data == nil {
		// Reference activity at the placed configuration for calibration.
		net.ResetStats()
		blk, err := eng.Decode(llr)
		if err != nil {
			return nil, fmt.Errorf("chipcfg %s: calibration decode: %w", s.Name, err)
		}
		dur := float64(blk.Cycles) / clockHz
		unitPower := net.Act.PowerMap(baseEnergy, dur)
		scale, staticPeak, err = calibrateScale(tn, unitPower, leak, s.BasePeakC)
		if err != nil {
			return nil, fmt.Errorf("chipcfg %s: calibration: %w", s.Name, err)
		}
		blockCycles = blk.Cycles
	} else {
		// The snapshot carries the calibration outcome; everything the
		// decode fed into it is already folded into these numbers, and
		// everything downstream (Characterize, clones) resets placement
		// and activity statistics itself before measuring.
		scale, staticPeak, blockCycles = data.EnergyScale, data.StaticPeakC, data.BlockCycles
	}

	mig := core.NewMigrator(net)
	mig.StateFlits = s.StateFlits

	sys := &core.System{
		Grid:         g,
		IdleFrac:     0.5,
		Therm:        tn,
		Energy:       baseEnergy.Scale(scale),
		Leak:         leak,
		ClockHz:      clockHz,
		Engine:       eng,
		Migrator:     mig,
		InitialPlace: pl.Place,
		BlockSource:  func(leg int) []ldpc.LLR { return llr },
		IO:           core.NewIOTranslator(g),
	}
	return &Built{
		Spec:        s,
		System:      sys,
		EnergyScale: scale,
		StaticPeakC: staticPeak,
		BlockCycles: blockCycles,
		PlaceResult: pl,
	}, nil
}

// calibrateScale finds the energy-table multiplier at which the static
// power map (plus temperature-dependent leakage, iterated to a fixed
// point) produces exactly the target steady-state peak temperature.
// The leakage-closed peak is strictly increasing in the scale, so
// bisection converges unconditionally within the bracket.
func calibrateScale(tn *thermal.Network, unitPower []float64, leak power.Leakage, targetC float64) (scale, peakC float64, err error) {
	ss, err := thermal.NewSteadySolver(tn)
	if err != nil {
		return 0, 0, err
	}
	temps := make([]float64, len(unitPower))
	next := make([]float64, len(unitPower))
	pm := make([]float64, len(unitPower))
	peakAt := func(s float64) (float64, bool) {
		for i := range temps {
			temps[i] = tn.Par.AmbientC
		}
		for it := 0; it < 200; it++ {
			for i := range pm {
				pm[i] = s*unitPower[i] + leak.At(temps[i])
			}
			ss.SolveInto(next, pm)
			d := 0.0
			for i := range next {
				if dd := math.Abs(next[i] - temps[i]); dd > d {
					d = dd
				}
				if math.IsNaN(next[i]) || math.IsInf(next[i], 0) || next[i] > 400 {
					return 0, false // electrothermal runaway at this scale
				}
			}
			temps, next = next, temps
			if d < 1e-6 {
				break
			}
		}
		p, _ := thermal.Peak(temps)
		return p, true
	}

	lo, hi := 0.0, 1.0
	for {
		p, ok := peakAt(hi)
		if !ok {
			break // runaway: target is certainly below hi
		}
		if p >= targetC {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1e9 {
			return 0, 0, fmt.Errorf("chipcfg: cannot reach %g °C even at scale %g", targetC, hi)
		}
	}
	for it := 0; it < 80; it++ {
		mid := (lo + hi) / 2
		p, ok := peakAt(mid)
		if !ok || p > targetC {
			hi = mid
		} else {
			lo = mid
		}
	}
	scale = (lo + hi) / 2
	peakC, ok := peakAt(scale)
	if !ok {
		return 0, 0, fmt.Errorf("chipcfg: calibration landed in runaway region")
	}
	if math.Abs(peakC-targetC) > 0.05 {
		return 0, 0, fmt.Errorf("chipcfg: calibration reached %.3f °C, target %.3f", peakC, targetC)
	}
	return scale, peakC, nil
}
