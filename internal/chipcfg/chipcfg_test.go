package chipcfg

import (
	"math"
	"reflect"
	"testing"

	"hotnoc/internal/core"
	"hotnoc/internal/floorplan"
	"hotnoc/internal/geom"
	"hotnoc/internal/place"
	"hotnoc/internal/power"
	"hotnoc/internal/thermal"
)

// TestSpecsMatchPaper pins the configuration roster against the paper:
// two 4x4 configurations, three 5x5, with Figure 1's base temperatures.
func TestSpecsMatchPaper(t *testing.T) {
	specs := Specs()
	if len(specs) != 5 {
		t.Fatalf("%d configurations, want 5", len(specs))
	}
	want := map[string]struct {
		n    int
		base float64
	}{
		"A": {4, 85.44}, "B": {4, 84.05},
		"C": {5, 75.17}, "D": {5, 72.80}, "E": {5, 75.98},
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected configuration %q", s.Name)
		}
		if s.GridN != w.n {
			t.Errorf("%s: grid %d, want %d", s.Name, s.GridN, w.n)
		}
		if s.BasePeakC != w.base {
			t.Errorf("%s: base %g, want %g", s.Name, s.BasePeakC, w.base)
		}
		delete(want, s.Name)
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"A", "B", "C", "D", "E"} {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%s): %v", n, err)
		}
	}
	if _, err := ByName("F"); err == nil {
		t.Error("unknown configuration accepted")
	}
}

func TestScaledPreservesStructure(t *testing.T) {
	s, _ := ByName("C")
	r := s.Scaled(8)
	if r.GridN != s.GridN || r.Name != s.Name || r.BasePeakC != s.BasePeakC {
		t.Fatal("Scaled changed identity fields")
	}
	if r.CodeN >= s.CodeN || r.CodeN < s.GridN*s.GridN*10 {
		t.Fatalf("Scaled code size %d out of range", r.CodeN)
	}
	if s.Scaled(1).CodeN != s.CodeN {
		t.Fatal("Scaled(1) should be a no-op")
	}
}

// TestBuildScaledCalibrates runs the full build pipeline on reduced-size
// configurations: the static peak must hit the paper's base temperature
// and the placement must be a bijection.
func TestBuildScaledCalibrates(t *testing.T) {
	for _, name := range []string{"A", "E"} {
		spec, _ := ByName(name)
		b, err := spec.Scaled(8).Build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(b.StaticPeakC-spec.BasePeakC) > 0.05 {
			t.Errorf("%s: calibrated peak %.3f, want %.2f", name, b.StaticPeakC, spec.BasePeakC)
		}
		if b.EnergyScale <= 0 {
			t.Errorf("%s: non-positive energy scale", name)
		}
		if b.BlockCycles <= 0 {
			t.Errorf("%s: block cycles %d", name, b.BlockCycles)
		}
		seen := make([]bool, b.System.Grid.N())
		for _, p := range b.System.InitialPlace {
			if p < 0 || p >= len(seen) || seen[p] {
				t.Fatalf("%s: initial placement not a bijection", name)
			}
			seen[p] = true
		}
	}
}

// TestBuildDeterministic: the pipeline is reproducible end to end.
func TestBuildDeterministic(t *testing.T) {
	spec, _ := ByName("B")
	spec = spec.Scaled(8)
	a, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyScale != b.EnergyScale || a.BlockCycles != b.BlockCycles {
		t.Fatalf("builds differ: scale %g/%g cycles %d/%d",
			a.EnergyScale, b.EnergyScale, a.BlockCycles, b.BlockCycles)
	}
	for i := range a.System.InitialPlace {
		if a.System.InitialPlace[i] != b.System.InitialPlace[i] {
			t.Fatal("placements differ across identical builds")
		}
	}
}

// TestScaledRunEndToEnd exercises a complete scheme evaluation on a
// reduced configuration — the fastest full-pipeline integration test.
func TestScaledRunEndToEnd(t *testing.T) {
	spec, _ := ByName("A")
	b, err := spec.Scaled(8).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.System.Run(core.RunConfig{Scheme: core.XYShift()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BaselinePeakC-spec.BasePeakC) > 0.5 {
		t.Errorf("baseline peak %.2f far from calibration target %.2f",
			res.BaselinePeakC, spec.BasePeakC)
	}
	if res.ReductionC <= 0 {
		t.Errorf("X-Y shift reduction %.3f on scaled A, want positive", res.ReductionC)
	}
	if res.ThroughputPenalty <= 0 || res.ThroughputPenalty > 0.3 {
		t.Errorf("throughput penalty %.4f implausible", res.ThroughputPenalty)
	}
}

// TestBuildDataRoundTrip: reconstituting a build from its snapshot skips
// annealing entirely and reproduces the original bit for bit — metadata,
// placement, and a full scheme evaluation.
func TestBuildDataRoundTrip(t *testing.T) {
	spec, _ := ByName("A")
	spec = spec.Scaled(8)
	cold, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	data := cold.Data()

	anneals := place.AnnealCount()
	warm, err := spec.FromData(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := place.AnnealCount() - anneals; got != 0 {
		t.Fatalf("FromData ran %d annealing searches, want 0", got)
	}

	if warm.EnergyScale != cold.EnergyScale || warm.StaticPeakC != cold.StaticPeakC ||
		warm.BlockCycles != cold.BlockCycles {
		t.Fatalf("restored metadata differs: scale %g/%g peak %g/%g cycles %d/%d",
			warm.EnergyScale, cold.EnergyScale, warm.StaticPeakC, cold.StaticPeakC,
			warm.BlockCycles, cold.BlockCycles)
	}
	if warm.PlaceResult.Cost != cold.PlaceResult.Cost ||
		warm.PlaceResult.Accepted != cold.PlaceResult.Accepted {
		t.Fatal("restored placement report differs")
	}
	for i := range cold.System.InitialPlace {
		if warm.System.InitialPlace[i] != cold.System.InitialPlace[i] {
			t.Fatalf("restored placement differs at %d", i)
		}
	}

	coldRes, err := cold.System.Run(core.RunConfig{Scheme: core.XYShift()})
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := warm.System.Run(core.RunConfig{Scheme: core.XYShift()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldRes, warmRes) {
		t.Fatalf("restored build evaluates differently:\ncold %+v\nwarm %+v", coldRes, warmRes)
	}
}

// TestBuildDataValidate: snapshots for the wrong configuration, grid,
// placement or calibration are rejected before any system is assembled.
func TestBuildDataValidate(t *testing.T) {
	spec, _ := ByName("A")
	spec = spec.Scaled(8)
	b, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	good := b.Data()
	if err := good.Validate(spec); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	mutate := func(f func(*BuildData)) *BuildData {
		d := *good
		d.Placement = append([]int(nil), good.Placement...)
		f(&d)
		return &d
	}
	cases := map[string]*BuildData{
		"config":     mutate(func(d *BuildData) { d.Config = "B" }),
		"gridn":      mutate(func(d *BuildData) { d.GridN = 5 }),
		"short":      mutate(func(d *BuildData) { d.Placement = d.Placement[:4] }),
		"dup":        mutate(func(d *BuildData) { d.Placement[0] = d.Placement[1] }),
		"range":      mutate(func(d *BuildData) { d.Placement[0] = -1 }),
		"scale-zero": mutate(func(d *BuildData) { d.EnergyScale = 0 }),
		"scale-nan":  mutate(func(d *BuildData) { d.EnergyScale = math.NaN() }),
		"peak":       mutate(func(d *BuildData) { d.StaticPeakC += 1 }),
		"cycles":     mutate(func(d *BuildData) { d.BlockCycles = 0 }),
	}
	for name, d := range cases {
		if err := d.Validate(spec); err == nil {
			t.Errorf("%s: corrupted snapshot accepted", name)
		}
		if _, err := spec.FromData(d); err == nil {
			t.Errorf("%s: FromData accepted a corrupted snapshot", name)
		}
	}
	if _, err := spec.FromData(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}

// TestBuildWithRestartsNeverWorse: a spec annealing with restarts finds a
// placement at most as costly as the single-seed search, and the build
// remains deterministic.
func TestBuildWithRestartsNeverWorse(t *testing.T) {
	spec, _ := ByName("A")
	spec = spec.Scaled(16)
	single, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	spec.PlaceRestarts = 3
	multiA, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	multiB, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if multiA.PlaceResult.Cost > single.PlaceResult.Cost {
		t.Fatalf("3-restart cost %g worse than single-seed %g",
			multiA.PlaceResult.Cost, single.PlaceResult.Cost)
	}
	if multiA.PlaceResult.Cost != multiB.PlaceResult.Cost ||
		multiA.EnergyScale != multiB.EnergyScale {
		t.Fatal("restarted build not deterministic")
	}
}

// TestCalibrateScaleMonotoneTarget: calibration hits different targets
// with monotone scales.
func TestCalibrateScaleMonotoneTarget(t *testing.T) {
	g := geom.NewGrid(4, 4)
	tn, err := thermal.NewNetwork(floorplan.NewMesh(g), thermal.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	unit := make([]float64, g.N())
	for i := range unit {
		unit[i] = 0.05
	}
	unit[5] = 0.3
	leak := power.DefaultLeakage()
	s60, p60, err := calibrateScale(tn, unit, leak, 60)
	if err != nil {
		t.Fatal(err)
	}
	s80, p80, err := calibrateScale(tn, unit, leak, 80)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p60-60) > 0.05 || math.Abs(p80-80) > 0.05 {
		t.Fatalf("calibration misses: %.3f for 60, %.3f for 80", p60, p80)
	}
	if s80 <= s60 {
		t.Fatalf("scale not monotone in target: %g for 60, %g for 80", s60, s80)
	}
}

// TestCalibrateScaleUnreachable: an absurd target fails loudly.
func TestCalibrateScaleUnreachable(t *testing.T) {
	g := geom.NewGrid(2, 2)
	tn, err := thermal.NewNetwork(floorplan.NewMesh(g), thermal.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	unit := []float64{0.01, 0.01, 0.01, 0.01}
	// Below ambient can never be reached by adding power.
	if _, _, err := calibrateScale(tn, unit, power.DefaultLeakage(), 35); err == nil {
		t.Fatal("sub-ambient target accepted")
	}
}
