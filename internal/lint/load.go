package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader builds type-checked Packages without golang.org/x/tools:
// `go list -json` enumerates the module's packages and their files, the
// stdlib parser and type checker do the rest. Module-internal imports
// are served from the packages we already checked (the load happens in
// dependency order), so only standard-library imports fall through to
// the compiler's source importer — which makes the whole load
// independent of the process working directory.

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
}

// chainImporter serves module packages from the in-memory map and
// defers everything else (the standard library) to the source importer.
type chainImporter struct {
	local map[string]*types.Package
	std   types.ImporterFrom
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.std.ImportFrom(path, dir, mode)
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// LoadModule loads and type-checks the module packages matching
// patterns (e.g. "./...") under the module rooted at dir, returned in
// dependency order. Only non-test Go files are loaded: the analyzers
// guard production code, and tests exercise patterns (fake clocks,
// table maps) the invariants do not constrain.
func LoadModule(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	byPath := map[string]*listedPackage{}
	var order []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		byPath[lp.ImportPath] = &lp
		order = append(order, lp.ImportPath)
	}
	sort.Strings(order)

	// Topological order over module-internal imports.
	var topo []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		lp, ok := byPath[path]
		if !ok || state[path] == 2 {
			return nil
		}
		if state[path] == 1 {
			return fmt.Errorf("import cycle through %s", path)
		}
		state[path] = 1
		imps := append([]string(nil), lp.Imports...)
		sort.Strings(imps)
		for _, imp := range imps {
			if err := visit(imp); err != nil {
				return err
			}
		}
		state[path] = 2
		topo = append(topo, path)
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	imp := &chainImporter{
		local: map[string]*types.Package{},
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	var pkgs []*Package
	for _, path := range topo {
		lp := byPath[path]
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", path, err)
		}
		imp.local[path] = tpkg
		pkgs = append(pkgs, &Package{
			ImportPath: path,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// LoadFixture loads analysistest-style fixture packages from
// srcRoot/<name> directories. A fixture package's import path is its
// directory name, and fixtures may import each other (the obs stub);
// anything else resolves against the standard library. Requested
// packages and their fixture dependencies come back in dependency
// order.
func LoadFixture(srcRoot string, names ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	imp := &chainImporter{
		local: map[string]*types.Package{},
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	var pkgs []*Package
	state := map[string]int{}
	var load func(name string) error
	load = func(name string) error {
		if state[name] == 2 {
			return nil
		}
		if state[name] == 1 {
			return fmt.Errorf("fixture import cycle through %s", name)
		}
		state[name] = 1
		dir := filepath.Join(srcRoot, name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("fixture package %s: %w", name, err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			return fmt.Errorf("fixture package %s has no Go files", name)
		}
		for _, f := range files {
			for _, spec := range f.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if _, err := os.Stat(filepath.Join(srcRoot, path)); err == nil {
					if err := load(path); err != nil {
						return err
					}
				}
			}
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(name, fset, files, info)
		if err != nil {
			return fmt.Errorf("type-checking fixture %s: %w", name, err)
		}
		imp.local[name] = tpkg
		pkgs = append(pkgs, &Package{
			ImportPath: name,
			Dir:        dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
		state[name] = 2
		return nil
	}
	for _, name := range names {
		if err := load(name); err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}
