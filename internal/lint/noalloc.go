package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc rejects allocating constructs in functions whose doc comment
// carries //hotnoc:noalloc — the static complement to the runtime
// testing.AllocsPerRun guard, which only covers benchmarked entry
// points. The check is transitive over statically resolved calls into
// the module: an annotated kernel calling an allocating helper is
// reported at the call site. Calls outside the module are allowed only
// for a small arithmetic/atomic/locking allowlist; everything else is
// assumed to allocate.
//
// Two cold paths are exempt: the arguments of panic calls, and
// errors.New / fmt.Errorf when the call appears inside a return
// statement (constructing the error return on the failure path).
// Amortized scratch growth must be suppressed explicitly with
// //hotnoc:allow noalloc <reason>; the suppression also cleans the
// function's summary for its callers.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "report allocating constructs in //hotnoc:noalloc functions, transitively over module calls",
	Run:  runNoAlloc,
}

// allocReason is one allocation site inside a function.
type allocReason struct {
	pos  token.Pos
	what string
}

// allocCall is a statically resolved call into the module whose
// allocations count against the caller.
type allocCall struct {
	pos token.Pos
	fn  *types.Func
}

// allocSummary is a function's allocation behavior: its own sites plus
// the module calls it makes. Exported as a fact so later packages see
// through their imports.
type allocSummary struct {
	reasons []allocReason
	calls   []allocCall
}

// allocCleanStdlib are the non-module packages whose calls are trusted
// not to allocate (pure arithmetic and atomics; sync mutex operations
// are allowlisted by method below).
var allocCleanStdlib = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
	"sort":        false, // sort.Slice allocates its closure; keep it out explicitly
}

func runNoAlloc(pass *Pass) error {
	var annotated []*ast.FuncDecl
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			pass.ExportFact(fn, summarizeAlloc(pass, fd.Body))
			if hasDirective(fd.Doc, "noalloc") {
				annotated = append(annotated, fd)
			}
		}
	}

	memo := map[*types.Func]string{}
	visiting := map[*types.Func]bool{}
	var allocates func(fn *types.Func) string
	allocates = func(fn *types.Func) string {
		if r, ok := memo[fn]; ok {
			return r
		}
		if visiting[fn] {
			return "" // recursion: optimistic, the cycle's own sites are reported at their origin
		}
		fact, ok := pass.Fact(fn)
		if !ok {
			r := externalAllocReason(fn)
			memo[fn] = r
			return r
		}
		sum := fact.(*allocSummary)
		visiting[fn] = true
		defer delete(visiting, fn)
		result := ""
		if len(sum.reasons) > 0 {
			result = sum.reasons[0].what
		} else {
			for _, c := range sum.calls {
				if sub := allocates(c.fn); sub != "" {
					result = fmt.Sprintf("calls %s: %s", c.fn.FullName(), sub)
					break
				}
			}
		}
		memo[fn] = result
		return result
	}

	for _, fd := range annotated {
		fn := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
		sum, _ := pass.Fact(fn)
		for _, r := range sum.(*allocSummary).reasons {
			pass.Reportf(r.pos, "%s in //hotnoc:noalloc function %s", r.what, fd.Name.Name)
		}
		for _, c := range sum.(*allocSummary).calls {
			if reason := allocates(c.fn); reason != "" {
				pass.Reportf(c.pos, "//hotnoc:noalloc function %s calls %s, which may allocate: %s",
					fd.Name.Name, c.fn.FullName(), reason)
			}
		}
	}
	return nil
}

// summarizeAlloc scans one function body for allocation sites and
// module calls. Suppressed sites (//hotnoc:allow noalloc) are dropped
// here so they neither report nor taint callers.
func summarizeAlloc(pass *Pass, body *ast.BlockStmt) *allocSummary {
	info := pass.Pkg.Info
	sum := &allocSummary{}
	add := func(pos token.Pos, what string) {
		if !pass.Suppressed(pos) {
			sum.reasons = append(sum.reasons, allocReason{pos, what})
		}
	}

	var inReturn int
	var walk func(n ast.Node)
	walkAll := func(nodes ...ast.Node) {
		for _, n := range nodes {
			if n != nil {
				walk(n)
			}
		}
	}
	walkExprs := func(exprs []ast.Expr) {
		for _, e := range exprs {
			walk(e)
		}
	}
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncLit:
			add(n.Pos(), "function literal (may escape to the heap)")
			return // do not descend: the literal's body runs elsewhere
		case *ast.ReturnStmt:
			inReturn++
			walkExprs(n.Results)
			inReturn--
			return
		case *ast.GoStmt:
			add(n.Pos(), "go statement (new goroutine allocates)")
			return
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t != nil {
				switch types.Unalias(t).Underlying().(type) {
				case *types.Slice:
					add(n.Pos(), "slice literal")
				case *types.Map:
					add(n.Pos(), "map literal")
				}
			}
			walkExprs(n.Elts)
			return
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "address of composite literal (escapes to the heap)")
				}
			}
			walk(n.X)
			return
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil {
					if b, ok := types.Unalias(t).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						add(n.Pos(), "string concatenation")
					}
				}
			}
			walkAll(n.X, n.Y)
			return
		case *ast.CallExpr:
			summarizeCall(pass, sum, add, n, inReturn > 0, walk)
			return
		}
		// Default: descend into every child.
		ast.Inspect(n, func(child ast.Node) bool {
			if child == n {
				return true
			}
			if child != nil {
				walk(child)
			}
			return false
		})
	}
	walk(body)
	return sum
}

// summarizeCall classifies one call expression for the noalloc summary.
func summarizeCall(pass *Pass, sum *allocSummary, add func(token.Pos, string), call *ast.CallExpr, inReturn bool, walk func(ast.Node)) {
	info := pass.Pkg.Info
	walkArgs := func() {
		// The callee's receiver/operand chain can itself allocate
		// (method call on a returned value); the selector and identifier
		// leaves are inert.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			walk(sel.X)
		}
		for _, a := range call.Args {
			walk(a)
		}
	}

	// Conversions: T(x).
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		dst := types.Unalias(tv.Type).Underlying()
		if len(call.Args) == 1 {
			src := info.TypeOf(call.Args[0])
			switch {
			case isStringByteConversion(dst, src):
				add(call.Pos(), "string/[]byte conversion copies")
			case types.IsInterface(dst) && src != nil && !types.IsInterface(types.Unalias(src).Underlying()):
				add(call.Pos(), "interface conversion boxes its operand")
			}
		}
		walkArgs()
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				add(call.Pos(), "append may grow its backing array")
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			case "panic":
				return // cold path: the program is going down, allocation is fine
			}
			walkArgs()
			return
		}
	}

	fn := staticCallee(info, call)
	if fn == nil {
		add(call.Pos(), "dynamic call through a function value (unknown allocations)")
		walkArgs()
		return
	}

	if inReturn && isErrorConstructor(fn) {
		walkArgs()
		return // cold failure path: constructing the returned error
	}
	addBoxingReasons(info, add, call, fn)
	// Whether the callee allocates is decided at resolution time, when
	// every function in the package has a summary; a suppressed call
	// site is dropped here so it cleans the summary for callers too.
	if !pass.Suppressed(call.Pos()) {
		sum.calls = append(sum.calls, allocCall{call.Pos(), fn})
	}
	walkArgs()
}

// externalAllocReason classifies a call with no summary (stdlib, or a
// bodyless module function such as an interface method): clean for the
// arithmetic/atomic/locking allowlist, assumed to allocate otherwise.
func externalAllocReason(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	if allocCleanStdlib[fn.Pkg().Path()] || isSyncLockMethod(fn) || isPureTimeMethod(fn) {
		return ""
	}
	if fn.Pkg().Path() == "fmt" {
		return fmt.Sprintf("fmt.%s allocates (formatting boxes arguments)", fn.Name())
	}
	return fmt.Sprintf("no summary for %s, assumed to allocate", fn.FullName())
}

// isPureTimeMethod allows the arithmetic methods on time.Duration and
// time.Time (String and the marshalers are deliberately absent).
func isPureTimeMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return false
	}
	switch fn.Name() {
	case "Seconds", "Nanoseconds", "Microseconds", "Milliseconds",
		"Minutes", "Hours", "Sub", "Before", "After", "Equal",
		"Unix", "UnixNano", "UnixMicro", "UnixMilli", "IsZero":
		return true
	}
	return false
}

// addBoxingReasons reports concrete arguments passed to interface
// parameters of an otherwise clean call: the implicit conversion boxes.
func addBoxingReasons(info *types.Info, add func(token.Pos, string), call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || isUntypedNil(info, arg) {
			continue
		}
		if types.IsInterface(types.Unalias(pt).Underlying()) && !types.IsInterface(types.Unalias(at).Underlying()) {
			add(arg.Pos(), fmt.Sprintf("argument %d to %s boxes into an interface", i, fn.Name()))
		}
	}
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

func isStringByteConversion(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	su := types.Unalias(src).Underlying()
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		e, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(dst) && isBytes(su)) || (isBytes(dst) && isStr(su))
}

// isSyncLockMethod allows the sync mutex operations: locking does not
// allocate, and noalloc code legitimately guards shared scratch.
func isSyncLockMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return true
	}
	return false
}

// isErrorConstructor recognizes the two standard error factories whose
// use inside a return statement is a cold failure path.
func isErrorConstructor(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	full := fn.Pkg().Path() + "." + fn.Name()
	return full == "errors.New" || full == "fmt.Errorf"
}
