// Package linttest is the fixture harness for hotnoc's analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture
// packages live under testdata/src/<name>, and `// want "regexp"`
// comments assert the diagnostics each line must produce. Every
// diagnostic must be claimed by a want and every want must be matched,
// so fixtures pin both what an analyzer catches and what it permits.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hotnoc/internal/lint"
)

// want is one expected-diagnostic assertion.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the named fixture packages from testdata/src, applies the
// analyzer, and checks the findings against the fixtures' want
// comments.
func Run(t *testing.T, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	srcRoot := filepath.Join("testdata", "src")
	loaded, err := lint.LoadFixture(srcRoot, pkgs...)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(loaded, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	var wants []*want
	for _, pkg := range loaded {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					ws, err := parseWants(c.Text)
					if err != nil {
						pos := pkg.Fset.Position(c.Pos())
						t.Fatalf("%s: %v", pos, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, re := range ws {
						wants = append(wants, &want{
							file: pos.Filename,
							line: pos.Line,
							re:   re,
							raw:  re.String(),
						})
					}
				}
			}
		}
	}

	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// parseWants extracts the quoted regexps from a `// want "a" "b"`
// comment, returning nil when the comment carries no want clause.
func parseWants(comment string) ([]*regexp.Regexp, error) {
	text := strings.TrimPrefix(comment, "//")
	idx := strings.Index(text, "want ")
	if idx < 0 {
		return nil, nil
	}
	rest := strings.TrimSpace(text[idx+len("want "):])
	if rest == "" || (rest[0] != '"' && rest[0] != '`') {
		return nil, nil // prose that happens to contain "want", not a clause
	}
	var out []*regexp.Regexp
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("malformed want clause %q: %v", rest, err)
		}
		s, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", s, err)
		}
		out = append(out, re)
		rest = strings.TrimSpace(rest[len(q):])
	}
	return out, nil
}
