package lint

import (
	"go/ast"
	"go/types"
)

// Determinism guards the bitwise-stable scopes: files or functions
// annotated //hotnoc:deterministic promise that their output is a pure
// function of their inputs, so a warm rerun or a remote fleet merge is
// byte-identical. Inside the scope the analyzer reports:
//
//   - ranging over a map, unless the body is exactly the
//     collect-the-keys idiom (`keys = append(keys, k)`) that feeds a
//     sort — any other use observes the nondeterministic order;
//   - time.Now / time.Since / time.Until — wall-clock reads belong
//     behind the injected clocks;
//   - the global math/rand functions — randomness must flow through a
//     seeded *rand.Rand (rand.New / rand.NewSource are allowed, as is
//     every method on an explicit generator);
//   - select statements with more than one communication clause —
//     completion order is scheduling-dependent, so ordered paths must
//     sequence channel operations explicitly.
//
// Order-independent exceptions (commutative integer folds, cancellation
// selects on error paths) carry //hotnoc:allow determinism <reason>
// suppressions as their audit trail.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "report nondeterministic constructs in //hotnoc:deterministic scopes",
	Run:  runDeterminism,
}

// randConstructors are the math/rand package-level functions that build
// explicit generators rather than consuming the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		fileScope := fileHasDirective(f, "deterministic")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fileScope || hasDirective(fd.Doc, "deterministic") {
				checkDeterministic(pass, fd.Body)
			}
		}
	}
	return nil
}

func checkDeterministic(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapType(info.TypeOf(n.X)) && !isKeyCollectLoop(info, n) {
				pass.Reportf(n.Pos(), "ranges over a map in a deterministic scope (iteration order is random); collect the keys and sort, or use slices.Sorted(maps.Keys(m))")
			}
		case *ast.SelectStmt:
			comms := 0
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms > 1 {
				pass.Reportf(n.Pos(), "selects over %d channels in a deterministic scope (completion order is scheduling-dependent)", comms)
			}
		case *ast.CallExpr:
			fn := staticCallee(info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(n.Pos(), "calls time.%s in a deterministic scope; inject the clock instead", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				// Methods on an explicit *rand.Rand carry their seed;
				// only the implicitly seeded package-level functions are
				// nondeterministic across runs.
				if fn.Signature().Recv() == nil && !randConstructors[fn.Name()] {
					pass.Reportf(n.Pos(), "calls %s.%s (global generator) in a deterministic scope; use a seeded *rand.Rand", fn.Pkg().Path(), fn.Name())
				}
			}
		}
		return true
	})
}

// isKeyCollectLoop recognizes the blessed map-range idiom: a body that
// does nothing but append the range key to a slice, which the caller
// then sorts. The value must not be consumed — consuming values in map
// order would leak the randomness even if the keys get sorted later.
func isKeyCollectLoop(info *types.Info, n *ast.RangeStmt) bool {
	key, ok := n.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if n.Value != nil {
		if v, ok := n.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	if len(n.Body.List) != 1 {
		return false
	}
	assign, ok := n.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := info.Defs[key]
	if keyObj == nil {
		keyObj = info.Uses[key]
	}
	argObj := info.Uses[arg]
	return keyObj != nil && keyObj == argObj
}
