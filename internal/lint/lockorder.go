package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder machine-enforces the PR 9 lock-ordering rule that until now
// lived only in server/metrics.go's doc comment: the server and
// coordinator mutexes are held around instrument registration and hook
// invocation (they take the obs registry lock, and hooks run with
// coordinator state locked), so code running at scrape or hook time —
// obs collectors, GaugeFunc callbacks, SetEventHook closures — must
// never acquire them back. A violation is a scrape-time deadlock or a
// hook self-deadlock waiting to be scheduled.
//
// Mutex fields annotated //hotnoc:scrapelocked are the protected set.
// Roots are found syntactically: function literals or named functions
// passed to Registry.Collect / Registry.GaugeFunc (package obs) or to
// any SetEventHook method, plus function literals returned from a
// function whose result type is obs.Collector. From each root the
// analyzer walks statically resolved calls across the whole module and
// reports any path that calls Lock, RLock, or TryLock on an annotated
// mutex.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "forbid obs collectors and fleet hooks from acquiring //hotnoc:scrapelocked mutexes, transitively",
	Run:  runLockOrder,
}

// lockedMutexFact marks a struct field as //hotnoc:scrapelocked,
// remembering its display name for reports.
type lockedMutexFact struct{ name string }

// acquireSite is one direct Lock/RLock on an annotated mutex.
type acquireSite struct {
	pos   token.Pos
	mutex string
}

// lockCall is a statically resolved module call whose acquisitions
// count against the caller.
type lockCall struct {
	pos token.Pos
	fn  *types.Func
}

// lockSummary is one function body's locking behavior.
type lockSummary struct {
	acquires []acquireSite
	calls    []lockCall
}

func runLockOrder(pass *Pass) error {
	info := pass.Pkg.Info

	// Pass one: collect //hotnoc:scrapelocked fields.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if !hasDirective(field.Doc, "scrapelocked") && !hasDirective(field.Comment, "scrapelocked") {
						continue
					}
					for _, name := range field.Names {
						if obj := info.Defs[name]; obj != nil {
							pass.ExportFact(obj, lockedMutexFact{name: ts.Name.Name + "." + name.Name})
						}
					}
				}
			}
		}
	}

	// Pass two: summarize every function and function literal.
	litSummaries := map[*ast.FuncLit]*lockSummary{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			pass.ExportFact(fn, summarizeLocks(pass, fd.Body))
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				litSummaries[lit] = summarizeLocks(pass, lit.Body)
			}
			return true
		})
	}

	// Pass three: find roots and walk their call graphs.
	memo := map[*types.Func]string{}
	visiting := map[*types.Func]bool{}
	var acquired func(fn *types.Func) string
	acquired = func(fn *types.Func) string {
		if r, ok := memo[fn]; ok {
			return r
		}
		if visiting[fn] {
			return ""
		}
		fact, ok := pass.Fact(fn)
		if !ok {
			return ""
		}
		sum, ok := fact.(*lockSummary)
		if !ok {
			return ""
		}
		visiting[fn] = true
		defer delete(visiting, fn)
		result := ""
		if len(sum.acquires) > 0 {
			result = "acquires " + sum.acquires[0].mutex
		} else {
			for _, c := range sum.calls {
				if sub := acquired(c.fn); sub != "" {
					result = "calls " + c.fn.FullName() + ", which " + sub
					break
				}
			}
		}
		memo[fn] = result
		return result
	}

	reportRoot := func(kind string, sum *lockSummary) {
		for _, a := range sum.acquires {
			pass.Reportf(a.pos, "%s acquires %s (//hotnoc:scrapelocked): scrape/hook code must never take it", kind, a.mutex)
		}
		for _, c := range sum.calls {
			if reason := acquired(c.fn); reason != "" {
				pass.Reportf(c.pos, "%s calls %s, which %s (//hotnoc:scrapelocked): scrape/hook code must never take it", kind, c.fn.FullName(), reason)
			}
		}
	}
	reportRootExpr := func(kind string, e ast.Expr) {
		switch arg := ast.Unparen(e).(type) {
		case *ast.FuncLit:
			if sum := litSummaries[arg]; sum != nil {
				reportRoot(kind, sum)
			}
		default:
			if fn := exprFunc(info, arg); fn != nil {
				if fact, ok := pass.Fact(fn); ok {
					if sum, ok := fact.(*lockSummary); ok {
						reportRoot(kind+" "+fn.Name(), sum)
					}
				}
			}
		}
	}

	for _, f := range pass.Pkg.Files {
		// Function literals returned as obs.Collector values.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !returnsObsCollector(info, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					if lit, ok := ast.Unparen(res).(*ast.FuncLit); ok {
						if sum := litSummaries[lit]; sum != nil {
							reportRoot("collector returned by "+fd.Name.Name, sum)
						}
					}
				}
				return true
			})
		}
		// Arguments to Collect / GaugeFunc / SetEventHook.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(info, call)
			if fn == nil {
				return true
			}
			var kind string
			switch {
			case fn.Pkg() != nil && fn.Pkg().Name() == "obs" && (fn.Name() == "Collect" || fn.Name() == "GaugeFunc"):
				kind = "obs collector"
			case fn.Name() == "SetEventHook":
				kind = "event hook"
			default:
				return true
			}
			for _, arg := range call.Args {
				if t := info.TypeOf(arg); t != nil {
					if _, ok := types.Unalias(t).Underlying().(*types.Signature); !ok {
						continue // labels, names, bounds — only function args are roots
					}
				}
				reportRootExpr(kind, arg)
			}
			return true
		})
	}
	return nil
}

// exprFunc resolves an expression used as a function value to its
// declaration, if statically known.
func exprFunc(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		} else if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// returnsObsCollector reports whether fd's (single) result type is the
// named type Collector from a package named obs.
func returnsObsCollector(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
		return false
	}
	t := info.TypeOf(fd.Type.Results.List[0].Type)
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Collector" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

// summarizeLocks scans one body for acquisitions of annotated mutexes
// and for module calls. Nested function literals are skipped: they get
// their own summaries, and whether they run under the root is a
// question their own registration answers.
func summarizeLocks(pass *Pass, body *ast.BlockStmt) *lockSummary {
	info := pass.Pkg.Info
	sum := &lockSummary{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// x.mu.Lock(): an acquisition when mu is an annotated field.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Lock", "RLock", "TryLock", "TryRLock":
				if mutex, ok := annotatedMutex(pass, sel.X); ok {
					if !pass.Suppressed(call.Pos()) {
						sum.acquires = append(sum.acquires, acquireSite{call.Pos(), mutex})
					}
					return true
				}
			}
		}
		if fn := staticCallee(info, call); fn != nil {
			// Non-module callees have no summary fact, so the
			// transitive walk treats them as lock-free.
			sum.calls = append(sum.calls, lockCall{call.Pos(), fn})
		}
		return true
	})
	return sum
}

// annotatedMutex resolves the receiver of a Lock call to a struct field
// and reports whether that field is //hotnoc:scrapelocked.
func annotatedMutex(pass *Pass, recv ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(recv).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	var obj types.Object
	if s, ok := pass.Pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		obj = s.Obj()
	} else {
		obj = pass.Pkg.Info.Uses[sel.Sel]
	}
	if obj == nil {
		return "", false
	}
	if fact, ok := pass.Fact(obj); ok {
		if mf, ok := fact.(lockedMutexFact); ok {
			return mf.name, true
		}
	}
	return "", false
}
