// Package lint is hotnoc's static-analysis suite: a small go/analysis-style
// framework plus the analyzers that machine-enforce the invariants the
// codebase otherwise carries only in comments and runtime spot-checks —
// the collector lock-ordering rule, the 0 allocs/op hot-loop contracts,
// the bitwise-deterministic sweep ordering, and the never-cache-an-error
// rule. cmd/hotnoclint runs every analyzer over ./... in CI.
//
// The framework is dependency-free on purpose: it loads packages with
// `go list -json` + go/parser + go/types instead of golang.org/x/tools,
// so the linter builds with the same zero-dependency constraint as the
// rest of the module. The Analyzer/Pass surface deliberately mirrors
// golang.org/x/tools/go/analysis so the analyzers could migrate to the
// real driver if the dependency ever lands.
//
// Annotations the analyzers understand:
//
//	//hotnoc:noalloc        (func doc)   function must not allocate
//	//hotnoc:deterministic  (file or func doc) bitwise-stable scope
//	//hotnoc:scrapelocked   (struct field comment) mutex forbidden in
//	                        collectors and hooks
//	//hotnoc:errcache       (type doc)   value+error cache entry struct
//	//hotnoc:allow <analyzer> [reason]   suppress findings on this line
//	                        or the next one; the reason is the audit trail
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run is invoked once per package, in
// dependency order, sharing one fact store across the whole run so
// summaries propagate across package boundaries.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Pass carries one analyzer's view of one package plus the shared fact
// store. Reportf silently drops findings on //hotnoc:allow lines.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	facts   map[types.Object]any
	diags   *[]Diagnostic
	allowed map[string]map[int]bool // filename -> suppressed lines
}

// Reportf records a finding at pos unless a //hotnoc:allow comment for
// this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Suppressed(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether pos sits on a line covered by a
// //hotnoc:allow comment for this analyzer. Analyzers that summarize
// code for callers (noalloc) consult it at scan time so a suppressed
// site does not taint every transitive caller.
func (p *Pass) Suppressed(pos token.Pos) bool {
	position := p.Pkg.Fset.Position(pos)
	return p.allowed[position.Filename][position.Line]
}

// ExportFact attaches a fact to obj, visible to this analyzer in every
// later-analyzed package (packages run in dependency order).
func (p *Pass) ExportFact(obj types.Object, fact any) { p.facts[obj] = fact }

// Fact returns the fact previously exported for obj, if any.
func (p *Pass) Fact(obj types.Object) (any, bool) {
	f, ok := p.facts[obj]
	return f, ok
}

// Run executes every analyzer over every package (already in dependency
// order, as Load returns them) and returns the surviving findings sorted
// by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		facts := map[types.Object]any{}
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				facts:    facts,
				diags:    &diags,
				allowed:  allowedLines(pkg, a.Name),
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// allowedLines maps each file to the lines where //hotnoc:allow <name>
// suppresses findings: the comment's own line and the line below it.
func allowedLines(pkg *Package, name string) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				fields := strings.Fields(strings.TrimPrefix(c.Text, "//"))
				if len(fields) < 2 || fields[0] != "hotnoc:allow" || fields[1] != name {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				m := out[position.Filename]
				if m == nil {
					m = map[int]bool{}
					out[position.Filename] = m
				}
				m[position.Line] = true
				m[position.Line+1] = true
			}
		}
	}
	return out
}

// hasDirective reports whether a doc comment carries //hotnoc:<name>
// (with optional trailing text).
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == "hotnoc:"+name || strings.HasPrefix(text, "hotnoc:"+name+" ") {
			return true
		}
	}
	return false
}

// fileHasDirective reports whether any comment group in the file other
// than a function's doc comment carries the directive — the file-level
// annotation form.
func fileHasDirective(f *ast.File, name string) bool {
	funcDocs := map[*ast.CommentGroup]bool{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
			funcDocs[fd.Doc] = true
		}
	}
	for _, cg := range f.Comments {
		if !funcDocs[cg] && hasDirective(cg, name) {
			return true
		}
	}
	return false
}

// staticCallee resolves the *types.Func a call statically dispatches
// to: a package-level function, a method value call, or a builtin-free
// qualified call. Returns nil for builtins, conversions, and calls
// through function values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok && sel.Kind() == types.MethodVal {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn(...).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Map)
	return ok
}

// All returns every analyzer in the suite, in stable order. cmd/hotnoclint
// registers exactly this set; the meta-test pins the correspondence.
func All() []*Analyzer {
	return []*Analyzer{LockOrder, NoAlloc, Determinism, ErrCache}
}
