package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCache makes the PR 5 cache-poisoning bug unrepresentable: a cache
// entry must never hold a value alongside a non-nil error, or a failed
// resolution replays for the cache's lifetime. Structs annotated
// //hotnoc:errcache (the singleflight entry, disk-cache records) are the
// protected shapes. The analyzer reports:
//
//   - any single statement that assigns both a value field and the
//     error field of an annotated struct, unless the error operand is
//     the nil literal — success writes the value, failure writes the
//     error, never both;
//   - storing a value bound together with an error (`v, err := f()`)
//     into a map or an annotated struct field before a dominating
//     `err != nil` check in the same block — the store must sit on the
//     proven-success path.
var ErrCache = &Analyzer{
	Name: "errcache",
	Doc:  "forbid caching a value together with a non-nil error in //hotnoc:errcache structs and resolver maps",
	Run:  runErrCache,
}

// errcacheFact marks an annotated struct type's object.
type errcacheFact struct{}

func runErrCache(pass *Pass) error {
	info := pass.Pkg.Info

	// Collect //hotnoc:errcache types. The annotation sits on the type
	// declaration (or the grouped GenDecl).
	local := false
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasDirective(ts.Doc, "errcache") || (len(gd.Specs) == 1 && hasDirective(gd.Doc, "errcache")) {
					if obj := info.Defs[ts.Name]; obj != nil {
						pass.ExportFact(obj, errcacheFact{})
						local = true
					}
				}
			}
		}
	}

	// The map-store rule only applies in packages that host an
	// annotated cache shape; elsewhere a pre-check map store has
	// nothing to do with caching errors.
	checkMaps := local

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkErrCacheFunc(pass, fd.Body, checkMaps)
		}
	}
	return nil
}

// annotatedField reports whether sel resolves to a field of an
// //hotnoc:errcache struct, and whether that field has type error.
func annotatedField(pass *Pass, sel *ast.SelectorExpr) (isField, isErr bool) {
	s, ok := pass.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false, false
	}
	named, ok := types.Unalias(derefType(s.Recv())).(*types.Named)
	if !ok {
		return false, false
	}
	if _, ok := pass.Fact(named.Obj()); !ok {
		return false, false
	}
	return true, types.Identical(s.Obj().Type(), types.Universe.Lookup("error").Type())
}

func derefType(t types.Type) types.Type {
	if p, ok := types.Unalias(t).Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func checkErrCacheFunc(pass *Pass, body *ast.BlockStmt, checkMaps bool) {
	info := pass.Pkg.Info

	ast.Inspect(body, func(n ast.Node) bool {
		if assign, ok := n.(*ast.AssignStmt); ok {
			checkCombinedStore(pass, assign)
		}
		if blk, ok := n.(*ast.BlockStmt); ok {
			checkStoreBeforeCheck(pass, info, blk.List, checkMaps)
		}
		return true
	})
}

// checkCombinedStore enforces rule one: one statement must not set both
// a value field and the error field of an annotated struct unless the
// error operand is literally nil.
func checkCombinedStore(pass *Pass, assign *ast.AssignStmt) {
	var errIdx = -1
	valueFields := 0
	for i, lhs := range assign.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		isField, isErr := annotatedField(pass, sel)
		switch {
		case isField && isErr:
			errIdx = i
		case isField:
			valueFields++
		}
	}
	if errIdx < 0 || valueFields == 0 {
		return
	}
	// e.val, e.err = v, nil is the success write; any non-nil error
	// operand (a variable, a call result) may cache a failure.
	if len(assign.Rhs) == len(assign.Lhs) && isUntypedNil(pass.Pkg.Info, assign.Rhs[errIdx]) {
		return
	}
	pass.Reportf(assign.Pos(), "assigns a value and an error into an //hotnoc:errcache struct in one statement; write the value only on the proven-success path (PR 5 poisoning rule)")
}

// checkStoreBeforeCheck enforces rule two over one statement list: after
// `v, err := f()`, storing v into a cache shape before an `err != nil`
// check in the same block.
func checkStoreBeforeCheck(pass *Pass, info *types.Info, stmts []ast.Stmt, checkMaps bool) {
	// pending maps each value object to the error object it was bound
	// with; checked error objects clear their values.
	pending := map[types.Object]types.Object{}

	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			// A statement assigning the annotated error field is the
			// combined-store rule's territory; reporting it here too
			// would double up.
			combined := false
			for _, lhs := range s.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if isField, isErr := annotatedField(pass, sel); isField && isErr {
						combined = true
					}
				}
			}
			// First: does this statement store a pending value?
			for i, lhs := range s.Lhs {
				if combined {
					break
				}
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				vObj := usedObject(info, rhs)
				errObj, isPending := pending[vObj]
				if !isPending {
					continue
				}
				switch target := ast.Unparen(lhs).(type) {
				case *ast.IndexExpr:
					if checkMaps && isMapType(info.TypeOf(target.X)) {
						pass.Reportf(s.Pos(), "stores %s into a map before checking %s; a failed resolution must never be cached", vObj.Name(), errObj.Name())
					}
				case *ast.SelectorExpr:
					if isField, _ := annotatedField(pass, target); isField {
						pass.Reportf(s.Pos(), "stores %s into an //hotnoc:errcache struct before checking %s", vObj.Name(), errObj.Name())
					}
				}
			}
			// Reassigning an error variable starts a fresh binding epoch.
			for _, lhs := range s.Lhs {
				if obj := definedOrUsedObject(info, lhs); obj != nil && isErrorObj(obj) {
					clearPendingForErr(pending, obj)
				}
			}
			// Then: does it bind new (value..., err) pairs?
			if len(s.Lhs) >= 2 {
				last := s.Lhs[len(s.Lhs)-1]
				if errObj := definedOrUsedObject(info, last); errObj != nil && isErrorObj(errObj) {
					for _, lhs := range s.Lhs[:len(s.Lhs)-1] {
						if vObj := definedOrUsedObject(info, lhs); vObj != nil && vObj.Name() != "_" {
							pending[vObj] = errObj
						}
					}
				}
			}
		case *ast.IfStmt:
			if obj := checkedErrObject(info, s.Cond); obj != nil {
				clearPendingForErr(pending, obj)
			}
		case *ast.ReturnStmt:
			pending = map[types.Object]types.Object{}
		}
	}
}

func clearPendingForErr(pending map[types.Object]types.Object, errObj types.Object) {
	for v, e := range pending {
		if e == errObj {
			delete(pending, v)
		}
	}
}

// checkedErrObject returns the error object an `err != nil` /
// `err == nil` condition examines, if the condition is that shape.
func checkedErrObject(info *types.Info, cond ast.Expr) types.Object {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil
	}
	for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		if isUntypedNil(info, pair[1]) {
			if obj := usedObject(info, pair[0]); obj != nil && isErrorObj(obj) {
				return obj
			}
		}
	}
	return nil
}

func usedObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

func definedOrUsedObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func isErrorObj(obj types.Object) bool {
	return obj.Type() != nil && types.Identical(obj.Type(), types.Universe.Lookup("error").Type())
}
