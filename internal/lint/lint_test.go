package lint_test

import (
	"testing"

	"hotnoc/internal/lint"
	"hotnoc/internal/lint/linttest"
)

func TestLockOrder(t *testing.T)   { linttest.Run(t, lint.LockOrder, "lockorder") }
func TestNoAlloc(t *testing.T)     { linttest.Run(t, lint.NoAlloc, "noalloc") }
func TestDeterminism(t *testing.T) { linttest.Run(t, lint.Determinism, "determinism") }
func TestErrCache(t *testing.T)    { linttest.Run(t, lint.ErrCache, "errcache") }

// TestAllRegistersEveryAnalyzer pins the suite's surface: every
// analyzer declared in the package is in All(), under its own name,
// exactly once. cmd/hotnoclint registers All(), so this is half of the
// multichecker meta-test (the other half lives in cmd/hotnoclint).
func TestAllRegistersEveryAnalyzer(t *testing.T) {
	want := map[string]*lint.Analyzer{
		"lockorder":   lint.LockOrder,
		"noalloc":     lint.NoAlloc,
		"determinism": lint.Determinism,
		"errcache":    lint.ErrCache,
	}
	got := lint.All()
	if len(got) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(got), len(want))
	}
	seen := map[string]bool{}
	for _, a := range got {
		if seen[a.Name] {
			t.Errorf("All() registers %q twice", a.Name)
		}
		seen[a.Name] = true
		if want[a.Name] != a {
			t.Errorf("All() entry %q is not the package-level analyzer of that name", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}
