// Package errcache exercises the never-cache-an-error analyzer against
// a miniature of the singleflight resolver.
package errcache

import "sync"

// entry is one key's resolution slot.
//
//hotnoc:errcache
type entry struct {
	mu   sync.Mutex
	done bool
	val  float64
	err  error
}

type cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	results map[string]float64
}

// poisonCombined writes the value and the error in one statement: the
// PR 5 bug shape, reported regardless of control flow.
func (c *cache) poisonCombined(e *entry, compute func() (float64, error)) {
	v, err := compute()
	e.val, e.err, e.done = v, err, true // want `assigns a value and an error into an //hotnoc:errcache struct in one statement`
}

// storeSuccess is the legal success write: the error operand is
// literally nil, so nothing failed can be cached.
func (c *cache) storeSuccess(e *entry, v float64) {
	e.val, e.err, e.done = v, nil, true
}

// storeChecked is the legal two-phase shape: failure writes only the
// error, success writes only the value.
func (c *cache) storeChecked(e *entry, compute func() (float64, error)) {
	v, err := compute()
	if err != nil {
		e.err = err
		return
	}
	e.val, e.done = v, true
}

// poisonMap caches the computed value into the results map before
// looking at the error.
func (c *cache) poisonMap(key string, compute func() (float64, error)) error {
	v, err := compute()
	c.results[key] = v // want `stores v into a map before checking err`
	return err
}

// storeMapChecked is the permitted order: prove success, then cache.
func (c *cache) storeMapChecked(key string, compute func() (float64, error)) error {
	v, err := compute()
	if err != nil {
		return err
	}
	c.results[key] = v
	return nil
}

// poisonField stores into the annotated struct before the check.
func (c *cache) poisonField(e *entry, compute func() (float64, error)) error {
	v, err := compute()
	e.val = v // want `stores v into an //hotnoc:errcache struct before checking err`
	return err
}

// unrelated shows the entry map itself is storable pre-check: only the
// value bound with the error is suspect, not every map write.
func (c *cache) unrelated(key string, e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = e
}
