// Package lockorder exercises the scrape-time lock-ordering analyzer:
// collectors and hooks must never acquire a //hotnoc:scrapelocked
// mutex, directly or through any chain of calls.
package lockorder

import (
	"sync"

	"obs"
)

type server struct {
	// mu guards server state and is held around instrument
	// registration, so scrape-time code must never take it.
	mu sync.Mutex //hotnoc:scrapelocked

	// statsMu guards only the stats snapshot and is safe at scrape
	// time: unannotated mutexes are out of scope.
	statsMu sync.Mutex

	jobs int
}

// countJobs takes the server mutex: fine from a request handler,
// forbidden from a collector.
func (s *server) countJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs
}

// countJobsIndirect reaches the mutex through one more hop, which the
// transitive walk must see through.
func (s *server) countJobsIndirect() int {
	return s.countJobs()
}

// snapshot uses only the unannotated stats mutex.
func (s *server) snapshot() int {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.jobs
}

// SetEventHook registers a hook that runs with s.mu held.
func (s *server) SetEventHook(fn func(event string)) {}

func register(reg *obs.Registry, s *server) {
	// A collector acquiring the scrape-locked mutex directly.
	reg.Collect(func(emit func(obs.Sample)) {
		s.mu.Lock() // want `acquires server\.mu`
		defer s.mu.Unlock()
		emit(obs.Sample{Name: "jobs", Value: float64(s.jobs)})
	})

	// A collector reaching the mutex through two calls.
	reg.Collect(func(emit func(obs.Sample)) {
		emit(obs.Sample{Name: "jobs", Value: float64(s.countJobsIndirect())}) // want `calls \(\*lockorder\.server\)\.countJobsIndirect, which calls \(\*lockorder\.server\)\.countJobs, which acquires server\.mu`
	})

	// A gauge callback is scrape-time code too.
	reg.GaugeFunc("jobs", "running jobs", nil, func() float64 {
		return float64(s.countJobs()) // want `calls \(\*lockorder\.server\)\.countJobs, which acquires server\.mu`
	})

	// Permitted: a collector that only touches the unannotated mutex —
	// the rule constrains the scrape-locked one, not all locking.
	reg.Collect(func(emit func(obs.Sample)) {
		emit(obs.Sample{Name: "jobs", Value: float64(s.snapshot())})
	})
}

// jobsCollector returns a collector the registry will call at scrape
// time; returned literals are roots even though no Collect call is in
// sight.
func jobsCollector(s *server) obs.Collector {
	return func(emit func(obs.Sample)) {
		s.mu.Lock() // want `acquires server\.mu`
		defer s.mu.Unlock()
		emit(obs.Sample{Name: "jobs", Value: float64(s.jobs)})
	}
}

// cleanCollector is the permitted shape of the same idea.
func cleanCollector(s *server) obs.Collector {
	return func(emit func(obs.Sample)) {
		emit(obs.Sample{Name: "jobs", Value: float64(s.snapshot())})
	}
}

func hooks(s *server) {
	// The hook runs with s.mu already held: re-acquiring it is a
	// self-deadlock.
	s.SetEventHook(func(event string) {
		_ = s.countJobs() // want `calls \(\*lockorder\.server\)\.countJobs, which acquires server\.mu`
	})

	// Permitted: a hook that stays off the scrape-locked mutex.
	s.SetEventHook(func(event string) {
		_ = s.snapshot()
	})
}
