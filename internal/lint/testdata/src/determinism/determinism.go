// Package determinism exercises the bitwise-stability analyzer.
//
//hotnoc:deterministic
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// merge folds counters in map order: the canonical nondeterminism bug.
func merge(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `ranges over a map`
		sum += v
	}
	return sum
}

// mergeSorted is the blessed shape: collect the keys, sort, then
// consume in sorted order.
func mergeSorted(m map[string]float64) float64 {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// stamp reads the wall clock inside the deterministic scope.
func stamp() int64 {
	t := time.Now() // want `calls time\.Now`
	return t.Unix()
}

// elapsed is allowed when justified: metric-only timing that never
// touches the output carries the audit-trail suppression.
func elapsed(since time.Time) float64 {
	d := time.Since(since) //hotnoc:allow determinism metric-only timing, not part of the output
	return d.Seconds()
}

// jitter consumes the global generator; perturb threads a seeded one.
func jitter() float64 {
	return rand.Float64() // want `calls math/rand\.Float64 \(global generator\)`
}

func perturb(seed int64, xs []float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range xs {
		xs[i] += rng.Float64() * 1e-9
	}
}

// race merges two channels by completion order.
func race(a, b <-chan float64) float64 {
	select { // want `selects over 2 channels`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// drain is permitted: one communication plus a default is a
// non-blocking poll, not an ordering race.
func drain(ch <-chan float64) (float64, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}
