// Package obs is a fixture stub of hotnoc/obs: just enough surface for
// the lockorder fixtures to register collectors and gauge callbacks.
// The analyzer matches the package by name, so the stub exercises the
// same code paths as the real registry.
package obs

// Sample is one emitted metric sample.
type Sample struct {
	Name  string
	Value float64
}

// Collector contributes samples at scrape time.
type Collector func(emit func(Sample))

// Registry is the stub instrument registry.
type Registry struct{}

// Collect registers a scrape-time collector.
func (r *Registry) Collect(c Collector) {}

// GaugeFunc registers a gauge evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) {}
