// Package noalloc exercises the allocation analyzer: functions tagged
// //hotnoc:noalloc must stay free of allocating constructs, including
// through calls into other module functions.
package noalloc

import (
	"errors"
	"fmt"
	"math"
)

type solver struct {
	scratch []float64
	sum     float64
}

// solveInto is the good citizen: indexed writes into caller buffers,
// pure math, no allocation anywhere.
//
//hotnoc:noalloc
func (s *solver) solveInto(dst, src []float64) {
	for i, v := range src {
		dst[i] = math.Sqrt(v) + s.sum
	}
}

// grow allocates every which way.
//
//hotnoc:noalloc
func (s *solver) grow(v float64) {
	s.scratch = append(s.scratch, v) // want `append may grow its backing array`
	buf := make([]float64, 8)        // want `make allocates`
	_ = buf
	m := map[string]int{} // want `map literal`
	_ = m
	lit := []float64{v} // want `slice literal`
	_ = lit
}

// box demonstrates fmt boxing and closures.
//
//hotnoc:noalloc
func (s *solver) box(v float64) {
	fmt.Println(v) // want `fmt\.Println allocates` `boxes into an interface`
	f := func() float64 { return v } // want `function literal`
	_ = f
}

// helper allocates; annotated callers inherit the finding.
func helper(n int) []float64 {
	return make([]float64, n)
}

// callsHelper must be caught transitively at the call site.
//
//hotnoc:noalloc
func callsHelper(n int) []float64 {
	return helper(n) // want `calls noalloc\.helper, which may allocate: make allocates`
}

// guarded shows the two blessed cold paths: panic arguments and error
// construction inside a return statement do not count.
//
//hotnoc:noalloc
func guarded(n int) error {
	if n < 0 {
		panic(fmt.Sprintf("negative size %d", n))
	}
	if n > 1<<20 {
		return fmt.Errorf("size %d too large", n)
	}
	if n == 13 {
		return errors.New("unlucky")
	}
	return nil
}

// amortized grows scratch rarely and documents it: the suppression is
// the audit trail, and it also cleans the summary for callers.
//
//hotnoc:noalloc
func (s *solver) amortized(n int) {
	if cap(s.scratch) < n {
		s.scratch = make([]float64, n) //hotnoc:allow noalloc amortized scratch growth, measured 0 allocs/op steady-state
	}
	for i := range s.scratch[:n] {
		s.scratch[i] = 0
	}
}

// callsAmortized stays clean because amortized's only allocation is
// suppressed at its site.
//
//hotnoc:noalloc
func (s *solver) callsAmortized(n int) {
	s.amortized(n)
}
