package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("cfg", "reduction")
	tb.AddRow("A", 7.67)
	tb.AddRow("E", -0.02)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "7.67") || !strings.Contains(lines[3], "-0.02") {
		t.Fatalf("values missing:\n%s", out)
	}
	width := len(lines[0])
	for i, l := range lines {
		if len(l) != width {
			t.Fatalf("line %d width %d != header width %d:\n%s", i, len(l), width, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x", 1.5)
	tb.AddRow("with,comma", 2.0)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "a,b\n") || !strings.Contains(got, `"with,comma",2.00`) {
		t.Fatalf("bad CSV:\n%s", got)
	}
}

func TestHeatMapOrientation(t *testing.T) {
	// Row-major with row 0 at the south edge; the hottest cell is at
	// (1,1) (north-east of a 2x2), so it must appear on the FIRST line.
	out := HeatMap(2, 2, []float64{40, 41, 42, 99}, "C")
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "99.00") {
		t.Fatalf("north row not first:\n%s", out)
	}
	if !strings.Contains(lines[0], "#") {
		t.Fatalf("hottest cell not shaded '#':\n%s", out)
	}
	if !strings.Contains(lines[1], ".") {
		t.Fatalf("coolest cell not shaded '.':\n%s", out)
	}
	if !strings.Contains(out, "min 40.00C") || !strings.Contains(out, "max 99.00C") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestHeatMapSizeMismatch(t *testing.T) {
	out := HeatMap(2, 2, []float64{1, 2, 3}, "C")
	if !strings.Contains(out, "heatmap:") {
		t.Fatal("size mismatch not reported")
	}
}

func TestHeatMapUniform(t *testing.T) {
	out := HeatMap(2, 1, []float64{5, 5}, "")
	if strings.Count(out, ".") < 2 {
		t.Fatalf("uniform field should use the coolest shade:\n%s", out)
	}
}

func TestBarNegative(t *testing.T) {
	out := Bar([]string{"Rot", "X-Y Shift"}, []float64{-0.5, 6.0}, "C")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("bar chart has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "-#") && !strings.Contains(lines[0], "-0.50") {
		t.Fatalf("negative bar malformed:\n%s", out)
	}
	if strings.Count(lines[1], "#") != 40 {
		t.Fatalf("max bar should span full width:\n%s", out)
	}
}

func TestBarZeros(t *testing.T) {
	out := Bar([]string{"a"}, []float64{0}, "")
	if !strings.Contains(out, "0.00") {
		t.Fatalf("zero bar missing value:\n%s", out)
	}
}
