// Package report renders experiment results as aligned text tables, ASCII
// heat maps and CSV — the presentation layer for the cmd tools, examples
// and EXPERIMENTS.md regeneration.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with %.2f.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case float32:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with right-aligned numeric-looking columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i, w := range widths {
		rule[i] = strings.Repeat("-", w)
	}
	writeRow(rule)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// HeatMap renders a W x H field of values (row-major, row 0 at the south
// edge) as an ASCII map: each cell shows its value, and a shade character
// scales from '.' (coolest) to '#' (hottest). North is printed first so
// the map matches the floorplan orientation.
func HeatMap(w, h int, values []float64, unit string) string {
	if len(values) != w*h {
		return fmt.Sprintf("heatmap: %d values for %dx%d grid\n", len(values), w, h)
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	shades := []byte(".:-=+*%#")
	shade := func(v float64) byte {
		if max == min {
			return shades[0]
		}
		i := int((v - min) / (max - min) * float64(len(shades)-1))
		return shades[i]
	}
	var b strings.Builder
	for y := h - 1; y >= 0; y-- {
		for x := 0; x < w; x++ {
			v := values[y*w+x]
			fmt.Fprintf(&b, " %c%6.2f", shade(v), v)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "min %.2f%s  max %.2f%s\n", min, unit, max, unit)
	return b.String()
}

// Bar renders a labelled horizontal bar chart for a set of (label, value)
// pairs — the text analogue of the paper's Figure 1 bars. Negative values
// render to the left of the axis.
func Bar(labels []string, values []float64, unit string) string {
	maxAbs := 0.0
	maxLabel := 0
	for i, v := range values {
		maxAbs = math.Max(maxAbs, math.Abs(v))
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	const width = 40
	var b strings.Builder
	for i, v := range values {
		n := int(math.Round(math.Abs(v) / maxAbs * width))
		bar := strings.Repeat("#", n)
		if v < 0 {
			fmt.Fprintf(&b, "%-*s %8.2f%s -%s\n", maxLabel, labels[i], v, unit, bar)
		} else {
			fmt.Fprintf(&b, "%-*s %8.2f%s +%s\n", maxLabel, labels[i], v, unit, bar)
		}
	}
	return b.String()
}
