package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// schemesFor returns the paper's five migration schemes for an n x n grid.
func schemesFor(n int) []Transform {
	return []Transform{
		Rotation(n),
		XMirror(n),
		XYMirror(n, n),
		XTranslate(n, 1),
		XYTranslate(n, n, 1, 1),
	}
}

// randomCoord draws an on-grid coordinate from a quick-check PRNG.
func randomCoord(r *rand.Rand, g Grid) Coord {
	return Coord{X: r.Intn(g.W), Y: r.Intn(g.H)}
}

// TestTransformBijective property-checks that every scheme is a bijection:
// distinct PEs never collide after transformation.
func TestTransformBijective(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8} {
		g := NewGrid(n, n)
		for _, tr := range schemesFor(n) {
			seen := map[Coord]Coord{}
			for _, c := range g.Coords() {
				d := tr.Apply(g, c)
				if prev, dup := seen[d]; dup {
					t.Fatalf("n=%d %s: %v and %v both map to %v", n, tr.Name, prev, c, d)
				}
				seen[d] = c
			}
		}
	}
}

// TestInverseRoundTrip property-checks Inverse: applying a scheme and then
// its inverse returns every coordinate to where it started. This is the
// correctness condition for outgoing-packet source translation in the I/O
// migration unit.
func TestInverseRoundTrip(t *testing.T) {
	f := func(nRaw uint8, xRaw, yRaw uint16) bool {
		n := 2 + int(nRaw%7)
		g := NewGrid(n, n)
		c := Coord{X: int(xRaw) % n, Y: int(yRaw) % n}
		for _, tr := range schemesFor(n) {
			inv := tr.Inverse(g)
			if inv.Apply(g, tr.Apply(g, c)) != c {
				return false
			}
			if tr.Apply(g, inv.Apply(g, c)) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestComposeAssociative property-checks (w∘v)∘u = w∘(v∘u) pointwise.
func TestComposeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		n := 2 + r.Intn(6)
		g := NewGrid(n, n)
		s := schemesFor(n)
		u, v, w := s[r.Intn(len(s))], s[r.Intn(len(s))], s[r.Intn(len(s))]
		left := u.Compose(v).Compose(w)
		right := u.Compose(v.Compose(w))
		if !left.EqualOn(g, right) {
			t.Fatalf("n=%d associativity broken for %s, %s, %s", n, u.Name, v.Name, w.Name)
		}
	}
}

// TestComposeMatchesSequentialApply property-checks that the matrix
// composition agrees with applying the transforms one after another —
// the property that lets the migration unit keep a single cumulative
// transform instead of a history.
func TestComposeMatchesSequentialApply(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for iter := 0; iter < 500; iter++ {
		n := 2 + r.Intn(6)
		g := NewGrid(n, n)
		s := schemesFor(n)
		u, v := s[r.Intn(len(s))], s[r.Intn(len(s))]
		c := randomCoord(r, g)
		if u.Compose(v).Apply(g, c) != v.Apply(g, u.Apply(g, c)) {
			t.Fatalf("n=%d compose(%s,%s) disagrees with sequential application at %v",
				n, u.Name, v.Name, c)
		}
	}
}

// TestDeterminantUnimodular checks that all schemes are rigid or
// volume-preserving (det ±1), the invertibility precondition.
func TestDeterminantUnimodular(t *testing.T) {
	for _, n := range []int{4, 5} {
		for _, tr := range schemesFor(n) {
			if d := tr.Det(); d != 1 && d != -1 {
				t.Errorf("%s has determinant %d, want ±1", tr.Name, d)
			}
		}
	}
}

// TestPowMatchesRepeatedCompose cross-checks Pow against manual repetition.
func TestPowMatchesRepeatedCompose(t *testing.T) {
	g := NewGrid(5, 5)
	tr := XYTranslate(5, 5, 1, 1)
	manual := Identity()
	for k := 0; k <= 12; k++ {
		if !tr.Pow(k).EqualOn(g, manual) {
			t.Fatalf("Pow(%d) disagrees with repeated composition", k)
		}
		manual = manual.Compose(tr)
	}
}

// TestRotationFourth verifies Rot^4 = identity, the basis for the
// four-mapping thermal cycle of the rotation scheme.
func TestRotationFourth(t *testing.T) {
	for _, n := range []int{2, 4, 5, 7} {
		g := NewGrid(n, n)
		if !Rotation(n).Pow(4).EqualOn(g, Identity()) {
			t.Errorf("Rot^4 != identity on %dx%d", n, n)
		}
	}
}

// TestMirrorInvolution verifies that both mirrors are involutions.
func TestMirrorInvolution(t *testing.T) {
	for _, n := range []int{2, 4, 5, 7} {
		g := NewGrid(n, n)
		for _, tr := range []Transform{XMirror(n), YMirror(n), XYMirror(n, n)} {
			if !tr.Pow(2).EqualOn(g, Identity()) {
				t.Errorf("%s is not an involution on %dx%d", tr.Name, n, n)
			}
		}
	}
}

// TestXYMirrorIsComposition verifies X-Y Mirror = YMirror ∘ XMirror.
func TestXYMirrorIsComposition(t *testing.T) {
	for _, n := range []int{4, 5} {
		g := NewGrid(n, n)
		composed := XMirror(n).Compose(YMirror(n))
		if !composed.EqualOn(g, XYMirror(n, n)) {
			t.Errorf("XMirror∘YMirror != XYMirror on %dx%d", n, n)
		}
	}
}

// TestApplyPanicsOffGrid ensures misuse is caught loudly rather than
// silently corrupting a migration.
func TestApplyPanicsOffGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for off-grid coordinate")
		}
	}()
	Rotation(4).Apply(NewGrid(4, 4), Coord{X: 4, Y: 0})
}

// TestGridIndexRoundTrip property-checks Index/Coord as inverse pairs.
func TestGridIndexRoundTrip(t *testing.T) {
	f := func(wRaw, hRaw uint8, iRaw uint16) bool {
		g := NewGrid(1+int(wRaw%8), 1+int(hRaw%8))
		i := int(iRaw) % g.N()
		return g.Index(g.Coord(i)) == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestManhattanTriangle property-checks the triangle inequality for the
// hop metric used by the migration energy model.
func TestManhattanTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Coord{int(ax), int(ay)}
		b := Coord{int(bx), int(by)}
		c := Coord{int(cx), int(cy)}
		return a.Manhattan(c) <= a.Manhattan(b)+b.Manhattan(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNeighbors checks corner, edge and interior neighbourhood sizes.
func TestNeighbors(t *testing.T) {
	g := NewGrid(4, 4)
	cases := []struct {
		c Coord
		n int
	}{
		{Coord{0, 0}, 2}, {Coord{3, 3}, 2}, {Coord{0, 3}, 2},
		{Coord{1, 0}, 3}, {Coord{0, 2}, 3},
		{Coord{1, 1}, 4}, {Coord{2, 2}, 4},
	}
	for _, c := range cases {
		if got := len(g.Neighbors(c.c)); got != c.n {
			t.Errorf("Neighbors(%v) = %d, want %d", c.c, got, c.n)
		}
	}
}
