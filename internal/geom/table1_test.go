package geom

import "testing"

// TestTable1Rotation checks the paper's rotation function exactly:
// NewX = N-1-Y, NewY = X (Table 1).
func TestTable1Rotation(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		g := NewGrid(n, n)
		rot := Rotation(n)
		for _, c := range g.Coords() {
			got := rot.Apply(g, c)
			want := Coord{X: n - 1 - c.Y, Y: c.X}
			if got != want {
				t.Fatalf("n=%d Rot%v = %v, want %v", n, c, got, want)
			}
		}
	}
}

// TestTable1XMirror checks NewX = N-1-X, NewY = Y (Table 1).
func TestTable1XMirror(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		g := NewGrid(n, n)
		mir := XMirror(n)
		for _, c := range g.Coords() {
			got := mir.Apply(g, c)
			want := Coord{X: n - 1 - c.X, Y: c.Y}
			if got != want {
				t.Fatalf("n=%d XMirror%v = %v, want %v", n, c, got, want)
			}
		}
	}
}

// TestTable1XTranslation checks NewX = X + Offset, NewY = Y (Table 1),
// with wraparound at the east edge so the map stays a bijection.
func TestTable1XTranslation(t *testing.T) {
	for _, n := range []int{2, 4, 5} {
		g := NewGrid(n, n)
		for off := 0; off < 2*n; off++ {
			tr := XTranslate(n, off)
			for _, c := range g.Coords() {
				got := tr.Apply(g, c)
				want := Coord{X: (c.X + off) % n, Y: c.Y}
				if got != want {
					t.Fatalf("n=%d off=%d XTranslate%v = %v, want %v", n, off, c, got, want)
				}
			}
		}
	}
}

// TestSchemeOrders verifies the group-theoretic orders the runtime manager
// depends on for its thermal cycle length: rotation has order 4, mirrors
// order 2, unit translations order N.
func TestSchemeOrders(t *testing.T) {
	cases := []struct {
		n     int
		tr    func(n int) Transform
		order int
	}{
		{4, Rotation, 4},
		{5, Rotation, 4},
		{4, XMirror, 2},
		{5, XMirror, 2},
		{4, func(n int) Transform { return XYMirror(n, n) }, 2},
		{5, func(n int) Transform { return XYMirror(n, n) }, 2},
		{4, func(n int) Transform { return XTranslate(n, 1) }, 4},
		{5, func(n int) Transform { return XTranslate(n, 1) }, 5},
		{4, func(n int) Transform { return XYTranslate(n, n, 1, 1) }, 4},
		{5, func(n int) Transform { return XYTranslate(n, n, 1, 1) }, 5},
	}
	for _, c := range cases {
		g := NewGrid(c.n, c.n)
		tr := c.tr(c.n)
		if got := tr.OrderOn(g); got != c.order {
			t.Errorf("%s on %dx%d: order %d, want %d", tr.Name, c.n, c.n, got, c.order)
		}
	}
}

// TestOddGridFixedCenter verifies the paper's §3 observation: on
// odd-dimensioned grids both rotation and the mirroring migrations ignore
// the central PE, so they cannot balance heat generated at the centre of
// the device.
func TestOddGridFixedCenter(t *testing.T) {
	g := NewGrid(5, 5)
	center, ok := g.Center()
	if !ok {
		t.Fatal("5x5 grid must have a centre")
	}
	for _, tr := range []Transform{Rotation(5), XMirror(5), XYMirror(5, 5)} {
		if got := tr.Apply(g, center); got != center {
			t.Errorf("%s should fix the centre %v, moved it to %v", tr.Name, center, got)
		}
	}
	// The translations must move the centre.
	for _, tr := range []Transform{XTranslate(5, 1), XYTranslate(5, 5, 1, 1)} {
		if got := tr.Apply(g, center); got == center {
			t.Errorf("%s should move the centre %v", tr.Name, center)
		}
	}
}

// TestEvenGridNoFixedPoints verifies that on the 4x4 chips every scheme
// moves every PE, which is why rotation and X-Y mirroring balance
// configurations A and B so effectively.
func TestEvenGridNoFixedPoints(t *testing.T) {
	g := NewGrid(4, 4)
	for _, tr := range []Transform{
		Rotation(4), XMirror(4), XYMirror(4, 4), XTranslate(4, 1), XYTranslate(4, 4, 1, 1),
	} {
		p := FromTransform(g, tr)
		if fp := p.FixedPoints(); len(fp) != 0 {
			t.Errorf("%s on 4x4 has fixed points %v, want none", tr.Name, fp)
		}
	}
}

// TestRightShiftPreservesRows encodes the paper's warm-band argument: a
// pure X translation keeps every workload in its own row, so the total
// power of a hot row is never dispersed.
func TestRightShiftPreservesRows(t *testing.T) {
	for _, n := range []int{4, 5} {
		g := NewGrid(n, n)
		tr := XTranslate(n, 1)
		for _, c := range g.Coords() {
			if got := tr.Apply(g, c); got.Y != c.Y {
				t.Fatalf("right shift moved %v out of its row to %v", c, got)
			}
		}
	}
}

// TestXYShiftChangesRows verifies the complementary property: the X-Y shift
// moves every workload to a different row each period, dispersing warm
// bands — the mechanism behind its best-in-class average reduction.
func TestXYShiftChangesRows(t *testing.T) {
	for _, n := range []int{4, 5} {
		g := NewGrid(n, n)
		tr := XYTranslate(n, n, 1, 1)
		for _, c := range g.Coords() {
			if got := tr.Apply(g, c); got.Y == c.Y {
				t.Fatalf("X-Y shift left %v in its row (got %v)", c, got)
			}
		}
		// Over the full orbit, each workload must visit every row once.
		p := FromTransform(g, tr)
		for i := 0; i < g.N(); i++ {
			rows := map[int]bool{}
			for _, j := range p.Orbit(i) {
				rows[g.Coord(j).Y] = true
			}
			if len(rows) != n {
				t.Fatalf("orbit of PE %d visits %d rows, want %d", i, len(rows), n)
			}
		}
	}
}
