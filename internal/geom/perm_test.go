package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCyclesPartition property-checks that the cycle decomposition plus
// fixed points exactly partitions the PE set.
func TestCyclesPartition(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6} {
		g := NewGrid(n, n)
		for _, tr := range schemesFor(n) {
			p := FromTransform(g, tr)
			seen := make([]bool, g.N())
			for _, c := range p.FixedPoints() {
				seen[g.Index(c)] = true
			}
			for _, cyc := range p.Cycles() {
				if len(cyc) < 2 {
					t.Fatalf("%s on %dx%d: cycle of length %d", tr.Name, n, n, len(cyc))
				}
				for _, i := range cyc {
					if seen[i] {
						t.Fatalf("%s on %dx%d: PE %d in two cycles", tr.Name, n, n, i)
					}
					seen[i] = true
				}
			}
			for i, s := range seen {
				if !s {
					t.Fatalf("%s on %dx%d: PE %d in no cycle", tr.Name, n, n, i)
				}
			}
		}
	}
}

// TestCyclesFollowPermutation verifies that consecutive cycle entries obey
// the destination table — the exact order in which the phased migration
// forwards state around each cycle.
func TestCyclesFollowPermutation(t *testing.T) {
	g := NewGrid(5, 5)
	for _, tr := range schemesFor(5) {
		p := FromTransform(g, tr)
		for _, cyc := range p.Cycles() {
			for k, i := range cyc {
				next := cyc[(k+1)%len(cyc)]
				if p.Dst(i) != next {
					t.Fatalf("%s: cycle %v broken at position %d", tr.Name, cyc, k)
				}
			}
		}
	}
}

// TestPermOrderMatchesTransformOrder cross-checks the permutation order
// (LCM of cycle lengths) against the transform's group order.
func TestPermOrderMatchesTransformOrder(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6} {
		g := NewGrid(n, n)
		for _, tr := range schemesFor(n) {
			p := FromTransform(g, tr)
			if p.Order() != tr.OrderOn(g) {
				t.Errorf("%s on %dx%d: perm order %d != transform order %d",
					tr.Name, n, n, p.Order(), tr.OrderOn(g))
			}
		}
	}
}

// TestInverseComposeIdentity property-checks p ∘ p⁻¹ = identity.
func TestInverseComposeIdentity(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%5)
		g := NewGrid(n, n)
		p := randomPerm(rand.New(rand.NewSource(seed)), g)
		return p.Compose(p.Inverse()).IsIdentity() && p.Inverse().Compose(p).IsIdentity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomPerm builds a uniformly random permutation of the grid via
// Fisher-Yates, for property tests over arbitrary (non-scheme) migrations.
func randomPerm(r *rand.Rand, g Grid) Perm {
	dst := r.Perm(g.N())
	p, err := NewPerm(g, dst)
	if err != nil {
		panic(err)
	}
	return p
}

// TestNewPermRejectsNonBijections covers the validation paths.
func TestNewPermRejectsNonBijections(t *testing.T) {
	g := NewGrid(2, 2)
	cases := [][]int{
		{0, 1, 2},          // wrong length
		{0, 0, 1, 2},       // duplicate destination
		{0, 1, 2, 4},       // out of range
		{-1, 1, 2, 3},      // negative
		{0, 1, 2, 3, 4, 5}, // too long
	}
	for _, dst := range cases {
		if _, err := NewPerm(g, dst); err == nil {
			t.Errorf("NewPerm(%v) accepted a non-bijection", dst)
		}
	}
	if _, err := NewPerm(g, []int{1, 0, 3, 2}); err != nil {
		t.Errorf("NewPerm rejected a valid permutation: %v", err)
	}
}

// TestTotalDistanceSchemes pins down the state-movement distances of each
// scheme on the paper's grids. Rotation moves state the furthest in
// aggregate on the 5x5 chip, which is the root of its largest
// reconfiguration energy penalty (§3).
func TestTotalDistanceSchemes(t *testing.T) {
	type key struct {
		n    int
		name string
	}
	// Distances computed by hand from the closed forms. Wrapped
	// translations pay the physical distance across the die: on an NxN
	// grid a right shift moves N-1 columns one hop and the east column
	// N-1 hops back, so its total is (N-1)·N + N·(N-1) = 2N(N-1) per axis
	// ... i.e. 24 on 4x4 and 40 on 5x5; the X-Y shift doubles that.
	want := map[key]int{
		{4, "Rot"}:         40,
		{4, "X Mirror"}:    32,
		{4, "X-Y Mirror"}:  64,
		{4, "Right Shift"}: 24,
		{4, "X-Y Shift"}:   48,
		{5, "Rot"}:         80,
		{5, "X Mirror"}:    60,
		{5, "X-Y Mirror"}:  120,
		{5, "Right Shift"}: 40,
		{5, "X-Y Shift"}:   80,
	}
	for _, n := range []int{4, 5} {
		g := NewGrid(n, n)
		for _, tr := range schemesFor(n) {
			p := FromTransform(g, tr)
			if got := p.TotalDistance(); got != want[key{n, tr.Name}] {
				t.Errorf("%s on %dx%d: total distance %d, want %d",
					tr.Name, n, n, got, want[key{n, tr.Name}])
			}
		}
	}
}

// TestOrbitLengthsDividOrder property-checks Lagrange: every orbit length
// divides the permutation order.
func TestOrbitLengthsDivideOrder(t *testing.T) {
	g := NewGrid(5, 5)
	for _, tr := range schemesFor(5) {
		p := FromTransform(g, tr)
		ord := p.Order()
		for i := 0; i < g.N(); i++ {
			if l := len(p.Orbit(i)); ord%l != 0 {
				t.Errorf("%s: orbit length %d does not divide order %d", tr.Name, l, ord)
			}
		}
	}
}

// TestDstCoordMatchesTransform cross-checks the permutation view against
// the affine view.
func TestDstCoordMatchesTransform(t *testing.T) {
	g := NewGrid(4, 4)
	for _, tr := range schemesFor(4) {
		p := FromTransform(g, tr)
		for _, c := range g.Coords() {
			if p.DstCoord(c) != tr.Apply(g, c) {
				t.Fatalf("%s: DstCoord(%v) != Apply(%v)", tr.Name, c, c)
			}
		}
	}
}

// TestMaxDistance sanity-checks MaxDistance against brute force.
func TestMaxDistance(t *testing.T) {
	g := NewGrid(5, 5)
	p := FromTransform(g, XYMirror(5, 5))
	// Corner (0,0) -> (4,4): distance 8 is the maximum possible.
	if got := p.MaxDistance(); got != 8 {
		t.Errorf("XYMirror 5x5 max distance = %d, want 8", got)
	}
}
