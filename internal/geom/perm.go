package geom

import "fmt"

// Perm is a permutation of the PE set of a grid, stored as a row-major
// destination table: dst[i] is the new index of the workload currently at
// index i. Migration schemes induce permutations via FromTransform; the
// phase planner in the core package consumes their cycle decomposition.
type Perm struct {
	grid Grid
	dst  []int
}

// FromTransform builds the permutation induced by t on g.
func FromTransform(g Grid, t Transform) Perm {
	dst := make([]int, g.N())
	for i := range dst {
		dst[i] = g.Index(t.Apply(g, g.Coord(i)))
	}
	p := Perm{grid: g, dst: dst}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("geom: transform %q is not a bijection of %dx%d: %v",
			t.Name, g.W, g.H, err))
	}
	return p
}

// NewPerm builds a permutation from an explicit destination table.
// The table is copied. NewPerm returns an error if dst is not a bijection.
func NewPerm(g Grid, dst []int) (Perm, error) {
	if len(dst) != g.N() {
		return Perm{}, fmt.Errorf("geom: permutation has %d entries for %d PEs", len(dst), g.N())
	}
	p := Perm{grid: g, dst: append([]int(nil), dst...)}
	if err := p.Validate(); err != nil {
		return Perm{}, err
	}
	return p, nil
}

// IdentityPerm returns the identity permutation on g.
func IdentityPerm(g Grid) Perm {
	dst := make([]int, g.N())
	for i := range dst {
		dst[i] = i
	}
	return Perm{grid: g, dst: dst}
}

// Validate checks that the destination table is a bijection.
func (p Perm) Validate() error {
	seen := make([]bool, len(p.dst))
	for i, d := range p.dst {
		if d < 0 || d >= len(p.dst) {
			return fmt.Errorf("geom: destination %d of PE %d out of range", d, i)
		}
		if seen[d] {
			return fmt.Errorf("geom: destination %d receives two workloads", d)
		}
		seen[d] = true
	}
	return nil
}

// Grid returns the grid the permutation acts on.
func (p Perm) Grid() Grid { return p.grid }

// Len returns the number of PEs.
func (p Perm) Len() int { return len(p.dst) }

// Dst returns the destination index of the workload at index i.
func (p Perm) Dst(i int) int { return p.dst[i] }

// DstCoord returns the destination coordinate of the workload at c.
func (p Perm) DstCoord(c Coord) Coord {
	return p.grid.Coord(p.dst[p.grid.Index(c)])
}

// IsIdentity reports whether the permutation moves nothing.
func (p Perm) IsIdentity() bool {
	for i, d := range p.dst {
		if i != d {
			return false
		}
	}
	return true
}

// FixedPoints returns the coordinates whose workload does not move.
// For rotation and mirroring on odd-dimensioned grids this includes the
// centre PE — the reason those schemes cannot relieve central hotspots
// (configurations C, D, E in the paper).
func (p Perm) FixedPoints() []Coord {
	var out []Coord
	for i, d := range p.dst {
		if i == d {
			out = append(out, p.grid.Coord(i))
		}
	}
	return out
}

// Cycles returns the cycle decomposition of the permutation, excluding
// fixed points. Each cycle lists PE indices in traversal order: the
// workload at cycle[k] moves to cycle[k+1] (wrapping). Cycles start at
// their smallest index and are ordered by that index, so the decomposition
// is deterministic — a property the paper relies on for real-time
// guarantees on migration duration.
func (p Perm) Cycles() [][]int {
	seen := make([]bool, len(p.dst))
	var cycles [][]int
	for start := range p.dst {
		if seen[start] || p.dst[start] == start {
			seen[start] = true
			continue
		}
		var cyc []int
		for i := start; !seen[i]; i = p.dst[i] {
			seen[i] = true
			cyc = append(cyc, i)
		}
		cycles = append(cycles, cyc)
	}
	return cycles
}

// Orbit returns the forward orbit of index i: i, p(i), p²(i), ... until it
// returns to i. A fixed point has an orbit of length 1.
func (p Perm) Orbit(i int) []int {
	orbit := []int{i}
	for j := p.dst[i]; j != i; j = p.dst[j] {
		orbit = append(orbit, j)
	}
	return orbit
}

// Order returns the smallest k >= 1 with p^k = identity (the LCM of the
// cycle lengths).
func (p Perm) Order() int {
	order := 1
	for _, c := range p.Cycles() {
		order = lcm(order, len(c))
	}
	return order
}

// Compose returns the permutation "p then q".
func (p Perm) Compose(q Perm) Perm {
	if p.grid != q.grid {
		panic("geom: composing permutations over different grids")
	}
	dst := make([]int, len(p.dst))
	for i := range dst {
		dst[i] = q.dst[p.dst[i]]
	}
	return Perm{grid: p.grid, dst: dst}
}

// Inverse returns the permutation undoing p.
func (p Perm) Inverse() Perm {
	dst := make([]int, len(p.dst))
	for i, d := range p.dst {
		dst[d] = i
	}
	return Perm{grid: p.grid, dst: dst}
}

// TotalDistance returns the sum over all PEs of the Manhattan distance each
// workload travels — the first-order predictor of state-transfer energy for
// a migration (§2.3: every hop of every state flit costs link plus buffer
// energy).
func (p Perm) TotalDistance() int {
	total := 0
	for i, d := range p.dst {
		total += p.grid.Coord(i).Manhattan(p.grid.Coord(d))
	}
	return total
}

// MaxDistance returns the longest Manhattan distance any single workload
// travels under p.
func (p Perm) MaxDistance() int {
	max := 0
	for i, d := range p.dst {
		if m := p.grid.Coord(i).Manhattan(p.grid.Coord(d)); m > max {
			max = m
		}
	}
	return max
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
