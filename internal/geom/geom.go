// Package geom provides the grid geometry underlying the NoC floorplan and
// the algebraic plane transformations of Link & Vijaykrishnan (DATE 2005,
// Table 1). Workload migration in the paper is modelled as a rigid motion of
// the logical plane on which all workloads are statically placed; this
// package supplies those motions as integer affine maps together with the
// permutations they induce on the processing-element (PE) array.
package geom

import "fmt"

// Coord is a PE position on the chip grid. X grows to the east (towards
// higher columns), Y to the north (towards higher rows). The origin (0,0)
// is the south-west corner PE, following the paper's {X,Y} addressing.
type Coord struct {
	X, Y int
}

// String returns the coordinate in the paper's {X,Y} notation.
func (c Coord) String() string { return fmt.Sprintf("{%d,%d}", c.X, c.Y) }

// Add returns the component-wise sum of c and d.
func (c Coord) Add(d Coord) Coord { return Coord{c.X + d.X, c.Y + d.Y} }

// Sub returns the component-wise difference of c and d.
func (c Coord) Sub(d Coord) Coord { return Coord{c.X - d.X, c.Y - d.Y} }

// Manhattan returns the Manhattan (hop) distance between c and d, the
// number of mesh links an XY-routed packet traverses between the two PEs.
func (c Coord) Manhattan(d Coord) int {
	return abs(c.X-d.X) + abs(c.Y-d.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Grid describes a W x H mesh of PEs. The paper's test chips are the
// square grids 4x4 (configurations A, B) and 5x5 (C, D, E), but the
// machinery is defined for any rectangular mesh where the individual
// transformations permit it (rotation requires a square grid).
type Grid struct {
	W, H int
}

// NewGrid returns a grid with the given dimensions.
// It panics if either dimension is not positive; grids are construction-time
// constants of an experiment and a bad dimension is a programming error.
func NewGrid(w, h int) Grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("geom: invalid grid %dx%d", w, h))
	}
	return Grid{W: w, H: h}
}

// Square reports whether the grid has equal dimensions.
func (g Grid) Square() bool { return g.W == g.H }

// N returns the number of PEs in the grid.
func (g Grid) N() int { return g.W * g.H }

// Contains reports whether c lies on the grid.
func (g Grid) Contains(c Coord) bool {
	return c.X >= 0 && c.X < g.W && c.Y >= 0 && c.Y < g.H
}

// Index maps a coordinate to its row-major index (Y*W + X).
// It panics if c is off-grid.
func (g Grid) Index(c Coord) int {
	if !g.Contains(c) {
		panic(fmt.Sprintf("geom: coordinate %v outside %dx%d grid", c, g.W, g.H))
	}
	return c.Y*g.W + c.X
}

// Coord maps a row-major index back to its coordinate.
// It panics if i is out of range.
func (g Grid) Coord(i int) Coord {
	if i < 0 || i >= g.N() {
		panic(fmt.Sprintf("geom: index %d outside %dx%d grid", i, g.W, g.H))
	}
	return Coord{X: i % g.W, Y: i / g.W}
}

// Coords returns every grid coordinate in row-major order.
func (g Grid) Coords() []Coord {
	cs := make([]Coord, 0, g.N())
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			cs = append(cs, Coord{X: x, Y: y})
		}
	}
	return cs
}

// Center returns the central coordinate of an odd-by-odd grid and a true
// flag, or the zero coordinate and false when no single centre exists.
// The centre PE is thermally significant: the paper observes that rotation
// and mirroring fix it on odd-dimensioned chips and therefore cannot move
// heat away from a central hotspot.
func (g Grid) Center() (Coord, bool) {
	if g.W%2 == 1 && g.H%2 == 1 {
		return Coord{X: g.W / 2, Y: g.H / 2}, true
	}
	return Coord{}, false
}

// Neighbors returns the on-grid 4-neighbourhood (mesh links) of c in
// deterministic east, west, north, south order.
func (g Grid) Neighbors(c Coord) []Coord {
	cand := [4]Coord{
		{c.X + 1, c.Y},
		{c.X - 1, c.Y},
		{c.X, c.Y + 1},
		{c.X, c.Y - 1},
	}
	out := make([]Coord, 0, 4)
	for _, n := range cand {
		if g.Contains(n) {
			out = append(out, n)
		}
	}
	return out
}
