package geom_test

import (
	"fmt"

	"hotnoc/internal/geom"
)

// The paper's Table 1 rotation on a 4x4 array: NewX = N-1-Y, NewY = X.
func ExampleRotation() {
	g := geom.NewGrid(4, 4)
	rot := geom.Rotation(4)
	fmt.Println(rot.Apply(g, geom.Coord{X: 0, Y: 0}))
	fmt.Println(rot.Apply(g, geom.Coord{X: 3, Y: 1}))
	// Output:
	// {3,0}
	// {2,3}
}

// The I/O migration unit needs the inverse transform to rewrite outgoing
// source addresses; Inverse undoes any scheme step exactly.
func ExampleTransform_Inverse() {
	g := geom.NewGrid(5, 5)
	shift := geom.XYTranslate(5, 5, 1, 1)
	inv := shift.Inverse(g)
	c := geom.Coord{X: 4, Y: 2}
	fmt.Println(shift.Apply(g, c))
	fmt.Println(inv.Apply(g, shift.Apply(g, c)))
	// Output:
	// {0,3}
	// {4,2}
}

// Cycle decomposition drives the phased state transfer: each cycle's
// workloads forward their state around the loop. Rotation on a 5x5 array
// leaves the centre PE (index 12) out of every cycle — the reason it
// cannot relieve central hotspots.
func ExamplePerm_Cycles() {
	g := geom.NewGrid(5, 5)
	perm := geom.FromTransform(g, geom.Rotation(5))
	fmt.Println("cycles:", len(perm.Cycles()))
	fmt.Println("fixed:", perm.FixedPoints())
	// Output:
	// cycles: 6
	// fixed: [{2,2}]
}
