// Package thermal implements a HotSpot-style compact thermal model for NoC
// floorplans: every floorplan block becomes a node in an equivalent RC
// circuit with lateral resistances to its neighbours and a vertical path
// through a copper heat spreader and heat sink to the 40 °C ambient, exactly
// the modelling approach of the HotSpot library the paper uses. The package
// provides a steady-state solver (for static placements and the
// thermal-influence matrix used by placement), and a backward-Euler
// transient solver (for the migration thermal cycles).
package thermal

import (
	"fmt"
	"math"
)

// Dense is a square dense matrix stored row-major. The thermal systems are
// tiny (two nodes per block plus one sink node: 33 for a 4x4 chip, 51 for a
// 5x5), so dense LU factorisation is both the simplest and the fastest
// approach.
type Dense struct {
	N int
	A []float64
}

// NewDense returns an n x n zero matrix.
func NewDense(n int) *Dense {
	if n <= 0 {
		panic(fmt.Sprintf("thermal: invalid matrix size %d", n))
	}
	return &Dense{N: n, A: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.A[i*m.N+j] }

// Set writes element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.A[i*m.N+j] = v }

// Add accumulates v into element (i, j).
func (m *Dense) Add(i, j int, v float64) { m.A[i*m.N+j] += v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.N)
	copy(c.A, m.A)
	return c
}

// MulVec computes dst = M · x. dst and x must not alias.
func (m *Dense) MulVec(dst, x []float64) {
	if len(dst) != m.N || len(x) != m.N {
		panic("thermal: MulVec dimension mismatch")
	}
	for i := 0; i < m.N; i++ {
		s := 0.0
		row := m.A[i*m.N : (i+1)*m.N]
		for j, a := range row {
			s += a * x[j]
		}
		dst[i] = s
	}
}

// LU holds an LU factorisation with partial pivoting (Doolittle form, L
// unit-diagonal, stored in place). The scratch vector makes Solve
// allocation-free, so an LU must not be shared between goroutines.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
	x    []float64
}

// Factor computes the LU factorisation of m. It returns an error if the
// matrix is singular to working precision, which for a thermal network
// indicates a node with no path to ambient.
func Factor(m *Dense) (*LU, error) {
	n := m.N
	f := &LU{n: n, lu: append([]float64(nil), m.A...), piv: make([]int, n), sign: 1,
		x: make([]float64, n)}
	for i := range f.piv {
		f.piv[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot: find the largest magnitude in this column.
		p, max := col, math.Abs(f.lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if a := math.Abs(f.lu[r*n+col]); a > max {
				p, max = r, a
			}
		}
		if max == 0 {
			return nil, fmt.Errorf("thermal: singular system (pivot column %d); some node has no path to ambient", col)
		}
		if p != col {
			for j := 0; j < n; j++ {
				f.lu[p*n+j], f.lu[col*n+j] = f.lu[col*n+j], f.lu[p*n+j]
			}
			f.piv[p], f.piv[col] = f.piv[col], f.piv[p]
			f.sign = -f.sign
		}
		pivVal := f.lu[col*n+col]
		for r := col + 1; r < n; r++ {
			l := f.lu[r*n+col] / pivVal
			f.lu[r*n+col] = l
			if l == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				f.lu[r*n+j] -= l * f.lu[col*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves M·x = b into dst. dst and b may alias.
func (f *LU) Solve(dst, b []float64) {
	if len(dst) != f.n || len(b) != f.n {
		panic("thermal: Solve dimension mismatch")
	}
	n := f.n
	// Apply the pivot permutation.
	x := f.x
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		s := x[i]
		row := f.lu[i*n : i*n+i]
		for j, l := range row {
			s -= l * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	copy(dst, x)
}

// vecMaxAbsDiff returns max_i |a[i]-b[i]|, the convergence metric for the
// transient solver's quasi-steady detection.
func vecMaxAbsDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}
