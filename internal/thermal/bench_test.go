package thermal

import (
	"math/rand"
	"testing"

	"hotnoc/internal/floorplan"
	"hotnoc/internal/geom"
)

func benchNetwork(b *testing.B, n int) *Network {
	b.Helper()
	nw, err := NewNetwork(floorplan.NewMesh(geom.NewGrid(n, n)), DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return nw
}

func benchPower(n int) []float64 {
	r := rand.New(rand.NewSource(1))
	p := make([]float64, n)
	for i := range p {
		p[i] = r.Float64() * 2
	}
	return p
}

// BenchmarkFactor measures one LU factorisation of the 5x5 chip's
// 51-node conductance matrix.
func BenchmarkFactor(b *testing.B) {
	nw := benchNetwork(b, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(nw.G); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadySolve measures one steady-state solve with a prefactored
// system — the placement annealer's inner loop before the influence-matrix
// optimisation.
func BenchmarkSteadySolve(b *testing.B) {
	nw := benchNetwork(b, 5)
	s, err := NewSteadySolver(nw)
	if err != nil {
		b.Fatal(err)
	}
	p := benchPower(nw.NDie)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(p)
	}
}

// BenchmarkInfluencePeak measures the annealer's actual inner loop: one
// peak-temperature evaluation through the influence matrix.
func BenchmarkInfluencePeak(b *testing.B) {
	nw := benchNetwork(b, 5)
	inf, err := NewInfluence(nw)
	if err != nil {
		b.Fatal(err)
	}
	p := benchPower(nw.NDie)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inf.PeakTemp(p)
	}
}

// BenchmarkTransientStep measures one backward-Euler step of the 5x5 model.
func BenchmarkTransientStep(b *testing.B) {
	nw := benchNetwork(b, 5)
	tr, err := NewTransient(nw, 5e-6)
	if err != nil {
		b.Fatal(err)
	}
	p := benchPower(nw.NDie)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(p)
	}
}

// BenchmarkRunCycle measures a full quasi-steady cycle evaluation of a
// four-entry schedule, the thermal cost of one scheme evaluation.
func BenchmarkRunCycle(b *testing.B) {
	nw := benchNetwork(b, 5)
	entries := make([]ScheduleEntry, 4)
	for k := range entries {
		p := benchPower(nw.NDie)
		entries[k] = ScheduleEntry{Power: p, Duration: 120e-6}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunCycle(nw, entries, CycleOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
