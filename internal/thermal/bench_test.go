package thermal

import (
	"math/rand"
	"testing"

	"hotnoc/internal/floorplan"
	"hotnoc/internal/geom"
)

func benchNetwork(b *testing.B, n int) *Network {
	b.Helper()
	nw, err := NewNetwork(floorplan.NewMesh(geom.NewGrid(n, n)), DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return nw
}

func benchPower(n int) []float64 {
	r := rand.New(rand.NewSource(1))
	p := make([]float64, n)
	for i := range p {
		p[i] = r.Float64() * 2
	}
	return p
}

// BenchmarkFactor measures one dense pivoted LU factorisation of the 5x5
// chip's 51-node conductance matrix — the retained reference path.
func BenchmarkFactor(b *testing.B) {
	nw := benchNetwork(b, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(nw.G); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFactorBanded measures one bordered-banded factorisation of the
// same system, the production path (O(n·k²) vs the dense O(n³)).
func BenchmarkFactorBanded(b *testing.B) {
	nw := benchNetwork(b, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FactorBanded(nw.G, nw.Sink(), nw.BandPerm()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadySolve measures one steady-state solve on the banded hot
// path with a prefactored system; 0 allocs/op is pinned by the alloc guard.
func BenchmarkSteadySolve(b *testing.B) {
	nw := benchNetwork(b, 5)
	s, err := NewSteadySolver(nw)
	if err != nil {
		b.Fatal(err)
	}
	p := benchPower(nw.NDie)
	die := make([]float64, nw.NDie)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SolveInto(die, p)
	}
}

// BenchmarkSteadySolveDense measures the same solve through the dense
// reference LU, the before side of the banded comparison.
func BenchmarkSteadySolveDense(b *testing.B) {
	nw := benchNetwork(b, 5)
	lu, err := Factor(nw.G)
	if err != nil {
		b.Fatal(err)
	}
	p := benchPower(nw.NDie)
	rhs := make([]float64, nw.NNodes)
	t := make([]float64, nw.NNodes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(rhs, p)
		for j := range rhs {
			if j >= nw.NDie {
				rhs[j] = 0
			}
			rhs[j] += nw.B[j]
		}
		lu.Solve(t, rhs)
	}
}

// BenchmarkSteadySolveBatch measures a 25-map chunk through the batched
// multi-RHS path; the reported time is per chunk, not per map.
func BenchmarkSteadySolveBatch(b *testing.B) {
	nw := benchNetwork(b, 5)
	s, err := NewSteadySolver(nw)
	if err != nil {
		b.Fatal(err)
	}
	maps := make([][]float64, 25)
	for k := range maps {
		maps[k] = benchPower(nw.NDie)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SolveBatch(maps)
	}
}

// BenchmarkInfluenceBuild measures the full influence-matrix construction,
// one batched multi-RHS solve over the identity block (was n sequential
// solves).
func BenchmarkInfluenceBuild(b *testing.B) {
	nw := benchNetwork(b, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewInfluence(nw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInfluencePeak measures the annealer's actual inner loop: one
// peak-temperature evaluation through the influence matrix.
func BenchmarkInfluencePeak(b *testing.B) {
	nw := benchNetwork(b, 5)
	inf, err := NewInfluence(nw)
	if err != nil {
		b.Fatal(err)
	}
	p := benchPower(nw.NDie)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inf.PeakTemp(p)
	}
}

// BenchmarkTransientStep measures one backward-Euler step of the 5x5 model.
func BenchmarkTransientStep(b *testing.B) {
	nw := benchNetwork(b, 5)
	tr, err := NewTransient(nw, 5e-6)
	if err != nil {
		b.Fatal(err)
	}
	p := benchPower(nw.NDie)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(p)
	}
}

// BenchmarkCycleLoopStep measures one iteration of runCycle's inner loop
// with the leakage closure engaged — die extraction, leakage map, power
// assembly, banded step; 0 allocs/op is pinned by the alloc guard.
func BenchmarkCycleLoopStep(b *testing.B) {
	nw := benchNetwork(b, 5)
	tr, err := NewTransient(nw, 5e-6)
	if err != nil {
		b.Fatal(err)
	}
	base := benchPower(nw.NDie)
	die := make([]float64, nw.NDie)
	leak := make([]float64, nw.NDie)
	pm := make([]float64, nw.NDie)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.DieInto(die)
		for j, t := range die {
			leak[j] = 0.012 * (1 + 0.018*(t-40))
		}
		copy(pm, base)
		for j, l := range leak {
			pm[j] += l
		}
		tr.Step(pm)
	}
}

// BenchmarkRunCycle measures a full quasi-steady cycle evaluation of a
// four-entry schedule, the thermal cost of one scheme evaluation,
// including the per-call factorisations.
func BenchmarkRunCycle(b *testing.B) {
	nw := benchNetwork(b, 5)
	entries := make([]ScheduleEntry, 4)
	for k := range entries {
		p := benchPower(nw.NDie)
		entries[k] = ScheduleEntry{Power: p, Duration: 120e-6}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunCycle(nw, entries, CycleOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateCycle measures the warm serving cost of one cycle
// evaluation through a cached Evaluator — the per-point latency floor of a
// sweep after PRs 2 and 5 moved builds and characterizations off the path.
func BenchmarkEvaluateCycle(b *testing.B) {
	nw := benchNetwork(b, 5)
	ev, err := NewEvaluator(nw)
	if err != nil {
		b.Fatal(err)
	}
	entries := make([]ScheduleEntry, 4)
	for k := range entries {
		p := benchPower(nw.NDie)
		entries[k] = ScheduleEntry{Power: p, Duration: 120e-6}
	}
	leak := func(dst, die []float64) {
		for i, t := range die {
			dst[i] = 0.012 * (1 + 0.018*(t-40))
		}
	}
	opts := CycleOptions{Leak: leak}
	if _, err := ev.RunCycle(entries, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.RunCycle(entries, opts); err != nil {
			b.Fatal(err)
		}
	}
}
