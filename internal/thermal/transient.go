package thermal

import (
	"fmt"
	"math"
)

// Transient integrates the RC network in time with the backward-Euler
// method:
//
//	(C/dt + G) · T(t+dt) = C/dt · T(t) + P(t) + B
//
// Backward Euler is unconditionally stable, so the step size is chosen for
// accuracy (a few microseconds against millisecond-scale thermal time
// constants) rather than stability. The iteration matrix is factorised once
// per step size and reused across all steps and power maps.
type Transient struct {
	nw *Network
	dt float64
	f  *BandedLU

	// T is the current full node temperature vector.
	T []float64
	// Time is the elapsed simulated time in seconds.
	Time float64

	rhs []float64
	pv  []float64
}

// NewTransient creates an integrator with step dt (seconds), starting from
// a uniform ambient-temperature state.
func NewTransient(nw *Network, dt float64) (*Transient, error) {
	f, err := factorStep(nw, dt)
	if err != nil {
		return nil, err
	}
	return newTransient(nw, dt, f), nil
}

// factorStep factorises the backward-Euler iteration matrix C/dt + G for
// step size dt. Adding C/dt to the diagonal preserves symmetry, diagonal
// dominance, and the band pattern, so the banded factorisation applies
// unchanged. The factorisation depends only on (network, dt), so an
// Evaluator caches it across any number of integrations.
func factorStep(nw *Network, dt float64) (*BandedLU, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: non-positive step %g", dt)
	}
	m := nw.G.Clone()
	for i := 0; i < nw.NNodes; i++ {
		m.Add(i, i, nw.C[i]/dt)
	}
	return FactorBanded(m, nw.Sink(), nw.BandPerm())
}

// newTransient wires an integrator around a previously factorised
// iteration matrix for the same (network, dt).
func newTransient(nw *Network, dt float64, f *BandedLU) *Transient {
	tr := &Transient{
		nw:  nw,
		dt:  dt,
		f:   f,
		T:   make([]float64, nw.NNodes),
		rhs: make([]float64, nw.NNodes),
		pv:  make([]float64, nw.NNodes),
	}
	tr.Reset()
	return tr
}

// Reset returns the state to uniform ambient temperature at time zero.
func (tr *Transient) Reset() {
	for i := range tr.T {
		tr.T[i] = tr.nw.Par.AmbientC
	}
	tr.Time = 0
}

// SetState overwrites the die and package state with a previously captured
// full node vector (e.g. to branch a what-if simulation).
func (tr *Transient) SetState(full []float64, time float64) {
	if len(full) != len(tr.T) {
		panic("thermal: SetState dimension mismatch")
	}
	copy(tr.T, full)
	tr.Time = time
}

// State returns a copy of the full node temperature vector.
func (tr *Transient) State() []float64 { return append([]float64(nil), tr.T...) }

// Dt returns the integrator step size.
func (tr *Transient) Dt() float64 { return tr.dt }

// Step advances one dt with the given per-block die power map (watts).
//
//hotnoc:noalloc
func (tr *Transient) Step(blockPower []float64) {
	tr.nw.powerVector(tr.pv, blockPower)
	for i := range tr.rhs {
		tr.rhs[i] = tr.nw.C[i]/tr.dt*tr.T[i] + tr.pv[i] + tr.nw.B[i]
	}
	tr.f.Solve(tr.T, tr.rhs)
	tr.Time += tr.dt
}

// StepFor integrates the given power map for a duration, rounding the
// number of steps to the nearest whole step (minimum one).
func (tr *Transient) StepFor(blockPower []float64, duration float64) {
	steps := int(math.Round(duration / tr.dt))
	if steps < 1 {
		steps = 1
	}
	for s := 0; s < steps; s++ {
		tr.Step(blockPower)
	}
}

// Die returns a copy of the current die-layer temperatures.
func (tr *Transient) Die() []float64 { return tr.nw.DieTemps(tr.T) }

// DieInto writes the current die-layer temperatures into dst without
// allocating; dst must have NDie entries.
//
//hotnoc:noalloc
func (tr *Transient) DieInto(dst []float64) { tr.nw.DieTempsInto(dst, tr.T) }

// ScheduleEntry is one segment of a piecewise-constant power schedule: the
// chip dissipates Power (per-block watts) for Duration seconds. A migration
// scheme's orbit becomes one entry per distinct placement, plus entries for
// the migration windows themselves.
type ScheduleEntry struct {
	Power    []float64
	Duration float64
	// Label annotates the entry in traces ("placement 2", "migration").
	Label string
}

// CycleResult summarises the quasi-steady thermal cycle reached by
// repeating a power schedule.
type CycleResult struct {
	// PeakC is the hottest die temperature observed anywhere in the cycle
	// (the paper's figure-of-merit).
	PeakC float64
	// PeakBlock is the row-major block index where PeakC occurred.
	PeakBlock int
	// MeanC is the time- and space-averaged die temperature over the
	// cycle (the metric for the rotation energy penalty).
	MeanC float64
	// MaxPerBlock holds each block's maximum temperature over the cycle.
	MaxPerBlock []float64
	// Repetitions is the number of schedule repetitions integrated before
	// convergence.
	Repetitions int
	// CycleTime is the duration of one schedule repetition in seconds.
	CycleTime float64
}

// CycleOptions tunes RunCycle.
type CycleOptions struct {
	// Dt is the integrator step (default 5 µs).
	Dt float64
	// TolC is the convergence tolerance on the repetition-start state
	// (default 0.005 °C).
	TolC float64
	// MaxReps bounds the repetitions (default 20000).
	MaxReps int
	// Leak, when non-nil, writes the additional per-block leakage power
	// for the current die temperatures into dst, closing the
	// electrothermal loop. The Into signature keeps the per-step hot loop
	// allocation-free (power.Leakage.Into satisfies it).
	Leak func(dst, dieTemps []float64)
}

func (o *CycleOptions) setDefaults() {
	if o.Dt <= 0 {
		o.Dt = 5e-6
	}
	if o.TolC <= 0 {
		o.TolC = 0.005
	}
	if o.MaxReps <= 0 {
		o.MaxReps = 20000
	}
}

// RunCycle integrates the repeating schedule until the temperature state at
// the start of consecutive repetitions converges (the quasi-steady thermal
// cycle of a periodic migration), then records peak and mean statistics
// over one further repetition.
//
// RunCycle factorises the thermal system on every call; evaluation loops
// should hold an Evaluator instead, which caches the factorisations.
func RunCycle(nw *Network, entries []ScheduleEntry, opts CycleOptions) (CycleResult, error) {
	ev, err := NewEvaluator(nw)
	if err != nil {
		return CycleResult{}, err
	}
	return ev.RunCycle(entries, opts)
}

// runCycle is the shared implementation behind RunCycle and
// Evaluator.RunCycle.
func (ev *Evaluator) runCycle(entries []ScheduleEntry, opts CycleOptions) (CycleResult, error) {
	nw := ev.nw
	opts.setDefaults()
	if len(entries) == 0 {
		return CycleResult{}, fmt.Errorf("thermal: empty power schedule")
	}
	cycleTime := 0.0
	for i, e := range entries {
		if len(e.Power) != nw.NDie {
			return CycleResult{}, fmt.Errorf("thermal: entry %d power map has %d blocks, want %d",
				i, len(e.Power), nw.NDie)
		}
		if e.Duration <= 0 {
			return CycleResult{}, fmt.Errorf("thermal: entry %d has non-positive duration", i)
		}
		cycleTime += e.Duration
	}

	tr, err := ev.Transient(opts.Dt)
	if err != nil {
		return CycleResult{}, err
	}
	sc := ev.scratch()

	// Warm start: the heat-sink time constant (~RConvection·CSink, minutes)
	// dwarfs the schedule period, so integrating from ambient would take
	// millions of repetitions to warm the package. Instead start from the
	// steady state of the time-averaged power map (iterating the leakage
	// feedback to a fixed point), which the quasi-steady cycle orbits
	// around; convergence then takes only a handful of repetitions.
	avg := sc.avg
	for i := range avg {
		avg[i] = 0
	}
	for _, e := range entries {
		w := e.Duration / cycleTime
		for i, p := range e.Power {
			avg[i] += w * p
		}
	}
	ss := ev.ss
	withLeak := sc.withLeak
	copy(withLeak, avg)
	state, next := sc.state, sc.stateNext
	ss.SolveFullInto(state, withLeak)
	if opts.Leak != nil {
		for it := 0; it < 50; it++ {
			nw.DieTempsInto(sc.die, state)
			opts.Leak(sc.leak, sc.die)
			copy(withLeak, avg)
			for i, l := range sc.leak {
				withLeak[i] += l
			}
			ss.SolveFullInto(next, withLeak)
			done := vecMaxAbsDiff(next, state) < opts.TolC/10
			state, next = next, state
			if err := checkFinite(state); err != nil {
				return CycleResult{}, fmt.Errorf("thermal: electrothermal runaway during warm start (leakage diverges at this power level): %w", err)
			}
			if done {
				break
			}
		}
	}
	tr.SetState(state, 0)

	power := sc.power
	runEntry := func(e ScheduleEntry, record *CycleResult, meanAcc *float64, samples *int) {
		steps := int(math.Round(e.Duration / opts.Dt))
		if steps < 1 {
			steps = 1
		}
		for s := 0; s < steps; s++ {
			copy(power, e.Power)
			if opts.Leak != nil {
				nw.DieTempsInto(sc.die, tr.T)
				opts.Leak(sc.leak, sc.die)
				for i, l := range sc.leak {
					power[i] += l
				}
			}
			tr.Step(power)
			if record != nil {
				for i := 0; i < nw.NDie; i++ {
					t := tr.T[i]
					if t > record.MaxPerBlock[i] {
						record.MaxPerBlock[i] = t
					}
					*meanAcc += t
				}
				*samples += nw.NDie
			}
		}
	}

	// Convergence check against a ping-pong copy of the repetition-start
	// state instead of a tr.State() clone per repetition.
	prev := sc.prev
	copy(prev, tr.T)
	reps := 0
	for ; reps < opts.MaxReps; reps++ {
		for _, e := range entries {
			runEntry(e, nil, nil, nil)
		}
		if vecMaxAbsDiff(tr.T, prev) < opts.TolC {
			reps++
			break
		}
		copy(prev, tr.T)
	}

	res := CycleResult{
		MaxPerBlock: make([]float64, nw.NDie),
		Repetitions: reps,
		CycleTime:   cycleTime,
	}
	for i := range res.MaxPerBlock {
		res.MaxPerBlock[i] = -math.MaxFloat64
	}
	meanAcc, samples := 0.0, 0
	for _, e := range entries {
		runEntry(e, &res, &meanAcc, &samples)
	}
	res.PeakC, res.PeakBlock = Peak(res.MaxPerBlock)
	res.MeanC = meanAcc / float64(samples)
	if err := checkFinite([]float64{res.PeakC, res.MeanC}); err != nil {
		return CycleResult{}, fmt.Errorf("thermal: cycle integration diverged: %w", err)
	}
	return res, nil
}

// checkFinite returns an error naming the first non-finite entry.
func checkFinite(v []float64) error {
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("non-finite temperature (entry %d = %g)", i, x)
		}
	}
	return nil
}
