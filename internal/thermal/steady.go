package thermal

import "fmt"

// SteadySolver solves the steady-state thermal problem G·T = P + B for a
// fixed network, reusing one LU factorisation across any number of power
// maps. This is the hot path of thermally-aware placement, which evaluates
// thousands of candidate mappings.
type SteadySolver struct {
	nw *Network
	lu *LU
	// scratch buffers to keep Solve allocation-free after the first call.
	p []float64
	t []float64
}

// NewSteadySolver factorises the network's conductance matrix once.
func NewSteadySolver(nw *Network) (*SteadySolver, error) {
	lu, err := Factor(nw.G)
	if err != nil {
		return nil, err
	}
	return &SteadySolver{
		nw: nw,
		lu: lu,
		p:  make([]float64, nw.NNodes),
		t:  make([]float64, nw.NNodes),
	}, nil
}

// Solve returns the steady-state die temperatures (°C) for a per-block
// power map in watts.
func (s *SteadySolver) Solve(blockPower []float64) []float64 {
	s.nw.powerVector(s.p, blockPower)
	for i := range s.p {
		s.p[i] += s.nw.B[i]
	}
	s.lu.Solve(s.t, s.p)
	return s.nw.DieTemps(s.t)
}

// SolveFull returns the full node temperature vector, including spreader
// and sink nodes, for diagnostics.
func (s *SteadySolver) SolveFull(blockPower []float64) []float64 {
	s.nw.powerVector(s.p, blockPower)
	for i := range s.p {
		s.p[i] += s.nw.B[i]
	}
	out := make([]float64, s.nw.NNodes)
	s.lu.Solve(out, s.p)
	return out
}

// Influence is the precomputed linear thermal operator of a network:
//
//	T_die = Ambient + A · P_die
//
// A[i][j] is the temperature rise at die block i per watt dissipated in die
// block j. Because the conductance matrix is symmetric (thermal
// reciprocity), A is symmetric. Placement uses A to evaluate the peak
// temperature of a candidate mapping in O(n²) with no linear solve.
type Influence struct {
	N int
	A *Dense
	// Ambient is the paper's 40 °C boundary temperature.
	Ambient float64
}

// NewInfluence computes the influence matrix column by column (one solve
// per block with a unit power impulse).
func NewInfluence(nw *Network) (*Influence, error) {
	s, err := NewSteadySolver(nw)
	if err != nil {
		return nil, err
	}
	n := nw.NDie
	inf := &Influence{N: n, A: NewDense(n), Ambient: nw.Par.AmbientC}
	unit := make([]float64, n)
	for j := 0; j < n; j++ {
		unit[j] = 1
		col := s.Solve(unit)
		unit[j] = 0
		for i := 0; i < n; i++ {
			inf.A.Set(i, j, col[i]-nw.Par.AmbientC)
		}
	}
	return inf, nil
}

// Temps returns die temperatures for a power map via the influence matrix.
func (inf *Influence) Temps(blockPower []float64) []float64 {
	if len(blockPower) != inf.N {
		panic(fmt.Sprintf("thermal: power map has %d entries for %d blocks",
			len(blockPower), inf.N))
	}
	out := make([]float64, inf.N)
	inf.A.MulVec(out, blockPower)
	for i := range out {
		out[i] += inf.Ambient
	}
	return out
}

// PeakTemp returns only the hottest block's temperature for a power map;
// this is the placement objective, kept allocation-light.
func (inf *Influence) PeakTemp(blockPower []float64) float64 {
	peak := inf.Ambient
	n := inf.N
	for i := 0; i < n; i++ {
		row := inf.A.A[i*n : (i+1)*n]
		t := inf.Ambient
		for j, a := range row {
			t += a * blockPower[j]
		}
		if t > peak {
			peak = t
		}
	}
	return peak
}
