package thermal

import "fmt"

// SteadySolver solves the steady-state thermal problem G·T = P + B for a
// fixed network, reusing one banded factorisation across any number of
// power maps. This is the hot path of thermally-aware placement, which
// evaluates thousands of candidate mappings. The dense LU in linalg.go is
// kept as the reference implementation; the differential tests pin the two
// paths together.
type SteadySolver struct {
	nw *Network
	f  *BandedLU
	// scratch buffers to keep the Into variants allocation-free.
	p []float64
	t []float64
	// batch scratch, grown on demand by SolveBatch.
	bp []float64
}

// NewSteadySolver factorises the network's conductance matrix once using
// the banded ordering.
func NewSteadySolver(nw *Network) (*SteadySolver, error) {
	f, err := FactorBanded(nw.G, nw.Sink(), nw.BandPerm())
	if err != nil {
		return nil, err
	}
	return &SteadySolver{
		nw: nw,
		f:  f,
		p:  make([]float64, nw.NNodes),
		t:  make([]float64, nw.NNodes),
	}, nil
}

// Solve returns the steady-state die temperatures (°C) for a per-block
// power map in watts. The returned slice is fresh on every call; hot loops
// use SolveInto.
func (s *SteadySolver) Solve(blockPower []float64) []float64 {
	out := make([]float64, s.nw.NDie)
	s.SolveInto(out, blockPower)
	return out
}

// SolveInto writes the steady-state die temperatures into dst (NDie
// entries) without allocating.
//
//hotnoc:noalloc
func (s *SteadySolver) SolveInto(dst, blockPower []float64) {
	if len(dst) != s.nw.NDie {
		panic(fmt.Sprintf("thermal: SolveInto dst has %d entries for %d blocks", len(dst), s.nw.NDie))
	}
	s.solveNodes(blockPower)
	copy(dst, s.t[:s.nw.NDie])
}

// SolveFull returns the full node temperature vector, including spreader
// and sink nodes, for diagnostics.
func (s *SteadySolver) SolveFull(blockPower []float64) []float64 {
	out := make([]float64, s.nw.NNodes)
	s.SolveFullInto(out, blockPower)
	return out
}

// SolveFullInto writes the full node temperature vector into dst (NNodes
// entries) without allocating.
//
//hotnoc:noalloc
func (s *SteadySolver) SolveFullInto(dst, blockPower []float64) {
	if len(dst) != s.nw.NNodes {
		panic(fmt.Sprintf("thermal: SolveFullInto dst has %d entries for %d nodes", len(dst), s.nw.NNodes))
	}
	s.solveNodes(blockPower)
	copy(dst, s.t)
}

//hotnoc:noalloc
func (s *SteadySolver) solveNodes(blockPower []float64) {
	s.nw.powerVector(s.p, blockPower)
	for i := range s.p {
		s.p[i] += s.nw.B[i]
	}
	s.f.Solve(s.t, s.p)
}

// SolveBatch solves a whole chunk of power maps against the one cached
// factorisation with a single batched sweep, returning one die-temperature
// slice per map. Each result is bitwise identical to a Solve of the same
// map, so batching is a pure throughput lever for chunked steady-state
// work (influence-matrix assembly, warm-start chunks, sweep pre-passes).
func (s *SteadySolver) SolveBatch(blockPowers [][]float64) [][]float64 {
	m := len(blockPowers)
	if m == 0 {
		return nil
	}
	n := s.nw.NDie
	nn := s.nw.NNodes
	if cap(s.bp) < nn*m {
		s.bp = make([]float64, nn*m)
	}
	rhs := s.bp[:nn*m]
	for i := 0; i < nn; i++ {
		bi := s.nw.B[i]
		row := rhs[i*m : (i+1)*m]
		for c, p := range blockPowers {
			if len(p) != n {
				panic(fmt.Sprintf("thermal: power map %d has %d entries for %d blocks", c, len(p), n))
			}
			if i < n {
				row[c] = p[i] + bi
			} else {
				row[c] = bi
			}
		}
	}
	s.f.SolveBatch(rhs, rhs, m)
	out := make([][]float64, m)
	for c := range out {
		out[c] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		row := rhs[i*m : (i+1)*m]
		for c := range out {
			out[c][i] = row[c]
		}
	}
	return out
}

// Influence is the precomputed linear thermal operator of a network:
//
//	T_die = Ambient + A · P_die
//
// A[i][j] is the temperature rise at die block i per watt dissipated in die
// block j. Because the conductance matrix is symmetric (thermal
// reciprocity), A is symmetric. Placement uses A to evaluate the peak
// temperature of a candidate mapping in O(n²) with no linear solve.
type Influence struct {
	N int
	A *Dense
	// Ambient is the paper's 40 °C boundary temperature.
	Ambient float64
}

// NewInfluence computes the influence matrix with one batched multi-RHS
// solve: the right-hand-side block is the identity over die nodes (one
// unit power impulse per column) plus the ambient boundary, so a single
// factorisation and one banded sweep replace n sequential solves.
func NewInfluence(nw *Network) (*Influence, error) {
	f, err := FactorBanded(nw.G, nw.Sink(), nw.BandPerm())
	if err != nil {
		return nil, err
	}
	n := nw.NDie
	nn := nw.NNodes
	rhs := make([]float64, nn*n)
	for i := 0; i < nn; i++ {
		bi := nw.B[i]
		row := rhs[i*n : (i+1)*n]
		for j := range row {
			row[j] = bi
		}
	}
	for j := 0; j < n; j++ {
		rhs[j*n+j]++
	}
	f.SolveBatch(rhs, rhs, n)
	inf := &Influence{N: n, A: NewDense(n), Ambient: nw.Par.AmbientC}
	for i := 0; i < n; i++ {
		row := rhs[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			inf.A.Set(i, j, row[j]-nw.Par.AmbientC)
		}
	}
	return inf, nil
}

// Temps returns die temperatures for a power map via the influence matrix.
func (inf *Influence) Temps(blockPower []float64) []float64 {
	if len(blockPower) != inf.N {
		panic(fmt.Sprintf("thermal: power map has %d entries for %d blocks",
			len(blockPower), inf.N))
	}
	out := make([]float64, inf.N)
	inf.A.MulVec(out, blockPower)
	for i := range out {
		out[i] += inf.Ambient
	}
	return out
}

// PeakTemp returns only the hottest block's temperature for a power map;
// this is the placement objective, kept allocation-free.
//
//hotnoc:noalloc
func (inf *Influence) PeakTemp(blockPower []float64) float64 {
	peak := inf.Ambient
	n := inf.N
	for i := 0; i < n; i++ {
		row := inf.A.A[i*n : (i+1)*n]
		t := inf.Ambient
		for j, a := range row {
			t += a * blockPower[j]
		}
		if t > peak {
			peak = t
		}
	}
	return peak
}
