package thermal

// Evaluator amortises the expensive linear-algebra setup of thermal
// evaluation across many solves on one network: the steady-state LU
// factorisation is computed once, and each backward-Euler iteration matrix
// is factorised once per distinct step size and then reused by every
// subsequent cycle integration. A sweep that evaluates many schedules on
// the same chip pays for factorisation once instead of per evaluation.
//
// An Evaluator (like the Transient and SteadySolver it wraps) holds
// mutable scratch state and must not be shared between goroutines;
// concurrent sweeps give each worker its own Evaluator over the shared,
// read-only Network.
type Evaluator struct {
	nw *Network
	ss *SteadySolver
	// trans caches one integrator per step size. RunCycle overwrites the
	// integrator state before use, so reuse is exact.
	trans map[float64]*Transient
	sc    *cycleScratch
}

// cycleScratch holds the per-evaluator buffers that make runCycle
// allocation-free: die-sized power/leak/average maps and node-sized
// ping-pong state vectors. Lazily built on the first cycle evaluation.
type cycleScratch struct {
	avg       []float64 // time-averaged power map, NDie
	withLeak  []float64 // warm-start power map with leakage folded in, NDie
	die       []float64 // die-layer temperatures, NDie
	leak      []float64 // leakage power map, NDie
	power     []float64 // per-step power map, NDie
	state     []float64 // warm-start fixed-point state, NNodes
	stateNext []float64
	prev      []float64 // repetition-start state for convergence checks, NNodes
}

// NewEvaluator factorises the network's steady-state system once and
// returns an evaluator ready to run any number of cycle evaluations.
func NewEvaluator(nw *Network) (*Evaluator, error) {
	ss, err := NewSteadySolver(nw)
	if err != nil {
		return nil, err
	}
	return &Evaluator{nw: nw, ss: ss, trans: map[float64]*Transient{}}, nil
}

func (ev *Evaluator) scratch() *cycleScratch {
	if ev.sc == nil {
		n, nn := ev.nw.NDie, ev.nw.NNodes
		ev.sc = &cycleScratch{
			avg:       make([]float64, n),
			withLeak:  make([]float64, n),
			die:       make([]float64, n),
			leak:      make([]float64, n),
			power:     make([]float64, n),
			state:     make([]float64, nn),
			stateNext: make([]float64, nn),
			prev:      make([]float64, nn),
		}
	}
	return ev.sc
}

// Network returns the network the evaluator was built over.
func (ev *Evaluator) Network() *Network { return ev.nw }

// Steady returns the cached steady-state solver.
func (ev *Evaluator) Steady() *SteadySolver { return ev.ss }

// Transient returns the cached integrator for step dt, factorising the
// iteration matrix on first use. The integrator's state persists between
// calls; callers that need a defined starting point must Reset or SetState
// it (RunCycle always does).
func (ev *Evaluator) Transient(dt float64) (*Transient, error) {
	if tr, ok := ev.trans[dt]; ok {
		return tr, nil
	}
	lu, err := factorStep(ev.nw, dt)
	if err != nil {
		return nil, err
	}
	tr := newTransient(ev.nw, dt, lu)
	ev.trans[dt] = tr
	return tr, nil
}

// RunCycle behaves exactly like the package-level RunCycle but reuses the
// evaluator's cached factorisations.
func (ev *Evaluator) RunCycle(entries []ScheduleEntry, opts CycleOptions) (CycleResult, error) {
	return ev.runCycle(entries, opts)
}
