package thermal

import (
	"reflect"
	"testing"

	"hotnoc/internal/floorplan"
	"hotnoc/internal/geom"
)

func evalTestNetwork(t *testing.T) *Network {
	t.Helper()
	nw, err := NewNetwork(floorplan.NewMesh(geom.NewGrid(4, 4)), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestEvaluatorMatchesRunCycle: the cached path is bitwise identical to
// the one-shot RunCycle, with and without the leakage loop, across
// repeated evaluations and step sizes.
func TestEvaluatorMatchesRunCycle(t *testing.T) {
	nw := evalTestNetwork(t)
	hot := make([]float64, nw.NDie)
	cool := make([]float64, nw.NDie)
	for i := range hot {
		hot[i], cool[i] = 0.4, 0.1
	}
	hot[5] = 2.5
	entries := []ScheduleEntry{
		{Power: hot, Duration: 300e-6},
		{Power: cool, Duration: 300e-6},
	}
	leak := func(dst, die []float64) {
		for i, d := range die {
			dst[i] = 0.01 + 1e-4*d
		}
	}

	ev, err := NewEvaluator(nw)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []CycleOptions{
		{},
		{Dt: 10e-6},
		{Dt: 10e-6, Leak: leak},
		{}, // repeat: the cached integrator state must not leak between runs
	} {
		want, err := RunCycle(nw, entries, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ev.RunCycle(entries, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("dt=%g leak=%v: evaluator result differs from RunCycle",
				opts.Dt, opts.Leak != nil)
		}
	}
}

// TestEvaluatorCachesFactorizations: one integrator per step size, shared
// across calls.
func TestEvaluatorCachesFactorizations(t *testing.T) {
	nw := evalTestNetwork(t)
	ev, err := NewEvaluator(nw)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ev.Transient(5e-6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.Transient(5e-6)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same dt gave two integrators")
	}
	c, err := ev.Transient(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different dt shared an integrator")
	}
	if _, err := ev.Transient(0); err == nil {
		t.Error("non-positive dt accepted")
	}
	if ev.Steady() == nil || ev.Network() != nw {
		t.Error("accessors broken")
	}
}
