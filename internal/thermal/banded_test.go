package thermal

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"hotnoc/internal/floorplan"
	"hotnoc/internal/geom"
)

// denseSolve is the retained reference path: pivoted dense LU over the
// same system the banded solver handles. The differential tests below pin
// the production kernels to it.
func denseSolve(t *testing.T, m *Dense, rhs []float64) []float64 {
	t.Helper()
	lu, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(rhs))
	lu.Solve(out, rhs)
	return out
}

// TestBandedDifferentialRandomGrids sweeps random grid shapes, power maps
// and step sizes and asserts the banded steady and transient kernels agree
// with the dense pivoted reference to ≤1e-8 °C.
func TestBandedDifferentialRandomGrids(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		w, h := 1+r.Intn(6), 1+r.Intn(6)
		nw, err := NewNetwork(floorplan.NewMesh(geom.NewGrid(w, h)), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		p := make([]float64, nw.NDie)
		for i := range p {
			p[i] = r.Float64() * 3
		}

		// Steady state: banded SteadySolver vs dense LU on G·T = P + B.
		rhs := make([]float64, nw.NNodes)
		copy(rhs, p)
		for i := range rhs {
			rhs[i] += nw.B[i]
		}
		want := denseSolve(t, nw.G, rhs)
		ss, err := NewSteadySolver(nw)
		if err != nil {
			t.Fatal(err)
		}
		got := ss.SolveFull(p)
		if d := vecMaxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("%dx%d grid: banded steady solve differs from dense by %g °C", w, h, d)
		}

		// Transient: banded backward-Euler steps vs a dense reference
		// integration of the same (C/dt + G) system.
		dt := []float64{2e-6, 5e-6, 10e-6}[r.Intn(3)]
		tr, err := NewTransient(nw, dt)
		if err != nil {
			t.Fatal(err)
		}
		m := nw.G.Clone()
		for i := 0; i < nw.NNodes; i++ {
			m.Add(i, i, nw.C[i]/dt)
		}
		lu, err := Factor(m)
		if err != nil {
			t.Fatal(err)
		}
		ref := make([]float64, nw.NNodes)
		for i := range ref {
			ref[i] = nw.Par.AmbientC
		}
		refRHS := make([]float64, nw.NNodes)
		steps := 5 + r.Intn(20)
		for s := 0; s < steps; s++ {
			tr.Step(p)
			for i := range refRHS {
				pv := 0.0
				if i < nw.NDie {
					pv = p[i]
				}
				refRHS[i] = nw.C[i]/dt*ref[i] + pv + nw.B[i]
			}
			lu.Solve(ref, refRHS)
		}
		if d := vecMaxAbsDiff(tr.T, ref); d > 1e-8 {
			t.Fatalf("%dx%d grid dt=%g: banded transient differs from dense by %g °C after %d steps",
				w, h, dt, d, steps)
		}
	}
}

// TestBandedBandwidth: the interleaved ordering keeps the half bandwidth
// at ~2·gridwidth, the property the O(n·k²) complexity rests on.
func TestBandedBandwidth(t *testing.T) {
	for _, wh := range [][2]int{{3, 3}, {5, 5}, {6, 4}} {
		nw, err := NewNetwork(floorplan.NewMesh(geom.NewGrid(wh[0], wh[1])), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		f, err := FactorBanded(nw.G, nw.Sink(), nw.BandPerm())
		if err != nil {
			t.Fatal(err)
		}
		// Horizontal neighbours are 2 apart in the interleaved order,
		// vertical neighbours 2·W apart.
		if want := 2 * wh[0]; f.Bandwidth() > want {
			t.Errorf("%dx%d grid: half bandwidth %d exceeds 2·W = %d", wh[0], wh[1], f.Bandwidth(), want)
		}
	}
}

// TestBandedBatchMatchesSequential: a batched multi-RHS solve is bitwise
// identical to solving each column on its own.
func TestBandedBatchMatchesSequential(t *testing.T) {
	nw := testNetwork(t, 4)
	f, err := FactorBanded(nw.G, nw.Sink(), nw.BandPerm())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for _, ncols := range []int{1, 2, 7, nw.NNodes} {
		rhs := make([]float64, nw.NNodes*ncols)
		for i := range rhs {
			rhs[i] = r.Float64() * 10
		}
		dst := make([]float64, len(rhs))
		f.SolveBatch(dst, rhs, ncols)
		col := make([]float64, nw.NNodes)
		for c := 0; c < ncols; c++ {
			for i := 0; i < nw.NNodes; i++ {
				col[i] = rhs[i*ncols+c]
			}
			f.Solve(col, col)
			for i := 0; i < nw.NNodes; i++ {
				if dst[i*ncols+c] != col[i] {
					t.Fatalf("ncols=%d col=%d row=%d: batch %v != sequential %v",
						ncols, c, i, dst[i*ncols+c], col[i])
				}
			}
		}
	}
}

// TestSteadySolveBatchMatchesSolve: the chunked steady-state API returns
// bitwise the same die temperatures as one Solve per map.
func TestSteadySolveBatchMatchesSolve(t *testing.T) {
	nw := testNetwork(t, 5)
	ss, err := NewSteadySolver(nw)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	maps := make([][]float64, 9)
	for k := range maps {
		maps[k] = make([]float64, nw.NDie)
		for i := range maps[k] {
			maps[k][i] = r.Float64() * 2
		}
	}
	batch := ss.SolveBatch(maps)
	for k, m := range maps {
		single := ss.Solve(m)
		for i := range single {
			if batch[k][i] != single[i] {
				t.Fatalf("map %d block %d: batch %v != single %v", k, i, batch[k][i], single[i])
			}
		}
	}
	if ss.SolveBatch(nil) != nil {
		t.Error("empty batch should return nil")
	}
}

// TestBandedSingularNoPathToAmbient: a network whose ambient coupling is
// removed is singular; both the dense reference and the banded kernel must
// refuse it with the physical diagnosis.
func TestBandedSingularNoPathToAmbient(t *testing.T) {
	nw := testNetwork(t, 3)
	sink := nw.Sink()
	// Remove the sink-to-ambient conductance: the whole network floats.
	// The bordered elimination detects this exactly (the Schur complement
	// is the sink's effective conductance to ambient) where the pivoted
	// dense path would grind through rounding noise.
	g := nw.G.Clone()
	g.Add(sink, sink, -1/nw.Par.RConvection)
	if _, err := FactorBanded(g, sink, nw.BandPerm()); err == nil {
		t.Fatal("FactorBanded accepted a floating network")
	} else if !strings.Contains(err.Error(), "ambient") {
		t.Fatalf("singular error lost the physical diagnosis: %v", err)
	}

	// An isolated node (all couplings zero) is exactly singular for both
	// the dense reference and the banded kernel.
	iso := nw.G.Clone()
	for j := 0; j < nw.NNodes; j++ {
		iso.Set(0, j, 0)
		iso.Set(j, 0, 0)
	}
	if _, err := Factor(iso); err == nil {
		t.Fatal("dense Factor accepted an isolated node")
	}
	if _, err := FactorBanded(iso, sink, nw.BandPerm()); err == nil {
		t.Fatal("FactorBanded accepted an isolated node")
	} else if !strings.Contains(err.Error(), "ambient") {
		t.Fatalf("isolated-node error lost the physical diagnosis: %v", err)
	}
	// The steady solver and influence builder surface the same failure.
	saved := nw.G
	nw.G = g
	if _, err := NewSteadySolver(nw); err == nil {
		t.Fatal("NewSteadySolver accepted a floating network")
	}
	if _, err := NewInfluence(nw); err == nil {
		t.Fatal("NewInfluence accepted a floating network")
	}
	nw.G = saved
}

// TestFactorBandedRejectsNonRCMatrices: the unpivoted kernel asserts the
// symmetry and diagonal dominance its stability proof needs.
func TestFactorBandedRejectsNonRCMatrices(t *testing.T) {
	nw := testNetwork(t, 3)
	sink := nw.Sink()

	asym := nw.G.Clone()
	asym.Set(0, 1, asym.At(0, 1)+1)
	if _, err := FactorBanded(asym, sink, nw.BandPerm()); err == nil || !strings.Contains(err.Error(), "symmetric") {
		t.Fatalf("asymmetric matrix not rejected: %v", err)
	}

	weak := nw.G.Clone()
	weak.Add(0, 0, -0.5*weak.At(0, 0))
	if _, err := FactorBanded(weak, sink, nw.BandPerm()); err == nil || !strings.Contains(err.Error(), "dominant") {
		t.Fatalf("non-dominant matrix not rejected: %v", err)
	}
}

// TestBandedSolveAliasing: dst may alias the right-hand side.
func TestBandedSolveAliasing(t *testing.T) {
	nw := testNetwork(t, 3)
	f, err := FactorBanded(nw.G, nw.Sink(), nw.BandPerm())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	b := make([]float64, nw.NNodes)
	for i := range b {
		b[i] = r.Float64()
	}
	want := make([]float64, nw.NNodes)
	f.Solve(want, b)
	f.Solve(b, b)
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("aliased solve differs at %d: %v != %v", i, b[i], want[i])
		}
	}
}

// TestHotLoopsAllocationFree pins the allocation-free contract of every
// hot-path kernel: steady solve, transient step, and the full cycle loop
// with the leakage closure engaged.
func TestHotLoopsAllocationFree(t *testing.T) {
	nw := testNetwork(t, 5)
	ev, err := NewEvaluator(nw)
	if err != nil {
		t.Fatal(err)
	}
	ss := ev.Steady()
	tr, err := ev.Transient(5e-6)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, nw.NDie)
	for i := range p {
		p[i] = 0.5
	}
	die := make([]float64, nw.NDie)
	full := make([]float64, nw.NNodes)
	leakBuf := make([]float64, nw.NDie)
	leak := func(dst, temps []float64) {
		for i, d := range temps {
			dst[i] = 0.01 + 1e-4*d
		}
	}

	checks := []struct {
		name string
		fn   func()
	}{
		{"SolveInto", func() { ss.SolveInto(die, p) }},
		{"SolveFullInto", func() { ss.SolveFullInto(full, p) }},
		{"Step", func() { tr.Step(p) }},
		{"DieInto", func() { tr.DieInto(die) }},
		{"cycle step with leak", func() {
			tr.DieInto(die)
			leak(leakBuf, die)
			tr.Step(p)
		}},
	}
	for _, c := range checks {
		c.fn() // warm any lazy scratch before measuring
		if allocs := testing.AllocsPerRun(100, c.fn); allocs != 0 {
			t.Errorf("%s allocates %g times per op, want 0", c.name, allocs)
		}
	}

	// The cycle evaluation may allocate only its result (MaxPerBlock plus
	// the CycleResult bookkeeping), independent of repetitions and steps.
	entries := []ScheduleEntry{{Power: p, Duration: 200e-6}}
	opts := CycleOptions{Dt: 10e-6, Leak: leak}
	if _, err := ev.RunCycle(entries, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ev.RunCycle(entries, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3 {
		t.Errorf("RunCycle allocates %g times per evaluation, want ≤3 (result only)", allocs)
	}
}

// TestConcurrentEvaluatorsShareNetwork: one read-only network, many
// evaluators in parallel — the banded kernels keep all mutable state in
// per-evaluator scratch, so concurrent sweeps must agree bitwise with a
// serial run. Run with -race in CI.
func TestConcurrentEvaluatorsShareNetwork(t *testing.T) {
	nw := testNetwork(t, 4)
	entries := make([][]ScheduleEntry, 8)
	r := rand.New(rand.NewSource(5))
	for k := range entries {
		p := make([]float64, nw.NDie)
		for i := range p {
			p[i] = r.Float64() * 2
		}
		entries[k] = []ScheduleEntry{{Power: p, Duration: 150e-6}}
	}
	leak := func(dst, temps []float64) {
		for i, d := range temps {
			dst[i] = 0.01 + 2e-4*d
		}
	}
	opts := CycleOptions{Dt: 10e-6, Leak: leak}

	serial := make([]CycleResult, len(entries))
	for k := range entries {
		ev, err := NewEvaluator(nw)
		if err != nil {
			t.Fatal(err)
		}
		serial[k], err = ev.RunCycle(entries[k], opts)
		if err != nil {
			t.Fatal(err)
		}
	}

	parallel := make([]CycleResult, len(entries))
	errs := make([]error, len(entries))
	done := make(chan int)
	for k := range entries {
		go func(k int) {
			defer func() { done <- k }()
			ev, err := NewEvaluator(nw)
			if err != nil {
				errs[k] = err
				return
			}
			parallel[k], errs[k] = ev.RunCycle(entries[k], opts)
		}(k)
	}
	for range entries {
		<-done
	}
	for k := range entries {
		if errs[k] != nil {
			t.Fatal(errs[k])
		}
		if serial[k].PeakC != parallel[k].PeakC || serial[k].MeanC != parallel[k].MeanC {
			t.Errorf("worker %d: concurrent result differs from serial", k)
		}
	}
}

// TestBandedMatchesDenseInfluence: the batched influence construction
// agrees with per-column dense solves.
func TestBandedMatchesDenseInfluence(t *testing.T) {
	nw := testNetwork(t, 4)
	inf, err := NewInfluence(nw)
	if err != nil {
		t.Fatal(err)
	}
	unit := make([]float64, nw.NDie)
	rhs := make([]float64, nw.NNodes)
	for j := 0; j < nw.NDie; j++ {
		unit[j] = 1
		copy(rhs, unit)
		for i := range rhs {
			if i >= nw.NDie {
				rhs[i] = 0
			}
			rhs[i] += nw.B[i]
		}
		col := denseSolve(t, nw.G, rhs)
		unit[j] = 0
		for i := 0; i < nw.NDie; i++ {
			if d := math.Abs(inf.A.At(i, j) - (col[i] - nw.Par.AmbientC)); d > 1e-8 {
				t.Fatalf("influence A[%d][%d] differs from dense by %g", i, j, d)
			}
		}
	}
}
