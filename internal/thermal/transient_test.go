package thermal

import (
	"math"
	"math/rand"
	"testing"
)

// TestTransientConvergesToSteady: integrating a constant power map long
// enough must land on the steady-state solution.
func TestTransientConvergesToSteady(t *testing.T) {
	nw := testNetwork(t, 4)
	s, err := NewSteadySolver(nw)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	power := make([]float64, nw.NDie)
	for i := range power {
		power[i] = 0.5 + r.Float64()
	}
	want := s.Solve(power)

	tr, err := NewTransient(nw, 20e-3)
	if err != nil {
		t.Fatal(err)
	}
	// Integrate 2000 s of simulated time: an order of magnitude beyond the
	// sink time constant (CSink * RConvection ≈ 170 s dominates). Backward
	// Euler lets the step be 20 ms without stability concerns.
	tr.StepFor(power, 2000)
	got := tr.Die()
	if d := vecMaxAbsDiff(got, want); d > 0.01 {
		t.Fatalf("transient end-state differs from steady state by %g °C", d)
	}
}

// TestTransientMonotonicHeating: from ambient under constant power, die
// temperatures must rise monotonically (no overshoot for this passive RC
// network) and never exceed the steady state.
func TestTransientMonotonicHeating(t *testing.T) {
	nw := testNetwork(t, 4)
	s, _ := NewSteadySolver(nw)
	power := make([]float64, nw.NDie)
	for i := range power {
		power[i] = 1.0
	}
	steady := s.Solve(power)
	tr, err := NewTransient(nw, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	prevPeak := nw.Par.AmbientC - 1e-12
	for step := 0; step < 5000; step++ {
		tr.Step(power)
		peak, _ := Peak(tr.Die())
		if peak < prevPeak-1e-9 {
			t.Fatalf("peak fell from %g to %g at step %d", prevPeak, peak, step)
		}
		steadyPeak, _ := Peak(steady)
		if peak > steadyPeak+1e-6 {
			t.Fatalf("peak %g overshot steady %g at step %d", peak, steadyPeak, step)
		}
		prevPeak = peak
	}
}

// TestBackwardEulerStableAtLargeStep: even with a huge step the implicit
// integrator must not blow up, and must still land on steady state.
func TestBackwardEulerStableAtLargeStep(t *testing.T) {
	nw := testNetwork(t, 4)
	s, _ := NewSteadySolver(nw)
	power := make([]float64, nw.NDie)
	power[5] = 3.0
	want := s.Solve(power)
	tr, err := NewTransient(nw, 1.0) // 1 s steps, far beyond die time constants
	if err != nil {
		t.Fatal(err)
	}
	tr.StepFor(power, 2000)
	got := tr.Die()
	for i := range got {
		if math.IsNaN(got[i]) || math.IsInf(got[i], 0) {
			t.Fatalf("block %d diverged: %g", i, got[i])
		}
	}
	if d := vecMaxAbsDiff(got, want); d > 0.01 {
		t.Fatalf("large-step end state off steady by %g °C", d)
	}
}

// TestTransientRejectsBadStep covers the error path.
func TestTransientRejectsBadStep(t *testing.T) {
	nw := testNetwork(t, 2)
	if _, err := NewTransient(nw, 0); err == nil {
		t.Fatal("accepted zero dt")
	}
	if _, err := NewTransient(nw, -1e-6); err == nil {
		t.Fatal("accepted negative dt")
	}
}

// TestRunCycleConstantScheduleMatchesSteady: a one-entry schedule is just a
// constant power map, so the cycle peak must equal the steady-state peak.
func TestRunCycleConstantScheduleMatchesSteady(t *testing.T) {
	nw := testNetwork(t, 4)
	s, _ := NewSteadySolver(nw)
	power := make([]float64, nw.NDie)
	power[0], power[5], power[10] = 2, 1.5, 1
	steadyPeak, steadyBlock := Peak(s.Solve(power))

	res, err := RunCycle(nw, []ScheduleEntry{{Power: power, Duration: 500e-6}},
		CycleOptions{Dt: 10e-6, TolC: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PeakC-steadyPeak) > 0.05 {
		t.Fatalf("cycle peak %g, steady peak %g", res.PeakC, steadyPeak)
	}
	if res.PeakBlock != steadyBlock {
		t.Fatalf("cycle peak block %d, steady %d", res.PeakBlock, steadyBlock)
	}
}

// TestRunCycleAlternationReducesPeak is the paper's core physics in
// miniature: alternating a hot spot between two locations with a short
// period must yield a lower peak than parking it in one place, and
// approach the steady peak of the averaged power map as the period
// shrinks.
func TestRunCycleAlternationReducesPeak(t *testing.T) {
	nw := testNetwork(t, 4)
	s, _ := NewSteadySolver(nw)

	pa := make([]float64, nw.NDie)
	pb := make([]float64, nw.NDie)
	pa[5] = 4.0  // hot spot at (1,1)
	pb[10] = 4.0 // hot spot at (2,2)
	staticPeak, _ := Peak(s.Solve(pa))

	avg := make([]float64, nw.NDie)
	for i := range avg {
		avg[i] = (pa[i] + pb[i]) / 2
	}
	avgPeak, _ := Peak(s.Solve(avg))

	res, err := RunCycle(nw, []ScheduleEntry{
		{Power: pa, Duration: 109.3e-6},
		{Power: pb, Duration: 109.3e-6},
	}, CycleOptions{Dt: 5e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakC >= staticPeak {
		t.Fatalf("alternating peak %g did not beat static peak %g", res.PeakC, staticPeak)
	}
	if res.PeakC < avgPeak-1e-3 {
		t.Fatalf("alternating peak %g below averaged-power bound %g", res.PeakC, avgPeak)
	}
	// With a 109 µs period versus millisecond-scale die time constants the
	// cycle peak should sit very close to the averaged-power steady peak.
	if res.PeakC-avgPeak > 0.5 {
		t.Fatalf("alternating peak %g too far above averaged bound %g", res.PeakC, avgPeak)
	}
}

// TestRunCycleLongerPeriodHotter: lengthening the migration period raises
// (or leaves equal) the cycle peak — the paper's period/peak trade-off.
func TestRunCycleLongerPeriodHotter(t *testing.T) {
	nw := testNetwork(t, 4)
	pa := make([]float64, nw.NDie)
	pb := make([]float64, nw.NDie)
	pa[5] = 4.0
	pb[10] = 4.0
	peaks := make([]float64, 0, 3)
	for _, period := range []float64{109.3e-6, 437.2e-6, 874.4e-6} {
		res, err := RunCycle(nw, []ScheduleEntry{
			{Power: pa, Duration: period},
			{Power: pb, Duration: period},
		}, CycleOptions{Dt: period / 20})
		if err != nil {
			t.Fatal(err)
		}
		peaks = append(peaks, res.PeakC)
	}
	if !(peaks[0] <= peaks[1]+1e-6 && peaks[1] <= peaks[2]+1e-6) {
		t.Fatalf("peaks not monotone in period: %v", peaks)
	}
	// The paper reports <0.1 °C for its LDPC workload; this synthetic
	// stimulus slams a full 4 W between two single blocks, several times
	// the per-PE swing of the real workload, so the bound here is looser.
	// The workload-faithful <0.1 °C check lives in the experiment tests.
	if peaks[1]-peaks[0] > 0.75 {
		t.Fatalf("437 µs period raised peak by %g °C, want < 0.75", peaks[1]-peaks[0])
	}
}

// TestRunCycleLeakageCoupling: enabling temperature-dependent leakage must
// raise the cycle peak relative to the same schedule without it.
func TestRunCycleLeakageCoupling(t *testing.T) {
	nw := testNetwork(t, 4)
	power := make([]float64, nw.NDie)
	power[5] = 2.0
	entries := []ScheduleEntry{{Power: power, Duration: 200e-6}}
	noLeak, err := RunCycle(nw, entries, CycleOptions{Dt: 10e-6})
	if err != nil {
		t.Fatal(err)
	}
	leak := func(dst, die []float64) {
		for i, temp := range die {
			dst[i] = 0.02 * math.Exp(0.02*(temp-40))
		}
	}
	withLeak, err := RunCycle(nw, entries, CycleOptions{Dt: 10e-6, Leak: leak})
	if err != nil {
		t.Fatal(err)
	}
	if withLeak.PeakC <= noLeak.PeakC {
		t.Fatalf("leakage did not raise peak: %g vs %g", withLeak.PeakC, noLeak.PeakC)
	}
}

// TestRunCycleErrorPaths covers schedule validation.
func TestRunCycleErrorPaths(t *testing.T) {
	nw := testNetwork(t, 2)
	if _, err := RunCycle(nw, nil, CycleOptions{}); err == nil {
		t.Fatal("accepted empty schedule")
	}
	if _, err := RunCycle(nw, []ScheduleEntry{{Power: []float64{1}, Duration: 1e-3}},
		CycleOptions{}); err == nil {
		t.Fatal("accepted wrong-size power map")
	}
	if _, err := RunCycle(nw, []ScheduleEntry{{Power: make([]float64, nw.NDie), Duration: 0}},
		CycleOptions{}); err == nil {
		t.Fatal("accepted zero duration")
	}
}

// TestStateRoundTrip covers SetState/State.
func TestStateRoundTrip(t *testing.T) {
	nw := testNetwork(t, 2)
	tr, err := NewTransient(nw, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	power := make([]float64, nw.NDie)
	power[0] = 1
	tr.StepFor(power, 1e-3)
	snap := tr.State()
	when := tr.Time

	tr2, _ := NewTransient(nw, 1e-5)
	tr2.SetState(snap, when)
	tr.StepFor(power, 1e-3)
	tr2.StepFor(power, 1e-3)
	if d := vecMaxAbsDiff(tr.State(), tr2.State()); d > 1e-12 {
		t.Fatalf("branched integration diverged by %g", d)
	}
}
