package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolvesKnownSystem(t *testing.T) {
	// 3x3 system with known solution x = (1, -2, 3).
	m := NewDense(3)
	rows := [][]float64{
		{4, 1, 0},
		{1, 5, 2},
		{0, 2, 6},
	}
	for i, r := range rows {
		for j, v := range r {
			m.Set(i, j, v)
		}
	}
	want := []float64{1, -2, 3}
	b := make([]float64, 3)
	m.MulVec(b, want)
	lu, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 3)
	lu.Solve(x, b)
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

// TestLUResidualProperty property-checks the factorisation on random
// diagonally dominant systems (the class the thermal stamps produce):
// solving then multiplying back must reproduce the right-hand side.
func TestLUResidualProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%20)
		r := rand.New(rand.NewSource(seed))
		m := NewDense(n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := r.Float64()*2 - 1
					m.Set(i, j, v)
					rowSum += math.Abs(v)
				}
			}
			m.Set(i, i, rowSum+1+r.Float64())
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Float64()*20 - 10
		}
		lu, err := Factor(m)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		lu.Solve(x, b)
		back := make([]float64, n)
		m.MulVec(back, x)
		return vecMaxAbsDiff(back, b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFactorRejectsSingular(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4) // rank 1
	if _, err := Factor(m); err == nil {
		t.Fatal("Factor accepted a singular matrix")
	}
}

func TestSolveAliasing(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, 2)
	m.Set(1, 1, 4)
	lu, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{2, 8}
	lu.Solve(v, v) // dst aliases b
	if v[0] != 1 || v[1] != 2 {
		t.Fatalf("aliased solve got %v, want [1 2]", v)
	}
}

func TestPivotingHandlesZeroDiagonal(t *testing.T) {
	// Requires a row swap to factor.
	m := NewDense(2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	lu, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	lu.Solve(x, []float64{3, 7})
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("got %v, want [7 3]", x)
	}
}

func TestMulVecDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	NewDense(3).MulVec(make([]float64, 2), make([]float64, 3))
}
