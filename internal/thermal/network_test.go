package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hotnoc/internal/floorplan"
	"hotnoc/internal/geom"
)

func testNetwork(t testing.TB, n int) *Network {
	t.Helper()
	fp := floorplan.NewMesh(geom.NewGrid(n, n))
	nw, err := NewNetwork(fp, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestZeroPowerIsAmbient: with no dissipation every node sits at ambient.
func TestZeroPowerIsAmbient(t *testing.T) {
	nw := testNetwork(t, 4)
	s, err := NewSteadySolver(nw)
	if err != nil {
		t.Fatal(err)
	}
	full := s.SolveFull(make([]float64, nw.NDie))
	for i, temp := range full {
		if math.Abs(temp-nw.Par.AmbientC) > 1e-9 {
			t.Fatalf("node %d at %g °C with zero power, want ambient %g",
				i, temp, nw.Par.AmbientC)
		}
	}
}

// TestEnergyConservation: in steady state all dissipated power must leave
// through the sink's convection resistance, so the sink superheat equals
// total power times RConvection.
func TestEnergyConservation(t *testing.T) {
	for _, n := range []int{2, 4, 5} {
		nw := testNetwork(t, n)
		s, err := NewSteadySolver(nw)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(int64(n)))
		power := make([]float64, nw.NDie)
		total := 0.0
		for i := range power {
			power[i] = r.Float64() * 2
			total += power[i]
		}
		full := s.SolveFull(power)
		sinkT := full[2*nw.NDie]
		wantRise := total * nw.Par.RConvection
		if got := sinkT - nw.Par.AmbientC; math.Abs(got-wantRise) > 1e-8*math.Max(1, wantRise) {
			t.Fatalf("n=%d: sink rise %g °C, want %g (conservation violated)", n, got, wantRise)
		}
	}
}

// TestSymmetricPowerSymmetricTemps: a uniform power map on a square chip
// must give a temperature field with the full dihedral symmetry.
func TestSymmetricPowerSymmetricTemps(t *testing.T) {
	nw := testNetwork(t, 5)
	s, err := NewSteadySolver(nw)
	if err != nil {
		t.Fatal(err)
	}
	power := make([]float64, nw.NDie)
	for i := range power {
		power[i] = 1.0
	}
	die := s.Solve(power)
	g := nw.FP.Grid
	for _, tr := range []geom.Transform{geom.Rotation(5), geom.XMirror(5), geom.XYMirror(5, 5)} {
		for _, c := range g.Coords() {
			a := die[g.Index(c)]
			b := die[g.Index(tr.Apply(g, c))]
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("uniform power not %s-symmetric: %v=%g vs image=%g", tr.Name, c, a, b)
			}
		}
	}
}

// TestCenterHotterThanCorner: under uniform power the centre block, with the
// least lateral spreading headroom, must be the hottest and the corners the
// coolest — the geometric fact behind the paper's central-hotspot argument.
func TestCenterHotterThanCorner(t *testing.T) {
	nw := testNetwork(t, 5)
	s, err := NewSteadySolver(nw)
	if err != nil {
		t.Fatal(err)
	}
	power := make([]float64, nw.NDie)
	for i := range power {
		power[i] = 1.0
	}
	die := s.Solve(power)
	g := nw.FP.Grid
	center, _ := g.Center()
	tCenter := die[g.Index(center)]
	tCorner := die[g.Index(geom.Coord{X: 0, Y: 0})]
	if tCenter <= tCorner {
		t.Fatalf("centre %g °C not hotter than corner %g °C", tCenter, tCorner)
	}
	if _, peakI := Peak(die); peakI != g.Index(center) {
		t.Fatalf("peak at block %d, want centre %d", peakI, g.Index(center))
	}
}

// TestMonotonicity property: adding power anywhere never cools any block
// (the influence matrix is entry-wise non-negative).
func TestMonotonicity(t *testing.T) {
	nw := testNetwork(t, 4)
	inf, err := NewInfluence(nw)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < inf.N; i++ {
		for j := 0; j < inf.N; j++ {
			if inf.A.At(i, j) < 0 {
				t.Fatalf("influence A[%d][%d] = %g < 0", i, j, inf.A.At(i, j))
			}
		}
	}
}

// TestReciprocity property: the influence matrix is symmetric — one watt in
// block j heats block i exactly as much as the reverse.
func TestReciprocity(t *testing.T) {
	nw := testNetwork(t, 5)
	inf, err := NewInfluence(nw)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < inf.N; i++ {
		for j := i + 1; j < inf.N; j++ {
			a, b := inf.A.At(i, j), inf.A.At(j, i)
			if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(a)) {
				t.Fatalf("A[%d][%d]=%g != A[%d][%d]=%g", i, j, a, j, i, b)
			}
		}
	}
}

// TestSelfInfluenceDominates: a block is heated more by its own watt than
// by a watt anywhere else; locality is what migration exploits.
func TestSelfInfluenceDominates(t *testing.T) {
	nw := testNetwork(t, 5)
	inf, err := NewInfluence(nw)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < inf.N; i++ {
		for j := 0; j < inf.N; j++ {
			if j != i && inf.A.At(i, j) >= inf.A.At(i, i) {
				t.Fatalf("A[%d][%d]=%g >= self influence A[%d][%d]=%g",
					i, j, inf.A.At(i, j), i, i, inf.A.At(i, i))
			}
		}
	}
}

// TestInfluenceMatchesSolver property: influence-based temperatures agree
// with direct solves for random power maps.
func TestInfluenceMatchesSolver(t *testing.T) {
	nw := testNetwork(t, 4)
	inf, err := NewInfluence(nw)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSteadySolver(nw)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		power := make([]float64, nw.NDie)
		for i := range power {
			power[i] = r.Float64() * 3
		}
		direct := s.Solve(power)
		via := inf.Temps(power)
		peak1, _ := Peak(direct)
		if math.Abs(peak1-inf.PeakTemp(power)) > 1e-8 {
			return false
		}
		return vecMaxAbsDiff(direct, via) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestDistanceDecay: influence decays with Manhattan distance from the
// source along a row.
func TestDistanceDecay(t *testing.T) {
	nw := testNetwork(t, 5)
	inf, err := NewInfluence(nw)
	if err != nil {
		t.Fatal(err)
	}
	g := nw.FP.Grid
	src := g.Index(geom.Coord{X: 0, Y: 2})
	prev := math.Inf(1)
	for x := 0; x < 5; x++ {
		v := inf.A.At(g.Index(geom.Coord{X: x, Y: 2}), src)
		if v >= prev {
			t.Fatalf("influence did not decay along row: x=%d gives %g >= %g", x, v, prev)
		}
		prev = v
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
	bad := DefaultParams()
	bad.KSilicon = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero conductivity accepted")
	}
	bad = DefaultParams()
	bad.RSinkSpread = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative spreading resistance accepted")
	}
}

func TestNetworkRejectsBadInputs(t *testing.T) {
	fp := floorplan.NewMesh(geom.NewGrid(2, 2))
	bad := DefaultParams()
	bad.TDie = -1
	if _, err := NewNetwork(fp, bad); err == nil {
		t.Fatal("NewNetwork accepted invalid params")
	}
	broken := floorplan.NewMesh(geom.NewGrid(2, 2))
	broken.Blocks[1].X = 0 // overlap
	if _, err := NewNetwork(broken, DefaultParams()); err == nil {
		t.Fatal("NewNetwork accepted invalid floorplan")
	}
}

func TestPeakAndMean(t *testing.T) {
	die := []float64{41, 45, 43, 44}
	p, i := Peak(die)
	if p != 45 || i != 1 {
		t.Fatalf("Peak = (%g,%d), want (45,1)", p, i)
	}
	if m := Mean(die); math.Abs(m-43.25) > 1e-12 {
		t.Fatalf("Mean = %g, want 43.25", m)
	}
}
