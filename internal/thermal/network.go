package thermal

import (
	"fmt"

	"hotnoc/internal/floorplan"
)

// Params holds the material and package constants of the compact model.
// Defaults follow the HotSpot library's configuration (the paper ran
// HotSpot "with all settings at the default values"), adapted to the
// two-layer (die + spreader) lumped network.
type Params struct {
	// AmbientC is the ambient temperature in °C (paper: 40 °C).
	AmbientC float64

	// KSilicon is the silicon thermal conductivity, W/(m·K).
	KSilicon float64
	// KSpreader is the copper spreader conductivity, W/(m·K).
	KSpreader float64
	// KInterface is the thermal-interface-material conductivity, W/(m·K).
	KInterface float64

	// TDie, TInterface, TSpreader are layer thicknesses in metres.
	TDie       float64
	TInterface float64
	TSpreader  float64

	// CvSilicon and CvSpreader are volumetric heat capacities, J/(m³·K).
	CvSilicon  float64
	CvSpreader float64

	// RConvection is the sink-to-ambient convection resistance, K/W
	// (HotSpot default r_convec = 0.1... scaled for the small test die;
	// see DefaultParams).
	RConvection float64
	// CSink is the lumped heat-sink capacitance, J/K.
	CSink float64
	// RSinkSpread is the extra spreading resistance from each spreader
	// cell into the lumped sink node, K/W per unit cell.
	RSinkSpread float64
	// OverhangWidth is the width of the heat-spreader overhang beyond the
	// die edge, metres. Edge blocks spread laterally into the overhang
	// ring (and from there to the sink), which is what makes the die
	// periphery run cooler than the centre under uniform power.
	OverhangWidth float64
}

// DefaultParams returns the 160 nm test-chip model constants. Conductivity
// and capacity values are the HotSpot defaults (silicon 100 W/mK, copper
// 400 W/mK, TIM 4 W/mK); the convection resistance is chosen for a compact
// embedded heat sink appropriate to the paper's ~70-110 mm² LDPC chips, so
// that calibrated chip power lands in the single-digit-watt range typical
// of 160 nm NoC prototypes.
func DefaultParams() Params {
	return Params{
		AmbientC:      40.0,
		KSilicon:      100.0,
		KSpreader:     400.0,
		KInterface:    4.0,
		TDie:          0.5e-3,
		TInterface:    20e-6,
		TSpreader:     1e-3,
		CvSilicon:     1.75e6,
		CvSpreader:    3.55e6,
		RConvection:   0.45,
		CSink:         140.0,
		RSinkSpread:   3.0,
		OverhangWidth: 10e-3,
	}
}

// Validate reports the first non-physical parameter.
func (p Params) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"KSilicon", p.KSilicon}, {"KSpreader", p.KSpreader}, {"KInterface", p.KInterface},
		{"TDie", p.TDie}, {"TInterface", p.TInterface}, {"TSpreader", p.TSpreader},
		{"CvSilicon", p.CvSilicon}, {"CvSpreader", p.CvSpreader},
		{"RConvection", p.RConvection}, {"CSink", p.CSink},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("thermal: parameter %s must be positive, got %g", c.name, c.v)
		}
	}
	if p.RSinkSpread < 0 {
		return fmt.Errorf("thermal: RSinkSpread must be non-negative, got %g", p.RSinkSpread)
	}
	if p.OverhangWidth < 0 {
		return fmt.Errorf("thermal: OverhangWidth must be non-negative, got %g", p.OverhangWidth)
	}
	return nil
}

// Network is the assembled RC model of one floorplan. Node indexing:
// 0..n-1 are die nodes (one per block, row-major), n..2n-1 the matching
// spreader nodes, and node 2n is the lumped heat sink. Ambient is the
// boundary condition, not a node.
type Network struct {
	FP     *floorplan.Floorplan
	Par    Params
	NDie   int
	NNodes int

	// G is the conductance (inverse-resistance) matrix of nodal analysis:
	// G·T = P + B, with B carrying the ambient boundary inflow.
	G *Dense
	// C holds the per-node thermal capacitances (diagonal matrix).
	C []float64
	// B is the constant boundary vector (ambient coupling).
	B []float64

	// bandPerm interleaves die/spreader pairs (die i ↦ 2i, spreader
	// i ↦ 2i+1; sink ↦ -1, it is the dense border) so that G and every
	// C/dt + G become banded with half bandwidth ~2·gridwidth. Computed
	// once at assembly and read-only afterwards, so concurrent solvers can
	// share the network.
	bandPerm []int
}

// NewNetwork assembles the RC network for a floorplan.
func NewNetwork(fp *floorplan.Floorplan, par Params) (*Network, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	n := fp.N()
	nw := &Network{
		FP:     fp,
		Par:    par,
		NDie:   n,
		NNodes: 2*n + 1,
	}
	nw.G = NewDense(nw.NNodes)
	nw.C = make([]float64, nw.NNodes)
	nw.B = make([]float64, nw.NNodes)

	sink := 2 * n

	// Capacitances: half the die layer mass lumps on the die node and the
	// spreader cell mass on the spreader node; the sink is one big lump.
	for i, b := range fp.Blocks {
		nw.C[i] = par.CvSilicon * b.Area() * par.TDie
		nw.C[n+i] = par.CvSpreader * b.Area() * par.TSpreader
	}
	nw.C[sink] = par.CSink

	// Lateral conductances inside the die and spreader layers. Centroid
	// distance over conductivity times the shared cross-section, as in
	// HotSpot's grid model.
	for _, a := range fp.Adjacencies() {
		ba, bb := fp.Blocks[a.A], fp.Blocks[a.B]
		var dist float64
		if a.Horizontal {
			dist = (ba.W + bb.W) / 2
		} else {
			dist = (ba.H + bb.H) / 2
		}
		gDie := par.KSilicon * a.SharedLen * par.TDie / dist
		gSpr := par.KSpreader * a.SharedLen * par.TSpreader / dist
		nw.stamp(a.A, a.B, gDie)
		nw.stamp(n+a.A, n+a.B, gSpr)
	}

	// Vertical path per block: die node -> (half die + TIM + half
	// spreader) -> spreader node -> (half spreader + sink spreading) ->
	// sink node.
	for i, b := range fp.Blocks {
		area := b.Area()
		rDieHalf := (par.TDie / 2) / (par.KSilicon * area)
		rTIM := par.TInterface / (par.KInterface * area)
		rSprHalf := (par.TSpreader / 2) / (par.KSpreader * area)
		nw.stamp(i, n+i, 1/(rDieHalf+rTIM+rSprHalf))
		nw.stamp(n+i, sink, 1/(rSprHalf+par.RSinkSpread))
	}

	// Spreader overhang: edge cells spread laterally into the copper ring
	// beyond the die and from there into the sink. Without this path every
	// block would have an identical route to ambient and uniform power
	// would produce a flat (physically wrong) die profile.
	if par.OverhangWidth > 0 {
		for i, b := range fp.Blocks {
			exposed := 0.0
			if b.Cell.X == 0 {
				exposed += b.H
			}
			if b.Cell.X == fp.Grid.W-1 {
				exposed += b.H
			}
			if b.Cell.Y == 0 {
				exposed += b.W
			}
			if b.Cell.Y == fp.Grid.H-1 {
				exposed += b.W
			}
			if exposed == 0 {
				continue
			}
			g := par.KSpreader * par.TSpreader * exposed / (par.OverhangWidth / 2)
			nw.stamp(n+i, sink, g)
		}
	}

	// Sink to ambient: conductance on the diagonal plus boundary inflow.
	gAmb := 1 / par.RConvection
	nw.G.Add(sink, sink, gAmb)
	nw.B[sink] = gAmb * par.AmbientC

	nw.bandPerm = make([]int, nw.NNodes)
	for i := 0; i < n; i++ {
		nw.bandPerm[i] = 2 * i
		nw.bandPerm[n+i] = 2*i + 1
	}
	nw.bandPerm[sink] = -1

	return nw, nil
}

// Sink returns the index of the lumped heat-sink node, the dense border
// row/column of the banded factorisation.
func (nw *Network) Sink() int { return nw.NNodes - 1 }

// BandPerm returns the node ordering under which the network matrices are
// banded (see bandPerm); callers must treat it as read-only.
func (nw *Network) BandPerm() []int { return nw.bandPerm }

// stamp adds a conductance g between nodes i and j.
func (nw *Network) stamp(i, j int, g float64) {
	nw.G.Add(i, i, g)
	nw.G.Add(j, j, g)
	nw.G.Add(i, j, -g)
	nw.G.Add(j, i, -g)
}

// powerVector expands a per-block die power map (W) to the full node
// vector; only die nodes dissipate.
//
//hotnoc:noalloc
func (nw *Network) powerVector(dst, blockPower []float64) {
	if len(blockPower) != nw.NDie {
		panic(fmt.Sprintf("thermal: power map has %d entries for %d blocks",
			len(blockPower), nw.NDie))
	}
	for i := range dst {
		dst[i] = 0
	}
	copy(dst, blockPower)
}

// DieTemps extracts the die-layer slice of a full node temperature vector.
func (nw *Network) DieTemps(full []float64) []float64 {
	out := make([]float64, nw.NDie)
	nw.DieTempsInto(out, full)
	return out
}

// DieTempsInto is DieTemps without the allocation: it writes the die-layer
// temperatures into dst, which must have NDie entries.
//
//hotnoc:noalloc
func (nw *Network) DieTempsInto(dst, full []float64) {
	if len(dst) != nw.NDie {
		panic(fmt.Sprintf("thermal: die buffer has %d entries for %d blocks", len(dst), nw.NDie))
	}
	copy(dst, full[:nw.NDie])
}

// Peak returns the hottest die temperature and its block index.
func Peak(dieTemps []float64) (float64, int) {
	maxT, maxI := dieTemps[0], 0
	for i, t := range dieTemps {
		if t > maxT {
			maxT, maxI = t, i
		}
	}
	return maxT, maxI
}

// Mean returns the average die temperature, the metric behind the paper's
// "+0.3 °C average chip temperature" rotation energy penalty.
func Mean(dieTemps []float64) float64 {
	s := 0.0
	for _, t := range dieTemps {
		s += t
	}
	return s / float64(len(dieTemps))
}
