package thermal

import (
	"fmt"
	"math"
)

// This file implements the structure-exploiting solver that serves every
// hot-path solve in the package. The RC network of a W×H floorplan is
// physically a grid: each die node couples to at most four lateral
// neighbours plus its own spreader node, each spreader node to its lateral
// neighbours, its die node and the lumped sink. Ordering the nodes so die
// and spreader cells interleave (die i ↦ 2i, spreader i ↦ 2i+1) makes the
// conductance matrix G — and every backward-Euler iteration matrix
// C/dt + G, which differs only on the diagonal — banded with half
// bandwidth ~2·W, except for the single dense sink row/column, which is
// handled as a bordered block. Factorisation then costs O(n·k²) instead of
// the dense O(n³) and each solve O(n·k) instead of O(n²).
//
// Stability without pivoting: the matrices are symmetric and (weakly)
// diagonally dominant with positive diagonal — every off-diagonal entry is
// the negative of a physical conductance also added to both diagonals, and
// the ambient coupling adds a strict surplus on the sink row — so they are
// positive semi-definite, and positive definite exactly when every node
// has a path to ambient. For this class, LU factorisation without
// pivoting is backward stable (Golub & Van Loan §4.1.1); FactorBanded
// asserts the properties at factor time and reports a zero/negative pivot
// as the physical "no path to ambient" singularity, exactly like the dense
// reference Factor.

// BandedLU is the factorisation of a symmetric diagonally-dominant matrix
// that is banded under a node permutation except for one dense border
// row/column (the lumped heat-sink node). It supports single and batched
// multi-RHS solves; like LU it carries scratch state and must not be
// shared between goroutines.
type BandedLU struct {
	n      int   // full order, banded block plus the border node
	nb     int   // banded block order
	k      int   // half bandwidth of the banded block
	stride int   // 2k+1, the band-storage row stride
	border int   // node index of the dense border row/column
	perm   []int // perm[node] = banded position; perm[border] = -1

	// ab is the factored band in row-major band storage: entry (i, j) of
	// the banded block lives at ab[i*stride + (j-i+k)]. After Factor it
	// holds unit-diagonal L below and U on and above the diagonal.
	ab []float64
	// bcol is the border coupling column b (banded order), y = A⁻¹·b, and
	// schur = d - bᵀ·y the Schur complement of the border node, so a solve
	// against [[A, b], [bᵀ, d]] is two banded sweeps plus rank-one fixup.
	bcol  []float64
	y     []float64
	schur float64

	x   []float64 // single-RHS scratch, banded order
	xm  []float64 // multi-RHS scratch, grown on demand
	acc []float64 // per-column border accumulator scratch
}

// FactorBanded factorises m, which must be symmetric, (weakly) diagonally
// dominant, and banded under perm outside the single border row/column.
// perm maps every non-border node to its position in the banded ordering
// and the border node to -1; the half bandwidth is detected from the
// non-zero pattern. A zero or negative pivot — the matrix class makes
// them equivalent to singularity — is reported as a node with no path to
// ambient, matching the dense reference Factor.
func FactorBanded(m *Dense, border int, perm []int) (*BandedLU, error) {
	n := m.N
	if border < 0 || border >= n {
		panic(fmt.Sprintf("thermal: border node %d outside %d-node system", border, n))
	}
	if len(perm) != n {
		panic(fmt.Sprintf("thermal: permutation has %d entries for %d nodes", len(perm), n))
	}
	nb := n - 1
	seen := make([]bool, nb)
	for node, p := range perm {
		if node == border {
			if p != -1 {
				panic("thermal: border node must map to -1 in the band permutation")
			}
			continue
		}
		if p < 0 || p >= nb || seen[p] {
			panic("thermal: band permutation is not a bijection onto the non-border nodes")
		}
		seen[p] = true
	}
	if err := checkSymmetricDominant(m); err != nil {
		return nil, err
	}

	// Half bandwidth from the non-zero pattern (≈2·gridwidth for the
	// interleaved mesh ordering; fill-in during elimination stays inside).
	k := 0
	for i := 0; i < n; i++ {
		if i == border {
			continue
		}
		for j := i + 1; j < n; j++ {
			if j == border || m.At(i, j) == 0 {
				continue
			}
			if w := perm[j] - perm[i]; w > k {
				k = w
			} else if -w > k {
				k = -w
			}
		}
	}

	f := &BandedLU{
		n: n, nb: nb, k: k, stride: 2*k + 1, border: border,
		perm: append([]int(nil), perm...),
		ab:   make([]float64, nb*(2*k+1)),
		bcol: make([]float64, nb),
		y:    make([]float64, nb),
		x:    make([]float64, nb),
	}
	for i := 0; i < n; i++ {
		if i == border {
			continue
		}
		pi := perm[i]
		f.ab[pi*f.stride+k] = m.At(i, i)
		f.bcol[pi] = m.At(i, border)
		for j := i + 1; j < n; j++ {
			if j == border {
				continue
			}
			if v := m.At(i, j); v != 0 {
				pj := perm[j]
				f.ab[pi*f.stride+(pj-pi+k)] = v
				f.ab[pj*f.stride+(pi-pj+k)] = v
			}
		}
	}

	// Singularity threshold: for this matrix class genuine pivots are
	// bounded below by each row's dominance surplus (the coupling toward
	// ambient), while an eliminated no-path-to-ambient node leaves only
	// rounding residue, many orders of magnitude below the diagonal scale.
	dmax := 0.0
	for i := 0; i < n; i++ {
		if d := m.At(i, i); d > dmax {
			dmax = d
		}
	}
	tiny := 1e-9 * dmax

	// Unpivoted banded LU (Doolittle): stable for this symmetric
	// diagonally-dominant class, asserted above.
	for col := 0; col < nb; col++ {
		piv := f.ab[col*f.stride+k]
		if !(piv > tiny) {
			return nil, fmt.Errorf("thermal: singular system (pivot %g at banded column %d); some node has no path to ambient", piv, col)
		}
		rmax := col + k
		if rmax > nb-1 {
			rmax = nb - 1
		}
		pivRow := f.ab[col*f.stride:]
		for r := col + 1; r <= rmax; r++ {
			rRow := f.ab[r*f.stride:]
			d := col - r + k // column col's offset in row r's band storage
			l := rRow[d] / piv
			rRow[d] = l
			if l == 0 {
				continue
			}
			for cc := 1; cc <= rmax-col; cc++ {
				rRow[d+cc] -= l * pivRow[k+cc]
			}
		}
	}

	// Border elimination: y = A⁻¹·b and the Schur complement
	// d - bᵀ·y, which is the sink's effective conductance to ambient —
	// non-positive exactly when the network floats with no ambient path.
	copy(f.y, f.bcol)
	f.solveSingle(f.y)
	d := m.At(border, border)
	acc := 0.0
	for i, b := range f.bcol {
		if b != 0 {
			acc += b * f.y[i]
		}
	}
	f.schur = d - acc
	if !(f.schur > tiny) {
		return nil, fmt.Errorf("thermal: singular system (border Schur complement %g); the heat sink has no path to ambient", f.schur)
	}
	return f, nil
}

// checkSymmetricDominant asserts the structural properties the unpivoted
// banded factorisation relies on: symmetry and weak diagonal dominance
// with non-negative diagonal (within rounding slack). The thermal stamps
// construct exactly this class; anything else must use the pivoting dense
// Factor instead.
func checkSymmetricDominant(m *Dense) error {
	n := m.N
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			a, b := m.At(i, j), m.At(j, i)
			if d := math.Abs(a - b); d > 1e-9*(math.Abs(a)+math.Abs(b)) {
				return fmt.Errorf("thermal: matrix not symmetric at (%d,%d): %g vs %g; banded factorisation requires the symmetric RC form", i, j, a, b)
			}
			off += math.Abs(a)
		}
		diag := m.At(i, i)
		if diag < 0 || diag < off*(1-1e-9) {
			return fmt.Errorf("thermal: row %d not diagonally dominant (diagonal %g, off-diagonal sum %g); unpivoted banded factorisation would be unstable", i, diag, off)
		}
	}
	return nil
}

// solveSingle performs the banded forward and back substitution in place
// on one right-hand side with flat indexing — the per-solve hot path.
// Its operation sequence (ascending j, zero factors skipped, one
// subtraction per in-band entry, final division by the pivot) is exactly
// solveCols' per-column sequence, which is what makes a batched solve
// bitwise identical to repeated single solves.
//
//hotnoc:noalloc
func (f *BandedLU) solveSingle(x []float64) {
	nb, k, stride := f.nb, f.k, f.stride
	for i := 1; i < nb; i++ {
		lo := i - k
		if lo < 0 {
			lo = 0
		}
		row := f.ab[i*stride:]
		s := x[i]
		for j := lo; j < i; j++ {
			if l := row[j-i+k]; l != 0 {
				s -= l * x[j]
			}
		}
		x[i] = s
	}
	for i := nb - 1; i >= 0; i-- {
		hi := i + k
		if hi > nb-1 {
			hi = nb - 1
		}
		row := f.ab[i*stride:]
		s := x[i]
		for j := i + 1; j <= hi; j++ {
			if u := row[j-i+k]; u != 0 {
				s -= u * x[j]
			}
		}
		x[i] = s / row[k]
	}
}

// solveCols performs the banded forward and back substitution in place on
// ncols right-hand sides stored row-major (x[i*ncols+c] is row i of column
// c). The per-column arithmetic is identical for every ncols and matches
// solveSingle, so a batched solve is bitwise identical to ncols sequential
// single solves.
//
//hotnoc:noalloc
func (f *BandedLU) solveCols(x []float64, ncols int) {
	nb, k, stride := f.nb, f.k, f.stride
	// Forward substitution with unit-diagonal L.
	for i := 1; i < nb; i++ {
		lo := i - k
		if lo < 0 {
			lo = 0
		}
		row := f.ab[i*stride : i*stride+k]
		xi := x[i*ncols : (i+1)*ncols]
		for j := lo; j < i; j++ {
			l := row[j-i+k]
			if l == 0 {
				continue
			}
			xj := x[j*ncols : (j+1)*ncols]
			for c := range xi {
				xi[c] -= l * xj[c]
			}
		}
	}
	// Back substitution with U.
	for i := nb - 1; i >= 0; i-- {
		hi := i + k
		if hi > nb-1 {
			hi = nb - 1
		}
		row := f.ab[i*stride:]
		xi := x[i*ncols : (i+1)*ncols]
		for j := i + 1; j <= hi; j++ {
			u := row[j-i+k]
			if u == 0 {
				continue
			}
			xj := x[j*ncols : (j+1)*ncols]
			for c := range xi {
				xi[c] -= u * xj[c]
			}
		}
		piv := row[k]
		for c := range xi {
			xi[c] /= piv
		}
	}
}

// Solve solves M·x = b into dst, both in node order. dst and b may alias.
// It is allocation-free.
//
//hotnoc:noalloc
func (f *BandedLU) Solve(dst, b []float64) {
	if len(dst) != f.n || len(b) != f.n {
		panic("thermal: banded Solve dimension mismatch")
	}
	x := f.x
	for node, p := range f.perm {
		if p >= 0 {
			x[p] = b[node]
		}
	}
	rb := b[f.border]
	f.solveSingle(x)
	acc := 0.0
	for i, bc := range f.bcol {
		if bc != 0 {
			acc += bc * x[i]
		}
	}
	s := (rb - acc) / f.schur
	for node, p := range f.perm {
		if p >= 0 {
			dst[node] = x[p] - f.y[p]*s
		}
	}
	dst[f.border] = s
}

// SolveBatch solves M·X = B for ncols right-hand sides with one pass over
// the factorisation. dst and rhs are row-major n×ncols blocks (row i holds
// node i's value for every column) and may alias. One factorisation plus
// one batched sweep serves a whole chunk of steady-state solves — the
// influence-matrix construction feeds the identity block through it — and
// each column's result is bitwise identical to a single Solve of that
// column.
//
//hotnoc:noalloc
func (f *BandedLU) SolveBatch(dst, rhs []float64, ncols int) {
	if ncols <= 0 {
		panic(fmt.Sprintf("thermal: SolveBatch with %d columns", ncols))
	}
	if len(dst) != f.n*ncols || len(rhs) != f.n*ncols {
		panic("thermal: SolveBatch dimension mismatch")
	}
	if cap(f.xm) < f.nb*ncols {
		f.xm = make([]float64, f.nb*ncols) //hotnoc:allow noalloc amortized scratch growth; steady-state batches reuse it at 0 allocs/op
	}
	if cap(f.acc) < 2*ncols {
		f.acc = make([]float64, 2*ncols) //hotnoc:allow noalloc amortized scratch growth; steady-state batches reuse it at 0 allocs/op
	}
	x := f.xm[:f.nb*ncols]
	acc := f.acc[:ncols]
	s := f.acc[ncols : 2*ncols]
	for node, p := range f.perm {
		if p >= 0 {
			copy(x[p*ncols:(p+1)*ncols], rhs[node*ncols:(node+1)*ncols])
		}
	}
	rb := rhs[f.border*ncols : (f.border+1)*ncols]
	for c := range acc {
		acc[c] = 0
	}
	f.solveCols(x, ncols)
	for i, bc := range f.bcol {
		if bc == 0 {
			continue
		}
		xi := x[i*ncols : (i+1)*ncols]
		for c := range acc {
			acc[c] += bc * xi[c]
		}
	}
	for c := range s {
		s[c] = (rb[c] - acc[c]) / f.schur
	}
	for node, p := range f.perm {
		if p < 0 {
			continue
		}
		di := dst[node*ncols : (node+1)*ncols]
		xi := x[p*ncols : (p+1)*ncols]
		yp := f.y[p]
		for c := range di {
			di[c] = xi[c] - yp*s[c]
		}
	}
	copy(dst[f.border*ncols:(f.border+1)*ncols], s)
}

// Bandwidth reports the detected half bandwidth of the banded block, a
// diagnostic for ordering regressions (≈2·gridwidth for a mesh).
func (f *BandedLU) Bandwidth() int { return f.k }
