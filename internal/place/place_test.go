package place

import (
	"math"
	"math/rand"
	"testing"

	"hotnoc/internal/floorplan"
	"hotnoc/internal/geom"
	"hotnoc/internal/power"
	"hotnoc/internal/thermal"
)

func testInfluence(t testing.TB, n int) (*thermal.Influence, geom.Grid) {
	t.Helper()
	g := geom.NewGrid(n, n)
	nw, err := thermal.NewNetwork(floorplan.NewMesh(g), thermal.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	inf, err := thermal.NewInfluence(nw)
	if err != nil {
		t.Fatal(err)
	}
	return inf, g
}

func skewedPower(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.2 + 0.1*r.Float64()
	}
	// A few hot PEs, clustered at the low indices like a check-heavy
	// partition.
	p[0], p[1], p[2] = 1.5, 1.2, 1.0
	return p
}

// TestAnnealImprovesOnIdentity: for a clustered-hot power profile the
// annealer must beat the identity placement's peak temperature.
func TestAnnealImprovesOnIdentity(t *testing.T) {
	inf, g := testInfluence(t, 4)
	pw := skewedPower(16, 1)
	identityPeak := inf.PeakTemp(pw)
	res, err := Anneal(&Problem{Grid: g, Inf: inf, PEPower: pw}, Options{Seed: 2, Iters: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakC >= identityPeak {
		t.Fatalf("annealed peak %g did not improve identity %g", res.PeakC, identityPeak)
	}
}

// TestAnnealNeverWorseThanInitial: the returned best is at most the
// initial cost, whatever the cooling randomness does.
func TestAnnealNeverWorseThanInitial(t *testing.T) {
	inf, g := testInfluence(t, 4)
	for seed := int64(0); seed < 5; seed++ {
		pw := skewedPower(16, seed)
		initialPeak := inf.PeakTemp(pw)
		res, err := Anneal(&Problem{Grid: g, Inf: inf, PEPower: pw},
			Options{Seed: seed, Iters: 500})
		if err != nil {
			t.Fatal(err)
		}
		if res.PeakC > initialPeak+1e-9 {
			t.Fatalf("seed %d: result %g worse than initial %g", seed, res.PeakC, initialPeak)
		}
	}
}

// TestAnnealReturnsBijection: the placement must always be a permutation.
func TestAnnealReturnsBijection(t *testing.T) {
	inf, g := testInfluence(t, 5)
	pw := skewedPower(25, 3)
	res, err := Anneal(&Problem{Grid: g, Inf: inf, PEPower: pw}, Options{Seed: 4, Iters: 3000})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 25)
	for _, b := range res.Place {
		if b < 0 || b >= 25 || seen[b] {
			t.Fatalf("placement not a bijection: %v", res.Place)
		}
		seen[b] = true
	}
}

// TestAnnealDeterministic: identical seeds give identical placements.
func TestAnnealDeterministic(t *testing.T) {
	inf, g := testInfluence(t, 4)
	pw := skewedPower(16, 5)
	prob := &Problem{Grid: g, Inf: inf, PEPower: pw}
	a, err := Anneal(prob, Options{Seed: 6, Iters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(prob, Options{Seed: 6, Iters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Place {
		if a.Place[i] != b.Place[i] {
			t.Fatalf("placements differ at %d", i)
		}
	}
	if a.Cost != b.Cost {
		t.Fatalf("costs differ: %g vs %g", a.Cost, b.Cost)
	}
}

// TestCommWeightPullsTalkersTogether: with dominant communication weight,
// two heavily-communicating PEs end up adjacent.
func TestCommWeightPullsTalkersTogether(t *testing.T) {
	inf, g := testInfluence(t, 4)
	n := 16
	pw := make([]float64, n)
	for i := range pw {
		pw[i] = 0.3
	}
	traffic := make([][]int64, n)
	for i := range traffic {
		traffic[i] = make([]int64, n)
	}
	traffic[0][15] = 1000
	traffic[15][0] = 1000
	res, err := Anneal(&Problem{
		Grid: g, Inf: inf, PEPower: pw,
		Traffic: traffic, CommWeight: 1.0,
	}, Options{Seed: 7, Iters: 10000})
	if err != nil {
		t.Fatal(err)
	}
	d := g.Coord(res.Place[0]).Manhattan(g.Coord(res.Place[15]))
	if d != 1 {
		t.Fatalf("heavy talkers placed %d hops apart, want 1", d)
	}
}

// TestThermalCommTradeoff: raising the communication weight cannot
// decrease the communication cost achieved... it should weakly reduce
// hops at the expense of peak temperature.
func TestThermalCommTradeoff(t *testing.T) {
	inf, g := testInfluence(t, 4)
	n := 16
	pw := skewedPower(n, 8)
	r := rand.New(rand.NewSource(9))
	traffic := make([][]int64, n)
	for i := range traffic {
		traffic[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := int64(r.Intn(50))
			traffic[i][j], traffic[j][i] = v, v
		}
	}
	run := func(w float64) Result {
		res, err := Anneal(&Problem{Grid: g, Inf: inf, PEPower: pw, Traffic: traffic, CommWeight: w},
			Options{Seed: 10, Iters: 15000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	thermalOnly := run(1e-6)
	commHeavy := run(0.1)
	if commHeavy.CommHops > thermalOnly.CommHops {
		t.Fatalf("higher comm weight produced more hops: %g vs %g",
			commHeavy.CommHops, thermalOnly.CommHops)
	}
	if commHeavy.PeakC < thermalOnly.PeakC-1e-9 {
		t.Fatalf("comm-heavy placement beat thermal-only on temperature: %g vs %g",
			commHeavy.PeakC, thermalOnly.PeakC)
	}
}

// TestValidate covers the problem validation paths.
func TestValidate(t *testing.T) {
	inf, g := testInfluence(t, 4)
	good := &Problem{Grid: g, Inf: inf, PEPower: make([]float64, 16)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	cases := []*Problem{
		{Grid: g, Inf: nil, PEPower: make([]float64, 16)},
		{Grid: g, Inf: inf, PEPower: make([]float64, 15)},
		{Grid: g, Inf: inf, PEPower: append(make([]float64, 15), -1)},
		{Grid: g, Inf: inf, PEPower: append(make([]float64, 15), math.NaN())},
		{Grid: g, Inf: inf, PEPower: make([]float64, 16), Traffic: make([][]int64, 3)},
		{Grid: g, Inf: inf, PEPower: make([]float64, 16), CommWeight: -1},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestAnnealInitialValidation: malformed initial placements are rejected.
func TestAnnealInitialValidation(t *testing.T) {
	inf, g := testInfluence(t, 4)
	prob := &Problem{Grid: g, Inf: inf, PEPower: make([]float64, 16)}
	if _, err := Anneal(prob, Options{Initial: make([]int, 5)}); err == nil {
		t.Fatal("short initial accepted")
	}
	if _, err := Anneal(prob, Options{Initial: make([]int, 16)}); err == nil {
		t.Fatal("non-bijective initial accepted")
	}
}

// TestAnnealRestartsDeterministicAcrossParallelism: a multi-restart
// search returns bitwise-identical results whatever the worker-pool
// size — the scheduling of restarts must not leak into the outcome.
func TestAnnealRestartsDeterministicAcrossParallelism(t *testing.T) {
	inf, g := testInfluence(t, 4)
	pw := skewedPower(16, 13)
	prob := &Problem{Grid: g, Inf: inf, PEPower: pw}
	var ref Result
	for i, par := range []int{1, 2, 4, 7} {
		res, err := Anneal(prob, Options{Seed: 20, Iters: 1500, Restarts: 6, Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.Cost != ref.Cost || res.PeakC != ref.PeakC || res.Accepted != ref.Accepted {
			t.Fatalf("parallel=%d: result (%g, %g, %d) differs from parallel=1 (%g, %g, %d)",
				par, res.Cost, res.PeakC, res.Accepted, ref.Cost, ref.PeakC, ref.Accepted)
		}
		for j := range res.Place {
			if res.Place[j] != ref.Place[j] {
				t.Fatalf("parallel=%d: placement differs at %d", par, j)
			}
		}
	}
}

// TestAnnealRestartsPickBest: the multi-restart result equals the best
// (lowest-cost, lowest-seed on ties) of the individual seeded runs.
func TestAnnealRestartsPickBest(t *testing.T) {
	inf, g := testInfluence(t, 4)
	pw := skewedPower(16, 14)
	prob := &Problem{Grid: g, Inf: inf, PEPower: pw}
	const seed, restarts = 30, 5
	best := -1
	var bestRes Result
	for i := 0; i < restarts; i++ {
		res, err := Anneal(prob, Options{Seed: seed + int64(i), Iters: 1200})
		if err != nil {
			t.Fatal(err)
		}
		if best < 0 || res.Cost < bestRes.Cost {
			best, bestRes = i, res
		}
	}
	multi, err := Anneal(prob, Options{Seed: seed, Iters: 1200, Restarts: restarts})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Cost != bestRes.Cost {
		t.Fatalf("restarts returned cost %g, best individual seed (%d) has %g",
			multi.Cost, best, bestRes.Cost)
	}
	for i := range multi.Place {
		if multi.Place[i] != bestRes.Place[i] {
			t.Fatalf("restart winner's placement differs from seed %d's at %d", best, i)
		}
	}
}

// TestAnnealRestartsTieBreakLowestSeed: when every restart reaches the
// same cost (uniform power, no communication terms: every placement is
// equivalent), the winner must be the lowest seed's result.
func TestAnnealRestartsTieBreakLowestSeed(t *testing.T) {
	inf, g := testInfluence(t, 4)
	pw := make([]float64, 16)
	for i := range pw {
		pw[i] = 0.5
	}
	prob := &Problem{Grid: g, Inf: inf, PEPower: pw}
	single, err := Anneal(prob, Options{Seed: 40, Iters: 300})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Anneal(prob, Options{Seed: 40, Iters: 300, Restarts: 4, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Cost != single.Cost || multi.Accepted != single.Accepted {
		t.Fatalf("tie not broken by lowest seed: multi (%g, %d) vs seed-40 single (%g, %d)",
			multi.Cost, multi.Accepted, single.Cost, single.Accepted)
	}
	for i := range multi.Place {
		if multi.Place[i] != single.Place[i] {
			t.Fatalf("tie winner differs from lowest seed's placement at %d", i)
		}
	}
}

// TestAnnealCountCountsRestarts: the process-wide counter advances once
// per restart — it is what warm-start tests assert stays flat.
func TestAnnealCountCountsRestarts(t *testing.T) {
	inf, g := testInfluence(t, 4)
	prob := &Problem{Grid: g, Inf: inf, PEPower: skewedPower(16, 15)}
	before := AnnealCount()
	if _, err := Anneal(prob, Options{Seed: 50, Iters: 100, Restarts: 3}); err != nil {
		t.Fatal(err)
	}
	if got := AnnealCount() - before; got != 3 {
		t.Fatalf("3 restarts advanced the anneal counter by %d", got)
	}
}

// TestPermutedPowerPeakConsistency: the annealer's reported peak matches an
// independent evaluation of its placement.
func TestPermutedPowerPeakConsistency(t *testing.T) {
	inf, g := testInfluence(t, 4)
	pw := skewedPower(16, 11)
	res, err := Anneal(&Problem{Grid: g, Inf: inf, PEPower: pw}, Options{Seed: 12, Iters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	want := inf.PeakTemp(power.Permute(pw, res.Place))
	if math.Abs(res.PeakC-want) > 1e-9 {
		t.Fatalf("reported peak %g, recomputed %g", res.PeakC, want)
	}
}
