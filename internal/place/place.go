// Package place implements the thermally-aware static placement the paper
// uses to generate its initial mappings ("our workload was mapped onto PEs
// using a thermally-aware placement algorithm that minimizes the peak
// temperature"). Placement is simulated annealing over logical-to-physical
// PE bijections with a two-term objective: the steady-state peak
// temperature of the resulting power map (evaluated through the precomputed
// thermal-influence matrix, so each candidate costs one small mat-vec) plus
// a weighted communication cost (message-hops), reflecting that real
// mappings must also respect interconnect locality. Starting the paper's
// evaluation from such a mapping puts runtime reconfiguration in a
// worst-case light: design-time optimisation has already flattened the
// profile as far as a static mapping can.
//
//hotnoc:deterministic
package place

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"hotnoc/internal/geom"
	"hotnoc/internal/power"
	"hotnoc/internal/thermal"
)

// annealRuns counts annealing searches started in this process, one per
// restart. The sweep layer's build cache exists to make this number zero
// on a warm start, and tests assert exactly that through AnnealCount.
var annealRuns atomic.Uint64

// AnnealCount reports how many annealing searches this process has run
// (each restart of a multi-restart Anneal counts once). A build
// reconstituted from a persisted snapshot performs none.
func AnnealCount() uint64 { return annealRuns.Load() }

// Problem describes one placement instance over a grid of PEs.
type Problem struct {
	// Grid is the physical PE array.
	Grid geom.Grid
	// Inf is the thermal influence operator of the chip's floorplan.
	Inf *thermal.Influence
	// PEPower holds each logical PE's estimated power in watts (compute
	// plus its share of network power).
	PEPower []float64
	// Traffic[i][j] is the messages-per-iteration between logical PEs i
	// and j (symmetric, zero diagonal); nil disables the term.
	Traffic [][]int64
	// CommWeight converts message-hops into objective units (°C
	// equivalents). Zero gives a purely thermal placement.
	CommWeight float64
	// IOTraffic[i] is logical PE i's traffic to the chip's I/O interface
	// (channel LLRs in, hard decisions out); nil disables the term. Real
	// LDPC NoC chips stream blocks through edge pads, which anchors
	// I/O-heavy PEs near the interface and gives placements the banded
	// structure the paper observes.
	IOTraffic []int64
	// IOCoord is the mesh-side position of the I/O interface.
	IOCoord geom.Coord
	// IOWeight converts I/O message-hops into objective units.
	IOWeight float64
}

// Validate reports structural problems.
func (p *Problem) Validate() error {
	n := p.Grid.N()
	if p.Inf == nil || p.Inf.N != n {
		return fmt.Errorf("place: influence matrix missing or sized %d for %d PEs",
			infN(p.Inf), n)
	}
	if len(p.PEPower) != n {
		return fmt.Errorf("place: %d PE powers for %d PEs", len(p.PEPower), n)
	}
	for i, w := range p.PEPower {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("place: PE %d has invalid power %g", i, w)
		}
	}
	if p.Traffic != nil {
		if len(p.Traffic) != n {
			return fmt.Errorf("place: traffic matrix is %dx? for %d PEs", len(p.Traffic), n)
		}
		for i := range p.Traffic {
			if len(p.Traffic[i]) != n {
				return fmt.Errorf("place: traffic row %d has %d entries", i, len(p.Traffic[i]))
			}
		}
	}
	if p.CommWeight < 0 {
		return fmt.Errorf("place: negative communication weight %g", p.CommWeight)
	}
	if p.IOTraffic != nil {
		if len(p.IOTraffic) != n {
			return fmt.Errorf("place: %d I/O traffic entries for %d PEs", len(p.IOTraffic), n)
		}
		if !p.Grid.Contains(p.IOCoord) {
			return fmt.Errorf("place: I/O interface at %v outside the grid", p.IOCoord)
		}
	}
	if p.IOWeight < 0 {
		return fmt.Errorf("place: negative I/O weight %g", p.IOWeight)
	}
	return nil
}

func infN(inf *thermal.Influence) int {
	if inf == nil {
		return 0
	}
	return inf.N
}

// Options tunes the annealer.
type Options struct {
	// Seed makes runs reproducible.
	Seed int64
	// Iters is the number of proposed swaps (default 20000).
	Iters int
	// TStart and TEnd bound the geometric cooling schedule in objective
	// units (defaults 5.0 and 0.01).
	TStart, TEnd float64
	// Initial, when non-nil, seeds the search; otherwise identity.
	Initial []int
	// Restarts runs that many independently-seeded searches (seeds Seed,
	// Seed+1, ..., Seed+Restarts-1) and returns the best result by cost,
	// ties broken by the lowest seed. Restarts run concurrently on a
	// bounded worker pool, and the outcome is bitwise identical regardless
	// of how the pool schedules them. Zero or one means a single search.
	Restarts int
	// Parallel bounds the restart worker pool (0 = GOMAXPROCS). It only
	// affects wall-clock time, never the result.
	Parallel int
}

func (o *Options) setDefaults() {
	if o.Iters <= 0 {
		o.Iters = 20000
	}
	if o.TStart <= 0 {
		o.TStart = 5.0
	}
	if o.TEnd <= 0 || o.TEnd >= o.TStart {
		o.TEnd = 0.01
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
}

// Result is the annealer's best placement and its objective breakdown.
type Result struct {
	// Place maps logical PE -> physical block index.
	Place []int
	// PeakC is the steady-state peak temperature of the placed power map.
	PeakC float64
	// CommHops is the total message-hop count of the placement.
	CommHops float64
	// Cost is PeakC + CommWeight*CommHops, the annealed objective.
	Cost float64
	// Accepted counts accepted moves, a convergence diagnostic.
	Accepted int
}

// Anneal searches for a placement minimising the combined objective.
// With Options.Restarts > 1 it runs that many independently-seeded
// searches concurrently and returns the deterministic best.
func Anneal(p *Problem, opts Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	opts.setDefaults()
	if opts.Initial != nil {
		n := p.Grid.N()
		if len(opts.Initial) != n {
			return Result{}, fmt.Errorf("place: initial placement has %d entries for %d PEs",
				len(opts.Initial), n)
		}
		seen := make([]bool, n)
		for _, b := range opts.Initial {
			if b < 0 || b >= n || seen[b] {
				return Result{}, fmt.Errorf("place: initial placement is not a bijection")
			}
			seen[b] = true
		}
	}
	if opts.Restarts <= 1 {
		return annealOnce(p, opts, opts.Seed), nil
	}

	// Independent restarts on a bounded pool. Every restart is a pure
	// function of (problem, options, seed), results land in a slice
	// indexed by restart, and the winner is chosen by a deterministic
	// scan — so the outcome cannot depend on worker count or scheduling.
	results := make([]Result, opts.Restarts)
	workers := min(opts.Parallel, opts.Restarts)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = annealOnce(p, opts, opts.Seed+int64(i))
			}
		}()
	}
	for i := range results {
		next <- i
	}
	close(next)
	wg.Wait()

	best := 0
	for i := 1; i < len(results); i++ {
		// Strict inequality keeps the lowest seed on ties.
		if results[i].Cost < results[best].Cost {
			best = i
		}
	}
	return results[best], nil
}

// annealOnce is one simulated-annealing search from one seed. The caller
// has validated the problem and the initial placement.
func annealOnce(p *Problem, opts Options, seed int64) Result {
	annealRuns.Add(1)
	n := p.Grid.N()

	cur := make([]int, n)
	if opts.Initial != nil {
		copy(cur, opts.Initial)
	} else {
		for i := range cur {
			cur[i] = i
		}
	}

	rng := rand.New(rand.NewSource(seed))
	// One reusable buffer for the permuted power map: the objective is
	// evaluated tens of thousands of times per restart and PermuteInto +
	// PeakTemp keep the whole inner loop allocation-free.
	placed := make([]float64, n)
	eval := func(place []int) (float64, float64, float64) {
		power.PermuteInto(placed, p.PEPower, place)
		peak := p.Inf.PeakTemp(placed)
		hops := 0.0
		if p.Traffic != nil && p.CommWeight > 0 {
			hops = commHops(p.Grid, p.Traffic, place)
		}
		cost := peak + p.CommWeight*hops
		if p.IOTraffic != nil && p.IOWeight > 0 {
			io := 0.0
			for i, v := range p.IOTraffic {
				if v != 0 {
					io += float64(v) * float64(p.IOCoord.Manhattan(p.Grid.Coord(place[i])))
				}
			}
			cost += p.IOWeight * io
		}
		return cost, peak, hops
	}

	curCost, bestPeak, bestHops := eval(cur)
	best := append([]int(nil), cur...)
	bestCost := curCost
	accepted := 0

	cool := math.Pow(opts.TEnd/opts.TStart, 1/float64(opts.Iters))
	temp := opts.TStart
	for it := 0; it < opts.Iters; it++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			temp *= cool
			continue
		}
		cur[i], cur[j] = cur[j], cur[i]
		cost, peak, hops := eval(cur)
		if cost <= curCost || rng.Float64() < math.Exp((curCost-cost)/temp) {
			curCost = cost
			accepted++
			if cost < bestCost {
				bestCost, bestPeak, bestHops = cost, peak, hops
				copy(best, cur)
			}
		} else {
			cur[i], cur[j] = cur[j], cur[i] // revert
		}
		temp *= cool
	}

	return Result{
		Place:    best,
		PeakC:    bestPeak,
		CommHops: bestHops,
		Cost:     bestCost,
		Accepted: accepted,
	}
}

// commHops computes total message-hops of a placement: traffic volume
// between two logical PEs times the Manhattan distance of their physical
// blocks (each unordered pair counted once from the symmetric matrix).
func commHops(g geom.Grid, traffic [][]int64, place []int) float64 {
	total := 0.0
	for i := range traffic {
		ci := g.Coord(place[i])
		for j := i + 1; j < len(traffic); j++ {
			if traffic[i][j] == 0 {
				continue
			}
			total += float64(traffic[i][j]) * float64(ci.Manhattan(g.Coord(place[j])))
		}
	}
	return total
}
