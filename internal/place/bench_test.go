package place

import (
	"math/rand"
	"testing"

	"hotnoc/internal/floorplan"
	"hotnoc/internal/geom"
	"hotnoc/internal/thermal"
)

// BenchmarkAnneal measures a paper-scale thermally-aware placement run
// (25 PEs, 25k proposed swaps, thermal + communication objective).
func BenchmarkAnneal(b *testing.B) {
	g := geom.NewGrid(5, 5)
	nw, err := thermal.NewNetwork(floorplan.NewMesh(g), thermal.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	inf, err := thermal.NewInfluence(nw)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	pw := make([]float64, g.N())
	for i := range pw {
		pw[i] = 0.2 + r.Float64()
	}
	traffic := make([][]int64, g.N())
	for i := range traffic {
		traffic[i] = make([]int64, g.N())
	}
	for i := 0; i < g.N(); i++ {
		for j := i + 1; j < g.N(); j++ {
			v := int64(r.Intn(100))
			traffic[i][j], traffic[j][i] = v, v
		}
	}
	prob := &Problem{Grid: g, Inf: inf, PEPower: pw, Traffic: traffic, CommWeight: 1e-3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Anneal(prob, Options{Seed: int64(i), Iters: 25000}); err != nil {
			b.Fatal(err)
		}
	}
}
