package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultTableValid(t *testing.T) {
	if err := Default160nm().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesZeroEntry(t *testing.T) {
	e := Default160nm()
	e.LinkJ = 0
	if err := e.Validate(); err == nil {
		t.Fatal("zero link energy accepted")
	}
}

func TestScaleLinear(t *testing.T) {
	e := Default160nm().Scale(2.5)
	base := Default160nm()
	if math.Abs(e.BufWriteJ-2.5*base.BufWriteJ) > 1e-24 ||
		math.Abs(e.PEOpJ-2.5*base.PEOpJ) > 1e-24 ||
		math.Abs(e.ConvJ-2.5*base.ConvJ) > 1e-24 {
		t.Fatal("Scale did not scale all entries")
	}
}

// TestPowerEqualsEnergyOverWindow: P·window == E for every block.
func TestPowerEqualsEnergyOverWindow(t *testing.T) {
	e := Default160nm()
	a := NewActivity(4)
	a.BufWrites[0] = 100
	a.BufReads[0] = 90
	a.Xbar[1] = 50
	a.Link[2] = 75
	a.PEOps[3] = 1000
	const window = 109.3e-6
	pm := a.PowerMap(e, window)
	for i := range pm {
		if math.Abs(pm[i]*window-a.BlockEnergyJ(e, i)) > 1e-18 {
			t.Fatalf("block %d: P*window=%g, E=%g", i, pm[i]*window, a.BlockEnergyJ(e, i))
		}
	}
	if math.Abs(Total(pm)*window-a.TotalEnergyJ(e)) > 1e-15 {
		t.Fatal("total power disagrees with total energy")
	}
}

// TestActivityAddFrom property: energy of a sum is the sum of energies.
func TestActivityAddFrom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := Default160nm()
		a, b := NewActivity(6), NewActivity(6)
		for _, s := range [][]uint64{a.BufWrites, a.Link, a.PEOps, b.BufReads, b.Xbar, b.ConvWords} {
			for i := range s {
				s[i] = uint64(r.Intn(1000))
			}
		}
		sumBefore := a.TotalEnergyJ(e) + b.TotalEnergyJ(e)
		a.AddFrom(b)
		return math.Abs(a.TotalEnergyJ(e)-sumBefore) < 1e-12*math.Max(1e-12, sumBefore)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestActivityResetAndClone(t *testing.T) {
	a := NewActivity(3)
	a.PEOps[1] = 42
	c := a.Clone()
	a.Reset()
	if a.TotalEnergyJ(Default160nm()) != 0 {
		t.Fatal("Reset left energy behind")
	}
	if c.PEOps[1] != 42 {
		t.Fatal("Clone does not preserve counters")
	}
	c.PEOps[1] = 7
	if a.PEOps[1] != 0 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestAddFromSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	NewActivity(3).AddFrom(NewActivity(4))
}

func TestPowerMapRejectsBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero window")
		}
	}()
	NewActivity(2).PowerMap(Default160nm(), 0)
}

// TestLeakageMonotonic property: leakage increases with temperature and
// equals P0 at the reference point.
func TestLeakageMonotonic(t *testing.T) {
	l := DefaultLeakage()
	if math.Abs(l.At(l.TRefC)-l.P0W) > 1e-18 {
		t.Fatalf("At(TRef) = %g, want %g", l.At(l.TRefC), l.P0W)
	}
	f := func(t1, t2 float64) bool {
		a, b := math.Mod(math.Abs(t1), 100)+20, math.Mod(math.Abs(t2), 100)+20
		if a > b {
			a, b = b, a
		}
		return l.At(a) <= l.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeakageInto(t *testing.T) {
	l := DefaultLeakage()
	temps := []float64{40, 60, 85}
	out := make([]float64, len(temps))
	l.Into(out, temps)
	for i, temp := range temps {
		if math.Abs(out[i]-l.At(temp)) > 1e-18 {
			t.Fatalf("Into[%d] = %g, want %g", i, out[i], l.At(temp))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	l.Into(make([]float64, 2), temps)
}

// TestPermute property: permuting a power map preserves total power and
// places each value at its destination.
func TestPermute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		m := make([]float64, n)
		for i := range m {
			m[i] = r.Float64()
		}
		dst := r.Perm(n)
		out := Permute(m, dst)
		if math.Abs(Total(out)-Total(m)) > 1e-9 {
			return false
		}
		for i, d := range dst {
			if out[d] != m[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPermuteSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	Permute([]float64{1, 2}, []int{0})
}
