// Package power converts switching activity into per-block power maps, the
// role Synopsys Power Compiler plays in the paper's flow. Dynamic energy is
// activity-based — every router buffer access, crossbar traversal, link
// traversal, arbitration and decoder operation charges a fixed per-event
// energy from a 160 nm standard-cell table — and leakage follows the usual
// exponential temperature dependence, closing the electrothermal loop with
// the thermal package.
package power

import (
	"fmt"
	"math"
)

// Energy is the per-event energy table in joules. Values are
// order-of-magnitude figures for a 160 nm process with 64-bit flits
// (Orion-class router models); the experiment harness calibrates the
// overall scale against the paper's base peak temperatures, so only the
// ratios between entries shape the results.
type Energy struct {
	// BufWriteJ and BufReadJ charge each flit buffer access in a router.
	BufWriteJ float64
	BufReadJ  float64
	// XbarJ charges each flit crossbar traversal.
	XbarJ float64
	// ArbJ charges each switch-allocation decision.
	ArbJ float64
	// LinkJ charges each flit traversal of one inter-router link.
	LinkJ float64
	// PEOpJ charges each decoder edge-message computation (its share of a
	// variable- or check-node update: compare/select trees, adders and
	// register file accesses in a synthesized 160 nm min-sum datapath).
	// Decoder computation dominates chip power, as in the paper's chips
	// where thermal differences stem from "the amount of computation
	// mapped to a single PE".
	PEOpJ float64
	// ConvJ charges each word passed through the migration conversion
	// unit while re-targeting configuration state (§2.1).
	ConvJ float64
}

// Default160nm returns the energy table used by all experiments.
func Default160nm() Energy {
	return Energy{
		BufWriteJ: 52e-12,
		BufReadJ:  44e-12,
		XbarJ:     65e-12,
		ArbJ:      6e-12,
		LinkJ:     42e-12,
		PEOpJ:     780e-12,
		ConvJ:     18e-12,
	}
}

// Validate reports the first non-positive entry.
func (e Energy) Validate() error {
	entries := []struct {
		name string
		v    float64
	}{
		{"BufWriteJ", e.BufWriteJ}, {"BufReadJ", e.BufReadJ}, {"XbarJ", e.XbarJ},
		{"ArbJ", e.ArbJ}, {"LinkJ", e.LinkJ}, {"PEOpJ", e.PEOpJ}, {"ConvJ", e.ConvJ},
	}
	for _, en := range entries {
		if en.v <= 0 {
			return fmt.Errorf("power: energy entry %s must be positive, got %g", en.name, en.v)
		}
	}
	return nil
}

// Scale returns the table with every entry multiplied by f — the
// calibration knob that maps activity onto the paper's base temperatures.
func (e Energy) Scale(f float64) Energy {
	return Energy{
		BufWriteJ: e.BufWriteJ * f,
		BufReadJ:  e.BufReadJ * f,
		XbarJ:     e.XbarJ * f,
		ArbJ:      e.ArbJ * f,
		LinkJ:     e.LinkJ * f,
		PEOpJ:     e.PEOpJ * f,
		ConvJ:     e.ConvJ * f,
	}
}

// Activity accumulates per-block event counts over a simulation window.
// Block i aggregates the router at grid index i together with its local PE:
// in the paper's chips each functional unit contains both.
type Activity struct {
	BufWrites []uint64
	BufReads  []uint64
	Xbar      []uint64
	Arb       []uint64
	Link      []uint64
	PEOps     []uint64
	ConvWords []uint64
}

// NewActivity returns zeroed counters for n blocks.
func NewActivity(n int) *Activity {
	return &Activity{
		BufWrites: make([]uint64, n),
		BufReads:  make([]uint64, n),
		Xbar:      make([]uint64, n),
		Arb:       make([]uint64, n),
		Link:      make([]uint64, n),
		PEOps:     make([]uint64, n),
		ConvWords: make([]uint64, n),
	}
}

// N returns the number of blocks.
func (a *Activity) N() int { return len(a.BufWrites) }

// Reset zeroes all counters.
func (a *Activity) Reset() {
	for _, s := range a.slices() {
		for i := range s {
			s[i] = 0
		}
	}
}

// AddFrom accumulates another activity record (e.g. migration traffic on
// top of workload traffic). The two records must cover the same blocks.
func (a *Activity) AddFrom(b *Activity) {
	if a.N() != b.N() {
		panic(fmt.Sprintf("power: adding activity over %d blocks to %d", b.N(), a.N()))
	}
	for k, s := range a.slices() {
		for i, v := range b.slices()[k] {
			s[i] += v
		}
	}
}

// Clone returns a deep copy.
func (a *Activity) Clone() *Activity {
	c := NewActivity(a.N())
	c.AddFrom(a)
	return c
}

func (a *Activity) slices() [][]uint64 {
	return [][]uint64{a.BufWrites, a.BufReads, a.Xbar, a.Arb, a.Link, a.PEOps, a.ConvWords}
}

// BlockEnergyJ returns the dynamic energy dissipated in block i.
func (a *Activity) BlockEnergyJ(e Energy, i int) float64 {
	return float64(a.BufWrites[i])*e.BufWriteJ +
		float64(a.BufReads[i])*e.BufReadJ +
		float64(a.Xbar[i])*e.XbarJ +
		float64(a.Arb[i])*e.ArbJ +
		float64(a.Link[i])*e.LinkJ +
		float64(a.PEOps[i])*e.PEOpJ +
		float64(a.ConvWords[i])*e.ConvJ
}

// TotalEnergyJ returns the chip-wide dynamic energy of the window.
func (a *Activity) TotalEnergyJ(e Energy) float64 {
	s := 0.0
	for i := 0; i < a.N(); i++ {
		s += a.BlockEnergyJ(e, i)
	}
	return s
}

// PowerMap converts the window's activity into per-block average power
// (watts) over a window of the given duration.
func (a *Activity) PowerMap(e Energy, windowSec float64) []float64 {
	if windowSec <= 0 {
		panic(fmt.Sprintf("power: non-positive window %g", windowSec))
	}
	out := make([]float64, a.N())
	for i := range out {
		out[i] = a.BlockEnergyJ(e, i) / windowSec
	}
	return out
}

// Leakage models per-block static power with the standard exponential
// temperature dependence P = P0 · exp(Beta · (T - TRefC)).
type Leakage struct {
	// P0W is the per-block leakage at the reference temperature.
	P0W float64
	// BetaPerC is the exponential sensitivity (≈ 0.01-0.03 /°C at 160 nm).
	BetaPerC float64
	// TRefC is the reference temperature.
	TRefC float64
}

// DefaultLeakage returns the 160 nm leakage model. Leakage at this node is
// a small fraction of dynamic power; it matters here because migration
// energy raises average temperature, which raises leakage in turn (the
// mechanism behind rotation's +0.3 °C penalty in the paper).
func DefaultLeakage() Leakage {
	return Leakage{P0W: 0.012, BetaPerC: 0.018, TRefC: 40}
}

// At returns the leakage power of one block at temperature tC.
func (l Leakage) At(tC float64) float64 {
	return l.P0W * math.Exp(l.BetaPerC*(tC-l.TRefC))
}

// Into writes the per-block leakage power map for the given die
// temperatures into dst. The method value l.Into satisfies the thermal
// package's allocation-free schedule hook (thermal.CycleOptions.Leak).
//
//hotnoc:noalloc
func (l Leakage) Into(dst, dieTemps []float64) {
	if len(dst) != len(dieTemps) {
		panic(fmt.Sprintf("power: leakage buffer has %d entries for %d blocks",
			len(dst), len(dieTemps)))
	}
	for i, t := range dieTemps {
		dst[i] = l.P0W * math.Exp(l.BetaPerC*(t-l.TRefC))
	}
}

// Total returns the sum of a power map in watts.
func Total(m []float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}

// Permute returns the power map re-indexed so that entry dst[i] receives
// m[i] — the power map seen by the chip after the workload at block i
// migrates to block dst[i].
func Permute(m []float64, dst []int) []float64 {
	out := make([]float64, len(m))
	PermuteInto(out, m, dst)
	return out
}

// PermuteInto is Permute without the allocation: out[dst[i]] = m[i]. dst
// must be a bijection onto out's indices (it always is for a placement),
// so every entry of out is written.
//
//hotnoc:noalloc
func PermuteInto(out, m []float64, dst []int) {
	if len(m) != len(dst) {
		panic(fmt.Sprintf("power: permuting %d-block map with %d-entry permutation",
			len(m), len(dst)))
	}
	if len(out) != len(m) {
		panic(fmt.Sprintf("power: permuting %d-block map into %d-entry buffer",
			len(m), len(out)))
	}
	for i, d := range dst {
		out[d] = m[i]
	}
}
