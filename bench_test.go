package hotnoc

import (
	"context"
	"sync"
	"testing"

	"hotnoc/internal/core"
	"hotnoc/internal/geom"
	"hotnoc/internal/place"
)

// Benchmarks double as the experiment harness: each one regenerates a
// table or figure of the paper at full scale and reports the headline
// quantity as a benchmark metric alongside the runtime. Builds are cached
// per configuration so repeated benchmarks measure the experiment, not
// the construction pipeline.

var (
	buildMu    sync.Mutex
	buildCache = map[string]*Built{}
)

func fullBuild(b *testing.B, name string) *Built {
	b.Helper()
	buildMu.Lock()
	defer buildMu.Unlock()
	if bl, ok := buildCache[name]; ok {
		return bl
	}
	bl, err := BuildConfig(name, 1)
	if err != nil {
		b.Fatal(err)
	}
	buildCache[name] = bl
	return bl
}

// BenchmarkFigure1 regenerates every bar of Figure 1 (peak-temperature
// reduction per scheme per circuit configuration, one-block period).
func BenchmarkFigure1(b *testing.B) {
	for _, cfg := range []string{"A", "B", "C", "D", "E"} {
		for _, s := range Schemes() {
			s := s
			built := fullBuild(b, cfg)
			b.Run(cfg+"/"+s.Name, func(b *testing.B) {
				var last RunResult
				for i := 0; i < b.N; i++ {
					res, err := built.System.Run(RunConfig{Scheme: s})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.ReductionC, "°C-reduction")
				b.ReportMetric(last.BaselinePeakC, "°C-base")
				b.ReportMetric(last.ThroughputPenalty*100, "%-penalty")
			})
		}
	}
}

// BenchmarkFigure1Means regenerates the §3 scheme averages (paper:
// X-Y shift 4.62 °C, rotation 4.15 °C mean peak reduction).
func BenchmarkFigure1Means(b *testing.B) {
	var res *Figure1Result
	for i := 0; i < b.N; i++ {
		r, err := RunFigure1(1, nil)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.MeanReductionC["X-Y Shift"], "°C-xyshift-mean")
	b.ReportMetric(res.MeanReductionC["Rot"], "°C-rot-mean")
}

// BenchmarkPeriodSweep regenerates the §3 migration-period study
// (109.3 µs -> 1.6 % penalty; 437.2 µs -> <0.4 % and peak +<0.1 °C;
// 874.4 µs -> <0.2 %) as 1/4/8-block periods on configuration A.
func BenchmarkPeriodSweep(b *testing.B) {
	for _, blocks := range []int{1, 4, 8} {
		blocks := blocks
		built := fullBuild(b, "A")
		b.Run(map[int]string{1: "1block", 4: "4blocks", 8: "8blocks"}[blocks], func(b *testing.B) {
			var last RunResult
			for i := 0; i < b.N; i++ {
				res, err := built.System.Run(RunConfig{Scheme: XYShift(), BlocksPerPeriod: blocks})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.ThroughputPenalty*100, "%-penalty")
			b.ReportMetric(last.MigratedPeakC, "°C-peak")
			b.ReportMetric(last.PeriodSec*1e6, "µs-period")
		})
	}
}

// BenchmarkPeriodSweepShared is the period study on the split pipeline:
// one NoC characterization shared by all three periods, against
// BenchmarkPeriodSweep's three fused Runs. The decodes/sweep metric shows
// the saving directly — (orbit+1) engine decodes here versus 3·(orbit+1)
// for three fused Runs — alongside the wall-clock speedup.
func BenchmarkPeriodSweepShared(b *testing.B) {
	built := fullBuild(b, "A")
	sys := built.System
	start := sys.Engine.Decodes
	var last RunResult
	for i := 0; i < b.N; i++ {
		ch, err := sys.Characterize(XYShift())
		if err != nil {
			b.Fatal(err)
		}
		for _, blocks := range []int{1, 4, 8} {
			res, err := sys.Evaluate(ch, core.EvalConfig{BlocksPerPeriod: blocks})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
	}
	b.ReportMetric(float64(sys.Engine.Decodes-start)/float64(b.N), "decodes/sweep")
	b.ReportMetric(last.ThroughputPenalty*100, "%-penalty-8blk")
	b.ReportMetric(last.MigratedPeakC, "°C-peak-8blk")
}

// BenchmarkSweepFigure1 runs the whole Figure 1 grid through the
// concurrent sweep engine (all configurations and schemes, one worker per
// core), the headline workload of the orchestration layer.
func BenchmarkSweepFigure1(b *testing.B) {
	r := NewSweepRunner(SweepOptions{Scale: 1})
	pts := SweepGrid([]string{"A", "B", "C", "D", "E"}, Schemes(), nil)
	var outs []SweepOutcome
	for i := 0; i < b.N; i++ {
		o, err := r.Run(context.Background(), pts)
		if err != nil {
			b.Fatal(err)
		}
		outs = o
	}
	mean := 0.0
	for _, o := range outs {
		if o.Point.Scheme.Name == "X-Y Shift" {
			mean += o.Result.ReductionC / 5
		}
	}
	b.ReportMetric(mean, "°C-xyshift-mean")
}

// BenchmarkLabSweepWarm measures the Figure 1 grid served entirely from a
// Lab's cross-run characterization cache: after one cold pass, every
// iteration pays only the thermal evaluations. The decodes/sweep metric
// must be 0 — the cache's whole point.
func BenchmarkLabSweepWarm(b *testing.B) {
	lab := NewLab(WithScale(1))
	pts := SweepGrid([]string{"A", "B", "C", "D", "E"}, Schemes(), nil)
	if _, err := lab.SweepAll(context.Background(), pts); err != nil {
		b.Fatal(err)
	}
	start := lab.Decodes()
	b.ResetTimer()
	var outs []SweepOutcome
	for i := 0; i < b.N; i++ {
		o, err := lab.SweepAll(context.Background(), pts)
		if err != nil {
			b.Fatal(err)
		}
		outs = o
	}
	b.ReportMetric(float64(lab.Decodes()-start)/float64(b.N), "decodes/sweep")
	mean := 0.0
	for _, o := range outs {
		if o.Point.Scheme.Name == "X-Y Shift" {
			mean += o.Result.ReductionC / 5
		}
	}
	b.ReportMetric(mean, "°C-xyshift-mean")
}

// BenchmarkBuildWarm measures reconstituting a paper-scale calibrated
// build from its persisted snapshot — the daemon's cold-start path with
// a populated cache directory — against which BenchmarkFigure1's builds
// (annealing + calibration per configuration) are the cold baseline.
// The anneals/op metric must be 0: a warm start performs deterministic
// assembly and a gob decode, nothing more.
func BenchmarkBuildWarm(b *testing.B) {
	dir := b.TempDir()
	seed := NewLab(WithCacheDir(dir))
	if _, err := seed.Build("A"); err != nil {
		b.Fatal(err)
	}
	start := place.AnnealCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lab := NewLab(WithCacheDir(dir)) // a fresh process, in miniature
		if _, err := lab.Build("A"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(place.AnnealCount()-start)/float64(b.N), "anneals/op")
}

// BenchmarkMigrationEnergy regenerates the §3 rotation-energy observation
// on configuration E: migration energy raises the average chip temperature
// (paper: +0.3 °C) and pushes rotation's peak reduction negative.
func BenchmarkMigrationEnergy(b *testing.B) {
	built := fullBuild(b, "E")
	var with, without RunResult
	for i := 0; i < b.N; i++ {
		w, err := built.System.Run(RunConfig{Scheme: Rot()})
		if err != nil {
			b.Fatal(err)
		}
		wo, err := built.System.Run(RunConfig{Scheme: Rot(), ExcludeMigrationEnergy: true})
		if err != nil {
			b.Fatal(err)
		}
		with, without = w, wo
	}
	b.ReportMetric(with.MigratedMeanC-without.MigratedMeanC, "°C-mean-penalty")
	b.ReportMetric(with.ReductionC, "°C-rot-reduction")
	b.ReportMetric(with.MigrationEnergyJ*1e6, "µJ-per-cycle")
}

// BenchmarkTable1Transforms measures the paper's Table 1 transformation
// functions themselves — the hardware the migration unit implements with
// "3-bit operands" — applied across a full 5x5 plane.
func BenchmarkTable1Transforms(b *testing.B) {
	g := geom.NewGrid(5, 5)
	transforms := []geom.Transform{
		geom.Rotation(5), geom.XMirror(5), geom.XTranslate(5, 1),
	}
	coords := g.Coords()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range transforms {
			for _, c := range coords {
				_ = tr.Apply(g, c)
			}
		}
	}
}

// BenchmarkAblationReactive compares the library's sensor-triggered
// migration policy against the paper's periodic policy on configuration A:
// a threshold midway between the static and migrated peaks should cap the
// temperature near the periodic result at a fraction of the migrations.
func BenchmarkAblationReactive(b *testing.B) {
	built := fullBuild(b, "A")
	periodic, err := built.System.Run(RunConfig{Scheme: XYShift()})
	if err != nil {
		b.Fatal(err)
	}
	trigger := (periodic.BaselinePeakC + periodic.MigratedPeakC) / 2
	var last ReactiveResult
	for i := 0; i < b.N; i++ {
		res, err := built.System.RunReactive(ReactiveConfig{
			Scheme: XYShift(), TriggerC: trigger, SimBlocks: 512, WarmupBlocks: 256,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.PeakC, "°C-peak")
	b.ReportMetric(float64(last.Migrations), "migrations/256blk")
	b.ReportMetric(last.ThroughputPenalty*100, "%-penalty")
	b.ReportMetric(periodic.ThroughputPenalty*100, "%-periodic-penalty")
}

// BenchmarkPhasePlanner measures the congestion-free migration planner,
// the component that must be fast enough to run at every reconfiguration.
func BenchmarkPhasePlanner(b *testing.B) {
	g := geom.NewGrid(5, 5)
	perm := geom.FromTransform(g, geom.Rotation(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PlanPhases(g, perm)
	}
}
