package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hotnoc"
	"hotnoc/server/wire"
)

// oldDaemon fakes a hotnocd predating the unified point model: its JSON
// decoder drops the unknown kind/reactive fields, so every submitted
// point is accepted and evaluated as periodic, and the echoed PointSpec
// carries no reactive payload.
func oldDaemon(t *testing.T) string {
	t.Helper()
	var points []wire.PointSpec
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Points []struct {
				Config string `json:"config"`
				Scheme string `json:"scheme"`
				Blocks int    `json:"blocks"`
				// No kind, no reactive: an old daemon's request type.
			} `json:"points"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("old daemon could not decode sweep: %v", err)
		}
		points = points[:0]
		for _, p := range req.Points {
			points = append(points, wire.PointSpec{Config: p.Config, Scheme: p.Scheme, Blocks: p.Blocks})
		}
		w.WriteHeader(http.StatusCreated)
		_ = json.NewEncoder(w).Encode(wire.SweepCreated{ID: "job-1", Points: len(points)})
	})
	mux.HandleFunc("GET /v1/sweeps/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		for i, p := range points {
			msg := wire.OutcomeMsg{Index: i, Point: p, Built: wire.BuiltInfo{
				Config: p.Config, GridW: 4, GridH: 4, ClockHz: 1e9, StaticPeakC: 80, BlockCycles: 1000,
			}}
			data, _ := json.Marshal(msg)
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", wire.EventOutcome, data)
		}
		fmt.Fprintf(w, "event: %s\ndata: {}\n\n", wire.EventDone)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(wire.JobInfo{ID: r.PathValue("id")})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestSweepDetectsKindSkew: a reactive point submitted to a daemon that
// silently runs it as periodic must surface an error, not hand the
// caller results of the wrong experiment. A pure periodic grid against
// the same daemon still streams fine.
func TestSweepDetectsKindSkew(t *testing.T) {
	c := New(oldDaemon(t))
	ctx := context.Background()

	pts := []hotnoc.SweepPoint{
		hotnoc.PeriodicPoint("A", hotnoc.Rot(), 1),
		hotnoc.ReactivePoint("A", hotnoc.ReactiveConfig{Scheme: hotnoc.Rot(), TriggerC: 84}),
	}
	_, err := c.SweepAll(ctx, pts)
	if err == nil || !strings.Contains(err.Error(), "unified point model") {
		t.Fatalf("kind skew not detected (err %v)", err)
	}

	periodic := []hotnoc.SweepPoint{hotnoc.PeriodicPoint("A", hotnoc.Rot(), 1)}
	outs, err := c.SweepAll(ctx, periodic)
	if err != nil {
		t.Fatalf("periodic grid against an old daemon failed: %v", err)
	}
	if len(outs) != 1 {
		t.Fatalf("%d outcomes, want 1", len(outs))
	}
}
